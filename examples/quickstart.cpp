/**
 * @file
 * Quickstart: train EDDIE on a workload, monitor a clean run and an
 * injected run, and print what happened.
 *
 *   ./quickstart [workload] [scale]
 *
 * Walks through the whole public API: workload construction, the
 * pipeline (simulate -> capture -> STS stream), training, online
 * monitoring, and the evaluation metrics.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "bitcount";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    std::printf("EDDIE quickstart: workload '%s' (scale %.2f)\n\n",
                name.c_str(), scale);

    // 1. Build the workload: a program plus its region-level state
    //    machine (loop nests and inter-loop transitions).
    auto workload = workloads::makeWorkload(name, scale);
    std::printf("program: %zu instructions, %zu loop nests, "
                "%zu regions total\n",
                workload.program.size(), workload.regions.num_loops,
                workload.regions.regions.size());
    for (const auto &r : workload.regions.regions)
        if (r.kind == prog::Region::Kind::Loop)
            std::printf("  loop region %s\n", r.name.c_str());

    // 2. Configure the pipeline. The default monitors the simulator
    //    power trace directly; switch `path` to EmBaseband for the
    //    noisy EM-channel version.
    core::PipelineConfig cfg;
    cfg.train_runs = 8;
    const std::size_t target = inject::defaultTargetLoop(workload);
    core::Pipeline pipe(std::move(workload), cfg);

    // 3. Train: multiple runs with different inputs, each labeled by
    //    the region that produced every window.
    std::printf("\ntraining on %zu runs...\n", cfg.train_runs);
    core::TrainingDiagnostics diag;
    const auto model = pipe.trainModel(&diag);
    for (std::size_t r = 0; r < model.regions.size(); ++r) {
        const auto &rm = model.regions[r];
        if (!rm.trained)
            continue;
        std::printf("  region %-12s: %4zu training STSs, %zu peak "
                    "ranks, K-S group n=%zu\n",
                    rm.name.c_str(), diag.sts_count[r], rm.num_peaks,
                    rm.group_n);
    }

    // 4. Monitor a clean run.
    const auto clean = pipe.monitorRun(model, 4242);
    std::printf("\nclean run: %zu STSs, %zu false positives, "
                "%zu anomaly reports, coverage %.1f%%\n",
                clean.metrics.groups, clean.metrics.false_positives,
                clean.reports.size(),
                100.0 * double(clean.metrics.covered_steps) /
                    double(std::max<std::size_t>(
                        clean.metrics.labeled_steps, 1)));

    // 5. Monitor a run with the paper's canonical loop injection:
    //    8 instructions (4 integer + 4 memory) added to every
    //    iteration of the hottest loop.
    const auto attacked = pipe.monitorRun(
        model, 4243, inject::canonicalLoopInjection(target, 1.0, 7));
    std::printf("\ninjected run (8 instrs/iteration into region "
                "L%zu):\n", target);
    std::printf("  injected STS groups: %zu\n",
                attacked.metrics.injected_groups);
    std::printf("  detected:            %s\n",
                attacked.reports.empty() ? "NO" : "YES");
    if (attacked.metrics.detection_latency >= 0.0) {
        std::printf("  detection latency:   %.2f ms\n",
                    attacked.metrics.detection_latency * 1e3);
    }
    std::printf("  true positive rate:  %.1f%%\n",
                100.0 * double(attacked.metrics.true_positives) /
                    double(std::max<std::size_t>(
                        attacked.metrics.injected_groups, 1)));

    // 6. And a shell-style burst outside the loops.
    const auto burst = pipe.monitorRun(
        model, 4244, inject::shellBurst(pipe.workload(), target, 1, 9));
    std::printf("\nburst run (476k injected instructions after "
                "L%zu):\n  detected: %s, latency %.2f ms\n", target,
                burst.reports.empty() ? "NO" : "YES",
                burst.metrics.detection_latency * 1e3);
    return 0;
}
