/**
 * @file
 * Spectral profiling: the predecessor technique EDDIE builds on
 * (Sehatbakhsh et al., MICRO 2016 — reference [72] of the paper)
 * attributes execution time to program loops purely from the EM
 * spectrum. EDDIE's region tracking subsumes it: this example runs
 * the monitor over a clean capture and prints the observer-effect-free
 * profile it recovers, next to the simulator's ground truth.
 *
 *   ./spectral_profiler [workload] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/pipeline.h"

using namespace eddie;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "bitcount";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    core::PipelineConfig cfg;
    cfg.train_runs = 8;
    cfg.path = core::SignalPath::EmBaseband;
    cfg.channel.snr_db = 30.0;
    cfg.core.os_irq_rate_hz = 1000.0;

    core::Pipeline pipe(workloads::makeWorkload(name, scale), cfg);
    const auto model = pipe.trainModel();

    // Profile one fresh execution purely from its emanations.
    const auto stream = pipe.captureRun(31337);
    core::Monitor mon(model, cfg.monitor);
    for (const auto &sts : stream)
        mon.step(sts);

    const auto &regions = model.regions;
    std::vector<std::size_t> em_profile(regions.size(), 0);
    std::vector<std::size_t> truth_profile(regions.size(), 0);
    std::size_t matched = 0, labeled = 0;
    for (std::size_t t = 0; t < stream.size(); ++t) {
        const auto mon_region = mon.records()[t].region;
        if (mon_region < regions.size())
            ++em_profile[mon_region];
        const auto truth = stream[t].true_region;
        if (truth < regions.size()) {
            ++truth_profile[truth];
            ++labeled;
            if (truth == mon_region)
                ++matched;
        }
    }

    const double window_ms = 1e3 * (stream.size() > 1 ?
        stream[1].t_start - stream[0].t_start : 0.0);
    std::printf("EM-only execution profile of '%s' (%zu windows, "
                "%.3f ms/window):\n\n", name.c_str(), stream.size(),
                window_ms);
    std::printf("%-14s %14s %16s\n", "region", "EM profile",
                "ground truth");
    for (std::size_t r = 0; r < regions.size(); ++r) {
        if (em_profile[r] == 0 && truth_profile[r] == 0)
            continue;
        std::printf("%-14s %13.1f%% %15.1f%%\n",
                    regions[r].name.c_str(),
                    100.0 * double(em_profile[r]) /
                        double(stream.size()),
                    100.0 * double(truth_profile[r]) /
                        double(stream.size()));
    }
    std::printf("\nattribution agreement with ground truth: %.1f%%\n",
                100.0 * double(matched) /
                    double(std::max<std::size_t>(labeled, 1)));
    std::printf("(the monitored program executed zero profiling "
                "instructions)\n");
    return 0;
}
