/**
 * @file
 * Stealth probe: from the attacker's perspective, how little work can
 * injected code do and still evade EDDIE? Sweeps the contamination
 * rate and payload size for a chosen workload and prints the
 * detection outcome of each combination — the "stealth budget" the
 * paper's Sections 5.4-5.5 map out.
 *
 *   ./stealth_probe [workload] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "bitcount";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    core::PipelineConfig cfg;
    cfg.train_runs = 8;
    auto w = workloads::makeWorkload(name, scale);
    const std::size_t target = inject::defaultTargetLoop(w);
    core::Pipeline pipe(std::move(w), cfg);
    const auto model = pipe.trainModel();

    const std::size_t payloads[] = {2, 4, 8};
    const double rates[] = {0.05, 0.10, 0.25, 0.50, 1.00};

    std::printf("stealth budget for '%s', injecting into region "
                "L%zu\n\n", name.c_str(), target);
    std::printf("%10s", "payload");
    for (double r : rates)
        std::printf("   rate %3.0f%%", r * 100.0);
    std::printf("\n");

    for (std::size_t p : payloads) {
        std::printf("%6zu ops", p);
        for (double rate : rates) {
            std::size_t injected = 0, tp = 0;
            double latency = -1.0;
            for (std::uint64_t s = 0; s < 3; ++s) {
                const auto ev = pipe.monitorRun(
                    model, 7000 + s,
                    inject::loopPayload(target, p, rate, 7000 + s));
                injected += ev.metrics.injected_groups;
                tp += ev.metrics.true_positives;
                if (ev.metrics.detection_latency >= 0.0 &&
                    latency < 0.0) {
                    latency = ev.metrics.detection_latency;
                }
            }
            const double tpr = injected > 0 ?
                double(tp) / double(injected) : 0.0;
            if (latency < 0.0)
                std::printf("   %9s", "EVADED");
            else if (tpr > 0.5)
                std::printf("   %6.1fms*", latency * 1e3);
            else
                std::printf("   %6.1fms ", latency * 1e3);
        }
        std::printf("\n");
    }
    std::printf("\n'EVADED' = no report in any run; '*' = caught "
                "with TPR > 50%%.\nThe paper's conclusion: to stay "
                "hidden, injected code must keep its per-second\n"
                "execution share tiny — stealth caps the attacker's "
                "throughput.\n");
    return 0;
}
