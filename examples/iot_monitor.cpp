/**
 * @file
 * IoT monitoring scenario: the paper's deployment story — a cheap
 * receiver parked next to an embedded device that runs a fixed
 * application forever. This example drives the full EM chain
 * (emanation, channel noise, interferers, OS activity on the
 * monitored device) and shows EDDIE flagging a firmware implant that
 * activates only in a later run.
 *
 *   ./iot_monitor [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

int
main(int argc, char **argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;

    // The monitored device: an embedded board running a sensing
    // application (we use rijndael, think "encrypt-and-forward"),
    // with a Linux-style timer interrupt load.
    core::PipelineConfig cfg;
    cfg.train_runs = 8;
    cfg.path = core::SignalPath::EmBaseband;
    cfg.channel.snr_db = 30.0;
    cfg.channel.interferers.push_back({3.7e6, 0.05}); // nearby radio
    cfg.core.os_irq_rate_hz = 1000.0;

    auto workload = workloads::makeWorkload("rijndael", scale);
    const std::size_t target = inject::defaultTargetLoop(workload);
    core::Pipeline pipe(std::move(workload), cfg);

    std::printf("IoT monitor: device runs '%s'; receiver tuned to "
                "the clock, SNR %.0f dB, 1 interferer\n\n",
                pipe.workload().name.c_str(), cfg.channel.snr_db);

    std::printf("[day 0] characterizing normal behaviour (%zu "
                "training captures)...\n", cfg.train_runs);
    const auto model = pipe.trainModel();

    // Weeks of normal operation: every capture should stay quiet.
    std::printf("[day 1..5] monitoring normal operation:\n");
    std::size_t clean_reports = 0;
    for (int day = 1; day <= 5; ++day) {
        const auto ev = pipe.monitorRun(model, 5000 + day);
        clean_reports += ev.reports.size();
        std::printf("  day %d: %4zu windows, %zu alarms\n", day,
                    ev.metrics.groups, ev.reports.size());
    }

    // The implant activates: it piggybacks 8 instructions on every
    // encryption round (data exfiltration staging, say).
    std::printf("\n[day 6] firmware implant activates inside the "
                "cipher loop:\n");
    const auto attack = pipe.monitorRun(
        model, 5006, inject::canonicalLoopInjection(target, 1.0, 77));
    std::printf("  %zu alarms", attack.reports.size());
    if (!attack.reports.empty()) {
        std::printf("; first alarm %.2f ms after the implant started "
                    "executing", attack.metrics.detection_latency * 1e3);
    }
    std::printf("\n");

    // A stealthier variant: only 25 % of iterations contaminated.
    std::printf("\n[day 7] implant throttles itself to 25%% of "
                "iterations:\n");
    const auto stealth = pipe.monitorRun(
        model, 5007,
        inject::canonicalLoopInjection(target, 0.25, 78));
    std::printf("  %zu alarms", stealth.reports.size());
    if (!stealth.reports.empty() &&
        stealth.metrics.detection_latency >= 0.0) {
        std::printf(" (latency %.2f ms — stealth costs the attacker "
                    "time, not safety)",
                    stealth.metrics.detection_latency * 1e3);
    }
    std::printf("\n\nsummary: %zu false alarms across 5 clean days; "
                "implant %s\n", clean_reports,
                attack.reports.empty() ? "MISSED" : "caught");
    return 0;
}
