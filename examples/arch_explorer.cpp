/**
 * @file
 * Architecture explorer: how does the monitored core's
 * microarchitecture affect EDDIE? Runs the same workload + injection
 * across in-order/out-of-order cores of varying width, depth, and
 * ROB size, printing detection latency and accuracy per
 * configuration (the paper's Sec. 5.3 study in miniature).
 *
 *   ./arch_explorer [workload] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

namespace
{

struct Row
{
    cpu::CoreConfig core;
    const char *label;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "sha";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.8;

    std::vector<Row> rows;
    for (bool ooo : {false, true}) {
        for (std::size_t width : {1u, 2u, 4u}) {
            cpu::CoreConfig c;
            c.out_of_order = ooo;
            c.issue_width = width;
            c.pipeline_depth = ooo ? 12 : 8;
            c.rob_size = 96;
            rows.push_back({c, ooo ? "ooo" : "inorder"});
        }
    }

    std::printf("architecture sweep on '%s' (8-instr loop "
                "injection)\n\n", name.c_str());
    std::printf("%-8s %6s %6s %6s %12s %12s %8s\n", "core", "width",
                "depth", "rob", "IPC", "latency(ms)", "TPR");

    for (const auto &row : rows) {
        core::PipelineConfig cfg;
        cfg.train_runs = 6;
        cfg.core = row.core;
        auto w = workloads::makeWorkload(name, scale);
        const std::size_t target = inject::defaultTargetLoop(w);
        core::Pipeline pipe(std::move(w), cfg);

        const auto probe = pipe.simulate(1);
        const double ipc = double(probe.stats.instructions) /
            double(probe.stats.cycles);

        const auto model = pipe.trainModel();
        double latency_sum = 0.0;
        std::size_t detected = 0, injected = 0, tp = 0;
        for (std::uint64_t seed = 0; seed < 4; ++seed) {
            const auto ev = pipe.monitorRun(
                model, 6000 + seed,
                inject::canonicalLoopInjection(target, 1.0, seed));
            injected += ev.metrics.injected_groups;
            tp += ev.metrics.true_positives;
            if (ev.metrics.detection_latency >= 0.0) {
                latency_sum += ev.metrics.detection_latency;
                ++detected;
            }
        }
        std::printf("%-8s %6zu %6zu %6zu %12.2f %12s %7.1f%%\n",
                    row.label, row.core.issue_width,
                    row.core.pipeline_depth,
                    row.core.out_of_order ? row.core.rob_size : 0,
                    ipc,
                    detected > 0 ?
                        std::to_string(latency_sum / double(detected) *
                                       1e3).substr(0, 5).c_str() : "-",
                    100.0 * double(tp) /
                        double(std::max<std::size_t>(injected, 1)));
        std::fflush(stdout);
    }
    std::printf("\nExpected: out-of-order cores show equal accuracy "
                "but longer latency (more schedule\nvariation needs "
                "larger K-S groups), as in the paper's Fig. 4.\n");
    return 0;
}
