/**
 * @file
 * Figure 8: TPR vs detection latency for bursts of 100k-500k
 * injected instructions outside loops — an empty loop placed between
 * bitcount's loop regions (paper Sec. 5.5).
 */

#include <cstdio>

#include "bench_util.h"
#include "core/model.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Figure 8: TPR vs latency for bursts outside loops",
        "empty-loop burst between bitcount regions L2 and L3; sizes "
        "100k-500k dynamic instructions");

    auto w = workloads::makeWorkload("bitcount", opt.scale);
    core::Pipeline pipe(std::move(w), bench::simConfig(opt));
    const auto model = pipe.trainModel();

    const std::uint64_t sizes[] = {100'000, 187'000, 218'000,
                                   315'000, 400'000, 500'000};
    const std::size_t grid[] = {8, 16, 24, 32, 48};

    std::printf("%8s %14s", "n", "latency(ms)");
    for (std::uint64_t s : sizes)
        std::printf("  TPR@%3lluk", (unsigned long long)(s / 1000));
    std::printf("\n");
    bench::printRule();

    for (std::size_t n : grid) {
        const auto m = core::withGroupSize(model, n);
        std::printf("%8zu", n);
        bool first = true;
        for (std::uint64_t s : sizes) {
            std::size_t injected = 0, tp = 0;
            double latency_sum = 0.0;
            std::size_t detected = 0;
            const std::size_t runs = std::max<std::size_t>(
                opt.monitor_runs / 2, 2);
            for (std::size_t i = 0; i < runs; ++i) {
                // Burst after L2 (i.e. inside the L2->L3 region).
                auto plan = inject::burstOfSize(pipe.workload(), 2, s,
                                                1, 24000 + i);
                const auto ev = pipe.monitorRun(m, 24000 + i, plan);
                injected += ev.metrics.injected_groups;
                tp += ev.metrics.true_positives;
                if (ev.metrics.detection_latency >= 0.0) {
                    latency_sum += ev.metrics.detection_latency;
                    ++detected;
                }
            }
            if (first) {
                const double ms = detected > 0 ?
                    1000.0 * latency_sum / double(detected) : -1.0;
                std::printf(" %14s", bench::fmt(ms, 2).c_str());
                first = false;
            }
            const double tpr = injected > 0 ?
                100.0 * double(tp) / double(injected) : 0.0;
            std::printf(" %8.1f%%", tpr);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    bench::printRule();
    std::printf("Shape check vs paper Fig. 8: larger bursts are "
                "detected at higher rates and\nshorter latencies; "
                "all sizes here are catchable (the paper's smallest "
                "is 100k).\n");
    return 0;
}
