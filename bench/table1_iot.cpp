/**
 * @file
 * Table 1: EDDIE accuracy when monitoring the (simulated) IoT device
 * through the EM channel — detection latency, false positives,
 * accuracy, and coverage for all 10 benchmarks.
 *
 * As in the paper, injections outside loops are an empty-shell burst
 * (~476k instructions) and injections inside loops add 8 instructions
 * (4 integer + 4 memory) per iteration.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Table 1: accuracy for EDDIE monitoring of the IoT device "
        "(EM channel)",
        "shell burst (476k instr) outside loops + 8-instr loop "
        "injection; alpha = 0.01");

    std::printf("%-14s %14s %16s %13s %13s\n", "Benchmark",
                "Latency (ms)", "False pos (%)", "Accuracy (%)",
                "Coverage (%)");
    bench::printRule();

    for (const auto &name : workloads::workloadNames()) {
        auto w = workloads::makeWorkload(name, opt.scale);
        const std::size_t target = inject::defaultTargetLoop(w);
        core::Pipeline pipe(std::move(w), bench::iotConfig(opt));
        const auto model = pipe.trainModel();

        const auto agg = bench::evaluateWorkload(
            pipe, model, opt.monitor_runs, opt.monitor_runs,
            [&](std::size_t i) {
                // Alternate between the two paper injection styles.
                if (i % 2 == 0) {
                    return inject::canonicalLoopInjection(
                        target, 1.0, 600 + i);
                }
                return inject::shellBurst(pipe.workload(), target, 1,
                                          600 + i);
            });

        std::printf("%-14s %14s %16s %13s %13s\n", name.c_str(),
                    bench::fmt(agg.detection_latency_ms, 1).c_str(),
                    bench::fmt(agg.false_positive_pct, 2).c_str(),
                    bench::fmt(agg.accuracy_pct, 1).c_str(),
                    bench::fmt(agg.coverage_pct, 1).c_str());
        std::fflush(stdout);
    }
    bench::printRule();
    std::printf("Shape check vs paper Table 1: FP ~1%% or below, "
                "accuracy mostly >90%%, coverage high\nexcept for "
                "gsm (its dominant quantization loop has no usable "
                "peaks).\n");
    return 0;
}
