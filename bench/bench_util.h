/**
 * @file
 * Shared helpers for the experiment harnesses: canonical pipeline
 * configurations matching the paper's two setups, evaluation drivers,
 * and table printing.
 *
 * Environment knobs (all optional):
 *   EDDIE_SCALE         workload scale (default 0.5)
 *   EDDIE_TRAIN_RUNS    training runs per benchmark (default 8)
 *   EDDIE_MONITOR_RUNS  monitored runs per condition (default 5)
 *   EDDIE_FAST          set to 1 for a quick smoke configuration
 *   EDDIE_THREADS       worker threads (default 0 = hardware);
 *                       results are identical for any value
 */

#ifndef EDDIE_BENCH_BENCH_UTIL_H
#define EDDIE_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "inject/scenarios.h"

namespace eddie::bench
{

/** Benchmark-wide knobs read from the environment. */
struct BenchOptions
{
    double scale = 0.5;
    std::size_t train_runs = 8;
    std::size_t monitor_runs = 5;
    bool fast = false;
    /** Worker threads; 0 = hardware concurrency. */
    std::size_t threads = 0;
};

/** Reads BenchOptions from the environment. */
BenchOptions benchOptions();

/**
 * The paper's Table-1 setup: EM capture with channel noise and two
 * narrowband interferers.
 */
core::PipelineConfig iotConfig(const BenchOptions &opt);

/** The paper's Table-2 setup: clean simulator power signal. */
core::PipelineConfig simConfig(const BenchOptions &opt);

/** Produces the injection plan for monitored run @p i (or an empty
 *  plan for clean runs when the function is absent). */
using PlanFactory = std::function<cpu::InjectionPlan(std::size_t run)>;

/**
 * Full evaluation: train once, monitor clean runs (false positives,
 * coverage) and injected runs (latency, accuracy), aggregate in
 * paper units.
 */
core::AggregateMetrics evaluateWorkload(const core::Pipeline &pipe,
                                        const core::TrainedModel &model,
                                        std::size_t clean_runs,
                                        std::size_t injected_runs,
                                        const PlanFactory &make_plan,
                                        std::uint64_t seed_base = 7000);

/** Prints a horizontal rule sized for the standard table width. */
void printRule(std::size_t width = 78);

/** Prints the standard experiment header. */
void printHeader(const std::string &title, const std::string &detail);

/** Formats a metric or "-" when unavailable (negative). */
std::string fmt(double value, int precision = 1);

} // namespace eddie::bench

#endif // EDDIE_BENCH_BENCH_UTIL_H
