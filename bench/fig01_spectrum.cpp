/**
 * @file
 * Figure 1: spectrum of an AM-modulated loop activity.
 *
 * Runs a single-loop program on the simulated core, modulates its
 * power envelope onto a (scaled) clock carrier through the full
 * passband chain, and prints the spectrum around the carrier: the
 * carrier line plus the two sidebands at Fclock +- 1/T, where T is
 * the loop's per-iteration time.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "em/emanation.h"
#include "prog/builder.h"
#include "sig/peaks.h"
#include "sig/spectrum.h"
#include "sig/stft.h"

using namespace eddie;

namespace
{

constexpr double kIterations = 40000.0;

/** A single tight loop with a constant per-iteration time. */
prog::Program
singleLoop()
{
    prog::ProgramBuilder b("single-loop");
    const int rI = 1, rN = 2, rA = 3, rT = 4, rOne = 5;
    b.li(0, 0);
    b.li(rI, 0);
    b.li(rN, std::int64_t(kIterations));
    b.li(rOne, 1);
    b.li(rA, 4096);
    auto loop = b.newLabel();
    b.bind(loop);
    // A heavy phase (multiplies, high energy per cycle) followed by
    // a light phase (dependent adds): per-iteration period ~150
    // cycles with a strong amplitude swing — exactly the activity
    // pattern that amplitude-modulates the clock.
    for (int k = 0; k < 20; ++k)
        b.mul(rT, rT, rOne);
    for (int k = 0; k < 40; ++k) {
        b.add(rT, rT, rOne);
        b.xor_(rT, rT, rI);
    }
    b.ld(rT, rA);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.take();
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 1: Spectrum of an AM modulated loop activity",
        "Full passband chain: power envelope -> AM @ carrier -> "
        "IQ receiver -> spectrum");

    const auto program = singleLoop();
    const auto regions = prog::analyzeProgram(program);
    cpu::CoreConfig core_cfg;
    core_cfg.schedule_jitter = 0.005;
    cpu::Core core(core_cfg);
    const auto rr = core.run(program, regions, {}, {}, 42);

    // Scaled-down carrier (see DESIGN.md): the spectral mechanism is
    // identical to the paper's 1.008 GHz clock.
    auto pb = em::defaultPassbandConfig();
    pb.channel.snr_db = 35.0;
    const auto iq = em::passbandCapture(rr.power, rr.sample_rate, pb, 7);
    const double fs_iq = pb.am.sample_rate / double(pb.rx.decimation);

    sig::StftConfig sc;
    sc.window_size = 4096;
    sc.hop = 2048;
    sc.sample_rate = fs_iq;
    const sig::Stft stft(sc);
    const auto sg = stft.analyze(iq);
    const auto avg = sig::averageSpectrum(sg);

    // The loop frequency from the simulator ground truth.
    const double cycles_per_iter =
        double(rr.stats.cycles) / kIterations;
    const double t_iter = cycles_per_iter / core_cfg.clock_hz;
    const double f_loop = 1.0 / t_iter;
    std::printf("loop period T = %.1f ns  =>  f = 1/T = %.3f MHz\n",
                t_iter * 1e9, f_loop / 1e6);
    std::printf("carrier (simulated clock stand-in) = %.3f MHz\n\n",
                pb.am.carrier_hz / 1e6);

    // Print the spectrum in a +-2.5 x f_loop band around the carrier
    // (the receiver is tuned to the carrier, so it sits at 0 Hz).
    const auto db = sig::spectrumToDb(avg);
    const double span = 2.5 * f_loop;
    std::printf("%12s  %10s\n", "offset(kHz)", "dB");
    const std::size_t n = avg.size();
    std::vector<std::pair<double, double>> rows;
    for (std::size_t i = 0; i < n; ++i) {
        const double f = sg.binFrequency(i);
        if (f >= -span && f <= span)
            rows.emplace_back(f, db[i]);
    }
    std::sort(rows.begin(), rows.end());
    const std::size_t step = std::max<std::size_t>(rows.size() / 48, 1);
    for (std::size_t i = 0; i < rows.size(); i += step)
        std::printf("%12.1f  %10.1f\n", rows[i].first / 1e3,
                    rows[i].second);

    // Annotate the three lines like the paper's figure.
    sig::PeakOptions popt;
    popt.min_energy_frac = 0.0002;
    popt.max_peaks = 16;
    popt.dc_guard_bins = 0;
    popt.skip_dc = false;
    auto peaks = sig::findPeaks(avg, fs_iq, popt);
    std::printf("\nStrongest spectral lines:\n");
    std::size_t shown = 0;
    for (const auto &p : peaks) {
        if (std::abs(p.freq) > span)
            continue;
        const char *label = "";
        if (std::abs(p.freq) < f_loop * 0.2)
            label = "<- Fclock (carrier)";
        else if (std::abs(p.freq - f_loop) < f_loop * 0.2)
            label = "<- F1R = Fclock + 1/T";
        else if (std::abs(p.freq + f_loop) < f_loop * 0.2)
            label = "<- F1L = Fclock - 1/T";
        std::printf("  offset %+9.1f kHz  %7.1f dB  %s\n",
                    p.freq / 1e3, sig::powerToDb(p.power), label);
        if (++shown >= 7)
            break;
    }
    std::printf("\nExpected sidebands at +-%.1f kHz from the carrier "
                "(paper: +-2.64 MHz at 1.008 GHz).\n",
                f_loop / 1e3);
    return 0;
}
