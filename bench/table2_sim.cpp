/**
 * @file
 * Table 2: EDDIE's latency and accuracy when using the
 * simulator-generated power signal directly (no EM channel, no
 * noise) — the paper's SESC-based setup.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Table 2: EDDIE on the simulator-generated power signal",
        "same injections as Table 1; no channel noise or "
        "interference");

    std::printf("%-14s %14s %18s %13s %13s\n", "Benchmark",
                "Latency (ms)", "False rej (%)", "Accuracy (%)",
                "Coverage (%)");
    bench::printRule();

    for (const auto &name : workloads::workloadNames()) {
        auto w = workloads::makeWorkload(name, opt.scale);
        const std::size_t target = inject::defaultTargetLoop(w);
        core::Pipeline pipe(std::move(w), bench::simConfig(opt));
        const auto model = pipe.trainModel();

        const auto agg = bench::evaluateWorkload(
            pipe, model, opt.monitor_runs, opt.monitor_runs,
            [&](std::size_t i) {
                if (i % 2 == 0) {
                    return inject::canonicalLoopInjection(
                        target, 1.0, 700 + i);
                }
                return inject::shellBurst(pipe.workload(), target, 1,
                                          700 + i);
            });

        std::printf("%-14s %14s %18s %13s %13s\n", name.c_str(),
                    bench::fmt(agg.detection_latency_ms, 1).c_str(),
                    bench::fmt(agg.false_positive_pct, 2).c_str(),
                    bench::fmt(agg.accuracy_pct, 1).c_str(),
                    bench::fmt(agg.coverage_pct, 1).c_str());
        std::fflush(stdout);
    }
    bench::printRule();
    std::printf("Shape check vs paper Table 2: false rejections drop "
                "relative to the EM setup (no\nnoise/interrupts), "
                "accuracy and coverage stay high, gsm coverage stays "
                "the outlier.\n");
    return 0;
}
