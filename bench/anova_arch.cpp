/**
 * @file
 * Section 5.3 ANOVA study: which architectural parameters have a
 * statistically significant effect on EDDIE's detection latency?
 *
 * The paper sweeps issue width, pipeline depth, and (for OOO) ROB
 * size across 51 configurations and finds: nothing significant for
 * in-order cores; only pipeline depth (weakly) significant for
 * out-of-order cores, and only for small injections.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"
#include "stats/anova.h"

using namespace eddie;

namespace
{

double
configLatency(const char *workload, const cpu::CoreConfig &core,
              const bench::BenchOptions &opt, std::size_t payload,
              std::uint64_t seed)
{
    auto cfg = bench::simConfig(opt);
    cfg.core = core;
    cfg.train_runs = std::max<std::size_t>(opt.train_runs / 2, 3);
    auto w = workloads::makeWorkload(workload, opt.scale * 0.7);
    const std::size_t target = inject::defaultTargetLoop(w);
    core::Pipeline pipe(std::move(w), cfg);
    const auto model = pipe.trainModel();

    double sum = 0.0;
    std::size_t detected = 0;
    const std::size_t runs = std::max<std::size_t>(
        opt.monitor_runs / 2, 2);
    for (std::size_t i = 0; i < runs; ++i) {
        const auto ev = pipe.monitorRun(
            model, seed + i,
            inject::loopPayload(target, payload, 1.0, seed + i));
        if (ev.metrics.detection_latency >= 0.0) {
            sum += ev.metrics.detection_latency;
            ++detected;
        }
    }
    return detected > 0 ? 1000.0 * sum / double(detected) : 50.0;
}

void
anovaReport(const char *title,
            const std::vector<std::string> &factors,
            const std::vector<stats::AnovaObservation> &obs)
{
    const auto res = stats::anova(factors, obs, 0.05);
    std::printf("\n%s (%zu observations)\n", title, obs.size());
    std::printf("%-12s %10s %8s %10s %12s\n", "factor", "SS", "dof",
                "F", "p-value");
    for (const auto &e : res.effects) {
        std::printf("%-12s %10.2f %8.0f %10.2f %12.4f %s\n",
                    e.name.c_str(), e.sum_squares, e.dof, e.f,
                    e.p_value, e.significant ? "SIGNIFICANT" : "");
    }
}

} // namespace

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Sec. 5.3: N-way ANOVA of architectural parameters vs "
        "detection latency",
        "in-order: width x depth; out-of-order: width x depth x ROB; "
        "small (2-instr) and large (8-instr) injections");

    const std::vector<std::size_t> widths = {1, 2, 4};
    const std::vector<std::size_t> depths = {4, 12};
    const std::vector<std::size_t> robs = {32, 128};
    const char *workloads_used[] = {"bitcount", "sha"};

    for (std::size_t payload : {std::size_t(2), std::size_t(8)}) {
        std::printf("\n=== payload: %zu injected instructions per "
                    "iteration ===\n", payload);

        // In-order sweep.
        std::vector<stats::AnovaObservation> in_obs;
        for (std::size_t wi = 0; wi < widths.size(); ++wi) {
            for (std::size_t di = 0; di < depths.size(); ++di) {
                for (const char *wl : workloads_used) {
                    cpu::CoreConfig c;
                    c.out_of_order = false;
                    c.issue_width = widths[wi];
                    c.pipeline_depth = depths[di];
                    const double lat = configLatency(
                        wl, c, opt, payload,
                        11000 + 97 * wi + 13 * di);
                    in_obs.push_back({{wi, di}, lat});
                    std::printf("  inorder w%zu d%-2zu %-10s "
                                "latency %6.2f ms\n",
                                widths[wi], depths[di], wl, lat);
                    std::fflush(stdout);
                }
            }
        }
        anovaReport("In-order ANOVA", {"width", "depth"}, in_obs);

        // Out-of-order sweep.
        std::vector<stats::AnovaObservation> ooo_obs;
        for (std::size_t wi = 0; wi < widths.size(); ++wi) {
            for (std::size_t di = 0; di < depths.size(); ++di) {
                for (std::size_t ri = 0; ri < robs.size(); ++ri) {
                    for (const char *wl : workloads_used) {
                        cpu::CoreConfig c;
                        c.out_of_order = true;
                        c.issue_width = widths[wi];
                        c.pipeline_depth = depths[di];
                        c.rob_size = robs[ri];
                        const double lat = configLatency(
                            wl, c, opt, payload,
                            12000 + 89 * wi + 17 * di + 5 * ri);
                        ooo_obs.push_back({{wi, di, ri}, lat});
                    }
                }
            }
            std::printf("  ooo width %zu done\n", widths[wi]);
            std::fflush(stdout);
        }
        anovaReport("Out-of-order ANOVA", {"width", "depth", "rob"},
                    ooo_obs);
    }
    std::printf("\nShape check vs paper Sec. 5.3: in-order factors "
                "not significant; for OOO only the\npipeline depth "
                "approaches significance, and mainly for the small "
                "injection.\n");
    return 0;
}
