#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace eddie::bench
{

namespace
{

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr ? std::atof(v) : fallback;
}

std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr ? std::size_t(std::atoll(v)) : fallback;
}

} // namespace

BenchOptions
benchOptions()
{
    BenchOptions opt;
    opt.fast = envSize("EDDIE_FAST", 0) != 0;
    opt.scale = envDouble("EDDIE_SCALE", opt.fast ? 0.4 : 1.5);
    opt.train_runs = envSize("EDDIE_TRAIN_RUNS", opt.fast ? 4 : 8);
    opt.monitor_runs = envSize("EDDIE_MONITOR_RUNS", opt.fast ? 3 : 5);
    opt.threads = envSize("EDDIE_THREADS", 0);
    return opt;
}

core::PipelineConfig
iotConfig(const BenchOptions &opt)
{
    core::PipelineConfig cfg;
    cfg.train_runs = opt.train_runs;
    cfg.threads = opt.threads;
    cfg.path = core::SignalPath::EmBaseband;
    cfg.channel.snr_db = 30.0; // near-field probe: strong signal
    cfg.channel.interferers.push_back({3.7e6, 0.05});
    cfg.channel.interferers.push_back({-6.2e6, 0.03});
    // The device runs an OS: interrupts and system activity produce
    // occasional deviant STSs, as on the paper's Linux board.
    cfg.core.os_irq_rate_hz = 1000.0;
    return cfg;
}

core::PipelineConfig
simConfig(const BenchOptions &opt)
{
    core::PipelineConfig cfg;
    cfg.train_runs = opt.train_runs;
    cfg.threads = opt.threads;
    cfg.path = core::SignalPath::Power;
    return cfg;
}

core::AggregateMetrics
evaluateWorkload(const core::Pipeline &pipe,
                 const core::TrainedModel &model, std::size_t clean_runs,
                 std::size_t injected_runs, const PlanFactory &make_plan,
                 std::uint64_t seed_base)
{
    // Same run order as the old serial loop (clean runs, then
    // injected runs), evaluated as one parallel Monte-Carlo batch.
    std::vector<std::uint64_t> seeds;
    std::vector<cpu::InjectionPlan> plans;
    seeds.reserve(clean_runs + injected_runs);
    plans.reserve(clean_runs + injected_runs);
    for (std::size_t i = 0; i < clean_runs; ++i) {
        seeds.push_back(seed_base + i);
        plans.emplace_back();
    }
    for (std::size_t i = 0; i < injected_runs; ++i) {
        seeds.push_back(seed_base + 100 + i);
        plans.push_back(make_plan ? make_plan(i)
                                  : cpu::InjectionPlan());
    }
    const auto evals = pipe.monitorBatch(model, seeds, plans);

    std::vector<core::RunMetrics> runs;
    runs.reserve(evals.size());
    for (const auto &ev : evals)
        runs.push_back(ev.metrics);
    return core::aggregate(runs);
}

void
printRule(std::size_t width)
{
    for (std::size_t i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

void
printHeader(const std::string &title, const std::string &detail)
{
    printRule();
    std::printf("%s\n", title.c_str());
    if (!detail.empty())
        std::printf("%s\n", detail.c_str());
    printRule();
}

std::string
fmt(double value, int precision)
{
    if (value < 0.0)
        return "-";
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << value;
    return os.str();
}

} // namespace eddie::bench
