/**
 * @file
 * Figure 4: detection latency per code region, in-order vs
 * out-of-order — 15 loop regions drawn from several benchmarks
 * (paper: Basicmath, Bitcount, Susan).
 *
 * Out-of-order cores produce more variation in their dynamically
 * constructed schedules, so more STSs are needed to capture the
 * distribution and latency rises.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

namespace
{

/**
 * Detection latency as the paper defines it for this study: the
 * latency of the smallest K-S group size that reliably detects the
 * injection (a report in every run) — more schedule variation
 * broadens the reference distributions and pushes the required n up.
 * A *small* (2-instruction) payload is used: the paper's
 * architecture effects only appear for small injections (Sec. 5.3);
 * large ones shift the spectrum so far that any group size works.
 */
double
regionLatency(const core::Pipeline &pipe,
              const core::TrainedModel &model, std::size_t loop_region,
              std::size_t runs)
{
    for (std::size_t n : {8, 16, 24, 32, 48, 64, 96, 128}) {
        const auto m = core::withGroupSize(model, n);
        double sum = 0.0;
        std::size_t detected = 0;
        for (std::size_t i = 0; i < runs; ++i) {
            const auto ev = pipe.monitorRun(
                m, 4000 + i,
                inject::loopPayload(loop_region, 2, 1.0, 4000 + i));
            if (ev.metrics.detection_latency >= 0.0) {
                sum += ev.metrics.detection_latency;
                ++detected;
            }
        }
        if (detected == runs)
            return 1000.0 * sum / double(detected);
    }
    return -1.0;
}

} // namespace

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Figure 4: detection latency per region, in-order vs "
        "out-of-order",
        "small (2-instr) loop injection into each region; 15 regions from "
        "bitcount/basicmath/susan/dijkstra/sha");

    cpu::CoreConfig inorder;
    inorder.out_of_order = false;
    inorder.issue_width = 2;
    inorder.pipeline_depth = 8;
    cpu::CoreConfig ooo = inorder;
    ooo.out_of_order = true;
    ooo.issue_width = 4;
    ooo.rob_size = 64;

    const char *names[] = {"bitcount", "basicmath", "susan",
                           "dijkstra", "sha"};
    std::printf("%-22s %16s %16s\n", "Region", "In-order (ms)",
                "OOO (ms)");
    bench::printRule();

    std::size_t shown = 0;
    double sum_in = 0.0, sum_ooo = 0.0;
    std::size_t counted = 0;
    std::size_t miss_in = 0, miss_ooo = 0;
    for (const char *name : names) {
        auto cfg_in = bench::simConfig(opt);
        cfg_in.core = inorder;
        auto cfg_ooo = bench::simConfig(opt);
        cfg_ooo.core = ooo;

        core::Pipeline pipe_in(workloads::makeWorkload(name, opt.scale),
                               cfg_in);
        core::Pipeline pipe_ooo(workloads::makeWorkload(name,
                                                        opt.scale),
                                cfg_ooo);
        const auto model_in = pipe_in.trainModel();
        const auto model_ooo = pipe_ooo.trainModel();

        const std::size_t loops =
            pipe_in.workload().regions.num_loops;
        for (std::size_t l = 0; l < loops && shown < 15; ++l) {
            if (!model_in.regions[l].trained ||
                !model_ooo.regions[l].trained) {
                continue;
            }
            const double lat_in = regionLatency(
                pipe_in, model_in, l, opt.monitor_runs);
            const double lat_ooo = regionLatency(
                pipe_ooo, model_ooo, l, opt.monitor_runs);
            char label[64];
            std::snprintf(label, sizeof label, "%s/L%zu", name, l);
            std::printf("%-22s %16s %16s\n", label,
                        bench::fmt(lat_in, 2).c_str(),
                        bench::fmt(lat_ooo, 2).c_str());
            std::fflush(stdout);
            ++shown;
            miss_in += lat_in < 0.0;
            miss_ooo += lat_ooo < 0.0;
            if (lat_in >= 0.0 && lat_ooo >= 0.0) {
                sum_in += lat_in;
                sum_ooo += lat_ooo;
                ++counted;
            }
        }
        if (shown >= 15)
            break;
    }
    bench::printRule();
    if (counted > 0) {
        std::printf("%-22s %16.2f %16.2f   (both-detected "
                    "regions only)\n", "Avg",
                    sum_in / double(counted),
                    sum_ooo / double(counted));
    }
    std::printf("regions undetectable even at the largest group "
                "size: in-order %zu, OOO %zu\n", miss_in, miss_ooo);
    std::printf("Shape check vs paper Fig. 4: out-of-order cores "
                "need more STSs — here the extra\nschedule "
                "variation mostly shows as regions whose small "
                "injections exceed the swept\ngroup sizes entirely "
                "('-' above), which is the same latency cost taken "
                "to its limit.\n");
    return 0;
}
