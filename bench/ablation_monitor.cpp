/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *  - better-fit handoff on/off (our extension over Algorithm 1)
 *  - the reportThreshold streak tolerance (paper uses 3)
 *  - the 1 %-of-energy peak rule threshold
 */

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

namespace
{

struct Outcome
{
    double fp_pct = 0.0;
    double coverage_pct = 0.0;
    double tpr_pct = 0.0;
    double latency_ms = -1.0;
};

Outcome
evaluate(const core::Pipeline &pipe, const core::TrainedModel &model,
         std::size_t target, std::size_t runs)
{
    std::vector<core::RunMetrics> all;
    for (std::size_t i = 0; i < runs; ++i)
        all.push_back(pipe.monitorRun(model, 27000 + i).metrics);
    for (std::size_t i = 0; i < runs; ++i) {
        all.push_back(pipe.monitorRun(
                             model, 27100 + i,
                             inject::canonicalLoopInjection(
                                 target, 1.0, 27100 + i))
                          .metrics);
    }
    const auto agg = core::aggregate(all);
    return {agg.false_positive_pct, agg.coverage_pct,
            agg.true_positive_pct, agg.detection_latency_ms};
}

void
row(const char *label, const Outcome &o)
{
    std::printf("%-34s %8.2f%% %10.1f%% %9.1f%% %10s\n", label,
                o.fp_pct, o.coverage_pct, o.tpr_pct,
                bench::fmt(o.latency_ms, 2).c_str());
}

} // namespace

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Ablations: handoff, report threshold, peak-energy rule",
        "workload: bitcount; canonical 8-instr loop injection");

    auto w = workloads::makeWorkload("bitcount", opt.scale);
    const std::size_t target = inject::defaultTargetLoop(w);

    std::printf("%-34s %9s %11s %10s %11s\n", "variant", "FP",
                "coverage", "TPR", "latency");
    bench::printRule();

    // Baseline.
    {
        core::Pipeline pipe(workloads::makeWorkload("bitcount",
                                                    opt.scale),
                            bench::simConfig(opt));
        const auto model = pipe.trainModel();
        row("baseline", evaluate(pipe, model, target,
                                 opt.monitor_runs));
    }
    // U-test instead of K-S (the comparison of paper Sec. 4.2).
    {
        auto cfg = bench::simConfig(opt);
        cfg.monitor.test = core::TestKind::MannWhitney;
        core::Pipeline pipe(workloads::makeWorkload("bitcount",
                                                    opt.scale),
                            cfg);
        const auto model = pipe.trainModel();
        row("Mann-Whitney U instead of K-S",
            evaluate(pipe, model, target, opt.monitor_runs));
    }
    // Handoff disabled (literal Algorithm 1).
    {
        auto cfg = bench::simConfig(opt);
        cfg.monitor.enable_handoff = false;
        core::Pipeline pipe(workloads::makeWorkload("bitcount",
                                                    opt.scale),
                            cfg);
        const auto model = pipe.trainModel();
        row("no better-fit handoff",
            evaluate(pipe, model, target, opt.monitor_runs));
    }
    // Report threshold sweep.
    for (std::size_t thr : {std::size_t(0), std::size_t(1),
                            std::size_t(3), std::size_t(7)}) {
        auto cfg = bench::simConfig(opt);
        cfg.monitor.report_threshold = thr;
        core::Pipeline pipe(workloads::makeWorkload("bitcount",
                                                    opt.scale),
                            cfg);
        const auto model = pipe.trainModel();
        char label[64];
        std::snprintf(label, sizeof label, "reportThreshold = %zu",
                      thr);
        row(label, evaluate(pipe, model, target, opt.monitor_runs));
    }
    // Peak-energy rule.
    for (double frac : {0.002, 0.01, 0.05}) {
        auto cfg = bench::simConfig(opt);
        cfg.features.peaks.min_energy_frac = frac;
        core::Pipeline pipe(workloads::makeWorkload("bitcount",
                                                    opt.scale),
                            cfg);
        const auto model = pipe.trainModel();
        char label[64];
        std::snprintf(label, sizeof label,
                      "peak rule: %.1f%% of energy", frac * 100.0);
        row(label, evaluate(pipe, model, target, opt.monitor_runs));
    }
    bench::printRule();
    std::printf("Reading: the median-only U test inflates false "
                "positives (the paper's reason for\nchoosing K-S); "
                "the report threshold trades FP for latency; the "
                "1%% peak rule sits\nin the stable middle of its "
                "sweep (too strict and the features collapse).\n");
    return 0;
}
