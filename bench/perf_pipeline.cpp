/**
 * @file
 * perf_pipeline — stage-level performance benchmark of the EDDIE
 * pipeline, tracking the perf trajectory across PRs.
 *
 * Times the four pipeline stages (capture = simulate+emanate, STFT,
 * train, monitor), sweeps trainModel and monitorBatch over a thread
 * grid, and writes a machine-readable BENCH_pipeline.json with stage
 * wall-times, thread counts, and speedups vs. 1 thread.
 *
 *   perf_pipeline [--workload sha] [--scale S] [--runs N]
 *                 [--monitor-runs M] [--out BENCH_pipeline.json]
 *
 * Environment knobs from bench_util (EDDIE_SCALE, ...) are NOT used
 * here: perf numbers must be comparable across invocations, so all
 * knobs are explicit flags with fixed defaults.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "sig/stft.h"
#include "tools/tool_util.h"

using namespace eddie;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

/** Best-of-k wall time of @p fn in milliseconds. */
template <typename Fn>
double
bestOf(std::size_t k, Fn &&fn)
{
    double best = -1.0;
    for (std::size_t i = 0; i < k; ++i) {
        const auto t0 = Clock::now();
        fn();
        const double ms = msSince(t0);
        if (best < 0.0 || ms < best)
            best = ms;
    }
    return best;
}

void
printJsonMap(std::FILE *f, const char *key,
             const std::vector<std::size_t> &threads,
             const std::vector<double> &ms)
{
    std::fprintf(f, "  \"%s\": {", key);
    for (std::size_t i = 0; i < threads.size(); ++i)
        std::fprintf(f, "%s\"%zu\": %.3f", i == 0 ? "" : ", ",
                     threads[i], ms[i]);
    std::fprintf(f, "},\n");
}

} // namespace

int
main(int argc, char **argv)
{
    tools::Args args(argc, argv);
    const std::string workload_name = args.get("workload", "sha");
    const double scale = args.getDouble("scale", 0.5);
    const std::size_t train_runs =
        std::size_t(args.getLong("runs", 8));
    const std::size_t monitor_runs =
        std::size_t(args.getLong("monitor-runs", 8));
    const std::string out_path =
        args.get("out", "BENCH_pipeline.json");

    core::PipelineConfig cfg;
    cfg.train_runs = train_runs;
    auto workload = workloads::makeWorkload(workload_name, scale);

    bench::printHeader(
        "perf_pipeline — stage wall-times and thread scaling",
        "workload " + workload_name + ", hardware threads " +
            std::to_string(common::ThreadPool::hardwareThreads()));

    // Stage 1: capture (one full simulate + STS extraction).
    core::Pipeline pipe(std::move(workload), cfg);
    const auto rr = pipe.simulate(cfg.train_seed_base);
    const double capture_ms =
        bestOf(3, [&] { (void)pipe.captureRun(cfg.train_seed_base); });
    std::printf("capture (simulate+STFT+STS): %8.1f ms  (%zu samples)\n",
                capture_ms, rr.power.size());

    // Stage 2: STFT alone on the captured power trace, single
    // thread. samples/sec is the figure future PRs compare.
    sig::StftConfig sc;
    sc.window_size = cfg.stft_window;
    sc.hop = cfg.stft_hop;
    sc.window = cfg.stft_window_fn;
    sc.sample_rate = rr.sample_rate;
    const sig::Stft stft(sc);
    const double stft_ms = bestOf(5, [&] { (void)stft.analyze(rr.power); });
    const double stft_samples_per_sec =
        double(rr.power.size()) / (stft_ms * 1e-3);
    std::printf("stft: %8.1f ms  (%.3g samples/s)\n", stft_ms,
                stft_samples_per_sec);

    // Stage 3: trainModel over the thread grid.
    const std::vector<std::size_t> grid = {1, 2, 4, 8};
    std::vector<double> train_ms;
    for (std::size_t t : grid) {
        core::PipelineConfig c = cfg;
        c.threads = t;
        core::Pipeline p(workloads::makeWorkload(workload_name, scale),
                         c);
        const auto t0 = Clock::now();
        (void)p.trainModel();
        train_ms.push_back(msSince(t0));
        std::printf("train x%-2zu threads: %8.1f ms\n", t,
                    train_ms.back());
    }

    // Stage 4: batch monitoring over the thread grid.
    const auto model = pipe.trainModel();
    std::vector<std::uint64_t> seeds;
    for (std::size_t i = 0; i < monitor_runs; ++i)
        seeds.push_back(cfg.monitor_seed_base + i);
    std::vector<double> monitor_ms;
    for (std::size_t t : grid) {
        core::PipelineConfig c = cfg;
        c.threads = t;
        core::Pipeline p(workloads::makeWorkload(workload_name, scale),
                         c);
        const auto t0 = Clock::now();
        (void)p.monitorBatch(model, seeds);
        monitor_ms.push_back(msSince(t0));
        std::printf("monitor %zu runs x%-2zu threads: %8.1f ms\n",
                    monitor_runs, t, monitor_ms.back());
    }

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"perf_pipeline\",\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n",
                 workload_name.c_str());
    std::fprintf(f, "  \"scale\": %g,\n", scale);
    std::fprintf(f, "  \"train_runs\": %zu,\n", train_runs);
    std::fprintf(f, "  \"monitor_runs\": %zu,\n", monitor_runs);
    std::fprintf(f, "  \"hardware_threads\": %zu,\n",
                 common::ThreadPool::hardwareThreads());
    std::fprintf(f, "  \"capture_ms\": %.3f,\n", capture_ms);
    std::fprintf(f, "  \"stft_ms\": %.3f,\n", stft_ms);
    std::fprintf(f, "  \"stft_samples_per_sec\": %.1f,\n",
                 stft_samples_per_sec);
    printJsonMap(f, "train_ms", grid, train_ms);
    printJsonMap(f, "monitor_ms", grid, monitor_ms);
    std::fprintf(f, "  \"train_speedup_vs_1\": {");
    for (std::size_t i = 0; i < grid.size(); ++i)
        std::fprintf(f, "%s\"%zu\": %.3f", i == 0 ? "" : ", ",
                     grid[i], train_ms[0] / train_ms[i]);
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"monitor_speedup_vs_1\": {");
    for (std::size_t i = 0; i < grid.size(); ++i)
        std::fprintf(f, "%s\"%zu\": %.3f", i == 0 ? "" : ", ",
                     grid[i], monitor_ms[0] / monitor_ms[i]);
    std::fprintf(f, "}\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
