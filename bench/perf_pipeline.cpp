/**
 * @file
 * perf_pipeline — stage-level performance benchmark of the EDDIE
 * pipeline, tracking the perf trajectory across PRs.
 *
 * Times the four pipeline stages (capture = simulate+emanate, STFT,
 * train, monitor), breaks passband synthesis down per stage
 * (envelope/tones/AWGN/filter) against a reference implementation
 * using per-sample libm trig, std::normal_distribution, and separate
 * filter+decimate passes, measures capture-cache cold/warm
 * throughput, sweeps trainModel and monitorBatch over a thread grid,
 * isolates the Monitor::step hot loop on pre-captured streams
 * (legacy copy-and-sort vs presorted kernels vs sharded
 * monitorBatch, with STS/sec, runs/sec, and K-S calls/sec),
 * benchmarks the supervised serving runtime (steady-state STS/s
 * through a Supervisor, delta-checkpoint group-commit overhead, the
 * isolated cost of a full snapshot vs one delta commit, and recovery
 * latency after an injected worker crash — all required to
 * reproduce the bare monitor's verdicts bit-for-bit), prices the
 * EDDIEWIRE ingestion front end (loopback-TCP STS/s through
 * WireListener/WireClient vs the same session in-process, plus a
 * byte-level chaos run whose reconnect replay and typed malformed
 * rejections must still converge verdict-identical), measures the
 * EDDIEARC artifact store against the legacy per-kind persistence
 * (model text parse vs archive mmap reload, spill-file vs keyed
 * warm hits, delta group commits and recovery into file pair vs
 * container, plus the tail-only sector-verification proof), and
 * atomically writes a machine-readable BENCH_pipeline.json (tmp +
 * rename) with stage wall-times, before/after kernel speedups,
 * cache hit rates, requested vs resolved thread counts with
 * per-stage shard timings, and a final "asserts" block recording
 * whether the perf targets held on this machine.
 *
 *   perf_pipeline [--workload sha] [--scale S] [--runs N]
 *                 [--monitor-runs M] [--out BENCH_pipeline.json]
 *
 * Environment knobs from bench_util (EDDIE_SCALE, ...) are NOT used
 * here: perf numbers must be comparable across invocations, so all
 * knobs are explicit flags with fixed defaults.
 */

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <numbers>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/capture_cache.h"
#include "core/model.h"
#include "em/emanation.h"
#include "inject/scenarios.h"
#include "serve/checkpoint.h"
#include "serve/sample_source.h"
#include "serve/supervisor.h"
#include "serve/wire_client.h"
#include "serve/wire_listener.h"
#include "sig/filter.h"
#include "sig/modulation.h"
#include "sig/stft.h"
#include "store/archive.h"
#include "tools/tool_util.h"

using namespace eddie;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

/** Best-of-k wall time of @p fn in milliseconds. */
template <typename Fn>
double
bestOf(std::size_t k, Fn &&fn)
{
    double best = -1.0;
    for (std::size_t i = 0; i < k; ++i) {
        const auto t0 = Clock::now();
        fn();
        const double ms = msSince(t0);
        if (best < 0.0 || ms < best)
            best = ms;
    }
    return best;
}

void
printJsonMap(std::FILE *f, const char *key,
             const std::vector<std::size_t> &threads,
             const std::vector<double> &ms)
{
    std::fprintf(f, "  \"%s\": {", key);
    for (std::size_t i = 0; i < threads.size(); ++i)
        std::fprintf(f, "%s\"%zu\": %.3f", i == 0 ? "" : ", ",
                     threads[i], ms[i]);
    std::fprintf(f, "},\n");
}

void
printJsonTimings(std::FILE *f, const char *key,
                 const em::SynthesisTimings &t)
{
    std::fprintf(f,
                 "  \"%s\": {\"envelope_ms\": %.3f, \"tones_ms\": "
                 "%.3f, \"awgn_ms\": %.3f, \"filter_ms\": %.3f, "
                 "\"total_ms\": %.3f},\n",
                 key, t.envelope_ms, t.tones_ms, t.awgn_ms,
                 t.filter_ms,
                 t.envelope_ms + t.tones_ms + t.awgn_ms +
                     t.filter_ms);
}

// ---------------------------------------------------------------
// Reference synthesis chain: the pre-kernel formulation with a libm
// trig call per sample, std::normal_distribution AWGN, and separate
// firFilter + decimate passes. Kept here so every bench run reports
// the before/after kernel speedup on the same machine and input.
// ---------------------------------------------------------------

std::vector<double>
referenceAmModulate(const std::vector<double> &envelope,
                    double envelope_rate, const sig::AmConfig &am)
{
    const auto env = sig::normalizeEnvelope(envelope);
    const std::size_t n = std::size_t(double(env.size()) /
                                      envelope_rate * am.sample_rate);
    const double w = 2.0 * std::numbers::pi * am.carrier_hz;
    std::vector<double> rf(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = double(i) / am.sample_rate;
        const std::size_t j = std::min(
            env.size() - 1, std::size_t(t * envelope_rate));
        rf[i] = am.amplitude * (1.0 + am.depth * env[j]) *
                std::cos(w * t);
    }
    return rf;
}

void
referenceAddTone(std::mt19937_64 &rng, std::vector<double> &signal,
                 double freq_hz, double sample_rate, double amplitude)
{
    std::uniform_real_distribution<double> dist(
        0.0, 2.0 * std::numbers::pi);
    const double phase = dist(rng);
    const double w = 2.0 * std::numbers::pi * freq_hz;
    for (std::size_t i = 0; i < signal.size(); ++i)
        signal[i] += amplitude *
                     std::cos(w * double(i) / sample_rate + phase);
}

void
referenceAddAwgn(std::mt19937_64 &rng, std::vector<double> &signal,
                 double snr_db)
{
    double power = 0.0;
    for (double v : signal)
        power += v * v;
    power /= double(signal.size());
    const double sigma =
        std::sqrt(power / std::pow(10.0, snr_db / 10.0));
    std::normal_distribution<double> gauss;
    for (auto &v : signal)
        v += sigma * gauss(rng);
}

std::vector<sig::Complex>
referenceIqDownconvert(const std::vector<double> &rf,
                       const sig::ReceiverConfig &rx)
{
    const double w = 2.0 * std::numbers::pi * rx.center_hz;
    std::vector<sig::Complex> mixed(rf.size());
    for (std::size_t i = 0; i < rf.size(); ++i) {
        const double t = double(i) / rx.sample_rate;
        mixed[i] = 2.0 * rf[i] *
                   sig::Complex(std::cos(w * t), -std::sin(w * t));
    }
    const auto h = sig::designLowPass(rx.bandwidth_hz, rx.sample_rate,
                                      rx.fir_taps);
    return sig::decimate(sig::firFilter(mixed, h), rx.decimation);
}

/** Full reference chain with the same per-stage accounting as
 *  passbandCapture. */
std::vector<sig::Complex>
referencePassbandCapture(const std::vector<double> &power,
                         double power_rate,
                         const em::PassbandConfig &cfg,
                         std::uint64_t seed,
                         em::SynthesisTimings &t)
{
    std::mt19937_64 rng(seed);
    auto t0 = Clock::now();
    auto rf = referenceAmModulate(power, power_rate, cfg.am);
    t.envelope_ms += msSince(t0);

    t0 = Clock::now();
    for (const auto &tone : cfg.channel.interferers)
        referenceAddTone(rng, rf, cfg.am.carrier_hz + tone.offset_hz,
                         cfg.am.sample_rate, tone.amplitude);
    t.tones_ms += msSince(t0);

    t0 = Clock::now();
    if (cfg.channel.snr_db < 200.0)
        referenceAddAwgn(rng, rf, cfg.channel.snr_db);
    t.awgn_ms += msSince(t0);

    t0 = Clock::now();
    auto iq = referenceIqDownconvert(rf, cfg.rx);
    t.filter_ms += msSince(t0);
    return iq;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::Args args(argc, argv);
    const std::string workload_name = args.get("workload", "sha");
    const double scale = args.getDouble("scale", 0.5);
    const std::size_t train_runs =
        std::size_t(args.getLong("runs", 8));
    const std::size_t monitor_runs =
        std::size_t(args.getLong("monitor-runs", 8));
    const std::string out_path =
        args.get("out", "BENCH_pipeline.json");

    core::PipelineConfig cfg;
    cfg.train_runs = train_runs;
    auto workload = workloads::makeWorkload(workload_name, scale);

    bench::printHeader(
        "perf_pipeline — stage wall-times and thread scaling",
        "workload " + workload_name + ", hardware threads " +
            std::to_string(common::ThreadPool::hardwareThreads()));

    // Stage 1: capture (one full simulate + STS extraction).
    core::Pipeline pipe(std::move(workload), cfg);
    const auto rr = pipe.simulate(cfg.train_seed_base);
    const double capture_ms =
        bestOf(3, [&] { (void)pipe.captureRun(cfg.train_seed_base); });
    std::printf("capture (simulate+STFT+STS): %8.1f ms  (%zu samples)\n",
                capture_ms, rr.power.size());

    // Stage 2: STFT alone on the captured power trace, single
    // thread. samples/sec is the figure future PRs compare.
    sig::StftConfig sc;
    sc.window_size = cfg.stft_window;
    sc.hop = cfg.stft_hop;
    sc.window = cfg.stft_window_fn;
    sc.sample_rate = rr.sample_rate;
    const sig::Stft stft(sc);
    const double stft_ms = bestOf(5, [&] { (void)stft.analyze(rr.power); });
    const double stft_samples_per_sec =
        double(rr.power.size()) / (stft_ms * 1e-3);
    std::printf("stft: %8.1f ms  (%.3g samples/s)\n", stft_ms,
                stft_samples_per_sec);

    // Passband synthesis, per stage: the vectorized kernels (phasor
    // oscillators, ziggurat AWGN, fused decimating FIR)
    // against the per-sample trig reference, on the same power trace.
    auto pb = em::defaultPassbandConfig();
    pb.channel.snr_db = 25.0;
    pb.channel.interferers = {{250e3, 0.1}, {-400e3, 0.05}};

    em::SynthesisTimings synth_after;
    em::SynthesisTimings synth_before;
    const std::size_t synth_reps = 3;
    for (std::size_t i = 0; i < synth_reps; ++i) {
        (void)em::passbandCapture(rr.power, rr.sample_rate, pb, 11,
                                  &synth_after);
        (void)referencePassbandCapture(rr.power, rr.sample_rate, pb,
                                       11, synth_before);
    }
    const auto scaleTimings = [&](em::SynthesisTimings &t) {
        t.envelope_ms /= double(synth_reps);
        t.tones_ms /= double(synth_reps);
        t.awgn_ms /= double(synth_reps);
        t.filter_ms /= double(synth_reps);
    };
    scaleTimings(synth_after);
    scaleTimings(synth_before);
    const auto totalMs = [](const em::SynthesisTimings &t) {
        return t.envelope_ms + t.tones_ms + t.awgn_ms + t.filter_ms;
    };
    const double synth_speedup =
        totalMs(synth_before) / totalMs(synth_after);
    std::printf("synthesis (envelope/tones/awgn/filter), ms:\n");
    std::printf("  reference: %8.1f / %8.1f / %8.1f / %8.1f  "
                "(total %8.1f)\n",
                synth_before.envelope_ms, synth_before.tones_ms,
                synth_before.awgn_ms, synth_before.filter_ms,
                totalMs(synth_before));
    std::printf("  kernels:   %8.1f / %8.1f / %8.1f / %8.1f  "
                "(total %8.1f, %.2fx)\n",
                synth_after.envelope_ms, synth_after.tones_ms,
                synth_after.awgn_ms, synth_after.filter_ms,
                totalMs(synth_after), synth_speedup);

    // Capture cache: cold miss vs. warm hit on the same key.
    auto cache = std::make_shared<core::CaptureCache>();
    core::PipelineConfig cached_cfg = cfg;
    cached_cfg.capture_cache = cache;
    core::Pipeline cached_pipe(
        workloads::makeWorkload(workload_name, scale), cached_cfg);
    const auto cold_t0 = Clock::now();
    (void)cached_pipe.captureRun(cfg.train_seed_base);
    const double cache_cold_ms = msSince(cold_t0);
    const double cache_warm_ms = bestOf(
        5, [&] { (void)cached_pipe.captureRun(cfg.train_seed_base); });
    const auto cache_stats = cache->stats();
    const double cache_warm_speedup = cache_cold_ms / cache_warm_ms;
    std::printf("capture cache: cold %8.1f ms, warm %8.3f ms "
                "(%.0fx), %s\n",
                cache_cold_ms, cache_warm_ms, cache_warm_speedup,
                core::describe(cache_stats).c_str());

    // Stage 3: trainModel over the thread grid, best-of-2 per point.
    // resolveThreads clamps to hardware concurrency, so requesting
    // more threads than cores must never be slower than one thread;
    // when scheduler noise still leaves the 8-thread point behind the
    // 1-thread one, re-measure both endpoints (their distributions
    // are identical once clamped, so the minima converge).
    const std::vector<std::size_t> grid = {1, 2, 4, 8};
    const auto timeTrain = [&](std::size_t t) {
        core::PipelineConfig c = cfg;
        c.threads = t;
        core::Pipeline p(workloads::makeWorkload(workload_name, scale),
                         c);
        return bestOf(2, [&] { (void)p.trainModel(); });
    };
    std::vector<double> train_ms;
    for (std::size_t t : grid) {
        train_ms.push_back(timeTrain(t));
        std::printf("train x%-2zu threads: %8.1f ms\n", t,
                    train_ms.back());
    }
    for (int attempt = 0;
         attempt < 5 && train_ms.back() > train_ms.front();
         ++attempt) {
        train_ms.front() = std::min(train_ms.front(), timeTrain(1));
        train_ms.back() =
            std::min(train_ms.back(), timeTrain(grid.back()));
    }

    // Stage 4: batch monitoring over the thread grid — same
    // measurement discipline as the train grid above (best-of-2 per
    // point, then endpoint re-measure): monitorBatch clamps its pool
    // to the hardware, so the oversubscribed point can only look
    // slower than one thread through scheduler noise, and a
    // single-shot sample happily reports that noise as a regression.
    const auto model = pipe.trainModel();
    std::vector<std::uint64_t> seeds;
    for (std::size_t i = 0; i < monitor_runs; ++i)
        seeds.push_back(cfg.monitor_seed_base + i);
    const auto timeMonitor = [&](std::size_t t) {
        core::PipelineConfig c = cfg;
        c.threads = t;
        core::Pipeline p(workloads::makeWorkload(workload_name, scale),
                         c);
        return bestOf(2, [&] { (void)p.monitorBatch(model, seeds); });
    };
    std::vector<double> monitor_ms;
    for (std::size_t t : grid) {
        monitor_ms.push_back(timeMonitor(t));
        std::printf("monitor %zu runs x%-2zu threads: %8.1f ms\n",
                    monitor_runs, t, monitor_ms.back());
    }
    for (int attempt = 0;
         attempt < 5 && monitor_ms.back() > monitor_ms.front();
         ++attempt) {
        monitor_ms.front() = std::min(monitor_ms.front(), timeMonitor(1));
        monitor_ms.back() =
            std::min(monitor_ms.back(), timeMonitor(grid.back()));
    }

    // Stage 5: the Monitor::step hot loop in isolation. Streams are
    // captured once up front (the warm shared cache serves every
    // later lookup from memory), so the three variants time pure
    // monitoring of the *same* STS streams:
    //   legacy    — use_presorted=false: copy-and-sort both samples
    //               on every K-S/MWU call (the pre-PR formulation);
    //   presorted — the allocation-free kernels, one thread;
    //   sharded   — monitorBatch over the thread grid against the
    //               warm cache (read-only shared model, per-worker
    //               monitors).
    std::vector<std::shared_ptr<const std::vector<core::Sts>>> streams;
    std::size_t monitor_total_sts = 0;
    for (std::uint64_t seed : seeds) {
        streams.push_back(cached_pipe.captureRunShared(seed));
        monitor_total_sts += streams.back()->size();
    }

    struct LoopStats
    {
        std::size_t test_calls = 0;
        std::size_t reports = 0;
        std::size_t rejected = 0;
        std::size_t transitioned = 0;
    };
    const auto runMonitorLoop = [&](bool presorted) {
        core::MonitorConfig mc = cfg.monitor;
        mc.use_presorted = presorted;
        LoopStats s;
        for (const auto &stream : streams) {
            core::Monitor m(model, mc);
            for (const auto &sts : *stream)
                m.step(sts);
            s.test_calls += m.testCalls();
            s.reports += m.reports().size();
            for (const auto &rec : m.records()) {
                s.rejected += rec.rejected ? 1 : 0;
                s.transitioned += rec.transitioned ? 1 : 0;
            }
        }
        return s;
    };
    const LoopStats legacy_stats = runMonitorLoop(false);
    const LoopStats presorted_stats = runMonitorLoop(true);
    const bool verdicts_identical =
        legacy_stats.test_calls == presorted_stats.test_calls &&
        legacy_stats.reports == presorted_stats.reports &&
        legacy_stats.rejected == presorted_stats.rejected &&
        legacy_stats.transitioned == presorted_stats.transitioned;

    const double legacy_ms =
        bestOf(2, [&] { (void)runMonitorLoop(false); });
    const double presorted_ms =
        bestOf(3, [&] { (void)runMonitorLoop(true); });
    const double monitor_loop_speedup = legacy_ms / presorted_ms;
    const auto perSec = [](std::size_t count, double ms) {
        return double(count) / (ms * 1e-3);
    };
    std::printf("monitor loop (%zu runs, %zu STSs, %zu tests):\n",
                monitor_runs, monitor_total_sts,
                presorted_stats.test_calls);
    std::printf("  legacy:    %8.1f ms  (%.3g STS/s, %.3g tests/s)\n",
                legacy_ms, perSec(monitor_total_sts, legacy_ms),
                perSec(legacy_stats.test_calls, legacy_ms));
    std::printf("  presorted: %8.1f ms  (%.3g STS/s, %.3g tests/s, "
                "%.2fx)%s\n",
                presorted_ms, perSec(monitor_total_sts, presorted_ms),
                perSec(presorted_stats.test_calls, presorted_ms),
                monitor_loop_speedup,
                verdicts_identical ? "" : "  VERDICT MISMATCH");

    // Sharded: full monitorRun chains (capture lookup + step loop +
    // scoring) distributed over the pool, timed against the same
    // warm cache. Each grid point records the thread count the pool
    // actually resolved to (the hardware clamp) plus the per-stage
    // breakdown, so a flat curve is attributable from the artifact
    // alone: clamped resolution means the host lacks cores; a fat
    // setup_ms means per-run state construction dominates; a fat
    // capture_ms means the cache is not serving lookups.
    std::vector<double> sharded_ms;
    std::vector<std::size_t> resolved_grid;
    std::vector<core::BatchStageTimings> sharded_stages;
    for (std::size_t t : grid) {
        core::PipelineConfig c = cached_cfg;
        c.threads = t;
        core::Pipeline p(workloads::makeWorkload(workload_name, scale),
                         c);
        core::BatchStageTimings bt;
        sharded_ms.push_back(bestOf(
            2, [&] { (void)p.monitorBatch(model, seeds, {}, &bt); }));
        resolved_grid.push_back(bt.resolved_threads);
        sharded_stages.push_back(bt);
        std::printf("  sharded x%-2zu threads (resolved %zu): %8.1f ms"
                    "  (%.3g runs/s, %.2fx vs legacy serial; capture "
                    "%.1f / setup %.1f / kernel %.1f / score %.1f)\n",
                    t, bt.resolved_threads, sharded_ms.back(),
                    perSec(monitor_runs, sharded_ms.back()),
                    legacy_ms / sharded_ms.back(), bt.capture_ms,
                    bt.setup_ms, bt.kernel_ms, bt.score_ms);
    }
    const double sharded_8_speedup = legacy_ms / sharded_ms.back();
    const double sharded_self_speedup =
        sharded_ms.front() / sharded_ms.back();
    // The scaling target only binds when the hardware can actually
    // run >= 4 workers; otherwise the artifact itself (requested vs
    // resolved + stage timings above) is the proof of the clamp.
    const bool host_clamped =
        common::ThreadPool::resolveThreads(grid.back()) < 4;
    const bool sharded_scaling_ok =
        sharded_self_speedup >= 2.0 || host_clamped;

    // Stage 6: the supervised serving runtime (src/serve/) over the
    // same pre-captured streams, one shard per stream behind the
    // blocking bounded queue. Three measurements: steady-state
    // throughput with checkpointing off, the same run with periodic
    // disk checkpoints (write overhead), and a single-shard run with
    // one injected worker crash (restart latency). Every variant must
    // reproduce the bare monitor loop's verdicts bit-for-bit.
    const auto recordsEqual =
        [](const std::vector<core::StepRecord> &a,
           const std::vector<core::StepRecord> &b) {
            if (a.size() != b.size())
                return false;
            for (std::size_t i = 0; i < a.size(); ++i)
                if (a[i].region != b[i].region ||
                    a[i].tested != b[i].tested ||
                    a[i].rejected != b[i].rejected ||
                    a[i].reported != b[i].reported ||
                    a[i].transitioned != b[i].transitioned ||
                    a[i].degraded != b[i].degraded)
                    return false;
            return true;
        };
    const auto reportsEqual =
        [](const std::vector<core::AnomalyReport> &a,
           const std::vector<core::AnomalyReport> &b) {
            if (a.size() != b.size())
                return false;
            for (std::size_t i = 0; i < a.size(); ++i)
                if (a[i].step != b[i].step || a[i].time != b[i].time ||
                    a[i].region != b[i].region)
                    return false;
            return true;
        };
    // The steady-vs-checkpointed ratio needs a run long enough that
    // the one-time initial group snapshot and thread-scheduling noise
    // (17 threads on however many cores the host grants) do not
    // dominate a couple of milliseconds of wall time: tile each
    // captured stream, so the serving run measures steady-state
    // per-cut cost. Verdict baselines are computed over the tiled
    // streams, so bit-identical still means bit-identical.
    constexpr std::size_t kServeTile = 16;
    std::vector<std::shared_ptr<const std::vector<core::Sts>>>
        serve_streams;
    std::size_t serve_total_sts = 0;
    for (const auto &stream : streams) {
        auto tiled = std::make_shared<std::vector<core::Sts>>();
        tiled->reserve(stream->size() * kServeTile);
        for (std::size_t r = 0; r < kServeTile; ++r)
            tiled->insert(tiled->end(), stream->begin(),
                          stream->end());
        serve_total_sts += tiled->size();
        serve_streams.push_back(std::move(tiled));
    }
    std::vector<std::vector<core::StepRecord>> serve_base_records;
    std::vector<std::vector<core::AnomalyReport>> serve_base_reports;
    for (const auto &stream : serve_streams) {
        core::Monitor m(model, cfg.monitor);
        for (const auto &sts : *stream)
            m.step(sts);
        serve_base_records.push_back(m.records());
        serve_base_reports.push_back(m.reports());
    }

    const auto shared_model =
        std::make_shared<const core::TrainedModel>(model);
    const auto runServe = [&](const serve::ServeConfig &sc,
                              std::size_t num_shards,
                              serve::Supervisor::StepHook hook,
                              double &out_ms,
                              core::ServeStats &out_stats) {
        std::vector<std::unique_ptr<serve::VectorSource>> owned;
        std::vector<serve::SampleSource *> sources;
        for (std::size_t i = 0; i < num_shards; ++i) {
            owned.push_back(std::make_unique<serve::VectorSource>(
                serve_streams[i]));
            sources.push_back(owned.back().get());
        }
        serve::Supervisor sup(shared_model, sc);
        if (hook)
            sup.setStepHook(std::move(hook));
        const auto t0 = Clock::now();
        auto results = sup.run(sources);
        out_ms = msSince(t0);
        out_stats = sup.stats();
        return results;
    };
    const auto verdictsMatch =
        [&](const std::vector<serve::ShardResult> &results) {
            for (std::size_t i = 0; i < results.size(); ++i)
                if (!recordsEqual(results[i].records,
                                  serve_base_records[i]) ||
                    !reportsEqual(results[i].reports,
                                  serve_base_reports[i]))
                    return false;
            return true;
        };

    // Steady and checkpointed runs are best-of-5, with the two
    // configurations interleaved within each repetition: the overhead
    // ratio is a few percent, while run-to-run drift on a loaded
    // 1-core host is tens of percent, so back-to-back pairs (plus
    // best-of) are what make the ratio trustworthy. The verdict check
    // runs on every repetition, the stats come from the last.
    serve::ServeConfig steady_cfg;
    steady_cfg.monitor = cfg.monitor;
    steady_cfg.checkpoint_interval = 0;
    serve::ServeConfig ckpt_cfg = steady_cfg;
    ckpt_cfg.checkpoint_interval = 32;
    ckpt_cfg.checkpoint_path = out_path + ".serve-ckpt";
    bool serving_verdicts_ok = true;
    const std::size_t serve_reps = 7;
    double serve_steady_ms = -1.0;
    double serve_ckpt_ms = -1.0;
    core::ServeStats serve_steady_stats;
    core::ServeStats serve_ckpt_stats;
    for (std::size_t rep = 0; rep < serve_reps; ++rep) {
        double ms = 0.0;
        serving_verdicts_ok &= verdictsMatch(
            runServe(steady_cfg, streams.size(), nullptr, ms,
                     serve_steady_stats));
        if (serve_steady_ms < 0.0 || ms < serve_steady_ms)
            serve_steady_ms = ms;
        serving_verdicts_ok &= verdictsMatch(
            runServe(ckpt_cfg, streams.size(), nullptr, ms,
                     serve_ckpt_stats));
        if (serve_ckpt_ms < 0.0 || ms < serve_ckpt_ms)
            serve_ckpt_ms = ms;
        // Fresh files each repetition — otherwise rep N+1 appends to
        // rep N's delta log and replays it at startup.
        std::remove(ckpt_cfg.checkpoint_path.c_str());
        std::remove((ckpt_cfg.checkpoint_path + ".dlt").c_str());
    }
    const double serve_sts_per_sec =
        perSec(serve_total_sts, serve_steady_ms);
    std::remove(ckpt_cfg.checkpoint_path.c_str());
    std::remove((ckpt_cfg.checkpoint_path + ".dlt").c_str());
    const double ckpt_overhead_pct =
        (serve_ckpt_ms / serve_steady_ms - 1.0) * 100.0;

    // Isolated cost of one checkpoint write: serialize + fsync-free
    // atomic rename of a full end-of-stream monitor state, and the
    // incremental alternative — cutting a steady-state delta and
    // group-committing it to the append-only log.
    core::Monitor full_monitor(model, cfg.monitor);
    for (const auto &sts : *streams.front())
        full_monitor.step(sts);
    serve::CheckpointData snap;
    snap.monitor = full_monitor.exportState();
    snap.source_pos = snap.monitor.step_index;
    const std::string snap_path = out_path + ".serve-snap";
    const double checkpoint_write_ms = bestOf(
        5, [&] { serve::saveCheckpointFile(snap, snap_path); });
    std::remove(snap_path.c_str());

    double delta_commit_ms = 0.0;
    {
        serve::CheckpointStoreConfig store_cfg;
        store_cfg.path = snap_path;
        store_cfg.num_shards = 1;
        store_cfg.full_every = 1u << 20; // never rewrite in the loop
        serve::CheckpointStore store(store_cfg);
        store.submitFull(0, snap);
        full_monitor.resetDeltaBaseline(); // deltas chain off snap
        store.flush(); // full snapshot; later flushes are deltas
        delta_commit_ms = bestOf(5, [&] {
            store.submitDelta(0, full_monitor.exportDelta());
            store.flush();
        });
    }
    std::remove(snap_path.c_str());
    std::remove((snap_path + ".dlt").c_str());

    serve::ServeConfig rec_cfg = steady_cfg;
    rec_cfg.checkpoint_interval = 16;
    const std::size_t crash_step = serve_streams.front()->size() / 2;
    auto crash_fired = std::make_shared<std::atomic<bool>>(false);
    double serve_rec_ms = 0.0;
    core::ServeStats serve_rec_stats;
    const auto rec_results = runServe(
        rec_cfg, 1,
        [crash_step, crash_fired](std::size_t step,
                                  const std::atomic<bool> &) {
            if (step == crash_step && !crash_fired->exchange(true))
                throw std::runtime_error("injected worker crash");
        },
        serve_rec_ms, serve_rec_stats);
    serving_verdicts_ok &=
        rec_results.size() == 1 &&
        recordsEqual(rec_results[0].records, serve_base_records[0]) &&
        reportsEqual(rec_results[0].reports, serve_base_reports[0]);

    std::printf("serving runtime (%zu shards):\n", streams.size());
    std::printf("  steady:       %8.1f ms  (%.3g STS/s)%s\n",
                serve_steady_ms, serve_sts_per_sec,
                serving_verdicts_ok ? "" : "  VERDICT MISMATCH");
    std::printf("  checkpointed: %8.1f ms  (%llu cuts, %llu group "
                "commits, %llu full snapshots, %llu delta bytes, "
                "%+.1f%% vs steady)\n",
                serve_ckpt_ms,
                (unsigned long long)
                    serve_ckpt_stats.checkpoints_written,
                (unsigned long long)serve_ckpt_stats.group_commits,
                (unsigned long long)serve_ckpt_stats.full_snapshots,
                (unsigned long long)serve_ckpt_stats.delta_bytes,
                ckpt_overhead_pct);
    std::printf("  worker stages: queue wait %8.1f ms, step %8.1f "
                "ms, delta cut %8.1f ms (summed across shards)\n",
                serve_ckpt_stats.queue_wait_ms,
                serve_ckpt_stats.step_ms,
                serve_ckpt_stats.checkpoint_ms);
    std::printf("  full write:   %8.3f ms;  delta commit: %8.3f ms\n",
                checkpoint_write_ms, delta_commit_ms);
    std::printf("  recovery:     %8.1f ms  (%llu restart(s), "
                "%.2f ms restart latency)\n",
                serve_rec_ms,
                (unsigned long long)serve_rec_stats.worker_restarts,
                serve_rec_stats.restart_latency_ms);

    // Stage 6b: fleet isolation (the multi-tenant runtime). Three
    // tenants, one tiled stream each. The clean run is the baseline;
    // the faulted run crash-loops tenant "t0" three times (restart
    // budget raised, breaker disabled, so the victim recovers and
    // finishes) while the neighbors run clean. The figure of merit is
    // the worst HEALTHY tenant's completion latency, faulted vs
    // clean: per-tenant fault domains mean a misbehaving neighbor
    // must cost its peers at most a few percent. An over-subscribed
    // open attempt exercises admission accounting in the same run.
    const std::size_t fleet_tenants =
        std::min<std::size_t>(3, serve_streams.size());
    std::vector<std::size_t> fleet_lens;
    for (std::size_t t = 0; t < fleet_tenants; ++t)
        fleet_lens.push_back(serve_streams[t]->size());
    struct FleetBenchOut
    {
        double healthy_ms = 0.0;
        serve::FleetResult fr;
        core::ServeStats stats;
        bool verdicts_ok = true;
    };
    const auto runFleetBench = [&](bool faulted) {
        serve::TenantRegistry reg;
        std::vector<std::unique_ptr<serve::VectorSource>> owned;
        for (std::size_t t = 0; t < fleet_tenants; ++t) {
            serve::TenantSpec spec;
            // Two-step append: GCC 12's -Wrestrict misfires on
            // operator+(const char*, std::string&&).
            spec.id = "t";
            spec.id += std::to_string(t);
            spec.model = shared_model;
            if (t == 0) {
                spec.quota.max_sessions = 1;
                if (faulted) {
                    spec.quota.restart_budget = 16;
                    spec.breaker.fault_threshold = 0;
                }
            }
            reg.addTenant(spec);
        }
        for (std::size_t t = 0; t < fleet_tenants; ++t) {
            owned.push_back(std::make_unique<serve::VectorSource>(
                serve_streams[t]));
            std::string id = "t";
            id += std::to_string(t);
            if (!reg.openSession(id, owned.back().get()).admitted)
                throw std::runtime_error("fleet bench: not admitted");
        }
        serve::VectorSource extra(serve_streams[0]);
        if (reg.openSession("t0", &extra).admitted)
            throw std::runtime_error("fleet bench: over-admitted");

        serve::ServeConfig fcfg;
        fcfg.monitor = cfg.monitor;
        fcfg.checkpoint_interval = 32; // in-memory mirrors only
        serve::Supervisor sup(fcfg);
        const std::size_t crash_steps[] = {fleet_lens[0] / 4,
                                           fleet_lens[0] / 2,
                                           fleet_lens[0] * 3 / 4};
        auto fired =
            std::make_shared<std::array<std::atomic<bool>, 3>>();
        for (auto &b : *fired)
            b.store(false);
        auto finish =
            std::make_shared<std::array<std::atomic<double>, 3>>();
        for (auto &fm : *finish)
            fm.store(0.0);
        const auto bench_t0 = Clock::now();
        sup.setFleetStepHook(
            [&, fired, finish](std::size_t session,
                               const std::string &tenant,
                               std::size_t step,
                               const std::atomic<bool> &) {
                if (faulted && tenant == "t0")
                    for (std::size_t k = 0; k < 3; ++k)
                        if (step == crash_steps[k] &&
                            !(*fired)[k].exchange(true))
                            throw std::runtime_error(
                                "fleet bench: injected crash");
                // Sessions open tenant-major, so session == tenant
                // index here; stamp each healthy tenant's last step.
                if (session > 0 && step + 1 == fleet_lens[session])
                    (*finish)[session].store(msSince(bench_t0));
            });
        FleetBenchOut out;
        out.fr = sup.runFleet(reg);
        out.stats = sup.stats();
        for (std::size_t s = 1; s < fleet_tenants; ++s)
            out.healthy_ms =
                std::max(out.healthy_ms, (*finish)[s].load());
        for (std::size_t s = 0; s < fleet_tenants; ++s)
            out.verdicts_ok &=
                recordsEqual(out.fr.sessions[s].records,
                             serve_base_records[s]) &&
                reportsEqual(out.fr.sessions[s].reports,
                             serve_base_reports[s]);
        return out;
    };
    // Interleaved best-of-3 pairs, same discipline (and reason) as
    // the steady/checkpointed serving comparison above.
    double fleet_clean_ms = -1.0;
    double fleet_faulted_ms = -1.0;
    FleetBenchOut fleet_clean;
    FleetBenchOut fleet_faulted;
    bool fleet_verdicts_ok = true;
    for (int rep = 0; rep < 3; ++rep) {
        FleetBenchOut c = runFleetBench(false);
        fleet_verdicts_ok &= c.verdicts_ok;
        if (fleet_clean_ms < 0.0 || c.healthy_ms < fleet_clean_ms) {
            fleet_clean_ms = c.healthy_ms;
            fleet_clean = std::move(c);
        }
        FleetBenchOut x = runFleetBench(true);
        fleet_verdicts_ok &= x.verdicts_ok;
        if (fleet_faulted_ms < 0.0 ||
            x.healthy_ms < fleet_faulted_ms) {
            fleet_faulted_ms = x.healthy_ms;
            fleet_faulted = std::move(x);
        }
    }
    // Guard the single-stream case (one tenant = no healthy
    // neighbors): 0/0 here would put a NaN in the JSON artifact.
    const double fleet_degradation_pct =
        fleet_clean_ms > 0.0
            ? (fleet_faulted_ms / fleet_clean_ms - 1.0) * 100.0
            : 0.0;
    const bool fleet_isolation_ok = fleet_degradation_pct < 5.0;
    std::printf("fleet isolation (%zu tenants, crash-looping t0):\n",
                fleet_tenants);
    std::printf("  healthy latency: clean %8.1f ms, faulted %8.1f ms "
                "(%+.2f%% neighbor degradation)%s\n",
                fleet_clean_ms, fleet_faulted_ms,
                fleet_degradation_pct,
                fleet_verdicts_ok ? "" : "  VERDICT MISMATCH");
    std::printf("  victim: %llu restart(s), budget used %zu, breaker "
                "%s; admission: %llu admitted, %llu refused\n",
                (unsigned long long)
                    fleet_faulted.stats.worker_restarts,
                fleet_faulted.fr.tenants[0].restarts_used,
                fleet_faulted.fr.tenants[0].breaker_tripped
                    ? "tripped"
                    : "closed",
                (unsigned long long)
                    fleet_faulted.fr.admission.sessions_admitted,
                (unsigned long long)
                    fleet_faulted.fr.admission.rejected_tenant_limit);

    // Stage 6c: the fair-share fleet scheduler against the
    // thread-pair runtime it replaces. A session sweep over 4 equal
    // tenants, everyone consuming one shared short stream, so the
    // only variable is how the runtime multiplexes sessions onto
    // threads. The scheduler runs every point on a fixed worker pool;
    // the thread-pair path runs the 8- and 64-session points (its
    // 2-threads-per-session design is the thing being replaced, and
    // 2048 OS threads at the 1024 point is exactly what it cannot
    // do). Per-tenant step latency comes from inter-hook gaps inside
    // each session: the gap a window waits because 255 neighbors
    // share its worker is the multiplexing cost, and the worst/best
    // healthy-tenant p99 ratio is the fairness figure of merit.
    constexpr std::size_t kSchedTenants = 4;
    const std::size_t sched_workers = 4;
    const std::size_t sched_len =
        std::min<std::size_t>(64, streams.front()->size());
    auto sched_stream =
        std::make_shared<const std::vector<core::Sts>>(
            std::vector<core::Sts>(streams.front()->begin(),
                                   streams.front()->begin() +
                                       (std::ptrdiff_t)sched_len));
    std::vector<core::StepRecord> sched_oracle_records;
    std::vector<core::AnomalyReport> sched_oracle_reports;
    {
        core::Monitor m(model, cfg.monitor);
        for (const auto &sts : *sched_stream)
            m.step(sts);
        sched_oracle_records = m.records();
        sched_oracle_reports = m.reports();
    }
    const auto percentile = [](std::vector<double> v, double q) {
        if (v.empty())
            return 0.0;
        std::sort(v.begin(), v.end());
        const double idx = q * double(v.size() - 1);
        const std::size_t lo = std::size_t(idx);
        const std::size_t hi = std::min(lo + 1, v.size() - 1);
        return v[lo] + (v[hi] - v[lo]) * (idx - double(lo));
    };
    struct SchedRun
    {
        double wall_ms = 0.0;
        bool verdicts_ok = true;
        core::ServeStats stats;
        serve::SchedulerStats sched;
        /** Inter-hook step gaps, merged per tenant (ms). */
        std::array<std::vector<double>, kSchedTenants> gaps;
    };
    // workers == 0 selects the thread-pair runtime (no gap
    // recording: it is the throughput baseline, not a latency SUT).
    const auto runSchedFleet = [&](std::size_t sessions,
                                   std::size_t workers) {
        const std::size_t per_tenant = sessions / kSchedTenants;
        serve::TenantRegistry reg;
        std::vector<std::unique_ptr<serve::VectorSource>> owned;
        for (std::size_t t = 0; t < kSchedTenants; ++t) {
            serve::TenantSpec spec;
            spec.id = "s"; // two-step += (GCC 12 -Wrestrict)
            spec.id += std::to_string(t);
            spec.model = shared_model;
            reg.addTenant(spec);
        }
        for (std::size_t t = 0; t < kSchedTenants; ++t) {
            std::string id = "s";
            id += std::to_string(t);
            for (std::size_t k = 0; k < per_tenant; ++k) {
                owned.push_back(
                    std::make_unique<serve::VectorSource>(
                        sched_stream));
                if (!reg.openSession(id, owned.back().get())
                         .admitted)
                    throw std::runtime_error(
                        "scheduler bench: not admitted");
            }
        }
        serve::ServeConfig scfg;
        scfg.monitor = cfg.monitor;
        scfg.checkpoint_interval = 0; // mirrors only: pure multiplex
        scfg.scheduler.workers = workers;
        serve::Supervisor sup(scfg);
        // One gap vector per session, appended only by the worker
        // currently running that session (handoffs are ordered
        // through the run queue), merged per tenant after the run.
        auto last = std::make_shared<std::vector<double>>(sessions,
                                                          -1.0);
        auto gaps =
            std::make_shared<std::vector<std::vector<double>>>(
                sessions);
        const auto bench_t0 = Clock::now();
        if (workers > 0) {
            for (auto &g : *gaps)
                g.reserve(sched_len);
            sup.setFleetStepHook(
                [last, gaps, bench_t0](std::size_t session,
                                       const std::string &,
                                       std::size_t,
                                       const std::atomic<bool> &) {
                    const double now = msSince(bench_t0);
                    double &prev = (*last)[session];
                    if (prev >= 0.0)
                        (*gaps)[session].push_back(now - prev);
                    prev = now;
                });
        }
        SchedRun out;
        const serve::FleetResult fr = sup.runFleet(reg);
        out.wall_ms = msSince(bench_t0);
        out.stats = sup.stats();
        if (const serve::FleetScheduler *fs = sup.fleetScheduler())
            out.sched = fs->schedulerStats();
        for (std::size_t s = 0; s < fr.sessions.size(); ++s) {
            out.verdicts_ok &=
                !fr.sessions[s].escalated &&
                recordsEqual(fr.sessions[s].records,
                             sched_oracle_records) &&
                reportsEqual(fr.sessions[s].reports,
                             sched_oracle_reports);
            auto &tg = out.gaps[s / per_tenant];
            tg.insert(tg.end(), (*gaps)[s].begin(),
                      (*gaps)[s].end());
        }
        return out;
    };
    struct SchedPoint
    {
        std::size_t sessions = 0;
        double wall_ms = 0.0;
        double sts_per_s = 0.0;
        double utilization = 0.0;
        std::uint64_t dispatches = 0;
        std::uint64_t preemptions = 0;
        std::uint64_t requeues = 0;
        std::uint64_t parks = 0;
        std::array<double, kSchedTenants> p50_ms{};
        std::array<double, kSchedTenants> p99_ms{};
        double fairness_p99_ratio = 0.0;
        double pair_wall_ms = -1.0;
        double pair_sts_per_s = 0.0;
    };
    const std::size_t sched_sweep[] = {8, 64, 256, 1024};
    std::vector<SchedPoint> sched_points;
    bool sched_verdicts_ok = true;
    double sched_min_deficit = 0.0;
    std::size_t sched_feeders = 0;
    for (const std::size_t sessions : sched_sweep) {
        SchedPoint pt;
        pt.sessions = sessions;
        const double total_sts = double(sessions * sched_len);
        // Interleaved best-of at the comparison points, single shot
        // at the scale-out points (the pair path is absent there, so
        // there is no ratio for noise to corrupt).
        const bool compare = sessions <= 64;
        const int reps = compare ? 2 : 1;
        SchedRun best;
        best.wall_ms = -1.0;
        for (int rep = 0; rep < reps; ++rep) {
            SchedRun r = runSchedFleet(sessions, sched_workers);
            sched_verdicts_ok &= r.verdicts_ok;
            if (best.wall_ms < 0.0 || r.wall_ms < best.wall_ms)
                best = std::move(r);
            if (compare) {
                SchedRun p = runSchedFleet(sessions, 0);
                sched_verdicts_ok &= p.verdicts_ok;
                if (pt.pair_wall_ms < 0.0 ||
                    p.wall_ms < pt.pair_wall_ms)
                    pt.pair_wall_ms = p.wall_ms;
            }
        }
        pt.wall_ms = best.wall_ms;
        pt.sts_per_s = perSec(std::size_t(total_sts), pt.wall_ms);
        if (compare)
            pt.pair_sts_per_s =
                perSec(std::size_t(total_sts), pt.pair_wall_ms);
        pt.utilization =
            best.sched.wall_ms > 0.0
                ? best.sched.busy_ms /
                      (double(sched_workers) * best.sched.wall_ms)
                : 0.0;
        pt.dispatches = best.sched.dispatches;
        pt.preemptions = best.sched.preemptions;
        pt.requeues = best.sched.requeues;
        pt.parks = best.sched.parks;
        sched_feeders = best.sched.feeders;
        sched_min_deficit =
            std::min(sched_min_deficit, best.sched.min_deficit_steps);
        double worst_p99 = 0.0, best_p99 = -1.0;
        for (std::size_t t = 0; t < kSchedTenants; ++t) {
            pt.p50_ms[t] = percentile(best.gaps[t], 0.50);
            pt.p99_ms[t] = percentile(best.gaps[t], 0.99);
            worst_p99 = std::max(worst_p99, pt.p99_ms[t]);
            if (best_p99 < 0.0 || pt.p99_ms[t] < best_p99)
                best_p99 = pt.p99_ms[t];
        }
        pt.fairness_p99_ratio =
            best_p99 > 0.0 ? worst_p99 / best_p99 : 1.0;
        sched_points.push_back(pt);
    }
    // Machine-independent claims: the debt bound is the DRR fairness
    // invariant; the per-thread comparison divides each runtime's
    // aggregate STS/s at 64 sessions by the threads it spent (the
    // scheduler's pool vs two per session) — the scheduler exists to
    // win that ratio, by an order of magnitude.
    const serve::SchedulerConfig sched_defaults;
    const bool sched_debt_ok =
        sched_min_deficit >= -double(sched_defaults.batch_steps);
    const SchedPoint &pt64 = sched_points[1];
    const double sched_threads_64 =
        double(sched_workers + sched_feeders);
    const double pair_threads_64 = 2.0 * 64.0;
    const double sched_per_thread_64 =
        pt64.sts_per_s / sched_threads_64;
    const double pair_per_thread_64 =
        pt64.pair_sts_per_s / pair_threads_64;
    const bool sched_per_thread_ok =
        sched_per_thread_64 > pair_per_thread_64;
    const bool sched_fairness_ok = pt64.fairness_p99_ratio < 3.0;
    std::printf("fleet scheduler (%zu workers, %zu feeders, %zu "
                "tenants, %zu-window stream)%s:\n",
                sched_workers, sched_feeders, kSchedTenants,
                sched_len,
                sched_verdicts_ok ? "" : "  VERDICT MISMATCH");
    for (const SchedPoint &pt : sched_points) {
        std::printf("  %4zu sessions: %8.1f ms (%.3g STS/s, util "
                    "%4.1f%%, %llu dispatches, %llu preempts)",
                    pt.sessions, pt.wall_ms, pt.sts_per_s,
                    pt.utilization * 100.0,
                    (unsigned long long)pt.dispatches,
                    (unsigned long long)pt.preemptions);
        if (pt.pair_wall_ms >= 0.0)
            std::printf("  pair: %8.1f ms (%.3g STS/s)",
                        pt.pair_wall_ms, pt.pair_sts_per_s);
        std::printf("\n");
        std::printf("       step p99 per tenant: [%.2f, %.2f, %.2f, "
                    "%.2f] ms (worst/best %.2fx)\n",
                    pt.p99_ms[0], pt.p99_ms[1], pt.p99_ms[2],
                    pt.p99_ms[3], pt.fairness_p99_ratio);
    }
    std::printf("  per-thread STS/s at 64 sessions: scheduler %.3g "
                "(%g threads) vs pair %.3g (%g threads); min deficit "
                "%.1f steps (bound %g)\n",
                sched_per_thread_64, sched_threads_64,
                pair_per_thread_64, pair_threads_64,
                sched_min_deficit,
                -double(sched_defaults.batch_steps));

    // Stage 6d: wire ingestion (EDDIEWIRE, src/wire/ + the listener
    // front end). One tenant, one stream, consumed two ways: an
    // in-process VectorSource session, and a loopback TCP session fed
    // by a WireClient thread through WireListener -> WireSource
    // (frame encode, CRC, syscalls, and the receive window all on the
    // clock — the timer starts before the client connects, so
    // handshake cost is charged to the wire). The serving-bench tile
    // is re-tiled 8x further: connect + handshake + thread spawn are
    // one-time costs of a few ms, and the throughput claim is about
    // steady state, so the run must be long enough that those
    // constants do not masquerade as per-window cost. Interleaved
    // best-of pairs, same discipline (and reason) as the
    // steady/checkpointed comparison above. A third, single-shot run
    // streams under byte-level chaos (torn frames, disconnects,
    // duplicates, reorders, corruption, hostile lengths): its wall
    // time prices reconnect replay, and its listener counters prove
    // every injected fault landed in a typed bucket. All three paths
    // must reproduce the bare monitor's verdicts bit-for-bit.
    constexpr std::size_t kWireTile = 8;
    auto wire_stream = std::make_shared<std::vector<core::Sts>>();
    wire_stream->reserve(serve_streams[0]->size() * kWireTile);
    for (std::size_t r = 0; r < kWireTile; ++r)
        wire_stream->insert(wire_stream->end(),
                            serve_streams[0]->begin(),
                            serve_streams[0]->end());
    std::vector<core::StepRecord> wire_base_records;
    std::vector<core::AnomalyReport> wire_base_reports;
    {
        core::Monitor m(model, cfg.monitor);
        for (const auto &sts : *wire_stream)
            m.step(sts);
        wire_base_records = m.records();
        wire_base_reports = m.reports();
    }
    struct WireBenchOut
    {
        double wall_ms = 0.0;
        bool verdicts_ok = true;
        serve::WireListenerStats st;
        serve::WireClientReport rep;
    };
    // Clean and chaotic runs size their batches differently: the
    // clean run uses the deployment batch (fewer frames, fewer
    // syscalls — this is the configuration whose throughput the
    // ratio gate prices), while the chaos run shrinks batches so the
    // per-frame fate stream draws enough samples to fire every fault
    // class even at CI's smoke scale.
    constexpr std::size_t kWireCleanBatch = 256;
    constexpr std::size_t kWireChaosBatch = 32;
    const auto runWireBench = [&](const serve::WireChaosConfig
                                      *chaos) {
        serve::TenantRegistry reg;
        serve::TenantSpec spec;
        spec.id = "wire";
        spec.model = shared_model;
        reg.addTenant(spec);
        serve::WireListenerConfig lcfg;
        lcfg.tcp = "127.0.0.1:0";
        lcfg.accept_poll_ms = 2.0;
        lcfg.read_poll_ms = 10.0;
        serve::WireListener lst(reg, lcfg);
        lst.start();
        serve::WireClientConfig ccfg;
        ccfg.tcp = lst.tcpAddress();
        ccfg.tenant = "wire";
        ccfg.batch_windows = chaos ? kWireChaosBatch
                                   : kWireCleanBatch;
        if (chaos) {
            ccfg.chaos = *chaos;
            ccfg.backoff.initial_ms = 2.0;
            ccfg.backoff.max_ms = 20.0;
        }
        WireBenchOut out;
        std::thread client([&] {
            serve::VectorSource src(wire_stream);
            serve::WireClient c(ccfg);
            out.rep = c.stream(src);
        });
        if (lst.awaitSessions(1, 30000.0) != 1) {
            client.join();
            lst.drainAndClose();
            throw std::runtime_error(
                "wire bench: session not admitted");
        }
        lst.freezeAdmission();
        serve::ServeConfig wcfg;
        wcfg.monitor = cfg.monitor;
        wcfg.checkpoint_interval = 0;
        serve::Supervisor sup(wcfg);
        // Timed span = the supervised fleet drain, the same span the
        // in-process variant times — the ratio prices steady-state
        // ingest, not the one-time connect/handshake (whose cost
        // under faults is priced separately by the chaos run's
        // per-reconnect recovery figure).
        const auto t0 = Clock::now();
        const serve::FleetResult fr = sup.runFleet(reg);
        out.wall_ms = msSince(t0);
        client.join();
        lst.drainAndClose();
        out.st = lst.stats();
        out.verdicts_ok =
            out.rep.delivered_all && fr.sessions.size() == 1 &&
            recordsEqual(fr.sessions[0].records,
                         wire_base_records) &&
            reportsEqual(fr.sessions[0].reports,
                         wire_base_reports);
        return out;
    };
    const auto runWireInproc = [&] {
        serve::TenantRegistry reg;
        serve::TenantSpec spec;
        spec.id = "wire";
        spec.model = shared_model;
        reg.addTenant(spec);
        serve::VectorSource src(wire_stream);
        if (!reg.openSession("wire", &src).admitted)
            throw std::runtime_error(
                "wire bench: in-process session not admitted");
        serve::ServeConfig wcfg;
        wcfg.monitor = cfg.monitor;
        wcfg.checkpoint_interval = 0;
        serve::Supervisor sup(wcfg);
        const auto t0 = Clock::now();
        const serve::FleetResult fr = sup.runFleet(reg);
        const double ms = msSince(t0);
        if (fr.sessions.size() != 1 ||
            !recordsEqual(fr.sessions[0].records,
                          wire_base_records) ||
            !reportsEqual(fr.sessions[0].reports,
                          wire_base_reports))
            return -ms; // sign smuggles the verdict check
        return ms;
    };
    const std::size_t wire_sts = wire_stream->size();
    bool wire_verdicts_ok = true;
    double wire_inproc_ms = -1.0;
    double wire_loop_ms = -1.0;
    WireBenchOut wire_best;
    for (int rep = 0; rep < 3; ++rep) {
        double ms = runWireInproc();
        wire_verdicts_ok &= ms > 0.0;
        ms = std::abs(ms);
        if (wire_inproc_ms < 0.0 || ms < wire_inproc_ms)
            wire_inproc_ms = ms;
        WireBenchOut w = runWireBench(nullptr);
        wire_verdicts_ok &= w.verdicts_ok;
        if (wire_loop_ms < 0.0 || w.wall_ms < wire_loop_ms) {
            wire_loop_ms = w.wall_ms;
            wire_best = std::move(w);
        }
    }
    serve::WireChaosConfig wire_chaos;
    wire_chaos.seed = 0xEDD1E;
    wire_chaos.tear_prob = 0.10;
    wire_chaos.disconnect_prob = 0.10;
    wire_chaos.duplicate_prob = 0.08;
    wire_chaos.reorder_prob = 0.08;
    wire_chaos.corrupt_prob = 0.08;
    wire_chaos.hostile_len_prob = 0.05;
    const WireBenchOut wire_chaotic = runWireBench(&wire_chaos);
    wire_verdicts_ok &= wire_chaotic.verdicts_ok;
    const std::uint64_t wire_chaos_faults =
        wire_chaotic.rep.torn_frames +
        wire_chaotic.rep.forced_disconnects +
        wire_chaotic.rep.duplicate_batches +
        wire_chaotic.rep.reordered_batches +
        wire_chaotic.rep.corrupted_frames +
        wire_chaotic.rep.hostile_lengths;
    const std::uint64_t wire_malformed =
        wire_chaotic.st.wire.totalErrors();
    const double wire_sts_per_sec = perSec(wire_sts, wire_loop_ms);
    const double wire_throughput_ratio =
        wire_loop_ms > 0.0 ? wire_inproc_ms / wire_loop_ms : 0.0;
    // Replay under chaos is priced per reconnect: the wall-clock the
    // chaotic run lost versus the clean wire run, amortized over the
    // reconnects that caused it (0 reconnects would mean chaos never
    // cut the link — the probabilities above make that effectively
    // impossible over this many batches).
    const double wire_reconnect_ms =
        wire_chaotic.rep.reconnects > 0
            ? std::max(0.0, wire_chaotic.wall_ms - wire_loop_ms) /
                  double(wire_chaotic.rep.reconnects)
            : 0.0;
    const bool wire_throughput_ok = wire_throughput_ratio >= 0.75;
    std::printf("wire ingestion (loopback TCP, %zu windows, "
                "batch %zu clean / %zu chaos)%s:\n",
                wire_sts, kWireCleanBatch, kWireChaosBatch,
                wire_verdicts_ok ? "" : "  VERDICT MISMATCH");
    std::printf("  in-process:   %8.1f ms;  loopback: %8.1f ms "
                "(%.3g STS/s, %.2fx of in-process)\n",
                wire_inproc_ms, wire_loop_ms, wire_sts_per_sec,
                wire_throughput_ratio);
    std::printf("  clean run:    %llu batches, %llu bytes, "
                "%llu acks, %llu nacks\n",
                (unsigned long long)wire_best.rep.batches_sent,
                (unsigned long long)wire_best.rep.bytes_sent,
                (unsigned long long)wire_best.st.acks_sent,
                (unsigned long long)wire_best.st.nacks_sent);
    std::printf("  chaos run:    %8.1f ms; %llu faults injected, "
                "%llu reconnects (%.2f ms each), %llu replayed, "
                "%llu malformed rejected, %llu gaps, %llu dup "
                "windows dropped, %llu nacks\n",
                wire_chaotic.wall_ms,
                (unsigned long long)wire_chaos_faults,
                (unsigned long long)wire_chaotic.rep.reconnects,
                wire_reconnect_ms,
                (unsigned long long)
                    wire_chaotic.rep.windows_replayed,
                (unsigned long long)wire_malformed,
                (unsigned long long)wire_chaotic.st.sequence_gaps,
                (unsigned long long)
                    wire_chaotic.st.duplicates_dropped,
                (unsigned long long)wire_chaotic.st.nacks_sent);

    // Stage 7: the EDDIEARC artifact store (src/store/) against the
    // legacy per-kind persistence it replaced.
    //
    // (a) Model load / hot-reload: the supervisor's reload path is
    // loadModelFile() end to end, so that is what both variants time —
    // text parse vs archive open + mmap + CRC-verify + binary decode.
    const std::string model_text_path = out_path + ".model.txt";
    const std::string model_arc_path = out_path + ".model.arc";
    core::saveModelFile(model, model_text_path,
                        core::ModelFormat::Text);
    core::saveModelFile(model, model_arc_path,
                        core::ModelFormat::Archive);
    const double model_text_load_ms = bestOf(
        5, [&] { (void)core::loadModelFile(model_text_path); });
    const double model_arc_load_ms = bestOf(
        5, [&] { (void)core::loadModelFile(model_arc_path); });
    const double model_reload_speedup =
        model_text_load_ms / model_arc_load_ms;
    // Bit-identity of the port: both files decode to models whose
    // canonical binary encodings match byte for byte.
    const bool model_roundtrip_identical =
        core::encodeModelBinary(
            core::loadModelFile(model_text_path)) ==
        core::encodeModelBinary(core::loadModelFile(model_arc_path));
    std::remove(model_text_path.c_str());
    std::remove(model_arc_path.c_str());

    // (b) Capture-spill warm hit: evict one stream to the disk tier,
    // then time clear() + lookup (a pure disk hit re-inserting into
    // an empty cache) — hash-named file vs archive keyed get.
    const auto timeSpillHit = [&](core::CaptureCacheConfig ccfg) {
        core::CaptureCache c(ccfg);
        const auto computeStream = [&] { return *streams.front(); };
        (void)c.getOrComputeShared("spill-bench-k0", computeStream);
        // Capacity 1: inserting the second key spills the first.
        (void)c.getOrComputeShared("spill-bench-k1", computeStream);
        const double ms = bestOf(5, [&] {
            c.clear();
            (void)c.getOrComputeShared("spill-bench-k0",
                                       computeStream);
        });
        if (c.stats().disk_hits == 0)
            throw std::runtime_error("spill bench never hit disk");
        return ms;
    };
    core::CaptureCacheConfig spill_dir_cfg;
    spill_dir_cfg.capacity = 1;
    spill_dir_cfg.spill_dir = out_path + ".spill-dir";
    std::filesystem::create_directories(spill_dir_cfg.spill_dir);
    const double spill_dir_hit_ms = timeSpillHit(spill_dir_cfg);
    core::CaptureCacheConfig spill_arc_cfg;
    spill_arc_cfg.capacity = 1;
    spill_arc_cfg.spill_archive = out_path + ".spill.arc";
    const double spill_arc_hit_ms = timeSpillHit(spill_arc_cfg);
    std::filesystem::remove_all(spill_dir_cfg.spill_dir);
    std::remove(spill_arc_cfg.spill_archive.c_str());

    // (c) Checkpoint delta group commit: the same submitDelta+flush
    // loop as the file-pair measurement above, but landing in the
    // archive (one keyed segment per commit).
    double delta_commit_arc_ms = 0.0;
    {
        serve::CheckpointStoreConfig store_cfg;
        store_cfg.path = snap_path;
        store_cfg.num_shards = 1;
        store_cfg.full_every = 1u << 20;
        store_cfg.use_archive = true;
        serve::CheckpointStore store(store_cfg);
        store.submitFull(0, snap);
        full_monitor.resetDeltaBaseline();
        store.flush();
        delta_commit_arc_ms = bestOf(5, [&] {
            store.submitDelta(0, full_monitor.exportDelta());
            store.flush();
        });
    }
    std::remove((snap_path + ".arc").c_str());

    // (d) Recovery latency after a long delta chain, file pair vs
    // archive, measured over the full CheckpointStore::recover()
    // (open + scan + replay).
    constexpr std::size_t kRecoveryDeltas = 32;
    const auto buildAndRecover = [&](bool use_archive) {
        serve::CheckpointStoreConfig store_cfg;
        store_cfg.path = snap_path;
        store_cfg.num_shards = 1;
        store_cfg.full_every = 1u << 20;
        store_cfg.use_archive = use_archive;
        {
            serve::CheckpointStore store(store_cfg);
            store.submitFull(0, snap);
            full_monitor.resetDeltaBaseline();
            store.flush();
            for (std::size_t i = 0; i < kRecoveryDeltas; ++i) {
                store.submitDelta(0, full_monitor.exportDelta());
                store.flush();
            }
        }
        const double ms = bestOf(3, [&] {
            serve::CheckpointStore fresh(store_cfg);
            if (fresh.recover() !=
                std::vector<bool>{true})
                throw std::runtime_error("recovery bench failed");
        });
        std::remove(snap_path.c_str());
        std::remove((snap_path + ".dlt").c_str());
        std::remove((snap_path + ".arc").c_str());
        return ms;
    };
    const double recovery_files_ms = buildAndRecover(false);
    const double recovery_arc_ms = buildAndRecover(true);

    // (e) Tail-only verification proof: populate an archive with many
    // multi-sector artifacts, reopen (header scan only), read ONE key
    // — the stats must show only that key's payload sectors were
    // CRC-verified, machine-independently.
    std::uint64_t arc_sectors_total = 0;
    std::uint64_t arc_sectors_verified = 0;
    {
        store::ArchiveConfig acfg;
        acfg.path = out_path + ".proof.arc";
        std::remove(acfg.path.c_str());
        const std::string value(8192, 'x');
        {
            store::Archive a(acfg);
            for (int i = 0; i < 32; ++i) {
                a.stagePut("proof/" + std::to_string(i), value);
            }
            a.commit();
        }
        store::Archive a(acfg);
        std::span<const char> span;
        if (a.get("proof/31", span) != store::GetStatus::Ok)
            throw std::runtime_error("proof archive read failed");
        const auto astats = a.stats();
        arc_sectors_total = astats.payload_sectors_total;
        arc_sectors_verified = astats.payload_sectors_verified;
        std::remove(acfg.path.c_str());
    }
    const bool recovery_tail_only =
        arc_sectors_verified > 0 &&
        arc_sectors_verified < arc_sectors_total;

    std::printf("artifact store (EDDIEARC):\n");
    std::printf("  model load:   text %8.3f ms, archive %8.3f ms "
                "(%.1fx)%s\n",
                model_text_load_ms, model_arc_load_ms,
                model_reload_speedup,
                model_roundtrip_identical ? "" : "  ROUNDTRIP MISMATCH");
    std::printf("  spill hit:    dir  %8.3f ms, archive %8.3f ms "
                "(%.1fx)\n",
                spill_dir_hit_ms, spill_arc_hit_ms,
                spill_dir_hit_ms / spill_arc_hit_ms);
    std::printf("  delta commit: files %7.3f ms, archive %8.3f ms\n",
                delta_commit_ms, delta_commit_arc_ms);
    std::printf("  recovery (%zu deltas): files %8.3f ms, archive "
                "%8.3f ms\n",
                kRecoveryDeltas, recovery_files_ms, recovery_arc_ms);
    std::printf("  verified %llu of %llu payload sectors after "
                "one-key read%s\n",
                (unsigned long long)arc_sectors_verified,
                (unsigned long long)arc_sectors_total,
                recovery_tail_only ? "" : "  (TAIL-ONLY VIOLATED)");

    // Degradation sweep: channel fault intensity vs detection
    // quality, with the signal-quality gate on and off. Both monitors
    // share one capture cache per point, so they score bit-identical
    // STS streams and the only difference is the gate.
    struct SweepRow
    {
        double intensity;
        double gated_fp, ungated_fp; // clean-run FP %
        double gated_tp, ungated_tp; // injected-run TP %
        double gated_degraded_pct;   // % of groups quarantined
    };
    const double intensities[] = {0.0, 0.5, 1.0, 2.0};
    const std::size_t target_loop =
        inject::defaultTargetLoop(pipe.workload());
    std::vector<SweepRow> sweep;
    std::printf("degradation sweep (fault intensity; FP%% on clean "
                "runs, TP%% on injected):\n");
    std::printf("  %-9s %10s %10s %10s %10s %10s\n", "intensity",
                "gated FP", "ungated FP", "gated TP", "ungated TP",
                "degraded");
    for (double k : intensities) {
        core::PipelineConfig c = cfg;
        auto &fc = c.channel.faults;
        fc.enabled = k > 0.0;
        fc.dropout.rate_hz = 120.0 * k;
        fc.dropout.mean_duration_s = 6e-4;
        fc.snr_collapse.rate_hz = 60.0 * k;
        fc.interference.rate_hz = 60.0 * k;
        c.capture_cache = std::make_shared<core::CaptureCache>();
        core::PipelineConfig cu = c;
        cu.monitor.quality.enabled = false;
        core::Pipeline gated(
            workloads::makeWorkload(workload_name, scale), c);
        core::Pipeline ungated(
            workloads::makeWorkload(workload_name, scale), cu);

        std::vector<std::uint64_t> clean_seeds;
        std::vector<std::uint64_t> inj_seeds;
        std::vector<cpu::InjectionPlan> plans;
        for (std::size_t i = 0; i < monitor_runs; ++i) {
            clean_seeds.push_back(cfg.monitor_seed_base + i);
            inj_seeds.push_back(cfg.monitor_seed_base + 100 + i);
            plans.push_back(inject::canonicalLoopInjection(
                target_loop, 1.0, inj_seeds.back()));
        }
        const auto scoreBatch =
            [&](const core::Pipeline &p,
                const std::vector<std::uint64_t> &seeds,
                const std::vector<cpu::InjectionPlan> &pl) {
                std::vector<core::RunMetrics> ms;
                for (const auto &ev : p.monitorBatch(model, seeds, pl))
                    ms.push_back(ev.metrics);
                return core::aggregate(ms);
            };
        const auto g_clean = scoreBatch(gated, clean_seeds, {});
        const auto u_clean = scoreBatch(ungated, clean_seeds, {});
        const auto g_inj = scoreBatch(gated, inj_seeds, plans);
        const auto u_inj = scoreBatch(ungated, inj_seeds, plans);
        sweep.push_back({k, g_clean.false_positive_pct,
                         u_clean.false_positive_pct,
                         g_inj.true_positive_pct,
                         u_inj.true_positive_pct,
                         g_clean.degraded_pct});
        std::printf("  %-9.2f %9.2f%% %9.2f%% %9.2f%% %9.2f%% "
                    "%9.2f%%\n",
                    k, g_clean.false_positive_pct,
                    u_clean.false_positive_pct,
                    g_inj.true_positive_pct, u_inj.true_positive_pct,
                    g_clean.degraded_pct);
        std::fflush(stdout);
    }

    // Written atomically: readers (CI's python asserts, concurrent
    // plotting scripts) either see the previous complete artifact or
    // this one, never a torn half-written file.
    const std::string tmp_path = out_path + ".tmp";
    std::FILE *f = std::fopen(tmp_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", tmp_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"perf_pipeline\",\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n",
                 workload_name.c_str());
    std::fprintf(f, "  \"scale\": %g,\n", scale);
    std::fprintf(f, "  \"train_runs\": %zu,\n", train_runs);
    std::fprintf(f, "  \"monitor_runs\": %zu,\n", monitor_runs);
    std::fprintf(f, "  \"hardware_threads\": %zu,\n",
                 common::ThreadPool::hardwareThreads());
    std::fprintf(f, "  \"thread_grid\": {\"requested\": [");
    for (std::size_t i = 0; i < grid.size(); ++i)
        std::fprintf(f, "%s%zu", i == 0 ? "" : ", ", grid[i]);
    std::fprintf(f, "], \"resolved\": [");
    for (std::size_t i = 0; i < resolved_grid.size(); ++i)
        std::fprintf(f, "%s%zu", i == 0 ? "" : ", ",
                     resolved_grid[i]);
    std::fprintf(f, "]},\n");
    std::fprintf(f, "  \"capture_ms\": %.3f,\n", capture_ms);
    std::fprintf(f, "  \"stft_ms\": %.3f,\n", stft_ms);
    std::fprintf(f, "  \"stft_samples_per_sec\": %.1f,\n",
                 stft_samples_per_sec);
    printJsonTimings(f, "synthesis_before", synth_before);
    printJsonTimings(f, "synthesis_after", synth_after);
    std::fprintf(f, "  \"synthesis_speedup\": %.3f,\n", synth_speedup);
    std::fprintf(f,
                 "  \"capture_cache\": {\"cold_ms\": %.3f, "
                 "\"warm_ms\": %.3f, \"warm_speedup\": %.1f, "
                 "\"hits\": %llu, \"misses\": %llu, \"hit_rate\": "
                 "%.3f},\n",
                 cache_cold_ms, cache_warm_ms, cache_warm_speedup,
                 (unsigned long long)cache_stats.hits,
                 (unsigned long long)cache_stats.misses,
                 cache_stats.hitRate());
    printJsonMap(f, "train_ms", grid, train_ms);
    printJsonMap(f, "monitor_ms", grid, monitor_ms);
    std::fprintf(f, "  \"train_speedup_vs_1\": {");
    for (std::size_t i = 0; i < grid.size(); ++i)
        std::fprintf(f, "%s\"%zu\": %.3f", i == 0 ? "" : ", ",
                     grid[i], train_ms[0] / train_ms[i]);
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"monitor_speedup_vs_1\": {");
    for (std::size_t i = 0; i < grid.size(); ++i)
        std::fprintf(f, "%s\"%zu\": %.3f", i == 0 ? "" : ", ",
                     grid[i], monitor_ms[0] / monitor_ms[i]);
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"monitor_loop\": {\n");
    std::fprintf(f, "    \"runs\": %zu,\n", monitor_runs);
    std::fprintf(f, "    \"total_sts\": %zu,\n", monitor_total_sts);
    std::fprintf(f, "    \"test_calls\": %zu,\n",
                 presorted_stats.test_calls);
    std::fprintf(f, "    \"legacy_ms\": %.3f,\n", legacy_ms);
    std::fprintf(f, "    \"presorted_ms\": %.3f,\n", presorted_ms);
    std::fprintf(f, "    \"single_thread_speedup\": %.3f,\n",
                 monitor_loop_speedup);
    std::fprintf(f, "    \"legacy_sts_per_sec\": %.1f,\n",
                 perSec(monitor_total_sts, legacy_ms));
    std::fprintf(f, "    \"presorted_sts_per_sec\": %.1f,\n",
                 perSec(monitor_total_sts, presorted_ms));
    std::fprintf(f, "    \"legacy_test_calls_per_sec\": %.1f,\n",
                 perSec(legacy_stats.test_calls, legacy_ms));
    std::fprintf(f, "    \"presorted_test_calls_per_sec\": %.1f,\n",
                 perSec(presorted_stats.test_calls, presorted_ms));
    std::fprintf(f, "    \"sharded_ms\": {");
    for (std::size_t i = 0; i < grid.size(); ++i)
        std::fprintf(f, "%s\"%zu\": %.3f", i == 0 ? "" : ", ",
                     grid[i], sharded_ms[i]);
    std::fprintf(f, "},\n");
    std::fprintf(f, "    \"sharded_runs_per_sec\": {");
    for (std::size_t i = 0; i < grid.size(); ++i)
        std::fprintf(f, "%s\"%zu\": %.1f", i == 0 ? "" : ", ",
                     grid[i], perSec(monitor_runs, sharded_ms[i]));
    std::fprintf(f, "},\n");
    std::fprintf(f, "    \"sharded_speedup_vs_legacy\": {");
    for (std::size_t i = 0; i < grid.size(); ++i)
        std::fprintf(f, "%s\"%zu\": %.3f", i == 0 ? "" : ", ",
                     grid[i], legacy_ms / sharded_ms[i]);
    std::fprintf(f, "},\n");
    std::fprintf(f, "    \"sharded_stages\": {\n");
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto &t = sharded_stages[i];
        std::fprintf(f,
                     "      \"%zu\": {\"requested_threads\": %zu, "
                     "\"resolved_threads\": %zu, \"capture_ms\": "
                     "%.3f, \"setup_ms\": %.3f, \"kernel_ms\": %.3f, "
                     "\"score_ms\": %.3f}%s\n",
                     grid[i], t.requested_threads, t.resolved_threads,
                     t.capture_ms, t.setup_ms, t.kernel_ms,
                     t.score_ms, i + 1 == grid.size() ? "" : ",");
    }
    std::fprintf(f, "    },\n");
    std::fprintf(f, "    \"verdicts_identical\": %s\n",
                 verdicts_identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"serving\": {\n");
    std::fprintf(f, "    \"shards\": %zu,\n", streams.size());
    std::fprintf(f, "    \"steady_ms\": %.3f,\n", serve_steady_ms);
    std::fprintf(f, "    \"steady_sts_per_sec\": %.1f,\n",
                 serve_sts_per_sec);
    std::fprintf(f, "    \"delivered\": %llu,\n",
                 (unsigned long long)serve_steady_stats.delivered);
    std::fprintf(f, "    \"blocked_pushes\": %llu,\n",
                 (unsigned long long)
                     serve_steady_stats.blocked_pushes);
    std::fprintf(f, "    \"checkpointed_ms\": %.3f,\n",
                 serve_ckpt_ms);
    std::fprintf(f, "    \"checkpoints_written\": %llu,\n",
                 (unsigned long long)
                     serve_ckpt_stats.checkpoints_written);
    std::fprintf(f, "    \"checkpoint_overhead_pct\": %.2f,\n",
                 ckpt_overhead_pct);
    std::fprintf(f, "    \"checkpoint_write_ms\": %.3f,\n",
                 checkpoint_write_ms);
    std::fprintf(f, "    \"delta_commit_ms\": %.3f,\n",
                 delta_commit_ms);
    std::fprintf(f, "    \"group_commits\": %llu,\n",
                 (unsigned long long)serve_ckpt_stats.group_commits);
    std::fprintf(f, "    \"full_snapshots\": %llu,\n",
                 (unsigned long long)serve_ckpt_stats.full_snapshots);
    std::fprintf(f, "    \"delta_bytes\": %llu,\n",
                 (unsigned long long)serve_ckpt_stats.delta_bytes);
    std::fprintf(f, "    \"delta_fallbacks\": %llu,\n",
                 (unsigned long long)
                     serve_ckpt_stats.delta_fallbacks);
    std::fprintf(f,
                 "    \"worker_stage_ms\": {\"queue_wait\": %.3f, "
                 "\"step\": %.3f, \"checkpoint\": %.3f},\n",
                 serve_ckpt_stats.queue_wait_ms,
                 serve_ckpt_stats.step_ms,
                 serve_ckpt_stats.checkpoint_ms);
    std::fprintf(f, "    \"recovery_ms\": %.3f,\n", serve_rec_ms);
    std::fprintf(f, "    \"worker_crashes\": %llu,\n",
                 (unsigned long long)serve_rec_stats.worker_crashes);
    std::fprintf(f, "    \"worker_restarts\": %llu,\n",
                 (unsigned long long)serve_rec_stats.worker_restarts);
    std::fprintf(f, "    \"restart_latency_ms\": %.3f,\n",
                 serve_rec_stats.restart_latency_ms);
    std::fprintf(f, "    \"verdicts_identical\": %s\n",
                 serving_verdicts_ok ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"fleet_isolation\": {\n");
    std::fprintf(f, "    \"tenants\": %zu,\n", fleet_tenants);
    std::fprintf(f, "    \"clean_healthy_ms\": %.3f,\n",
                 fleet_clean_ms);
    std::fprintf(f, "    \"faulted_healthy_ms\": %.3f,\n",
                 fleet_faulted_ms);
    std::fprintf(f, "    \"neighbor_degradation_pct\": %.2f,\n",
                 fleet_degradation_pct);
    std::fprintf(f, "    \"victim_restarts\": %llu,\n",
                 (unsigned long long)
                     fleet_faulted.stats.worker_restarts);
    std::fprintf(f, "    \"victim_budget_used\": %zu,\n",
                 fleet_faulted.fr.tenants[0].restarts_used);
    std::fprintf(f, "    \"victim_breaker_tripped\": %s,\n",
                 fleet_faulted.fr.tenants[0].breaker_tripped
                     ? "true"
                     : "false");
    std::fprintf(f, "    \"sessions_admitted\": %llu,\n",
                 (unsigned long long)
                     fleet_faulted.fr.admission.sessions_admitted);
    std::fprintf(f, "    \"sessions_rejected_tenant_limit\": %llu,\n",
                 (unsigned long long)
                     fleet_faulted.fr.admission.rejected_tenant_limit);
    std::fprintf(f, "    \"verdicts_identical\": %s\n",
                 fleet_verdicts_ok ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"fleet_scheduler\": {\n");
    std::fprintf(f, "    \"workers\": %zu,\n", sched_workers);
    std::fprintf(f, "    \"feeders\": %zu,\n", sched_feeders);
    std::fprintf(f, "    \"tenants\": %zu,\n", kSchedTenants);
    std::fprintf(f, "    \"stream_len\": %zu,\n", sched_len);
    std::fprintf(f, "    \"batch_steps\": %zu,\n",
                 sched_defaults.batch_steps);
    std::fprintf(f, "    \"min_deficit_steps\": %.3f,\n",
                 sched_min_deficit);
    std::fprintf(f, "    \"per_thread_sts_scheduler_64\": %.3f,\n",
                 sched_per_thread_64);
    std::fprintf(f, "    \"per_thread_sts_pair_64\": %.3f,\n",
                 pair_per_thread_64);
    std::fprintf(f, "    \"verdicts_identical\": %s,\n",
                 sched_verdicts_ok ? "true" : "false");
    std::fprintf(f, "    \"points\": [\n");
    for (std::size_t i = 0; i < sched_points.size(); ++i) {
        const SchedPoint &pt = sched_points[i];
        std::fprintf(f,
                     "      {\"sessions\": %zu, \"wall_ms\": %.3f, "
                     "\"sts_per_s\": %.1f, \"utilization\": %.4f, "
                     "\"dispatches\": %llu, \"preemptions\": %llu, "
                     "\"requeues\": %llu, \"parks\": %llu,\n",
                     pt.sessions, pt.wall_ms, pt.sts_per_s,
                     pt.utilization,
                     (unsigned long long)pt.dispatches,
                     (unsigned long long)pt.preemptions,
                     (unsigned long long)pt.requeues,
                     (unsigned long long)pt.parks);
        std::fprintf(f,
                     "       \"tenant_step_p50_ms\": [%.4f, %.4f, "
                     "%.4f, %.4f], \"tenant_step_p99_ms\": [%.4f, "
                     "%.4f, %.4f, %.4f], \"fairness_p99_ratio\": "
                     "%.3f,\n",
                     pt.p50_ms[0], pt.p50_ms[1], pt.p50_ms[2],
                     pt.p50_ms[3], pt.p99_ms[0], pt.p99_ms[1],
                     pt.p99_ms[2], pt.p99_ms[3],
                     pt.fairness_p99_ratio);
        std::fprintf(f,
                     "       \"pair_wall_ms\": %.3f, "
                     "\"pair_sts_per_s\": %.1f}%s\n",
                     pt.pair_wall_ms, pt.pair_sts_per_s,
                     i + 1 == sched_points.size() ? "" : ",");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"wire_ingestion\": {\n");
    std::fprintf(f, "    \"windows\": %zu,\n", wire_sts);
    std::fprintf(f, "    \"batch_windows\": %zu,\n",
                 kWireCleanBatch);
    std::fprintf(f, "    \"chaos_batch_windows\": %zu,\n",
                 kWireChaosBatch);
    std::fprintf(f, "    \"inprocess_ms\": %.3f,\n", wire_inproc_ms);
    std::fprintf(f, "    \"loopback_ms\": %.3f,\n", wire_loop_ms);
    std::fprintf(f, "    \"wire_sts_per_sec\": %.1f,\n",
                 wire_sts_per_sec);
    std::fprintf(f, "    \"throughput_ratio\": %.4f,\n",
                 wire_throughput_ratio);
    std::fprintf(f, "    \"clean_batches\": %llu,\n",
                 (unsigned long long)wire_best.rep.batches_sent);
    std::fprintf(f, "    \"clean_bytes\": %llu,\n",
                 (unsigned long long)wire_best.rep.bytes_sent);
    std::fprintf(f, "    \"chaos_ms\": %.3f,\n",
                 wire_chaotic.wall_ms);
    std::fprintf(f, "    \"chaos_faults_injected\": %llu,\n",
                 (unsigned long long)wire_chaos_faults);
    std::fprintf(f, "    \"chaos_reconnects\": %llu,\n",
                 (unsigned long long)wire_chaotic.rep.reconnects);
    std::fprintf(f, "    \"reconnect_recovery_ms\": %.3f,\n",
                 wire_reconnect_ms);
    std::fprintf(f, "    \"chaos_windows_replayed\": %llu,\n",
                 (unsigned long long)
                     wire_chaotic.rep.windows_replayed);
    std::fprintf(f, "    \"malformed_rejected\": %llu,\n",
                 (unsigned long long)wire_malformed);
    std::fprintf(f, "    \"sequence_gaps\": %llu,\n",
                 (unsigned long long)wire_chaotic.st.sequence_gaps);
    std::fprintf(f, "    \"duplicates_dropped\": %llu,\n",
                 (unsigned long long)
                     wire_chaotic.st.duplicates_dropped);
    std::fprintf(f, "    \"nacks_sent\": %llu,\n",
                 (unsigned long long)wire_chaotic.st.nacks_sent);
    std::fprintf(f, "    \"verdicts_identical\": %s\n",
                 wire_verdicts_ok ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"artifact_store\": {\n");
    std::fprintf(f, "    \"model_text_load_ms\": %.3f,\n",
                 model_text_load_ms);
    std::fprintf(f, "    \"model_arc_load_ms\": %.3f,\n",
                 model_arc_load_ms);
    std::fprintf(f, "    \"model_reload_speedup\": %.3f,\n",
                 model_reload_speedup);
    std::fprintf(f, "    \"model_roundtrip_identical\": %s,\n",
                 model_roundtrip_identical ? "true" : "false");
    std::fprintf(f, "    \"spill_dir_hit_ms\": %.3f,\n",
                 spill_dir_hit_ms);
    std::fprintf(f, "    \"spill_arc_hit_ms\": %.3f,\n",
                 spill_arc_hit_ms);
    std::fprintf(f, "    \"spill_hit_speedup\": %.3f,\n",
                 spill_dir_hit_ms / spill_arc_hit_ms);
    std::fprintf(f, "    \"delta_commit_file_ms\": %.3f,\n",
                 delta_commit_ms);
    std::fprintf(f, "    \"delta_commit_arc_ms\": %.3f,\n",
                 delta_commit_arc_ms);
    std::fprintf(f,
                 "    \"recovery\": {\"delta_segments\": %zu, "
                 "\"files_ms\": %.3f, \"archive_ms\": %.3f},\n",
                 kRecoveryDeltas, recovery_files_ms, recovery_arc_ms);
    std::fprintf(f,
                 "    \"sector_verify\": {\"payload_sectors_total\": "
                 "%llu, \"payload_sectors_verified\": %llu}\n",
                 (unsigned long long)arc_sectors_total,
                 (unsigned long long)arc_sectors_verified);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"asserts\": {\n");
    std::fprintf(f, "    \"monitor_loop_speedup_ge_2\": %s,\n",
                 monitor_loop_speedup >= 2.0 ? "true" : "false");
    std::fprintf(f, "    \"sharded_8_speedup_vs_legacy_ge_3\": %s,\n",
                 sharded_8_speedup >= 3.0 ? "true" : "false");
    std::fprintf(f, "    \"sharded_scaling_ok\": %s,\n",
                 sharded_scaling_ok ? "true" : "false");
    std::fprintf(f, "    \"host_thread_clamped\": %s,\n",
                 host_clamped ? "true" : "false");
    std::fprintf(f, "    \"checkpoint_overhead_lt_10\": %s,\n",
                 ckpt_overhead_pct < 10.0 ? "true" : "false");
    std::fprintf(f, "    \"train_8_no_slowdown\": %s,\n",
                 train_ms[0] / train_ms.back() >= 1.0 ? "true"
                                                      : "false");
    std::fprintf(f, "    \"monitor_8_no_slowdown\": %s,\n",
                 monitor_ms[0] / monitor_ms.back() >= 1.0 ? "true"
                                                          : "false");
    std::fprintf(f, "    \"awgn_kernel_no_regression\": %s,\n",
                 synth_after.awgn_ms <= synth_before.awgn_ms
                     ? "true"
                     : "false");
    std::fprintf(f, "    \"model_mmap_reload_ge_2x\": %s,\n",
                 model_reload_speedup >= 2.0 ? "true" : "false");
    std::fprintf(f, "    \"archive_recovery_tail_only\": %s,\n",
                 recovery_tail_only ? "true" : "false");
    std::fprintf(f, "    \"verdicts_identical\": %s,\n",
                 verdicts_identical ? "true" : "false");
    std::fprintf(f, "    \"serving_verdicts_identical\": %s,\n",
                 serving_verdicts_ok ? "true" : "false");
    std::fprintf(f, "    \"fleet_neighbor_degradation_lt_5\": %s,\n",
                 fleet_isolation_ok ? "true" : "false");
    std::fprintf(f, "    \"fleet_verdicts_identical\": %s,\n",
                 fleet_verdicts_ok ? "true" : "false");
    std::fprintf(f, "    \"scheduler_debt_bound_ok\": %s,\n",
                 sched_debt_ok ? "true" : "false");
    std::fprintf(f, "    \"scheduler_per_thread_sts_ge_pair\": %s,\n",
                 sched_per_thread_ok ? "true" : "false");
    std::fprintf(f, "    \"scheduler_fairness_p99_lt_3\": %s,\n",
                 sched_fairness_ok ? "true" : "false");
    std::fprintf(f, "    \"scheduler_verdicts_identical\": %s,\n",
                 sched_verdicts_ok ? "true" : "false");
    std::fprintf(f, "    \"wire_throughput_ratio_ge_075\": %s,\n",
                 wire_throughput_ok ? "true" : "false");
    std::fprintf(f, "    \"wire_verdicts_identical\": %s\n",
                 wire_verdicts_ok ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"degradation_sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto &r = sweep[i];
        std::fprintf(f,
                     "    {\"intensity\": %.2f, \"gated_fp_pct\": "
                     "%.3f, \"ungated_fp_pct\": %.3f, "
                     "\"gated_tp_pct\": %.3f, \"ungated_tp_pct\": "
                     "%.3f, \"gated_degraded_pct\": %.3f}%s\n",
                     r.intensity, r.gated_fp, r.ungated_fp, r.gated_tp,
                     r.ungated_tp, r.gated_degraded_pct,
                     i + 1 == sweep.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
        std::fprintf(stderr, "cannot publish %s\n", out_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
