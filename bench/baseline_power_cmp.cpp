/**
 * @file
 * EDDIE vs a WattsUpDoc-style system-wide power detector (paper
 * Sec. 6): power-sum monitoring catches gross consumption anomalies
 * but is blind to injections that leave mean power near normal,
 * while EDDIE keys on the *spectral structure* and catches both.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/baseline_power.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

namespace
{

struct Outcome
{
    double fp_pct = 0.0;
    double tpr_pct = 0.0;
};

/** Scores the power-sum detector on the same runs EDDIE sees. */
Outcome
powerDetector(const core::Pipeline &pipe, std::size_t target,
              std::size_t runs, const cpu::InjectionPlan &plan_proto,
              std::size_t window, std::size_t hop)
{
    // Train on clean power traces.
    std::vector<std::vector<double>> training;
    for (std::size_t i = 0; i < 6; ++i) {
        const auto rr = pipe.simulate(1000 + i);
        training.push_back(core::windowMeans(rr.power, window, hop));
    }
    const auto model = core::trainPowerDetector(training, 0.5);

    std::size_t clean_windows = 0, clean_flags = 0;
    std::size_t inj_windows = 0, inj_flags = 0;
    for (std::size_t i = 0; i < runs; ++i) {
        const auto clean = pipe.simulate(7000 + i);
        for (bool f : core::powerDetectorFlags(
                 model, core::windowMeans(clean.power, window, hop))) {
            ++clean_windows;
            clean_flags += f;
        }
        auto plan = plan_proto;
        plan.seed = 7100 + i;
        const auto rr = pipe.simulate(7100 + i, plan);
        const auto means = core::windowMeans(rr.power, window, hop);
        const auto flags = core::powerDetectorFlags(model, means);
        for (std::size_t w = 0; w < flags.size(); ++w) {
            // Charge the window to its position in the trace.
            const std::size_t sample = w * hop + window / 2;
            const bool injected = sample < rr.injected.size() &&
                rr.injected[sample];
            if (injected) {
                ++inj_windows;
                inj_flags += flags[w];
            }
        }
    }
    Outcome o;
    if (clean_windows > 0)
        o.fp_pct = 100.0 * double(clean_flags) / double(clean_windows);
    if (inj_windows > 0)
        o.tpr_pct = 100.0 * double(inj_flags) / double(inj_windows);
    (void)target;
    return o;
}

Outcome
eddieDetector(const core::Pipeline &pipe,
              const core::TrainedModel &model, std::size_t runs,
              const cpu::InjectionPlan &plan_proto)
{
    std::vector<core::RunMetrics> all;
    for (std::size_t i = 0; i < runs; ++i)
        all.push_back(pipe.monitorRun(model, 7000 + i).metrics);
    for (std::size_t i = 0; i < runs; ++i) {
        auto plan = plan_proto;
        plan.seed = 7100 + i;
        all.push_back(pipe.monitorRun(model, 7100 + i, plan).metrics);
    }
    const auto agg = core::aggregate(all);
    return {agg.false_positive_pct, agg.true_positive_pct};
}

} // namespace

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Baseline comparison: EDDIE vs system-wide power monitoring "
        "(WattsUpDoc-style)",
        "same traces, same injections; the power detector sees only "
        "window-mean power");

    auto w = workloads::makeWorkload("bitcount", opt.scale);
    const std::size_t target = inject::defaultTargetLoop(w);
    core::Pipeline pipe(std::move(w), bench::simConfig(opt));
    const auto model = pipe.trainModel();

    // Window sizes chosen to give the power detector the same
    // decision cadence as EDDIE's STFT windows.
    const std::size_t window = pipe.config().stft_window;
    const std::size_t hop = pipe.config().stft_hop;

    struct Scenario
    {
        const char *name;
        cpu::InjectionPlan plan;
    };
    const Scenario scenarios[] = {
        {"8-instr loop injection (mixed)",
         inject::canonicalLoopInjection(target, 1.0, 1)},
        {"8 adds/iteration (on-chip only)",
         inject::onChipLoopInjection(target, 1)},
        {"off-chip stores (power-heavy)",
         inject::offChipLoopInjection(target, 1)},
        {"476k instr shell burst",
         inject::shellBurst(pipe.workload(), target, 1, 1)},
    };

    std::printf("%-34s %14s %14s %14s %14s\n", "",
                "EDDIE FP", "EDDIE TPR", "power FP", "power TPR");
    bench::printRule();
    for (const auto &s : scenarios) {
        const auto e = eddieDetector(pipe, model, opt.monitor_runs,
                                     s.plan);
        const auto p = powerDetector(pipe, target, opt.monitor_runs,
                                     s.plan, window, hop);
        std::printf("%-34s %13.2f%% %13.1f%% %13.2f%% %13.1f%%\n",
                    s.name, e.fp_pct, e.tpr_pct, p.fp_pct, p.tpr_pct);
        std::fflush(stdout);
    }
    bench::printRule();
    std::printf("Shape check vs paper Sec. 6: EDDIE detects all "
                "injection styles; mean-power\nmonitoring only "
                "responds when the injection moves total "
                "consumption, and pays a\nstructural false-positive "
                "floor from its percentile thresholds.\n");
    return 0;
}
