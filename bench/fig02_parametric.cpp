/**
 * @file
 * Figure 2: normal vs malicious peak-frequency distributions, and why
 * EDDIE uses a nonparametric test.
 *
 * Takes one Susan loop nest, shows the empirical distribution of its
 * strongest peak, fits the best bi-normal (2-component GMM) model,
 * and compares the false positives / false negatives of the
 * parametric test against the K-S test on the same clean and
 * injected groups.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>

#include "bench_util.h"
#include "core/baseline_parametric.h"
#include "core/fast_ks.h"
#include "stats/ks.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

namespace
{

/** A group: per peak rank, n observations. */
using Group = std::vector<std::vector<double>>;

/**
 * Collects per-rank groups of a region's STSs from monitored runs.
 *
 * Group members are sampled randomly (fixed seed) rather than taken
 * consecutively: Figure 2 is about how well each test matches the
 * region's *distribution*; consecutive windows add the temporal
 * phase-correlation question, which Figure 3 and the monitor's
 * group-size selection address.
 */
std::vector<Group>
collectGroups(const core::Pipeline &pipe, std::size_t region,
              std::size_t n, std::size_t ranks, std::size_t runs,
              std::uint64_t seed0, const bench::PlanFactory &factory)
{
    std::vector<const core::Sts *> pool;
    std::vector<std::vector<core::Sts>> streams;
    for (std::size_t r = 0; r < runs; ++r) {
        const auto plan = factory ? factory(r) : cpu::InjectionPlan();
        streams.push_back(pipe.captureRun(seed0 + r, plan));
    }
    for (const auto &stream : streams) {
        for (const auto &sts : stream) {
            if (sts.true_region != region)
                continue;
            if (factory && !sts.injected)
                continue; // injected runs: only contaminated STSs
            pool.push_back(&sts);
        }
    }
    std::mt19937_64 rng(seed0);
    std::shuffle(pool.begin(), pool.end(), rng);

    std::vector<Group> groups;
    for (std::size_t start = 0; start + n <= pool.size(); start += n) {
        Group g(ranks);
        for (std::size_t k = 0; k < n; ++k)
            for (std::size_t p = 0; p < ranks; ++p)
                g[p].push_back(pool[start + k]->peak_freqs[p]);
        groups.push_back(std::move(g));
    }
    return groups;
}

} // namespace

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Figure 2: parametric (bi-normal) test vs the K-S test",
        "Strongest-peak distribution of one Susan loop nest");

    // Susan's smoothing nest: its strongest peak alternates between
    // two harmonics, giving the bimodal distribution of the paper's
    // figure. Needs a big enough image for stable statistics.
    auto opt2 = opt;
    opt2.scale = std::max(opt.scale, 0.4);
    auto w = workloads::makeWorkload("susan", opt2.scale);
    const std::size_t region = 0;
    core::Pipeline pipe(std::move(w), bench::simConfig(opt2));
    const auto model = pipe.trainModel();
    const auto &rm = model.regions[region];
    if (!rm.trained) {
        std::printf("target region untrained; increase EDDIE_SCALE\n");
        return 0;
    }

    // Histogram of the reference distribution (the paper's green
    // curve).
    const auto &ref = rm.ref[0];
    std::printf("\nReference distribution of the strongest peak "
                "(region %s, %zu samples):\n",
                rm.name.c_str(), ref.size());
    const double lo = ref.front(), hi = ref.back();
    const int bins = 24;
    std::vector<int> hist(bins, 0);
    for (double v : ref) {
        int b = int((v - lo) / (hi - lo + 1e-9) * bins);
        hist[std::min(std::max(b, 0), bins - 1)]++;
    }
    int peak_count = 1;
    for (int c : hist)
        peak_count = std::max(peak_count, c);
    for (int b = 0; b < bins; ++b) {
        const double f = lo + (hi - lo) * (double(b) + 0.5) / bins;
        std::printf("%9.0f kHz |", f / 1e3);
        const int stars = hist[b] * 48 / peak_count;
        for (int s = 0; s < stars; ++s)
            std::putchar('#');
        std::putchar('\n');
    }

    // Fit the bi-normal model the paper criticizes.
    const auto pr = core::fitParametricRegion(rm, 2);
    const auto &comps = pr.per_rank[0].components();
    std::printf("\nBest bi-normal fit: ");
    for (const auto &c : comps) {
        std::printf("[w=%.2f mu=%.0fkHz sd=%.0fkHz] ", c.weight,
                    c.mean / 1e3, c.stddev / 1e3);
    }
    std::printf("\n\n");

    // The model-vs-truth distance is fixed; the test's resolution
    // grows with the group size. So the parametric test's false
    // positives are *inevitable* once n is large enough, while the
    // two-sample K-S test (whose reference IS the distribution) has
    // no such floor. Sweep n on the strongest peak to show it.
    const double d_model = stats::ksStatisticOneSample(
        ref,
        [](double x, const void *ctx) {
            return static_cast<const stats::GaussianMixture *>(ctx)
                ->cdf(x);
        },
        &pr.per_rank[0]);
    std::printf("K-S distance between the empirical distribution "
                "and the bi-normal fit: %.3f\n"
                "=> every clean group larger than n ~ %.0f must be "
                "rejected by the parametric test.\n\n",
                d_model,
                d_model > 0.0 ?
                    std::pow(1.628 / d_model, 2.0) : 1e9);

    std::printf("%6s %28s %28s\n", "n", "parametric (bi-normal)",
                "K-S test");
    std::printf("%6s %14s %13s %14s %13s\n", "", "FP", "FN", "FP",
                "FN");
    for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
        const auto clean = collectGroups(pipe, region, n, 1,
                                         opt.monitor_runs, 31000,
                                         nullptr);
        const auto injected = collectGroups(
            pipe, region, n, 1, opt.monitor_runs, 32000,
            [&](std::size_t r) {
                return inject::canonicalLoopInjection(region, 1.0,
                                                      900 + r);
            });
        auto rates = [&](bool parametric) {
            std::size_t fp = 0, fn = 0;
            for (const auto &g : clean) {
                const bool rej = parametric ?
                    core::parametricGroupRejects(pr, g, model.alpha) :
                    core::ksRejectSortedRef(ref, g[0], model.alpha);
                fp += rej;
            }
            for (const auto &g : injected) {
                const bool rej = parametric ?
                    core::parametricGroupRejects(pr, g, model.alpha) :
                    core::ksRejectSortedRef(ref, g[0], model.alpha);
                fn += !rej;
            }
            return std::make_pair(
                clean.empty() ? 0.0 :
                    100.0 * double(fp) / double(clean.size()),
                injected.empty() ? 0.0 :
                    100.0 * double(fn) / double(injected.size()));
        };
        const auto p = rates(true);
        const auto k = rates(false);
        std::printf("%6zu %13.1f%% %12.1f%% %13.1f%% %12.1f%%\n", n,
                    p.first, p.second, k.first, k.second);
    }
    std::printf("\nPaper's point: the empirical distribution is a "
                "poor fit for parametric families, so the\n"
                "parametric test pays inevitable FP/FN; the "
                "nonparametric K-S test does not assume a family.\n");
    return 0;
}
