/**
 * @file
 * Figure 7: detection latency vs contamination rate — low
 * contamination is still detectable, it just needs a larger K-S
 * group (longer latency) to keep accuracy (paper Sec. 5.4).
 */

#include <cstdio>

#include "bench_util.h"
#include "core/model.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

namespace
{

/**
 * Smallest group size n whose TPR reaches 85 %, reported as the
 * measured detection latency at that n (negative when no n in the
 * grid achieves it).
 */
double
latencyForAccuracy(const core::Pipeline &pipe,
                   const core::TrainedModel &model, std::size_t target,
                   double rate, std::size_t runs)
{
    for (std::size_t n : {8, 16, 24, 32, 48, 64, 96}) {
        const auto m = core::withGroupSize(model, n);
        std::size_t injected = 0, tp = 0;
        double latency_sum = 0.0;
        std::size_t detected = 0;
        for (std::size_t i = 0; i < runs; ++i) {
            const auto ev = pipe.monitorRun(
                m, 22000 + i,
                inject::canonicalLoopInjection(target, rate,
                                               22000 + i));
            injected += ev.metrics.injected_groups;
            tp += ev.metrics.true_positives;
            if (ev.metrics.detection_latency >= 0.0) {
                latency_sum += ev.metrics.detection_latency;
                ++detected;
            }
        }
        if (injected == 0 || detected == 0)
            continue;
        if (double(tp) / double(injected) >= 0.85)
            return 1000.0 * latency_sum / double(detected);
    }
    return -1.0;
}

} // namespace

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Figure 7: detection latency needed vs contamination rate",
        "latency of the smallest K-S group achieving TPR >= 85 %");

    const char *names[] = {"basicmath", "bitcount", "gsm", "patricia",
                           "susan"};
    const double rates[] = {0.10, 0.25, 0.50, 0.75, 1.00};

    std::printf("%-12s", "rate");
    for (const char *n : names)
        std::printf(" %12s", n);
    std::printf("\n");
    bench::printRule();

    std::vector<core::Pipeline> pipes;
    std::vector<core::TrainedModel> models;
    std::vector<std::size_t> targets;
    for (const char *n : names) {
        auto w = workloads::makeWorkload(n, opt.scale);
        targets.push_back(inject::defaultTargetLoop(w));
        pipes.emplace_back(std::move(w), bench::simConfig(opt));
        models.push_back(pipes.back().trainModel());
    }

    for (double rate : rates) {
        std::printf("%-11.0f%%", rate * 100.0);
        for (std::size_t k = 0; k < pipes.size(); ++k) {
            const double ms = latencyForAccuracy(
                pipes[k], models[k], targets[k], rate,
                std::max<std::size_t>(opt.monitor_runs / 2, 2));
            std::printf(" %10s ms", bench::fmt(ms, 1).c_str());
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    bench::printRule();
    std::printf("Shape check vs paper Fig. 7: in the paper, lower "
                "contamination needs longer\nlatency. With our "
                "bin-quantized features the trend appears as a "
                "step: detectable\nrates are caught almost "
                "immediately, rates below a benchmark-dependent "
                "knee stop\nbeing detectable at the swept group "
                "sizes ('-').\n");
    return 0;
}
