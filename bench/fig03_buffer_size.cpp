/**
 * @file
 * Figure 3: selecting the K-S group size n — false rejection rate vs
 * detection latency for three loops with different spectra: one with
 * a sharp peak (and harmonics), one with several peaks, and one with
 * poorly defined peaks.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "core/trainer.h"

using namespace eddie;

namespace
{

struct Target
{
    const char *workload;
    std::size_t loop_region;
    const char *flavor;
};

} // namespace

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Figure 3: false rejection rate vs K-S group size (latency)",
        "Three loops: sharp peak / several peaks / poorly defined "
        "peaks");

    // bitcount L0: unrolled bit-serial loop, one sharp stable peak
    //   (FRR settles immediately — the paper's left panel).
    // gsm L0: autocorrelation nest whose peaks drift between lag
    //   phases (FRR rises then falls — the middle panel).
    // susan L0: smoothing nest whose strongest peak alternates
    //   between harmonics across passes (needs the largest n —
    //   the right panel).
    const Target targets[] = {
        {"bitcount", 0, "sharp peak + harmonics"},
        {"gsm", 0, "several peaks"},
        {"susan", 0, "poorly defined / alternating peaks"},
    };
    const std::vector<std::size_t> grid = {4, 8, 12, 16, 24, 32, 48,
                                           64, 96, 128};

    for (const auto &t : targets) {
        auto w = workloads::makeWorkload(t.workload, opt.scale);
        core::Pipeline pipe(std::move(w), bench::iotConfig(opt));

        // Collect the training streams once.
        std::vector<std::vector<core::Sts>> runs;
        for (std::size_t i = 0; i < opt.train_runs; ++i)
            runs.push_back(pipe.captureRun(1000 + i));
        const double sentinel = core::missingPeakSentinel(
            pipe.config().core.clock_hz /
            double(pipe.config().core.cycles_per_sample));
        core::TrainerConfig tc;
        tc.n_grid = grid;
        const auto model = core::train(runs, pipe.workload().regions,
                                       sentinel, tc);
        const auto &rm = model.regions[t.loop_region];
        std::printf("\n%s loop L%zu (%s)%s\n", t.workload,
                    t.loop_region, t.flavor,
                    rm.trained ? "" : "  [UNTRAINED]");
        if (!rm.trained)
            continue;
        const double hop_ms =
            1000.0 * double(pipe.config().stft_hop) /
            (pipe.config().core.clock_hz /
             double(pipe.config().core.cycles_per_sample));
        std::printf("%8s %14s %22s\n", "n", "latency(ms)",
                    "false rejection rate");
        for (std::size_t n : grid) {
            const double frr = core::falseRejectionRate(
                rm, runs, t.loop_region, n, model.alpha,
                tc.reject_peak_divisor);
            std::printf("%8zu %14.2f %21.2f%%\n", n,
                        double(n) * hop_ms, 100.0 * frr);
        }
        std::printf("selected n = %zu\n", rm.group_n);
    }
    std::printf("\nShape check vs paper: the sharp-peak loop reaches "
                "~zero FRR at small n; loops with\nmore diffuse "
                "spectra need larger n (longer latency) before the "
                "FRR settles.\n");
    return 0;
}
