/**
 * @file
 * Figure 6 (a, b, c): true positive rate vs detection latency for
 * injections of 2, 4, 6, and 8 instructions into a loop body, for
 * the same three loop flavors as Figure 3 (paper Sec. 5.5).
 *
 * The latency axis is produced by sweeping the K-S group size n; the
 * TPR at each point is measured.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/model.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

namespace
{

struct Target
{
    const char *workload;
    std::size_t loop_region;
    const char *flavor;
};

} // namespace

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Figure 6: TPR vs detection latency for 2/4/6/8 injected "
        "instructions",
        "(a) sharp-peak loop, (b) multi-peak loop, (c) diffuse-peak "
        "loop; store+add payloads");

    const Target targets[] = {
        {"bitcount", 0, "(a) sharp peak"},
        {"bitcount", 3, "(b) several peaks"},
        {"patricia", 1, "(c) poorly defined peaks"},
    };
    const std::size_t sizes[] = {2, 4, 6, 8};
    const std::size_t grid[] = {8, 16, 24, 32, 48, 64};

    for (const auto &t : targets) {
        auto w = workloads::makeWorkload(t.workload, opt.scale);
        core::Pipeline pipe(std::move(w), bench::simConfig(opt));
        const auto model = pipe.trainModel();
        if (!model.regions[t.loop_region].trained) {
            std::printf("\n%s %s: region untrained, skipped\n",
                        t.workload, t.flavor);
            continue;
        }
        std::printf("\n%s L%zu %s\n", t.workload, t.loop_region,
                    t.flavor);
        std::printf("%8s %14s", "n", "latency(ms)");
        for (std::size_t s : sizes)
            std::printf("   TPR@%zuinstr", s);
        std::printf("\n");

        for (std::size_t n : grid) {
            const auto m = core::withGroupSize(model, n);
            std::printf("%8zu", n);
            bool first = true;
            for (std::size_t s : sizes) {
                std::size_t injected = 0, tp = 0;
                double latency_sum = 0.0;
                std::size_t detected = 0;
                const std::size_t runs = std::max<std::size_t>(
                    opt.monitor_runs / 2, 2);
                for (std::size_t i = 0; i < runs; ++i) {
                    const auto ev = pipe.monitorRun(
                        m, 23000 + i,
                        inject::loopPayload(t.loop_region, s, 1.0,
                                            23000 + i));
                    injected += ev.metrics.injected_groups;
                    tp += ev.metrics.true_positives;
                    if (ev.metrics.detection_latency >= 0.0) {
                        latency_sum += ev.metrics.detection_latency;
                        ++detected;
                    }
                }
                if (first) {
                    const double ms = detected > 0 ?
                        1000.0 * latency_sum / double(detected) :
                        -1.0;
                    std::printf(" %14s", bench::fmt(ms, 2).c_str());
                    first = false;
                }
                const double tpr = injected > 0 ?
                    100.0 * double(tp) / double(injected) : 0.0;
                std::printf(" %11.1f%%", tpr);
                std::fflush(stdout);
            }
            std::printf("\n");
        }
    }
    std::printf("\nShape check vs paper Fig. 6: even 2-instruction "
                "injections become detectable, but\nsmaller "
                "injections need larger n (longer latency) to reach "
                "high TPR; the diffuse\nloop is the hardest.\n");
    return 0;
}
