/**
 * @file
 * Figure 9: false positive rate vs detection latency for different
 * K-S confidence levels (99 %, 97 %, 95 %) — paper Sec. 5.6.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/model.h"
#include "core/pipeline.h"

using namespace eddie;

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Figure 9: false positives vs latency for K-S confidence "
        "levels",
        "clean monitoring of bitcount; group size n swept as the "
        "latency axis");

    auto w = workloads::makeWorkload("bitcount", opt.scale);
    core::Pipeline pipe(std::move(w), bench::simConfig(opt));
    const auto base = pipe.trainModel();

    const double alphas[] = {0.01, 0.03, 0.05}; // 99 %, 97 %, 95 %
    const std::size_t grid[] = {8, 16, 24, 32, 48, 64};

    std::printf("%8s %14s %12s %12s %12s\n", "n", "latency(ms)",
                "FP@99%", "FP@97%", "FP@95%");
    bench::printRule();

    const double hop_ms = 1000.0 * double(pipe.config().stft_hop) /
        (pipe.config().core.clock_hz /
         double(pipe.config().core.cycles_per_sample));

    for (std::size_t n : grid) {
        std::printf("%8zu %14.2f", n, double(n) * hop_ms);
        for (double alpha : alphas) {
            auto m = core::withAlpha(core::withGroupSize(base, n),
                                     alpha);
            std::size_t groups = 0, fp = 0;
            for (std::size_t i = 0; i < opt.monitor_runs; ++i) {
                const auto ev = pipe.monitorRun(m, 25000 + i);
                groups += ev.metrics.groups;
                fp += ev.metrics.false_positives;
            }
            const double fp_pct = groups > 0 ?
                100.0 * double(fp) / double(groups) : 0.0;
            std::printf(" %11.2f%%", fp_pct);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    bench::printRule();
    std::printf("Shape check vs paper Fig. 9: the 99%% confidence "
                "level gives the fewest false\npositives and "
                "reaches ~zero at practical latencies; lower "
                "confidence levels stay\nnoisy even at high "
                "latency.\n");
    return 0;
}
