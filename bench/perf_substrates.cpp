/**
 * @file
 * google-benchmark microbenchmarks of the substrates on EDDIE's hot
 * paths: FFT, STFT, peak extraction, the two-sample K-S test, and
 * the cycle-level simulator.
 */

#include <random>

#include <benchmark/benchmark.h>

#include "core/fast_ks.h"
#include "cpu/core.h"
#include "sig/fft.h"
#include "sig/peaks.h"
#include "sig/stft.h"
#include "stats/ks.h"
#include "workloads/workload.h"

namespace
{

using namespace eddie;

void
BM_FftPowerOfTwo(benchmark::State &state)
{
    const std::size_t n = std::size_t(state.range(0));
    std::vector<sig::Complex> x(n);
    std::mt19937_64 rng(1);
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    for (auto &v : x)
        v = sig::Complex(d(rng), d(rng));
    for (auto _ : state) {
        auto copy = x;
        sig::fft(copy);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(n));
}
BENCHMARK(BM_FftPowerOfTwo)->Arg(1024)->Arg(2048)->Arg(8192);

void
BM_FftBluestein(benchmark::State &state)
{
    const std::size_t n = std::size_t(state.range(0));
    std::vector<sig::Complex> x(n, sig::Complex(0.5, -0.25));
    for (auto _ : state) {
        auto copy = x;
        sig::fft(copy);
        benchmark::DoNotOptimize(copy.data());
    }
}
BENCHMARK(BM_FftBluestein)->Arg(1000)->Arg(2000);

void
BM_Stft(benchmark::State &state)
{
    sig::StftConfig cfg;
    cfg.window_size = 2048;
    cfg.hop = 1024;
    cfg.sample_rate = 20e6;
    const sig::Stft stft(cfg);
    std::vector<double> signal(200'000);
    std::mt19937_64 rng(2);
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    for (auto &v : signal)
        v = d(rng);
    for (auto _ : state) {
        auto sg = stft.analyze(signal);
        benchmark::DoNotOptimize(sg.power.data());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(signal.size()));
}
BENCHMARK(BM_Stft);

void
BM_FindPeaks(benchmark::State &state)
{
    std::vector<double> power(2048, 0.001);
    for (std::size_t b = 16; b < 2048; b += 128)
        power[b] = 5.0;
    for (auto _ : state) {
        auto peaks = sig::findPeaks(power, 20e6);
        benchmark::DoNotOptimize(peaks.data());
    }
}
BENCHMARK(BM_FindPeaks);

void
BM_KsTestReference(benchmark::State &state)
{
    std::mt19937_64 rng(3);
    std::normal_distribution<double> d(0.0, 1.0);
    std::vector<double> ref(2000), mon(std::size_t(state.range(0)));
    for (auto &v : ref)
        v = d(rng);
    for (auto &v : mon)
        v = d(rng);
    for (auto _ : state) {
        auto r = stats::ksTest(ref, mon, 0.01);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_KsTestReference)->Arg(16)->Arg(64);

void
BM_KsTestSortedRef(benchmark::State &state)
{
    std::mt19937_64 rng(4);
    std::normal_distribution<double> d(0.0, 1.0);
    std::vector<double> ref(2000), mon(std::size_t(state.range(0)));
    for (auto &v : ref)
        v = d(rng);
    std::sort(ref.begin(), ref.end());
    for (auto &v : mon)
        v = d(rng);
    for (auto _ : state) {
        const bool r = core::ksRejectSortedRef(ref, mon, 0.01);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_KsTestSortedRef)->Arg(16)->Arg(64);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    auto w = workloads::makeWorkload("bitcount", 0.1);
    cpu::CoreConfig cfg;
    const auto image = w.make_input(1);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        cpu::Core core(cfg);
        const auto rr = core.run(w.program, w.regions, image, {}, 1);
        instructions += rr.stats.instructions;
        benchmark::DoNotOptimize(rr.power.data());
    }
    state.SetItemsProcessed(std::int64_t(instructions));
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

void
BM_SimulatorOutOfOrder(benchmark::State &state)
{
    auto w = workloads::makeWorkload("bitcount", 0.1);
    cpu::CoreConfig cfg;
    cfg.out_of_order = true;
    const auto image = w.make_input(1);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        cpu::Core core(cfg);
        const auto rr = core.run(w.program, w.regions, image, {}, 1);
        instructions += rr.stats.instructions;
        benchmark::DoNotOptimize(rr.power.data());
    }
    state.SetItemsProcessed(std::int64_t(instructions));
}
BENCHMARK(BM_SimulatorOutOfOrder)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
