/**
 * @file
 * Figure 10: effect of the injected instruction mix — all on-chip
 * (8 adds) vs on-chip + off-chip (4 adds + 4 cache-missing stores),
 * paper Sec. 5.7.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/model.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Figure 10: on-chip vs off-chip injected instructions",
        "8 adds (on-chip) vs 4 adds + 4 cache-missing stores "
        "(off-chip traffic)");

    auto w = workloads::makeWorkload("bitcount", opt.scale);
    const std::size_t target = inject::defaultTargetLoop(w);
    core::Pipeline pipe(std::move(w), bench::simConfig(opt));
    const auto base = pipe.trainModel();

    const std::size_t grid[] = {8, 16, 24, 32, 48, 64};
    std::printf("%8s %14s %16s %16s\n", "n", "latency(ms)",
                "TPR on-chip", "TPR off-chip");
    bench::printRule();

    const double hop_ms = 1000.0 * double(pipe.config().stft_hop) /
        (pipe.config().core.clock_hz /
         double(pipe.config().core.cycles_per_sample));

    for (std::size_t n : grid) {
        const auto m = core::withGroupSize(base, n);
        std::printf("%8zu %14.2f", n, double(n) * hop_ms);
        for (bool off_chip : {false, true}) {
            std::size_t injected = 0, tp = 0;
            for (std::size_t i = 0; i < opt.monitor_runs; ++i) {
                const auto plan = off_chip ?
                    inject::offChipLoopInjection(target, 26000 + i) :
                    inject::onChipLoopInjection(target, 26000 + i);
                const auto ev = pipe.monitorRun(m, 26000 + i, plan);
                injected += ev.metrics.injected_groups;
                tp += ev.metrics.true_positives;
            }
            const double tpr = injected > 0 ?
                100.0 * double(tp) / double(injected) : 0.0;
            std::printf(" %15.1f%%", tpr);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    bench::printRule();
    std::printf("Shape check vs paper Fig. 10: off-chip activity "
                "makes the injection more visible\n(higher TPR at "
                "the same latency); pure on-chip injections are "
                "still caught, later.\n");
    return 0;
}
