/**
 * @file
 * Figure 5: false negative rate vs contamination rate — the fraction
 * of a loop's iterations carrying the 8-instruction injection is
 * swept from 100 % down to 10 % (paper Sec. 5.4).
 */

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"

using namespace eddie;

int
main()
{
    const auto opt = bench::benchOptions();
    bench::printHeader(
        "Figure 5: false negative rate vs contamination rate",
        "8-instr loop injection; contamination = fraction of "
        "iterations injected");

    const char *names[] = {"basicmath", "bitcount", "gsm", "patricia",
                           "susan"};
    const double rates[] = {0.10, 0.25, 0.50, 0.75, 1.00};

    std::printf("%-12s", "rate");
    for (const char *n : names)
        std::printf(" %12s", n);
    std::printf("\n");
    bench::printRule();

    // Train one model per workload.
    std::vector<core::Pipeline> pipes;
    std::vector<core::TrainedModel> models;
    std::vector<std::size_t> targets;
    for (const char *n : names) {
        auto w = workloads::makeWorkload(n, opt.scale);
        targets.push_back(inject::defaultTargetLoop(w));
        pipes.emplace_back(std::move(w), bench::simConfig(opt));
        models.push_back(pipes.back().trainModel());
    }

    for (double rate : rates) {
        std::printf("%-11.0f%%", rate * 100.0);
        for (std::size_t k = 0; k < pipes.size(); ++k) {
            std::size_t injected = 0, fn = 0;
            for (std::size_t i = 0; i < opt.monitor_runs; ++i) {
                const auto ev = pipes[k].monitorRun(
                    models[k], 21000 + i,
                    inject::canonicalLoopInjection(targets[k], rate,
                                                   21000 + i));
                injected += ev.metrics.injected_groups;
                fn += ev.metrics.false_negatives;
            }
            const double fn_pct = injected > 0 ?
                100.0 * double(fn) / double(injected) : -1.0;
            std::printf(" %11s%%", bench::fmt(fn_pct, 1).c_str());
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    bench::printRule();
    std::printf("Shape check vs paper Fig. 5: false negatives rise "
                "as contamination drops; robust\nbenchmarks "
                "(bitcount) degrade least, gsm degrades most.\n");
    return 0;
}
