/** @file Smoke test: the umbrella header compiles and exposes the
 *  API end to end. */

#include <gtest/gtest.h>

#include "eddie.h"

namespace
{

TEST(UmbrellaTest, EndToEndThroughSingleInclude)
{
    using namespace eddie;
    static_assert(kVersionMajor >= 1);

    auto w = workloads::makeWorkload("sha", 0.1);
    core::PipelineConfig cfg;
    cfg.train_runs = 2;
    core::Pipeline pipe(std::move(w), cfg);
    const auto model = pipe.trainModel();
    const auto ev = pipe.monitorRun(model, 1);
    EXPECT_GT(ev.metrics.groups, 0u);
}

} // namespace
