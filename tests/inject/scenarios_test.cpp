#include <gtest/gtest.h>

#include "cpu/core.h"
#include "inject/scenarios.h"
#include "workloads/workload.h"

namespace
{

using namespace eddie;

class ScenariosTest : public ::testing::Test
{
  protected:
    workloads::Workload w = workloads::makeWorkload("bitcount", 0.1);
};

TEST_F(ScenariosTest, DefaultTargetIsValidLoopRegion)
{
    const auto target = inject::defaultTargetLoop(w);
    EXPECT_LT(target, w.regions.num_loops);
}

TEST_F(ScenariosTest, ShellBurstTriggersOnExitTransition)
{
    const auto plan = inject::shellBurst(w, 0, 1, 42);
    ASSERT_EQ(plan.bursts.size(), 1u);
    EXPECT_EQ(plan.bursts[0].total_ops, 476'000u);
    const auto &trigger = w.regions.regions[plan.bursts[0].trigger_region];
    EXPECT_EQ(trigger.kind, prog::Region::Kind::Transition);
    EXPECT_EQ(trigger.from_loop, 0u);
}

TEST_F(ScenariosTest, LoopPayloadSizesAndContamination)
{
    const auto plan = inject::loopPayload(1, 6, 0.3, 7);
    ASSERT_EQ(plan.loops.size(), 1u);
    EXPECT_EQ(plan.loops[0].loop_region, 1u);
    EXPECT_EQ(plan.loops[0].ops.size(), 6u);
    EXPECT_DOUBLE_EQ(plan.loops[0].contamination, 0.3);
    EXPECT_EQ(plan.seed, 7u);
}

TEST_F(ScenariosTest, CanonicalInjectionIsHalfIntHalfMemory)
{
    const auto plan = inject::canonicalLoopInjection(0);
    ASSERT_EQ(plan.loops.size(), 1u);
    const auto &ops = plan.loops[0].ops;
    ASSERT_EQ(ops.size(), 8u);
    std::size_t memory = 0;
    for (auto op : ops) {
        if (op == cpu::InjectedOp::Load ||
            op == cpu::InjectedOp::StoreHit ||
            op == cpu::InjectedOp::StoreMiss) {
            ++memory;
        }
    }
    EXPECT_EQ(memory, 4u);
}

TEST_F(ScenariosTest, MixVariantsDiffer)
{
    const auto on = inject::onChipLoopInjection(0);
    const auto off = inject::offChipLoopInjection(0);
    for (auto op : on.loops[0].ops)
        EXPECT_EQ(op, cpu::InjectedOp::Add);
    std::size_t misses = 0;
    for (auto op : off.loops[0].ops)
        misses += op == cpu::InjectedOp::StoreMiss;
    EXPECT_EQ(misses, 4u);
}

TEST_F(ScenariosTest, BurstOfSizeUsesOnChipBody)
{
    const auto plan = inject::burstOfSize(w, 1, 250'000, 2, 9);
    ASSERT_EQ(plan.bursts.size(), 1u);
    EXPECT_EQ(plan.bursts[0].total_ops, 250'000u);
    EXPECT_EQ(plan.bursts[0].occurrence, 2u);
    for (auto op : plan.bursts[0].body)
        EXPECT_EQ(op, cpu::InjectedOp::Add);
}

TEST_F(ScenariosTest, PlansExecuteOnEveryWorkload)
{
    // Every workload accepts its default-target plans end to end.
    for (const auto &name : workloads::workloadNames()) {
        auto wl = workloads::makeWorkload(name, 0.08);
        const auto target = inject::defaultTargetLoop(wl);
        cpu::CoreConfig cfg;
        cfg.max_instructions = 40'000'000;
        cpu::Core core(cfg);
        const auto rr = core.run(
            wl.program, wl.regions, wl.make_input(1),
            inject::canonicalLoopInjection(target, 0.5, 3), 3);
        EXPECT_GT(rr.stats.injected_ops, 0u) << name;
    }
}

} // namespace
