#include <gtest/gtest.h>

#include "cpu/core.h"
#include "workloads/workload.h"

namespace
{

using namespace eddie;

class WorkloadParamTest : public ::testing::TestWithParam<std::string>
{
  protected:
    workloads::Workload
    make(double scale = 0.12)
    {
        return workloads::makeWorkload(GetParam(), scale);
    }

    cpu::RunResult
    run(const workloads::Workload &w, std::uint64_t seed = 3)
    {
        cpu::CoreConfig cfg;
        cfg.max_instructions = 60'000'000;
        cpu::Core core(cfg);
        return core.run(w.program, w.regions, w.make_input(seed), {},
                        seed);
    }
};

TEST_P(WorkloadParamTest, AnalyzesWithMultipleLoopRegions)
{
    const auto w = make();
    EXPECT_EQ(w.name, GetParam());
    EXPECT_GE(w.regions.num_loops, 2u) << "loop nests";
    EXPECT_GT(w.regions.regions.size(), w.regions.num_loops);
}

TEST_P(WorkloadParamTest, RunsToCompletion)
{
    const auto w = make();
    const auto rr = run(w);
    // Finished (did not hit the cap) and did real work.
    EXPECT_LT(rr.stats.instructions, 60'000'000u);
    EXPECT_GT(rr.stats.instructions, 50'000u);
    EXPECT_GT(rr.stats.cycles, 0u);
}

TEST_P(WorkloadParamTest, EveryLoopRegionExecutes)
{
    const auto w = make();
    const auto rr = run(w);
    std::vector<std::size_t> samples(w.regions.num_loops, 0);
    for (std::size_t r : rr.region)
        if (r < samples.size())
            ++samples[r];
    for (std::size_t l = 0; l < samples.size(); ++l)
        EXPECT_GT(samples[l], 0u) << "loop region " << l;
}

TEST_P(WorkloadParamTest, DifferentSeedsGiveDifferentInputs)
{
    const auto w = make();
    const auto a = w.make_input(1);
    const auto b = w.make_input(2);
    ASSERT_EQ(a.size(), b.size());
    bool any_diff = false;
    for (std::size_t s = 0; s < a.size(); ++s)
        if (a[s].second != b[s].second)
            any_diff = true;
    EXPECT_TRUE(any_diff);
}

TEST_P(WorkloadParamTest, DeterministicForSameSeed)
{
    const auto w = make();
    const auto r1 = run(w, 11);
    const auto r2 = run(w, 11);
    EXPECT_EQ(r1.stats.instructions, r2.stats.instructions);
    EXPECT_EQ(r1.stats.cycles, r2.stats.cycles);
}

TEST_P(WorkloadParamTest, ScaleChangesRunLength)
{
    const auto small = make(0.08);
    const auto large = make(0.25);
    const auto rs = run(small);
    const auto rl = run(large);
    EXPECT_GT(rl.stats.instructions, rs.stats.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadParamTest,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(WorkloadTest, UnknownNameThrows)
{
    EXPECT_THROW(workloads::makeWorkload("nope"),
                 std::invalid_argument);
}

TEST(WorkloadTest, TenBenchmarks)
{
    EXPECT_EQ(workloads::workloadNames().size(), 10u);
}

} // namespace
