/**
 * @file
 * Tests of the deterministic thread pool: exact-once index coverage,
 * ordered results, exception propagation, and batch reuse under
 * contention (the scheduling paths TSan inspects).
 */

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace
{

using eddie::common::ThreadPool;

TEST(ThreadPoolTest, SizeCountsCallerThread)
{
    ThreadPool one(1);
    EXPECT_EQ(one.size(), 1u);
    ThreadPool four(4);
    EXPECT_EQ(four.size(), 4u);
    ThreadPool def(0);
    EXPECT_EQ(def.size(), ThreadPool::hardwareThreads());
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce)
{
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        const std::size_t count = 1000;
        std::vector<std::atomic<int>> hits(count);
        pool.parallelFor(count, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i
                                         << " threads " << threads;
    }
}

TEST(ThreadPoolTest, ParallelMapIsOrderedAndThreadCountInvariant)
{
    const std::size_t count = 257;
    auto square = [](std::size_t i) { return double(i) * double(i); };

    ThreadPool serial(1);
    const auto want = serial.parallelMap(count, square);
    ASSERT_EQ(want.size(), count);
    for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(want[i], double(i) * double(i));

    for (std::size_t threads : {2u, 3u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.parallelMap(count, square), want)
            << "threads " << threads;
    }
}

TEST(ThreadPoolTest, EmptyAndSingleElementBatches)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ExceptionIsRethrownAfterBatchDrains)
{
    for (std::size_t threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::atomic<std::size_t> completed{0};
        EXPECT_THROW(
            pool.parallelFor(100,
                             [&](std::size_t i) {
                                 if (i == 17)
                                     throw std::runtime_error("boom");
                                 completed.fetch_add(1);
                             }),
            std::runtime_error);
        // The batch drains fully: every non-throwing index ran.
        EXPECT_EQ(completed.load(), 99u);
        // And the pool stays usable afterwards.
        std::atomic<std::size_t> after{0};
        pool.parallelFor(10,
                         [&](std::size_t) { after.fetch_add(1); });
        EXPECT_EQ(after.load(), 10u);
    }
}

TEST(ThreadPoolTest, ManyConsecutiveBatchesReuseWorkers)
{
    // Stresses batch setup/teardown — the straggler handoff between
    // batches is where naive pools race.
    ThreadPool pool(4);
    for (int round = 0; round < 200; ++round) {
        const std::size_t count = 1 + std::size_t(round) % 7;
        std::vector<int> out(count, 0);
        pool.parallelFor(count,
                         [&](std::size_t i) { out[i] = round; });
        for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(out[i], round) << "round " << round;
    }
}

TEST(ThreadPoolTest, ForEachIndexSerialFallback)
{
    std::vector<int> out(5, 0);
    eddie::common::forEachIndex(nullptr, out.size(),
                                [&](std::size_t i) { out[i] = 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 5);
}

TEST(ThreadPoolTest, ResolveThreadsClampsToHardware)
{
    const std::size_t hw = ThreadPool::hardwareThreads();
    EXPECT_EQ(ThreadPool::resolveThreads(0), hw);
    EXPECT_EQ(ThreadPool::resolveThreads(1), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(3), std::min<std::size_t>(3, hw));
    // Oversubscription is never honoured: CPU-bound work gains
    // nothing from more threads than cores.
    EXPECT_EQ(ThreadPool::resolveThreads(hw + 7), hw);
    EXPECT_EQ(ThreadPool::resolveThreads(std::size_t(1) << 20), hw);
}

} // namespace
