#include <cmath>
#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/edf.h"

namespace
{

using namespace eddie::stats;

TEST(DescriptiveTest, Mean)
{
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(DescriptiveTest, VarianceAndStddev)
{
    std::vector<double> x{2, 4, 4, 4, 5, 5, 7, 9};
    // Sample variance with Bessel correction: 32/7.
    EXPECT_NEAR(variance(x), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(x), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0}), 0.0);
}

TEST(DescriptiveTest, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 2, 3}), 2.5);
}

TEST(DescriptiveTest, Percentiles)
{
    std::vector<double> x{10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(percentile(x, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(x, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(x, 50.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(x, 25.0), 20.0);
    EXPECT_DOUBLE_EQ(percentile(x, 62.5), 35.0); // interpolated
}

TEST(EdfTest, StepsAndBounds)
{
    std::vector<double> x{1.0, 2.0, 2.0, 4.0};
    const Edf f(x);
    EXPECT_DOUBLE_EQ(f(0.5), 0.0);
    EXPECT_DOUBLE_EQ(f(1.0), 0.25);
    EXPECT_DOUBLE_EQ(f(2.0), 0.75); // ties counted together
    EXPECT_DOUBLE_EQ(f(3.0), 0.75);
    EXPECT_DOUBLE_EQ(f(4.0), 1.0);
    EXPECT_DOUBLE_EQ(f(99.0), 1.0);
    EXPECT_EQ(f.size(), 4u);
}

TEST(EdfTest, EmptySample)
{
    const Edf f(std::vector<double>{});
    EXPECT_DOUBLE_EQ(f(0.0), 0.0);
}

} // namespace
