#include <random>

#include <gtest/gtest.h>

#include "stats/anova.h"

namespace
{

using eddie::stats::anova;
using eddie::stats::AnovaObservation;

TEST(AnovaTest, DetectsStrongMainEffect)
{
    // Factor 0 shifts the response strongly; factor 1 does nothing.
    std::mt19937_64 rng(1);
    std::normal_distribution<double> noise(0.0, 0.5);
    std::vector<AnovaObservation> data;
    for (std::size_t a = 0; a < 3; ++a) {
        for (std::size_t b = 0; b < 3; ++b) {
            for (int rep = 0; rep < 10; ++rep) {
                AnovaObservation obs;
                obs.levels = {a, b};
                obs.response = 5.0 * double(a) + noise(rng);
                data.push_back(obs);
            }
        }
    }
    const auto res = anova({"width", "depth"}, data, 0.05);
    ASSERT_EQ(res.effects.size(), 2u);
    EXPECT_TRUE(res.effects[0].significant);
    EXPECT_LT(res.effects[0].p_value, 1e-10);
    EXPECT_FALSE(res.effects[1].significant);
    EXPECT_GT(res.effects[1].p_value, 0.05);
}

TEST(AnovaTest, NoEffectNoSignificance)
{
    std::mt19937_64 rng(2);
    std::normal_distribution<double> noise(0.0, 1.0);
    std::vector<AnovaObservation> data;
    for (std::size_t a = 0; a < 4; ++a) {
        for (int rep = 0; rep < 12; ++rep) {
            AnovaObservation obs;
            obs.levels = {a};
            obs.response = noise(rng);
            data.push_back(obs);
        }
    }
    const auto res = anova({"rob"}, data, 0.01);
    EXPECT_FALSE(res.effects[0].significant);
}

TEST(AnovaTest, SumOfSquaresDecomposition)
{
    std::vector<AnovaObservation> data;
    std::mt19937_64 rng(3);
    std::normal_distribution<double> noise(0.0, 1.0);
    for (std::size_t a = 0; a < 2; ++a) {
        for (std::size_t b = 0; b < 2; ++b) {
            for (int rep = 0; rep < 5; ++rep) {
                data.push_back(
                    {{a, b}, double(a) - double(b) + noise(rng)});
            }
        }
    }
    const auto res = anova({"f1", "f2"}, data, 0.05);
    double model_ss = 0.0;
    for (const auto &e : res.effects)
        model_ss += e.sum_squares;
    EXPECT_LE(model_ss, res.total_sum_squares + 1e-9);
    EXPECT_NEAR(model_ss + res.error_sum_squares,
                res.total_sum_squares, 1e-9);
}

TEST(AnovaTest, SingleLevelFactorHasNoDof)
{
    std::vector<AnovaObservation> data;
    for (int i = 0; i < 10; ++i)
        data.push_back({{0}, double(i)});
    const auto res = anova({"constant"}, data, 0.05);
    EXPECT_DOUBLE_EQ(res.effects[0].dof, 0.0);
    EXPECT_FALSE(res.effects[0].significant);
}

TEST(AnovaTest, BadInputsThrow)
{
    EXPECT_THROW(anova({"x"}, {}, 0.05), std::invalid_argument);
    std::vector<AnovaObservation> data{{{0, 1}, 1.0}};
    EXPECT_THROW(anova({"onlyone"}, data, 0.05),
                 std::invalid_argument);
}

} // namespace
