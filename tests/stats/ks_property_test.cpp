/**
 * @file
 * Property tests of the presorted K-S kernels against a brute-force
 * O(n*m) two-sample EDF sup-distance oracle. The production code
 * picks between a merge-walk and a binary-search walk depending on
 * sample-size lopsidedness; the oracle pins both to the definition
 * D = sup_x |F_a(x) - F_b(x)| across ties, duplicates, and samples
 * whose tails exhaust one side entirely.
 */

#include <algorithm>
#include <cstddef>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/fast_ks.h"
#include "stats/ks.h"
#include "stats/mwu.h"

namespace
{

using eddie::stats::ksStatistic;
using eddie::stats::ksStatisticSorted;

/**
 * Textbook sup-distance: evaluate both EDFs at every observed value
 * (the sup over the reals is attained at a sample point) with a full
 * O(n*m) count per evaluation point. Slow, obviously correct.
 */
double
bruteForceD(const std::vector<double> &a, const std::vector<double> &b)
{
    std::vector<double> candidates = a;
    candidates.insert(candidates.end(), b.begin(), b.end());
    double d = 0.0;
    for (double x : candidates) {
        std::size_t ca = 0, cb = 0;
        for (double v : a)
            if (v <= x)
                ++ca;
        for (double v : b)
            if (v <= x)
                ++cb;
        const double fa = double(ca) / double(a.size());
        const double fb = double(cb) / double(b.size());
        d = std::max(d, std::abs(fa - fb));
    }
    return d;
}

/**
 * Runs every production entry point on the same pair. Against the
 * oracle the tolerance is a few ulps (the oracle divides counts,
 * production multiplies by a precomputed reciprocal); *between*
 * production paths — merge-walk, search-walk, wrappers — equality is
 * exact, which is the monitor's verdict-compatibility contract.
 */
void
expectAllPathsMatchOracle(std::vector<double> a, std::vector<double> b)
{
    const double want = bruteForceD(a, b);

    const double d = ksStatistic(a, b);
    EXPECT_NEAR(d, want, 1e-12);
    EXPECT_EQ(ksStatistic(b, a), d) << "asymmetric statistic";

    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(ksStatisticSorted(a, b), d);
    EXPECT_EQ(ksStatisticSorted(b, a), d);
    EXPECT_EQ(eddie::core::ksStatisticSortedRef(a, b), d);
}

TEST(KsPropertyTest, RandomPairsMatchBruteForce)
{
    std::mt19937_64 rng(20260806);
    std::uniform_int_distribution<std::size_t> size_dist(1, 40);
    std::uniform_real_distribution<double> value(-5.0, 5.0);
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<double> a(size_dist(rng)), b(size_dist(rng));
        for (auto &v : a)
            v = value(rng);
        for (auto &v : b)
            v = value(rng);
        expectAllPathsMatchOracle(std::move(a), std::move(b));
    }
}

TEST(KsPropertyTest, HeavyTiesAndDuplicatesMatchBruteForce)
{
    // Integer-valued draws from a tiny support force cross-sample
    // ties and within-sample duplicates on nearly every element —
    // the case where EDF step heights differ from 1/n and a naive
    // per-element walk over-counts.
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<std::size_t> size_dist(1, 30);
    std::uniform_int_distribution<int> value(0, 4);
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<double> a(size_dist(rng)), b(size_dist(rng));
        for (auto &v : a)
            v = double(value(rng));
        for (auto &v : b)
            v = double(value(rng));
        expectAllPathsMatchOracle(std::move(a), std::move(b));
    }
}

TEST(KsPropertyTest, LopsidedSizesExerciseTheSearchWalk)
{
    // m >= 32 n routes through the binary-search walk instead of the
    // merge-walk; both must agree with the oracle on the same pair.
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> value(0.0, 1.0);
    for (std::size_t n : {std::size_t(1), std::size_t(2),
                          std::size_t(5)}) {
        std::vector<double> big(40 * n), small(n);
        for (auto &v : big)
            v = value(rng);
        for (auto &v : small)
            v = value(rng);
        expectAllPathsMatchOracle(big, small);
        expectAllPathsMatchOracle(small, big);
    }
}

TEST(KsPropertyTest, DisjointSupportsReachExactlyOne)
{
    // One-sided tail exhaustion: every a below every b, so one EDF
    // hits 1 while the other is still 0 and the sup is exactly 1.
    const std::vector<double> a = {1.0, 2.0, 3.0};
    const std::vector<double> b = {10.0, 11.0};
    EXPECT_EQ(bruteForceD(a, b), 1.0);
    expectAllPathsMatchOracle(a, b);

    // Interleaved tails: last monitored value beyond the whole
    // reference, first one before it.
    expectAllPathsMatchOracle({1.0, 2.0, 3.0, 4.0}, {0.0, 100.0});
}

TEST(KsPropertyTest, IdenticalSamplesHaveZeroDistance)
{
    const std::vector<double> a = {1.0, 1.0, 2.0, 5.0};
    expectAllPathsMatchOracle(a, a);
    EXPECT_EQ(ksStatistic(a, a), 0.0);
}

TEST(KsPropertyTest, SortedTestAgreesWithUnsortedTest)
{
    std::mt19937_64 rng(99);
    std::uniform_real_distribution<double> value(-1.0, 1.0);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> a(24), b(8);
        for (auto &v : a)
            v = value(rng);
        for (auto &v : b)
            v = value(rng);
        const auto plain = eddie::stats::ksTest(a, b, 0.01);
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        const auto sorted = eddie::stats::ksTestSorted(a, b, 0.01);
        EXPECT_EQ(plain.statistic, sorted.statistic);
        EXPECT_EQ(plain.critical, sorted.critical);
        EXPECT_EQ(plain.p_value, sorted.p_value);
        EXPECT_EQ(plain.reject, sorted.reject);
        EXPECT_EQ(plain.critical,
                  eddie::stats::ksCritical(a.size(), b.size(), 0.01));
    }
}

TEST(MwuPropertyTest, SortedTestIsBitIdenticalToLegacy)
{
    std::mt19937_64 rng(4242);
    std::uniform_int_distribution<std::size_t> size_dist(1, 30);
    // Small integer support again: midranks and the tie-correction
    // term only matter when ties actually occur.
    std::uniform_int_distribution<int> value(0, 6);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<double> a(size_dist(rng)), b(size_dist(rng));
        for (auto &v : a)
            v = double(value(rng));
        for (auto &v : b)
            v = double(value(rng));
        const auto plain = eddie::stats::mwuTest(a, b, 0.05);
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        const auto sorted = eddie::stats::mwuTestSorted(a, b, 0.05);
        EXPECT_EQ(plain.u, sorted.u);
        EXPECT_EQ(plain.z, sorted.z);
        EXPECT_EQ(plain.p_value, sorted.p_value);
        EXPECT_EQ(plain.reject, sorted.reject);
    }
}

} // namespace
