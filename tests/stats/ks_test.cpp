#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "stats/ks.h"

namespace
{

using eddie::stats::ksStatistic;
using eddie::stats::ksTest;

std::vector<double>
gaussianSample(std::size_t n, double mean, double sd, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> d(mean, sd);
    std::vector<double> v(n);
    for (auto &x : v)
        x = d(rng);
    return v;
}

TEST(KsTest, IdenticalSamplesHaveZeroStatistic)
{
    std::vector<double> a{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(ksStatistic(a, a), 0.0);
    const auto res = ksTest(a, a, 0.01);
    EXPECT_FALSE(res.reject);
}

TEST(KsTest, DisjointSamplesHaveStatisticOne)
{
    std::vector<double> a{1.0, 2.0, 3.0};
    std::vector<double> b{10.0, 11.0, 12.0};
    EXPECT_DOUBLE_EQ(ksStatistic(a, b), 1.0);
}

TEST(KsTest, KnownSmallExample)
{
    // R(x) steps at 1,2,3; M(x) steps at 2,3,4.
    // Max gap is 1/3 (at x in [1,2) and [3,4)).
    std::vector<double> a{1.0, 2.0, 3.0};
    std::vector<double> b{2.0, 3.0, 4.0};
    EXPECT_NEAR(ksStatistic(a, b), 1.0 / 3.0, 1e-12);
}

TEST(KsTest, SameDistributionRarelyRejects)
{
    int rejects = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        auto a = gaussianSample(200, 0.0, 1.0, 2 * t);
        auto b = gaussianSample(50, 0.0, 1.0, 2 * t + 1);
        if (ksTest(a, b, 0.01).reject)
            ++rejects;
    }
    // Expected ~1 % rejections at alpha = 0.01.
    EXPECT_LE(rejects, 8);
}

TEST(KsTest, ShiftedDistributionRejects)
{
    int rejects = 0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t) {
        auto a = gaussianSample(400, 0.0, 1.0, 3 * t);
        auto b = gaussianSample(100, 1.5, 1.0, 3 * t + 1);
        if (ksTest(a, b, 0.01).reject)
            ++rejects;
    }
    EXPECT_GE(rejects, 48); // overwhelming power at this shift
}

TEST(KsTest, CriticalValueFormula)
{
    const auto res = ksTest(gaussianSample(100, 0, 1, 1),
                            gaussianSample(25, 0, 1, 2), 0.05);
    // c(0.05) * sqrt((100+25)/(100*25)) = 1.3581 * sqrt(0.05).
    EXPECT_NEAR(res.critical, 1.3581 * std::sqrt(0.05), 2e-3);
}

TEST(KsTest, PValueConsistentWithRejection)
{
    auto a = gaussianSample(300, 0.0, 1.0, 10);
    auto b = gaussianSample(80, 2.0, 1.0, 11);
    const auto res = ksTest(a, b, 0.01);
    EXPECT_TRUE(res.reject);
    EXPECT_LT(res.p_value, 0.01);
}

TEST(KsTest, EmptyInputsNeverReject)
{
    std::vector<double> a{1.0, 2.0};
    std::vector<double> empty;
    EXPECT_FALSE(ksTest(a, empty).reject);
    EXPECT_FALSE(ksTest(empty, a).reject);
}

TEST(KsTest, TiesHandledCorrectly)
{
    // All values identical in both samples: D = 0.
    std::vector<double> a(10, 5.0);
    std::vector<double> b(4, 5.0);
    EXPECT_DOUBLE_EQ(ksStatistic(a, b), 0.0);
    // Half of a's mass below b's point value.
    std::vector<double> c{1.0, 1.0, 9.0, 9.0};
    std::vector<double> d{1.0, 1.0, 1.0, 1.0};
    EXPECT_NEAR(ksStatistic(c, d), 0.5, 1e-12);
}

} // namespace
