/**
 * @file
 * Property-based tests of the statistical substrate: invariances the
 * tests must satisfy regardless of the data.
 */

#include <algorithm>
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "stats/ks.h"
#include "stats/mwu.h"
#include "stats/special.h"

namespace
{

using namespace eddie::stats;

class StatPropertyTest : public ::testing::TestWithParam<int>
{
  protected:
    std::mt19937_64 rng{std::uint64_t(GetParam())};

    std::vector<double>
    sample(std::size_t n, double mu = 0.0, double sigma = 1.0)
    {
        std::normal_distribution<double> d(mu, sigma);
        std::vector<double> v(n);
        for (auto &x : v)
            x = d(rng);
        return v;
    }
};

TEST_P(StatPropertyTest, KsStatisticIsSymmetric)
{
    const auto a = sample(60, 0.0, 1.0);
    const auto b = sample(25, 0.4, 1.3);
    EXPECT_DOUBLE_EQ(ksStatistic(a, b), ksStatistic(b, a));
}

TEST_P(StatPropertyTest, KsInvariantUnderMonotoneTransform)
{
    // D depends only on ranks, so any strictly increasing transform
    // leaves it unchanged.
    const auto a = sample(50, 1.0, 0.5);
    const auto b = sample(30, 1.2, 0.5);
    auto f = [](double x) { return std::exp(0.7 * x) + 3.0; };
    std::vector<double> fa, fb;
    for (double v : a)
        fa.push_back(f(v));
    for (double v : b)
        fb.push_back(f(v));
    EXPECT_NEAR(ksStatistic(a, b), ksStatistic(fa, fb), 1e-12);
}

TEST_P(StatPropertyTest, KsStatisticBounds)
{
    const auto a = sample(40);
    const auto b = sample(17, 5.0);
    const double d = ksStatistic(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
}

TEST_P(StatPropertyTest, KsMoreDataMorePower)
{
    // With the same separation, larger samples must not raise the
    // critical value.
    const auto r1 = ksTest(sample(100), sample(10, 0.5), 0.01);
    const auto r2 = ksTest(sample(100), sample(80, 0.5), 0.01);
    EXPECT_LE(r2.critical, r1.critical);
}

TEST_P(StatPropertyTest, MwuSymmetricInU)
{
    // U_a + U_b = n_a * n_b.
    const auto a = sample(30, 0.0);
    const auto b = sample(20, 0.7);
    const double ua = mwuTest(a, b).u;
    const double ub = mwuTest(b, a).u;
    EXPECT_NEAR(ua + ub, 30.0 * 20.0, 1e-9);
}

TEST_P(StatPropertyTest, MwuInvariantUnderShiftOfBoth)
{
    const auto a = sample(25);
    const auto b = sample(25, 0.3);
    auto shift = [](std::vector<double> v) {
        for (auto &x : v)
            x += 42.0;
        return v;
    };
    EXPECT_NEAR(mwuTest(a, b).z, mwuTest(shift(a), shift(b)).z, 1e-9);
}

TEST_P(StatPropertyTest, KolmogorovQIsDecreasing)
{
    double prev = 1.1;
    for (double x = 0.1; x < 2.5; x += 0.1) {
        const double q = kolmogorovQ(x);
        EXPECT_LT(q, prev);
        prev = q;
    }
}

TEST_P(StatPropertyTest, TighterAlphaRaisesCritical)
{
    EXPECT_GT(kolmogorovCritical(0.01), kolmogorovCritical(0.05));
    EXPECT_GT(kolmogorovCritical(0.05), kolmogorovCritical(0.10));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatPropertyTest,
                         ::testing::Range(1, 11));

} // namespace
