#include <random>

#include <gtest/gtest.h>

#include "stats/gmm.h"

namespace
{

using eddie::stats::GaussianMixture;
using eddie::stats::parametricTest;

std::vector<double>
bimodal(std::size_t n, double m1, double m2, double sd,
        std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> a(m1, sd), b(m2, sd);
    std::bernoulli_distribution pick(0.5);
    std::vector<double> v(n);
    for (auto &x : v)
        x = pick(rng) ? a(rng) : b(rng);
    return v;
}

TEST(GmmTest, SingleComponentRecoversMoments)
{
    std::mt19937_64 rng(1);
    std::normal_distribution<double> d(3.0, 2.0);
    std::vector<double> x(5000);
    for (auto &v : x)
        v = d(rng);
    const auto gmm = GaussianMixture::fit(x, 1);
    ASSERT_EQ(gmm.components().size(), 1u);
    EXPECT_NEAR(gmm.components()[0].mean, 3.0, 0.1);
    EXPECT_NEAR(gmm.components()[0].stddev, 2.0, 0.1);
}

TEST(GmmTest, TwoComponentsFindBothModes)
{
    const auto x = bimodal(4000, -4.0, 4.0, 0.7, 2);
    const auto gmm = GaussianMixture::fit(x, 2);
    ASSERT_EQ(gmm.components().size(), 2u);
    double lo = gmm.components()[0].mean;
    double hi = gmm.components()[1].mean;
    if (lo > hi)
        std::swap(lo, hi);
    EXPECT_NEAR(lo, -4.0, 0.3);
    EXPECT_NEAR(hi, 4.0, 0.3);
}

TEST(GmmTest, CdfIsMonotoneAndNormalized)
{
    const auto x = bimodal(1000, -2.0, 2.0, 0.5, 3);
    const auto gmm = GaussianMixture::fit(x, 2);
    EXPECT_NEAR(gmm.cdf(-100.0), 0.0, 1e-9);
    EXPECT_NEAR(gmm.cdf(100.0), 1.0, 1e-9);
    double prev = 0.0;
    for (double t = -6.0; t <= 6.0; t += 0.25) {
        const double c = gmm.cdf(t);
        EXPECT_GE(c, prev - 1e-12);
        prev = c;
    }
}

TEST(GmmTest, BimodalFitsBetterThanUnimodal)
{
    const auto x = bimodal(3000, -5.0, 5.0, 0.5, 4);
    const auto g1 = GaussianMixture::fit(x, 1);
    const auto g2 = GaussianMixture::fit(x, 2);
    EXPECT_GT(g2.logLikelihood(x), g1.logLikelihood(x) + 0.5);
}

TEST(GmmTest, ParametricTestAcceptsMatchingSample)
{
    const auto train = bimodal(4000, -3.0, 3.0, 1.0, 5);
    const auto gmm = GaussianMixture::fit(train, 2);
    const auto probe = bimodal(100, -3.0, 3.0, 1.0, 6);
    const auto res = parametricTest(gmm, probe, 0.01);
    EXPECT_FALSE(res.reject);
}

TEST(GmmTest, ParametricTestRejectsShiftedSample)
{
    const auto train = bimodal(4000, -3.0, 3.0, 1.0, 7);
    const auto gmm = GaussianMixture::fit(train, 2);
    const auto probe = bimodal(100, 5.0, 11.0, 1.0, 8);
    const auto res = parametricTest(gmm, probe, 0.01);
    EXPECT_TRUE(res.reject);
}

TEST(GmmTest, EmptyInputThrows)
{
    EXPECT_THROW(GaussianMixture::fit({}, 2), std::invalid_argument);
}

} // namespace
