#include <random>

#include <gtest/gtest.h>

#include "stats/mwu.h"

namespace
{

using eddie::stats::mwuTest;

std::vector<double>
sample(std::size_t n, double shift, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> d(shift, 1.0);
    std::vector<double> v(n);
    for (auto &x : v)
        x = d(rng);
    return v;
}

TEST(MwuTest, IdenticalGroupsDoNotReject)
{
    std::vector<double> a{1, 2, 3, 4, 5, 6, 7, 8};
    const auto res = mwuTest(a, a, 0.05);
    EXPECT_FALSE(res.reject);
    EXPECT_NEAR(res.z, 0.0, 1e-9);
}

TEST(MwuTest, UStatisticSmallExample)
{
    // a = {1,2}, b = {3,4}: every b beats every a, U_a = 0.
    std::vector<double> a{1.0, 2.0};
    std::vector<double> b{3.0, 4.0};
    EXPECT_DOUBLE_EQ(mwuTest(a, b, 0.05).u, 0.0);
    // Reversed: U_a = n_a * n_b = 4.
    EXPECT_DOUBLE_EQ(mwuTest(b, a, 0.05).u, 4.0);
}

TEST(MwuTest, MedianShiftDetected)
{
    auto a = sample(100, 0.0, 1);
    auto b = sample(100, 1.0, 2);
    const auto res = mwuTest(a, b, 0.01);
    EXPECT_TRUE(res.reject);
    EXPECT_LT(res.p_value, 1e-4);
}

TEST(MwuTest, SameDistributionRarelyRejects)
{
    int rejects = 0;
    for (int t = 0; t < 200; ++t) {
        auto a = sample(60, 0.0, 100 + 2 * t);
        auto b = sample(60, 0.0, 101 + 2 * t);
        if (mwuTest(a, b, 0.01).reject)
            ++rejects;
    }
    EXPECT_LE(rejects, 8);
}

TEST(MwuTest, AllTiedValues)
{
    std::vector<double> a(10, 3.0);
    std::vector<double> b(10, 3.0);
    const auto res = mwuTest(a, b, 0.05);
    EXPECT_FALSE(res.reject);
    EXPECT_DOUBLE_EQ(res.p_value, 1.0);
}

TEST(MwuTest, EmptyInputs)
{
    std::vector<double> a{1.0};
    std::vector<double> empty;
    EXPECT_FALSE(mwuTest(a, empty).reject);
    EXPECT_FALSE(mwuTest(empty, a).reject);
}

} // namespace
