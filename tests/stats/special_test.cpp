#include <cmath>

#include <gtest/gtest.h>

#include "stats/special.h"

namespace
{

using namespace eddie::stats;

TEST(SpecialTest, NormalCdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-6);
    EXPECT_NEAR(normalCdf(-1.959963985), 0.025, 1e-6);
    EXPECT_NEAR(normalCdf(5.0), 1.0, 1e-6);
}

TEST(SpecialTest, NormalQuantileInvertsCdf)
{
    for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999})
        EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-8) << p;
    EXPECT_THROW(normalQuantile(0.0), std::invalid_argument);
    EXPECT_THROW(normalQuantile(1.0), std::invalid_argument);
}

TEST(SpecialTest, IncompleteBetaKnownValues)
{
    // I_x(1, 1) = x (uniform distribution).
    for (double x : {0.1, 0.5, 0.9})
        EXPECT_NEAR(incompleteBeta(1.0, 1.0, x), x, 1e-10);
    // I_x(2, 2) = x^2 (3 - 2x).
    EXPECT_NEAR(incompleteBeta(2.0, 2.0, 0.3),
                0.3 * 0.3 * (3.0 - 0.6), 1e-10);
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(SpecialTest, IncompleteGammaKnownValues)
{
    // P(1, x) = 1 - e^{-x}.
    for (double x : {0.5, 1.0, 3.0})
        EXPECT_NEAR(incompleteGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
    EXPECT_DOUBLE_EQ(incompleteGammaP(2.0, 0.0), 0.0);
}

TEST(SpecialTest, ChiSquaredCdf)
{
    // Chi2(k=2) is Exp(1/2): CDF = 1 - e^{-x/2}.
    for (double x : {1.0, 2.0, 5.0})
        EXPECT_NEAR(chi2Cdf(x, 2.0), 1.0 - std::exp(-x / 2.0), 1e-10);
}

TEST(SpecialTest, FCdfAgainstTabulated)
{
    // Median of F(1, 1) is 1.0 (CDF = 0.5).
    EXPECT_NEAR(fCdf(1.0, 1.0, 1.0), 0.5, 1e-9);
    // F(2, 10): P(F <= 4.10) ~ 0.95 (standard table).
    EXPECT_NEAR(fCdf(4.102821, 2.0, 10.0), 0.95, 1e-4);
    EXPECT_DOUBLE_EQ(fCdf(-1.0, 2.0, 10.0), 0.0);
}

TEST(SpecialTest, KolmogorovDistribution)
{
    // Classical critical values of the Kolmogorov distribution.
    EXPECT_NEAR(kolmogorovCritical(0.05), 1.3581, 1e-3);
    EXPECT_NEAR(kolmogorovCritical(0.01), 1.6276, 1e-3);
    EXPECT_NEAR(kolmogorovCritical(0.10), 1.2238, 1e-3);
    // Q is a valid complementary CDF.
    EXPECT_NEAR(kolmogorovQ(0.0), 1.0, 1e-12);
    EXPECT_GT(kolmogorovQ(0.5), kolmogorovQ(1.0));
    EXPECT_LT(kolmogorovQ(3.0), 1e-6);
    // Round trip.
    for (double a : {0.2, 0.05, 0.01})
        EXPECT_NEAR(kolmogorovQ(kolmogorovCritical(a)), a, 1e-9);
}

} // namespace
