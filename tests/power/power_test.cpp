#include <gtest/gtest.h>

#include "power/energy_model.h"
#include "power/power_trace.h"

namespace
{

using namespace eddie::power;

TEST(EnergyModelTest, CacheEnergyScalesWithSize)
{
    EnergyParams params;
    EnergyModel small(params, 16 * 1024, 128 * 1024, 8);
    EnergyModel large(params, 64 * 1024, 512 * 1024, 8);
    EXPECT_LT(small.eventEnergy(Event::L1Access),
              large.eventEnergy(Event::L1Access));
    EXPECT_LT(small.eventEnergy(Event::L2Access),
              large.eventEnergy(Event::L2Access));
    // Reference sizes reproduce the reference energies.
    EnergyModel ref(params, 32 * 1024, 256 * 1024, 8);
    EXPECT_NEAR(ref.eventEnergy(Event::L1Access), params.l1_ref, 1e-12);
}

TEST(EnergyModelTest, FlushScalesWithDepth)
{
    EnergyParams params;
    EnergyModel shallow(params, 32 * 1024, 256 * 1024, 4);
    EnergyModel deep(params, 32 * 1024, 256 * 1024, 16);
    EXPECT_NEAR(deep.eventEnergy(Event::PipelineFlush),
                4.0 * shallow.eventEnergy(Event::PipelineFlush), 1e-12);
}

TEST(EnergyModelTest, EventOrdering)
{
    EnergyParams params;
    EnergyModel m(params, 32 * 1024, 256 * 1024, 8);
    EXPECT_LT(m.eventEnergy(Event::AluOp), m.eventEnergy(Event::MulOp));
    EXPECT_LT(m.eventEnergy(Event::MulOp), m.eventEnergy(Event::DivOp));
    EXPECT_LT(m.eventEnergy(Event::L1Access),
              m.eventEnergy(Event::L2Access));
    EXPECT_LT(m.eventEnergy(Event::L2Access),
              m.eventEnergy(Event::DramAccess));
}

TEST(PowerTraceTest, DepositsIntoBuckets)
{
    PowerTrace t(10, 1000.0);
    t.deposit(5, 1.0);
    t.deposit(9, 2.0);
    t.deposit(10, 4.0);
    t.finalize(25, 0.0);
    ASSERT_EQ(t.samples().size(), 3u);
    EXPECT_DOUBLE_EQ(t.samples()[0], 3.0);
    EXPECT_DOUBLE_EQ(t.samples()[1], 4.0);
    EXPECT_DOUBLE_EQ(t.samples()[2], 0.0);
}

TEST(PowerTraceTest, BaselineAddedUniformly)
{
    PowerTrace t(20, 1000.0);
    t.deposit(0, 1.0);
    t.finalize(100, 0.5);
    for (double s : t.samples())
        EXPECT_GE(s, 0.5 * 20.0);
    EXPECT_DOUBLE_EQ(t.samples()[0], 1.0 + 10.0);
}

TEST(PowerTraceTest, SampleRate)
{
    PowerTrace t(20, 200e6);
    EXPECT_DOUBLE_EQ(t.sampleRate(), 10e6);
    EXPECT_EQ(t.sampleOf(19), 0u);
    EXPECT_EQ(t.sampleOf(20), 1u);
}

TEST(PowerTraceTest, BadArgsThrow)
{
    EXPECT_THROW(PowerTrace(0, 100.0), std::invalid_argument);
    EXPECT_THROW(PowerTrace(10, 0.0), std::invalid_argument);
}

} // namespace
