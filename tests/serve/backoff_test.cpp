/**
 * @file
 * Backoff schedule and source-fault determinism: the retry path must
 * be a pure function of its seeds, because checkpoint recovery
 * replays it and the recovery tests assert bit-identical outcomes.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/errors.h"
#include "faults/source_faults.h"
#include "serve/backoff.h"
#include "serve/sample_source.h"

namespace
{

using namespace eddie;
using namespace eddie::serve;

TEST(Backoff, GrowsExponentiallyUpToCapWithoutJitter)
{
    BackoffConfig cfg;
    cfg.initial_ms = 1.0;
    cfg.multiplier = 2.0;
    cfg.max_ms = 10.0;
    cfg.jitter = 0.0;
    Backoff b(cfg);
    EXPECT_DOUBLE_EQ(b.nextDelayMs(), 1.0);
    EXPECT_DOUBLE_EQ(b.nextDelayMs(), 2.0);
    EXPECT_DOUBLE_EQ(b.nextDelayMs(), 4.0);
    EXPECT_DOUBLE_EQ(b.nextDelayMs(), 8.0);
    EXPECT_DOUBLE_EQ(b.nextDelayMs(), 10.0); // capped
    EXPECT_DOUBLE_EQ(b.nextDelayMs(), 10.0);
}

TEST(Backoff, ScheduleIsDeterministicInTheSeed)
{
    BackoffConfig cfg;
    cfg.seed = 1234;
    Backoff a(cfg), b(cfg);
    for (int i = 0; i < 32; ++i)
        EXPECT_DOUBLE_EQ(a.nextDelayMs(), b.nextDelayMs());

    BackoffConfig other = cfg;
    other.seed = 1235;
    Backoff c(cfg), d(other);
    bool any_difference = false;
    for (int i = 0; i < 32; ++i)
        any_difference |= c.nextDelayMs() != d.nextDelayMs();
    EXPECT_TRUE(any_difference);
}

TEST(Backoff, ResetReplaysTheSameSchedule)
{
    BackoffConfig cfg;
    Backoff b(cfg);
    std::vector<double> first;
    for (int i = 0; i < 8; ++i)
        first.push_back(b.nextDelayMs());
    b.reset();
    EXPECT_EQ(b.attempts(), 0u);
    for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(b.nextDelayMs(), first[std::size_t(i)]);
}

TEST(Backoff, JitterStaysWithinTheConfiguredBand)
{
    BackoffConfig cfg;
    cfg.initial_ms = 4.0;
    cfg.multiplier = 1.0;
    cfg.max_ms = 4.0;
    cfg.jitter = 0.25;
    Backoff b(cfg);
    for (int i = 0; i < 256; ++i) {
        const double d = b.nextDelayMs();
        EXPECT_GE(d, 4.0 * 0.75);
        EXPECT_LE(d, 4.0 * 1.25);
    }
}

TEST(Backoff, RejectsInvalidConfigs)
{
    BackoffConfig bad;
    bad.multiplier = 0.5;
    EXPECT_THROW(Backoff{bad}, std::invalid_argument);
    bad = BackoffConfig{};
    bad.max_ms = 0.1; // below initial_ms
    EXPECT_THROW(Backoff{bad}, std::invalid_argument);
    bad = BackoffConfig{};
    bad.jitter = 1.0;
    EXPECT_THROW(Backoff{bad}, std::invalid_argument);
    bad = BackoffConfig{};
    bad.initial_ms = -1.0;
    EXPECT_THROW(Backoff{bad}, std::invalid_argument);
}

TEST(SourceFaults, FateIsPureInSeedIndexAndAttempt)
{
    faults::SourceFaultConfig cfg;
    cfg.enabled = true;
    cfg.stall_prob = 0.3;
    cfg.error_prob = 0.2;
    for (std::uint64_t i = 0; i < 64; ++i)
        for (std::uint64_t a = 0; a < 4; ++a)
            EXPECT_EQ(faults::pullFate(cfg, i, a),
                      faults::pullFate(cfg, i, a));
}

TEST(SourceFaults, ConsecutiveFaultCapForcesDelivery)
{
    faults::SourceFaultConfig cfg;
    cfg.enabled = true;
    cfg.stall_prob = 1.0; // every uncapped attempt stalls
    cfg.max_consecutive = 3;
    for (std::uint64_t i = 0; i < 16; ++i) {
        EXPECT_EQ(faults::pullFate(cfg, i, 2), faults::PullFate::Stall);
        EXPECT_EQ(faults::pullFate(cfg, i, 3),
                  faults::PullFate::Deliver);
    }
}

TEST(SourceFaults, RejectsInvalidProbabilities)
{
    faults::SourceFaultConfig cfg;
    cfg.stall_prob = -0.1;
    EXPECT_THROW(faults::validate(cfg), core::ChannelFault);
    cfg = {};
    cfg.stall_prob = 0.7;
    cfg.error_prob = 0.7;
    EXPECT_THROW(faults::validate(cfg), core::ChannelFault);
}

TEST(RetryingSource, RecoversEveryWindowAndCountsTheWork)
{
    auto stream =
        std::make_shared<const std::vector<core::Sts>>(64);
    VectorSource base(stream);
    faults::SourceFaultConfig fcfg;
    fcfg.enabled = true;
    fcfg.stall_prob = 0.3;
    fcfg.error_prob = 0.2;
    fcfg.max_consecutive = 3;
    FlakySource flaky(base, fcfg);
    RetryConfig rcfg;
    rcfg.max_attempts = 8; // above the consecutive-fault cap
    RetryingSource retrying(flaky, rcfg, [](double) {});

    std::size_t delivered = 0;
    while (true) {
        const Pull pull = retrying.next();
        if (pull.status == PullStatus::EndOfStream)
            break;
        ASSERT_EQ(pull.status, PullStatus::Ready);
        ++delivered;
    }
    EXPECT_EQ(delivered, stream->size());
    const SourceStats stats = retrying.stats();
    EXPECT_EQ(stats.delivered, stream->size());
    EXPECT_GT(stats.retries, 0u);
    EXPECT_EQ(stats.give_ups, 0u);
    EXPECT_EQ(stats.retries, stats.stalls + stats.errors);
}

TEST(RetryingSource, ExhaustedBudgetSurfacesAsCountedGiveUp)
{
    auto stream =
        std::make_shared<const std::vector<core::Sts>>(4);
    VectorSource base(stream);
    faults::SourceFaultConfig fcfg;
    fcfg.enabled = true;
    fcfg.stall_prob = 1.0;
    fcfg.max_consecutive = 8; // deeper than the retry budget
    FlakySource flaky(base, fcfg);
    RetryConfig rcfg;
    rcfg.max_attempts = 3;
    RetryingSource retrying(flaky, rcfg, [](double) {});

    const Pull pull = retrying.next();
    EXPECT_EQ(pull.status, PullStatus::Stalled);
    EXPECT_EQ(retrying.stats().give_ups, 1u);
}

} // namespace
