/**
 * @file
 * Integration tests of the multi-tenant fleet runtime: per-tenant
 * fault domains under runFleet (a crashing tenant's breaker isolates
 * it while neighbors' verdicts stay bit-identical), per-tenant
 * checkpoint namespaces in one shared archive, and the deterministic
 * chaos harness end to end (tests/serve/serve_test_util.h fixtures).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/errors.h"
#include "serve/chaos.h"
#include "serve/sample_source.h"
#include "serve/supervisor.h"
#include "serve_test_util.h"

using namespace eddie;
using namespace eddie::serve;
using namespace serve_test;

namespace
{

struct FleetFixture
{
    std::shared_ptr<const core::TrainedModel> model;
    std::vector<std::shared_ptr<const std::vector<core::Sts>>> streams;
    std::vector<std::unique_ptr<VectorSource>> sources;
    std::vector<std::vector<core::StepRecord>> serial_records;
    std::vector<std::vector<core::AnomalyReport>> serial_reports;

    explicit FleetFixture(std::size_t sessions)
    {
        std::mt19937_64 rng(0xF1EE7);
        model = std::make_shared<const core::TrainedModel>(
            sharpModel(rng));
        for (std::size_t s = 0; s < sessions; ++s) {
            streams.push_back(
                std::make_shared<const std::vector<core::Sts>>(
                    eventfulStream(100 + s)));
            sources.push_back(
                std::make_unique<VectorSource>(streams.back()));
            core::Monitor mon(*model, core::MonitorConfig{});
            for (const core::Sts &sts : *streams.back())
                mon.step(sts);
            serial_records.push_back(mon.records());
            serial_reports.push_back(mon.reports());
        }
    }

    TenantSpec spec(const std::string &id) const
    {
        TenantSpec s;
        s.id = id;
        s.model = model;
        return s;
    }
};

ServeConfig
fastServeConfig()
{
    ServeConfig cfg;
    cfg.watchdog.heartbeat_deadline_ms = 60.0;
    cfg.watchdog.poll_interval_ms = 2.0;
    cfg.checkpoint_interval = 8;
    cfg.full_snapshot_every = 4;
    return cfg;
}

} // namespace

TEST(Fleet, CleanRunMatchesSerialVerdictsAndCountsTenants)
{
    FleetFixture fx(2);
    TenantRegistry reg;
    reg.addTenant(fx.spec("a"));
    reg.addTenant(fx.spec("b"));
    ASSERT_TRUE(reg.openSession("a", fx.sources[0].get()).admitted);
    ASSERT_TRUE(reg.openSession("b", fx.sources[1].get()).admitted);

    Supervisor sup(fastServeConfig());
    const FleetResult fr = sup.runFleet(reg);

    ASSERT_EQ(fr.sessions.size(), 2u);
    for (std::size_t s = 0; s < 2; ++s) {
        EXPECT_FALSE(fr.sessions[s].escalated);
        EXPECT_TRUE(sameRecords(fr.sessions[s].records,
                                fx.serial_records[s]));
        EXPECT_TRUE(sameReports(fr.sessions[s].reports,
                                fx.serial_reports[s]));
    }
    for (const TenantResult &tr : fr.tenants) {
        EXPECT_FALSE(tr.breaker_tripped);
        EXPECT_EQ(tr.restarts_used, 0u);
    }
    const core::ServeStats st = sup.stats();
    EXPECT_EQ(st.tenants, 2u);
    EXPECT_EQ(st.sessions, 2u);
    EXPECT_EQ(st.breaker_trips, 0u);
}

TEST(Fleet, CrashLoopTenantIsIsolatedNeighborsUnaffected)
{
    FleetFixture fx(2);
    TenantRegistry reg;
    TenantSpec bad = fx.spec("bad");
    bad.breaker.fault_threshold = 3;
    reg.addTenant(bad);
    reg.addTenant(fx.spec("good"));
    ASSERT_TRUE(reg.openSession("bad", fx.sources[0].get()).admitted);
    ASSERT_TRUE(reg.openSession("good", fx.sources[1].get()).admitted);

    Supervisor sup(fastServeConfig());
    // The bad tenant's worker crashes on every step past 40: an
    // unconditional crash loop that must end in breaker isolation,
    // not an unbounded restart storm.
    sup.setFleetStepHook([](std::size_t, const std::string &tenant,
                            std::size_t step,
                            const std::atomic<bool> &) {
        if (tenant == "bad" && step >= 40)
            throw core::Error("fleet test: injected crash");
    });
    const FleetResult fr = sup.runFleet(reg);

    EXPECT_TRUE(fr.sessions[0].escalated);
    EXPECT_TRUE(fr.tenants[0].breaker_tripped);
    EXPECT_EQ(fr.tenants[0].breaker_cause, FaultClass::WorkerFault);
    EXPECT_GE(fr.tenants[0].worker_faults, 3u);
    // The last checkpointed verdicts survive as the tenant's result.
    EXPECT_LE(fr.sessions[0].steps, 40u);

    EXPECT_FALSE(fr.sessions[1].escalated);
    EXPECT_FALSE(fr.tenants[1].breaker_tripped);
    EXPECT_TRUE(
        sameRecords(fr.sessions[1].records, fx.serial_records[1]));
    EXPECT_TRUE(
        sameReports(fr.sessions[1].reports, fx.serial_reports[1]));
    EXPECT_GE(sup.stats().breaker_trips, 1u);
}

TEST(Fleet, SharedArchiveNamespacesResumeBitIdentical)
{
    const std::string base =
        testing::TempDir() + "fleet_arc_resume_test";
    std::remove((base + ".arc").c_str());

    FleetFixture fx(2);
    ServeConfig cfg = fastServeConfig();
    cfg.checkpoint_path = base;
    cfg.checkpoint_archive = true;
    {
        // First run: both tenants checkpoint into one container
        // under their own key prefixes, stopped mid-stream by a
        // graceful stop as soon as both have cut something.
        TenantRegistry reg;
        reg.addTenant(fx.spec("a"));
        reg.addTenant(fx.spec("b"));
        ASSERT_TRUE(
            reg.openSession("a", fx.sources[0].get()).admitted);
        ASSERT_TRUE(
            reg.openSession("b", fx.sources[1].get()).admitted);
        Supervisor sup(cfg);
        std::atomic<bool> cut_enough{false};
        sup.setFleetStepHook([&](std::size_t, const std::string &,
                                 std::size_t step,
                                 const std::atomic<bool> &) {
            if (step >= 64)
                cut_enough.store(true);
        });
        sup.setStopCheck([&] { return cut_enough.load(); });
        sup.runFleet(reg);
    }
    {
        // Resume: both tenants recover from their own namespace and
        // replay to verdicts bit-identical to the serial runs.
        FleetFixture fresh(2);
        ServeConfig rcfg = cfg;
        rcfg.resume = true;
        TenantRegistry reg;
        reg.addTenant(fresh.spec("a"));
        reg.addTenant(fresh.spec("b"));
        ASSERT_TRUE(
            reg.openSession("a", fresh.sources[0].get()).admitted);
        ASSERT_TRUE(
            reg.openSession("b", fresh.sources[1].get()).admitted);
        Supervisor sup(rcfg);
        const FleetResult fr = sup.runFleet(reg);
        EXPECT_GE(sup.stats().checkpoint_restores, 1u);
        for (std::size_t s = 0; s < 2; ++s) {
            EXPECT_FALSE(fr.sessions[s].escalated);
            EXPECT_TRUE(sameRecords(fr.sessions[s].records,
                                    fx.serial_records[s]));
            EXPECT_TRUE(sameReports(fr.sessions[s].reports,
                                    fx.serial_reports[s]));
        }
        EXPECT_EQ(sup.stats().snapshot_decode_failures, 0u);
    }
    std::remove((base + ".arc").c_str());
}

TEST(Fleet, LegacyRunRefusedOnFleetSupervisor)
{
    Supervisor sup(fastServeConfig());
    EXPECT_THROW(sup.run({}), core::Error);
}

TEST(Chaos, SmokeSeedsHoldEveryInvariant)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        ChaosConfig cfg;
        cfg.seed = seed;
        cfg.archive = seed % 2 == 0;
        cfg.dir = testing::TempDir() + "chaos_smoke_s" +
                  std::to_string(seed);
        std::filesystem::create_directories(cfg.dir);
        const ChaosReport rep = runChaos(cfg);
        std::string all;
        for (const std::string &v : rep.violations)
            all += v + "; ";
        EXPECT_TRUE(rep.ok) << "seed " << seed << ": " << all;
        std::filesystem::remove_all(cfg.dir);
    }
}

TEST(Chaos, InMemoryRunSkipsDiskFatesButChecksIsolation)
{
    ChaosConfig cfg;
    cfg.seed = 11;
    cfg.dir.clear(); // no disk: phases B/C skipped
    const ChaosReport rep = runChaos(cfg);
    std::string all;
    for (const std::string &v : rep.violations)
        all += v + "; ";
    EXPECT_TRUE(rep.ok) << all;
    EXPECT_EQ(rep.torn_bytes, 0u);
    EXPECT_EQ(rep.corrupted_snapshots, 0u);
    EXPECT_GT(rep.healthy_sessions_checked, 0u);
}
