/**
 * @file
 * Tests of the v2 group-committed checkpoint pipeline
 * (serve::CheckpointStore): group-snapshot round-trips, legacy v1
 * files loading as one-shard groups, disk recovery reproducing the
 * live mirror byte-for-byte at every cut of a full-snapshot + delta
 * chain, and the corruption fallbacks — a truncated delta tail or a
 * bit-flipped segment must recover to the last good prefix of the
 * chain with the fallback counted.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/errors.h"
#include "serve/checkpoint.h"
#include "serve_test_util.h"

namespace
{

using namespace eddie;
using namespace eddie::serve;
using serve_test::eventfulStream;
using serve_test::sharpModel;

std::string
bytes(const CheckpointData &ckpt)
{
    std::ostringstream os;
    saveCheckpoint(ckpt, os);
    return os.str();
}

CheckpointData
stateAt(const core::Monitor &m)
{
    CheckpointData ckpt;
    ckpt.monitor = m.exportState();
    ckpt.source_pos = ckpt.monitor.step_index;
    return ckpt;
}

void
removeStoreFiles(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".dlt").c_str());
}

TEST(GroupCheckpointTest, RoundTripPreservesEveryShard)
{
    std::mt19937_64 rng(7);
    const auto model = sharpModel(rng);

    GroupCheckpoint group;
    group.epoch = 5;
    for (std::size_t prefix : {std::size_t(40), std::size_t(90),
                               std::size_t(160)}) {
        core::Monitor m(model, core::MonitorConfig());
        const auto stream = eventfulStream(50 + prefix);
        for (std::size_t i = 0; i < prefix; ++i)
            m.step(stream[i]);
        group.shards.push_back(stateAt(m));
    }

    std::ostringstream os;
    saveGroupCheckpoint(group, os);
    std::istringstream is(os.str());
    const auto loaded = loadGroupCheckpoint(is);
    EXPECT_EQ(loaded.epoch, 5u);
    ASSERT_EQ(loaded.shards.size(), group.shards.size());
    for (std::size_t i = 0; i < group.shards.size(); ++i)
        EXPECT_EQ(bytes(loaded.shards[i]), bytes(group.shards[i]))
            << "shard " << i;
}

TEST(GroupCheckpointTest, LegacyV1FileLoadsAsOneShardGroup)
{
    std::mt19937_64 rng(7);
    const auto model = sharpModel(rng);
    core::Monitor m(model, core::MonitorConfig());
    for (const auto &sts : eventfulStream(3))
        m.step(sts);
    const CheckpointData ckpt = stateAt(m);

    const std::string path = testing::TempDir() + "delta_ckpt_v1";
    saveCheckpointFile(ckpt, path); // v1 writer, unchanged

    const auto group = loadGroupCheckpointFile(path);
    EXPECT_EQ(group.epoch, 0u);
    ASSERT_EQ(group.shards.size(), 1u);
    EXPECT_EQ(bytes(group.shards[0]), bytes(ckpt));

    // The store's recovery path accepts the same legacy file.
    CheckpointStoreConfig cfg;
    cfg.path = path;
    cfg.num_shards = 1;
    CheckpointStore store(cfg);
    const auto recovered = store.recover();
    ASSERT_EQ(recovered.size(), 1u);
    EXPECT_TRUE(recovered[0]);
    EXPECT_EQ(bytes(store.mirror(0)), bytes(ckpt));
    removeStoreFiles(path);
}

TEST(CheckpointStoreTest, RecoverMatchesLiveMirrorAtEveryCut)
{
    std::mt19937_64 rng(7);
    const auto model = sharpModel(rng);
    const auto stream = eventfulStream(77);

    const std::string path =
        testing::TempDir() + "delta_ckpt_every_cut";
    removeStoreFiles(path);
    CheckpointStoreConfig cfg;
    cfg.path = path;
    cfg.num_shards = 1;
    cfg.full_every = 3; // mix full rewrites and delta appends
    CheckpointStore store(cfg);

    core::Monitor m(model, core::MonitorConfig());
    store.submitFull(0, stateAt(m));
    ASSERT_TRUE(store.flush());

    // Cut every 7 steps: cuts land mid-ring-wrap, inside the anomaly
    // burst (retro-marked records) and inside the dropout outage
    // (cleared history). After every group commit, a cold recovery
    // from disk must reproduce the live mirror byte-for-byte —
    // whether the newest cut sits in the snapshot or at the end of a
    // delta chain.
    for (std::size_t i = 0; i < stream.size(); ++i) {
        m.step(stream[i]);
        if ((i + 1) % 7 != 0)
            continue;
        store.submitDelta(0, m.exportDelta());
        ASSERT_TRUE(store.flush());

        CheckpointStore fresh(cfg);
        const auto recovered = fresh.recover();
        ASSERT_TRUE(recovered[0]) << "cut after step " << i;
        ASSERT_EQ(bytes(fresh.mirror(0)), bytes(store.mirror(0)))
            << "cut after step " << i;
        ASSERT_EQ(bytes(fresh.mirror(0)), bytes(stateAt(m)))
            << "cut after step " << i;
        EXPECT_EQ(fresh.stats().delta_fallbacks, 0u);
    }
    removeStoreFiles(path);
}

TEST(CheckpointStoreTest, CutImmediatelyAfterFullSnapshotRecovers)
{
    std::mt19937_64 rng(7);
    const auto model = sharpModel(rng);
    const auto stream = eventfulStream(31);

    const std::string path = testing::TempDir() + "delta_ckpt_after_full";
    removeStoreFiles(path);
    CheckpointStoreConfig cfg;
    cfg.path = path;
    cfg.num_shards = 1;
    cfg.full_every = 1u << 20;
    CheckpointStore store(cfg);

    core::Monitor m(model, core::MonitorConfig());
    for (std::size_t i = 0; i < 40; ++i)
        m.step(stream[i]);
    store.submitFull(0, stateAt(m));
    m.resetDeltaBaseline(); // next delta chains off this snapshot
    ASSERT_TRUE(store.flush()); // full snapshot, truncates the log

    // A one-step delta chained directly onto the fresh snapshot.
    m.step(stream[40]);
    store.submitDelta(0, m.exportDelta());
    ASSERT_TRUE(store.flush());

    CheckpointStore fresh(cfg);
    ASSERT_TRUE(fresh.recover()[0]);
    EXPECT_EQ(bytes(fresh.mirror(0)), bytes(stateAt(m)));
    EXPECT_EQ(fresh.stats().delta_fallbacks, 0u);
    removeStoreFiles(path);
}

/** Builds snapshot-at-40 plus delta commits at 60/80/100 and returns
 *  the expected state bytes at each cut. */
struct ChainFixture
{
    CheckpointStoreConfig cfg;
    std::vector<std::string> cut_bytes; // index 0 = snapshot at 40
};

ChainFixture
buildChain(const std::string &path)
{
    std::mt19937_64 rng(7);
    const auto model = sharpModel(rng);
    const auto stream = eventfulStream(123);

    removeStoreFiles(path);
    ChainFixture fx;
    fx.cfg.path = path;
    fx.cfg.num_shards = 1;
    fx.cfg.full_every = 1u << 20; // keep all cuts in the delta log
    CheckpointStore store(fx.cfg);

    core::Monitor m(model, core::MonitorConfig());
    std::size_t pos = 0;
    for (; pos < 40; ++pos)
        m.step(stream[pos]);
    store.submitFull(0, stateAt(m));
    m.resetDeltaBaseline(); // deltas below chain off this snapshot
    EXPECT_TRUE(store.flush());
    fx.cut_bytes.push_back(bytes(stateAt(m)));

    for (std::size_t cut : {std::size_t(60), std::size_t(80),
                            std::size_t(100)}) {
        for (; pos < cut; ++pos)
            m.step(stream[pos]);
        store.submitDelta(0, m.exportDelta());
        EXPECT_TRUE(store.flush());
        fx.cut_bytes.push_back(bytes(stateAt(m)));
    }
    return fx;
}

TEST(CheckpointStoreTest, TruncatedDeltaTailFallsBackToLastGoodCut)
{
    const std::string path = testing::TempDir() + "delta_ckpt_trunc";
    const auto fx = buildChain(path);

    // Tear the final segment: drop one byte off the log's tail, as a
    // crash mid-append would.
    const std::string log = path + ".dlt";
    const auto size = std::filesystem::file_size(log);
    ASSERT_GT(size, 1u);
    std::filesystem::resize_file(log, size - 1);

    CheckpointStore fresh(fx.cfg);
    ASSERT_TRUE(fresh.recover()[0]);
    // Cuts at 40, 60, 80 survive; the torn cut at 100 is dropped.
    EXPECT_EQ(bytes(fresh.mirror(0)), fx.cut_bytes[2]);
    EXPECT_EQ(fresh.stats().delta_fallbacks, 1u);
    EXPECT_GE(fresh.stats().delta_segments_dropped, 1u);
    removeStoreFiles(path);
}

TEST(CheckpointStoreTest, BitFlippedSegmentFallsBackToSnapshot)
{
    const std::string path = testing::TempDir() + "delta_ckpt_flip";
    const auto fx = buildChain(path);

    // Flip one bit inside the first segment's frame; its CRC (or
    // framing) check must reject it and recovery must stop the replay
    // at the snapshot rather than trust anything after the damage.
    const std::string log = path + ".dlt";
    {
        std::fstream f(log, std::ios::binary | std::ios::in |
                                std::ios::out);
        ASSERT_TRUE(f.is_open());
        f.seekg(24);
        char c = 0;
        f.get(c);
        f.seekp(24);
        f.put(char(c ^ 0x10));
    }

    CheckpointStore fresh(fx.cfg);
    ASSERT_TRUE(fresh.recover()[0]);
    EXPECT_EQ(bytes(fresh.mirror(0)), fx.cut_bytes[0]);
    EXPECT_EQ(fresh.stats().delta_fallbacks, 1u);
    EXPECT_GE(fresh.stats().delta_segments_dropped, 1u);
    removeStoreFiles(path);
}

} // namespace
