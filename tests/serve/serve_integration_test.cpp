/**
 * @file
 * End-to-end supervision tests: the runtime is killed mid-stream
 * (worker crash, worker hang, in-process teardown with on-disk
 * checkpoints) and must recover to the exact verdict sequence of an
 * uninterrupted run; a flaky source behind retry/backoff must cause
 * zero verdict divergence; an unrecoverable shard must escalate.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "serve/sample_source.h"
#include "serve/supervisor.h"
#include "serve_test_util.h"

namespace
{

using namespace eddie;
using namespace eddie::serve;
using namespace serve_test;

struct Fixture
{
    std::shared_ptr<const core::TrainedModel> model;
    std::shared_ptr<const std::vector<core::Sts>> stream;
    std::vector<core::StepRecord> baseline_records;
    std::vector<core::AnomalyReport> baseline_reports;

    Fixture()
    {
        std::mt19937_64 rng(23);
        model = std::make_shared<const core::TrainedModel>(
            sharpModel(rng));
        stream = std::make_shared<const std::vector<core::Sts>>(
            eventfulStream(99));
        core::Monitor monitor(*model, core::MonitorConfig{});
        for (const auto &sts : *stream)
            monitor.step(sts);
        baseline_records = monitor.records();
        baseline_reports = monitor.reports();
    }

    ServeConfig config() const
    {
        ServeConfig cfg;
        cfg.checkpoint_interval = 8;
        cfg.watchdog.heartbeat_deadline_ms = 60.0;
        cfg.watchdog.poll_interval_ms = 1.0;
        cfg.watchdog.restart_budget = 3;
        return cfg;
    }
};

const Fixture &
fixture()
{
    static Fixture f;
    return f;
}

TEST(Supervisor, CleanRunMatchesBareMonitor)
{
    const Fixture &f = fixture();
    VectorSource source(f.stream);
    Supervisor sup(f.model, f.config());
    const auto results = sup.run({&source});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].escalated);
    EXPECT_TRUE(sameRecords(results[0].records, f.baseline_records));
    EXPECT_TRUE(sameReports(results[0].reports, f.baseline_reports));
    const auto stats = sup.stats();
    EXPECT_EQ(stats.processed, f.stream->size());
    EXPECT_EQ(stats.delivered, f.stream->size());
    EXPECT_EQ(stats.worker_restarts, 0u);
}

/** A worker crash mid-stream (and mid-rejection-streak) restarts from
 *  the last checkpoint with bit-identical final verdicts. */
TEST(Supervisor, CrashRecoveryIsBitIdentical)
{
    const Fixture &f = fixture();
    VectorSource source(f.stream);
    Supervisor sup(f.model, f.config());
    std::atomic<bool> fired{false};
    sup.setStepHook([&fired](std::size_t step,
                             const std::atomic<bool> &) {
        if (step == 95 && !fired.exchange(true))
            throw std::runtime_error("injected worker crash");
    });
    const auto results = sup.run({&source});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].escalated);
    EXPECT_TRUE(sameRecords(results[0].records, f.baseline_records));
    EXPECT_TRUE(sameReports(results[0].reports, f.baseline_reports));
    const auto stats = sup.stats();
    EXPECT_EQ(stats.worker_crashes, 1u);
    EXPECT_EQ(stats.worker_restarts, 1u);
    EXPECT_EQ(stats.checkpoint_restores, 1u);
    EXPECT_GT(stats.checkpoints_written, 0u);
    // The replayed windows between checkpoint and crash are re-pulled
    // from the re-seeked source, so delivery exceeds the stream size.
    EXPECT_GT(stats.delivered, f.stream->size());
}

/** A hung worker (step hook that blocks until cancelled) trips the
 *  watchdog deadline and recovers identically. */
TEST(Supervisor, HangDetectionRestartsAndRecovers)
{
    const Fixture &f = fixture();
    VectorSource source(f.stream);
    Supervisor sup(f.model, f.config());
    std::atomic<bool> fired{false};
    sup.setStepHook([&fired](std::size_t step,
                             const std::atomic<bool> &cancel) {
        if (step == 40 && !fired.exchange(true)) {
            while (!cancel.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        }
    });
    const auto results = sup.run({&source});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].escalated);
    EXPECT_TRUE(sameRecords(results[0].records, f.baseline_records));
    EXPECT_TRUE(sameReports(results[0].reports, f.baseline_reports));
    const auto stats = sup.stats();
    EXPECT_EQ(stats.worker_hangs, 1u);
    EXPECT_EQ(stats.worker_restarts, 1u);
    EXPECT_GT(stats.restart_latency_ms, 0.0);
}

/** A shard that keeps crashing exhausts the restarts-per-window
 *  budget and escalates to degraded mode instead of looping. */
TEST(Supervisor, RestartBudgetExhaustionEscalates)
{
    const Fixture &f = fixture();
    VectorSource source(f.stream);
    ServeConfig cfg = fixture().config();
    cfg.watchdog.restart_budget = 2;
    Supervisor sup(f.model, cfg);
    sup.setStepHook([](std::size_t step, const std::atomic<bool> &) {
        if (step == 20)
            throw std::runtime_error("deterministic crash");
    });
    const auto results = sup.run({&source});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].escalated);
    // Degraded mode serves the state of the last checkpoint: a prefix
    // of the baseline, never garbage.
    ASSERT_LE(results[0].steps, 20u);
    for (std::size_t i = 0; i < results[0].steps; ++i) {
        EXPECT_EQ(results[0].records[i].region,
                  f.baseline_records[i].region);
        EXPECT_EQ(results[0].records[i].rejected,
                  f.baseline_records[i].rejected);
    }
    const auto stats = sup.stats();
    EXPECT_EQ(stats.worker_crashes, 3u); // initial + 2 restarts
    EXPECT_EQ(stats.worker_restarts, 2u);
    EXPECT_EQ(stats.escalations, 1u);
}

/** In-process "kill": the first runtime escalates with its checkpoint
 *  on disk, a second runtime resumes from that file and must finish
 *  with the uninterrupted run's exact verdict sequence. */
TEST(Supervisor, KillThenResumeFromDiskIsBitIdentical)
{
    const Fixture &f = fixture();
    const std::string path = testing::TempDir() + "serve_kill_resume";
    std::remove(path.c_str());
    std::remove((path + ".dlt").c_str());

    ServeConfig cfg = f.config();
    cfg.checkpoint_path = path;
    cfg.watchdog.restart_budget = 0; // first crash is fatal
    {
        VectorSource source(f.stream);
        Supervisor sup(f.model, cfg);
        sup.setStepHook([](std::size_t step,
                           const std::atomic<bool> &) {
            if (step == 101) // inside the anomaly burst
                throw std::runtime_error("killed mid-stream");
        });
        const auto results = sup.run({&source});
        ASSERT_EQ(results.size(), 1u);
        ASSERT_TRUE(results[0].escalated);
    }

    ServeConfig resume_cfg = f.config();
    resume_cfg.checkpoint_path = path;
    resume_cfg.resume = true;
    VectorSource source(f.stream);
    Supervisor sup(f.model, resume_cfg);
    const auto results = sup.run({&source});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].escalated);
    EXPECT_TRUE(sameRecords(results[0].records, f.baseline_records));
    EXPECT_TRUE(sameReports(results[0].reports, f.baseline_reports));
    EXPECT_EQ(sup.stats().checkpoint_restores, 1u);
    // The resumed run only processed the tail.
    EXPECT_LT(sup.stats().processed, f.stream->size());
    std::remove(path.c_str());
    std::remove((path + ".dlt").c_str());
}

/** Graceful stop mid-stream writes a final checkpoint; resuming from
 *  it completes the stream with identical verdicts. */
TEST(Supervisor, GracefulStopThenResumeIsBitIdentical)
{
    const Fixture &f = fixture();
    const std::string path = testing::TempDir() + "serve_stop_resume";
    std::remove(path.c_str());
    std::remove((path + ".dlt").c_str());

    ServeConfig cfg = f.config();
    cfg.checkpoint_path = path;
    {
        VectorSource source(f.stream);
        Supervisor sup(f.model, cfg);
        sup.setStepHook([&sup](std::size_t step,
                               const std::atomic<bool> &) {
            if (step == 70)
                sup.requestStop();
        });
        const auto results = sup.run({&source});
        ASSERT_EQ(results.size(), 1u);
        ASSERT_TRUE(results[0].stopped);
        ASSERT_LT(results[0].steps, f.stream->size());
        // The stopped prefix is a prefix of the baseline.
        for (std::size_t i = 0; i < results[0].steps; ++i)
            ASSERT_EQ(results[0].records[i].rejected,
                      f.baseline_records[i].rejected);
    }

    ServeConfig resume_cfg = f.config();
    resume_cfg.checkpoint_path = path;
    resume_cfg.resume = true;
    VectorSource source(f.stream);
    Supervisor sup(f.model, resume_cfg);
    const auto results = sup.run({&source});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(sameRecords(results[0].records, f.baseline_records));
    EXPECT_TRUE(sameReports(results[0].reports, f.baseline_reports));
    std::remove(path.c_str());
    std::remove((path + ".dlt").c_str());
}

/** The flaky-source acceptance property: stalls and transient errors
 *  recovered by retry/backoff cause ZERO verdict divergence. */
TEST(Supervisor, FlakySourceBehindRetryDivergesNowhere)
{
    const Fixture &f = fixture();
    VectorSource base(f.stream);
    faults::SourceFaultConfig fault_cfg;
    fault_cfg.enabled = true;
    fault_cfg.stall_prob = 0.25;
    fault_cfg.error_prob = 0.15;
    fault_cfg.max_consecutive = 3;
    FlakySource flaky(base, fault_cfg);
    RetryConfig retry_cfg;
    retry_cfg.max_attempts = 8;
    // No-op sleeper: the whole retry/backoff state machine runs, the
    // test just does not wait out the delays.
    RetryingSource retrying(flaky, retry_cfg, [](double) {});

    Supervisor sup(f.model, f.config());
    const auto results = sup.run({&retrying});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].escalated);
    EXPECT_TRUE(sameRecords(results[0].records, f.baseline_records));
    EXPECT_TRUE(sameReports(results[0].reports, f.baseline_reports));
    const auto stats = sup.stats();
    EXPECT_GT(stats.source_retries, 0u);
    EXPECT_GT(stats.source_stalls + stats.source_errors, 0u);
    EXPECT_EQ(stats.source_give_ups, 0u);
    EXPECT_EQ(stats.worker_restarts, 0u);
}

/** Several shards under one supervisor, one of them crashing, each
 *  with independent fault schedules: per-shard verdicts all match. */
TEST(Supervisor, ShardedRunWithOneCrashStaysIsolated)
{
    const Fixture &f = fixture();
    VectorSource s0(f.stream);
    VectorSource s1(f.stream);
    VectorSource s2(f.stream);
    Supervisor sup(f.model, f.config());
    std::atomic<int> crashes{0};
    sup.setStepHook([&crashes](std::size_t step,
                               const std::atomic<bool> &) {
        // Exactly one crash total; whichever shard draws it first.
        if (step == 50 && crashes.fetch_add(1) == 0)
            throw std::runtime_error("one shard crashes");
    });
    const auto results = sup.run({&s0, &s1, &s2});
    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.escalated);
        EXPECT_TRUE(sameRecords(r.records, f.baseline_records));
        EXPECT_TRUE(sameReports(r.reports, f.baseline_reports));
    }
    EXPECT_EQ(sup.stats().worker_crashes, 1u);
    EXPECT_EQ(sup.stats().worker_restarts, 1u);
}

/** DropOldest backpressure: a tiny queue with a slow worker drops
 *  windows, counts them, and the run still terminates cleanly. */
TEST(Supervisor, DropOldestCountsLossesAndTerminates)
{
    const Fixture &f = fixture();
    VectorSource source(f.stream);
    ServeConfig cfg = f.config();
    cfg.queue.capacity = 2;
    cfg.queue.policy = BackpressurePolicy::DropOldest;
    Supervisor sup(f.model, cfg);
    sup.setStepHook([](std::size_t, const std::atomic<bool> &) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
    const auto results = sup.run({&source});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].escalated);
    const auto stats = sup.stats();
    EXPECT_EQ(stats.processed + stats.dropped_oldest,
              f.stream->size());
    EXPECT_EQ(results[0].steps, stats.processed);
}

/** Hot model reload: rewriting the model file mid-run swaps the
 *  served model without losing a single verdict. */
TEST(Supervisor, HotModelReloadSwapsWithoutVerdictLoss)
{
    const Fixture &f = fixture();
    const std::string path = testing::TempDir() + "serve_hot_model";
    {
        std::ofstream os(path);
        core::saveModel(*f.model, os);
    }

    ServeConfig cfg = f.config();
    cfg.model_path = path;
    cfg.model_poll_ms = 2.0;
    VectorSource source(f.stream);
    Supervisor sup(f.model, cfg);
    // Slow the stream down enough for at least one poll to land
    // mid-run; the hook also rewrites the model file once early on.
    std::atomic<bool> rewritten{false};
    sup.setStepHook([&](std::size_t step, const std::atomic<bool> &) {
        if (step == 30 && !rewritten.exchange(true)) {
            // Same distributions, different alpha: different bytes
            // (new CRC) but near-identical decisions; the assertions
            // below only rely on continuity, not equality. The
            // replacement must be atomic (write + rename) — that is
            // the operator contract, and a plain in-place rewrite can
            // race the CRC poll into seeing (and counting) a torn
            // intermediate file as its own reload.
            {
                std::ofstream os(path + ".new");
                core::saveModel(withAlpha(*f.model, 2e-6), os);
            }
            ASSERT_EQ(std::rename((path + ".new").c_str(),
                                  path.c_str()),
                      0);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(500));
    });
    const auto results = sup.run({&source});
    std::remove(path.c_str());
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].escalated);
    // Every window got exactly one verdict despite the mid-run swap.
    EXPECT_EQ(results[0].steps, f.stream->size());
    EXPECT_EQ(sup.stats().model_reloads, 1u);
    EXPECT_NE(sup.model().get(), f.model.get());
    EXPECT_NEAR(sup.model()->alpha, 2e-6, 1e-9);
}

} // namespace
