/**
 * @file
 * Tests of the fair-share fleet scheduler (serve/scheduler.h):
 * verdict parity with the thread-pair runtime across seeds, the DRR
 * debt bound, crash-loop isolation under shared workers, hang
 * detection via progress sequence numbers, a 1024-session smoke run,
 * and the StsQueue batch-push surface the scheduler feeds through.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/errors.h"
#include "serve/sample_source.h"
#include "serve/supervisor.h"
#include "serve_test_util.h"

using namespace eddie;
using namespace eddie::serve;
using namespace serve_test;

namespace
{

ServeConfig
schedConfig(std::size_t workers)
{
    ServeConfig cfg;
    cfg.watchdog.heartbeat_deadline_ms = 60.0;
    cfg.watchdog.poll_interval_ms = 2.0;
    cfg.checkpoint_interval = 8;
    cfg.full_snapshot_every = 4;
    cfg.scheduler.workers = workers;
    return cfg;
}

/** A short clean two-region stream (for the 1024-session smoke,
 *  where eventfulStream's 160 windows x 1024 sessions would dominate
 *  the suite's runtime). */
std::vector<core::Sts>
shortStream(std::uint64_t seed, std::size_t len)
{
    std::mt19937_64 rng(seed);
    std::vector<core::Sts> stream;
    double t = 0.0;
    for (std::size_t i = 0; i < len; ++i, t += 5e-5)
        stream.push_back(sharpSts(rng, t, i < len / 2 ? 0 : 1));
    return stream;
}

struct SchedFixture
{
    std::shared_ptr<const core::TrainedModel> model;
    std::vector<std::shared_ptr<const std::vector<core::Sts>>> streams;
    std::vector<std::unique_ptr<VectorSource>> sources;
    std::vector<std::vector<core::StepRecord>> serial_records;
    std::vector<std::vector<core::AnomalyReport>> serial_reports;

    SchedFixture(std::size_t sessions, std::uint64_t seed)
    {
        std::mt19937_64 rng(0xF1EE7);
        model = std::make_shared<const core::TrainedModel>(
            sharpModel(rng));
        for (std::size_t s = 0; s < sessions; ++s) {
            streams.push_back(
                std::make_shared<const std::vector<core::Sts>>(
                    eventfulStream(seed + s)));
            sources.push_back(
                std::make_unique<VectorSource>(streams.back()));
            core::Monitor mon(*model, core::MonitorConfig{});
            for (const core::Sts &sts : *streams.back())
                mon.step(sts);
            serial_records.push_back(mon.records());
            serial_reports.push_back(mon.reports());
        }
    }

    TenantSpec spec(const std::string &id) const
    {
        TenantSpec s;
        s.id = id;
        s.model = model;
        return s;
    }
};

} // namespace

TEST(Scheduler, VerdictParityWithThreadPairAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        SchedFixture fx(4, 100 * seed);
        const auto runWith = [&fx](std::size_t workers) {
            TenantRegistry reg;
            reg.addTenant(fx.spec("a"));
            reg.addTenant(fx.spec("b"));
            std::vector<std::unique_ptr<VectorSource>> sources;
            for (std::size_t s = 0; s < 4; ++s) {
                sources.push_back(std::make_unique<VectorSource>(
                    fx.streams[s]));
                const char *id = s < 2 ? "a" : "b";
                EXPECT_TRUE(
                    reg.openSession(id, sources.back().get())
                        .admitted);
            }
            Supervisor sup(schedConfig(workers));
            return sup.runFleet(reg);
        };

        const FleetResult pair = runWith(0);
        const FleetResult sched = runWith(3);

        ASSERT_EQ(pair.sessions.size(), 4u);
        ASSERT_EQ(sched.sessions.size(), 4u);
        for (std::size_t s = 0; s < 4; ++s) {
            EXPECT_FALSE(sched.sessions[s].escalated)
                << "seed " << seed << " session " << s;
            // Both runtimes must match the serial oracle AND each
            // other, bit for bit.
            EXPECT_TRUE(sameRecords(sched.sessions[s].records,
                                    fx.serial_records[s]))
                << "seed " << seed << " session " << s;
            EXPECT_TRUE(sameReports(sched.sessions[s].reports,
                                    fx.serial_reports[s]))
                << "seed " << seed << " session " << s;
            EXPECT_TRUE(sameRecords(sched.sessions[s].records,
                                    pair.sessions[s].records))
                << "seed " << seed << " session " << s;
            EXPECT_TRUE(sameReports(sched.sessions[s].reports,
                                    pair.sessions[s].reports))
                << "seed " << seed << " session " << s;
        }
    }
}

TEST(Scheduler, DeficitDebtNeverExceedsOneBatch)
{
    SchedFixture fx(4, 500);
    TenantRegistry reg;
    // Unequal STS/s quotas make the DRR quanta unequal (4:1), which
    // is where a debt-bound bug would show: the small-quantum tenant
    // is dispatched with a deficit barely above zero, so a dispatch
    // can take it furthest below. Rates are far above the streams'
    // actual throughput, so the feeder quota never throttles.
    TenantSpec heavy = fx.spec("heavy");
    heavy.quota.sts_per_s = 4e6;
    TenantSpec light = fx.spec("light");
    light.quota.sts_per_s = 1e6;
    reg.addTenant(heavy);
    reg.addTenant(light);
    for (std::size_t s = 0; s < 4; ++s) {
        EXPECT_TRUE(reg.openSession(s < 2 ? "heavy" : "light",
                                    fx.sources[s].get())
                        .admitted);
    }

    ServeConfig cfg = schedConfig(2);
    Supervisor sup(cfg);
    const FleetResult fr = sup.runFleet(reg);
    for (const ShardResult &r : fr.sessions)
        EXPECT_FALSE(r.escalated);

    ASSERT_NE(sup.fleetScheduler(), nullptr);
    const SchedulerStats st = sup.fleetScheduler()->schedulerStats();
    EXPECT_EQ(st.sessions, 4u);
    EXPECT_GT(st.dispatches, 0u);
    EXPECT_EQ(st.steps, 4u * 160u);
    // The fairness invariant: a tenant is only served with positive
    // deficit and one dispatch executes at most batch_steps, so the
    // deficit never goes below -batch_steps.
    EXPECT_GE(st.min_deficit_steps,
              -double(cfg.scheduler.batch_steps));
}

TEST(Scheduler, CrashLoopTenantCannotStarveNeighbors)
{
    SchedFixture fx(3, 700);
    TenantRegistry reg;
    TenantSpec bad = fx.spec("bad");
    bad.breaker.fault_threshold = 3;
    reg.addTenant(bad);
    reg.addTenant(fx.spec("good"));
    ASSERT_TRUE(reg.openSession("bad", fx.sources[0].get()).admitted);
    ASSERT_TRUE(reg.openSession("good", fx.sources[1].get()).admitted);
    ASSERT_TRUE(reg.openSession("good", fx.sources[2].get()).admitted);

    // Two workers shared by all three sessions: the crash-looping
    // tenant burns restarts on the same pool its neighbors need, so
    // starvation would be visible as missing neighbor verdicts.
    Supervisor sup(schedConfig(2));
    sup.setFleetStepHook([](std::size_t, const std::string &tenant,
                            std::size_t step,
                            const std::atomic<bool> &) {
        if (tenant == "bad" && step >= 40)
            throw core::Error("scheduler test: injected crash");
    });
    const FleetResult fr = sup.runFleet(reg);

    EXPECT_TRUE(fr.sessions[0].escalated);
    EXPECT_TRUE(fr.tenants[0].breaker_tripped);
    EXPECT_EQ(fr.tenants[0].breaker_cause, FaultClass::WorkerFault);
    // Neighbors ran to completion with exact verdicts despite
    // sharing every worker with the crash loop.
    for (std::size_t s = 1; s < 3; ++s) {
        EXPECT_FALSE(fr.sessions[s].escalated);
        EXPECT_TRUE(sameRecords(fr.sessions[s].records,
                                fx.serial_records[s]));
        EXPECT_TRUE(sameReports(fr.sessions[s].reports,
                                fx.serial_reports[s]));
    }
    EXPECT_FALSE(fr.tenants[1].breaker_tripped);
    EXPECT_GE(sup.stats().breaker_trips, 1u);
}

TEST(Scheduler, HungStepIsCancelledAndSessionRestarted)
{
    SchedFixture fx(2, 900);
    TenantRegistry reg;
    reg.addTenant(fx.spec("a"));
    reg.addTenant(fx.spec("b"));
    ASSERT_TRUE(reg.openSession("a", fx.sources[0].get()).admitted);
    ASSERT_TRUE(reg.openSession("b", fx.sources[1].get()).admitted);

    Supervisor sup(schedConfig(2));
    std::atomic<bool> hung_once{false};
    sup.setFleetStepHook([&](std::size_t, const std::string &tenant,
                             std::size_t step,
                             const std::atomic<bool> &cancel) {
        if (tenant == "a" && step == 50 &&
            !hung_once.exchange(true)) {
            while (!cancel.load())
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
        }
    });
    const FleetResult fr = sup.runFleet(reg);

    const core::ServeStats st = sup.stats();
    EXPECT_GE(st.worker_hangs, 1u);
    EXPECT_GE(st.worker_restarts, 1u);
    // Restart replays from the last cut: verdicts still exact.
    for (std::size_t s = 0; s < 2; ++s) {
        EXPECT_FALSE(fr.sessions[s].escalated);
        EXPECT_TRUE(sameRecords(fr.sessions[s].records,
                                fx.serial_records[s]));
        EXPECT_TRUE(sameReports(fr.sessions[s].reports,
                                fx.serial_reports[s]));
    }
}

TEST(Scheduler, ThousandSessionSmoke)
{
    // 4 tenants x 256 sessions on 4 workers: far past where the
    // thread-pair runtime would need 2048 OS threads. All sessions
    // share one short stream, so one serial pass is the oracle for
    // every verdict.
    constexpr std::size_t kTenants = 4;
    constexpr std::size_t kPerTenant = 256;
    constexpr std::size_t kLen = 24;

    std::mt19937_64 rng(0xF1EE7);
    const auto model =
        std::make_shared<const core::TrainedModel>(sharpModel(rng));
    const auto stream =
        std::make_shared<const std::vector<core::Sts>>(
            shortStream(42, kLen));
    core::Monitor oracle(*model, core::MonitorConfig{});
    for (const core::Sts &sts : *stream)
        oracle.step(sts);

    TenantRegistry reg;
    std::vector<std::unique_ptr<VectorSource>> sources;
    for (std::size_t t = 0; t < kTenants; ++t) {
        // Two-step += : the rvalue operator+(const char*, string&&)
        // path trips GCC 12's -Wrestrict false positive.
        std::string id("t");
        id += std::to_string(t);
        TenantSpec spec;
        spec.id = id;
        spec.model = model;
        spec.quota.max_sessions = kPerTenant;
        reg.addTenant(std::move(spec));
        for (std::size_t k = 0; k < kPerTenant; ++k) {
            sources.push_back(
                std::make_unique<VectorSource>(stream));
            ASSERT_TRUE(reg.openSession(id, sources.back().get())
                            .admitted);
        }
    }

    ServeConfig cfg = schedConfig(4);
    cfg.checkpoint_interval = 0; // mirrors only: no disk in the smoke
    Supervisor sup(cfg);
    const FleetResult fr = sup.runFleet(reg);

    ASSERT_EQ(fr.sessions.size(), kTenants * kPerTenant);
    for (std::size_t s = 0; s < fr.sessions.size(); ++s) {
        ASSERT_FALSE(fr.sessions[s].escalated) << "session " << s;
        EXPECT_EQ(fr.sessions[s].steps, kLen) << "session " << s;
        EXPECT_TRUE(sameRecords(fr.sessions[s].records,
                                oracle.records()))
            << "session " << s;
    }
    const core::ServeStats st = sup.stats();
    EXPECT_EQ(st.worker_hangs, 0u);
    EXPECT_EQ(st.worker_crashes, 0u);
    EXPECT_EQ(st.processed,
              std::uint64_t(kTenants * kPerTenant * kLen));
    ASSERT_NE(sup.fleetScheduler(), nullptr);
    const SchedulerStats ss = sup.fleetScheduler()->schedulerStats();
    EXPECT_EQ(ss.sessions, kTenants * kPerTenant);
    EXPECT_EQ(ss.workers, 4u);
}

TEST(Scheduler, PushBatchRespectsHeadroomAndCountsBackpressure)
{
    StsQueueConfig qcfg;
    qcfg.capacity = 4;
    StsQueue q(qcfg);
    EXPECT_EQ(q.headroom(), 4u);

    std::mt19937_64 rng(7);
    std::vector<core::Sts> in;
    for (int i = 0; i < 6; ++i)
        in.push_back(sharpSts(rng, i * 1e-4, 0));

    // Non-blocking push against capacity 4: admits 4, defers 2, and
    // the deferral is counted as Block backpressure.
    EXPECT_EQ(q.pushBatch(in, /*may_block=*/false), 4u);
    EXPECT_EQ(in.size(), 2u);
    EXPECT_EQ(q.headroom(), 0u);
    EXPECT_GE(q.stats().blocked_pushes, 1u);

    std::vector<core::Sts> out;
    EXPECT_EQ(q.popBatch(out, 4, 0.0), 4u);
    EXPECT_EQ(q.headroom(), 4u);

    // The deferred tail flushes once there is room again.
    EXPECT_EQ(q.pushBatch(in, /*may_block=*/false), 2u);
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(q.stats().pushed, 6u);

    q.close();
    EXPECT_EQ(q.headroom(), 0u);
    std::vector<core::Sts> rest;
    EXPECT_EQ(q.popBatch(rest, 8, 0.0), 2u);
    EXPECT_TRUE(q.drained());
}
