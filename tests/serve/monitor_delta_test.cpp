/**
 * @file
 * Property tests of the incremental monitor snapshots
 * (core::MonitorStateDelta): a chain of deltas applied onto the state
 * of the previous cut must reproduce exportState() exactly at EVERY
 * cut point — including cuts that land mid-ring-wrap, inside a
 * rejection streak whose report retro-marks records from before the
 * cut, and inside a quarantine outage that clears the history.
 * Also covers the chain-link and structural-corruption rejections
 * applyDelta() promises, and Monitor::reset() equivalence (the
 * property Pipeline::monitorBatch leans on to reuse shard monitors).
 */

#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/errors.h"
#include "core/monitor.h"
#include "serve_test_util.h"

namespace
{

using namespace eddie;
using namespace eddie::core;
using serve_test::eventfulStream;
using serve_test::sameRecords;
using serve_test::sameReports;
using serve_test::sharpModel;

void
expectStateEqual(const MonitorState &a, const MonitorState &b,
                 const std::string &where)
{
    EXPECT_EQ(a.current, b.current) << where;
    EXPECT_EQ(a.steps_since_change, b.steps_since_change) << where;
    EXPECT_EQ(a.anomaly_count, b.anomaly_count) << where;
    EXPECT_EQ(a.step_index, b.step_index) << where;
    EXPECT_EQ(a.test_calls, b.test_calls) << where;
    EXPECT_EQ(a.outage_len, b.outage_len) << where;
    EXPECT_EQ(a.resync_pending, b.resync_pending) << where;
    EXPECT_EQ(a.history, b.history) << where;
    EXPECT_EQ(a.gate_energies, b.gate_energies) << where;
    EXPECT_EQ(a.degraded.quarantined, b.degraded.quarantined) << where;
    EXPECT_EQ(a.degraded.outages, b.degraded.outages) << where;
    EXPECT_EQ(a.degraded.resyncs, b.degraded.resyncs) << where;
    EXPECT_EQ(a.degraded.longest_outage, b.degraded.longest_outage)
        << where;
    EXPECT_EQ(a.degraded.by_kind, b.degraded.by_kind) << where;
    EXPECT_TRUE(sameRecords(a.records, b.records)) << where;
    EXPECT_TRUE(sameReports(a.reports, b.reports)) << where;
}

/** Cut interval; 1 exercises every possible cut point, the primes
 *  make cuts land mid-ring-wrap and inside the anomaly burst and the
 *  dropout outage of eventfulStream. */
class DeltaChainTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(DeltaChainTest, ChainReproducesExportStateAtEveryCut)
{
    const std::size_t interval = GetParam();
    std::mt19937_64 rng(7);
    const auto model = sharpModel(rng);
    const auto stream = eventfulStream(99);

    Monitor live(model, MonitorConfig());
    MonitorState shadow = live.exportState();
    std::size_t since = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        live.step(stream[i]);
        if (++since < interval)
            continue;
        since = 0;
        applyDelta(shadow, live.exportDelta());
        expectStateEqual(shadow, live.exportState(),
                         "cut after step " + std::to_string(i));
        ASSERT_FALSE(::testing::Test::HasFailure())
            << "first divergence at step " << i;
    }
    // Final, possibly partial, interval.
    applyDelta(shadow, live.exportDelta());
    expectStateEqual(shadow, live.exportState(), "final cut");
}

INSTANTIATE_TEST_SUITE_P(Cuts, DeltaChainTest,
                         ::testing::Values(1, 3, 7, 16, 50, 160));

TEST(MonitorDeltaTest, RestoreFromChainedStateContinuesBitIdentically)
{
    std::mt19937_64 rng(7);
    const auto model = sharpModel(rng);
    const auto stream = eventfulStream(4242);

    Monitor ref(model, MonitorConfig());
    for (const auto &sts : stream)
        ref.step(sts);

    // Chain deltas every 13 steps up to step 97 (inside the anomaly
    // burst), then resume a fresh monitor from the chained state.
    const std::size_t cut = 97;
    Monitor live(model, MonitorConfig());
    MonitorState shadow = live.exportState();
    for (std::size_t i = 0; i < cut; ++i) {
        live.step(stream[i]);
        if ((i + 1) % 13 == 0)
            applyDelta(shadow, live.exportDelta());
    }
    applyDelta(shadow, live.exportDelta());

    Monitor resumed(model, MonitorConfig());
    resumed.restoreState(shadow);
    for (std::size_t i = cut; i < stream.size(); ++i)
        resumed.step(stream[i]);

    EXPECT_TRUE(sameRecords(resumed.records(), ref.records()));
    EXPECT_TRUE(sameReports(resumed.reports(), ref.reports()));
}

TEST(MonitorDeltaTest, ChainGapIsRejectedBeforeMutation)
{
    std::mt19937_64 rng(7);
    const auto model = sharpModel(rng);
    const auto stream = eventfulStream(11);

    Monitor m(model, MonitorConfig());
    const MonitorState base = m.exportState();
    for (std::size_t i = 0; i < 10; ++i)
        m.step(stream[i]);
    const auto d1 = m.exportDelta();
    for (std::size_t i = 10; i < 20; ++i)
        m.step(stream[i]);
    const auto d2 = m.exportDelta();

    // Skipping d1 must be detected before anything is written, so the
    // same state still accepts the correct chain afterwards.
    MonitorState s = base;
    EXPECT_THROW(applyDelta(s, d2), FormatError);
    applyDelta(s, d1);
    applyDelta(s, d2);
    expectStateEqual(s, m.exportState(), "after full chain");
}

TEST(MonitorDeltaTest, StructurallyCorruptDeltasAreRejected)
{
    std::mt19937_64 rng(7);
    const auto model = sharpModel(rng);
    const auto stream = eventfulStream(12);

    Monitor m(model, MonitorConfig());
    const MonitorState base = m.exportState();
    for (std::size_t i = 0; i < 10; ++i)
        m.step(stream[i]);
    const auto good = m.exportDelta();

    {
        auto bad = good; // rewrite index beyond the record log
        bad.records_from = 100;
        MonitorState s = base;
        EXPECT_THROW(applyDelta(s, bad), FormatError);
    }
    {
        auto bad = good; // more tail rows than resident rows
        bad.history_tail.insert(bad.history_tail.end(), 3,
                                bad.history_tail.empty()
                                    ? std::vector<double>{0.0}
                                    : bad.history_tail.front());
        MonitorState s = base;
        EXPECT_THROW(applyDelta(s, bad), FormatError);
    }
    {
        auto bad = good; // record log no longer matches step index
        ASSERT_FALSE(bad.records.empty());
        bad.records.pop_back();
        MonitorState s = base;
        EXPECT_THROW(applyDelta(s, bad), FormatError);
    }
}

TEST(MonitorDeltaTest, ResetMatchesFreshlyConstructedMonitor)
{
    std::mt19937_64 rng(7);
    const auto model = sharpModel(rng);
    const auto first = eventfulStream(21);
    const auto second = eventfulStream(22);

    Monitor reused(model, MonitorConfig());
    for (const auto &sts : first)
        reused.step(sts);
    reused.reset();

    Monitor fresh(model, MonitorConfig());
    for (const auto &sts : second) {
        reused.step(sts);
        fresh.step(sts);
    }
    EXPECT_TRUE(sameRecords(reused.records(), fresh.records()));
    EXPECT_TRUE(sameReports(reused.reports(), fresh.reports()));
    expectStateEqual(reused.exportState(), fresh.exportState(),
                     "reset vs fresh");
}

} // namespace
