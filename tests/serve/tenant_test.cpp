/**
 * @file
 * Unit tests of the multi-tenant session layer (serve/tenant.h):
 * restart-budget window edges, token-bucket rate quotas, the
 * per-tenant circuit breaker, admission accounting, and the
 * deterministic chaos fate stream. Everything here is pure state over
 * injected timestamps — no threads, no clocks.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "serve/chaos.h"
#include "serve/sample_source.h"
#include "serve/tenant.h"

using namespace eddie;
using namespace eddie::serve;

namespace
{

/** Empty seekable stream — admission tests never pull from it. */
std::unique_ptr<VectorSource>
dummySource()
{
    return std::make_unique<VectorSource>(
        std::make_shared<const std::vector<core::Sts>>());
}

} // namespace

// ---- RestartBudget window boundaries ------------------------------

TEST(RestartBudgetEdge, RestartExactlyAtWindowExpiryStillCounts)
{
    // Pruning drops entries strictly OLDER than the window, so a
    // restart landing exactly window_ms after the first one still
    // sees it in the window — and escalates. Off-by-one here would
    // grant a fourth restart per window.
    RestartBudget budget(2, 1000.0);
    EXPECT_TRUE(budget.allow(0.0));
    EXPECT_TRUE(budget.allow(500.0));
    EXPECT_EQ(budget.used(1000.0), 2u);
    EXPECT_FALSE(budget.allow(1000.0));
    EXPECT_TRUE(budget.escalated());
}

TEST(RestartBudgetEdge, RestartJustPastWindowExpiryIsAllowed)
{
    RestartBudget budget(2, 1000.0);
    EXPECT_TRUE(budget.allow(0.0));
    EXPECT_TRUE(budget.allow(500.0));
    // The t=0 restart ages out a tick past the boundary.
    EXPECT_EQ(budget.used(1000.5), 1u);
    EXPECT_TRUE(budget.allow(1000.5));
    EXPECT_FALSE(budget.escalated());
}

TEST(RestartBudgetEdge, EscalationDoesNotFlapAcrossWindows)
{
    // Escalation is latched: a tenant that exhausted its budget must
    // not pop back to healthy when the window slides past its
    // restarts — flapping would turn a crash loop into an infinite
    // restart-escalate-restart cycle at window cadence.
    RestartBudget budget(1, 100.0);
    EXPECT_TRUE(budget.allow(0.0));
    EXPECT_FALSE(budget.allow(10.0));
    EXPECT_TRUE(budget.escalated());
    // Two full windows later: still escalated, still refusing.
    EXPECT_FALSE(budget.allow(250.0));
    EXPECT_TRUE(budget.escalated());
    // used() keeps pruning independently of the latch.
    EXPECT_EQ(budget.used(250.0), 0u);
}

// ---- TokenBucket --------------------------------------------------

TEST(TokenBucket, ZeroRateIsUnlimited)
{
    TokenBucket bucket(0.0, 1.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(bucket.tryTake(0.0));
    EXPECT_EQ(bucket.deficitMs(0.0), 0.0);
}

TEST(TokenBucket, BurstThenDeficitThenRefill)
{
    TokenBucket bucket(1000.0, 2.0); // 1 token per ms, burst 2
    EXPECT_TRUE(bucket.tryTake(0.0));
    EXPECT_TRUE(bucket.tryTake(0.0));
    EXPECT_FALSE(bucket.tryTake(0.0));
    EXPECT_NEAR(bucket.deficitMs(0.0), 1.0, 1e-9);
    // One refill interval later the take succeeds again.
    EXPECT_TRUE(bucket.tryTake(1.0));
    EXPECT_FALSE(bucket.tryTake(1.0));
}

// ---- CircuitBreaker -----------------------------------------------

TEST(CircuitBreaker, WorkerFaultsTripOnlyInsideTheWindow)
{
    BreakerConfig cfg;
    cfg.fault_threshold = 2;
    cfg.window_ms = 100.0;
    {
        CircuitBreaker spread(cfg);
        EXPECT_FALSE(spread.record(FaultClass::WorkerFault, 0.0));
        // Strictly past the window: the first fault aged out.
        EXPECT_FALSE(spread.record(FaultClass::WorkerFault, 100.5));
        EXPECT_FALSE(spread.tripped());
    }
    {
        CircuitBreaker edge(cfg);
        EXPECT_FALSE(edge.record(FaultClass::WorkerFault, 0.0));
        // Exactly at the window boundary: still counts, trips.
        EXPECT_TRUE(edge.record(FaultClass::WorkerFault, 100.0));
        EXPECT_TRUE(edge.tripped());
        EXPECT_EQ(edge.cause(), FaultClass::WorkerFault);
    }
}

TEST(CircuitBreaker, ZeroThresholdDisablesThatClass)
{
    BreakerConfig cfg;
    cfg.fault_threshold = 0;
    cfg.decode_failure_threshold = 0;
    CircuitBreaker breaker(cfg);
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(breaker.record(FaultClass::WorkerFault, 0.0));
        EXPECT_FALSE(breaker.record(FaultClass::CheckpointDecode, 0.0));
    }
    EXPECT_FALSE(breaker.tripped());
    // Lifetime counts accumulate regardless of the trip policy.
    EXPECT_EQ(breaker.count(FaultClass::WorkerFault), 10u);
    EXPECT_EQ(breaker.count(FaultClass::CheckpointDecode), 10u);
}

TEST(CircuitBreaker, StormTripsOnceAndLatchesCause)
{
    CircuitBreaker breaker(BreakerConfig{});
    EXPECT_TRUE(breaker.record(FaultClass::QuarantineStorm, 5.0));
    EXPECT_TRUE(breaker.tripped());
    EXPECT_EQ(breaker.cause(), FaultClass::QuarantineStorm);
    // Later faults of other classes keep counting but cannot
    // reassign the cause.
    EXPECT_TRUE(breaker.record(FaultClass::WorkerFault, 6.0));
    EXPECT_EQ(breaker.cause(), FaultClass::QuarantineStorm);
}

TEST(CircuitBreaker, DecodeFailuresTripAtLifetimeThreshold)
{
    BreakerConfig cfg;
    cfg.decode_failure_threshold = 2;
    CircuitBreaker breaker(cfg);
    EXPECT_FALSE(breaker.record(FaultClass::CheckpointDecode, 0.0));
    EXPECT_TRUE(breaker.record(FaultClass::CheckpointDecode, 1e6));
    EXPECT_EQ(breaker.cause(), FaultClass::CheckpointDecode);
}

// ---- TenantRegistry admission -------------------------------------

TEST(TenantRegistry, RejectsDuplicateAndEmptyIds)
{
    TenantRegistry reg;
    TenantSpec spec;
    spec.id = "a";
    reg.addTenant(spec);
    EXPECT_THROW(reg.addTenant(spec), std::invalid_argument);
    spec.id = "";
    EXPECT_THROW(reg.addTenant(spec), std::invalid_argument);
}

TEST(TenantRegistry, CountsEveryRefusalByReason)
{
    AdmissionConfig adm;
    adm.max_sessions = 3;
    TenantRegistry reg(adm);
    TenantSpec a;
    a.id = "a";
    a.quota.max_sessions = 1;
    reg.addTenant(a);
    TenantSpec b;
    b.id = "b";
    reg.addTenant(b);

    auto s1 = dummySource(), s2 = dummySource(), s3 = dummySource(),
         s4 = dummySource(), s5 = dummySource();

    EXPECT_FALSE(reg.openSession("nope", s1.get()).admitted);

    const auto r1 = reg.openSession("a", s1.get());
    EXPECT_TRUE(r1.admitted);
    const auto r2 = reg.openSession("a", s2.get());
    EXPECT_FALSE(r2.admitted);
    EXPECT_EQ(r2.reason, ShedReason::TenantSessionLimit);

    EXPECT_TRUE(reg.openSession("b", s2.get()).admitted);
    EXPECT_TRUE(reg.openSession("b", s3.get()).admitted);
    const auto r3 = reg.openSession("b", s4.get());
    EXPECT_FALSE(r3.admitted);
    EXPECT_EQ(r3.reason, ShedReason::FleetSessionLimit);

    // A tripped breaker refuses before any capacity check.
    reg.find("b")->breaker().record(FaultClass::QuarantineStorm, 0.0);
    const auto r4 = reg.openSession("b", s5.get());
    EXPECT_FALSE(r4.admitted);
    EXPECT_EQ(r4.reason, ShedReason::BreakerOpen);

    const AdmissionStats st = reg.admissionStats();
    EXPECT_EQ(st.sessions_admitted, 3u);
    EXPECT_EQ(st.rejected_unknown_tenant, 1u);
    EXPECT_EQ(st.rejected_tenant_limit, 1u);
    EXPECT_EQ(st.rejected_fleet_limit, 1u);
    EXPECT_EQ(st.rejected_breaker_open, 1u);
}

TEST(TenantRegistry, SessionOrdinalsArePerTenant)
{
    TenantRegistry reg;
    TenantSpec a;
    a.id = "a";
    reg.addTenant(a);
    TenantSpec b;
    b.id = "b";
    reg.addTenant(b);
    auto s1 = dummySource(), s2 = dummySource(), s3 = dummySource();
    reg.openSession("a", s1.get());
    reg.openSession("b", s2.get());
    reg.openSession("a", s3.get());
    ASSERT_EQ(reg.sessions().size(), 3u);
    EXPECT_EQ(reg.sessions()[0].ordinal, 0u);
    EXPECT_EQ(reg.sessions()[1].ordinal, 0u);
    EXPECT_EQ(reg.sessions()[2].ordinal, 1u);
    EXPECT_EQ(reg.find("a")->openSessions(), 2u);
}

TEST(Tenant, RateQuotaShedsOrThrottlesAndCounts)
{
    TenantSpec spec;
    spec.id = "a";
    spec.quota.sts_per_s = 1000.0;
    spec.quota.burst = 1.0;
    spec.quota.rate_policy = RatePolicy::Shed;
    TenantRegistry reg;
    Tenant &tenant = reg.addTenant(spec);
    double wait = 0.0;
    EXPECT_EQ(tenant.admitWindow(0.0, wait), RateDecision::Admit);
    EXPECT_EQ(tenant.admitWindow(0.0, wait), RateDecision::Shed);
    EXPECT_EQ(tenant.windowsShed(), 1u);
    // One refill interval later the bucket admits again.
    EXPECT_EQ(tenant.admitWindow(1.0, wait), RateDecision::Admit);

    TenantSpec tspec = spec;
    tspec.id = "b";
    tspec.quota.rate_policy = RatePolicy::Throttle;
    Tenant &throttled = reg.addTenant(tspec);
    EXPECT_EQ(throttled.admitWindow(0.0, wait), RateDecision::Admit);
    EXPECT_EQ(throttled.admitWindow(0.0, wait),
              RateDecision::Throttle);
    EXPECT_NEAR(wait, 1.0, 1e-9);
    EXPECT_EQ(throttled.windowsThrottled(), 1u);
}

// ---- Chaos fate stream --------------------------------------------

TEST(ChaosFateStream, DeterministicAndCapped)
{
    ChaosConfig cfg;
    cfg.seed = 7;
    cfg.kill_prob = 0.3;
    cfg.hang_prob = 0.3;
    // Same (session, step, attempt) → same fate, every time.
    for (std::size_t s = 0; s < 4; ++s)
        for (std::size_t step = 0; step < 64; ++step)
            for (std::uint64_t a = 0; a < 3; ++a)
                EXPECT_EQ(stepFate(cfg, s, step, a),
                          stepFate(cfg, s, step, a));
    // The attempt cap forces delivery: no step can fault forever.
    for (std::size_t step = 0; step < 64; ++step)
        EXPECT_EQ(stepFate(cfg, 0, step, cfg.max_consecutive),
                  StepFate::None);
    // Different seeds draw different schedules (on aggregate).
    ChaosConfig other = cfg;
    other.seed = 8;
    int diff = 0;
    for (std::size_t step = 0; step < 256; ++step)
        diff += stepFate(cfg, 0, step, 0) != stepFate(other, 0, step, 0);
    EXPECT_GT(diff, 0);
}

TEST(ChaosFateStream, DisabledClassesNeverFire)
{
    ChaosConfig cfg;
    cfg.seed = 9;
    cfg.kill_prob = 1.0;
    cfg.hang_prob = 1.0;
    cfg.fates.worker_kill = false;
    cfg.fates.worker_hang = false;
    for (std::size_t step = 0; step < 128; ++step)
        EXPECT_EQ(stepFate(cfg, 0, step, 0), StepFate::None);
}
