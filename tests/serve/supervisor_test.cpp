/**
 * @file
 * Unit tests of the supervision building blocks: the bounded queue's
 * two backpressure policies, and the sliding-window restart budget
 * that decides between restart and escalation.
 */

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "serve/sts_queue.h"
#include "serve/supervisor.h"

namespace
{

using namespace eddie;
using namespace eddie::serve;

core::Sts
numbered(std::size_t i)
{
    core::Sts sts;
    sts.t_start = double(i);
    return sts;
}

TEST(StsQueue, DropOldestEvictsAndCounts)
{
    StsQueueConfig cfg;
    cfg.capacity = 2;
    cfg.policy = BackpressurePolicy::DropOldest;
    StsQueue q(cfg);
    for (std::size_t i = 0; i < 4; ++i)
        ASSERT_TRUE(q.push(numbered(i)));
    // 0 and 1 were evicted to admit 2 and 3.
    EXPECT_DOUBLE_EQ(q.popFor(0.0)->t_start, 2.0);
    EXPECT_DOUBLE_EQ(q.popFor(0.0)->t_start, 3.0);
    EXPECT_FALSE(q.popFor(0.0).has_value());
    const QueueStats stats = q.stats();
    EXPECT_EQ(stats.dropped_oldest, 2u);
    EXPECT_EQ(stats.blocked_pushes, 0u);
    EXPECT_EQ(stats.pushed, 4u);
    EXPECT_EQ(stats.popped, 2u);
    EXPECT_EQ(stats.max_depth, 2u);
}

TEST(StsQueue, BlockPolicyLosesNothingAndCountsTheWait)
{
    StsQueueConfig cfg;
    cfg.capacity = 2;
    cfg.policy = BackpressurePolicy::Block;
    StsQueue q(cfg);
    constexpr std::size_t kTotal = 32;

    std::thread producer([&q] {
        for (std::size_t i = 0; i < kTotal; ++i)
            ASSERT_TRUE(q.push(numbered(i)));
        q.close();
    });
    // Don't pop until the producer has actually hit backpressure:
    // with nobody draining a capacity-2 queue it must block, and
    // waiting for that makes the blocked_pushes assertion immune to
    // scheduling (a fast consumer could otherwise keep the ring from
    // ever filling).
    while (q.stats().blocked_pushes == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::size_t expected = 0;
    while (true) {
        const auto sts = q.popFor(50.0);
        if (!sts) {
            if (q.drained())
                break;
            continue;
        }
        // Blocking backpressure preserves order and loses nothing.
        EXPECT_DOUBLE_EQ(sts->t_start, double(expected));
        ++expected;
    }
    producer.join();
    EXPECT_EQ(expected, kTotal);
    const QueueStats stats = q.stats();
    EXPECT_EQ(stats.dropped_oldest, 0u);
    EXPECT_GT(stats.blocked_pushes, 0u);
    EXPECT_LE(stats.max_depth, 2u);
}

TEST(StsQueue, CloseUnblocksAndFailsFurtherPushes)
{
    StsQueueConfig cfg;
    cfg.capacity = 1;
    StsQueue q(cfg);
    ASSERT_TRUE(q.push(numbered(0)));
    std::thread blocked([&q] {
        // Blocks on the full queue until close() wakes it.
        EXPECT_FALSE(q.push(numbered(1)));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    blocked.join();
    EXPECT_FALSE(q.push(numbered(2)));
    // Closed queues still drain what they hold.
    EXPECT_TRUE(q.popFor(0.0).has_value());
    EXPECT_TRUE(q.drained());
}

TEST(StsQueue, PopBatchDrainsUpToMaxInOrder)
{
    StsQueueConfig cfg;
    cfg.capacity = 8;
    StsQueue q(cfg);
    for (std::size_t i = 0; i < 5; ++i)
        ASSERT_TRUE(q.push(numbered(i)));

    std::vector<core::Sts> batch;
    // Capped drain: takes exactly max_items, in FIFO order.
    EXPECT_EQ(q.popBatch(batch, 3, 0.0), 3u);
    ASSERT_EQ(batch.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(batch[i].t_start, double(i));
    // Remainder drains in one more call even though max_items is
    // larger than what's left.
    EXPECT_EQ(q.popBatch(batch, 16, 0.0), 2u);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_DOUBLE_EQ(batch[0].t_start, 3.0);
    EXPECT_DOUBLE_EQ(batch[1].t_start, 4.0);
    // Empty + timeout 0: returns immediately with nothing.
    EXPECT_EQ(q.popBatch(batch, 16, 0.0), 0u);
    EXPECT_TRUE(batch.empty());
    EXPECT_EQ(q.stats().popped, 5u);
}

TEST(StsQueue, PopBatchWakesBlockedProducerAndSeesClose)
{
    StsQueueConfig cfg;
    cfg.capacity = 2;
    cfg.policy = BackpressurePolicy::Block;
    StsQueue q(cfg);
    constexpr std::size_t kTotal = 64;
    std::thread producer([&q] {
        for (std::size_t i = 0; i < kTotal; ++i)
            ASSERT_TRUE(q.push(numbered(i)));
        q.close();
    });

    std::vector<core::Sts> batch;
    std::size_t expected = 0;
    while (true) {
        if (q.popBatch(batch, 4, 50.0) == 0) {
            if (q.drained())
                break;
            continue;
        }
        for (const auto &sts : batch) {
            EXPECT_DOUBLE_EQ(sts.t_start, double(expected));
            ++expected;
        }
    }
    producer.join();
    // The single not_full_ wakeup per batch must keep the producer
    // moving: nothing lost, nothing reordered.
    EXPECT_EQ(expected, kTotal);
    EXPECT_EQ(q.stats().dropped_oldest, 0u);
}

TEST(RestartBudget, AllowsUpToBudgetWithinTheWindow)
{
    RestartBudget budget(3, 1000.0);
    EXPECT_TRUE(budget.allow(0.0));
    EXPECT_TRUE(budget.allow(10.0));
    EXPECT_TRUE(budget.allow(20.0));
    EXPECT_EQ(budget.used(20.0), 3u);
    // Fourth failure inside the window: escalate, permanently.
    EXPECT_FALSE(budget.allow(30.0));
    EXPECT_TRUE(budget.escalated());
    EXPECT_FALSE(budget.allow(99999.0));
}

TEST(RestartBudget, WindowExpiryRefundsRestarts)
{
    RestartBudget budget(2, 100.0);
    EXPECT_TRUE(budget.allow(0.0));
    EXPECT_TRUE(budget.allow(10.0));
    EXPECT_EQ(budget.used(50.0), 2u);
    // Both restarts have aged out of the trailing window.
    EXPECT_EQ(budget.used(200.0), 0u);
    EXPECT_TRUE(budget.allow(200.0));
    EXPECT_FALSE(budget.escalated());
}

TEST(RestartBudget, ZeroBudgetEscalatesImmediately)
{
    RestartBudget budget(0, 1000.0);
    EXPECT_FALSE(budget.allow(0.0));
    EXPECT_TRUE(budget.escalated());
}

TEST(ShardCheckpointPath, SuffixesOnlyWhenSharded)
{
    EXPECT_EQ(shardCheckpointPath("", 0, 1), "");
    EXPECT_EQ(shardCheckpointPath("/tmp/ck", 0, 1), "/tmp/ck");
    EXPECT_EQ(shardCheckpointPath("/tmp/ck", 0, 3), "/tmp/ck.0");
    EXPECT_EQ(shardCheckpointPath("/tmp/ck", 2, 3), "/tmp/ck.2");
}

} // namespace
