/**
 * @file
 * Checkpoint round-trip and recovery-equivalence tests: randomized
 * MonitorState snapshots must survive serialize→load byte-for-byte,
 * corruption must fail typed, and a monitor resumed from a checkpoint
 * cut anywhere in the stream — including inside a rejection streak or
 * a quarantine outage — must finish with bit-identical verdicts.
 */

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "core/errors.h"
#include "serve/checkpoint.h"
#include "serve_test_util.h"

namespace
{

using namespace eddie;
using namespace eddie::serve;
using namespace serve_test;

/** Randomized but structurally valid monitor snapshot. */
CheckpointData
randomCheckpoint(std::mt19937_64 &rng)
{
    std::uniform_int_distribution<std::size_t> small(0, 40);
    std::uniform_real_distribution<double> real(-1e6, 1e6);
    CheckpointData ckpt;
    core::MonitorState &m = ckpt.monitor;
    ckpt.source_pos = small(rng);
    m.current = small(rng);
    m.steps_since_change = small(rng);
    m.anomaly_count = small(rng);
    m.step_index = small(rng);
    m.test_calls = small(rng);
    m.outage_len = small(rng);
    m.resync_pending = (rng() & 1) != 0;
    m.degraded.quarantined = small(rng);
    m.degraded.outages = small(rng);
    m.degraded.resyncs = small(rng);
    m.degraded.longest_outage = small(rng);
    for (auto &kind : m.degraded.by_kind)
        kind = small(rng);
    m.gate_energies.resize(small(rng));
    for (double &e : m.gate_energies)
        e = real(rng);
    const std::size_t rows = small(rng);
    const std::size_t width = 1 + small(rng) % 8;
    m.history.assign(rows, std::vector<double>(width));
    for (auto &row : m.history)
        for (double &v : row)
            v = real(rng);
    m.reports.resize(small(rng) % 8);
    for (auto &r : m.reports) {
        r.step = small(rng);
        r.time = real(rng);
        r.region = small(rng);
    }
    m.records.resize(small(rng));
    for (auto &r : m.records) {
        r.region = small(rng);
        r.tested = (rng() & 1) != 0;
        r.rejected = (rng() & 1) != 0;
        r.reported = (rng() & 1) != 0;
        r.transitioned = (rng() & 1) != 0;
        r.degraded = (rng() & 1) != 0;
    }
    return ckpt;
}

std::string
bytes(const CheckpointData &ckpt)
{
    std::ostringstream os;
    saveCheckpoint(ckpt, os);
    return os.str();
}

TEST(CheckpointRoundTrip, RandomizedStatesSurviveByteForByte)
{
    std::mt19937_64 rng(7);
    for (int iter = 0; iter < 50; ++iter) {
        const CheckpointData original = randomCheckpoint(rng);
        const std::string serialized = bytes(original);
        std::istringstream is(serialized);
        const CheckpointData loaded = loadCheckpoint(is);

        EXPECT_EQ(loaded.source_pos, original.source_pos);
        EXPECT_EQ(loaded.monitor.current, original.monitor.current);
        EXPECT_EQ(loaded.monitor.step_index,
                  original.monitor.step_index);
        EXPECT_EQ(loaded.monitor.gate_energies,
                  original.monitor.gate_energies);
        EXPECT_EQ(loaded.monitor.history, original.monitor.history);
        EXPECT_TRUE(
            sameReports(loaded.monitor.reports, original.monitor.reports));
        EXPECT_TRUE(
            sameRecords(loaded.monitor.records, original.monitor.records));
        // Strongest form: re-serializing the loaded state reproduces
        // the exact bytes (no field is dropped or renormalized).
        EXPECT_EQ(bytes(loaded), serialized);
    }
}

TEST(CheckpointRoundTrip, CorruptionFailsTyped)
{
    std::mt19937_64 rng(11);
    const std::string good = bytes(randomCheckpoint(rng));

    // A flipped bit anywhere must be detected (magic, version,
    // length, payload, or CRC), never silently restored.
    for (std::size_t pos = 0; pos < good.size();
         pos += 1 + good.size() / 23) {
        std::string bad = good;
        bad[pos] = char(bad[pos] ^ 0x20);
        std::istringstream is(bad);
        EXPECT_THROW(loadCheckpoint(is), core::Error)
            << "flip at byte " << pos << " went undetected";
    }

    // Truncation is an I/O-shaped failure.
    std::istringstream trunc(good.substr(0, good.size() / 2));
    EXPECT_THROW(loadCheckpoint(trunc), core::IoError);

    std::istringstream empty{std::string()};
    EXPECT_THROW(loadCheckpoint(empty), core::IoError);
}

TEST(CheckpointRoundTrip, AtomicFileWriteLeavesNoTmpBehind)
{
    std::mt19937_64 rng(13);
    const CheckpointData ckpt = randomCheckpoint(rng);
    const std::string path = testing::TempDir() + "ckpt_atomic_test";
    saveCheckpointFile(ckpt, path);
    // The tmp staging file must be gone after the rename.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    const CheckpointData loaded = loadCheckpointFile(path);
    EXPECT_EQ(bytes(loaded), bytes(ckpt));
    std::remove(path.c_str());

    EXPECT_THROW(loadCheckpointFile(path + ".does-not-exist"),
                 core::IoError);
}

/** The tentpole property: resume-from-checkpoint == uninterrupted,
 *  for cuts everywhere including mid-streak and mid-outage. */
TEST(CheckpointRecovery, ResumeIsBitIdenticalAtEveryCutPoint)
{
    std::mt19937_64 rng(17);
    const core::TrainedModel model = sharpModel(rng);
    const auto stream = eventfulStream(99);
    core::MonitorConfig mcfg;

    core::Monitor baseline(model, mcfg);
    for (const auto &sts : stream)
        baseline.step(sts);
    ASSERT_FALSE(baseline.reports().empty());
    ASSERT_GT(baseline.degradedStats().quarantined, 0u);

    // Cuts: warmup, pre-burst, inside the rejection streak, right at
    // a report, inside the dropout outage, and at both edges.
    for (const std::size_t cut :
         {std::size_t(0), std::size_t(1), std::size_t(40),
          std::size_t(92), std::size_t(95), std::size_t(105),
          std::size_t(122), std::size_t(159), stream.size()}) {
        core::Monitor first(model, mcfg);
        for (std::size_t i = 0; i < cut; ++i)
            first.step(stream[i]);

        // Round-trip the snapshot through the serialized form so the
        // test covers the bytes, not just exportState/restoreState.
        CheckpointData ckpt;
        ckpt.monitor = first.exportState();
        ckpt.source_pos = ckpt.monitor.step_index;
        std::istringstream is(bytes(ckpt));
        const CheckpointData loaded = loadCheckpoint(is);
        ASSERT_EQ(loaded.source_pos, cut);

        core::Monitor resumed(model, mcfg);
        resumed.restoreState(loaded.monitor);
        for (std::size_t i = cut; i < stream.size(); ++i)
            resumed.step(stream[i]);

        EXPECT_TRUE(sameRecords(resumed.records(), baseline.records()))
            << "records diverged for cut at " << cut;
        EXPECT_TRUE(sameReports(resumed.reports(), baseline.reports()))
            << "reports diverged for cut at " << cut;
        EXPECT_EQ(resumed.degradedStats().quarantined,
                  baseline.degradedStats().quarantined);
        EXPECT_EQ(resumed.testCalls(), baseline.testCalls());
    }
}

} // namespace
