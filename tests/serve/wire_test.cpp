/**
 * @file
 * Wire ingestion front end (DESIGN.md §11): WireSource sequence
 * discipline (exactly-once in-order delivery out of a messy
 * transport), the WireListener connection state machine over real
 * loopback sockets — handshake, admission NACKs, reconnect takeover,
 * malformed-frame accounting, idle closes, drain — and end-to-end
 * bit-identical delivery through WireClient, including its byte-level
 * chaos mode. Everything here runs in-process; the tool-level round
 * trips live in tools/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/capture_io.h"
#include "serve/sample_source.h"
#include "serve/tenant.h"
#include "serve/wire_client.h"
#include "serve/wire_listener.h"
#include "serve/wire_source.h"
#include "serve_test_util.h"
#include "wire/decoder.h"
#include "wire/frame.h"
#include "wire/transport.h"

using namespace eddie;
using namespace eddie::serve;
using namespace serve_test;

namespace
{

bool
stsEqual(const core::Sts &a, const core::Sts &b)
{
    return a.t_start == b.t_start && a.t_end == b.t_end &&
           a.peak_freqs == b.peak_freqs &&
           a.true_region == b.true_region &&
           a.injected == b.injected &&
           a.window_energy == b.window_energy &&
           a.peak_energy_frac == b.peak_energy_frac &&
           a.faulted == b.faulted;
}

bool
streamsEqual(const std::vector<core::Sts> &a,
             const std::vector<core::Sts> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!stsEqual(a[i], b[i]))
            return false;
    return true;
}

std::vector<core::Sts>
slice(const std::vector<core::Sts> &stream, std::size_t from,
      std::size_t to)
{
    return {stream.begin() + std::ptrdiff_t(from),
            stream.begin() + std::ptrdiff_t(to)};
}

bool
waitFor(const std::function<bool()> &pred, double timeout_ms = 5000.0)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double, std::milli>(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

constexpr auto kNever = []() { return false; };

// ----------------------------------------------------------------
// WireSource: the sequence-discipline unit.
// ----------------------------------------------------------------

TEST(WireSource, IngestsInOrderDropsDuplicatesRefusesGaps)
{
    const std::vector<core::Sts> stream = eventfulStream(11);
    WireSourceConfig cfg;
    WireSource src("default", 1, cfg);

    EXPECT_EQ(src.ingest(0, slice(stream, 0, 5), kNever),
              WireSource::Ingest::Ok);
    EXPECT_EQ(src.expected(), 5u);

    // Overlapping replay (a reconnecting client resends from its last
    // ACK): the already-ingested prefix is dropped, the tail lands.
    EXPECT_EQ(src.ingest(3, slice(stream, 3, 8), kNever),
              WireSource::Ingest::Ok);
    EXPECT_EQ(src.expected(), 8u);

    // Fully duplicate batch: dropped whole, still Ok.
    EXPECT_EQ(src.ingest(0, slice(stream, 0, 3), kNever),
              WireSource::Ingest::Ok);
    EXPECT_EQ(src.expected(), 8u);

    // A batch starting above expected() would fabricate a hole.
    EXPECT_EQ(src.ingest(10, slice(stream, 10, 12), kNever),
              WireSource::Ingest::Gap);
    EXPECT_EQ(src.expected(), 8u);

    // EOF below/above the ingested count is a gap too.
    EXPECT_EQ(src.noteEof(7), WireSource::Ingest::Gap);
    EXPECT_EQ(src.noteEof(8), WireSource::Ingest::Ok);
    EXPECT_TRUE(src.eofKnown());

    std::vector<core::Sts> got;
    for (;;) {
        const Pull p = src.next();
        if (p.status != PullStatus::Ready)
            break;
        got.push_back(p.sts);
    }
    EXPECT_EQ(src.next().status, PullStatus::EndOfStream);
    EXPECT_TRUE(streamsEqual(got, slice(stream, 0, 8)));
    EXPECT_EQ(src.position(), 8u);

    const WireSourceStats ws = src.wireStats();
    EXPECT_EQ(ws.ingested, 8u);
    EXPECT_EQ(ws.duplicates_dropped, 5u);
    EXPECT_EQ(ws.gaps_refused, 2u);
}

TEST(WireSource, SeekReplaysOnlyWithinRetainedWindow)
{
    const std::vector<core::Sts> stream = eventfulStream(12);
    WireSourceConfig cfg;
    cfg.replay_window = 4;
    WireSource src("default", 1, cfg);
    ASSERT_EQ(src.ingest(0, slice(stream, 0, 10), kNever),
              WireSource::Ingest::Ok);
    ASSERT_EQ(src.noteEof(10), WireSource::Ingest::Ok);

    for (std::size_t i = 0; i < 10; ++i) {
        const Pull p = src.next();
        ASSERT_EQ(p.status, PullStatus::Ready);
        ASSERT_TRUE(stsEqual(p.sts, stream[i])) << i;
    }

    // Only the last replay_window delivered windows are retained.
    EXPECT_FALSE(src.seek(2));
    ASSERT_TRUE(src.seek(7));
    EXPECT_EQ(src.position(), 7u);
    for (std::size_t i = 7; i < 10; ++i) {
        const Pull p = src.next();
        ASSERT_EQ(p.status, PullStatus::Ready);
        ASSERT_TRUE(stsEqual(p.sts, stream[i])) << i;
    }
    EXPECT_EQ(src.next().status, PullStatus::EndOfStream);

    // seek() to the current position is always legal; past the end
    // is not.
    EXPECT_TRUE(src.seek(10));
    EXPECT_FALSE(src.seek(11));
}

TEST(WireSource, StallsWhenIdleAbortsAndClosesCleanly)
{
    const std::vector<core::Sts> stream = eventfulStream(13);
    WireSourceConfig cfg;
    cfg.stall_timeout_ms = 40.0;
    cfg.poll_slice_ms = 5.0;
    cfg.recv_capacity = 2;
    WireSource src("default", 1, cfg);

    // No data and no EOF: next() absorbs the wait then stalls.
    EXPECT_EQ(src.next().status, PullStatus::Stalled);

    // Ingest blocked on a full receive window polls its abort.
    ASSERT_EQ(src.ingest(0, slice(stream, 0, 2), kNever),
              WireSource::Ingest::Ok);
    std::atomic<int> polls{0};
    EXPECT_EQ(src.ingest(2, slice(stream, 2, 6),
                         [&]() { return ++polls > 2; }),
              WireSource::Ingest::Aborted);
    EXPECT_GT(polls.load(), 2);

    // closeIngest(): blocked producers see Closed, the consumer can
    // drain what arrived and then stalls (no EOF was accepted).
    src.closeIngest();
    EXPECT_EQ(src.ingest(2, slice(stream, 2, 4), kNever),
              WireSource::Ingest::Closed);
    std::size_t drained = 0;
    for (;;) {
        const Pull p = src.next();
        if (p.status != PullStatus::Ready)
            break;
        ++drained;
    }
    EXPECT_GE(drained, 2u);
    EXPECT_EQ(src.next().status, PullStatus::Stalled);
}

// ----------------------------------------------------------------
// WireListener over real loopback connections.
// ----------------------------------------------------------------

/** Raw-frame test client: hand-built frames + a reply reader, so the
 *  tests can speak the protocol badly on purpose. */
struct RawClient
{
    wire::Conn conn;
    wire::FrameDecoder dec;
    char buf[4096];

    explicit RawClient(const std::string &tcp_addr)
        : conn(wire::connectTcp(tcp_addr))
    {
    }

    bool send(const std::string &bytes)
    {
        return conn.sendAll(bytes.data(), bytes.size());
    }

    /** Reads one frame (copying the payload out), waiting up to
     *  @p timeout_ms. status NeedMore means timeout; Error covers
     *  both malformed bytes and a closed peer. */
    wire::Decoded read(double timeout_ms, std::string *payload = nullptr)
    {
        double waited = 0.0;
        for (;;) {
            const wire::Decoded d = dec.next();
            if (d.status == wire::DecodeStatus::Frame) {
                if (payload != nullptr)
                    payload->assign(d.payload, d.header.payload_len);
                return d;
            }
            if (d.status == wire::DecodeStatus::Error)
                return d;
            std::size_t got = 0;
            switch (conn.recvSome(buf, sizeof buf, 50.0, got)) {
            case wire::Conn::RecvStatus::Data:
                dec.feed(buf, got);
                continue;
            case wire::Conn::RecvStatus::Timeout:
                waited += 50.0;
                if (waited >= timeout_ms)
                    return d;
                continue;
            case wire::Conn::RecvStatus::Closed:
            case wire::Conn::RecvStatus::Error:
                dec.endOfInput();
                return dec.next();
            }
        }
    }

    /** True when the peer closes without sending another frame. */
    bool readClosed(double timeout_ms)
    {
        double waited = 0.0;
        for (;;) {
            std::size_t got = 0;
            switch (conn.recvSome(buf, sizeof buf, 50.0, got)) {
            case wire::Conn::RecvStatus::Data:
                continue; // drain whatever is in flight
            case wire::Conn::RecvStatus::Timeout:
                waited += 50.0;
                if (waited >= timeout_ms)
                    return false;
                continue;
            case wire::Conn::RecvStatus::Closed:
            case wire::Conn::RecvStatus::Error:
                return true;
            }
        }
    }
};

std::string
helloFrame(const std::string &tenant, std::uint64_t session,
           std::uint64_t seq)
{
    wire::FrameHeader h;
    h.type = wire::FrameType::Hello;
    h.tenant = wire::tenantHash(tenant);
    h.session = session;
    h.sequence = seq;
    return wire::encodeFrame(h, wire::encodeHelloPayload(tenant));
}

std::string
batchFrame(const std::string &tenant, std::uint64_t session,
           std::uint64_t seq, const std::vector<core::Sts> &batch)
{
    wire::FrameHeader h;
    h.type = wire::FrameType::StsBatch;
    h.tenant = wire::tenantHash(tenant);
    h.session = session;
    h.sequence = seq;
    return wire::encodeFrame(h, core::encodeStsPayload(batch));
}

std::string
eofFrame(const std::string &tenant, std::uint64_t session,
         std::uint64_t total)
{
    wire::FrameHeader h;
    h.type = wire::FrameType::Eof;
    h.tenant = wire::tenantHash(tenant);
    h.session = session;
    h.sequence = total;
    return wire::encodeFrame(h, std::string());
}

wire::NackCode
nackCodeOf(const wire::Decoded &d, const std::string &payload)
{
    EXPECT_EQ(d.header.type, wire::FrameType::Nack);
    wire::NackCode code = wire::NackCode::None;
    std::string msg;
    EXPECT_TRUE(wire::decodeNackPayload(payload.data(), payload.size(),
                                        code, msg));
    return code;
}

struct ListenerFixture
{
    TenantRegistry registry;
    WireListenerConfig cfg;
    std::unique_ptr<WireListener> listener;

    explicit ListenerFixture(std::size_t max_sessions = 0)
    {
        TenantSpec spec;
        spec.id = "default";
        spec.quota.max_sessions = max_sessions;
        registry.addTenant(std::move(spec));
        cfg.tcp = "127.0.0.1:0";
        cfg.read_poll_ms = 10.0;
        cfg.accept_poll_ms = 10.0;
    }

    void start()
    {
        listener = std::make_unique<WireListener>(registry, cfg);
        listener->start();
    }

    /** Drains the (single) admitted source to EndOfStream. */
    std::vector<core::Sts> drainSource()
    {
        WireSource *src = listener->sources().at(0);
        std::vector<core::Sts> got;
        for (;;) {
            const Pull p = src->next();
            if (p.status == PullStatus::Ready) {
                got.push_back(p.sts);
                continue;
            }
            if (p.status == PullStatus::EndOfStream)
                return got;
            ADD_FAILURE() << "source stalled after " << got.size()
                          << " windows";
            return got;
        }
    }
};

TEST(WireListener, AdmitsStreamsInOrderAndAcksEof)
{
    const std::vector<core::Sts> stream = eventfulStream(21);
    ListenerFixture fx;
    fx.start();

    RawClient c(fx.listener->tcpAddress());
    ASSERT_TRUE(c.send(helloFrame("default", 1, 0)));
    const wire::Decoded ack = c.read(5000.0);
    ASSERT_EQ(ack.status, wire::DecodeStatus::Frame);
    EXPECT_EQ(ack.header.type, wire::FrameType::Ack);
    EXPECT_EQ(ack.header.sequence, 0u);
    EXPECT_EQ(fx.listener->awaitSessions(1, 5000.0), 1u);

    ASSERT_TRUE(c.send(batchFrame("default", 1, 0,
                                  slice(stream, 0, 60))));
    ASSERT_TRUE(c.send(batchFrame("default", 1, 60,
                                  slice(stream, 60, 160))));
    ASSERT_TRUE(c.send(eofFrame("default", 1, 160)));
    const wire::Decoded fin = c.read(5000.0);
    ASSERT_EQ(fin.status, wire::DecodeStatus::Frame);
    EXPECT_EQ(fin.header.type, wire::FrameType::Ack);
    EXPECT_EQ(fin.header.sequence, 160u);

    EXPECT_TRUE(streamsEqual(fx.drainSource(), stream));

    ASSERT_TRUE(waitFor([&]() {
        return fx.listener->stats().connections_closed >= 1;
    }));
    const WireListenerStats st = fx.listener->stats();
    EXPECT_EQ(st.connections_accepted, 1u);
    EXPECT_EQ(st.batches, 2u);
    EXPECT_EQ(st.eofs, 1u);
    EXPECT_GE(st.acks_sent, 2u);
    EXPECT_EQ(st.wire.totalErrors(), 0u);
    EXPECT_GT(st.bytes_received, 0u);
    fx.listener->drainAndClose();
}

TEST(WireListener, RefusesUnknownTenantQuotaAndLateHellos)
{
    ListenerFixture fx(/*max_sessions=*/1);
    fx.start();
    std::string payload;

    {
        RawClient c(fx.listener->tcpAddress());
        ASSERT_TRUE(c.send(helloFrame("nope", 1, 0)));
        const wire::Decoded d = c.read(5000.0, &payload);
        ASSERT_EQ(d.status, wire::DecodeStatus::Frame);
        EXPECT_EQ(nackCodeOf(d, payload),
                  wire::NackCode::UnknownTenant);
        EXPECT_TRUE(c.readClosed(5000.0));
    }

    RawClient admitted(fx.listener->tcpAddress());
    ASSERT_TRUE(admitted.send(helloFrame("default", 1, 0)));
    ASSERT_EQ(admitted.read(5000.0).header.type,
              wire::FrameType::Ack);

    {
        RawClient c(fx.listener->tcpAddress());
        ASSERT_TRUE(c.send(helloFrame("default", 2, 0)));
        const wire::Decoded d = c.read(5000.0, &payload);
        ASSERT_EQ(d.status, wire::DecodeStatus::Frame);
        EXPECT_EQ(nackCodeOf(d, payload),
                  wire::NackCode::TenantSessionLimit);
    }

    fx.listener->freezeAdmission();
    {
        RawClient c(fx.listener->tcpAddress());
        ASSERT_TRUE(c.send(helloFrame("default", 3, 0)));
        const wire::Decoded d = c.read(5000.0, &payload);
        ASSERT_EQ(d.status, wire::DecodeStatus::Frame);
        EXPECT_EQ(nackCodeOf(d, payload),
                  wire::NackCode::AdmissionClosed);
    }

    // Reconnecting the admitted session stays legal after the freeze.
    RawClient back(fx.listener->tcpAddress());
    ASSERT_TRUE(back.send(helloFrame("default", 1, 0)));
    const wire::Decoded re = back.read(5000.0);
    ASSERT_EQ(re.status, wire::DecodeStatus::Frame);
    EXPECT_EQ(re.header.type, wire::FrameType::Ack);

    const WireListenerStats st = fx.listener->stats();
    EXPECT_EQ(st.admission_refusals, 2u);
    EXPECT_EQ(st.late_rejects, 1u);
    EXPECT_EQ(st.reattaches, 1u);
    const AdmissionStats adm = fx.registry.admissionStats();
    EXPECT_EQ(adm.sessions_admitted, 1u);
    EXPECT_EQ(adm.rejected_unknown_tenant, 1u);
    EXPECT_EQ(adm.rejected_tenant_limit, 1u);
    fx.listener->drainAndClose();
}

TEST(WireListener, MalformedFramesAreCountedNackedAndResumable)
{
    const std::vector<core::Sts> stream = eventfulStream(22);
    ListenerFixture fx;
    fx.start();
    std::string payload;

    // Garbage instead of a HELLO: NACK(malformed), counted, closed.
    // (At least kHeaderSize bytes — the decoder judges nothing until
    // a whole header is buffered.)
    {
        RawClient c(fx.listener->tcpAddress());
        ASSERT_TRUE(c.send(std::string(64, '#')));
        const wire::Decoded d = c.read(5000.0, &payload);
        ASSERT_EQ(d.status, wire::DecodeStatus::Frame);
        EXPECT_EQ(nackCodeOf(d, payload),
                  wire::NackCode::MalformedFrame);
        EXPECT_TRUE(c.readClosed(5000.0));
    }

    // Admitted session whose stream then goes bad mid-batch.
    {
        RawClient c(fx.listener->tcpAddress());
        ASSERT_TRUE(c.send(helloFrame("default", 1, 0)));
        ASSERT_EQ(c.read(5000.0).header.type, wire::FrameType::Ack);
        ASSERT_TRUE(c.send(batchFrame("default", 1, 0,
                                      slice(stream, 0, 40))));
        std::string bad =
            batchFrame("default", 1, 40, slice(stream, 40, 60));
        bad[bad.size() - 3] = char(bad[bad.size() - 3] ^ 0x01);
        ASSERT_TRUE(c.send(bad));
        const wire::Decoded d = c.read(5000.0, &payload);
        ASSERT_EQ(d.status, wire::DecodeStatus::Frame);
        EXPECT_EQ(nackCodeOf(d, payload),
                  wire::NackCode::MalformedFrame);
        EXPECT_TRUE(c.readClosed(5000.0));
    }

    // The session survived: reconnect resumes from the ingested
    // prefix and the stream still arrives bit-identically.
    {
        RawClient c(fx.listener->tcpAddress());
        ASSERT_TRUE(c.send(helloFrame("default", 1, 0)));
        const wire::Decoded ack = c.read(5000.0);
        ASSERT_EQ(ack.status, wire::DecodeStatus::Frame);
        ASSERT_EQ(ack.header.type, wire::FrameType::Ack);
        EXPECT_EQ(ack.header.sequence, 40u);
        ASSERT_TRUE(c.send(batchFrame("default", 1, 40,
                                      slice(stream, 40, 160))));
        ASSERT_TRUE(c.send(eofFrame("default", 1, 160)));
        ASSERT_EQ(c.read(5000.0).header.sequence, 160u);
    }
    EXPECT_TRUE(streamsEqual(fx.drainSource(), stream));

    ASSERT_TRUE(waitFor([&]() {
        return fx.listener->stats().connections_closed >= 3;
    }));
    const WireListenerStats st = fx.listener->stats();
    EXPECT_EQ(st.handshake_failures, 1u);
    EXPECT_EQ(st.reattaches, 1u);
    EXPECT_EQ(st.wire.errorCount(wire::WireError::BadMagic), 1u);
    EXPECT_EQ(st.wire.errorCount(wire::WireError::PayloadCrc), 1u);
    EXPECT_GE(st.nacks_sent, 2u);
    fx.listener->drainAndClose();
}

TEST(WireListener, SequenceGapsAreNackedAndTheSessionResumes)
{
    const std::vector<core::Sts> stream = eventfulStream(23);
    ListenerFixture fx;
    fx.start();
    std::string payload;

    {
        RawClient c(fx.listener->tcpAddress());
        ASSERT_TRUE(c.send(helloFrame("default", 1, 0)));
        ASSERT_EQ(c.read(5000.0).header.type, wire::FrameType::Ack);
        ASSERT_TRUE(c.send(batchFrame("default", 1, 0,
                                      slice(stream, 0, 20))));
        // Skipping ahead would fabricate a hole in the verdict
        // stream: refused, connection dropped.
        ASSERT_TRUE(c.send(batchFrame("default", 1, 30,
                                      slice(stream, 30, 40))));
        const wire::Decoded d = c.read(5000.0, &payload);
        ASSERT_EQ(d.status, wire::DecodeStatus::Frame);
        EXPECT_EQ(nackCodeOf(d, payload), wire::NackCode::SequenceGap);
        EXPECT_EQ(d.header.sequence, 30u);
        EXPECT_TRUE(c.readClosed(5000.0));
    }
    {
        RawClient c(fx.listener->tcpAddress());
        ASSERT_TRUE(c.send(helloFrame("default", 1, 0)));
        const wire::Decoded ack = c.read(5000.0);
        ASSERT_EQ(ack.status, wire::DecodeStatus::Frame);
        EXPECT_EQ(ack.header.sequence, 20u);
        ASSERT_TRUE(c.send(batchFrame("default", 1, 20,
                                      slice(stream, 20, 160))));
        ASSERT_TRUE(c.send(eofFrame("default", 1, 160)));
        ASSERT_EQ(c.read(5000.0).header.sequence, 160u);
    }
    EXPECT_TRUE(streamsEqual(fx.drainSource(), stream));

    const WireListenerStats st = fx.listener->stats();
    EXPECT_EQ(st.sequence_gaps, 1u);
    EXPECT_EQ(st.wire.errorCount(wire::WireError::SequenceGap), 1u);
    fx.listener->drainAndClose();
}

TEST(WireListener, IdleConnectionsAreClosedButStayResumable)
{
    ListenerFixture fx;
    fx.cfg.idle_timeout_ms = 120.0;
    fx.start();

    RawClient c(fx.listener->tcpAddress());
    ASSERT_TRUE(c.send(helloFrame("default", 1, 0)));
    ASSERT_EQ(c.read(5000.0).header.type, wire::FrameType::Ack);
    // Go silent: the listener must hang up, not leak the reader.
    EXPECT_TRUE(c.readClosed(5000.0));
    ASSERT_TRUE(waitFor([&]() {
        return fx.listener->stats().idle_closes >= 1;
    }));

    RawClient back(fx.listener->tcpAddress());
    ASSERT_TRUE(back.send(helloFrame("default", 1, 0)));
    const wire::Decoded re = back.read(5000.0);
    ASSERT_EQ(re.status, wire::DecodeStatus::Frame);
    EXPECT_EQ(re.header.type, wire::FrameType::Ack);
    EXPECT_EQ(fx.listener->stats().reattaches, 1u);
    fx.listener->drainAndClose();
}

TEST(WireListener, PipeTransportDeliversBitIdenticalViaWireClient)
{
    const auto stream =
        std::make_shared<const std::vector<core::Sts>>(
            eventfulStream(24));
    ListenerFixture fx;
    fx.cfg.tcp.clear();
    const std::string sock =
        (std::filesystem::temp_directory_path() /
         ("eddie_wire_test_" + std::to_string(::getpid()) + ".sock"))
            .string();
    fx.cfg.unix_path = sock;
    fx.start();

    WireClientConfig ccfg;
    ccfg.unix_path = sock;
    ccfg.tenant = "default";
    ccfg.session = 1;
    ccfg.batch_windows = 32;
    WireClientReport rep;
    std::thread client([&]() {
        VectorSource src(stream);
        rep = WireClient(ccfg).stream(src);
    });

    ASSERT_EQ(fx.listener->awaitSessions(1, 10000.0), 1u);
    const std::vector<core::Sts> got = fx.drainSource();
    client.join();

    EXPECT_TRUE(rep.delivered_all) << rep.error;
    EXPECT_EQ(rep.windows_sent, stream->size());
    EXPECT_EQ(rep.reconnects, 0u);
    EXPECT_TRUE(streamsEqual(got, *stream));
    EXPECT_EQ(fx.listener->pipeAddress(), sock);
    fx.listener->drainAndClose();
    std::filesystem::remove(sock);
}

TEST(WireListener, ChaosClientStillConvergesBitIdentical)
{
    const auto stream =
        std::make_shared<const std::vector<core::Sts>>(
            eventfulStream(25));
    ListenerFixture fx;
    fx.start();

    WireClientConfig ccfg;
    ccfg.tcp = fx.listener->tcpAddress();
    ccfg.tenant = "default";
    ccfg.session = 1;
    ccfg.batch_windows = 8;
    ccfg.backoff.initial_ms = 2.0;
    ccfg.backoff.max_ms = 20.0;
    ccfg.chaos.seed = 0xC0FFEE;
    ccfg.chaos.tear_prob = 0.15;
    ccfg.chaos.disconnect_prob = 0.15;
    ccfg.chaos.duplicate_prob = 0.10;
    ccfg.chaos.reorder_prob = 0.10;
    ccfg.chaos.corrupt_prob = 0.10;
    ccfg.chaos.hostile_len_prob = 0.08;
    WireClientReport rep;
    std::thread client([&]() {
        VectorSource src(stream);
        rep = WireClient(ccfg).stream(src);
    });

    ASSERT_EQ(fx.listener->awaitSessions(1, 10000.0), 1u);
    const std::vector<core::Sts> got = fx.drainSource();
    client.join();

    // Every fault was either rejected or absorbed; what the monitor
    // would see is exactly the clean stream.
    EXPECT_TRUE(rep.delivered_all) << rep.error;
    EXPECT_TRUE(streamsEqual(got, *stream));
    const std::uint64_t faults =
        rep.torn_frames + rep.forced_disconnects +
        rep.duplicate_batches + rep.reordered_batches +
        rep.corrupted_frames + rep.hostile_lengths;
    EXPECT_GT(faults, 0u);
    EXPECT_GE(rep.reconnects, 1u);

    const WireListenerStats st = fx.listener->stats();
    EXPECT_GE(st.reattaches, rep.reconnects);
    EXPECT_GE(st.nacks_sent, rep.nacks_received);
    fx.listener->drainAndClose();
}

TEST(WireListener, DrainAndCloseUnblocksABlockedProducer)
{
    const std::vector<core::Sts> stream = eventfulStream(26);
    ListenerFixture fx;
    fx.cfg.source.recv_capacity = 2;
    fx.start();

    // A producer that outruns the (absent) consumer: the receive
    // window fills, ingest blocks the reader, TCP fills, and the
    // client wedges in sendAll.
    std::thread producer([&]() {
        RawClient c(fx.listener->tcpAddress());
        if (!c.send(helloFrame("default", 1, 0)))
            return;
        if (c.read(5000.0).header.type != wire::FrameType::Ack)
            return;
        for (std::uint64_t seq = 0; seq < 2000; seq += 4) {
            const std::size_t at = std::size_t(seq) % 150;
            if (!c.send(batchFrame("default", 1, seq,
                                   slice(stream, at, at + 4))))
                return; // drain hung up on us — expected
        }
    });

    ASSERT_EQ(fx.listener->awaitSessions(1, 10000.0), 1u);
    ASSERT_TRUE(waitFor([&]() {
        return fx.listener->sources().at(0)->wireStats().ingested >=
               2;
    }));
    // Give the producer time to wedge against the full window.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    const auto t0 = std::chrono::steady_clock::now();
    fx.listener->drainAndClose();
    const double drain_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    producer.join();

    // The drain must not wait out the producer: closing the
    // connection and the receive window is what unblocks it.
    EXPECT_LT(drain_ms, 5000.0);
    const WireListenerStats st = fx.listener->stats();
    EXPECT_GE(st.connections_closed, 1u);
}

} // namespace
