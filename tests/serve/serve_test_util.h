/**
 * @file
 * Shared fixtures for the serving-runtime tests: a tiny two-loop
 * synthetic model and STS streams built directly from distributions
 * (no simulator in the loop), so checkpoint/restart equivalence can
 * be asserted bit-for-bit in milliseconds. Same idiom as
 * tests/core/quality_gate_test.cpp.
 */

#ifndef EDDIE_TESTS_SERVE_TEST_UTIL_H
#define EDDIE_TESTS_SERVE_TEST_UTIL_H

#include <memory>
#include <random>
#include <vector>

#include "core/monitor.h"
#include "core/trainer.h"
#include "prog/builder.h"
#include "prog/regions.h"

namespace serve_test
{

constexpr double kSentinel = 2e7;

inline eddie::prog::RegionGraph
twoLoopGraph()
{
    eddie::prog::ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 8);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.addi(1, 1, 1);
    b.blt(1, 2, l0);
    b.nop();
    b.li(1, 0);
    auto l1 = b.newLabel();
    b.bind(l1);
    b.addi(1, 1, 1);
    b.blt(1, 2, l1);
    b.halt();
    static eddie::prog::Program p = b.take();
    return eddie::prog::analyzeProgram(p);
}

/** Sharp two-peak STS with a healthy window energy. */
inline eddie::core::Sts
sharpSts(std::mt19937_64 &rng, double t, std::size_t region)
{
    std::normal_distribution<double> jitter(0.0, 2000.0);
    eddie::core::Sts sts;
    sts.t_start = t;
    sts.t_end = t + 1e-4;
    sts.peak_freqs = {1e6 + jitter(rng), 2e6 + jitter(rng)};
    while (sts.peak_freqs.size() < 6)
        sts.peak_freqs.push_back(kSentinel);
    sts.true_region = region;
    sts.window_energy = 1.0;
    sts.peak_energy_frac = 0.8;
    return sts;
}

/** An anomalous window: the peak comb moved where no trained region
 *  has peaks (K-S distance 1.0 against every reference). */
inline eddie::core::Sts
anomalousSts(std::mt19937_64 &rng, double t)
{
    eddie::core::Sts sts = sharpSts(rng, t, 0);
    sts.peak_freqs[0] = 5e6;
    sts.peak_freqs[1] = 7e6;
    sts.injected = true;
    return sts;
}

/** A window captured during a signal dropout (gate quarantines it). */
inline eddie::core::Sts
dropoutSts(double t)
{
    eddie::core::Sts sts;
    sts.t_start = t;
    sts.t_end = t + 1e-4;
    sts.peak_freqs.assign(6, kSentinel);
    sts.true_region = 0;
    sts.window_energy = 1e-6;
    sts.peak_energy_frac = 0.0;
    sts.faulted = true;
    return sts;
}

/** Two-region model over the sharp peaks; near-zero alpha keeps
 *  chance rejections of clean windows out of the assertions. */
inline eddie::core::TrainedModel
sharpModel(std::mt19937_64 &rng)
{
    std::vector<std::vector<eddie::core::Sts>> runs;
    for (int r = 0; r < 6; ++r) {
        std::vector<eddie::core::Sts> run;
        double t = 0.0;
        for (int i = 0; i < 160; ++i, t += 5e-5)
            run.push_back(sharpSts(rng, t, i < 80 ? 0 : 1));
        runs.push_back(std::move(run));
    }
    return withAlpha(
        train(runs, twoLoopGraph(), kSentinel), 1e-6);
}

/**
 * Monitoring stream: clean two-region trace with an anomaly burst at
 * [90, 110) and a dropout outage at [120, 126), so checkpoint cuts
 * can straddle a rejection streak, a report, and a quarantine
 * episode.
 */
inline std::vector<eddie::core::Sts>
eventfulStream(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<eddie::core::Sts> stream;
    double t = 0.0;
    for (int i = 0; i < 160; ++i, t += 5e-5) {
        if (i >= 90 && i < 110)
            stream.push_back(anomalousSts(rng, t));
        else if (i >= 120 && i < 126)
            stream.push_back(dropoutSts(t));
        else
            stream.push_back(sharpSts(rng, t, i < 80 ? 0 : 1));
    }
    return stream;
}

inline bool
sameRecords(const std::vector<eddie::core::StepRecord> &a,
            const std::vector<eddie::core::StepRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].region != b[i].region || a[i].tested != b[i].tested ||
            a[i].rejected != b[i].rejected ||
            a[i].reported != b[i].reported ||
            a[i].transitioned != b[i].transitioned ||
            a[i].degraded != b[i].degraded)
            return false;
    }
    return true;
}

inline bool
sameReports(const std::vector<eddie::core::AnomalyReport> &a,
            const std::vector<eddie::core::AnomalyReport> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].step != b[i].step || a[i].time != b[i].time ||
            a[i].region != b[i].region)
            return false;
    }
    return true;
}

} // namespace serve_test

#endif // EDDIE_TESTS_SERVE_TEST_UTIL_H
