#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "sig/fft.h"
#include "sig/peaks.h"

namespace
{

using eddie::sig::findPeaks;
using eddie::sig::PeakOptions;

TEST(PeaksTest, FindsSingleDominantPeak)
{
    std::vector<double> power(256, 0.01);
    power[40] = 100.0;
    const auto peaks = findPeaks(power, 1000.0, PeakOptions());
    ASSERT_GE(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].bin, 40u);
    EXPECT_NEAR(peaks[0].freq, 1000.0 * 40 / 256, 1e-9);
    EXPECT_GT(peaks[0].energy_frac, 0.9);
}

TEST(PeaksTest, SortsByDescendingPower)
{
    std::vector<double> power(256, 0.001);
    power[40] = 50.0;
    power[80] = 100.0;
    power[120] = 25.0;
    const auto peaks = findPeaks(power, 1000.0, PeakOptions());
    ASSERT_GE(peaks.size(), 3u);
    EXPECT_EQ(peaks[0].bin, 80u);
    EXPECT_EQ(peaks[1].bin, 40u);
    EXPECT_EQ(peaks[2].bin, 120u);
}

TEST(PeaksTest, EnergyFractionRuleFiltersWeakPeaks)
{
    // One strong peak plus a local max below 1 % of total energy.
    std::vector<double> power(256, 0.0);
    power[40] = 1000.0;
    power[120] = 5.0; // 0.5 % of total
    PeakOptions opt;
    opt.min_energy_frac = 0.01;
    const auto peaks = findPeaks(power, 1000.0, opt);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].bin, 40u);
}

TEST(PeaksTest, LocalMaximumRequired)
{
    // A wide plateau's shoulder bins must not register as peaks.
    std::vector<double> power(128, 0.0);
    power[30] = 10.0;
    power[31] = 20.0; // the actual peak
    power[32] = 10.0;
    const auto peaks = findPeaks(power, 1000.0, PeakOptions());
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].bin, 31u);
}

TEST(PeaksTest, DcGuardExcludesLowBins)
{
    std::vector<double> power(256, 0.0);
    power[1] = 1e6; // DC leakage
    power[255] = 1e6; // negative-frequency DC leakage
    power[40] = 10.0;
    PeakOptions opt;
    opt.dc_guard_bins = 3;
    const auto peaks = findPeaks(power, 1000.0, opt);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].bin, 40u);
    // The guard bins are excluded from the energy denominator too.
    EXPECT_GT(peaks[0].energy_frac, 0.9);
}

TEST(PeaksTest, MaxPeaksCap)
{
    std::vector<double> power(256, 0.0);
    for (std::size_t b = 10; b < 250; b += 20)
        power[b] = 10.0;
    PeakOptions opt;
    opt.max_peaks = 3;
    const auto peaks = findPeaks(power, 1000.0, opt);
    EXPECT_EQ(peaks.size(), 3u);
}

TEST(PeaksTest, EqualPowerTiesBreakByAscendingBin)
{
    // The top-k selection must be a strict weak order even when many
    // candidates carry exactly equal power (symmetric real spectra do
    // this): lower bins win, so the kept set and its order are
    // defined, not whatever the partition happened to leave.
    std::vector<double> power(256, 0.0);
    for (std::size_t b = 10; b < 250; b += 20)
        power[b] = 10.0;
    PeakOptions opt;
    opt.max_peaks = 3;
    const auto peaks = findPeaks(power, 1000.0, opt);
    ASSERT_EQ(peaks.size(), 3u);
    EXPECT_EQ(peaks[0].bin, 10u);
    EXPECT_EQ(peaks[1].bin, 30u);
    EXPECT_EQ(peaks[2].bin, 50u);
}

TEST(PeaksTest, EmptyAndZeroSpectra)
{
    EXPECT_TRUE(findPeaks({}, 1000.0, PeakOptions()).empty());
    std::vector<double> zeros(64, 0.0);
    EXPECT_TRUE(findPeaks(zeros, 1000.0, PeakOptions()).empty());
}

} // namespace
