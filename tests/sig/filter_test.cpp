#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "sig/fft.h"
#include "sig/filter.h"

namespace
{

using eddie::sig::Complex;

std::vector<double>
tone(std::size_t n, double freq, double fs)
{
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::cos(2.0 * std::numbers::pi * freq * double(i) / fs);
    return x;
}

double
rms(const std::vector<double> &x, std::size_t skip)
{
    double e = 0.0;
    std::size_t count = 0;
    for (std::size_t i = skip; i + skip < x.size(); ++i) {
        e += x[i] * x[i];
        ++count;
    }
    return count > 0 ? std::sqrt(e / double(count)) : 0.0;
}

TEST(FilterTest, LowPassUnityDcGain)
{
    const auto h = eddie::sig::designLowPass(100.0, 1000.0, 63);
    double sum = 0.0;
    for (double v : h)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FilterTest, PassbandToneSurvivesStopbandToneDies)
{
    const double fs = 10000.0;
    const auto h = eddie::sig::designLowPass(1000.0, fs, 101);

    auto pass = eddie::sig::firFilter(tone(4096, 300.0, fs), h);
    auto stop = eddie::sig::firFilter(tone(4096, 4000.0, fs), h);

    EXPECT_GT(rms(pass, 128), 0.6);  // ~0.707 expected
    EXPECT_LT(rms(stop, 128), 0.02); // heavily attenuated
}

TEST(FilterTest, DecimateKeepsEveryKth)
{
    std::vector<double> x{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    const auto y = eddie::sig::decimate(x, 3);
    ASSERT_EQ(y.size(), 4u);
    EXPECT_DOUBLE_EQ(y[0], 0.0);
    EXPECT_DOUBLE_EQ(y[1], 3.0);
    EXPECT_DOUBLE_EQ(y[2], 6.0);
    EXPECT_DOUBLE_EQ(y[3], 9.0);
}

TEST(FilterTest, DecimateComplex)
{
    std::vector<Complex> x(9);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = Complex(double(i), 0.0);
    const auto y = eddie::sig::decimate(x, 4);
    ASSERT_EQ(y.size(), 3u);
    EXPECT_DOUBLE_EQ(y[2].real(), 8.0);
}

TEST(FilterTest, BadArgumentsThrow)
{
    EXPECT_THROW(eddie::sig::designLowPass(0.0, 1000.0, 31),
                 std::invalid_argument);
    EXPECT_THROW(eddie::sig::designLowPass(600.0, 1000.0, 31),
                 std::invalid_argument);
    EXPECT_THROW(eddie::sig::designLowPass(100.0, -5.0, 31),
                 std::invalid_argument);
    std::vector<double> x{1, 2, 3};
    EXPECT_THROW(eddie::sig::decimate(x, 0), std::invalid_argument);
}

TEST(FilterTest, GroupDelayCompensated)
{
    // An impulse through the filter should peak at its own position.
    const auto h = eddie::sig::designLowPass(1000.0, 10000.0, 63);
    std::vector<double> x(256, 0.0);
    x[100] = 1.0;
    const auto y = eddie::sig::firFilter(x, h);
    std::size_t best = 0;
    for (std::size_t i = 1; i < y.size(); ++i)
        if (std::abs(y[i]) > std::abs(y[best]))
            best = i;
    EXPECT_EQ(best, 100u);
}

} // namespace
