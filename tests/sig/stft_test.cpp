#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "sig/stft.h"

namespace
{

using eddie::sig::Complex;
using eddie::sig::Spectrogram;
using eddie::sig::Stft;
using eddie::sig::StftConfig;

std::vector<double>
sine(std::size_t n, double freq, double fs)
{
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::sin(2.0 * std::numbers::pi * freq * double(i) / fs);
    return x;
}

TEST(StftTest, FrameCountAndTiming)
{
    StftConfig cfg;
    cfg.window_size = 256;
    cfg.hop = 128;
    cfg.sample_rate = 1000.0;
    Stft stft(cfg);

    const auto sg = stft.analyze(sine(1024, 100.0, 1000.0));
    EXPECT_EQ(sg.numFrames(), 1 + (1024 - 256) / 128);
    EXPECT_EQ(sg.fftSize(), 256u);
    EXPECT_DOUBLE_EQ(sg.frame_time[0], 0.0);
    EXPECT_NEAR(sg.frame_time[1], 0.128, 1e-12);
    EXPECT_NEAR(sg.window_seconds, 0.256, 1e-12);
}

TEST(StftTest, ToneAppearsInEveryFrame)
{
    StftConfig cfg;
    cfg.window_size = 256;
    cfg.hop = 128;
    cfg.sample_rate = 1000.0;
    Stft stft(cfg);

    const double f0 = 1000.0 * 32.0 / 256.0; // bin 32
    const auto sg = stft.analyze(sine(2048, f0, 1000.0));
    for (std::size_t f = 0; f < sg.numFrames(); ++f) {
        std::size_t best = 1;
        for (std::size_t b = 1; b < 128; ++b)
            if (sg.power[f][b] > sg.power[f][best])
                best = b;
        EXPECT_EQ(best, 32u) << "frame " << f;
    }
}

TEST(StftTest, ShortSignalYieldsNoFrames)
{
    StftConfig cfg;
    cfg.window_size = 256;
    cfg.hop = 128;
    cfg.sample_rate = 1000.0;
    Stft stft(cfg);
    EXPECT_EQ(stft.analyze(sine(100, 10.0, 1000.0)).numFrames(), 0u);
}

TEST(StftTest, ComplexInputNegativeFrequency)
{
    StftConfig cfg;
    cfg.window_size = 128;
    cfg.hop = 64;
    cfg.sample_rate = 1000.0;
    Stft stft(cfg);

    // e^{-j 2 pi f t} concentrates at a negative frequency.
    const double f0 = 1000.0 * 16.0 / 128.0;
    std::vector<Complex> x(512);
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double ang = -2.0 * std::numbers::pi * f0 *
            double(i) / 1000.0;
        x[i] = Complex(std::cos(ang), std::sin(ang));
    }
    const auto sg = stft.analyze(x);
    ASSERT_GT(sg.numFrames(), 0u);
    std::size_t best = 1;
    for (std::size_t b = 1; b < 128; ++b)
        if (sg.power[0][b] > sg.power[0][best])
            best = b;
    EXPECT_LT(sg.binFrequency(best), 0.0);
    EXPECT_NEAR(sg.binFrequency(best), -f0, 1.0);
}

TEST(StftTest, RealFastPathMatchesComplexPath)
{
    // The real-input path (half-size packed FFT) must agree with the
    // generic complex path on the same samples.
    for (std::size_t window : {256u, 250u, 2048u}) {
        StftConfig cfg;
        cfg.window_size = window;
        cfg.hop = window / 2;
        cfg.sample_rate = 20000.0;
        Stft stft(cfg);

        auto x = sine(5 * window, 917.0, 20000.0);
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] += 0.25 * std::sin(0.37 * double(i)); // aperiodic part

        std::vector<Complex> cx(x.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            cx[i] = Complex(x[i], 0.0);

        const auto real_sg = stft.analyze(x);
        const auto cplx_sg = stft.analyze(cx);
        ASSERT_EQ(real_sg.numFrames(), cplx_sg.numFrames());
        for (std::size_t f = 0; f < real_sg.numFrames(); ++f) {
            for (std::size_t b = 0; b < window; ++b) {
                ASSERT_NEAR(real_sg.power[f][b], cplx_sg.power[f][b],
                            1e-6 * (1.0 + cplx_sg.power[f][b]))
                    << "window " << window << " frame " << f
                    << " bin " << b;
            }
        }
    }
}

TEST(StftTest, OddWindowSizeFallsBackToComplexPath)
{
    StftConfig cfg;
    cfg.window_size = 255; // odd: no packed half-size transform
    cfg.hop = 128;
    cfg.sample_rate = 1000.0;
    Stft stft(cfg);
    const auto sg = stft.analyze(sine(1024, 100.0, 1000.0));
    EXPECT_EQ(sg.fftSize(), 255u);
    EXPECT_GT(sg.numFrames(), 0u);
}

TEST(StftTest, InvalidConfigThrows)
{
    StftConfig bad;
    bad.window_size = 0;
    EXPECT_THROW(Stft{bad}, std::invalid_argument);
    bad.window_size = 64;
    bad.hop = 0;
    EXPECT_THROW(Stft{bad}, std::invalid_argument);
    bad.hop = 32;
    bad.sample_rate = -1.0;
    EXPECT_THROW(Stft{bad}, std::invalid_argument);
}

} // namespace
