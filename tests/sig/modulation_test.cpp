#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "sig/fft.h"
#include "sig/modulation.h"
#include "sig/peaks.h"
#include "sig/stft.h"

namespace
{

using eddie::sig::AmConfig;
using eddie::sig::Complex;
using eddie::sig::ReceiverConfig;

TEST(ModulationTest, NormalizeEnvelope)
{
    std::vector<double> x{1.0, 3.0, 5.0};
    const auto y = eddie::sig::normalizeEnvelope(x);
    EXPECT_NEAR(y[0], -1.0, 1e-12);
    EXPECT_NEAR(y[1], 0.0, 1e-12);
    EXPECT_NEAR(y[2], 1.0, 1e-12);

    std::vector<double> flat(8, 2.5);
    for (double v : eddie::sig::normalizeEnvelope(flat))
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ModulationTest, CarrierAndSidebandsPresent)
{
    // The Fig. 1 mechanism: a periodic envelope AM-modulated onto a
    // carrier produces spectral lines at fc and fc +- f_loop.
    AmConfig am;
    am.carrier_hz = 1e6;
    am.sample_rate = 8e6;
    am.depth = 0.8;

    const double env_rate = 1e6;
    const double f_loop = 50e3;
    std::vector<double> env(std::size_t(env_rate * 0.01)); // 10 ms
    for (std::size_t i = 0; i < env.size(); ++i) {
        env[i] = std::sin(2.0 * std::numbers::pi * f_loop *
                          double(i) / env_rate);
    }
    const auto rf = eddie::sig::amModulate(env, env_rate, am);

    // Spectrum of the first 65536 samples.
    std::vector<double> chunk(rf.begin(), rf.begin() + 65536);
    auto spec = eddie::sig::fftReal(chunk);
    auto bin = [&](double f) {
        return eddie::sig::frequencyToBin(f, chunk.size(),
                                          am.sample_rate);
    };
    const double carrier = std::abs(spec[bin(1e6)]);
    const double upper = std::abs(spec[bin(1e6 + f_loop)]);
    const double lower = std::abs(spec[bin(1e6 - f_loop)]);
    const double noise_floor = std::abs(spec[bin(2.5e6)]) + 1e-9;

    EXPECT_GT(carrier, 100.0 * noise_floor);
    EXPECT_GT(upper, 10.0 * noise_floor);
    EXPECT_GT(lower, 10.0 * noise_floor);
    // Sidebands are depth/2 of the carrier.
    EXPECT_NEAR(upper / carrier, am.depth / 2.0, 0.1);
}

TEST(ModulationTest, DownconversionRecoversBasebandTone)
{
    AmConfig am;
    am.carrier_hz = 1e6;
    am.sample_rate = 8e6;
    am.depth = 0.8;
    const double env_rate = 1e6;
    const double f_loop = 50e3;
    std::vector<double> env(std::size_t(env_rate * 0.02));
    for (std::size_t i = 0; i < env.size(); ++i) {
        env[i] = std::sin(2.0 * std::numbers::pi * f_loop *
                          double(i) / env_rate);
    }
    const auto rf = eddie::sig::amModulate(env, env_rate, am);

    ReceiverConfig rx;
    rx.center_hz = am.carrier_hz;
    rx.sample_rate = am.sample_rate;
    rx.bandwidth_hz = 400e3;
    rx.decimation = 8;
    const auto iq = eddie::sig::iqDownconvert(rf, rx);
    ASSERT_GT(iq.size(), 4096u);

    // The recovered baseband should show the +-f_loop pair.
    std::vector<Complex> chunk(iq.begin() + 1024,
                               iq.begin() + 1024 + 4096);
    eddie::sig::fft(chunk);
    std::vector<double> power(chunk.size());
    for (std::size_t i = 0; i < chunk.size(); ++i)
        power[i] = std::norm(chunk[i]);
    const double fs_iq = am.sample_rate / double(rx.decimation);
    const auto up = eddie::sig::frequencyToBin(f_loop, chunk.size(),
                                               fs_iq);
    const auto down = eddie::sig::frequencyToBin(-f_loop, chunk.size(),
                                                 fs_iq);
    double others = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 10; i < chunk.size() - 10; ++i) {
        if (i + 3 > up && i < up + 3)
            continue;
        if (i + 3 > down && i < down + 3)
            continue;
        others += power[i];
        ++count;
    }
    const double avg_other = others / double(count);
    EXPECT_GT(power[up], 100.0 * avg_other);
    EXPECT_GT(power[down], 100.0 * avg_other);
}

TEST(ModulationTest, CarrierAboveNyquistThrows)
{
    AmConfig am;
    am.carrier_hz = 5e6;
    am.sample_rate = 8e6;
    std::vector<double> env(128, 0.0);
    EXPECT_THROW(eddie::sig::amModulate(env, 1e6, am),
                 std::invalid_argument);
}

} // namespace
