#include <gtest/gtest.h>

#include "sig/spectrum.h"

namespace
{

TEST(SpectrumTest, PowerToDb)
{
    EXPECT_DOUBLE_EQ(eddie::sig::powerToDb(1.0), 0.0);
    EXPECT_DOUBLE_EQ(eddie::sig::powerToDb(100.0), 20.0);
    EXPECT_DOUBLE_EQ(eddie::sig::powerToDb(0.0), -200.0);
    EXPECT_DOUBLE_EQ(eddie::sig::powerToDb(0.0, -120.0), -120.0);
    // Floor clamps very small values.
    EXPECT_DOUBLE_EQ(eddie::sig::powerToDb(1e-30, -120.0), -120.0);
}

TEST(SpectrumTest, SpectrumToDb)
{
    const auto db = eddie::sig::spectrumToDb({1.0, 10.0, 0.0});
    ASSERT_EQ(db.size(), 3u);
    EXPECT_DOUBLE_EQ(db[0], 0.0);
    EXPECT_DOUBLE_EQ(db[1], 10.0);
    EXPECT_DOUBLE_EQ(db[2], -200.0);
}

TEST(SpectrumTest, AverageSpectrum)
{
    eddie::sig::Spectrogram sg;
    sg.power = {{1.0, 2.0}, {3.0, 4.0}};
    sg.frame_time = {0.0, 0.5};
    const auto avg = eddie::sig::averageSpectrum(sg);
    ASSERT_EQ(avg.size(), 2u);
    EXPECT_DOUBLE_EQ(avg[0], 2.0);
    EXPECT_DOUBLE_EQ(avg[1], 3.0);
}

TEST(SpectrumTest, AverageOfEmptySpectrogram)
{
    eddie::sig::Spectrogram sg;
    EXPECT_TRUE(eddie::sig::averageSpectrum(sg).empty());
}

TEST(SpectrumTest, TotalPower)
{
    EXPECT_DOUBLE_EQ(eddie::sig::totalPower({1.0, 2.0, 3.0}), 6.0);
    EXPECT_DOUBLE_EQ(eddie::sig::totalPower({}), 0.0);
}

} // namespace
