/**
 * @file
 * Equivalence tests for the vectorized signal-synthesis kernels:
 * the fused decimating FIR must be bit-identical to filter-then-
 * decimate, the phasor oscillators must track the direct trig
 * evaluation to 1e-9 over a full second of samples, and the blocked
 * Box-Muller AWGN generator must produce white Gaussian noise at the
 * requested SNR.
 */

#include <cmath>
#include <numbers>
#include <random>

#include <gtest/gtest.h>

#include "sig/fft.h"
#include "sig/filter.h"
#include "sig/modulation.h"
#include "sig/noise.h"
#include "sig/oscillator.h"

namespace
{

using eddie::sig::Complex;

std::vector<double>
randomSignal(std::size_t n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> x(n);
    for (auto &v : x)
        v = dist(rng);
    return x;
}

TEST(KernelsTest, FirDecimateBitIdenticalToFilterThenDecimateDouble)
{
    const auto h = eddie::sig::designLowPass(1000.0, 10000.0, 63);
    for (std::size_t n : {std::size_t(0), std::size_t(1),
                          std::size_t(31), std::size_t(64),
                          std::size_t(1000), std::size_t(4096)}) {
        const auto x = randomSignal(n, 17 + n);
        for (std::size_t factor : {1u, 2u, 3u, 4u, 7u, 16u}) {
            const auto fused = eddie::sig::firDecimate(x, h, factor);
            const auto reference = eddie::sig::decimate(
                eddie::sig::firFilter(x, h), factor);
            ASSERT_EQ(fused.size(), reference.size())
                << "n=" << n << " factor=" << factor;
            for (std::size_t i = 0; i < fused.size(); ++i) {
                // Bit-identical, not merely close.
                EXPECT_EQ(fused[i], reference[i])
                    << "n=" << n << " factor=" << factor
                    << " i=" << i;
            }
        }
    }
}

TEST(KernelsTest, FirDecimateBitIdenticalToFilterThenDecimateComplex)
{
    const auto h = eddie::sig::designLowPass(1000.0, 10000.0, 101);
    const auto re = randomSignal(3000, 5);
    const auto im = randomSignal(3000, 6);
    std::vector<Complex> x(re.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = Complex(re[i], im[i]);
    for (std::size_t factor : {1u, 2u, 4u, 8u}) {
        const auto fused = eddie::sig::firDecimate(x, h, factor);
        const auto reference =
            eddie::sig::decimate(eddie::sig::firFilter(x, h), factor);
        ASSERT_EQ(fused.size(), reference.size());
        for (std::size_t i = 0; i < fused.size(); ++i) {
            EXPECT_EQ(fused[i].real(), reference[i].real())
                << "factor=" << factor << " i=" << i;
            EXPECT_EQ(fused[i].imag(), reference[i].imag())
                << "factor=" << factor << " i=" << i;
        }
    }
}

TEST(KernelsTest, PhasorTracksTrigOverOneSecondOfSamples)
{
    // One full second at 2 MS/s. Direct libm evaluation is the
    // reference; the phasor recurrence re-anchors every
    // kResyncInterval samples and must stay within 1e-9.
    const double fs = 2e6;
    const double freq = 314159.0;
    const double phase0 = 0.7;
    const double w = 2.0 * std::numbers::pi * freq;
    const std::size_t n = std::size_t(fs);

    eddie::sig::PhasorOscillator osc(freq, fs, phase0);
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = double(i) / fs;
        const Complex expected(std::cos(w * t + phase0),
                               std::sin(w * t + phase0));
        worst = std::max(worst, std::abs(osc.next() - expected));
    }
    EXPECT_LT(worst, 1e-9);
}

TEST(KernelsTest, AmModulateMatchesTrigReference)
{
    eddie::sig::AmConfig am;
    am.carrier_hz = 1e6;
    am.sample_rate = 8e6;
    am.depth = 0.8;
    const double env_rate = 1e6;
    const auto envelope = randomSignal(50000, 23);

    const auto rf = eddie::sig::amModulate(envelope, env_rate, am);

    // Trig reference with the same integer zero-order-hold cadence.
    const auto env = eddie::sig::normalizeEnvelope(envelope);
    const double w = 2.0 * std::numbers::pi * am.carrier_hz;
    const std::uint64_t env_step =
        std::uint64_t(std::llround(env_rate * 1e6));
    const std::uint64_t rf_step =
        std::uint64_t(std::llround(am.sample_rate * 1e6));
    std::size_t j = 0;
    std::uint64_t acc = 0;
    ASSERT_EQ(rf.size(),
              std::size_t(double(env.size()) / env_rate *
                          am.sample_rate));
    for (std::size_t i = 0; i < rf.size(); ++i) {
        const double t = double(i) / am.sample_rate;
        const double expected = am.amplitude *
            (1.0 + am.depth * env[j]) * std::cos(w * t);
        EXPECT_NEAR(rf[i], expected, 1e-9) << "i=" << i;
        acc += env_step;
        while (acc >= rf_step) {
            acc -= rf_step;
            if (j < env.size() - 1)
                ++j;
        }
    }
}

TEST(KernelsTest, AmModulateZeroOrderHoldCadenceIsExact)
{
    // With fs = 3 * envelope rate and a DC carrier, every envelope
    // sample must be held for exactly three RF samples — the integer
    // phase accumulator cannot drift the way the old per-sample
    // t * envelope_rate rounding could.
    eddie::sig::AmConfig am;
    am.carrier_hz = 0.0; // cos term is exactly 1
    am.sample_rate = 3e6;
    am.depth = 1.0;
    const double env_rate = 1e6;
    const auto envelope = randomSignal(10000, 31);

    const auto rf = eddie::sig::amModulate(envelope, env_rate, am);
    const auto env = eddie::sig::normalizeEnvelope(envelope);
    ASSERT_EQ(rf.size(), 3 * envelope.size());
    for (std::size_t j = 0; j < envelope.size(); ++j) {
        for (std::size_t k = 0; k < 3; ++k) {
            // A DC carrier contributes exactly 1.0, so the RF sample
            // equals the held envelope sample bit for bit.
            EXPECT_EQ(rf[3 * j + k], 1.0 + env[j])
                << "j=" << j << " k=" << k;
        }
    }
}

TEST(KernelsTest, IqDownconvertMatchesTrigReference)
{
    eddie::sig::ReceiverConfig rx;
    rx.center_hz = 1e6;
    rx.sample_rate = 8e6;
    rx.bandwidth_hz = 400e3;
    rx.decimation = 4;
    const auto rf = randomSignal(100000, 41);

    const auto iq = eddie::sig::iqDownconvert(rf, rx);

    // Reference: trig mixer, then separate filter and decimation.
    const double w = 2.0 * std::numbers::pi * rx.center_hz;
    std::vector<Complex> mixed(rf.size());
    for (std::size_t i = 0; i < rf.size(); ++i) {
        const double t = double(i) / rx.sample_rate;
        mixed[i] = 2.0 * rf[i] *
            Complex(std::cos(w * t), -std::sin(w * t));
    }
    const auto h = eddie::sig::designLowPass(
        rx.bandwidth_hz, rx.sample_rate, rx.fir_taps);
    const auto reference = eddie::sig::decimate(
        eddie::sig::firFilter(mixed, h), rx.decimation);
    ASSERT_EQ(iq.size(), reference.size());
    for (std::size_t i = 0; i < iq.size(); ++i)
        EXPECT_LT(std::abs(iq[i] - reference[i]), 1e-9) << "i=" << i;
}

TEST(KernelsTest, GaussianBlockHasStandardNormalMoments)
{
    std::mt19937_64 rng(2024);
    std::vector<double> z(2'000'000);
    eddie::sig::gaussianBlock(rng, z.data(), z.size());

    double mean = 0.0;
    for (double v : z)
        mean += v;
    mean /= double(z.size());
    double var = 0.0, skew = 0.0, kurt = 0.0;
    for (double v : z) {
        const double d = v - mean;
        var += d * d;
        skew += d * d * d;
        kurt += d * d * d * d;
    }
    var /= double(z.size());
    skew /= double(z.size()) * std::pow(var, 1.5);
    kurt /= double(z.size()) * var * var;

    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(var, 1.0, 0.01);
    EXPECT_NEAR(skew, 0.0, 0.02);
    EXPECT_NEAR(kurt, 3.0, 0.05);
}

TEST(KernelsTest, GaussianBlockIsSpectrallyFlat)
{
    std::mt19937_64 rng(7);
    std::vector<double> z(65536);
    eddie::sig::gaussianBlock(rng, z.data(), z.size());

    const auto spec = eddie::sig::fftReal(z);
    // Average power in 8 equal bands of the positive spectrum; white
    // noise puts the same power everywhere.
    const std::size_t half = z.size() / 2;
    const std::size_t band = half / 8;
    std::vector<double> band_power(8, 0.0);
    for (std::size_t b = 0; b < 8; ++b) {
        for (std::size_t i = 1 + b * band; i < 1 + (b + 1) * band &&
             i < half;
             ++i)
            band_power[b] += std::norm(spec[i]);
        band_power[b] /= double(band);
    }
    double avg = 0.0;
    for (double p : band_power)
        avg += p;
    avg /= 8.0;
    for (std::size_t b = 0; b < 8; ++b) {
        EXPECT_NEAR(band_power[b] / avg, 1.0, 0.15) << "band " << b;
    }
}

TEST(KernelsTest, AwgnHitsRequestedSnrAcrossLevels)
{
    std::vector<double> signal(200000);
    for (std::size_t i = 0; i < signal.size(); ++i)
        signal[i] = std::sin(0.01 * double(i));
    double ps = 0.0;
    for (double v : signal)
        ps += v * v;
    ps /= double(signal.size());

    for (double snr_db : {0.0, 10.0, 30.0}) {
        auto noisy = signal;
        eddie::sig::NoiseSource noise(std::uint64_t(100 + snr_db));
        noise.addAwgn(noisy, snr_db);
        double pn = 0.0;
        for (std::size_t i = 0; i < signal.size(); ++i) {
            const double d = noisy[i] - signal[i];
            pn += d * d;
        }
        pn /= double(signal.size());
        EXPECT_NEAR(10.0 * std::log10(ps / pn), snr_db, 0.25)
            << "snr " << snr_db;
    }

    for (double snr_db : {0.0, 10.0, 30.0}) {
        std::vector<Complex> sig_c(200000, Complex(1.0, 0.0));
        eddie::sig::NoiseSource noise(std::uint64_t(200 + snr_db));
        auto noisy = sig_c;
        noise.addAwgn(noisy, snr_db);
        double pn = 0.0;
        for (std::size_t i = 0; i < sig_c.size(); ++i)
            pn += std::norm(noisy[i] - sig_c[i]);
        pn /= double(sig_c.size());
        EXPECT_NEAR(10.0 * std::log10(1.0 / pn), snr_db, 0.25)
            << "snr " << snr_db;
    }
}

} // namespace
