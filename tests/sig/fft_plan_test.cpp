/**
 * @file
 * FftPlan equivalence tests: the planned transforms (radix-2 tables,
 * cached Bluestein, real-input fast path) must agree with a naive
 * O(n^2) DFT for every size, and with the free fft() functions.
 */

#include <cmath>
#include <numbers>
#include <random>

#include <gtest/gtest.h>

#include "sig/fft_plan.h"

namespace
{

using eddie::sig::Complex;
using eddie::sig::FftPlan;

std::vector<Complex>
randomSignal(std::size_t n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    std::vector<Complex> x(n);
    for (auto &v : x)
        v = Complex(d(rng), d(rng));
    return x;
}

std::vector<double>
randomRealSignal(std::size_t n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    std::vector<double> x(n);
    for (auto &v : x)
        v = d(rng);
    return x;
}

/** O(n^2) reference DFT. */
std::vector<Complex>
naiveDft(const std::vector<Complex> &x)
{
    const std::size_t n = x.size();
    std::vector<Complex> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        Complex acc(0.0, 0.0);
        for (std::size_t j = 0; j < n; ++j) {
            const double ang = -2.0 * std::numbers::pi *
                double(j * k % n) / double(n);
            acc += x[j] * Complex(std::cos(ang), std::sin(ang));
        }
        out[k] = acc;
    }
    return out;
}

TEST(FftPlanTest, MatchesNaiveDftForAllSizesUpTo64)
{
    // Covers every radix-2 size and every Bluestein size in range.
    for (std::size_t n = 1; n <= 64; ++n) {
        auto x = randomSignal(n, n);
        const auto ref = naiveDft(x);
        FftPlan plan(n);
        EXPECT_EQ(plan.size(), n);
        plan.forward(x);
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_NEAR(std::abs(x[i] - ref[i]), 0.0, 1e-8)
                << "n=" << n << " bin " << i;
        }
    }
}

TEST(FftPlanTest, MatchesNaiveDftForLargerBluesteinSizes)
{
    for (std::size_t n : {100u, 257u, 1000u}) {
        auto x = randomSignal(n, 31 * n);
        const auto ref = naiveDft(x);
        FftPlan plan(n);
        plan.forward(x);
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_NEAR(std::abs(x[i] - ref[i]), 0.0, 1e-7)
                << "n=" << n << " bin " << i;
        }
    }
}

TEST(FftPlanTest, RealFastPathMatchesNaiveDft)
{
    // Even sizes only; includes half-sizes that are themselves
    // non-powers-of-two (nested Bluestein) and the STFT's 2048.
    for (std::size_t n : {2u, 4u, 6u, 10u, 12u, 20u, 64u, 100u, 250u,
                          1024u, 2048u}) {
        const auto x = randomRealSignal(n, 7 * n + 1);
        std::vector<Complex> cx(n);
        for (std::size_t i = 0; i < n; ++i)
            cx[i] = Complex(x[i], 0.0);
        const auto ref = naiveDft(cx);

        FftPlan plan(n);
        ASSERT_TRUE(plan.hasRealFastPath()) << "n=" << n;
        std::vector<Complex> out(n);
        plan.forwardReal(x.data(), out.data());
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_NEAR(std::abs(out[i] - ref[i]), 0.0,
                        1e-7 * double(n))
                << "n=" << n << " bin " << i;
        }
    }
}

TEST(FftPlanTest, OddSizesHaveNoRealFastPath)
{
    EXPECT_FALSE(FftPlan(1).hasRealFastPath());
    EXPECT_FALSE(FftPlan(17).hasRealFastPath());
    EXPECT_TRUE(FftPlan(2).hasRealFastPath());
}

TEST(FftPlanTest, InverseRoundTrip)
{
    for (std::size_t n : {8u, 100u, 1024u}) {
        auto x = randomSignal(n, 13 * n);
        const auto orig = x;
        FftPlan plan(n);
        plan.forward(x);
        plan.inverse(x);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-9)
                << "n=" << n;
    }
}

TEST(FftPlanTest, AgreesWithFreeFunctions)
{
    for (std::size_t n : {16u, 100u}) {
        auto via_plan = randomSignal(n, 3 * n);
        auto via_free = via_plan;
        FftPlan plan(n);
        plan.forward(via_plan);
        eddie::sig::fft(via_free);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_NEAR(std::abs(via_plan[i] - via_free[i]), 0.0,
                        1e-12);
    }
}

TEST(FftPlanTest, PlanIsReusableAcrossTransforms)
{
    FftPlan plan(32);
    auto a = randomSignal(32, 1);
    auto b = randomSignal(32, 2);
    const auto ra = naiveDft(a);
    const auto rb = naiveDft(b);
    plan.forward(a);
    plan.forward(b);
    for (std::size_t i = 0; i < 32; ++i) {
        ASSERT_NEAR(std::abs(a[i] - ra[i]), 0.0, 1e-9);
        ASSERT_NEAR(std::abs(b[i] - rb[i]), 0.0, 1e-9);
    }
}

} // namespace
