#include <gtest/gtest.h>

#include "sig/window.h"

namespace
{

using eddie::sig::WindowType;

class WindowParamTest : public ::testing::TestWithParam<WindowType>
{
};

TEST_P(WindowParamTest, CoefficientsWithinUnitRange)
{
    const auto w = eddie::sig::makeWindow(GetParam(), 256);
    ASSERT_EQ(w.size(), 256u);
    for (double v : w) {
        EXPECT_GE(v, -1e-12);
        EXPECT_LE(v, 1.0 + 1e-12);
    }
}

TEST_P(WindowParamTest, SymmetricAboutCenter)
{
    const std::size_t n = 128;
    const auto w = eddie::sig::makeWindow(GetParam(), n);
    // Periodic windows satisfy w[i] == w[n - i].
    for (std::size_t i = 1; i < n / 2; ++i)
        EXPECT_NEAR(w[i], w[n - i], 1e-12) << "i=" << i;
}

TEST_P(WindowParamTest, EnergyPositive)
{
    const auto w = eddie::sig::makeWindow(GetParam(), 64);
    EXPECT_GT(eddie::sig::windowEnergy(w), 0.0);
}

TEST_P(WindowParamTest, NameNonEmpty)
{
    EXPECT_FALSE(eddie::sig::windowName(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(AllWindows, WindowParamTest,
                         ::testing::Values(WindowType::Rectangular,
                                           WindowType::Hann,
                                           WindowType::Hamming,
                                           WindowType::Blackman));

TEST(WindowTest, RectangularIsAllOnes)
{
    const auto w = eddie::sig::makeWindow(WindowType::Rectangular, 16);
    for (double v : w)
        EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(WindowTest, HannStartsAtZero)
{
    const auto w = eddie::sig::makeWindow(WindowType::Hann, 64);
    EXPECT_NEAR(w[0], 0.0, 1e-12);
    EXPECT_NEAR(w[32], 1.0, 1e-12); // peak at center
}

TEST(WindowTest, ZeroLength)
{
    EXPECT_TRUE(eddie::sig::makeWindow(WindowType::Hann, 0).empty());
}

} // namespace
