#include <cmath>
#include <limits>
#include <numbers>
#include <random>

#include <gtest/gtest.h>

#include "sig/fft.h"

namespace
{

using eddie::sig::Complex;

std::vector<Complex>
randomSignal(std::size_t n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    std::vector<Complex> x(n);
    for (auto &v : x)
        v = Complex(d(rng), d(rng));
    return x;
}

/** O(n^2) reference DFT. */
std::vector<Complex>
naiveDft(const std::vector<Complex> &x)
{
    const std::size_t n = x.size();
    std::vector<Complex> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        Complex acc(0.0, 0.0);
        for (std::size_t j = 0; j < n; ++j) {
            const double ang = -2.0 * std::numbers::pi *
                double(j * k % n) / double(n);
            acc += x[j] * Complex(std::cos(ang), std::sin(ang));
        }
        out[k] = acc;
    }
    return out;
}

TEST(FftTest, PowerOfTwoHelpers)
{
    EXPECT_TRUE(eddie::sig::isPowerOfTwo(1));
    EXPECT_TRUE(eddie::sig::isPowerOfTwo(1024));
    EXPECT_FALSE(eddie::sig::isPowerOfTwo(0));
    EXPECT_FALSE(eddie::sig::isPowerOfTwo(1000));
    EXPECT_EQ(eddie::sig::nextPowerOfTwo(1000), 1024u);
    EXPECT_EQ(eddie::sig::nextPowerOfTwo(1024), 1024u);
    EXPECT_EQ(eddie::sig::nextPowerOfTwo(1), 1u);
}

TEST(FftTest, MatchesNaiveDftPowerOfTwo)
{
    auto x = randomSignal(64, 1);
    auto ref = naiveDft(x);
    eddie::sig::fft(x);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(std::abs(x[i] - ref[i]), 0.0, 1e-9) << "bin " << i;
}

TEST(FftTest, MatchesNaiveDftNonPowerOfTwo)
{
    for (std::size_t n : {3u, 5u, 12u, 100u, 257u}) {
        auto x = randomSignal(n, n);
        auto ref = naiveDft(x);
        eddie::sig::fft(x);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(std::abs(x[i] - ref[i]), 0.0, 1e-8)
                << "n=" << n << " bin " << i;
        }
    }
}

TEST(FftTest, InverseRoundTrip)
{
    for (std::size_t n : {8u, 100u, 1024u}) {
        auto x = randomSignal(n, 7 * n);
        auto orig = x;
        eddie::sig::fft(x);
        eddie::sig::ifft(x);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-9);
    }
}

TEST(FftTest, ParsevalEnergyConservation)
{
    auto x = randomSignal(256, 42);
    double time_energy = 0.0;
    for (const auto &v : x)
        time_energy += std::norm(v);
    eddie::sig::fft(x);
    double freq_energy = 0.0;
    for (const auto &v : x)
        freq_energy += std::norm(v);
    EXPECT_NEAR(freq_energy / double(x.size()), time_energy, 1e-6);
}

TEST(FftTest, SineLandsInExpectedBin)
{
    const std::size_t n = 1024;
    const double fs = 1000.0;
    const double f0 = fs * 100.0 / double(n); // exactly bin 100
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = std::sin(2.0 * std::numbers::pi * f0 * double(i) / fs);
    }
    auto spec = eddie::sig::fftReal(x);
    std::size_t best = 0;
    for (std::size_t i = 1; i <= n / 2; ++i)
        if (std::abs(spec[i]) > std::abs(spec[best]))
            best = i;
    EXPECT_EQ(best, 100u);
}

TEST(FftTest, BinFrequencyMapping)
{
    EXPECT_DOUBLE_EQ(eddie::sig::binToFrequency(0, 1024, 1000.0), 0.0);
    EXPECT_NEAR(eddie::sig::binToFrequency(100, 1024, 1000.0),
                97.65625, 1e-9);
    // Upper half maps to negative frequencies.
    EXPECT_LT(eddie::sig::binToFrequency(1000, 1024, 1000.0), 0.0);
    // Round trip.
    for (std::size_t bin : {1u, 100u, 512u, 1000u}) {
        const double f = eddie::sig::binToFrequency(bin, 1024, 48000.0);
        EXPECT_EQ(eddie::sig::frequencyToBin(f, 1024, 48000.0), bin);
    }
}

TEST(FftTest, NextPowerOfTwoGuardsAgainstShiftOverflow)
{
    // Above the largest representable power of two the shift loop
    // would wrap to zero and spin forever; it must throw instead.
    const std::size_t max_pow = std::size_t{1}
        << (std::numeric_limits<std::size_t>::digits - 1);
    EXPECT_EQ(eddie::sig::nextPowerOfTwo(max_pow), max_pow);
    EXPECT_EQ(eddie::sig::nextPowerOfTwo(max_pow - 1), max_pow);
    EXPECT_THROW(eddie::sig::nextPowerOfTwo(max_pow + 1),
                 std::overflow_error);
    EXPECT_THROW(eddie::sig::nextPowerOfTwo(
                     std::numeric_limits<std::size_t>::max()),
                 std::overflow_error);
    EXPECT_EQ(eddie::sig::nextPowerOfTwo(0), 1u);
}

TEST(FftTest, FrequencyToBinExactNegativeFrequencies)
{
    // Exactly-negative frequencies map straight back to their bin;
    // rounding must happen before wrapping so no precision is lost
    // in the k + n round-trip.
    const double fs = 48000.0;
    for (std::size_t n : {1024u, 4096u}) {
        for (std::size_t bin :
             {n / 2 + 1, n / 2 + 7, n - 2, n - 1}) {
            const double f = eddie::sig::binToFrequency(bin, n, fs);
            ASSERT_LT(f, 0.0);
            EXPECT_EQ(eddie::sig::frequencyToBin(f, n, fs), bin)
                << "n=" << n << " bin=" << bin;
        }
    }
    // A tiny negative frequency rounds to bin 0 (the nearest bin),
    // never to the out-of-range bin n.
    EXPECT_EQ(eddie::sig::frequencyToBin(-1e-9, 1024, 48000.0), 0u);
    // Precision: beyond 2^53, n - 1 is not representable in a
    // double, so the old wrap-then-round path (k + n computed in the
    // double domain) collapsed -1/n to bin 0; rounding first keeps
    // it at bin n - 1.
    const std::size_t big = std::size_t{1} << 54;
    EXPECT_EQ(eddie::sig::frequencyToBin(-1.0 / double(big), big, 1.0),
              big - 1);
}

TEST(FftTest, EmptyAndSingleElement)
{
    std::vector<Complex> empty;
    eddie::sig::fft(empty); // must not crash
    std::vector<Complex> one{Complex(3.0, -1.0)};
    eddie::sig::fft(one);
    EXPECT_NEAR(std::abs(one[0] - Complex(3.0, -1.0)), 0.0, 1e-12);
}

} // namespace
