#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "sig/noise.h"

namespace
{

using eddie::sig::Complex;
using eddie::sig::NoiseSource;

double
power(const std::vector<double> &x)
{
    double p = 0.0;
    for (double v : x)
        p += v * v;
    return p / double(x.size());
}

TEST(NoiseTest, AwgnHitsRequestedSnr)
{
    std::vector<double> signal(100000);
    for (std::size_t i = 0; i < signal.size(); ++i)
        signal[i] = std::sin(0.01 * double(i));
    const double ps = power(signal);

    auto noisy = signal;
    NoiseSource noise(7);
    noise.addAwgn(noisy, 10.0); // 10 dB SNR
    std::vector<double> delta(signal.size());
    for (std::size_t i = 0; i < signal.size(); ++i)
        delta[i] = noisy[i] - signal[i];
    const double pn = power(delta);
    EXPECT_NEAR(10.0 * std::log10(ps / pn), 10.0, 0.3);
}

TEST(NoiseTest, AwgnComplexSplitsAcrossIq)
{
    std::vector<Complex> signal(100000, Complex(1.0, 0.0));
    NoiseSource noise(9);
    auto noisy = signal;
    noise.addAwgn(noisy, 20.0);
    double pn = 0.0;
    for (std::size_t i = 0; i < signal.size(); ++i)
        pn += std::norm(noisy[i] - signal[i]);
    pn /= double(signal.size());
    EXPECT_NEAR(10.0 * std::log10(1.0 / pn), 20.0, 0.3);
}

TEST(NoiseTest, AwgnOnSilenceIsNoOp)
{
    std::vector<double> zeros(256, 0.0);
    NoiseSource noise(11);
    noise.addAwgn(zeros, 10.0);
    for (double v : zeros)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NoiseTest, ToneHasRequestedAmplitude)
{
    std::vector<double> x(4096, 0.0);
    NoiseSource noise(13);
    noise.addTone(x, 100.0, 1000.0, 0.5);
    // RMS of a 0.5-amplitude tone is 0.5/sqrt(2).
    EXPECT_NEAR(std::sqrt(power(x)), 0.5 / std::sqrt(2.0), 0.02);
}

TEST(NoiseTest, Deterministic)
{
    std::vector<double> a(64, 1.0), b(64, 1.0);
    NoiseSource na(42), nb(42);
    na.addAwgn(a, 10.0);
    nb.addAwgn(b, 10.0);
    EXPECT_EQ(a, b);
}

} // namespace
