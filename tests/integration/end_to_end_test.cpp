/**
 * @file
 * End-to-end integration: simulate, train, and monitor real
 * workloads through the full pipeline, on both signal paths.
 */

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "inject/scenarios.h"

namespace
{

using namespace eddie;
using core::Pipeline;
using core::PipelineConfig;

PipelineConfig
smallConfig(core::SignalPath path = core::SignalPath::Power)
{
    PipelineConfig cfg;
    cfg.train_runs = 5;
    cfg.path = path;
    return cfg;
}

TEST(EndToEndTest, BitcountCleanRunLowFalsePositives)
{
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.3),
                  smallConfig());
    const auto model = pipe.trainModel();
    const auto ev = pipe.monitorRun(model, 500);
    EXPECT_GT(ev.metrics.groups, 50u);
    const double fp = double(ev.metrics.false_positives) /
        double(ev.metrics.groups);
    EXPECT_LT(fp, 0.05);
}

TEST(EndToEndTest, BitcountLoopInjectionDetected)
{
    auto w = workloads::makeWorkload("bitcount", 0.3);
    const auto target = inject::defaultTargetLoop(w);
    Pipeline pipe(std::move(w), smallConfig());
    const auto model = pipe.trainModel();
    const auto ev = pipe.monitorRun(
        model, 501,
        inject::canonicalLoopInjection(target, 1.0, 501));
    ASSERT_GT(ev.metrics.injected_groups, 0u);
    EXPECT_FALSE(ev.reports.empty());
    EXPECT_GE(ev.metrics.detection_latency, 0.0);
    EXPECT_LT(ev.metrics.detection_latency, 0.02); // < 20 ms
    const double tpr = double(ev.metrics.true_positives) /
        double(ev.metrics.injected_groups);
    EXPECT_GT(tpr, 0.5);
}

TEST(EndToEndTest, BurstInjectionDetected)
{
    auto w = workloads::makeWorkload("bitcount", 0.3);
    Pipeline pipe(std::move(w), smallConfig());
    const auto model = pipe.trainModel();
    const auto ev = pipe.monitorRun(
        model, 502, inject::shellBurst(pipe.workload(), 0, 1, 502));
    ASSERT_GT(ev.metrics.injected_groups, 0u);
    EXPECT_FALSE(ev.reports.empty());
    EXPECT_GE(ev.metrics.detection_latency, 0.0);
}

TEST(EndToEndTest, EmBasebandPathWorks)
{
    auto cfg = smallConfig(core::SignalPath::EmBaseband);
    cfg.channel.snr_db = 25.0;
    cfg.channel.interferers.push_back({3.7e6, 0.05});
    // Large enough that every loop region collects training STSs;
    // untrained regions are blind spots by design.
    auto w = workloads::makeWorkload("sha", 0.6);
    const auto target = inject::defaultTargetLoop(w);
    Pipeline pipe(std::move(w), cfg);
    const auto model = pipe.trainModel();

    const auto clean = pipe.monitorRun(model, 503);
    const double fp = double(clean.metrics.false_positives) /
        double(std::max<std::size_t>(clean.metrics.groups, 1));
    EXPECT_LT(fp, 0.08);

    const auto injected = pipe.monitorRun(
        model, 504,
        inject::canonicalLoopInjection(target, 1.0, 504));
    EXPECT_FALSE(injected.reports.empty());
}

TEST(EndToEndTest, LowContaminationStillDetectedEventually)
{
    auto w = workloads::makeWorkload("bitcount", 0.3);
    const auto target = inject::defaultTargetLoop(w);
    Pipeline pipe(std::move(w), smallConfig());
    const auto model = pipe.trainModel();
    const auto ev = pipe.monitorRun(
        model, 505,
        inject::canonicalLoopInjection(target, 0.5, 505));
    ASSERT_GT(ev.metrics.injected_groups, 0u);
    EXPECT_FALSE(ev.reports.empty());
}

TEST(EndToEndTest, CalibrationRegressionGuard)
{
    // Pins the tuned end-to-end quality levels (see DESIGN.md §6 for
    // the mechanisms behind them); if one of these regresses, a
    // monitor/trainer change broke the calibration, not this test.
    auto cfg = smallConfig();
    cfg.train_runs = 6;
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.5), cfg);
    const auto model = pipe.trainModel();

    // Clean: high coverage, low FP.
    std::size_t groups = 0, fp = 0, covered = 0, labeled = 0;
    for (std::uint64_t seed : {900u, 901u}) {
        const auto ev = pipe.monitorRun(model, seed);
        groups += ev.metrics.groups;
        fp += ev.metrics.false_positives;
        covered += ev.metrics.covered_steps;
        labeled += ev.metrics.labeled_steps;
    }
    EXPECT_LT(double(fp) / double(groups), 0.02);
    EXPECT_GT(double(covered) / double(labeled), 0.85);

    // Injected: high TPR, sub-5-ms latency.
    const auto target = inject::defaultTargetLoop(pipe.workload());
    const auto ev = pipe.monitorRun(
        model, 902, inject::canonicalLoopInjection(target, 1.0, 902));
    ASSERT_GT(ev.metrics.injected_groups, 0u);
    EXPECT_GT(double(ev.metrics.true_positives) /
                  double(ev.metrics.injected_groups),
              0.9);
    ASSERT_GE(ev.metrics.detection_latency, 0.0);
    EXPECT_LT(ev.metrics.detection_latency, 0.005);
}

TEST(EndToEndTest, ModelRoundTripPreservesBehaviour)
{
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.25),
                  smallConfig());
    const auto model = pipe.trainModel();
    std::stringstream ss;
    core::saveModel(model, ss);
    const auto loaded = core::loadModel(ss);

    const auto a = pipe.monitorRun(model, 506);
    const auto b = pipe.monitorRun(loaded, 506);
    EXPECT_EQ(a.metrics.false_positives, b.metrics.false_positives);
    EXPECT_EQ(a.reports.size(), b.reports.size());
}

} // namespace
