/**
 * @file
 * Tests of the channel fault-injection subsystem: determinism and
 * per-class stream independence, the physical effect of each fault
 * class, and config validation.
 */

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "core/errors.h"
#include "faults/fault_injector.h"

namespace
{

using namespace eddie;
using faults::FaultConfig;
using faults::FaultEpisode;
using faults::FaultKind;

constexpr double kRate = 1e6; // 1 MS/s, 10 ms captures below

std::vector<double>
toneSignal(std::size_t n)
{
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::sin(2.0 * std::numbers::pi * 0.01 * double(i));
    return x;
}

std::vector<sig::Complex>
toneIq(std::size_t n)
{
    std::vector<sig::Complex> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = 2.0 * std::numbers::pi * 0.01 * double(i);
        x[i] = sig::Complex(std::cos(a), std::sin(a));
    }
    return x;
}

FaultConfig
allFaults()
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.dropout.rate_hz = 300.0;
    cfg.snr_collapse.rate_hz = 300.0;
    cfg.interference.rate_hz = 300.0;
    cfg.drift_max_hz = 500.0;
    cfg.frame_truncate_prob = 0.1;
    cfg.frame_corrupt_prob = 0.1;
    return cfg;
}

std::vector<FaultEpisode>
ofKind(const std::vector<FaultEpisode> &log, FaultKind kind)
{
    std::vector<FaultEpisode> out;
    for (const auto &ep : log)
        if (ep.kind == kind)
            out.push_back(ep);
    return out;
}

bool
sameEpisodes(const std::vector<FaultEpisode> &a,
             const std::vector<FaultEpisode> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].kind != b[i].kind || a[i].t_start != b[i].t_start ||
            a[i].t_end != b[i].t_end)
            return false;
    }
    return true;
}

TEST(FaultInjectorTest, DisabledIsExactNoOp)
{
    const auto clean = toneSignal(10000);
    auto x = clean;
    FaultConfig cfg = allFaults();
    cfg.enabled = false;
    const auto log = faults::applySignalFaults(x, kRate, cfg, 7);
    EXPECT_TRUE(log.empty());
    EXPECT_EQ(x, clean); // bitwise

    auto iq = toneIq(10000);
    const auto iq_clean = iq;
    EXPECT_TRUE(faults::applySignalFaults(iq, kRate, cfg, 7).empty());
    EXPECT_EQ(iq, iq_clean);
}

TEST(FaultInjectorTest, SameSeedsReproduceBitwise)
{
    auto a = toneSignal(10000);
    auto b = toneSignal(10000);
    const auto log_a = faults::applySignalFaults(a, kRate, allFaults(), 42);
    const auto log_b = faults::applySignalFaults(b, kRate, allFaults(), 42);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(sameEpisodes(log_a, log_b));
    EXPECT_FALSE(log_a.empty());
}

TEST(FaultInjectorTest, RunSeedChangesRealization)
{
    auto a = toneSignal(10000);
    auto b = toneSignal(10000);
    faults::applySignalFaults(a, kRate, allFaults(), 1);
    faults::applySignalFaults(b, kRate, allFaults(), 2);
    EXPECT_NE(a, b);
}

TEST(FaultInjectorTest, ClassStreamsAreIndependent)
{
    // Enabling interference must not move the dropout episodes.
    FaultConfig dropout_only;
    dropout_only.enabled = true;
    dropout_only.dropout.rate_hz = 400.0;

    FaultConfig both = dropout_only;
    both.interference.rate_hz = 400.0;

    auto a = toneSignal(20000);
    auto b = toneSignal(20000);
    const auto log_a = faults::applySignalFaults(a, kRate, dropout_only, 5);
    const auto log_b = faults::applySignalFaults(b, kRate, both, 5);
    EXPECT_TRUE(sameEpisodes(ofKind(log_a, FaultKind::Dropout),
                             ofKind(log_b, FaultKind::Dropout)));
    EXPECT_FALSE(ofKind(log_b, FaultKind::Interference).empty());
}

TEST(FaultInjectorTest, DropoutZeroesEpisodeSamples)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.dropout.rate_hz = 200.0;
    cfg.dropout.mean_duration_s = 5e-4;

    auto x = toneSignal(10000);
    const auto log = faults::applySignalFaults(x, kRate, cfg, 11);
    ASSERT_FALSE(log.empty());
    for (const auto &ep : log) {
        const auto i0 = std::size_t(ep.t_start * kRate);
        const auto i1 = std::min(
            x.size(), std::size_t(std::ceil(ep.t_end * kRate)));
        for (std::size_t i = i0; i < i1; ++i)
            ASSERT_EQ(x[i], 0.0) << "sample " << i;
    }
}

TEST(FaultInjectorTest, SnrCollapseRaisesEpisodePower)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.snr_collapse.rate_hz = 100.0;
    cfg.snr_collapse.mean_duration_s = 1e-3;
    cfg.snr_collapse_db = -6.0;

    const auto clean = toneSignal(20000);
    auto x = clean;
    const auto log = faults::applySignalFaults(x, kRate, cfg, 3);
    ASSERT_FALSE(log.empty());
    const auto &ep = log.front();
    const auto i0 = std::size_t(ep.t_start * kRate);
    const auto i1 =
        std::min(x.size(), std::size_t(std::ceil(ep.t_end * kRate)));
    ASSERT_GT(i1, i0 + 100u);
    double diff_power = 0.0;
    for (std::size_t i = i0; i < i1; ++i)
        diff_power += (x[i] - clean[i]) * (x[i] - clean[i]);
    diff_power /= double(i1 - i0);
    // Noise power ~ signal power * 10^(6/10) ≈ 2 * 0.5 * 4 — just
    // check it clearly dominates the ~0.5 signal power.
    EXPECT_GT(diff_power, 1.0);
}

TEST(FaultInjectorTest, DriftPreservesMagnitudeAndRotatesPhase)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.drift_max_hz = 1000.0;
    cfg.drift_period_s = 2e-3;

    const auto clean = toneIq(10000);
    auto iq = clean;
    const auto log = faults::applySignalFaults(iq, kRate, cfg, 9);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].kind, FaultKind::Drift);
    bool rotated = false;
    for (std::size_t i = 0; i < iq.size(); ++i) {
        EXPECT_NEAR(std::abs(iq[i]), std::abs(clean[i]), 1e-9);
        if (std::abs(iq[i] - clean[i]) > 1e-6)
            rotated = true;
    }
    EXPECT_TRUE(rotated);

    // Real captures have no carrier to rotate: exact no-op.
    auto x = toneSignal(1000);
    const auto real_clean = x;
    EXPECT_TRUE(faults::applySignalFaults(x, kRate, cfg, 9).empty());
    EXPECT_EQ(x, real_clean);
}

TEST(FaultInjectorTest, FrameTruncationShortensWithoutPadding)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.frame_truncate_prob = 1.0;

    std::vector<std::vector<double>> frames(
        20, std::vector<double>(10, 1e6));
    std::vector<std::vector<double> *> ptrs;
    for (auto &f : frames)
        ptrs.push_back(&f);
    const auto flags = faults::applyFrameFaults(ptrs, 2e7, cfg, 1);
    ASSERT_EQ(flags.size(), frames.size());
    for (std::size_t i = 0; i < frames.size(); ++i) {
        EXPECT_EQ(flags[i], 1);
        EXPECT_LE(frames[i].size(), 5u); // at most half survives
    }
}

TEST(FaultInjectorTest, FrameCorruptionWritesJunk)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.frame_corrupt_prob = 1.0;
    const double sentinel = 2e7;

    std::vector<std::vector<double>> frames(
        50, std::vector<double>(8, 1e6));
    std::vector<std::vector<double> *> ptrs;
    for (auto &f : frames)
        ptrs.push_back(&f);
    const auto flags = faults::applyFrameFaults(ptrs, sentinel, cfg, 2);
    bool junk_seen = false;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        EXPECT_EQ(flags[i], 1);
        for (double v : frames[i]) {
            EXPECT_NE(v, 1e6); // every peak overwritten
            if (!std::isfinite(v) || v > sentinel)
                junk_seen = true;
        }
    }
    EXPECT_TRUE(junk_seen);
}

TEST(FaultInjectorTest, ValidateRejectsBadConfig)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.dropout.rate_hz = -1.0;
    EXPECT_THROW(faults::validate(cfg), core::ChannelFault);

    cfg = FaultConfig();
    cfg.interference_density = 1.5;
    EXPECT_THROW(faults::validate(cfg), core::ChannelFault);

    cfg = FaultConfig();
    cfg.snr_collapse_db = std::nan("");
    EXPECT_THROW(faults::validate(cfg), core::ChannelFault);

    // The taxonomy keeps ChannelFault a runtime_error, so existing
    // catch sites keep working.
    cfg = FaultConfig();
    cfg.frame_truncate_prob = 2.0;
    EXPECT_THROW(faults::validate(cfg), std::runtime_error);

    EXPECT_NO_THROW(faults::validate(FaultConfig()));
}

} // namespace
