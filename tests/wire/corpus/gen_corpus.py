#!/usr/bin/env python3
"""Regenerates the checked-in EDDIEWIRE decoder corpus.

Each file is a raw byte stream the decoder regression test
(tests/wire/frame_decoder_test.cpp) feeds to a fresh FrameDecoder and
then finishes with endOfInput(). The filename encodes the expected
disposition:

  ok__<desc>.bin              decodes to >= 1 frame, zero errors, and
                              re-encoding the decoded frames must
                              reproduce the file byte-identically
  err__<error>__<desc>.bin    the decoder must end poisoned with
                              exactly the named WireError (the
                              wire::name() string, e.g. header_crc);
                              valid frames before the poison are fine

The CRC is zlib's CRC-32 (same polynomial/reflection as the repo's
slice-by-8 kernel in common/crc32.h), so this script needs nothing
beyond the standard library. Run from this directory:

  python3 gen_corpus.py
"""

import struct
import zlib

MAGIC = 0x31574445  # "EDW1"
VERSION = 1
HELLO, ACK, STS_BATCH, HEARTBEAT, EOF_, NACK = 1, 2, 3, 4, 5, 6


def header(ftype, tenant, session, sequence, payload_len, payload_crc,
           *, magic=MAGIC, version=VERSION, reserved=0):
    h = struct.pack("<IHBBQQQII", magic, version, ftype, reserved,
                    tenant, session, sequence, payload_len, payload_crc)
    return h + struct.pack("<I", zlib.crc32(h))


def frame(ftype, tenant, session, sequence, payload=b"", **kw):
    return header(ftype, tenant, session, sequence, len(payload),
                  zlib.crc32(payload), **kw) + payload


def fnv1a64(s):
    h = 0xCBF29CE484222325
    for b in s.encode():
        h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def hello_payload(tenant_id):
    b = tenant_id.encode()
    return struct.pack("<I", len(b)) + b


def nack_payload(code, msg):
    b = msg.encode()
    return struct.pack("<II", code, len(b)) + b


def flip(data, index, mask=0xFF):
    out = bytearray(data)
    out[index] ^= mask
    return bytes(out)


T = fnv1a64("default")

files = {}

# --- valid streams -------------------------------------------------
files["ok__hello.bin"] = frame(HELLO, T, 1, 0,
                               hello_payload("default"))
files["ok__empty_payload.bin"] = frame(HEARTBEAT, T, 1, 17)
files["ok__multi.bin"] = (
    frame(HELLO, T, 2, 0, hello_payload("default")) +
    frame(STS_BATCH, T, 2, 0, bytes(range(256)) * 3) +
    frame(HEARTBEAT, T, 2, 3) +
    frame(EOF_, T, 2, 3))
files["ok__nack.bin"] = frame(NACK, T, 1, 9,
                              nack_payload(2, "sequence gap at 9"))

# --- malformed streams ---------------------------------------------
# Long enough to fill a whole header: the decoder only judges magic
# once 44 bytes are buffered (shorter junk is Truncated instead).
files["err__bad_magic__ascii.bin"] = (
    b"GET / HTTP/1.1\r\nHost: example.invalid\r\n"
    b"User-Agent: not-eddiewire\r\n\r\n")
files["err__bad_magic__near_miss.bin"] = frame(
    HEARTBEAT, T, 1, 0, magic=MAGIC ^ 0x01000000)
files["err__bad_version__v2.bin"] = frame(HEARTBEAT, T, 1, 0,
                                          version=2)
files["err__bad_type__type9.bin"] = frame(9, T, 1, 0)
files["err__bad_type__reserved.bin"] = frame(HEARTBEAT, T, 1, 0,
                                             reserved=1)
# Length field far past the decoder cap, both CRCs still valid: only
# the cap check can refuse this one.
files["err__oversized__hostile_len.bin"] = header(
    STS_BATCH, T, 1, 0, 0x7FFFFFFF, 0)
good = frame(STS_BATCH, T, 1, 0, b"payload-bytes" * 9)
files["err__header_crc__flipped_tenant.bin"] = flip(good, 8)
files["err__header_crc__flipped_len.bin"] = flip(good, 32)
files["err__payload_crc__flipped_payload.bin"] = flip(good, 44 + 5)
files["err__truncated__cut_header.bin"] = good[:20]
files["err__truncated__cut_payload.bin"] = good[:44 + 7]
# One complete frame, then a torn second one: the decoder must hand
# out the first frame before poisoning on the cut.
files["err__truncated__second_frame.bin"] = (
    frame(HEARTBEAT, T, 1, 1) + good[:50])
# A full valid frame followed by mid-stream garbage: framing is lost
# as a unit (no resync), so the garbage is a bad magic.
files["err__bad_magic__after_frame.bin"] = (
    frame(HEARTBEAT, T, 1, 1) + b"\x00" * 60)

for fname, data in sorted(files.items()):
    with open(fname, "wb") as f:
        f.write(data)
    print(f"{fname}: {len(data)} bytes")
