/**
 * @file
 * EDDIEWIRE decoder contract tests (decoder.h): totality over
 * arbitrary bytes, bounded buffering, latching poison, and byte-exact
 * round trips. The adversarial half is corpus-driven — a seeded
 * splice/truncate/bit-flip fuzzer plus checked-in regression files
 * under tests/wire/corpus/ whose filenames encode the expected
 * disposition (see gen_corpus.py there).
 */

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wire/decoder.h"
#include "wire/frame.h"

namespace
{

using namespace eddie;
using wire::DecodeStatus;
using wire::FrameDecoder;
using wire::FrameDecoderConfig;
using wire::FrameHeader;
using wire::FrameType;
using wire::WireError;

std::string
makeFrame(FrameType type, std::uint64_t seq, const std::string &payload)
{
    FrameHeader h;
    h.type = type;
    h.tenant = wire::tenantHash("default");
    h.session = 1;
    h.sequence = seq;
    return wire::encodeFrame(h, payload);
}

/** A multi-frame stream with empty, small, and larger payloads. */
std::string
sampleStream(std::vector<FrameHeader> *headers = nullptr,
             std::vector<std::string> *payloads = nullptr)
{
    std::string stream;
    const auto add = [&](FrameType type, std::uint64_t seq,
                         const std::string &payload) {
        const std::string f = makeFrame(type, seq, payload);
        if (headers) {
            FrameHeader h;
            h.type = type;
            h.tenant = wire::tenantHash("default");
            h.session = 1;
            h.sequence = seq;
            h.payload_len = std::uint32_t(payload.size());
            headers->push_back(h);
        }
        if (payloads)
            payloads->push_back(payload);
        stream += f;
    };
    add(FrameType::Hello, 0, wire::encodeHelloPayload("default"));
    add(FrameType::StsBatch, 0, std::string(1000, '\x5a'));
    add(FrameType::Heartbeat, 4, "");
    std::string binary;
    for (int i = 0; i < 600; ++i)
        binary.push_back(char(i * 37));
    add(FrameType::StsBatch, 4, binary);
    add(FrameType::Eof, 8, "");
    return stream;
}

/** Drains the decoder, appending frames (re-encoded) to @p out;
 *  returns the terminal status (NeedMore or Error). */
DecodeStatus
drain(FrameDecoder &dec, std::vector<wire::Decoded> *frames = nullptr,
      std::string *reencoded = nullptr)
{
    for (;;) {
        const wire::Decoded d = dec.next();
        if (d.status != DecodeStatus::Frame)
            return d.status;
        if (reencoded)
            *reencoded += wire::encodeFrame(
                d.header,
                std::string(d.payload, d.header.payload_len));
        if (frames)
            frames->push_back(d);
    }
}

TEST(FrameDecoder, RoundTripsAStreamAcrossChunkSizes)
{
    std::vector<FrameHeader> headers;
    std::vector<std::string> payloads;
    const std::string stream = sampleStream(&headers, &payloads);

    for (const std::size_t chunk :
         {std::size_t(1), std::size_t(2), std::size_t(7),
          std::size_t(43), std::size_t(44), std::size_t(45),
          std::size_t(1021), stream.size()}) {
        FrameDecoder dec;
        std::vector<FrameHeader> got;
        std::vector<std::string> got_payloads;
        std::size_t off = 0;
        while (off < stream.size()) {
            const std::size_t n =
                std::min(chunk, stream.size() - off);
            const std::size_t accepted = dec.feed(stream.data() + off, n);
            ASSERT_GT(accepted, 0u);
            off += accepted;
            for (;;) {
                const wire::Decoded d = dec.next();
                if (d.status != DecodeStatus::Frame) {
                    ASSERT_EQ(d.status, DecodeStatus::NeedMore);
                    break;
                }
                got.push_back(d.header);
                got_payloads.emplace_back(d.payload,
                                          d.header.payload_len);
            }
            EXPECT_LE(dec.buffered(), dec.capacity());
        }
        dec.endOfInput();
        EXPECT_EQ(dec.next().status, DecodeStatus::NeedMore);
        ASSERT_EQ(got.size(), headers.size()) << "chunk=" << chunk;
        for (std::size_t i = 0; i < headers.size(); ++i) {
            EXPECT_EQ(got[i].type, headers[i].type);
            EXPECT_EQ(got[i].tenant, headers[i].tenant);
            EXPECT_EQ(got[i].session, headers[i].session);
            EXPECT_EQ(got[i].sequence, headers[i].sequence);
            EXPECT_EQ(got_payloads[i], payloads[i]);
        }
        EXPECT_EQ(dec.stats().frames_decoded, headers.size());
        EXPECT_EQ(dec.stats().bytes_decoded, stream.size());
        EXPECT_EQ(dec.stats().totalErrors(), 0u);
    }
}

TEST(FrameDecoder, TruncationAtEveryByteBoundaryIsTyped)
{
    const std::string frame =
        makeFrame(FrameType::StsBatch, 3, std::string(64, 'q'));
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
        FrameDecoder dec;
        ASSERT_EQ(dec.feed(frame.data(), cut), cut);
        EXPECT_EQ(dec.next().status, DecodeStatus::NeedMore);
        dec.endOfInput();
        const wire::Decoded d = dec.next();
        if (cut == 0) {
            // Nothing buffered: a clean end of stream, not an error.
            EXPECT_EQ(d.status, DecodeStatus::NeedMore);
            EXPECT_EQ(dec.stats().totalErrors(), 0u);
        } else {
            ASSERT_EQ(d.status, DecodeStatus::Error) << "cut=" << cut;
            EXPECT_EQ(d.error, WireError::Truncated);
            EXPECT_EQ(dec.stats().errorCount(WireError::Truncated), 1u);
            EXPECT_EQ(dec.stats().totalErrors(), 1u);
            EXPECT_TRUE(dec.poisoned());
        }
    }
}

TEST(FrameDecoder, BitFlipAtEveryByteYieldsExactlyOneTypedError)
{
    const std::string frame =
        makeFrame(FrameType::Heartbeat, 7, std::string(16, 'p'));
    for (std::size_t i = 0; i < frame.size(); ++i) {
        std::string bad = frame;
        bad[i] = char(bad[i] ^ 0x40);
        FrameDecoder dec;
        ASSERT_EQ(dec.feed(bad.data(), bad.size()), bad.size());
        dec.endOfInput();
        const wire::Decoded d = dec.next();
        ASSERT_EQ(d.status, DecodeStatus::Error) << "flip@" << i;
        // Check order is part of the contract: magic and version are
        // rejected by value before the CRC runs; every other header
        // byte is caught by the header CRC; payload bytes by the
        // payload CRC.
        if (i < 4)
            EXPECT_EQ(d.error, WireError::BadMagic) << "flip@" << i;
        else if (i < 6)
            EXPECT_EQ(d.error, WireError::BadVersion) << "flip@" << i;
        else if (i < wire::kHeaderSize)
            EXPECT_EQ(d.error, WireError::HeaderCrc) << "flip@" << i;
        else
            EXPECT_EQ(d.error, WireError::PayloadCrc) << "flip@" << i;
        EXPECT_EQ(dec.stats().frames_decoded, 0u);
        EXPECT_EQ(dec.stats().totalErrors(), 1u);
        EXPECT_EQ(dec.stats().errorCount(d.error), 1u);
    }
}

TEST(FrameDecoder, HostileLengthIsOversizedNotAnAllocation)
{
    FrameHeader h;
    h.type = FrameType::StsBatch;
    h.payload_len = 0x7fffffffu;
    const std::string hostile = wire::encodeHeaderRaw(h, 0);

    FrameDecoder dec;
    ASSERT_EQ(dec.feed(hostile.data(), hostile.size()),
              hostile.size());
    const wire::Decoded d = dec.next();
    ASSERT_EQ(d.status, DecodeStatus::Error);
    EXPECT_EQ(d.error, WireError::Oversized);
    EXPECT_LE(dec.buffered(), dec.capacity());

    // One byte over a small cap is refused; exactly at the cap is a
    // legal frame.
    FrameDecoderConfig small;
    small.max_payload = 64;
    {
        FrameDecoder tight(small);
        const std::string at_cap =
            makeFrame(FrameType::StsBatch, 0, std::string(64, 'x'));
        tight.feed(at_cap.data(), at_cap.size());
        EXPECT_EQ(tight.next().status, DecodeStatus::Frame);

        FrameHeader over;
        over.type = FrameType::StsBatch;
        over.payload_len = 65;
        const std::string bad = wire::encodeHeaderRaw(over, 0);
        tight.reset();
        tight.feed(bad.data(), bad.size());
        const wire::Decoded o = tight.next();
        ASSERT_EQ(o.status, DecodeStatus::Error);
        EXPECT_EQ(o.error, WireError::Oversized);
        EXPECT_EQ(tight.capacity(), wire::kHeaderSize + 64);
    }
}

TEST(FrameDecoder, FeedIsBoundedAndPoisonLatches)
{
    FrameDecoderConfig cfg;
    cfg.max_payload = 64;
    FrameDecoder dec(cfg);

    const std::string garbage(1024, '\x7f');
    const std::size_t accepted =
        dec.feed(garbage.data(), garbage.size());
    EXPECT_LE(accepted, dec.capacity());
    EXPECT_LE(dec.buffered(), dec.capacity());

    const wire::Decoded d = dec.next();
    ASSERT_EQ(d.status, DecodeStatus::Error);
    EXPECT_EQ(d.error, WireError::BadMagic);
    EXPECT_TRUE(dec.poisoned());

    // Latched: the error repeats, nothing more is accepted, the
    // error was counted exactly once.
    EXPECT_EQ(dec.next().status, DecodeStatus::Error);
    EXPECT_EQ(dec.next().error, WireError::BadMagic);
    EXPECT_EQ(dec.feed(garbage.data(), garbage.size()), 0u);
    EXPECT_EQ(dec.stats().errorCount(WireError::BadMagic), 1u);
    EXPECT_EQ(dec.stats().totalErrors(), 1u);

    // reset() rearms for a new connection but keeps cumulative stats.
    dec.reset();
    EXPECT_FALSE(dec.poisoned());
    const std::string good = makeFrame(FrameType::Heartbeat, 1, "");
    ASSERT_EQ(dec.feed(good.data(), good.size()), good.size());
    EXPECT_EQ(dec.next().status, DecodeStatus::Frame);
    EXPECT_EQ(dec.stats().frames_decoded, 1u);
    EXPECT_EQ(dec.stats().totalErrors(), 1u);
}

TEST(FrameDecoder, PayloadPointerSurvivesUntilNextFeed)
{
    const std::string payload = "stable-until-feed";
    const std::string frame =
        makeFrame(FrameType::StsBatch, 0, payload);
    FrameDecoder dec;
    dec.feed(frame.data(), frame.size());
    const wire::Decoded d = dec.next();
    ASSERT_EQ(d.status, DecodeStatus::Frame);
    ASSERT_EQ(d.header.payload_len, payload.size());

    // Further next() calls (NeedMore) must not invalidate the
    // returned payload; only feed()/reset() may.
    EXPECT_EQ(dec.next().status, DecodeStatus::NeedMore);
    EXPECT_EQ(std::memcmp(d.payload, payload.data(), payload.size()),
              0);
}

TEST(FrameDecoder, SpliceFuzzNeverEscapesTheContract)
{
    const std::string clean = sampleStream();
    for (std::uint64_t seed = 1; seed <= 48; ++seed) {
        std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull);
        std::string bytes = clean;
        const auto idx = [&](std::size_t bound) {
            return std::size_t(rng() % std::max<std::size_t>(bound, 1));
        };
        // 1-3 mutations: truncate, bit flip, duplicate a slice, or
        // delete a slice.
        const int mutations = 1 + int(rng() % 3);
        for (int m = 0; m < mutations && !bytes.empty(); ++m) {
            switch (rng() % 4) {
            case 0:
                bytes.resize(idx(bytes.size()));
                break;
            case 1: {
                const std::size_t i = idx(bytes.size());
                bytes[i] = char(bytes[i] ^ (1u << (rng() % 8)));
                break;
            }
            case 2: {
                const std::size_t at = idx(bytes.size());
                const std::size_t len =
                    std::min<std::size_t>(idx(128) + 1,
                                          bytes.size() - at);
                bytes.insert(at, bytes.substr(at, len));
                break;
            }
            default: {
                const std::size_t at = idx(bytes.size());
                const std::size_t len =
                    std::min<std::size_t>(idx(64) + 1,
                                          bytes.size() - at);
                bytes.erase(at, len);
                break;
            }
            }
        }

        FrameDecoder dec;
        std::size_t off = 0;
        bool errored = false;
        while (off < bytes.size() && !errored) {
            const std::size_t want =
                std::min<std::size_t>(1 + rng() % 97,
                                      bytes.size() - off);
            const std::size_t accepted =
                dec.feed(bytes.data() + off, want);
            off += accepted;
            ASSERT_LE(dec.buffered(), dec.capacity());
            for (;;) {
                const wire::Decoded d = dec.next();
                if (d.status == DecodeStatus::Frame) {
                    ASSERT_LE(d.header.payload_len,
                              wire::kDefaultMaxPayload);
                    continue;
                }
                if (d.status == DecodeStatus::Error)
                    errored = true;
                break;
            }
            if (!errored) {
                ASSERT_GT(accepted, 0u) << "seed=" << seed;
            }
        }
        dec.endOfInput();
        if (dec.next().status == DecodeStatus::Error)
            errored = true;
        if (errored) {
            // Poison latched: exactly one counted error, feed dead.
            EXPECT_TRUE(dec.poisoned()) << "seed=" << seed;
            EXPECT_EQ(dec.stats().totalErrors(), 1u)
                << "seed=" << seed;
            EXPECT_EQ(dec.feed(clean.data(), clean.size()), 0u);
            const wire::Decoded again = dec.next();
            EXPECT_EQ(again.status, DecodeStatus::Error);
        } else {
            EXPECT_EQ(dec.stats().totalErrors(), 0u)
                << "seed=" << seed;
        }
    }
}

TEST(FramePayloads, HelloCodecRoundTripsAndRejectsMalformed)
{
    const std::string payload = wire::encodeHelloPayload("tenant-a");
    std::string id;
    ASSERT_TRUE(wire::decodeHelloPayload(payload.data(),
                                         payload.size(), id));
    EXPECT_EQ(id, "tenant-a");

    // Empty id, oversize id, short buffer, and trailing junk are all
    // refused (the listener maps refusal to BadPayload).
    EXPECT_FALSE(wire::decodeHelloPayload(payload.data(), 3, id));
    EXPECT_FALSE(wire::decodeHelloPayload(payload.data(),
                                          payload.size() - 1, id));
    const std::string trailing = payload + "x";
    EXPECT_FALSE(wire::decodeHelloPayload(trailing.data(),
                                          trailing.size(), id));
    const std::string empty = wire::encodeHelloPayload("");
    EXPECT_FALSE(wire::decodeHelloPayload(empty.data(), empty.size(),
                                          id));
    const std::string huge = wire::encodeHelloPayload(
        std::string(wire::kMaxTenantIdLen + 1, 'a'));
    EXPECT_FALSE(wire::decodeHelloPayload(huge.data(), huge.size(),
                                          id));
}

TEST(FramePayloads, NackCodecRoundTripsAndRejectsUnknownCodes)
{
    const std::string payload = wire::encodeNackPayload(
        wire::NackCode::SequenceGap, "gap at 17");
    wire::NackCode code;
    std::string msg;
    ASSERT_TRUE(wire::decodeNackPayload(payload.data(),
                                        payload.size(), code, msg));
    EXPECT_EQ(code, wire::NackCode::SequenceGap);
    EXPECT_EQ(msg, "gap at 17");

    std::string bad = payload;
    bad[0] = char(0x7f); // code u32 out of range
    EXPECT_FALSE(wire::decodeNackPayload(bad.data(), bad.size(), code,
                                         msg));
    EXPECT_FALSE(wire::decodeNackPayload(payload.data(), 6, code,
                                         msg));
}

TEST(FramePayloads, TenantHashIsStableAndDiscriminates)
{
    const std::uint64_t a = wire::tenantHash("tenant-a");
    EXPECT_EQ(a, wire::tenantHash("tenant-a"));
    EXPECT_NE(a, wire::tenantHash("tenant-b"));
    EXPECT_NE(a, 0u);
    // FNV-1a 64 offset basis: the empty id hashes to the basis, a
    // format constant clients in other languages must reproduce.
    EXPECT_EQ(wire::tenantHash(""), 0xcbf29ce484222325ull);
}

// ---------------------------------------------------------------
// Corpus regression: every checked-in byte stream must decode to its
// filename-encoded disposition. EDDIE_WIRE_CORPUS_DIR (env overrides
// the compiled-in default) points at tests/wire/corpus/.
// ---------------------------------------------------------------

std::filesystem::path
corpusDir()
{
    if (const char *env = std::getenv("EDDIE_WIRE_CORPUS_DIR"))
        return env;
#ifdef EDDIE_WIRE_CORPUS_DIR
    return EDDIE_WIRE_CORPUS_DIR;
#else
    return "tests/wire/corpus";
#endif
}

TEST(WireCorpus, EveryFileDecodesToItsNamedDisposition)
{
    const std::filesystem::path dir = corpusDir();
    ASSERT_TRUE(std::filesystem::is_directory(dir))
        << "corpus dir missing: " << dir;

    std::size_t checked = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".bin")
            continue;
        const std::string fname = entry.path().filename().string();
        std::ifstream is(entry.path(), std::ios::binary);
        ASSERT_TRUE(is) << fname;
        std::string bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());

        FrameDecoder dec;
        std::string reencoded;
        std::vector<wire::Decoded> frames;
        std::size_t off = 0;
        DecodeStatus terminal = DecodeStatus::NeedMore;
        while (off < bytes.size()) {
            const std::size_t accepted =
                dec.feed(bytes.data() + off,
                         std::min<std::size_t>(4096,
                                               bytes.size() - off));
            off += accepted;
            terminal = drain(dec, &frames, &reencoded);
            if (terminal == DecodeStatus::Error || accepted == 0)
                break;
        }
        if (terminal != DecodeStatus::Error) {
            dec.endOfInput();
            terminal = drain(dec, &frames, &reencoded);
        }
        ASSERT_LE(dec.buffered(), dec.capacity()) << fname;

        if (fname.rfind("ok__", 0) == 0) {
            EXPECT_NE(terminal, DecodeStatus::Error) << fname;
            EXPECT_FALSE(dec.poisoned()) << fname;
            EXPECT_GE(frames.size(), 1u) << fname;
            EXPECT_EQ(dec.stats().totalErrors(), 0u) << fname;
            // Valid streams round-trip byte-identically through
            // decode → re-encode.
            EXPECT_EQ(reencoded, bytes) << fname;
        } else if (fname.rfind("err__", 0) == 0) {
            ASSERT_EQ(terminal, DecodeStatus::Error) << fname;
            EXPECT_TRUE(dec.poisoned()) << fname;
            EXPECT_EQ(dec.stats().totalErrors(), 1u) << fname;
            // err__<error>__<desc>.bin names the expected WireError.
            const std::size_t start = 5;
            std::size_t end = fname.find("__", start);
            if (end == std::string::npos)
                end = fname.find(".bin", start);
            const std::string want = fname.substr(start, end - start);
            const wire::Decoded last = dec.next();
            EXPECT_EQ(wire::name(last.error), want) << fname;
        } else {
            continue; // gen_corpus.py and friends
        }
        ++checked;
    }
    // A missing or half-copied corpus must fail loudly, not vacuously
    // pass.
    EXPECT_GE(checked, 15u);
}

} // namespace
