#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "em/emanation.h"
#include "sig/fft.h"
#include "sig/stft.h"

namespace
{

using namespace eddie::em;
using eddie::sig::Complex;

std::vector<double>
periodicEnvelope(std::size_t n, double freq, double fs)
{
    std::vector<double> env(n);
    for (std::size_t i = 0; i < n; ++i) {
        env[i] = 5.0 +
            std::sin(2.0 * std::numbers::pi * freq * double(i) / fs);
    }
    return env;
}

TEST(EmanationTest, BasebandPreservesLoopFrequency)
{
    const double fs = 1e6;
    const double f_loop = 50e3;
    const auto env = periodicEnvelope(32768, f_loop, fs);

    ChannelConfig cfg;
    cfg.snr_db = 300.0; // noiseless
    const auto iq = emanateBaseband(env, fs, cfg);
    ASSERT_EQ(iq.size(), env.size());

    std::vector<Complex> chunk(iq.begin(), iq.begin() + 16384);
    eddie::sig::fft(chunk);
    const auto bin = eddie::sig::frequencyToBin(f_loop, chunk.size(), fs);
    const auto far = eddie::sig::frequencyToBin(200e3, chunk.size(), fs);
    EXPECT_GT(std::norm(chunk[bin]), 1000.0 * std::norm(chunk[far]));
}

TEST(EmanationTest, NoiseLowersButKeepsPeak)
{
    const double fs = 1e6;
    const double f_loop = 50e3;
    const auto env = periodicEnvelope(32768, f_loop, fs);

    ChannelConfig cfg;
    cfg.snr_db = 10.0;
    const auto iq = emanateBaseband(env, fs, cfg, 99);

    std::vector<Complex> chunk(iq.begin(), iq.begin() + 16384);
    eddie::sig::fft(chunk);
    const auto bin = eddie::sig::frequencyToBin(f_loop, chunk.size(), fs);
    double floor = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 100; i < 8000; ++i) {
        if (i + 16 > bin && i < bin + 16)
            continue;
        floor += std::norm(chunk[i]);
        ++count;
    }
    floor /= double(count);
    EXPECT_GT(std::norm(chunk[bin]), 20.0 * floor);
}

TEST(EmanationTest, InterfererAppearsAtOffset)
{
    const double fs = 1e6;
    const auto env = periodicEnvelope(32768, 50e3, fs);

    ChannelConfig cfg;
    cfg.snr_db = 300.0;
    cfg.interferers.push_back({120e3, 0.8});
    const auto iq = emanateBaseband(env, fs, cfg, 5);

    std::vector<Complex> chunk(iq.begin(), iq.begin() + 16384);
    eddie::sig::fft(chunk);
    const auto bin = eddie::sig::frequencyToBin(120e3, chunk.size(), fs);
    const auto far = eddie::sig::frequencyToBin(200e3, chunk.size(), fs);
    EXPECT_GT(std::norm(chunk[bin]), 1000.0 * std::norm(chunk[far]));
}

TEST(EmanationTest, PassbandChainShowsSidebands)
{
    // Full physical chain at a scaled carrier (the Fig. 1 demo).
    auto cfg = defaultPassbandConfig();
    cfg.channel.snr_db = 40.0;

    const double env_rate = 10e6;
    const double f_loop = 500e3;
    std::vector<double> env(std::size_t(env_rate * 0.004));
    for (std::size_t i = 0; i < env.size(); ++i) {
        env[i] = 3.0 + std::sin(2.0 * std::numbers::pi * f_loop *
                                double(i) / env_rate);
    }
    const auto iq = passbandCapture(env, env_rate, cfg, 3);
    ASSERT_GT(iq.size(), 8192u);

    std::vector<Complex> chunk(iq.begin() + 512, iq.begin() + 512 + 8192);
    eddie::sig::fft(chunk);
    const double fs_iq = cfg.am.sample_rate / double(cfg.rx.decimation);
    const auto up = eddie::sig::frequencyToBin(f_loop, chunk.size(),
                                               fs_iq);
    const auto dn = eddie::sig::frequencyToBin(-f_loop, chunk.size(),
                                               fs_iq);
    const auto far = eddie::sig::frequencyToBin(1.7e6, chunk.size(),
                                                fs_iq);
    EXPECT_GT(std::norm(chunk[up]), 30.0 * std::norm(chunk[far]));
    EXPECT_GT(std::norm(chunk[dn]), 30.0 * std::norm(chunk[far]));
}

} // namespace
