#include <sstream>

#include <gtest/gtest.h>

#include "core/model.h"

namespace
{

using namespace eddie::core;

TrainedModel
sampleModel()
{
    TrainedModel m;
    m.alpha = 0.01;
    m.sentinel = 2e7;
    m.entry_region = 1;
    m.num_loops = 2;
    RegionModel r0;
    r0.name = "L0";
    r0.trained = true;
    r0.num_peaks = 2;
    r0.group_n = 16;
    r0.ref = {{1.0, 2.0, 3.0}, {4.0, 5.0}};
    r0.succs = {1};
    RegionModel r1;
    r1.name = "L1";
    r1.trained = false;
    m.regions = {r0, r1};
    return m;
}

TEST(ModelTest, SaveLoadRoundTrip)
{
    const auto m = sampleModel();
    std::stringstream ss;
    saveModel(m, ss);
    const auto loaded = loadModel(ss);

    EXPECT_DOUBLE_EQ(loaded.alpha, m.alpha);
    EXPECT_DOUBLE_EQ(loaded.sentinel, m.sentinel);
    EXPECT_EQ(loaded.entry_region, m.entry_region);
    EXPECT_EQ(loaded.num_loops, m.num_loops);
    ASSERT_EQ(loaded.regions.size(), 2u);
    EXPECT_EQ(loaded.regions[0].name, "L0");
    EXPECT_TRUE(loaded.regions[0].trained);
    EXPECT_EQ(loaded.regions[0].group_n, 16u);
    EXPECT_EQ(loaded.regions[0].ref, m.regions[0].ref);
    EXPECT_EQ(loaded.regions[0].succs, m.regions[0].succs);
    EXPECT_FALSE(loaded.regions[1].trained);
}

TEST(ModelTest, LoadRejectsGarbage)
{
    std::stringstream ss("not-a-model 7");
    EXPECT_THROW(loadModel(ss), std::runtime_error);
}

TEST(ModelTest, WithGroupSizeOverridesTrainedOnly)
{
    const auto m = sampleModel();
    const auto m2 = withGroupSize(m, 42);
    EXPECT_EQ(m2.regions[0].group_n, 42u);
    EXPECT_EQ(m2.regions[1].group_n, m.regions[1].group_n);
    // Original untouched.
    EXPECT_EQ(m.regions[0].group_n, 16u);
}

TEST(ModelTest, WithAlpha)
{
    const auto m2 = withAlpha(sampleModel(), 0.05);
    EXPECT_DOUBLE_EQ(m2.alpha, 0.05);
}

} // namespace
