#include <sstream>

#include <gtest/gtest.h>

#include "core/capture_io.h"
#include "core/pipeline.h"
#include "prog/regions.h"

namespace
{

using namespace eddie;
using core::loadCapture;
using core::saveCapture;

cpu::RunResult
sampleRun()
{
    cpu::RunResult rr;
    rr.sample_rate = 2e7;
    rr.power = {1.0, 2.5, 3.25, 0.125};
    rr.region = {0, 0, prog::kNoRegion, 2};
    rr.injected = {0, 1, 1, 0};
    return rr;
}

TEST(CaptureIoTest, RoundTripPreservesEverything)
{
    const auto rr = sampleRun();
    std::stringstream ss;
    saveCapture(rr, ss);
    const auto loaded = loadCapture(ss);
    EXPECT_DOUBLE_EQ(loaded.sample_rate, rr.sample_rate);
    EXPECT_EQ(loaded.power, rr.power);
    EXPECT_EQ(loaded.region, rr.region);
    EXPECT_EQ(loaded.injected, rr.injected);
}

TEST(CaptureIoTest, RejectsGarbage)
{
    std::stringstream ss("definitely not a capture file");
    EXPECT_THROW(loadCapture(ss), std::runtime_error);
}

TEST(CaptureIoTest, RejectsTruncation)
{
    std::stringstream ss;
    saveCapture(sampleRun(), ss);
    const auto full = ss.str();
    for (std::size_t cut : {std::size_t(4), full.size() / 2,
                            full.size() - 3}) {
        std::stringstream truncated(full.substr(0, cut));
        EXPECT_THROW(loadCapture(truncated), std::runtime_error)
            << "cut at " << cut;
    }
}

TEST(CaptureIoTest, EmptyCapture)
{
    cpu::RunResult rr;
    rr.sample_rate = 1e6;
    std::stringstream ss;
    saveCapture(rr, ss);
    const auto loaded = loadCapture(ss);
    EXPECT_TRUE(loaded.power.empty());
}

TEST(CaptureIoTest, CapturedRunAnalyzesLikeLiveRun)
{
    // Simulate -> save -> load -> extract STSs: identical to the
    // live path.
    core::PipelineConfig cfg;
    cfg.train_runs = 2;
    core::Pipeline pipe(workloads::makeWorkload("bitcount", 0.1),
                        cfg);
    const auto live = pipe.simulate(5);
    std::stringstream ss;
    saveCapture(live, ss);
    const auto replay = loadCapture(ss);

    const auto live_sts = pipe.toSts(live);
    const auto replay_sts = pipe.toSts(replay);
    ASSERT_EQ(live_sts.size(), replay_sts.size());
    for (std::size_t i = 0; i < live_sts.size(); ++i) {
        EXPECT_EQ(live_sts[i].peak_freqs, replay_sts[i].peak_freqs);
        EXPECT_EQ(live_sts[i].true_region, replay_sts[i].true_region);
        EXPECT_EQ(live_sts[i].injected, replay_sts[i].injected);
    }
}

} // namespace
