/**
 * @file
 * The group-size selector must find the settling point of the
 * FRR-vs-n curve (paper Sec. 4.3 / Fig. 3), not fall into the
 * low-power trap at tiny n where the K-S test cannot reject anything.
 */

#include <random>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "prog/builder.h"
#include "prog/regions.h"

namespace
{

using namespace eddie;
using namespace eddie::core;

constexpr double kSentinel = 2e7;

prog::RegionGraph
oneLoopGraph()
{
    prog::ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 8);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.addi(1, 1, 1);
    b.blt(1, 2, l0);
    b.halt();
    static prog::Program p = b.take();
    return prog::analyzeProgram(p);
}

/**
 * A phase-alternating region: the strongest peak flips between two
 * well-separated frequencies every @p phase_len STSs (like susan's
 * smoothing passes). Windows shorter than a phase are concentrated
 * in one mode and reject the mixed reference; windows spanning both
 * phases match it.
 */
std::vector<Sts>
phasedRun(std::mt19937_64 &rng, int phase_len)
{
    std::normal_distribution<double> jitter(0.0, 2000.0);
    std::vector<Sts> run;
    double t = 0.0;
    for (int i = 0; i < 256; ++i, t += 5e-5) {
        const bool hi = (i / phase_len) % 2 == 1;
        Sts sts;
        sts.t_start = t;
        sts.t_end = t + 1e-4;
        sts.peak_freqs = {(hi ? 6e6 : 2e6) + jitter(rng)};
        while (sts.peak_freqs.size() < 4)
            sts.peak_freqs.push_back(kSentinel);
        sts.true_region = 0;
        run.push_back(sts);
    }
    return run;
}

TEST(GroupSizeSelectionTest, PhasedRegionGetsPhaseSpanningGroup)
{
    std::mt19937_64 rng(1);
    std::vector<std::vector<Sts>> runs;
    for (int r = 0; r < 6; ++r)
        runs.push_back(phasedRun(rng, 16));

    TrainingDiagnostics diag;
    const auto model = train(runs, oneLoopGraph(), kSentinel,
                             TrainerConfig(), &diag);
    ASSERT_TRUE(model.regions[0].trained);

    // The FRR sweep must show the hump: elevated at phase-scale n,
    // settled at large n.
    double hump = 0.0, tail = 1.0;
    for (const auto &pt : diag.sweeps[0]) {
        if (pt.n >= 8 && pt.n <= 16)
            hump = std::max(hump, pt.false_rejection_rate);
        if (pt.n == diag.sweeps[0].back().n)
            tail = pt.false_rejection_rate;
    }
    EXPECT_GT(hump, 0.2);
    EXPECT_LT(tail, 0.05);

    // And the selector must land past the hump (a window spanning
    // both phases) — never inside it.
    EXPECT_GE(model.regions[0].group_n, 24u);
}

TEST(GroupSizeSelectionTest, StableRegionKeepsSmallGroup)
{
    std::mt19937_64 rng(2);
    std::normal_distribution<double> jitter(0.0, 2000.0);
    std::vector<std::vector<Sts>> runs(6);
    for (auto &run : runs) {
        double t = 0.0;
        for (int i = 0; i < 256; ++i, t += 5e-5) {
            Sts sts;
            sts.t_start = t;
            sts.t_end = t + 1e-4;
            sts.peak_freqs = {3e6 + jitter(rng), kSentinel, kSentinel,
                              kSentinel};
            sts.true_region = 0;
            run.push_back(sts);
        }
    }
    const auto model = train(runs, oneLoopGraph(), kSentinel);
    ASSERT_TRUE(model.regions[0].trained);
    // A stationary region must keep the smallest grid n (lowest
    // latency).
    EXPECT_EQ(model.regions[0].group_n, TrainerConfig().n_grid.front());
}

} // namespace
