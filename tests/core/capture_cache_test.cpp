/**
 * @file
 * Capture-cache contract: memoized captures are bit-identical to
 * uncached ones (so trained models match byte for byte with the
 * cache on or off, at any thread count), keys separate every input
 * that can change a capture, and the LRU + disk-spill tiers account
 * for their traffic in the stats counters.
 */

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "core/capture_cache.h"
#include "core/capture_io.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"

namespace
{

using namespace eddie;
using core::CaptureCache;
using core::CaptureCacheConfig;
using core::Pipeline;
using core::PipelineConfig;

std::string
serializeStream(const std::vector<core::Sts> &stream)
{
    std::ostringstream os;
    core::saveStsStream(stream, os);
    return os.str();
}

std::string
serializedModel(const PipelineConfig &base, std::size_t threads,
                std::shared_ptr<CaptureCache> cache)
{
    PipelineConfig cfg = base;
    cfg.threads = threads;
    cfg.capture_cache = std::move(cache);
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.15), cfg);
    const auto model = pipe.trainModel();
    std::ostringstream os;
    core::saveModel(model, os);
    return os.str();
}

TEST(CaptureCacheTest, HitReturnsIdenticalStreamAndCounts)
{
    PipelineConfig cfg;
    cfg.capture_cache = std::make_shared<CaptureCache>();
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.15), cfg);

    const auto first = pipe.captureRun(1000);
    const auto second = pipe.captureRun(1000);
    EXPECT_EQ(serializeStream(first), serializeStream(second));

    const auto stats = cfg.capture_cache->stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_NEAR(stats.hitRate(), 0.5, 1e-12);

    // Different seed and different plan are distinct keys.
    (void)pipe.captureRun(1001);
    const auto plan = inject::canonicalLoopInjection(
        inject::defaultTargetLoop(pipe.workload()), 1.0, 7);
    (void)pipe.captureRun(1000, plan);
    const auto after = cfg.capture_cache->stats();
    EXPECT_EQ(after.misses, 3u);
    EXPECT_EQ(after.entries, 3u);
}

TEST(CaptureCacheTest, TrainedModelByteIdenticalCacheOnOffAnyThreads)
{
    PipelineConfig cfg;
    cfg.train_runs = 4;

    const auto uncached = serializedModel(cfg, 1, nullptr);
    ASSERT_FALSE(uncached.empty());

    // Cold cache, serial and contended parallel.
    auto cache = std::make_shared<CaptureCache>();
    EXPECT_EQ(serializedModel(cfg, 1, cache), uncached);
    // Warm cache: every capture is a hit now.
    EXPECT_EQ(serializedModel(cfg, 8, cache), uncached);
    const auto stats = cache->stats();
    EXPECT_EQ(stats.misses, cfg.train_runs);
    EXPECT_EQ(stats.hits, cfg.train_runs);

    // A fresh cache racing 8 threads on 4 cold captures.
    EXPECT_EQ(serializedModel(cfg, 8, std::make_shared<CaptureCache>()),
              uncached);
}

TEST(CaptureCacheTest, MonitorBatchRaceOnOneKeyStaysConsistent)
{
    PipelineConfig cfg;
    cfg.train_runs = 3;
    cfg.threads = 8;
    cfg.capture_cache = std::make_shared<CaptureCache>();
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.15), cfg);
    const auto model = pipe.trainModel();

    // Every batch entry shares one capture key, so all 8 workers
    // race on the same cache slot.
    const std::vector<std::uint64_t> seeds(8, 9000);
    const auto batch = pipe.monitorBatch(model, seeds);
    const auto lone = pipe.monitorRun(model, 9000);
    for (const auto &ev : batch) {
        EXPECT_EQ(ev.reports.size(), lone.reports.size());
        EXPECT_EQ(ev.metrics.groups, lone.metrics.groups);
        EXPECT_EQ(ev.metrics.false_positives,
                  lone.metrics.false_positives);
    }
}

TEST(CaptureCacheTest, KeySeparatesEveryCaptureInput)
{
    const auto workload = workloads::makeWorkload("bitcount", 0.15);
    PipelineConfig cfg;
    const cpu::InjectionPlan empty;
    const auto base = core::captureCacheKey(workload, cfg, 1, empty);

    EXPECT_NE(core::captureCacheKey(workload, cfg, 2, empty), base);

    PipelineConfig snr = cfg;
    snr.channel.snr_db = 15.0;
    EXPECT_NE(core::captureCacheKey(workload, snr, 1, empty), base);

    PipelineConfig stft = cfg;
    stft.stft_window = 1024;
    EXPECT_NE(core::captureCacheKey(workload, stft, 1, empty), base);

    PipelineConfig path = cfg;
    path.path = core::SignalPath::EmBaseband;
    EXPECT_NE(core::captureCacheKey(workload, path, 1, empty), base);

    PipelineConfig clock = cfg;
    clock.core.clock_hz = 100e6;
    EXPECT_NE(core::captureCacheKey(workload, clock, 1, empty), base);

    PipelineConfig energy = cfg;
    energy.energy.dram = 7.0;
    EXPECT_NE(core::captureCacheKey(workload, energy, 1, empty), base);

    cpu::InjectionPlan plan;
    plan.bursts.push_back(cpu::BurstInjection{});
    EXPECT_NE(core::captureCacheKey(workload, cfg, 1, plan), base);

    // Same workload at a different scale has different code and
    // input, even though the name matches.
    const auto scaled = workloads::makeWorkload("bitcount", 0.3);
    EXPECT_NE(core::captureCacheKey(scaled, cfg, 1, empty), base);

    // Trainer/monitor options do not affect the captured stream and
    // must not fragment the cache.
    PipelineConfig trainer = cfg;
    trainer.trainer.alpha = 0.05;
    trainer.threads = 8;
    EXPECT_EQ(core::captureCacheKey(workload, trainer, 1, empty),
              base);
}

TEST(CaptureCacheTest, EvictionSpillsToDiskAndReloads)
{
    const auto dir =
        std::filesystem::path(::testing::TempDir()) /
        "eddie_capture_cache_test";
    std::filesystem::create_directories(dir);

    CaptureCacheConfig cc;
    cc.capacity = 1;
    cc.spill_dir = dir.string();

    PipelineConfig cfg;
    cfg.capture_cache = std::make_shared<CaptureCache>(cc);
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.1), cfg);

    const auto a = pipe.captureRun(1);
    (void)pipe.captureRun(2); // evicts seed 1 to disk
    const auto a_again = pipe.captureRun(1); // served from spill
    EXPECT_EQ(serializeStream(a), serializeStream(a_again));

    const auto stats = cfg.capture_cache->stats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.disk_hits, 1u);
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_EQ(stats.spills, 2u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_FALSE(core::describe(stats).empty());

    std::filesystem::remove_all(dir);
}

TEST(CaptureCacheTest, StsStreamRoundTripsThroughCaptureIo)
{
    std::vector<core::Sts> stream(3);
    stream[0].t_start = 0.0;
    stream[0].t_end = 1e-4;
    stream[0].peak_freqs = {1e6, 2.5e6, 3e6};
    stream[0].true_region = 2;
    stream[0].injected = true;
    stream[1].t_start = 1e-4;
    stream[1].t_end = 2e-4;
    stream[1].true_region = std::size_t(-1);
    stream[2].peak_freqs = {42.0};

    std::stringstream ss;
    core::saveStsStream(stream, ss);
    const auto loaded = core::loadStsStream(ss);
    ASSERT_EQ(loaded.size(), stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(loaded[i].t_start, stream[i].t_start);
        EXPECT_EQ(loaded[i].t_end, stream[i].t_end);
        EXPECT_EQ(loaded[i].peak_freqs, stream[i].peak_freqs);
        EXPECT_EQ(loaded[i].true_region, stream[i].true_region);
        EXPECT_EQ(loaded[i].injected, stream[i].injected);
    }

    std::stringstream bad("not a capture");
    EXPECT_THROW(core::loadStsStream(bad), std::runtime_error);
}

} // namespace
