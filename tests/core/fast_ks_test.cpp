#include <cmath>
#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "core/fast_ks.h"
#include "stats/ks.h"

namespace
{

using eddie::core::ksStatisticSortedRef;

TEST(FastKsTest, MatchesReferenceImplementationRandom)
{
    std::mt19937_64 rng(1);
    std::uniform_real_distribution<double> d(0.0, 10.0);
    for (int trial = 0; trial < 200; ++trial) {
        std::uniform_int_distribution<std::size_t> msize(1, 200);
        std::uniform_int_distribution<std::size_t> nsize(1, 40);
        std::vector<double> ref(msize(rng));
        std::vector<double> mon(nsize(rng));
        for (auto &v : ref)
            v = d(rng);
        for (auto &v : mon)
            v = d(rng);
        std::sort(ref.begin(), ref.end());
        const double fast = ksStatisticSortedRef(ref, mon);
        const double slow = eddie::stats::ksStatistic(ref, mon);
        EXPECT_NEAR(fast, slow, 1e-12) << "trial " << trial;
    }
}

TEST(FastKsTest, MatchesReferenceWithHeavyTies)
{
    std::mt19937_64 rng(2);
    std::uniform_int_distribution<int> d(0, 4); // few distinct values
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<double> ref(50);
        std::vector<double> mon(12);
        for (auto &v : ref)
            v = double(d(rng));
        for (auto &v : mon)
            v = double(d(rng));
        std::sort(ref.begin(), ref.end());
        const double fast = ksStatisticSortedRef(ref, mon);
        const double slow = eddie::stats::ksStatistic(ref, mon);
        EXPECT_NEAR(fast, slow, 1e-12) << "trial " << trial;
    }
}

TEST(FastKsTest, AllIdenticalValues)
{
    std::vector<double> ref(100, 5.0);
    std::vector<double> mon(8, 5.0);
    EXPECT_DOUBLE_EQ(ksStatisticSortedRef(ref, mon), 0.0);
}

TEST(FastKsTest, DisjointSupportsGiveOne)
{
    std::vector<double> ref{1.0, 2.0, 3.0};
    std::vector<double> mon{10.0, 11.0};
    EXPECT_DOUBLE_EQ(ksStatisticSortedRef(ref, mon), 1.0);
}

TEST(FastKsTest, CriticalValueMatchesFormula)
{
    const double c = eddie::core::ksCriticalValue(100, 25, 0.05);
    EXPECT_NEAR(c, 1.3581 * std::sqrt(125.0 / 2500.0), 2e-3);
}

TEST(FastKsTest, RejectConsistentWithStatsTest)
{
    std::mt19937_64 rng(3);
    std::normal_distribution<double> a(0.0, 1.0), b(0.8, 1.0);
    std::vector<double> ref(300), mon(30);
    for (auto &v : ref)
        v = a(rng);
    for (auto &v : mon)
        v = b(rng);
    std::sort(ref.begin(), ref.end());
    const bool fast = eddie::core::ksRejectSortedRef(ref, mon, 0.01);
    const auto slow = eddie::stats::ksTest(ref, mon, 0.01);
    EXPECT_EQ(fast, slow.reject);
}

TEST(FastKsTest, EmptyInputsNeverReject)
{
    std::vector<double> ref{1.0};
    EXPECT_FALSE(eddie::core::ksRejectSortedRef(ref, {}, 0.01));
    EXPECT_FALSE(eddie::core::ksRejectSortedRef({}, ref, 0.01));
}

} // namespace
