#include <random>

#include <gtest/gtest.h>

#include "core/baseline_parametric.h"
#include "core/baseline_power.h"

namespace
{

using namespace eddie::core;

TEST(BaselinePowerTest, WindowMeansSliding)
{
    std::vector<double> power{1, 1, 1, 5, 5, 5, 9, 9, 9};
    const auto means = windowMeans(power, 3, 3);
    ASSERT_EQ(means.size(), 3u);
    EXPECT_DOUBLE_EQ(means[0], 1.0);
    EXPECT_DOUBLE_EQ(means[1], 5.0);
    EXPECT_DOUBLE_EQ(means[2], 9.0);
}

TEST(BaselinePowerTest, ShortInputYieldsNothing)
{
    std::vector<double> power{1, 2};
    EXPECT_TRUE(windowMeans(power, 10, 5).empty());
    EXPECT_TRUE(windowMeans(power, 0, 5).empty());
}

TEST(BaselinePowerTest, DetectorFlagsOutliers)
{
    std::mt19937_64 rng(1);
    std::normal_distribution<double> d(10.0, 0.5);
    std::vector<std::vector<double>> training(5);
    for (auto &run : training) {
        run.resize(500);
        for (auto &v : run)
            v = d(rng);
    }
    const auto model = trainPowerDetector(training, 0.5);
    EXPECT_LT(model.lo, 10.0);
    EXPECT_GT(model.hi, 10.0);

    std::vector<double> monitored(100);
    for (auto &v : monitored)
        v = d(rng);
    monitored[50] = 20.0; // gross power anomaly
    const auto flags = powerDetectorFlags(model, monitored);
    EXPECT_TRUE(flags[50]);
    std::size_t false_flags = 0;
    for (std::size_t i = 0; i < flags.size(); ++i)
        if (flags[i] && i != 50)
            ++false_flags;
    EXPECT_LE(false_flags, 5u);
}

TEST(BaselinePowerTest, MissesPowerNeutralChange)
{
    // The key weakness the paper exploits: a change that keeps mean
    // power identical is invisible to a power-sum detector.
    std::mt19937_64 rng(2);
    std::normal_distribution<double> d(10.0, 0.5);
    std::vector<std::vector<double>> training(5);
    for (auto &run : training) {
        run.resize(500);
        for (auto &v : run)
            v = d(rng);
    }
    const auto model = trainPowerDetector(training, 0.5);
    // "Injected" run with the same power distribution but different
    // periodicity (invisible to window means).
    std::vector<double> monitored(200);
    for (auto &v : monitored)
        v = d(rng);
    const auto flags = powerDetectorFlags(model, monitored);
    std::size_t flagged = 0;
    for (bool f : flags)
        if (f)
            ++flagged;
    EXPECT_LE(flagged, 6u); // ~1 % band
}

TEST(BaselineParametricTest, FitsAndTests)
{
    std::mt19937_64 rng(3);
    std::normal_distribution<double> mode1(1e6, 1e4);
    std::normal_distribution<double> mode2(2e6, 1e4);
    std::bernoulli_distribution pick(0.5);

    RegionModel rm;
    rm.trained = true;
    rm.num_peaks = 1;
    rm.group_n = 16;
    rm.ref.resize(1);
    for (int i = 0; i < 2000; ++i)
        rm.ref[0].push_back(pick(rng) ? mode1(rng) : mode2(rng));
    std::sort(rm.ref[0].begin(), rm.ref[0].end());

    const auto pr = fitParametricRegion(rm, 2);
    ASSERT_EQ(pr.per_rank.size(), 1u);

    // A group matching the training distribution passes.
    std::vector<std::vector<double>> good(1);
    for (int i = 0; i < 32; ++i)
        good[0].push_back(pick(rng) ? mode1(rng) : mode2(rng));
    EXPECT_FALSE(parametricGroupRejects(pr, good, 0.01));

    // A shifted group is rejected.
    std::vector<std::vector<double>> bad(1);
    for (int i = 0; i < 32; ++i)
        bad[0].push_back(mode2(rng) + 5e5);
    EXPECT_TRUE(parametricGroupRejects(pr, bad, 0.01));
}

} // namespace
