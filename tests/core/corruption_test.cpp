/**
 * @file
 * Randomized corruption round-trips over every persistence format:
 * truncate or bit-flip a serialized model, capture, STS stream, or
 * cache spill file at random offsets and prove the loaders answer
 * with a typed error (or, for the cache, a counted miss plus
 * recompute) — never a crash, hang, or silently wrong data.
 */

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "core/capture_cache.h"
#include "core/capture_io.h"
#include "core/errors.h"
#include "core/model.h"

namespace
{

using namespace eddie;
using namespace eddie::core;

TrainedModel
sampleModel()
{
    TrainedModel m;
    m.alpha = 0.01;
    m.sentinel = 2e7;
    m.entry_region = 0;
    m.num_loops = 2;
    RegionModel r0;
    r0.name = "L0";
    r0.trained = true;
    r0.num_peaks = 2;
    r0.group_n = 16;
    r0.ref = {{1e6, 1.1e6, 1.2e6}, {2e6, 2.5e6}, {2e7, 2e7}};
    r0.succs = {1};
    RegionModel r1;
    r1.name = "L1";
    r1.trained = false;
    m.regions = {r0, r1};
    return m;
}

cpu::RunResult
sampleRun(std::mt19937_64 &rng)
{
    cpu::RunResult run;
    run.sample_rate = 2e7;
    std::uniform_real_distribution<double> amp(0.0, 1.0);
    run.power.resize(500);
    run.region.resize(500);
    run.injected.resize(500);
    for (std::size_t i = 0; i < run.power.size(); ++i) {
        run.power[i] = amp(rng);
        run.region[i] = i % 3;
        run.injected[i] = i > 400 ? 1 : 0;
    }
    return run;
}

std::vector<Sts>
sampleStream(std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> freq(1e5, 9e6);
    std::vector<Sts> stream(40);
    double t = 0.0;
    for (auto &sts : stream) {
        sts.t_start = t;
        sts.t_end = t + 1e-4;
        t += 5e-5;
        for (int p = 0; p < 6; ++p)
            sts.peak_freqs.push_back(freq(rng));
        sts.true_region = 1;
        sts.window_energy = 3.5;
        sts.peak_energy_frac = 0.4;
        sts.faulted = false;
    }
    return stream;
}

std::string
flipBit(const std::string &bytes, std::mt19937_64 &rng)
{
    std::string out = bytes;
    std::uniform_int_distribution<std::size_t> pos(0, out.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    const std::size_t at = pos(rng);
    out[at] = char(out[at] ^ (1 << bit(rng)));
    return out;
}

std::string
truncate(const std::string &bytes, std::mt19937_64 &rng)
{
    std::uniform_int_distribution<std::size_t> len(0, bytes.size() - 1);
    return bytes.substr(0, len(rng));
}

TEST(CorruptionTest, ModelBitFlipsAreTypedErrors)
{
    std::ostringstream os;
    saveModel(sampleModel(), os);
    const std::string good = os.str();

    std::mt19937_64 rng(101);
    for (int trial = 0; trial < 200; ++trial) {
        std::istringstream is(flipBit(good, rng));
        try {
            // The CRC trailer covers every body byte, so a flipped
            // model may never load silently.
            (void)loadModel(is);
            FAIL() << "bit-flipped model loaded, trial " << trial;
        } catch (const Error &) {
            // typed: IoError or FormatError
        }
    }
}

TEST(CorruptionTest, ModelTruncationsNeverCrash)
{
    std::ostringstream os;
    saveModel(sampleModel(), os);
    const std::string good = os.str();

    std::mt19937_64 rng(102);
    for (int trial = 0; trial < 200; ++trial) {
        std::istringstream is(truncate(good, rng));
        try {
            // A cut that removes the trailer may still leave a
            // complete, valid body; anything else must be typed.
            (void)loadModel(is);
        } catch (const Error &) {
        }
    }
}

TEST(CorruptionTest, ModelWithoutTrailerStillLoads)
{
    std::ostringstream os;
    saveModel(sampleModel(), os);
    std::string text = os.str();
    const auto at = text.rfind("#crc32");
    ASSERT_NE(at, std::string::npos);
    text.resize(at); // legacy file: body only

    std::istringstream is(text);
    const auto m = loadModel(is);
    EXPECT_EQ(m.regions.size(), 2u);
    EXPECT_EQ(m.regions[0].ref, sampleModel().regions[0].ref);
}

TEST(CorruptionTest, ModelErrorsNameTheLine)
{
    std::ostringstream os;
    saveModel(sampleModel(), os);
    std::string text = os.str();
    text.resize(text.rfind("#crc32"));
    // Break the trained flag on the first region line (line 3).
    const auto at = text.find("L0 1");
    ASSERT_NE(at, std::string::npos);
    text[at + 3] = '9';

    std::istringstream is(text);
    try {
        (void)loadModel(is);
        FAIL() << "bad trained flag accepted";
    } catch (const FormatError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CorruptionTest, CaptureCorruptionIsTypedError)
{
    std::mt19937_64 rng(103);
    std::ostringstream os(std::ios::binary);
    saveCapture(sampleRun(rng), os);
    const std::string good = os.str();

    // Sanity: the pristine bytes round-trip.
    {
        std::istringstream is(good, std::ios::binary);
        EXPECT_EQ(loadCapture(is).power.size(), 500u);
    }
    for (int trial = 0; trial < 200; ++trial) {
        // Framing covers every byte: magic, version, length, payload
        // and CRC — a flip anywhere must throw, as must any cut.
        std::istringstream flipped(flipBit(good, rng),
                                   std::ios::binary);
        EXPECT_THROW((void)loadCapture(flipped), Error)
            << "trial " << trial;
        std::istringstream cut(truncate(good, rng), std::ios::binary);
        EXPECT_THROW((void)loadCapture(cut), Error)
            << "trial " << trial;
    }
}

TEST(CorruptionTest, StsStreamCorruptionIsTypedError)
{
    std::mt19937_64 rng(104);
    std::ostringstream os(std::ios::binary);
    saveStsStream(sampleStream(rng), os);
    const std::string good = os.str();

    {
        std::istringstream is(good, std::ios::binary);
        const auto loaded = loadStsStream(is);
        ASSERT_EQ(loaded.size(), 40u);
        EXPECT_EQ(loaded[0].window_energy, 3.5);
        EXPECT_EQ(loaded[0].peak_energy_frac, 0.4);
    }
    for (int trial = 0; trial < 200; ++trial) {
        std::istringstream flipped(flipBit(good, rng),
                                   std::ios::binary);
        EXPECT_THROW((void)loadStsStream(flipped), Error)
            << "trial " << trial;
        std::istringstream cut(truncate(good, rng), std::ios::binary);
        EXPECT_THROW((void)loadStsStream(cut), Error)
            << "trial " << trial;
    }
}

TEST(CorruptionTest, CorruptSpillIsCountedMissNotError)
{
    const auto dir = std::filesystem::path(::testing::TempDir()) /
                     "eddie_corruption_test";
    std::filesystem::create_directories(dir);

    CaptureCacheConfig cc;
    cc.capacity = 1;
    cc.spill_dir = dir.string();

    std::mt19937_64 rng(105);
    const auto stream_a = sampleStream(rng);
    const auto stream_b = sampleStream(rng);
    {
        CaptureCache cache(cc);
        cache.getOrCompute("key-a", [&] { return stream_a; });
        cache.getOrCompute("key-b", [&] { return stream_b; });
        // key-a evicted and spilled.
    }
    std::filesystem::path spill;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        // capacity 1: key-a's spill is the one not holding key-b.
        std::ifstream is(e.path(), std::ios::binary);
        std::ostringstream slurp;
        slurp << is.rdbuf();
        if (slurp.str().find("key-a") != std::string::npos)
            spill = e.path();
    }
    ASSERT_FALSE(spill.empty());

    std::mt19937_64 corrupt_rng(106);
    for (int trial = 0; trial < 30; ++trial) {
        std::ifstream is(spill, std::ios::binary);
        std::ostringstream slurp;
        slurp << is.rdbuf();
        const std::string good = slurp.str();
        const std::string bad = trial % 2 == 0 ?
            flipBit(good, corrupt_rng) :
            truncate(good, corrupt_rng);
        {
            std::ofstream osf(spill,
                              std::ios::binary | std::ios::trunc);
            osf.write(bad.data(), std::streamsize(bad.size()));
        }

        CaptureCache cache(cc);
        std::size_t computes = 0;
        const auto got = cache.getOrCompute("key-a", [&] {
            ++computes;
            return stream_a;
        });
        const auto stats = cache.stats();
        // Three legitimate outcomes, none of which is an exception:
        // the damage was caught and counted (recompute), the flip
        // hit the stored key so the file reads as another capture's
        // spill (plain miss), or nothing guarded was hit and the
        // stream decoded intact (disk hit).
        if (computes == 1) {
            EXPECT_EQ(stats.misses, 1u);
            EXPECT_LE(stats.spill_corrupt + stats.spill_short_read,
                      1u);
            EXPECT_EQ(stats.disk_hits, 0u);
        } else {
            EXPECT_EQ(computes, 0u);
            EXPECT_EQ(stats.disk_hits, 1u);
        }
        EXPECT_EQ(got.size(), stream_a.size());
        EXPECT_EQ(got.empty() ? 0.0 : got[0].window_energy,
                  stream_a[0].window_energy);

        // Restore the pristine spill for the next trial.
        std::ofstream osf(spill, std::ios::binary | std::ios::trunc);
        osf.write(good.data(), std::streamsize(good.size()));
    }

    // Targeted damage with deterministic counters: the last byte is
    // inside the embedded stream's CRC footer, so flipping it is a
    // detected corruption; cutting the file in half is a short read.
    std::ifstream is(spill, std::ios::binary);
    std::ostringstream slurp;
    slurp << is.rdbuf();
    const std::string good = slurp.str();

    auto write_spill = [&](const std::string &bytes) {
        std::ofstream osf(spill, std::ios::binary | std::ios::trunc);
        osf.write(bytes.data(), std::streamsize(bytes.size()));
    };
    {
        std::string bad = good;
        bad.back() = char(bad.back() ^ 0x40);
        write_spill(bad);
        CaptureCache cache(cc);
        (void)cache.getOrCompute("key-a", [&] { return stream_a; });
        EXPECT_EQ(cache.stats().spill_corrupt, 1u);
        EXPECT_EQ(cache.stats().misses, 1u);
    }
    {
        write_spill(good.substr(0, good.size() / 2));
        CaptureCache cache(cc);
        (void)cache.getOrCompute("key-a", [&] { return stream_a; });
        EXPECT_EQ(cache.stats().spill_short_read, 1u);
        EXPECT_EQ(cache.stats().misses, 1u);
    }

    std::filesystem::remove_all(dir);
}

} // namespace
