/**
 * @file
 * Tests of the monitor's robustness mechanisms beyond the paper's
 * Algorithm 1: guard ranks against absorber regions, the fresh-window
 * drift tolerance, the post-change dwell, decisive transitions, and
 * the Mann-Whitney test variant.
 */

#include <random>

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "core/trainer.h"
#include "prog/builder.h"
#include "prog/regions.h"

namespace
{

using namespace eddie;
using namespace eddie::core;

constexpr double kSentinel = 2e7;

prog::RegionGraph
twoLoopGraph()
{
    prog::ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 8);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.addi(1, 1, 1);
    b.blt(1, 2, l0);
    b.nop();
    b.li(1, 0);
    auto l1 = b.newLabel();
    b.bind(l1);
    b.addi(1, 1, 1);
    b.blt(1, 2, l1);
    b.halt();
    static prog::Program p = b.take();
    return prog::analyzeProgram(p);
}

/** Sharp two-peak STS around the given bases. */
Sts
sharpSts(double f1, double f2, std::mt19937_64 &rng, double t,
         std::size_t region)
{
    std::normal_distribution<double> jitter(0.0, 2000.0);
    Sts sts;
    sts.t_start = t;
    sts.t_end = t + 1e-4;
    sts.peak_freqs = {f1 + jitter(rng), f2 + jitter(rng)};
    while (sts.peak_freqs.size() < 6)
        sts.peak_freqs.push_back(kSentinel);
    sts.true_region = region;
    return sts;
}

/** Diffuse single-peak STS: the peak lands anywhere in a wide band
 *  (or is missing entirely). */
Sts
diffuseSts(std::mt19937_64 &rng, double t, std::size_t region)
{
    std::uniform_real_distribution<double> wide(5e5, 8e6);
    std::bernoulli_distribution missing(0.4);
    Sts sts;
    sts.t_start = t;
    sts.t_end = t + 1e-4;
    sts.peak_freqs = {missing(rng) ? kSentinel : wide(rng)};
    while (sts.peak_freqs.size() < 6)
        sts.peak_freqs.push_back(kSentinel);
    sts.true_region = region;
    return sts;
}

/** Trains L0 = sharp loop, L1 = diffuse loop. */
TrainedModel
absorberModel(std::mt19937_64 &rng)
{
    std::vector<std::vector<Sts>> runs;
    for (int r = 0; r < 6; ++r) {
        std::vector<Sts> run;
        double t = 0.0;
        for (int i = 0; i < 80; ++i, t += 5e-5)
            run.push_back(sharpSts(1e6, 2e6, rng, t, 0));
        for (int i = 0; i < 80; ++i, t += 5e-5)
            run.push_back(diffuseSts(rng, t, 1));
        runs.push_back(std::move(run));
    }
    return train(runs, twoLoopGraph(), kSentinel);
}

TEST(MonitorExtensionsTest, GuardRanksBlockAbsorberDuringInjection)
{
    std::mt19937_64 rng(1);
    const auto model = absorberModel(rng);
    Monitor mon(model, MonitorConfig());

    // Normal L0, then an injection shifts L0's peaks. The diffuse
    // L1 would happily "accept" almost any single value, but the
    // injected windows still carry a second real peak where L1's
    // training saw none — the guard ranks must keep L1 from
    // absorbing the anomaly.
    double t = 0.0;
    for (int i = 0; i < 40; ++i, t += 5e-5)
        mon.step(sharpSts(1e6, 2e6, rng, t, 0));
    EXPECT_EQ(mon.currentRegion(), 0u);
    for (int i = 0; i < 60; ++i, t += 5e-5) {
        auto sts = sharpSts(3.1e6, 4.2e6, rng, t, 0);
        sts.injected = true;
        mon.step(sts);
    }
    EXPECT_FALSE(mon.reports().empty());
    EXPECT_EQ(mon.currentRegion(), 0u)
        << "the diffuse successor absorbed the injection";
}

TEST(MonitorExtensionsTest, LegitimateTransitionToDiffuseRegion)
{
    std::mt19937_64 rng(2);
    const auto model = absorberModel(rng);
    Monitor mon(model, MonitorConfig());

    double t = 0.0;
    for (int i = 0; i < 60; ++i, t += 5e-5)
        mon.step(sharpSts(1e6, 2e6, rng, t, 0));
    for (int i = 0; i < 60; ++i, t += 5e-5)
        mon.step(diffuseSts(rng, t, 1));
    EXPECT_EQ(mon.currentRegion(), 1u);
    // The abrupt synthetic boundary may cost one border report (the
    // paper notes borders as its main inaccuracy source); sustained
    // alarms would be a bug.
    EXPECT_LE(mon.reports().size(), 1u);
}

TEST(MonitorExtensionsTest, FreshToleranceSurvivesSlowDrift)
{
    // A region whose peak drifts slowly across a broad trained
    // range: full-window tests may reject locally-concentrated
    // windows, but the fresh-window tolerance must keep the monitor
    // from reporting.
    std::mt19937_64 rng(3);
    auto drifting = [](int i) {
        return 1e6 + 2.5e5 * double(i) / 160.0; // 25 % slow drift
    };
    std::vector<std::vector<Sts>> runs;
    for (int r = 0; r < 6; ++r) {
        std::vector<Sts> run;
        double t = 0.0;
        for (int i = 0; i < 160; ++i, t += 5e-5) {
            const double f = drifting(i);
            run.push_back(sharpSts(f, 2.0 * f, rng, t, 0));
        }
        runs.push_back(std::move(run));
    }
    const auto model = train(runs, twoLoopGraph(), kSentinel);
    // This region's drift is too strong for any group size (its best
    // FRR stays high), so the trainer must declare it unverifiable —
    // a coverage loss, not an alarm storm.
    EXPECT_FALSE(model.regions[0].trained);
    Monitor mon(model, MonitorConfig());
    double t = 0.0;
    for (int i = 0; i < 160; ++i, t += 5e-5) {
        const double f = drifting(i);
        mon.step(sharpSts(f, 2.0 * f, rng, t, 0));
    }
    EXPECT_LE(mon.reports().size(), 1u);
}

TEST(MonitorExtensionsTest, MannWhitneyVariantDetectsMedianShift)
{
    std::mt19937_64 rng(4);
    const auto model = absorberModel(rng);
    MonitorConfig cfg;
    cfg.test = TestKind::MannWhitney;
    Monitor mon(model, cfg);
    double t = 0.0;
    for (int i = 0; i < 40; ++i, t += 5e-5)
        mon.step(sharpSts(1e6, 2e6, rng, t, 0));
    EXPECT_TRUE(mon.reports().empty());
    for (int i = 0; i < 60; ++i, t += 5e-5) {
        auto sts = sharpSts(3.1e6, 4.2e6, rng, t, 0);
        sts.injected = true;
        mon.step(sts);
    }
    EXPECT_FALSE(mon.reports().empty());
}

TEST(MonitorExtensionsTest, HandoffDisabledStillTracksViaRejectPath)
{
    std::mt19937_64 rng(5);
    const auto model = absorberModel(rng);
    MonitorConfig cfg;
    cfg.enable_handoff = false;
    Monitor mon(model, cfg);
    double t = 0.0;
    for (int i = 0; i < 60; ++i, t += 5e-5)
        mon.step(sharpSts(1e6, 2e6, rng, t, 0));
    for (int i = 0; i < 60; ++i, t += 5e-5)
        mon.step(diffuseSts(rng, t, 1));
    // The sharp region's own rejection plus candidate acceptance
    // must still move the monitor forward.
    EXPECT_EQ(mon.currentRegion(), 1u);
}

TEST(MonitorExtensionsTest, RecordsAlignWithSteps)
{
    std::mt19937_64 rng(6);
    const auto model = absorberModel(rng);
    Monitor mon(model, MonitorConfig());
    double t = 0.0;
    for (int i = 0; i < 30; ++i, t += 5e-5)
        mon.step(sharpSts(1e6, 2e6, rng, t, 0));
    EXPECT_EQ(mon.records().size(), 30u);
    for (const auto &rec : mon.records())
        EXPECT_LT(rec.region, model.regions.size());
}

} // namespace
