/**
 * @file
 * Tests of the Pipeline facade: determinism, signal-path behaviour,
 * and the workload spectral characters the experiment design relies
 * on.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace
{

using namespace eddie;
using core::Pipeline;
using core::PipelineConfig;

TEST(PipelineTest, SimulationIsDeterministicPerSeed)
{
    PipelineConfig cfg;
    Pipeline pipe(workloads::makeWorkload("sha", 0.15), cfg);
    const auto a = pipe.simulate(9);
    const auto b = pipe.simulate(9);
    EXPECT_EQ(a.power, b.power);
    EXPECT_EQ(a.region, b.region);
    const auto c = pipe.simulate(10);
    EXPECT_NE(a.power, c.power); // different input and timing
}

TEST(PipelineTest, StsStreamCarriesLabels)
{
    PipelineConfig cfg;
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.15), cfg);
    const auto stream = pipe.captureRun(3);
    ASSERT_GT(stream.size(), 20u);
    // Every loop region appears in the labels.
    std::vector<bool> seen(pipe.workload().regions.num_loops, false);
    for (const auto &sts : stream)
        if (sts.true_region < seen.size())
            seen[sts.true_region] = true;
    for (std::size_t l = 0; l < seen.size(); ++l)
        EXPECT_TRUE(seen[l]) << "loop region " << l;
    // No STS claims injection on a clean run.
    for (const auto &sts : stream)
        EXPECT_FALSE(sts.injected);
}

TEST(PipelineTest, EmPathDiffersFromPowerPath)
{
    auto power_cfg = PipelineConfig();
    auto em_cfg = PipelineConfig();
    em_cfg.path = core::SignalPath::EmBaseband;
    em_cfg.channel.snr_db = 15.0;
    Pipeline power_pipe(workloads::makeWorkload("sha", 0.15),
                        power_cfg);
    Pipeline em_pipe(workloads::makeWorkload("sha", 0.15), em_cfg);

    const auto rr = power_pipe.simulate(5);
    const auto clean = power_pipe.toSts(rr);
    const auto noisy = em_pipe.toSts(rr);
    ASSERT_EQ(clean.size(), noisy.size());
    bool any_diff = false;
    for (std::size_t i = 0; i < clean.size(); ++i)
        any_diff |= clean[i].peak_freqs != noisy[i].peak_freqs;
    EXPECT_TRUE(any_diff);
}

TEST(PipelineTest, GsmQuantizationLoopIsPeakless)
{
    // The experiment design depends on gsm L1 having (almost) no
    // usable peaks — the paper's poor-coverage case.
    PipelineConfig cfg;
    Pipeline pipe(workloads::makeWorkload("gsm", 0.3), cfg);
    const auto stream = pipe.captureRun(4);
    const double sentinel = core::missingPeakSentinel(
        cfg.core.clock_hz / double(cfg.core.cycles_per_sample));
    std::size_t l1 = 0, l1_missing = 0;
    for (const auto &sts : stream) {
        if (sts.true_region != 1)
            continue;
        ++l1;
        l1_missing += sts.peak_freqs[0] >= sentinel;
    }
    ASSERT_GT(l1, 10u);
    EXPECT_GT(double(l1_missing) / double(l1), 0.8);
}

TEST(PipelineTest, ShaRoundLoopHasStablePeak)
{
    // And sha's 80-round loop must have a sharp, stable strongest
    // peak — the paper's shortest-latency case.
    PipelineConfig cfg;
    Pipeline pipe(workloads::makeWorkload("sha", 0.3), cfg);
    const auto stream = pipe.captureRun(4);
    std::vector<double> l1_rank0;
    const double sentinel = core::missingPeakSentinel(
        cfg.core.clock_hz / double(cfg.core.cycles_per_sample));
    for (const auto &sts : stream)
        if (sts.true_region == 1 && sts.peak_freqs[0] < sentinel)
            l1_rank0.push_back(sts.peak_freqs[0]);
    ASSERT_GT(l1_rank0.size(), 20u);
    // The strongest peak is present in almost every frame and
    // concentrates tightly (it wanders a few bins with the modeled
    // timing drift, but its relative spread stays small).
    double mean = 0.0;
    for (double f : l1_rank0)
        mean += f;
    mean /= double(l1_rank0.size());
    double var = 0.0;
    for (double f : l1_rank0)
        var += (f - mean) * (f - mean);
    var /= double(l1_rank0.size());
    EXPECT_LT(std::sqrt(var) / mean, 0.02);
}

TEST(PipelineTest, TrainedModelIsDeterministic)
{
    PipelineConfig cfg;
    cfg.train_runs = 3;
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.15), cfg);
    const auto a = pipe.trainModel();
    const auto b = pipe.trainModel();
    ASSERT_EQ(a.regions.size(), b.regions.size());
    for (std::size_t r = 0; r < a.regions.size(); ++r) {
        EXPECT_EQ(a.regions[r].trained, b.regions[r].trained);
        EXPECT_EQ(a.regions[r].group_n, b.regions[r].group_n);
        EXPECT_EQ(a.regions[r].ref, b.regions[r].ref);
    }
}

} // namespace
