/**
 * @file
 * Tests of the monitor's fixed-capacity peak-history ring: eviction
 * order, width normalization (pad/truncate), and reuse after clear()
 * — the invariants Monitor::gatherGroup() depends on.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/ring_buffer.h"

namespace
{

using eddie::core::PeakHistory;

TEST(PeakHistoryTest, FillsThenEvictsOldestFirst)
{
    PeakHistory h;
    h.reset(3, 2, -1.0);
    EXPECT_EQ(h.size(), 0u);

    h.push({1.0, 10.0});
    h.push({2.0, 20.0});
    ASSERT_EQ(h.size(), 2u);
    EXPECT_EQ(h.at(0, 0), 1.0);
    EXPECT_EQ(h.at(1, 1), 20.0);

    h.push({3.0, 30.0});
    h.push({4.0, 40.0}); // evicts the {1, 10} row
    ASSERT_EQ(h.size(), 3u);
    EXPECT_EQ(h.at(0, 0), 2.0);
    EXPECT_EQ(h.at(1, 0), 3.0);
    EXPECT_EQ(h.at(2, 0), 4.0);
    EXPECT_EQ(h.at(2, 1), 40.0);
}

TEST(PeakHistoryTest, MatchesReferenceSlidingWindow)
{
    // Long push sequence vs a plain vector-of-rows oracle: the ring
    // must always expose exactly the newest `capacity` rows in order.
    const std::size_t cap = 5, width = 3;
    PeakHistory h;
    h.reset(cap, width, 0.0);
    std::vector<std::vector<double>> oracle;
    for (std::size_t step = 0; step < 37; ++step) {
        std::vector<double> row(width);
        for (std::size_t p = 0; p < width; ++p)
            row[p] = double(step * 10 + p);
        h.push(row);
        oracle.push_back(row);
        if (oracle.size() > cap)
            oracle.erase(oracle.begin());

        ASSERT_EQ(h.size(), oracle.size()) << "step " << step;
        for (std::size_t i = 0; i < oracle.size(); ++i)
            for (std::size_t p = 0; p < width; ++p)
                ASSERT_EQ(h.at(i, p), oracle[i][p])
                    << "step " << step << " row " << i;
    }
}

TEST(PeakHistoryTest, ShortRowsArePaddedWithFill)
{
    // A run whose STSs carry fewer peak ranks than the widest trained
    // reference must read as "missing peak" at the absent ranks.
    PeakHistory h;
    h.reset(2, 4, 123.5);
    h.push({7.0});
    ASSERT_EQ(h.size(), 1u);
    EXPECT_EQ(h.at(0, 0), 7.0);
    EXPECT_EQ(h.at(0, 1), 123.5);
    EXPECT_EQ(h.at(0, 3), 123.5);
}

TEST(PeakHistoryTest, LongRowsAreTruncated)
{
    PeakHistory h;
    h.reset(2, 2, 0.0);
    h.push({1.0, 2.0, 3.0, 4.0}); // ranks beyond width are dropped
    ASSERT_EQ(h.size(), 1u);
    EXPECT_EQ(h.at(0, 0), 1.0);
    EXPECT_EQ(h.at(0, 1), 2.0);
}

TEST(PeakHistoryTest, ClearKeepsShapeAndRestartsCleanly)
{
    PeakHistory h;
    h.reset(3, 2, -1.0);
    h.push({1.0, 2.0});
    h.push({3.0, 4.0});
    h.clear();
    EXPECT_EQ(h.size(), 0u);
    h.push({5.0, 6.0});
    ASSERT_EQ(h.size(), 1u);
    EXPECT_EQ(h.at(0, 0), 5.0);
    EXPECT_EQ(h.at(0, 1), 6.0);
}

TEST(PeakHistoryTest, PushCounterIsMonotonicAcrossClearAndWrap)
{
    // The delta exporter keys "how many rows were appended since the
    // last cut" off pushes(), so the counter must keep counting
    // through ring wrap-around AND through clear() (an outage resync
    // drops the rows but not the fact that pushes happened) — only
    // reset() zeroes it.
    PeakHistory h;
    h.reset(2, 1, 0.0);
    EXPECT_EQ(h.pushes(), 0u);
    for (int i = 0; i < 5; ++i)
        h.push({double(i)});
    EXPECT_EQ(h.pushes(), 5u); // wrapped twice, counter kept going
    EXPECT_EQ(h.size(), 2u);

    h.clear();
    EXPECT_EQ(h.size(), 0u);
    EXPECT_EQ(h.pushes(), 5u); // survives clear()
    h.push({9.0});
    EXPECT_EQ(h.pushes(), 6u);

    h.reset(2, 1, 0.0);
    EXPECT_EQ(h.pushes(), 0u); // reset() starts a new life
}

TEST(PeakHistoryTest, DegenerateShapesAreClampedToOne)
{
    PeakHistory h;
    h.reset(0, 0, 9.0); // capacity and width clamp to 1
    h.push({});
    ASSERT_EQ(h.size(), 1u);
    EXPECT_EQ(h.at(0, 0), 9.0); // empty row: pure fill
    h.push({42.0});
    ASSERT_EQ(h.size(), 1u); // capacity 1: previous row evicted
    EXPECT_EQ(h.at(0, 0), 42.0);
}

} // namespace
