#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/sts.h"
#include "prog/regions.h"

namespace
{

using namespace eddie;
using core::extractStsStream;
using core::FeatureConfig;

sig::Spectrogram
makeSpectrogram(std::size_t frames, double tone_freq, double fs)
{
    sig::StftConfig cfg;
    cfg.window_size = 512;
    cfg.hop = 256;
    cfg.sample_rate = fs;
    sig::Stft stft(cfg);
    const std::size_t n = cfg.window_size + cfg.hop * frames;
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = std::sin(2.0 * std::numbers::pi * tone_freq *
                        double(i) / fs);
    }
    return stft.analyze(x);
}

TEST(StsTest, ExtractsTonePeak)
{
    const double fs = 10000.0;
    const double f0 = fs * 50.0 / 512.0; // exact bin
    const auto sg = makeSpectrogram(10, f0, fs);
    const auto stream = extractStsStream(sg, nullptr, 0,
                                         FeatureConfig());
    ASSERT_GT(stream.size(), 0u);
    for (const auto &sts : stream) {
        ASSERT_FALSE(sts.peak_freqs.empty());
        EXPECT_NEAR(sts.peak_freqs[0], f0, fs / 512.0);
    }
}

TEST(StsTest, PadsMissingPeaksWithSentinel)
{
    const double fs = 10000.0;
    const auto sg = makeSpectrogram(5, fs * 50.0 / 512.0, fs);
    FeatureConfig cfg;
    cfg.max_peaks = 10;
    const auto stream = extractStsStream(sg, nullptr, 0, cfg);
    const double sentinel = core::missingPeakSentinel(fs);
    for (const auto &sts : stream) {
        EXPECT_EQ(sts.peak_freqs.size(), 10u);
        // A pure tone has few real peaks; the tail is sentinel.
        EXPECT_EQ(sts.peak_freqs.back(), sentinel);
    }
}

TEST(StsTest, PositiveOnlyFiltersMirrorPeaks)
{
    const double fs = 10000.0;
    const auto sg = makeSpectrogram(5, fs * 50.0 / 512.0, fs);
    FeatureConfig cfg;
    cfg.positive_only = true;
    const auto stream = extractStsStream(sg, nullptr, 0, cfg);
    const double sentinel = core::missingPeakSentinel(fs);
    for (const auto &sts : stream)
        for (double f : sts.peak_freqs)
            EXPECT_TRUE(f >= 0.0 || f == sentinel);
}

TEST(StsTest, GroundTruthLabelsMajorityVote)
{
    const double fs = 10000.0;
    const auto sg = makeSpectrogram(10, 1000.0, fs);

    cpu::RunResult annot;
    annot.sample_rate = fs;
    const std::size_t total = 512 + 256 * 10;
    annot.region.assign(total, 0);
    // Second half of the run belongs to region 1.
    for (std::size_t i = total / 2; i < total; ++i)
        annot.region[i] = 1;
    annot.injected.assign(total, 0);
    annot.injected[total - 300] = 1;

    const auto stream = extractStsStream(sg, &annot, 2,
                                         FeatureConfig());
    ASSERT_GT(stream.size(), 4u);
    EXPECT_EQ(stream.front().true_region, 0u);
    EXPECT_EQ(stream.back().true_region, 1u);
    // Injection flag lands on the frames covering that sample.
    bool any_injected = false;
    for (const auto &sts : stream)
        any_injected = any_injected || sts.injected;
    EXPECT_TRUE(any_injected);
    EXPECT_FALSE(stream.front().injected);
}

TEST(StsTest, FrameTimesMonotone)
{
    const auto sg = makeSpectrogram(8, 1000.0, 10000.0);
    const auto stream = extractStsStream(sg, nullptr, 0,
                                         FeatureConfig());
    for (std::size_t i = 1; i < stream.size(); ++i) {
        EXPECT_GT(stream[i].t_start, stream[i - 1].t_start);
        EXPECT_GT(stream[i].t_end, stream[i].t_start);
    }
}

} // namespace
