/**
 * @file
 * Fuzz-style robustness tests: the monitor must survive arbitrary
 * STS streams (garbage frequencies, empty peak vectors, NaN-free
 * extremes, region-free labels) without crashing, and its state must
 * stay bounded.
 */

#include <random>

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "core/trainer.h"
#include "prog/builder.h"
#include "prog/regions.h"

namespace
{

using namespace eddie;
using namespace eddie::core;

constexpr double kSentinel = 2e7;

TrainedModel
smallModel()
{
    prog::ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 8);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.addi(1, 1, 1);
    b.blt(1, 2, l0);
    b.halt();
    static prog::Program p = b.take();
    const auto rg = prog::analyzeProgram(p);

    std::mt19937_64 rng(1);
    std::normal_distribution<double> jitter(1e6, 5e3);
    std::vector<std::vector<Sts>> runs(4);
    for (auto &run : runs) {
        double t = 0.0;
        for (int i = 0; i < 120; ++i, t += 5e-5) {
            Sts sts;
            sts.t_start = t;
            sts.t_end = t + 1e-4;
            sts.peak_freqs = {jitter(rng), 2.0 * jitter(rng),
                              kSentinel, kSentinel};
            sts.true_region = 0;
            run.push_back(sts);
        }
    }
    return train(runs, rg, kSentinel);
}

class MonitorFuzzTest : public ::testing::TestWithParam<int>
{
};

TEST_P(MonitorFuzzTest, SurvivesArbitraryStreams)
{
    const auto model = smallModel();
    Monitor mon(model, MonitorConfig());

    std::mt19937_64 rng(std::uint64_t(GetParam()) * 77);
    std::uniform_int_distribution<int> len(0, 9);
    std::uniform_real_distribution<double> freq(-1e9, 1e9);
    std::uniform_int_distribution<int> kind(0, 3);

    double t = 0.0;
    for (int i = 0; i < 500; ++i, t += 5e-5) {
        Sts sts;
        sts.t_start = t;
        sts.t_end = t + 1e-4;
        switch (kind(rng)) {
          case 0: // plausible
            sts.peak_freqs = {1e6, 2e6, kSentinel};
            break;
          case 1: // empty
            break;
          case 2: // random garbage, variable length
            for (int k = 0, n = len(rng); k < n; ++k)
                sts.peak_freqs.push_back(freq(rng));
            break;
          case 3: // extremes
            sts.peak_freqs = {0.0, -0.0, 1e300, -1e300, kSentinel};
            break;
        }
        sts.true_region = std::size_t(-1);
        const auto rec = mon.step(sts);
        EXPECT_LT(rec.region, model.regions.size());
    }
    EXPECT_EQ(mon.records().size(), 500u);
    // Reports are bounded by the streak rule: at most one per
    // (reportThreshold + 1) steps.
    EXPECT_LE(mon.reports().size(), 500u / 4 + 1);
}

TEST_P(MonitorFuzzTest, DeterministicForIdenticalStreams)
{
    const auto model = smallModel();
    std::mt19937_64 rng{std::uint64_t(GetParam())};
    std::uniform_real_distribution<double> freq(1e5, 1e7);

    std::vector<Sts> stream;
    double t = 0.0;
    for (int i = 0; i < 200; ++i, t += 5e-5) {
        Sts sts;
        sts.t_start = t;
        sts.t_end = t + 1e-4;
        sts.peak_freqs = {freq(rng), freq(rng), kSentinel};
        stream.push_back(sts);
    }

    Monitor a(model, MonitorConfig());
    Monitor b(model, MonitorConfig());
    for (const auto &sts : stream) {
        a.step(sts);
        b.step(sts);
    }
    EXPECT_EQ(a.reports().size(), b.reports().size());
    ASSERT_EQ(a.records().size(), b.records().size());
    for (std::size_t i = 0; i < a.records().size(); ++i) {
        EXPECT_EQ(a.records()[i].region, b.records()[i].region);
        EXPECT_EQ(a.records()[i].reported, b.records()[i].reported);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorFuzzTest,
                         ::testing::Range(1, 9));

} // namespace
