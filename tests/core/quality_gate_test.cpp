/**
 * @file
 * Tests of the signal-quality gate and the monitor's degraded mode:
 * clean signals must pass untouched (gating on == gating off, byte
 * for byte), degraded windows must be quarantined instead of
 * reported, and an outage must end in a resync rather than a wedged
 * monitor.
 */

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/monitor.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "prog/builder.h"
#include "prog/regions.h"

namespace
{

using namespace eddie;
using namespace eddie::core;

constexpr double kSentinel = 2e7;

prog::RegionGraph
twoLoopGraph()
{
    prog::ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 8);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.addi(1, 1, 1);
    b.blt(1, 2, l0);
    b.nop();
    b.li(1, 0);
    auto l1 = b.newLabel();
    b.bind(l1);
    b.addi(1, 1, 1);
    b.blt(1, 2, l1);
    b.halt();
    static prog::Program p = b.take();
    return prog::analyzeProgram(p);
}

/** Sharp two-peak STS with a healthy window energy. */
Sts
sharpSts(std::mt19937_64 &rng, double t, std::size_t region)
{
    std::normal_distribution<double> jitter(0.0, 2000.0);
    Sts sts;
    sts.t_start = t;
    sts.t_end = t + 1e-4;
    sts.peak_freqs = {1e6 + jitter(rng), 2e6 + jitter(rng)};
    while (sts.peak_freqs.size() < 6)
        sts.peak_freqs.push_back(kSentinel);
    sts.true_region = region;
    sts.window_energy = 1.0;
    sts.peak_energy_frac = 0.8;
    return sts;
}

/** A window captured during a dropout: almost no energy, no peaks. */
Sts
dropoutSts(double t)
{
    Sts sts;
    sts.t_start = t;
    sts.t_end = t + 1e-4;
    sts.peak_freqs.assign(6, kSentinel);
    sts.true_region = 0;
    sts.window_energy = 1e-6;
    sts.peak_energy_frac = 0.0;
    sts.faulted = true;
    return sts;
}

TrainedModel
sharpModel(std::mt19937_64 &rng)
{
    std::vector<std::vector<Sts>> runs;
    for (int r = 0; r < 6; ++r) {
        std::vector<Sts> run;
        double t = 0.0;
        for (int i = 0; i < 160; ++i, t += 5e-5)
            run.push_back(sharpSts(rng, t, i < 80 ? 0 : 1));
        runs.push_back(std::move(run));
    }
    // Near-zero alpha pushes the K-S critical value to ~0.96 at the
    // monitor's n=8, which only the d=1.0 of all-sentinel outage
    // windows can cross. Chance rejections of clean jittered windows
    // (a real-but-rare monitor behaviour) would otherwise make these
    // gating assertions flaky.
    return withAlpha(train(runs, twoLoopGraph(), kSentinel), 1e-6);
}

bool
sameRecords(const std::vector<StepRecord> &a,
            const std::vector<StepRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].region != b[i].region || a[i].tested != b[i].tested ||
            a[i].rejected != b[i].rejected ||
            a[i].reported != b[i].reported ||
            a[i].transitioned != b[i].transitioned ||
            a[i].degraded != b[i].degraded)
            return false;
    }
    return true;
}

/** Clean end-to-end runs must be bit-identical with the gate on or
 *  off — the gate may only ever remove *degraded* windows. */
void
expectCleanNoOp(SignalPath path, const char *workload)
{
    PipelineConfig cfg;
    cfg.path = path;
    cfg.train_runs = 6;
    if (path == SignalPath::EmBaseband)
        cfg.channel.snr_db = 15.0;
    Pipeline pipe(workloads::makeWorkload(workload, 0.15), cfg);
    const auto model = pipe.trainModel();

    auto gated_cfg = cfg;
    auto ungated_cfg = cfg;
    ungated_cfg.monitor.quality.enabled = false;
    Pipeline gated(workloads::makeWorkload(workload, 0.15), gated_cfg);
    Pipeline ungated(workloads::makeWorkload(workload, 0.15),
                     ungated_cfg);

    for (std::uint64_t seed : {9000ULL, 9001ULL}) {
        const auto a = gated.monitorRun(model, seed);
        const auto b = ungated.monitorRun(model, seed);
        EXPECT_TRUE(sameRecords(a.records, b.records))
            << workload << " seed " << seed;
        EXPECT_EQ(a.reports.size(), b.reports.size());
        EXPECT_EQ(a.degraded.quarantined, 0u)
            << "gate fired on a clean channel";
    }
}

TEST(QualityGateTest, CleanPowerPathIsNoOp)
{
    expectCleanNoOp(SignalPath::Power, "bitcount");
}

TEST(QualityGateTest, CleanEmPathIsNoOp)
{
    expectCleanNoOp(SignalPath::EmBaseband, "sha");
}

TEST(QualityGateTest, DropoutIsQuarantinedNotReported)
{
    std::mt19937_64 rng(3);
    const auto model = sharpModel(rng);
    Monitor mon(model, MonitorConfig());

    double t = 0.0;
    for (int i = 0; i < 40; ++i, t += 5e-5)
        mon.step(sharpSts(rng, t, 0));
    ASSERT_EQ(mon.currentRegion(), 0u);
    for (int i = 0; i < 12; ++i, t += 5e-5) {
        const auto rec = mon.step(dropoutSts(t));
        EXPECT_TRUE(rec.degraded);
        EXPECT_FALSE(rec.tested);
    }
    for (int i = 0; i < 30; ++i, t += 5e-5)
        mon.step(sharpSts(rng, t, 0));

    EXPECT_TRUE(mon.reports().empty())
        << "outage windows were reported as anomalies";
    EXPECT_EQ(mon.currentRegion(), 0u);
    const auto &st = mon.degradedStats();
    EXPECT_EQ(st.quarantined, 12u);
    EXPECT_EQ(
        st.by_kind[std::size_t(WindowQuality::Dropout)], 12u);
    EXPECT_EQ(st.outages, 1u);
    EXPECT_EQ(st.longest_outage, 12u);
    EXPECT_EQ(st.resyncs, 1u);
}

TEST(QualityGateTest, UngatedMonitorIsDisturbedByDropout)
{
    std::mt19937_64 rng(3);
    const auto model = sharpModel(rng);
    MonitorConfig cfg;
    cfg.quality.enabled = false;
    Monitor mon(model, cfg);

    double t = 0.0;
    for (int i = 0; i < 40; ++i, t += 5e-5)
        mon.step(sharpSts(rng, t, 0));
    for (int i = 0; i < 12; ++i, t += 5e-5)
        mon.step(dropoutSts(t));
    for (int i = 0; i < 30; ++i, t += 5e-5)
        mon.step(sharpSts(rng, t, 0));

    // Without the gate the sentinel-only outage windows either build
    // a false anomaly streak or drag the monitor out of its region.
    bool disturbed = !mon.reports().empty() ||
                     mon.currentRegion() != 0u;
    for (const auto &rec : mon.records())
        disturbed = disturbed || rec.transitioned;
    EXPECT_TRUE(disturbed);
    EXPECT_EQ(mon.degradedStats().quarantined, 0u);
}

TEST(QualityGateTest, MalformedWindowIsQuarantined)
{
    std::mt19937_64 rng(5);
    const auto model = sharpModel(rng);
    Monitor mon(model, MonitorConfig());

    double t = 0.0;
    for (int i = 0; i < 20; ++i, t += 5e-5)
        mon.step(sharpSts(rng, t, 0));

    auto bad = sharpSts(rng, t, 0);
    bad.peak_freqs[1] = std::nan("");
    auto rec = mon.step(bad);
    EXPECT_TRUE(rec.degraded);

    auto out_of_band = sharpSts(rng, t, 0);
    out_of_band.peak_freqs[0] = 3.0 * kSentinel;
    rec = mon.step(out_of_band);
    EXPECT_TRUE(rec.degraded);

    auto truncated = sharpSts(rng, t, 0);
    truncated.peak_freqs.resize(1);
    rec = mon.step(truncated);
    EXPECT_TRUE(rec.degraded);

    EXPECT_EQ(mon.degradedStats().by_kind[std::size_t(
                  WindowQuality::Malformed)],
              3u);
    EXPECT_TRUE(mon.reports().empty());
}

TEST(QualityGateTest, LegacyStreamsSkipEnergyGates)
{
    std::mt19937_64 rng(7);
    const auto model = sharpModel(rng);
    Monitor mon(model, MonitorConfig());

    // window_energy == 0 marks streams from pre-quality captures;
    // the gate must not treat them as dropouts.
    double t = 0.0;
    for (int i = 0; i < 40; ++i, t += 5e-5) {
        auto sts = sharpSts(rng, t, 0);
        sts.window_energy = 0.0;
        const auto rec = mon.step(sts);
        EXPECT_FALSE(rec.degraded);
    }
    EXPECT_EQ(mon.degradedStats().quarantined, 0u);
}

TEST(QualityGateTest, ScoreRunCountsDegradedGroupsSeparately)
{
    std::mt19937_64 rng(9);
    const auto model = sharpModel(rng);
    Monitor mon(model, MonitorConfig());

    std::vector<Sts> stream;
    double t = 0.0;
    for (int i = 0; i < 40; ++i, t += 5e-5)
        stream.push_back(sharpSts(rng, t, 0));
    for (int i = 0; i < 6; ++i, t += 5e-5)
        stream.push_back(dropoutSts(t));
    for (int i = 0; i < 20; ++i, t += 5e-5)
        stream.push_back(sharpSts(rng, t, 0));
    for (const auto &sts : stream)
        mon.step(sts);

    const auto m =
        scoreRun(stream, mon.records(), mon.reports(), model);
    EXPECT_EQ(m.degraded_groups, 6u);
    EXPECT_EQ(m.false_positives, 0u);

    const auto agg = aggregate({m});
    EXPECT_GT(agg.degraded_pct, 0.0);

    // The human-readable summaries include the new counters.
    const auto desc = describe(mon.degradedStats());
    EXPECT_NE(desc.find("quarantined"), std::string::npos);
}

} // namespace
