#include <random>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/monitor.h"
#include "core/trainer.h"
#include "prog/builder.h"
#include "prog/regions.h"

namespace
{

using namespace eddie;
using namespace eddie::core;

constexpr double kSentinel = 2e7;

/** A two-loop region graph (L0 -> T -> L1) built from a real
 *  program so ids and successors are consistent. */
prog::RegionGraph
twoLoopGraph()
{
    prog::ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 8);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.addi(1, 1, 1);
    b.blt(1, 2, l0);
    b.nop();
    b.li(1, 0);
    auto l1 = b.newLabel();
    b.bind(l1);
    b.addi(1, 1, 1);
    b.blt(1, 2, l1);
    b.halt();
    static prog::Program p = b.take();
    return prog::analyzeProgram(p);
}

/** Synthetic STS with two peaks near the given bases. */
Sts
makeSts(double base1, double base2, std::mt19937_64 &rng,
        double t, std::size_t region)
{
    std::normal_distribution<double> jitter(0.0, 2000.0);
    Sts sts;
    sts.t_start = t;
    sts.t_end = t + 1e-4;
    sts.peak_freqs = {base1 + jitter(rng), base2 + jitter(rng)};
    while (sts.peak_freqs.size() < 6)
        sts.peak_freqs.push_back(kSentinel);
    sts.true_region = region;
    return sts;
}

/** A run: 80 STSs of L0 then 80 of L1. */
std::vector<Sts>
makeRun(std::mt19937_64 &rng, double l0_f1 = 1e6, double l0_f2 = 2e6,
        double l1_f1 = 3e6, double l1_f2 = 4.5e6)
{
    std::vector<Sts> run;
    double t = 0.0;
    for (int i = 0; i < 80; ++i, t += 5e-5)
        run.push_back(makeSts(l0_f1, l0_f2, rng, t, 0));
    for (int i = 0; i < 80; ++i, t += 5e-5)
        run.push_back(makeSts(l1_f1, l1_f2, rng, t, 1));
    return run;
}

TrainedModel
trainTwoLoopModel(std::mt19937_64 &rng)
{
    std::vector<std::vector<Sts>> runs;
    for (int r = 0; r < 6; ++r)
        runs.push_back(makeRun(rng));
    return train(runs, twoLoopGraph(), kSentinel);
}

TEST(TrainerTest, TrainsBothLoopRegions)
{
    std::mt19937_64 rng(1);
    const auto model = trainTwoLoopModel(rng);
    ASSERT_GE(model.regions.size(), 2u);
    EXPECT_TRUE(model.regions[0].trained);
    EXPECT_TRUE(model.regions[1].trained);
    EXPECT_EQ(model.regions[0].num_peaks, 2u);
    EXPECT_EQ(model.entry_region, 0u);
    // Reference sets are sorted.
    for (const auto &rank : model.regions[0].ref)
        EXPECT_TRUE(std::is_sorted(rank.begin(), rank.end()));
}

TEST(TrainerTest, GroupSizeWithinGrid)
{
    std::mt19937_64 rng(2);
    TrainerConfig cfg;
    const auto model = trainTwoLoopModel(rng);
    for (std::size_t r = 0; r < 2; ++r) {
        const auto n = model.regions[r].group_n;
        EXPECT_GE(n, cfg.n_grid.front());
        EXPECT_LE(n, cfg.n_grid.back());
    }
}

TEST(TrainerTest, FalseRejectionRateLowOnTrainingData)
{
    std::mt19937_64 rng(3);
    std::vector<std::vector<Sts>> runs;
    for (int r = 0; r < 6; ++r)
        runs.push_back(makeRun(rng));
    const auto model = train(runs, twoLoopGraph(), kSentinel);
    const double frr = falseRejectionRate(model.regions[0], runs, 0,
                                          model.regions[0].group_n,
                                          0.01, 2);
    EXPECT_LT(frr, 0.05);
}

TEST(TrainerTest, UntrainedWhenTooFewSamples)
{
    std::mt19937_64 rng(4);
    std::vector<std::vector<Sts>> runs{makeRun(rng)};
    TrainerConfig cfg;
    cfg.min_sts_per_region = 1000;
    const auto model = train(runs, twoLoopGraph(), kSentinel, cfg);
    EXPECT_FALSE(model.regions[0].trained);
}

TEST(TrainerTest, DiagnosticsPopulated)
{
    std::mt19937_64 rng(5);
    std::vector<std::vector<Sts>> runs;
    for (int r = 0; r < 6; ++r)
        runs.push_back(makeRun(rng));
    TrainingDiagnostics diag;
    const auto model = train(runs, twoLoopGraph(), kSentinel,
                             TrainerConfig(), &diag);
    ASSERT_EQ(diag.sts_count.size(), model.regions.size());
    EXPECT_EQ(diag.sts_count[0], 480u);
    EXPECT_FALSE(diag.sweeps[0].empty());
}

TEST(MonitorTest, TracksCleanExecution)
{
    std::mt19937_64 rng(6);
    const auto model = trainTwoLoopModel(rng);
    Monitor mon(model, MonitorConfig());
    const auto run = makeRun(rng);
    for (const auto &sts : run)
        mon.step(sts);
    EXPECT_TRUE(mon.reports().empty());
    // Tracking should end in region 1.
    EXPECT_EQ(mon.currentRegion(), 1u);
    // Coverage well above chance.
    const auto metrics = scoreRun(run, mon.records(), mon.reports(),
                                  model);
    EXPECT_GT(double(metrics.covered_steps) /
                  double(metrics.labeled_steps),
              0.7);
}

TEST(MonitorTest, ReportsInjectedPeaks)
{
    std::mt19937_64 rng(7);
    const auto model = trainTwoLoopModel(rng);
    Monitor mon(model, MonitorConfig());
    // L0 as trained, but after 40 STSs the peaks shift (injection).
    std::vector<Sts> run;
    double t = 0.0;
    for (int i = 0; i < 40; ++i, t += 5e-5)
        run.push_back(makeSts(1e6, 2e6, rng, t, 0));
    for (int i = 0; i < 60; ++i, t += 5e-5) {
        auto sts = makeSts(1.35e6, 2.6e6, rng, t, 0);
        sts.injected = true;
        run.push_back(sts);
    }
    for (const auto &sts : run)
        mon.step(sts);
    ASSERT_FALSE(mon.reports().empty());
    // First report happens after the injection starts.
    EXPECT_GT(mon.reports().front().time, 40 * 5e-5);
}

TEST(MonitorTest, NoHandoffVariantStillDetects)
{
    std::mt19937_64 rng(8);
    const auto model = trainTwoLoopModel(rng);
    MonitorConfig cfg;
    cfg.enable_handoff = false; // literal Algorithm 1
    Monitor mon(model, cfg);
    std::vector<Sts> run;
    double t = 0.0;
    for (int i = 0; i < 40; ++i, t += 5e-5)
        run.push_back(makeSts(1e6, 2e6, rng, t, 0));
    for (int i = 0; i < 60; ++i, t += 5e-5) {
        auto sts = makeSts(5.5e6, 6.5e6, rng, t, 0);
        sts.injected = true;
        run.push_back(sts);
    }
    for (const auto &sts : run)
        mon.step(sts);
    EXPECT_FALSE(mon.reports().empty());
}

TEST(MonitorTest, ReportThresholdSuppressesShortStreaks)
{
    std::mt19937_64 rng(9);
    const auto model = trainTwoLoopModel(rng);
    MonitorConfig strict;
    strict.report_threshold = 100; // never report
    Monitor mon(model, strict);
    std::vector<Sts> run;
    double t = 0.0;
    for (int i = 0; i < 40; ++i, t += 5e-5)
        run.push_back(makeSts(1e6, 2e6, rng, t, 0));
    for (int i = 0; i < 50; ++i, t += 5e-5)
        run.push_back(makeSts(5.5e6, 6.5e6, rng, t, 0));
    for (const auto &sts : run)
        mon.step(sts);
    EXPECT_TRUE(mon.reports().empty());
}

TEST(MetricsTest, ScoreRunCountsOutcomes)
{
    TrainedModel model;
    RegionModel rm;
    rm.trained = true;
    rm.num_peaks = 1;
    rm.group_n = 2;
    rm.ref = {{1.0}};
    model.regions = {rm};
    model.num_loops = 1;

    std::vector<Sts> stream(6);
    std::vector<StepRecord> records(6);
    for (std::size_t i = 0; i < 6; ++i) {
        stream[i].t_start = double(i);
        stream[i].t_end = double(i) + 0.5;
        stream[i].true_region = 0;
        records[i].region = 0;
        records[i].tested = true; // past warmup
    }
    stream[4].injected = true;
    records[4].reported = true; // true positive
    records[1].reported = true; // false positive

    std::vector<AnomalyReport> reports;
    AnomalyReport rep;
    rep.step = 4;
    rep.time = stream[4].t_end;
    reports.push_back(rep);

    const auto m = scoreRun(stream, records, reports, model);
    EXPECT_EQ(m.groups, 6u);
    // A group is charged to its newest STS: only step 4 is injected.
    EXPECT_EQ(m.injected_groups, 1u);
    EXPECT_EQ(m.true_positives, 1u);
    EXPECT_EQ(m.false_negatives, 0u);
    EXPECT_EQ(m.false_positives, 1u);
    EXPECT_NEAR(m.detection_latency, 0.5, 1e-12);
}

TEST(MetricsTest, AggregateComputesPaperUnits)
{
    RunMetrics a;
    a.groups = 100;
    a.injected_groups = 10;
    a.true_positives = 8;
    a.false_negatives = 2;
    a.false_positives = 1;
    a.detection_latency = 0.005;
    a.region_groups = {50, 50};
    a.region_correct = {50, 40};

    // Coverage comes from clean runs only.
    RunMetrics clean;
    clean.groups = 0;
    clean.covered_steps = 90;
    clean.labeled_steps = 100;

    const auto agg = aggregate({a, clean});
    EXPECT_NEAR(agg.false_positive_pct, 1.0, 1e-9);
    EXPECT_NEAR(agg.false_negative_pct, 20.0, 1e-9);
    EXPECT_NEAR(agg.true_positive_pct, 80.0, 1e-9);
    EXPECT_NEAR(agg.detection_latency_ms, 5.0, 1e-9);
    EXPECT_NEAR(agg.coverage_pct, 90.0, 1e-9);
    EXPECT_NEAR(agg.accuracy_pct, 90.0, 1e-9); // mean(100%, 80%)
    EXPECT_EQ(agg.runs_with_injection, 1u);
    EXPECT_EQ(agg.runs_detected, 1u);
}

} // namespace
