/**
 * @file
 * Determinism contract of the parallel execution layer: training and
 * batch monitoring must produce byte-identical results at any thread
 * count (the seed-ordered reduction described in docs/ALGORITHM.md).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace
{

using namespace eddie;
using core::Pipeline;
using core::PipelineConfig;

std::string
serializedModel(const PipelineConfig &base, std::size_t threads)
{
    PipelineConfig cfg = base;
    cfg.threads = threads;
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.15), cfg);
    const auto model = pipe.trainModel();
    std::ostringstream os;
    core::saveModel(model, os);
    return os.str();
}

TEST(ParallelDeterminismTest, TrainedModelIsByteIdenticalAcrossThreadCounts)
{
    PipelineConfig cfg;
    cfg.train_runs = 4;
    const auto at1 = serializedModel(cfg, 1);
    ASSERT_FALSE(at1.empty());
    EXPECT_EQ(serializedModel(cfg, 2), at1);
    EXPECT_EQ(serializedModel(cfg, 8), at1);
}

TEST(ParallelDeterminismTest, TrainingDiagnosticsMatchAcrossThreadCounts)
{
    PipelineConfig cfg;
    cfg.train_runs = 3;

    core::TrainingDiagnostics serial, parallel;
    {
        PipelineConfig c = cfg;
        c.threads = 1;
        Pipeline pipe(workloads::makeWorkload("sha", 0.15), c);
        pipe.trainModel(&serial);
    }
    {
        PipelineConfig c = cfg;
        c.threads = 8;
        Pipeline pipe(workloads::makeWorkload("sha", 0.15), c);
        pipe.trainModel(&parallel);
    }
    ASSERT_EQ(serial.sweeps.size(), parallel.sweeps.size());
    EXPECT_EQ(serial.sts_count, parallel.sts_count);
    for (std::size_t r = 0; r < serial.sweeps.size(); ++r) {
        ASSERT_EQ(serial.sweeps[r].size(), parallel.sweeps[r].size())
            << "region " << r;
        for (std::size_t i = 0; i < serial.sweeps[r].size(); ++i) {
            EXPECT_EQ(serial.sweeps[r][i].n,
                      parallel.sweeps[r][i].n);
            EXPECT_EQ(serial.sweeps[r][i].false_rejection_rate,
                      parallel.sweeps[r][i].false_rejection_rate);
        }
    }
}

TEST(ParallelDeterminismTest, MonitorBatchMatchesSerialMonitorRuns)
{
    PipelineConfig cfg;
    cfg.train_runs = 3;
    cfg.threads = 4;
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.15), cfg);
    const auto model = pipe.trainModel();

    const std::vector<std::uint64_t> seeds = {9000, 9001, 9002, 9003,
                                              9004};
    const auto batch = pipe.monitorBatch(model, seeds);
    ASSERT_EQ(batch.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        const auto one = pipe.monitorRun(model, seeds[i]);
        EXPECT_EQ(batch[i].reports.size(), one.reports.size())
            << "seed " << seeds[i];
        EXPECT_EQ(batch[i].metrics.groups, one.metrics.groups);
        EXPECT_EQ(batch[i].metrics.false_positives,
                  one.metrics.false_positives);
        EXPECT_EQ(batch[i].metrics.covered_steps,
                  one.metrics.covered_steps);
    }
}

/** Flattens every observable field of a batch of evaluations so the
 *  cross-thread comparison is byte-for-byte, not field-by-field. */
std::string
serializedBatch(const std::vector<core::RunEvaluation> &batch)
{
    std::ostringstream os;
    os.precision(17);
    for (const auto &ev : batch) {
        for (const auto &r : ev.reports)
            os << r.step << ',' << r.time << ',' << r.region << ';';
        for (const auto &r : ev.records) {
            os << r.region << r.tested << r.rejected << r.reported
               << r.transitioned << r.degraded;
        }
        const auto &m = ev.metrics;
        os << '|' << m.groups << ' ' << m.injected_groups << ' '
           << m.true_positives << ' ' << m.false_positives << ' '
           << m.false_negatives << ' ' << m.detection_latency << ' '
           << m.covered_steps << ' ' << m.labeled_steps << ' '
           << m.degraded_groups << '|';
        for (std::size_t v : m.region_groups)
            os << v << ' ';
        for (std::size_t v : m.region_correct)
            os << v << ' ';
        os << ev.degraded.quarantined << ' ' << ev.degraded.outages
           << ' ' << ev.degraded.resyncs << ' '
           << ev.degraded.longest_outage << '\n';
    }
    return os.str();
}

TEST(ParallelDeterminismTest,
     MonitorVerdictsAreByteIdenticalAcrossThreadCounts)
{
    PipelineConfig base;
    base.train_runs = 3;
    base.threads = 1;
    Pipeline trainer_pipe(workloads::makeWorkload("bitcount", 0.15),
                          base);
    const auto model = trainer_pipe.trainModel();

    const std::vector<std::uint64_t> seeds = {9000, 9001, 9002, 9003,
                                              9004, 9005};
    std::string at1;
    for (std::size_t threads : {1u, 2u, 8u}) {
        PipelineConfig cfg = base;
        cfg.threads = threads;
        Pipeline pipe(workloads::makeWorkload("bitcount", 0.15), cfg);
        const auto s = serializedBatch(pipe.monitorBatch(model, seeds));
        ASSERT_FALSE(s.empty());
        if (threads == 1)
            at1 = s;
        else
            EXPECT_EQ(s, at1) << "threads " << threads;
    }
}

TEST(ParallelDeterminismTest, MonitorBatchRejectsMismatchedPlans)
{
    PipelineConfig cfg;
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.15), cfg);
    core::TrainedModel model; // contents irrelevant
    EXPECT_THROW(pipe.monitorBatch(model, {1, 2, 3},
                                   std::vector<cpu::InjectionPlan>(2)),
                 std::invalid_argument);
}

} // namespace
