/**
 * @file
 * Equivalence of the monitor's presorted fast path and the legacy
 * copy-and-sort formulation (MonitorConfig::use_presorted). The flag
 * exists purely as a perf ablation, so the two paths must agree on
 * every verdict, record, report, and metric — for both supported
 * tests and with injections present.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "inject/scenarios.h"

namespace
{

using namespace eddie;
using core::Pipeline;
using core::PipelineConfig;
using core::RunEvaluation;

/** Every observable field of an evaluation, flattened to text so a
 *  mismatch fails with a diffable blob instead of a field hunt. */
std::string
describeEval(const RunEvaluation &ev)
{
    std::ostringstream os;
    os.precision(17);
    os << "reports:";
    for (const auto &r : ev.reports)
        os << " (" << r.step << ',' << r.time << ',' << r.region << ')';
    os << "\nrecords:";
    for (const auto &r : ev.records) {
        os << " [" << r.region << r.tested << r.rejected << r.reported
           << r.transitioned << r.degraded << ']';
    }
    const auto &m = ev.metrics;
    os << "\nmetrics: " << m.groups << ' ' << m.injected_groups << ' '
       << m.true_positives << ' ' << m.false_positives << ' '
       << m.false_negatives << ' ' << m.detection_latency << ' '
       << m.covered_steps << ' ' << m.labeled_steps << ' '
       << m.degraded_groups;
    os << "\nregion_groups:";
    for (std::size_t v : m.region_groups)
        os << ' ' << v;
    os << "\nregion_correct:";
    for (std::size_t v : m.region_correct)
        os << ' ' << v;
    os << "\ndegraded: " << ev.degraded.quarantined << ' '
       << ev.degraded.outages << ' ' << ev.degraded.resyncs << ' '
       << ev.degraded.longest_outage;
    return os.str();
}

void
expectPathsAgree(const PipelineConfig &base, core::TestKind test)
{
    PipelineConfig cfg = base;
    cfg.monitor.test = test;
    cfg.train_runs = 3;
    cfg.threads = 1;
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.15), cfg);
    const auto model = pipe.trainModel();

    PipelineConfig legacy_cfg = cfg;
    legacy_cfg.monitor.use_presorted = false;
    Pipeline legacy(workloads::makeWorkload("bitcount", 0.15),
                    legacy_cfg);

    // Clean runs plus an injected one: the fast path has to agree on
    // acceptances, rejections, handoffs, and anomaly streaks alike.
    for (std::uint64_t seed : {9000ull, 9001ull, 9002ull}) {
        const auto fast = pipe.monitorRun(model, seed);
        const auto slow = legacy.monitorRun(model, seed);
        EXPECT_EQ(describeEval(fast), describeEval(slow))
            << "clean seed " << seed;
    }
    const auto plan = inject::canonicalLoopInjection(
        inject::defaultTargetLoop(pipe.workload()), 1.0, 9100);
    const auto fast = pipe.monitorRun(model, 9100, plan);
    const auto slow = legacy.monitorRun(model, 9100, plan);
    EXPECT_EQ(describeEval(fast), describeEval(slow)) << "injected";
}

TEST(MonitorFastpathTest, PresortedKsMatchesLegacyExactly)
{
    expectPathsAgree(PipelineConfig(),
                     core::TestKind::KolmogorovSmirnov);
}

TEST(MonitorFastpathTest, PresortedMwuMatchesLegacyExactly)
{
    expectPathsAgree(PipelineConfig(), core::TestKind::MannWhitney);
}

TEST(MonitorFastpathTest, FastPathPerformsSameNumberOfTests)
{
    PipelineConfig cfg;
    cfg.train_runs = 3;
    cfg.threads = 1;
    Pipeline pipe(workloads::makeWorkload("bitcount", 0.15), cfg);
    const auto model = pipe.trainModel();
    const auto stream = pipe.captureRun(9000);

    core::MonitorConfig fast_cfg = cfg.monitor;
    core::MonitorConfig slow_cfg = cfg.monitor;
    slow_cfg.use_presorted = false;
    core::Monitor fast(model, fast_cfg);
    core::Monitor slow(model, slow_cfg);
    for (const auto &sts : stream) {
        fast.step(sts);
        slow.step(sts);
    }
    EXPECT_GT(fast.testCalls(), 0u);
    EXPECT_EQ(fast.testCalls(), slow.testCalls());
}

} // namespace
