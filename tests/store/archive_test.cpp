/**
 * @file
 * Property tests for the EDDIEARC artifact container, reusing the
 * bit-flip/truncation discipline of tests/core/corruption_test.cpp:
 * any damaged file must either load with the damage counted (torn
 * tail dropped, Corrupt get) or fail with a typed error — never
 * crash, never return silently wrong bytes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/errors.h"
#include "store/archive.h"
#include "store/span_stream.h"

namespace fs = std::filesystem;
using eddie::store::Archive;
using eddie::store::ArchiveConfig;
using eddie::store::GetStatus;

namespace
{

std::string
tempPath(const std::string &name)
{
    return (fs::path(::testing::TempDir()) / name).string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), std::streamsize(bytes.size()));
}

/** Deterministic filler that is not all-one-byte, so a misaligned
 *  read cannot accidentally look correct. */
std::string
pattern(std::size_t n, std::uint64_t seed)
{
    std::string out(n, '\0');
    std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL + 1;
    for (std::size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out[i] = char(x & 0xFF);
    }
    return out;
}

ArchiveConfig
smallConfig(const std::string &path)
{
    ArchiveConfig cfg;
    cfg.path = path;
    cfg.sector_size = 128; // small sectors → many sectors per value
    return cfg;
}

} // namespace

TEST(ArchiveTest, RoundTripsValuesOfAwkwardSizes)
{
    const std::string path = tempPath("arc_roundtrip.arc");
    fs::remove(path);
    // Sizes straddling every sector boundary case, including empty.
    const std::vector<std::size_t> sizes = {0,   1,   127, 128,
                                            129, 255, 256, 1000};
    {
        Archive arc(smallConfig(path));
        for (std::size_t i = 0; i < sizes.size(); ++i)
            arc.stagePut("key-" + std::to_string(i),
                         pattern(sizes[i], i));
        ASSERT_TRUE(arc.commit());
        // One batch, one commit.
        EXPECT_EQ(arc.stats().group_commits, 1u);
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            std::span<const char> span;
            ASSERT_EQ(arc.get("key-" + std::to_string(i), span),
                      GetStatus::Ok);
            EXPECT_EQ(std::string(span.data(), span.size()),
                      pattern(sizes[i], i));
        }
    }
    // Reopen: the scan must rebuild the same directory.
    Archive arc(smallConfig(path));
    EXPECT_EQ(arc.liveCount(), sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        auto got = arc.getCopy("key-" + std::to_string(i));
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, pattern(sizes[i], i));
    }
    EXPECT_EQ(arc.stats().torn_tail_dropped, 0u);
}

TEST(ArchiveTest, LastWriteWinsAndRemove)
{
    const std::string path = tempPath("arc_lww.arc");
    fs::remove(path);
    Archive arc(smallConfig(path));
    ASSERT_TRUE(arc.put("a", "first"));
    ASSERT_TRUE(arc.put("a", "second"));
    ASSERT_TRUE(arc.put("b", "keep"));
    EXPECT_EQ(arc.getCopy("a").value_or(""), "second");
    EXPECT_EQ(arc.stats().dead_segments, 1u);

    arc.stageRemove("a");
    ASSERT_TRUE(arc.commit());
    EXPECT_FALSE(arc.contains("a"));
    EXPECT_TRUE(arc.contains("b"));
    EXPECT_EQ(arc.liveCount(), 1u);

    // Reopen: supersession and tombstone replay identically.
    Archive re(smallConfig(path));
    EXPECT_FALSE(re.contains("a"));
    EXPECT_EQ(re.getCopy("b").value_or(""), "keep");
}

TEST(ArchiveTest, SpansSurviveLaterCommits)
{
    const std::string path = tempPath("arc_span.arc");
    fs::remove(path);
    Archive arc(smallConfig(path));
    const std::string v = pattern(777, 42);
    ASSERT_TRUE(arc.put("stable", v));
    std::span<const char> span;
    ASSERT_EQ(arc.get("stable", span), GetStatus::Ok);

    // Grow the archive well past the first mapping.
    for (int i = 0; i < 20; ++i)
        ASSERT_TRUE(
            arc.put("grow-" + std::to_string(i), pattern(500, i)));
    std::span<const char> later;
    ASSERT_EQ(arc.get("grow-19", later), GetStatus::Ok);

    // The pre-growth span still reads the original bytes.
    EXPECT_EQ(std::string(span.data(), span.size()), v);
}

TEST(ArchiveTest, LazyVerificationCountsOnlyTouchedSectors)
{
    const std::string path = tempPath("arc_lazy.arc");
    fs::remove(path);
    {
        Archive arc(smallConfig(path));
        arc.stagePut("hot", pattern(128 * 4, 1));  // 4 sectors
        arc.stagePut("cold", pattern(128 * 8, 2)); // 8 sectors
        ASSERT_TRUE(arc.commit());
    }
    Archive arc(smallConfig(path));
    // Open scans headers only: nothing payload-verified yet.
    EXPECT_EQ(arc.stats().payload_sectors_verified, 0u);
    EXPECT_EQ(arc.stats().payload_sectors_total, 12u);
    ASSERT_TRUE(arc.getCopy("hot").has_value());
    // Only the read key's sectors were checksummed.
    EXPECT_EQ(arc.stats().payload_sectors_verified, 4u);
    // A second read re-verifies nothing.
    ASSERT_TRUE(arc.getCopy("hot").has_value());
    EXPECT_EQ(arc.stats().payload_sectors_verified, 4u);
}

TEST(ArchiveTest, CompactionPreservesLiveSetByteIdentically)
{
    const std::string path = tempPath("arc_compact.arc");
    fs::remove(path);
    Archive arc(smallConfig(path));
    std::map<std::string, std::string> expect;
    for (int i = 0; i < 12; ++i) {
        const std::string key = "k" + std::to_string(i);
        ASSERT_TRUE(arc.put(key, pattern(50 + 70 * i, i)));
        expect[key] = pattern(50 + 70 * i, i);
    }
    // Churn: overwrite half, remove a third of the keys.
    for (int i = 0; i < 12; i += 2) {
        const std::string key = "k" + std::to_string(i);
        ASSERT_TRUE(arc.put(key, pattern(33 * i + 1, 100 + i)));
        expect[key] = pattern(33 * i + 1, 100 + i);
    }
    for (int i = 0; i < 12; i += 3) {
        const std::string key = "k" + std::to_string(i);
        arc.stageRemove(key);
        expect.erase(key);
    }
    ASSERT_TRUE(arc.commit());

    const auto before = fs::file_size(path);
    ASSERT_GT(arc.stats().dead_segments, 0u);
    ASSERT_TRUE(arc.compact());
    const auto after = fs::file_size(path);

    EXPECT_LT(after, before);
    EXPECT_EQ(arc.stats().dead_segments, 0u);
    EXPECT_EQ(arc.liveCount(), expect.size());
    for (const auto &kv : expect) {
        auto got = arc.getCopy(kv.first);
        ASSERT_TRUE(got.has_value()) << kv.first;
        EXPECT_EQ(*got, kv.second) << kv.first;
    }
    // And the compacted file reopens clean.
    Archive re(smallConfig(path));
    EXPECT_EQ(re.liveCount(), expect.size());
    for (const auto &kv : expect)
        EXPECT_EQ(re.getCopy(kv.first).value_or("<missing>"),
                  kv.second);
}

TEST(ArchiveTest, TruncatedTailDropsOnlyTheTornBatch)
{
    const std::string path = tempPath("arc_trunc.arc");
    // Two commits: the first must survive any truncation of the
    // second; truncation inside the first may drop it (counted), but
    // never yields wrong bytes.
    std::uint64_t first_commit_end = 0;
    {
        fs::remove(path);
        Archive arc(smallConfig(path));
        arc.stagePut("base-1", pattern(300, 1));
        arc.stagePut("base-2", pattern(40, 2));
        ASSERT_TRUE(arc.commit());
        first_commit_end = fs::file_size(path);
        ASSERT_TRUE(arc.put("tail", pattern(500, 3)));
    }
    const std::string full = readFile(path);
    std::mt19937 rng(7);
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t cut =
            1 + std::size_t(rng()) % (full.size() - 1);
        writeFile(path, full.substr(0, cut));
        if (cut < 128) {
            // Cut inside the superblock: typed error, not a crash.
            EXPECT_THROW(Archive(smallConfig(path)),
                         eddie::core::Error);
            continue;
        }
        Archive arc(smallConfig(path));
        if (cut >= first_commit_end) {
            // The first batch is intact; the tail segment is torn
            // (counted) unless the cut landed exactly on the first
            // commit's end, which is simply a shorter clean archive.
            EXPECT_EQ(arc.getCopy("base-1").value_or(""),
                      pattern(300, 1));
            EXPECT_EQ(arc.getCopy("base-2").value_or(""),
                      pattern(40, 2));
            EXPECT_EQ(arc.stats().torn_tail_dropped,
                      cut == first_commit_end ? 0u : 1u);
            EXPECT_FALSE(arc.contains("tail"));
        } else {
            // Cut inside the first batch: whatever keys survive must
            // read back exactly; the torn remainder is counted.
            EXPECT_EQ(arc.stats().torn_tail_dropped, 1u);
            auto b1 = arc.getCopy("base-1");
            if (b1.has_value()) {
                EXPECT_EQ(*b1, pattern(300, 1));
            }
            EXPECT_FALSE(arc.contains("tail"));
        }
    }
}

TEST(ArchiveTest, BitFlipsAreDetectedNeverSilent)
{
    const std::string path = tempPath("arc_flip.arc");
    fs::remove(path);
    {
        Archive arc(smallConfig(path));
        for (int i = 0; i < 6; ++i)
            arc.stagePut("key-" + std::to_string(i),
                         pattern(200 + 90 * i, i));
        ASSERT_TRUE(arc.commit());
    }
    const std::string clean = readFile(path);
    std::mt19937 rng(11);
    int detected = 0;
    for (int trial = 0; trial < 200; ++trial) {
        std::string bytes = clean;
        const std::size_t at = std::size_t(rng()) % bytes.size();
        const int bit = int(rng()) & 7;
        bytes[at] = char(bytes[at] ^ (1u << bit));
        writeFile(path, bytes);
        try {
            Archive arc(smallConfig(path));
            bool damage_seen =
                arc.stats().torn_tail_dropped > 0 ||
                arc.liveCount() < 6;
            for (int i = 0; i < 6; ++i) {
                std::span<const char> span;
                const auto st =
                    arc.get("key-" + std::to_string(i), span);
                if (st == GetStatus::Ok) {
                    // Verified reads must be byte-exact.
                    ASSERT_EQ(
                        std::string(span.data(), span.size()),
                        pattern(200 + 90 * i, i));
                } else {
                    damage_seen = true;
                }
            }
            // A flipped padding byte (header or payload tail pad) may
            // legitimately go unnoticed by the directory scan, but
            // payload padding is covered by the sector CRCs, so reads
            // can only miss damage that changes no retrievable byte.
            if (damage_seen)
                ++detected;
        } catch (const eddie::core::Error &) {
            ++detected; // superblock damage → typed error
        }
    }
    // The overwhelming majority of flips hit covered bytes.
    EXPECT_GT(detected, 150);
}

TEST(ArchiveTest, SniffDistinguishesArchivesFromOtherFiles)
{
    const std::string arc_path = tempPath("arc_sniff.arc");
    const std::string txt_path = tempPath("arc_sniff.txt");
    fs::remove(arc_path);
    {
        Archive arc(smallConfig(arc_path));
        ASSERT_TRUE(arc.put("k", "v"));
    }
    writeFile(txt_path, "eddie-model 1\nnot an archive\n");
    EXPECT_TRUE(Archive::sniff(arc_path));
    EXPECT_FALSE(Archive::sniff(txt_path));
    EXPECT_FALSE(Archive::sniff(tempPath("arc_sniff_missing.arc")));
}

TEST(ArchiveTest, SpanStreamReadsArchiveValuesInPlace)
{
    const std::string path = tempPath("arc_stream.arc");
    fs::remove(path);
    Archive arc(smallConfig(path));
    const std::string v = pattern(513, 9);
    ASSERT_TRUE(arc.put("blob", v));
    std::span<const char> span;
    ASSERT_EQ(arc.get("blob", span), GetStatus::Ok);

    eddie::store::SpanStream is(span.data(), span.size());
    std::string out(v.size(), '\0');
    is.read(out.data(), std::streamsize(out.size()));
    ASSERT_TRUE(bool(is));
    EXPECT_EQ(out, v);
    // Seek support for codecs that rewind.
    is.clear();
    is.seekg(0);
    EXPECT_EQ(is.get(), int(static_cast<unsigned char>(v[0])));
    EXPECT_EQ(is.peek(), int(static_cast<unsigned char>(v[1])));
}

TEST(ArchiveTest, RejectsNonArchiveFilesWithTypedError)
{
    const std::string path = tempPath("arc_notarc.arc");
    writeFile(path, "this is not an archive at all, far too short");
    EXPECT_THROW(Archive(smallConfig(path)),
                 eddie::core::FormatError);
    writeFile(path, std::string(4096, 'x'));
    EXPECT_THROW(Archive(smallConfig(path)),
                 eddie::core::FormatError);
}
