/**
 * @file
 * Port-level tests for the three persistence layers moved into the
 * EDDIEARC artifact store: trained models, capture-cache spills, and
 * checkpoint snapshots + delta chains. Each port must round-trip
 * bit-identically with its legacy format, keep the legacy files
 * loadable through the format-version switch, and fail typed (never
 * silently) on a corrupted container.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/capture_cache.h"
#include "core/capture_io.h"
#include "core/errors.h"
#include "core/model.h"
#include "serve/checkpoint.h"
#include "../serve/serve_test_util.h"

namespace
{

using namespace eddie;

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() /
            ("eddie_port_" + name))
        .string();
}

core::TrainedModel
sampleModel()
{
    core::TrainedModel m;
    m.alpha = 0.01;
    m.sentinel = 2e7;
    m.entry_region = 1;
    m.num_loops = 2;
    core::RegionModel r0;
    r0.name = "L0";
    r0.trained = true;
    r0.num_peaks = 2;
    r0.group_n = 16;
    r0.ref = {{1.0, 2.0, 3.0}, {4.0, 5.0}};
    r0.succs = {1};
    core::RegionModel r1;
    r1.name = "L1";
    r1.trained = false;
    m.regions = {r0, r1};
    return m;
}

bool
sameSts(const std::vector<core::Sts> &a,
        const std::vector<core::Sts> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].t_start != b[i].t_start ||
            a[i].t_end != b[i].t_end ||
            a[i].true_region != b[i].true_region ||
            a[i].injected != b[i].injected ||
            a[i].window_energy != b[i].window_energy ||
            a[i].peak_energy_frac != b[i].peak_energy_frac ||
            a[i].faulted != b[i].faulted ||
            a[i].peak_freqs != b[i].peak_freqs)
            return false;
    }
    return true;
}

std::string
checkpointBytes(const serve::CheckpointData &ckpt)
{
    std::ostringstream os(std::ios::binary);
    serve::saveCheckpoint(ckpt, os);
    return os.str();
}

TEST(ModelPort, ArchiveAndTextFilesDecodeIdentically)
{
    const auto m = sampleModel();
    const std::string text_path = tempPath("model.txt");
    const std::string arc_path = tempPath("model.arc");
    core::saveModelFile(m, text_path, core::ModelFormat::Text);
    core::saveModelFile(m, arc_path, core::ModelFormat::Archive);

    const auto from_text = core::loadModelFile(text_path);
    const auto from_arc = core::loadModelFile(arc_path);
    // Bit-identity through the canonical binary encoding: both files
    // describe the exact same model.
    EXPECT_EQ(core::encodeModelBinary(from_text),
              core::encodeModelBinary(from_arc));
    EXPECT_EQ(core::encodeModelBinary(m),
              core::encodeModelBinary(from_arc));

    std::remove(text_path.c_str());
    std::remove(arc_path.c_str());
}

TEST(ModelPort, LegacyTextModelLoadsThroughTheSwitch)
{
    const auto m = sampleModel();
    const std::string path = tempPath("legacy_model.txt");
    {
        // The pre-archive writer: plain text straight to the file.
        std::ofstream os(path);
        core::saveModel(m, os);
    }
    const auto loaded = core::loadModelFile(path);
    EXPECT_EQ(core::encodeModelBinary(m),
              core::encodeModelBinary(loaded));
    std::remove(path.c_str());
}

TEST(ModelPort, CorruptArchiveModelFailsTyped)
{
    const auto m = sampleModel();
    const std::string path = tempPath("corrupt_model.arc");
    core::saveModelFile(m, path, core::ModelFormat::Archive);

    // Flip one byte in the payload region (past superblock + segment
    // header); the sector CRC must turn it into a typed error.
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(bool(f));
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    ASSERT_GT(std::size_t(size), 1034u);
    f.seekp(1030);
    char b = 0;
    f.seekg(1030);
    f.read(&b, 1);
    b = char(b ^ 0x40);
    f.seekp(1030);
    f.write(&b, 1);
    f.close();

    EXPECT_THROW((void)core::loadModelFile(path), core::FormatError);
    std::remove(path.c_str());
}

TEST(StsPayloadPort, EncodeDecodeRoundTripsExactly)
{
    const auto stream = serve_test::eventfulStream(11);
    const std::string payload = core::encodeStsPayload(stream);
    const auto decoded =
        core::decodeStsPayload(payload.data(), payload.size());
    EXPECT_TRUE(sameSts(stream, decoded));
    // Canonical: re-encoding the decode reproduces the bytes.
    EXPECT_EQ(payload, core::encodeStsPayload(decoded));
}

TEST(SpillPort, EvictionRoundTripsThroughTheArchive)
{
    const std::string arc_path = tempPath("spill.arc");
    std::remove(arc_path.c_str());
    const auto stream = serve_test::eventfulStream(12);

    core::CaptureCacheConfig cfg;
    cfg.capacity = 1;
    cfg.spill_archive = arc_path;
    core::CaptureCache cache(cfg);
    (void)cache.getOrComputeShared("k0", [&] { return stream; });
    // Second insert evicts k0 to the archive.
    (void)cache.getOrComputeShared(
        "k1", [&] { return serve_test::eventfulStream(13); });
    EXPECT_EQ(cache.stats().spills, 1u);

    cache.clear();
    const auto hit = cache.getOrComputeShared("k0", [&] {
        ADD_FAILURE() << "archive miss recomputed the stream";
        return stream;
    });
    EXPECT_TRUE(sameSts(stream, *hit));
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    std::remove(arc_path.c_str());
}

TEST(SpillPort, LegacySpillDirStillConsultedOnArchiveMiss)
{
    const std::string dir = tempPath("spill_dir");
    const std::string arc_path = tempPath("spill_migrate.arc");
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::remove(arc_path.c_str());
    const auto stream = serve_test::eventfulStream(14);

    {
        // Legacy deployment: spill directory only.
        core::CaptureCacheConfig cfg;
        cfg.capacity = 1;
        cfg.spill_dir = dir;
        core::CaptureCache cache(cfg);
        (void)cache.getOrComputeShared("k0", [&] { return stream; });
        (void)cache.getOrComputeShared(
            "k1", [&] { return serve_test::eventfulStream(15); });
    }
    // Migrated deployment: archive preferred, directory fallback.
    core::CaptureCacheConfig cfg;
    cfg.capacity = 4;
    cfg.spill_dir = dir;
    cfg.spill_archive = arc_path;
    core::CaptureCache cache(cfg);
    const auto hit = cache.getOrComputeShared("k0", [&] {
        ADD_FAILURE() << "legacy spill file was not consulted";
        return stream;
    });
    EXPECT_TRUE(sameSts(stream, *hit));
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    std::filesystem::remove_all(dir);
    std::remove(arc_path.c_str());
}

/** Drives one monitor over the eventful stream, cutting deltas into
 *  @p store the way the serving runtime does: anchor with a full
 *  state, then chain delta cuts. */
void
driveStore(serve::CheckpointStore &store,
           const core::TrainedModel &model)
{
    core::Monitor monitor(model, core::MonitorConfig());
    serve::CheckpointData anchor;
    anchor.monitor = monitor.exportState();
    anchor.source_pos = anchor.monitor.step_index;
    store.submitFull(0, std::move(anchor));
    ASSERT_TRUE(store.flush());
    const auto stream = serve_test::eventfulStream(16);
    std::size_t step = 0;
    for (const auto &sts : stream) {
        monitor.step(sts);
        if (++step % 20 == 0) {
            store.submitDelta(0, monitor.exportDelta());
            ASSERT_TRUE(store.flush());
        }
    }
}

TEST(CheckpointPort, ArchiveRecoveryBitIdenticalToFilePair)
{
    std::mt19937_64 rng(17);
    const auto model = serve_test::sharpModel(rng);

    const auto runMode = [&](bool use_archive,
                             const std::string &path) {
        serve::CheckpointStoreConfig cfg;
        cfg.path = path;
        cfg.num_shards = 1;
        cfg.full_every = 1u << 20; // keep the whole delta chain
        cfg.use_archive = use_archive;
        {
            serve::CheckpointStore store(cfg);
            driveStore(store, model);
        }
        serve::CheckpointStore fresh(cfg);
        const auto recovered = fresh.recover();
        EXPECT_EQ(recovered, std::vector<bool>{true});
        return checkpointBytes(fresh.mirror(0));
    };

    const std::string file_path = tempPath("ckpt_files");
    const std::string arc_path = tempPath("ckpt_arc");
    const std::string from_files = runMode(false, file_path);
    const std::string from_arc = runMode(true, arc_path);
    EXPECT_FALSE(from_files.empty());
    EXPECT_EQ(from_files, from_arc);

    std::remove(file_path.c_str());
    std::remove((file_path + ".dlt").c_str());
    std::remove((arc_path + ".arc").c_str());
}

TEST(CheckpointPort, LegacyFilePairMigratesIntoTheArchive)
{
    std::mt19937_64 rng(18);
    const auto model = serve_test::sharpModel(rng);
    const std::string path = tempPath("ckpt_migrate");
    std::remove(path.c_str());
    std::remove((path + ".dlt").c_str());
    std::remove((path + ".arc").c_str());

    serve::CheckpointStoreConfig legacy_cfg;
    legacy_cfg.path = path;
    legacy_cfg.num_shards = 1;
    legacy_cfg.full_every = 1u << 20;
    {
        serve::CheckpointStore store(legacy_cfg);
        driveStore(store, model);
    }

    // Same path with use_archive: recovery reads the legacy files
    // (the archive is empty), and the next snapshot lands in the
    // archive.
    serve::CheckpointStoreConfig arc_cfg = legacy_cfg;
    arc_cfg.use_archive = true;
    std::string legacy_state;
    {
        serve::CheckpointStore store(arc_cfg);
        const auto recovered = store.recover();
        EXPECT_EQ(recovered, std::vector<bool>{true});
        legacy_state = checkpointBytes(store.mirror(0));
        store.forceFullSnapshot();
        store.flush();
    }
    // A later run recovers the same state from the archive alone.
    std::remove(path.c_str());
    std::remove((path + ".dlt").c_str());
    serve::CheckpointStore store(arc_cfg);
    const auto recovered = store.recover();
    EXPECT_EQ(recovered, std::vector<bool>{true});
    EXPECT_EQ(checkpointBytes(store.mirror(0)), legacy_state);
    std::remove((path + ".arc").c_str());
}

} // namespace
