/**
 * @file
 * Property tests of the program analyses over randomly generated
 * structured programs: CFG partition invariants, dominator sanity,
 * loop-forest containment, and region state-machine consistency.
 */

#include <random>

#include <gtest/gtest.h>

#include "prog/builder.h"
#include "prog/cfg.h"
#include "prog/loops.h"
#include "prog/regions.h"

namespace
{

using namespace eddie::prog;

/**
 * Generates a random structured program: a sequence of loop nests
 * (depth 1-3) with optional if/else diamonds in the bodies.
 */
Program
randomProgram(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> nests(1, 5);
    std::uniform_int_distribution<int> depth_d(1, 3);
    std::uniform_int_distribution<int> body_d(1, 6);
    std::bernoulli_distribution diamond(0.4);

    ProgramBuilder b;
    b.li(0, 0);
    const int num_nests = nests(rng);
    for (int nest = 0; nest < num_nests; ++nest) {
        const int depth = depth_d(rng);
        std::vector<Label> headers;
        std::vector<int> counters;
        for (int d = 0; d < depth; ++d) {
            const int reg = 1 + d;
            b.li(reg, 0);
            auto head = b.newLabel();
            b.bind(head);
            headers.push_back(head);
            counters.push_back(reg);
        }
        // Innermost body.
        for (int i = 0, n = body_d(rng); i < n; ++i)
            b.addi(10, 10, 1);
        if (diamond(rng)) {
            auto els = b.newLabel();
            auto join = b.newLabel();
            b.beq(10, 0, els);
            b.addi(11, 11, 1);
            b.jmp(join);
            b.bind(els);
            b.addi(12, 12, 1);
            b.bind(join);
        }
        // Close the loops, innermost first.
        b.li(20, 3);
        for (int d = depth - 1; d >= 0; --d) {
            b.addi(counters[d], counters[d], 1);
            b.blt(counters[d], 20, headers[d]);
        }
        // Some inter-nest code.
        b.addi(13, 13, 1);
    }
    b.halt();
    return b.take();
}

class RandomProgramTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomProgramTest, CfgPartitionsInstructions)
{
    const auto p = randomProgram(std::uint64_t(GetParam()));
    const auto cfg = buildCfg(p);
    ASSERT_EQ(cfg.block_of_instr.size(), p.size());
    // Every instruction belongs to exactly the block covering it.
    for (std::size_t i = 0; i < p.size(); ++i) {
        const auto b = cfg.block_of_instr[i];
        ASSERT_LT(b, cfg.numBlocks());
        EXPECT_GE(i, cfg.blocks[b].first);
        EXPECT_LT(i, cfg.blocks[b].last);
    }
    // Blocks tile the program without gaps.
    std::size_t pos = 0;
    for (const auto &blk : cfg.blocks) {
        EXPECT_EQ(blk.first, pos);
        pos = blk.last;
    }
    EXPECT_EQ(pos, p.size());
}

TEST_P(RandomProgramTest, EdgesAreSymmetric)
{
    const auto cfg = buildCfg(randomProgram(std::uint64_t(GetParam())));
    for (std::size_t b = 0; b < cfg.numBlocks(); ++b) {
        for (std::size_t s : cfg.blocks[b].succs) {
            const auto &preds = cfg.blocks[s].preds;
            EXPECT_NE(std::find(preds.begin(), preds.end(), b),
                      preds.end())
                << "edge " << b << "->" << s << " missing back link";
        }
    }
}

TEST_P(RandomProgramTest, EntryDominatesReachableBlocks)
{
    const auto cfg = buildCfg(randomProgram(std::uint64_t(GetParam())));
    const auto idom = immediateDominators(cfg);
    for (std::size_t b = 0; b < cfg.numBlocks(); ++b) {
        if (idom[b] == std::size_t(-1))
            continue; // unreachable
        EXPECT_TRUE(dominates(idom, 0, b));
    }
}

TEST_P(RandomProgramTest, LoopForestContainment)
{
    const auto cfg = buildCfg(randomProgram(std::uint64_t(GetParam())));
    const auto loops = findLoops(cfg);
    for (const auto &l : loops) {
        // Header inside its own loop.
        EXPECT_TRUE(std::binary_search(l.blocks.begin(),
                                       l.blocks.end(), l.header));
        // Child blocks are a subset of the parent's.
        if (l.parent != Loop::npos) {
            const auto &pb = loops[l.parent].blocks;
            for (std::size_t blk : l.blocks) {
                EXPECT_TRUE(std::binary_search(pb.begin(), pb.end(),
                                               blk));
            }
            EXPECT_EQ(l.depth, loops[l.parent].depth + 1);
        } else {
            EXPECT_EQ(l.depth, 0u);
        }
    }
}

TEST_P(RandomProgramTest, RegionMachineConsistent)
{
    const auto p = randomProgram(std::uint64_t(GetParam()));
    const auto rg = analyzeProgram(p);
    // Loop regions precede transitions; successors well-formed.
    for (std::size_t r = 0; r < rg.regions.size(); ++r) {
        const auto &region = rg.regions[r];
        if (r < rg.num_loops) {
            EXPECT_EQ(region.kind, Region::Kind::Loop);
            EXPECT_LT(region.header_instr, p.size());
            EXPECT_LT(region.hot_header_instr, p.size());
            // Loop successors are transitions out of this loop.
            for (std::size_t s : region.succs) {
                EXPECT_GE(s, rg.num_loops);
                EXPECT_EQ(rg.regions[s].from_loop, r);
            }
        } else {
            EXPECT_EQ(region.kind, Region::Kind::Transition);
            for (std::size_t s : region.succs) {
                EXPECT_LT(s, rg.num_loops);
                EXPECT_EQ(region.to_loop, s);
            }
        }
    }
    // Every instruction's loop region is a valid loop id or none.
    for (std::size_t i = 0; i < p.size(); ++i) {
        const auto r = rg.loopRegionOf(i);
        EXPECT_TRUE(r == kNoRegion || r < rg.num_loops);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(1, 21));

} // namespace
