#include <gtest/gtest.h>

#include "prog/builder.h"
#include "prog/cfg.h"

namespace
{

using namespace eddie::prog;

Program
simpleLoop()
{
    // li; loop: addi; blt -> loop; halt
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 10);
    auto loop = b.newLabel();
    b.bind(loop);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.take();
}

TEST(CfgTest, SimpleLoopBlocks)
{
    const auto p = simpleLoop();
    const auto cfg = buildCfg(p);
    // Blocks: [li,li], [addi,blt], [halt].
    ASSERT_EQ(cfg.numBlocks(), 3u);
    EXPECT_EQ(cfg.blocks[0].first, 0u);
    EXPECT_EQ(cfg.blocks[0].last, 2u);
    EXPECT_EQ(cfg.blocks[1].first, 2u);
    EXPECT_EQ(cfg.blocks[1].last, 4u);
    EXPECT_EQ(cfg.blocks[2].first, 4u);

    // Edges: 0->1, 1->1 (back edge), 1->2.
    EXPECT_EQ(cfg.blocks[0].succs, std::vector<std::size_t>{1});
    ASSERT_EQ(cfg.blocks[1].succs.size(), 2u);
    EXPECT_TRUE(cfg.blocks[2].succs.empty()); // halt
}

TEST(CfgTest, BlockOfInstrMapping)
{
    const auto p = simpleLoop();
    const auto cfg = buildCfg(p);
    EXPECT_EQ(cfg.block_of_instr[0], 0u);
    EXPECT_EQ(cfg.block_of_instr[2], 1u);
    EXPECT_EQ(cfg.block_of_instr[4], 2u);
}

TEST(CfgTest, DiamondControlFlow)
{
    ProgramBuilder b;
    auto els = b.newLabel();
    auto join = b.newLabel();
    b.beq(1, 2, els); // block 0
    b.nop();          // block 1 (then)
    b.jmp(join);
    b.bind(els);
    b.nop(); // block 2 (else)
    b.bind(join);
    b.halt(); // block 3
    const auto p = b.take();
    const auto cfg = buildCfg(p);
    ASSERT_EQ(cfg.numBlocks(), 4u);
    // Entry branches to blocks 1 and 2; both reach 3.
    EXPECT_EQ(cfg.blocks[0].succs.size(), 2u);
    EXPECT_EQ(cfg.blocks[3].preds.size(), 2u);
}

TEST(CfgTest, BranchTargetOutOfRangeThrows)
{
    Program p;
    Instr i;
    i.op = Opcode::Jmp;
    i.imm = 100;
    p.code.push_back(i);
    EXPECT_THROW(buildCfg(p), std::out_of_range);
}

TEST(CfgTest, EmptyProgram)
{
    Program p;
    const auto cfg = buildCfg(p);
    EXPECT_EQ(cfg.numBlocks(), 0u);
}

} // namespace
