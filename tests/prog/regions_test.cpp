#include <algorithm>
#include <gtest/gtest.h>

#include "prog/builder.h"
#include "prog/regions.h"

namespace
{

using namespace eddie::prog;

Program
twoLoopProgram()
{
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 8);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.addi(1, 1, 1);
    b.blt(1, 2, l0);
    b.nop(); // inter-loop code
    b.nop();
    b.li(1, 0);
    auto l1 = b.newLabel();
    b.bind(l1);
    b.addi(1, 1, 1);
    b.blt(1, 2, l1);
    b.halt();
    return b.take();
}

TEST(RegionsTest, TwoLoopStateMachine)
{
    const auto p = twoLoopProgram();
    const auto rg = analyzeProgram(p);
    EXPECT_EQ(rg.num_loops, 2u);
    // Transitions: entry->L0, L0->L1, L1->exit.
    EXPECT_NE(rg.transitionId(kBoundary, 0), kNoRegion);
    EXPECT_NE(rg.transitionId(0, 1), kNoRegion);
    EXPECT_NE(rg.transitionId(1, kBoundary), kNoRegion);
    EXPECT_EQ(rg.transitionId(1, 0), kNoRegion);

    // Loop successors point at transitions, transitions at loops.
    const auto t01 = rg.transitionId(0, 1);
    const auto &l0 = rg.regions[0];
    EXPECT_NE(std::find(l0.succs.begin(), l0.succs.end(), t01),
              l0.succs.end());
    const auto &t = rg.regions[t01];
    ASSERT_EQ(t.succs.size(), 1u);
    EXPECT_EQ(t.succs[0], 1u);
}

TEST(RegionsTest, InstructionMapping)
{
    const auto p = twoLoopProgram();
    const auto rg = analyzeProgram(p);
    // Instructions 2,3 form loop 0's body; 4,5 are inter-loop nops.
    EXPECT_EQ(rg.loopRegionOf(2), 0u);
    EXPECT_EQ(rg.loopRegionOf(3), 0u);
    EXPECT_EQ(rg.loopRegionOf(4), kNoRegion);
    EXPECT_EQ(rg.loopRegionOf(5), kNoRegion);
    EXPECT_EQ(rg.loopRegionOf(7), 1u);
    // Out-of-range queries are safe.
    EXPECT_EQ(rg.loopRegionOf(9999), kNoRegion);
}

TEST(RegionsTest, HeaderInstructions)
{
    const auto p = twoLoopProgram();
    const auto rg = analyzeProgram(p);
    EXPECT_EQ(rg.regions[0].header_instr, 2u);
    EXPECT_EQ(rg.regions[0].hot_header_instr, 2u);
    EXPECT_EQ(rg.regions[1].header_instr, 7u);
}

TEST(RegionsTest, NestedLoopsMergeIntoOneRegion)
{
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 4);
    auto outer = b.newLabel();
    b.bind(outer);
    b.li(3, 0);
    auto inner = b.newLabel();
    b.bind(inner);
    b.addi(3, 3, 1);
    b.blt(3, 2, inner);
    b.addi(1, 1, 1);
    b.blt(1, 2, outer);
    b.halt();
    const auto rg = analyzeProgram(b.take());
    EXPECT_EQ(rg.num_loops, 1u);
    // Hot header is the inner loop's header.
    EXPECT_EQ(rg.regions[0].header_instr, 2u);
    EXPECT_EQ(rg.regions[0].hot_header_instr, 3u);
}

TEST(RegionsTest, LoopNamesAreStable)
{
    const auto rg = analyzeProgram(twoLoopProgram());
    EXPECT_EQ(rg.regions[0].name, "L0");
    EXPECT_EQ(rg.regions[1].name, "L1");
    const auto t = rg.transitionId(0, 1);
    EXPECT_EQ(rg.regions[t].name, "T(L0->L1)");
}

} // namespace
