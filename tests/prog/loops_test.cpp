#include <algorithm>
#include <gtest/gtest.h>

#include "prog/builder.h"
#include "prog/cfg.h"
#include "prog/loops.h"

namespace
{

using namespace eddie::prog;

Program
nestedLoops()
{
    // for i { for j { body } }  then halt
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 4);
    auto outer = b.newLabel();
    b.bind(outer);
    b.li(3, 0);
    auto inner = b.newLabel();
    b.bind(inner);
    b.addi(3, 3, 1);
    b.blt(3, 2, inner);
    b.addi(1, 1, 1);
    b.blt(1, 2, outer);
    b.halt();
    return b.take();
}

Program
sequentialLoops()
{
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 4);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.addi(1, 1, 1);
    b.blt(1, 2, l0);
    b.li(1, 0);
    auto l1 = b.newLabel();
    b.bind(l1);
    b.addi(1, 1, 1);
    b.blt(1, 2, l1);
    b.halt();
    return b.take();
}

TEST(LoopsTest, DominatorsOfStraightLine)
{
    ProgramBuilder b;
    b.nop();
    b.halt();
    const auto cfg = buildCfg(b.take());
    const auto idom = immediateDominators(cfg);
    EXPECT_EQ(idom[0], 0u);
    EXPECT_TRUE(dominates(idom, 0, 0));
}

TEST(LoopsTest, NestedLoopsDetected)
{
    const auto p = nestedLoops();
    const auto cfg = buildCfg(p);
    const auto loops = findLoops(cfg);
    ASSERT_EQ(loops.size(), 2u);
    // Parents precede children; outer first.
    EXPECT_EQ(loops[0].parent, Loop::npos);
    EXPECT_EQ(loops[0].depth, 0u);
    EXPECT_EQ(loops[1].parent, 0u);
    EXPECT_EQ(loops[1].depth, 1u);
    // The inner loop's blocks are a subset of the outer's.
    for (std::size_t blk : loops[1].blocks) {
        EXPECT_TRUE(std::binary_search(loops[0].blocks.begin(),
                                       loops[0].blocks.end(), blk));
    }
}

TEST(LoopsTest, SequentialLoopsAreSiblings)
{
    const auto cfg = buildCfg(sequentialLoops());
    const auto loops = findLoops(cfg);
    ASSERT_EQ(loops.size(), 2u);
    EXPECT_EQ(loops[0].parent, Loop::npos);
    EXPECT_EQ(loops[1].parent, Loop::npos);
}

TEST(LoopsTest, NoLoopsInAcyclicProgram)
{
    ProgramBuilder b;
    auto skip = b.newLabel();
    b.beq(1, 2, skip);
    b.nop();
    b.bind(skip);
    b.halt();
    const auto cfg = buildCfg(b.take());
    EXPECT_TRUE(findLoops(cfg).empty());
}

TEST(LoopsTest, DominatorsInLoop)
{
    const auto cfg = buildCfg(nestedLoops());
    const auto idom = immediateDominators(cfg);
    // Entry dominates everything reachable.
    for (std::size_t b = 0; b < cfg.numBlocks(); ++b)
        EXPECT_TRUE(dominates(idom, 0, b)) << "block " << b;
}

} // namespace
