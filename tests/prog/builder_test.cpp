#include <gtest/gtest.h>

#include "prog/builder.h"

namespace
{

using namespace eddie::prog;

TEST(BuilderTest, EmitsInstructions)
{
    ProgramBuilder b("t");
    b.li(1, 42);
    b.add(2, 1, 1);
    b.halt();
    const auto p = b.take();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.code[0].op, Opcode::Li);
    EXPECT_EQ(p.code[0].imm, 42);
    EXPECT_EQ(p.code[1].op, Opcode::Add);
    EXPECT_EQ(p.code[2].op, Opcode::Halt);
    EXPECT_EQ(p.name, "t");
}

TEST(BuilderTest, BackwardBranchTarget)
{
    ProgramBuilder b;
    b.li(1, 0);
    auto loop = b.newLabel();
    b.bind(loop);
    b.addi(1, 1, 1);
    b.li(2, 10);
    b.blt(1, 2, loop);
    b.halt();
    const auto p = b.take();
    EXPECT_EQ(p.code[3].op, Opcode::Blt);
    EXPECT_EQ(p.code[3].imm, 1); // the bound position
}

TEST(BuilderTest, ForwardBranchPatched)
{
    ProgramBuilder b;
    auto skip = b.newLabel();
    b.jmp(skip);
    b.nop();
    b.nop();
    b.bind(skip);
    b.halt();
    const auto p = b.take();
    EXPECT_EQ(p.code[0].imm, 3);
}

TEST(BuilderTest, UnboundLabelThrows)
{
    ProgramBuilder b;
    auto l = b.newLabel();
    b.jmp(l);
    EXPECT_THROW(b.take(), std::logic_error);
}

TEST(BuilderTest, DoubleBindThrows)
{
    ProgramBuilder b;
    auto l = b.newLabel();
    b.bind(l);
    EXPECT_THROW(b.bind(l), std::logic_error);
}

TEST(BuilderTest, HereTracksPosition)
{
    ProgramBuilder b;
    EXPECT_EQ(b.here(), 0u);
    b.nop();
    b.nop();
    EXPECT_EQ(b.here(), 2u);
}

TEST(ProgramTest, DisassembleRoundTripNames)
{
    Instr i;
    i.op = Opcode::Ld;
    i.rd = 3;
    i.rs1 = 4;
    i.imm = 16;
    EXPECT_EQ(disassemble(i), "ld r3, [r4+16]");
    i.op = Opcode::Beq;
    i.rs1 = 1;
    i.rs2 = 2;
    i.imm = 7;
    EXPECT_EQ(disassemble(i), "beq r1, r2, 7");
}

TEST(ProgramTest, OpcodeClassification)
{
    EXPECT_TRUE(isControl(Opcode::Jmp));
    EXPECT_TRUE(isControl(Opcode::Blt));
    EXPECT_FALSE(isControl(Opcode::Add));
    EXPECT_TRUE(isConditionalBranch(Opcode::Beq));
    EXPECT_FALSE(isConditionalBranch(Opcode::Jmp));
    EXPECT_TRUE(isMemory(Opcode::Ld));
    EXPECT_TRUE(isMemory(Opcode::St));
    EXPECT_FALSE(isMemory(Opcode::Mul));
}

} // namespace
