#include <gtest/gtest.h>

#include "cpu/core.h"
#include "prog/builder.h"
#include "prog/regions.h"

namespace
{

using namespace eddie::cpu;
using eddie::prog::ProgramBuilder;

/** Two sequential loops with inter-loop code between them. */
eddie::prog::Program
twoLoops(std::int64_t iters)
{
    ProgramBuilder b;
    b.li(0, 0);
    b.li(1, 0);
    b.li(2, iters);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.addi(3, 3, 1);
    b.xor_(4, 3, 1);
    b.addi(1, 1, 1);
    b.blt(1, 2, l0);
    b.nop();
    b.nop();
    b.li(1, 0);
    auto l1 = b.newLabel();
    b.bind(l1);
    b.addi(5, 5, 1);
    b.xor_(6, 5, 1);
    b.addi(1, 1, 1);
    b.blt(1, 2, l1);
    b.halt();
    return b.take();
}

CoreConfig
cfg()
{
    CoreConfig c;
    c.schedule_jitter = 0.0;
    return c;
}

TEST(InjectionTest, LoopInjectionAddsWork)
{
    const auto p = twoLoops(20000);
    const auto regions = eddie::prog::analyzeProgram(p);

    Core core(cfg());
    const auto clean = core.run(p, regions, {});

    InjectionPlan plan;
    LoopInjection li;
    li.loop_region = 0;
    li.ops = canonicalLoopPayload();
    li.contamination = 1.0;
    plan.loops.push_back(li);
    const auto injected = core.run(p, regions, {}, plan);

    EXPECT_EQ(injected.stats.instructions, clean.stats.instructions);
    EXPECT_NEAR(double(injected.stats.injected_ops), 8.0 * 20000.0,
                16.0);
    EXPECT_GT(injected.stats.cycles, clean.stats.cycles);
}

TEST(InjectionTest, ContaminationRateScalesInjectedOps)
{
    const auto p = twoLoops(20000);
    const auto regions = eddie::prog::analyzeProgram(p);
    Core core(cfg());

    InjectionPlan plan;
    LoopInjection li;
    li.loop_region = 0;
    li.ops = canonicalLoopPayload();
    li.contamination = 0.25;
    plan.loops.push_back(li);
    const auto rr = core.run(p, regions, {}, plan, 7);
    const double expected = 8.0 * 20000.0 * 0.25;
    EXPECT_NEAR(double(rr.stats.injected_ops), expected,
                expected * 0.15);
}

TEST(InjectionTest, InjectedSamplesFlagged)
{
    const auto p = twoLoops(20000);
    const auto regions = eddie::prog::analyzeProgram(p);
    Core core(cfg());

    InjectionPlan plan;
    LoopInjection li;
    li.loop_region = 1; // only the second loop
    li.ops = canonicalLoopPayload();
    plan.loops.push_back(li);
    const auto rr = core.run(p, regions, {}, plan);

    // Injected flags must appear only while region 1 executes.
    bool any = false;
    for (std::size_t i = 0; i < rr.injected.size(); ++i) {
        if (rr.injected[i]) {
            any = true;
            EXPECT_EQ(rr.region[i], 1u) << "sample " << i;
        }
    }
    EXPECT_TRUE(any);
}

TEST(InjectionTest, BurstFiresOnceAtRegionExit)
{
    const auto p = twoLoops(20000);
    const auto regions = eddie::prog::analyzeProgram(p);
    Core core(cfg());

    InjectionPlan plan;
    BurstInjection burst;
    burst.trigger_region = regions.transitionId(0, 1);
    burst.total_ops = 50000;
    plan.bursts.push_back(burst);
    const auto rr = core.run(p, regions, {}, plan);
    EXPECT_EQ(rr.stats.injected_ops, 50000u);

    // The burst samples form one contiguous blob after loop 0.
    std::size_t first = rr.injected.size(), last = 0;
    for (std::size_t i = 0; i < rr.injected.size(); ++i) {
        if (rr.injected[i]) {
            first = std::min(first, i);
            last = i;
        }
    }
    ASSERT_LT(first, rr.injected.size());
    // Near-contiguity: cache-missing burst ops stall the in-order
    // pipe, so marks can be up to a miss-latency apart, but the
    // burst must form one dense blob (no large gaps).
    std::size_t prev = first;
    for (std::size_t i = first + 1; i <= last; ++i) {
        if (rr.injected[i]) {
            EXPECT_LE(i - prev, 16u) << "gap at " << i;
            prev = i;
        }
    }
    // The blob is reasonably dense overall.
    std::size_t count = 0;
    for (std::size_t i = first; i <= last; ++i)
        count += rr.injected[i];
    EXPECT_GT(double(count) / double(last - first + 1), 0.3);
}

TEST(InjectionTest, OffChipPayloadSlowerThanOnChip)
{
    const auto p = twoLoops(20000);
    const auto regions = eddie::prog::analyzeProgram(p);
    Core core(cfg());

    InjectionPlan on;
    on.loops.push_back({0, onChipPayload(), 1.0});
    InjectionPlan off;
    off.loops.push_back({0, offChipPayload(), 1.0});
    const auto rr_on = core.run(p, regions, {}, on);
    const auto rr_off = core.run(p, regions, {}, off);
    EXPECT_GT(rr_off.stats.cycles, rr_on.stats.cycles);
    EXPECT_GT(rr_off.stats.l1_misses, rr_on.stats.l1_misses);
}

TEST(InjectionTest, PayloadFactories)
{
    EXPECT_EQ(canonicalLoopPayload().size(), 8u);
    EXPECT_EQ(storeAddPayload(6).size(), 6u);
    EXPECT_EQ(onChipPayload().size(), 8u);
    for (auto op : onChipPayload())
        EXPECT_EQ(op, InjectedOp::Add);
    std::size_t misses = 0;
    for (auto op : offChipPayload())
        if (op == InjectedOp::StoreMiss)
            ++misses;
    EXPECT_EQ(misses, 4u);
}

TEST(InjectionTest, BadLoopRegionThrows)
{
    const auto p = twoLoops(100);
    const auto regions = eddie::prog::analyzeProgram(p);
    Core core(cfg());
    InjectionPlan plan;
    plan.loops.push_back({99, onChipPayload(), 1.0});
    EXPECT_THROW(core.run(p, regions, {}, plan), std::out_of_range);
}

} // namespace
