#include <gtest/gtest.h>

#include "cpu/core.h"
#include "prog/builder.h"
#include "prog/regions.h"

namespace
{

using namespace eddie::cpu;
using eddie::prog::ProgramBuilder;

CoreConfig
testConfig()
{
    CoreConfig cfg;
    cfg.snapshot_words = 64;
    cfg.schedule_jitter = 0.0; // deterministic timing in tests
    return cfg;
}

RunResult
runProgram(const eddie::prog::Program &p, const CoreConfig &cfg,
           const MemoryImage &img = {},
           const InjectionPlan &plan = InjectionPlan())
{
    const auto regions = eddie::prog::analyzeProgram(p);
    Core core(cfg);
    return core.run(p, regions, img, plan, 1);
}

TEST(CoreFunctionalTest, ArithmeticAndMemory)
{
    ProgramBuilder b;
    b.li(1, 6);
    b.li(2, 7);
    b.mul(3, 1, 2);  // 42
    b.addi(4, 3, -2); // 40
    b.sub(5, 4, 1);  // 34
    b.div(6, 4, 2);  // 5
    b.li(7, 10);
    b.st(7, 3);      // mem[10] = 42
    b.ld(8, 7);      // r8 = 42
    b.xor_(9, 8, 3); // 0
    b.halt();
    const auto rr = runProgram(b.take(), testConfig());
    EXPECT_EQ(rr.final_regs[3], 42);
    EXPECT_EQ(rr.final_regs[4], 40);
    EXPECT_EQ(rr.final_regs[5], 34);
    EXPECT_EQ(rr.final_regs[6], 5);
    EXPECT_EQ(rr.final_regs[8], 42);
    EXPECT_EQ(rr.final_regs[9], 0);
    EXPECT_EQ(rr.memory[10], 42);
}

TEST(CoreFunctionalTest, ShiftsAndLogic)
{
    ProgramBuilder b;
    b.li(1, 0b1100);
    b.li(2, 2);
    b.shl(3, 1, 2); // 48
    b.shr(4, 1, 2); // 3
    b.and_(5, 1, 3);
    b.or_(6, 1, 4);
    b.halt();
    const auto rr = runProgram(b.take(), testConfig());
    EXPECT_EQ(rr.final_regs[3], 48);
    EXPECT_EQ(rr.final_regs[4], 3);
    EXPECT_EQ(rr.final_regs[5], 0b1100 & 48);
    EXPECT_EQ(rr.final_regs[6], 0b1100 | 3);
}

TEST(CoreFunctionalTest, DivByZeroYieldsZero)
{
    ProgramBuilder b;
    b.li(1, 10);
    b.li(2, 0);
    b.div(3, 1, 2);
    b.halt();
    const auto rr = runProgram(b.take(), testConfig());
    EXPECT_EQ(rr.final_regs[3], 0);
}

TEST(CoreFunctionalTest, LoopComputesSum)
{
    // sum 1..100 = 5050
    ProgramBuilder b;
    b.li(1, 0);  // i
    b.li(2, 0);  // sum
    b.li(3, 100);
    auto loop = b.newLabel();
    b.bind(loop);
    b.addi(1, 1, 1);
    b.add(2, 2, 1);
    b.blt(1, 3, loop);
    b.halt();
    const auto rr = runProgram(b.take(), testConfig());
    EXPECT_EQ(rr.final_regs[2], 5050);
    EXPECT_EQ(rr.stats.instructions, 3u + 3u * 100u + 1u);
}

TEST(CoreFunctionalTest, MemoryImageLoaded)
{
    ProgramBuilder b;
    b.li(1, 20);
    b.ld(2, 1);
    b.ld(3, 1, 1);
    b.halt();
    MemoryImage img;
    img.emplace_back(20, std::vector<std::int64_t>{111, 222});
    const auto rr = runProgram(b.take(), testConfig(), img);
    EXPECT_EQ(rr.final_regs[2], 111);
    EXPECT_EQ(rr.final_regs[3], 222);
}

TEST(CoreTimingTest, CyclesGrowWithWork)
{
    ProgramBuilder b1;
    b1.li(1, 0);
    b1.li(2, 1000);
    auto l1 = b1.newLabel();
    b1.bind(l1);
    b1.addi(1, 1, 1);
    b1.blt(1, 2, l1);
    b1.halt();
    const auto small = runProgram(b1.take(), testConfig());

    ProgramBuilder b2;
    b2.li(1, 0);
    b2.li(2, 10000);
    auto l2 = b2.newLabel();
    b2.bind(l2);
    b2.addi(1, 1, 1);
    b2.blt(1, 2, l2);
    b2.halt();
    const auto big = runProgram(b2.take(), testConfig());

    EXPECT_GT(big.stats.cycles, 5 * small.stats.cycles);
}

TEST(CoreTimingTest, WiderIssueIsFaster)
{
    // Independent operations benefit from issue width.
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 20000);
    auto loop = b.newLabel();
    b.bind(loop);
    for (int k = 3; k < 11; ++k)
        b.addi(k, k, 1); // 8 independent adds
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    const auto p = b.take();

    auto narrow_cfg = testConfig();
    narrow_cfg.issue_width = 1;
    auto wide_cfg = testConfig();
    wide_cfg.issue_width = 4;
    const auto narrow = runProgram(p, narrow_cfg);
    const auto wide = runProgram(p, wide_cfg);
    EXPECT_LT(wide.stats.cycles, narrow.stats.cycles * 2 / 3);
}

TEST(CoreTimingTest, OutOfOrderHidesLoadLatency)
{
    // A pointer-chase-free loop with many independent loads: the
    // out-of-order core should overlap misses, the in-order core
    // cannot.
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 3000);
    b.li(3, 1 << 14); // stride region base
    b.li(4, 512);     // stride in words (separate lines, big span)
    auto loop = b.newLabel();
    b.bind(loop);
    b.mul(5, 1, 4);
    b.add(5, 5, 3);
    b.ld(6, 5, 0);
    b.ld(7, 5, 8);
    b.ld(8, 5, 16);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    const auto p = b.take();

    auto in_cfg = testConfig();
    in_cfg.out_of_order = false;
    auto ooo_cfg = testConfig();
    ooo_cfg.out_of_order = true;
    ooo_cfg.rob_size = 64;
    const auto inorder = runProgram(p, in_cfg);
    const auto ooo = runProgram(p, ooo_cfg);
    EXPECT_LT(ooo.stats.cycles, inorder.stats.cycles);
}

TEST(CoreTimingTest, MispredictPenaltyScalesWithDepth)
{
    // A data-dependent unpredictable branch pattern.
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 20000);
    b.li(3, 0x9E37); // mixing constant
    b.li(4, 0);
    b.li(5, 1);
    auto loop = b.newLabel();
    auto skip = b.newLabel();
    b.bind(loop);
    b.mul(4, 1, 3);
    b.shr(6, 4, 5);
    b.and_(6, 6, 5);
    b.beq(6, 5, skip);
    b.addi(7, 7, 1);
    b.bind(skip);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    const auto p = b.take();

    auto shallow = testConfig();
    shallow.pipeline_depth = 4;
    auto deep = testConfig();
    deep.pipeline_depth = 20;
    const auto s = runProgram(p, shallow);
    const auto d = runProgram(p, deep);
    EXPECT_GT(d.stats.cycles, s.stats.cycles);
}

TEST(CoreTest, PowerTraceAnnotationsAligned)
{
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 5000);
    auto loop = b.newLabel();
    b.bind(loop);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    const auto rr = runProgram(b.take(), testConfig());
    EXPECT_EQ(rr.power.size(), rr.region.size());
    EXPECT_EQ(rr.power.size(), rr.injected.size());
    EXPECT_GT(rr.sample_rate, 0.0);
    for (double p : rr.power)
        EXPECT_GT(p, 0.0); // baseline keeps every sample positive
}

TEST(CoreTest, RegionGroundTruthCoversLoop)
{
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 50000);
    auto loop = b.newLabel();
    b.bind(loop);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    const auto rr = runProgram(b.take(), testConfig());
    std::size_t in_loop = 0;
    for (std::size_t r : rr.region)
        if (r == 0)
            ++in_loop;
    EXPECT_GT(double(in_loop) / double(rr.region.size()), 0.95);
}

TEST(CoreTest, InstructionCapStopsRunawayProgram)
{
    ProgramBuilder b;
    auto loop = b.newLabel();
    b.bind(loop);
    b.jmp(loop); // infinite
    auto cfg = testConfig();
    cfg.max_instructions = 10000;
    const auto rr = runProgram(b.take(), cfg);
    EXPECT_EQ(rr.stats.instructions, 10000u);
}

TEST(CoreTest, EmptyProgramThrows)
{
    eddie::prog::Program p;
    const auto regions = eddie::prog::analyzeProgram(p);
    Core core(testConfig());
    EXPECT_THROW(core.run(p, regions, {}), std::invalid_argument);
}

TEST(CoreTest, OversizedImageThrows)
{
    ProgramBuilder b;
    b.halt();
    const auto p = b.take();
    const auto regions = eddie::prog::analyzeProgram(p);
    auto cfg = testConfig();
    Core core(cfg);
    MemoryImage img;
    img.emplace_back(cfg.memory_words - 1,
                     std::vector<std::int64_t>{1, 2, 3});
    EXPECT_THROW(core.run(p, regions, img), std::out_of_range);
}

} // namespace
