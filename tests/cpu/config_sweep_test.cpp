/**
 * @file
 * Property tests across core configurations: the *functional* result
 * of a program must not depend on the timing model, and injections
 * must never alter architectural state (the paper's injections use
 * only dead registers).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "cpu/core.h"
#include "prog/builder.h"
#include "prog/regions.h"

namespace
{

using namespace eddie::cpu;
using eddie::prog::ProgramBuilder;

/** A small but branchy/memory-heavy checksum program. */
eddie::prog::Program
checksumProgram()
{
    ProgramBuilder b;
    b.li(0, 0);
    b.li(1, 0);      // i
    b.li(2, 4000);   // n
    b.li(3, 64);     // base
    b.li(4, 0);      // checksum
    b.li(5, 1);
    auto loop = b.newLabel();
    auto skip = b.newLabel();
    b.bind(loop);
    b.add(6, 3, 1);
    b.ld(7, 6);           // v = mem[base + i]
    b.mul(7, 7, 5);
    b.addi(7, 7, 13);
    b.and_(8, 7, 5);
    b.beq(8, 0, skip);    // data-dependent branch
    b.xor_(4, 4, 7);
    b.bind(skip);
    b.add(4, 4, 7);
    b.st(6, 4);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.take();
}

struct SweepParam
{
    bool ooo;
    std::size_t width;
    std::size_t depth;
    std::size_t rob;
};

std::string
paramName(const ::testing::TestParamInfo<SweepParam> &info)
{
    std::ostringstream os;
    os << (info.param.ooo ? "ooo" : "inorder") << "_w"
       << info.param.width << "_d" << info.param.depth << "_rob"
       << info.param.rob;
    return os.str();
}

class ConfigSweepTest : public ::testing::TestWithParam<SweepParam>
{
  protected:
    CoreConfig
    config() const
    {
        CoreConfig c;
        c.out_of_order = GetParam().ooo;
        c.issue_width = GetParam().width;
        c.pipeline_depth = GetParam().depth;
        c.rob_size = GetParam().rob;
        c.snapshot_words = 0;
        return c;
    }
};

TEST_P(ConfigSweepTest, FunctionalResultIndependentOfTiming)
{
    const auto p = checksumProgram();
    const auto regions = eddie::prog::analyzeProgram(p);
    MemoryImage img;
    std::vector<std::int64_t> data(4000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::int64_t(i * 2654435761u % 997);
    img.emplace_back(64, data);

    // Reference: simple in-order machine.
    CoreConfig ref_cfg;
    ref_cfg.issue_width = 1;
    ref_cfg.schedule_jitter = 0.0;
    Core ref_core(ref_cfg);
    const auto ref = ref_core.run(p, regions, img);

    Core core(config());
    const auto rr = core.run(p, regions, img, {}, 99);
    EXPECT_EQ(rr.final_regs, ref.final_regs);
    EXPECT_EQ(rr.stats.instructions, ref.stats.instructions);
}

TEST_P(ConfigSweepTest, InjectionNeverAltersArchitecturalState)
{
    const auto p = checksumProgram();
    const auto regions = eddie::prog::analyzeProgram(p);
    MemoryImage img;
    img.emplace_back(64, std::vector<std::int64_t>(4000, 7));

    Core core(config());
    const auto clean = core.run(p, regions, img, {}, 5);

    InjectionPlan plan;
    plan.loops.push_back({0, canonicalLoopPayload(), 1.0});
    BurstInjection burst;
    burst.trigger_region = 0;
    burst.total_ops = 20000;
    plan.bursts.push_back(burst);
    const auto injected = core.run(p, regions, img, plan, 5);

    EXPECT_EQ(injected.final_regs, clean.final_regs);
    EXPECT_EQ(injected.stats.instructions, clean.stats.instructions);
    EXPECT_GT(injected.stats.injected_ops, 0u);
}

TEST_P(ConfigSweepTest, PowerTraceCoversWholeRun)
{
    const auto p = checksumProgram();
    const auto regions = eddie::prog::analyzeProgram(p);
    Core core(config());
    const auto rr = core.run(p, regions, {});
    ASSERT_FALSE(rr.power.empty());
    // Samples * cycles/sample must cover the cycle count.
    const auto cfg = config();
    EXPECT_GE(rr.power.size() * cfg.cycles_per_sample +
                  cfg.cycles_per_sample,
              rr.stats.cycles);
    EXPECT_EQ(rr.power.size(), rr.region.size());
}

INSTANTIATE_TEST_SUITE_P(
    Machines, ConfigSweepTest,
    ::testing::Values(SweepParam{false, 1, 4, 32},
                      SweepParam{false, 2, 8, 32},
                      SweepParam{false, 4, 12, 32},
                      SweepParam{true, 1, 8, 32},
                      SweepParam{true, 2, 8, 64},
                      SweepParam{true, 4, 12, 128},
                      SweepParam{true, 4, 20, 192}),
    paramName);

} // namespace
