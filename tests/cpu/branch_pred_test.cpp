#include <gtest/gtest.h>

#include "cpu/branch_pred.h"

namespace
{

using eddie::cpu::BranchPredictor;

TEST(BranchPredTest, LearnsAlwaysTaken)
{
    BranchPredictor bp(10);
    // Warm up: the global history register must saturate (10 bits)
    // before the gshare index becomes stable.
    for (int i = 0; i < 20; ++i)
        bp.update(100, true);
    int correct = 0;
    for (int i = 0; i < 100; ++i)
        if (bp.update(100, true))
            ++correct;
    EXPECT_EQ(correct, 100);
}

TEST(BranchPredTest, LearnsLoopPattern)
{
    BranchPredictor bp(12);
    // A loop branch taken 15x then not-taken once, repeating. After
    // warmup, gshare should get most of these right.
    std::uint64_t mispredicts = 0;
    const std::uint64_t before = bp.mispredicts();
    for (int rep = 0; rep < 100; ++rep) {
        for (int i = 0; i < 15; ++i)
            bp.update(200, true);
        bp.update(200, false);
    }
    mispredicts = bp.mispredicts() - before;
    // 1600 branches; allow generous warmup/aliasing error.
    EXPECT_LT(mispredicts, 300u);
}

TEST(BranchPredTest, ResetClearsState)
{
    BranchPredictor bp(8);
    for (int i = 0; i < 10; ++i)
        bp.update(5, true);
    bp.reset();
    EXPECT_EQ(bp.lookups(), 0u);
    EXPECT_EQ(bp.mispredicts(), 0u);
    // Counters back to weakly-not-taken.
    EXPECT_FALSE(bp.predict(5));
}

TEST(BranchPredTest, CountsLookups)
{
    BranchPredictor bp(8);
    for (int i = 0; i < 7; ++i)
        bp.update(i, i % 2 == 0);
    EXPECT_EQ(bp.lookups(), 7u);
}

TEST(BranchPredTest, BadConfigThrows)
{
    EXPECT_THROW(BranchPredictor(0), std::invalid_argument);
    EXPECT_THROW(BranchPredictor(30), std::invalid_argument);
}

} // namespace
