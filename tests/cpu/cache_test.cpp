#include <gtest/gtest.h>

#include "cpu/cache.h"

namespace
{

using namespace eddie::cpu;

TEST(CacheTest, ColdMissThenHit)
{
    Cache c(CacheConfig{1024, 2, 64});
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(63)); // same line
    EXPECT_FALSE(c.access(64)); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheTest, LruEviction)
{
    // 2-way, 64B lines, 8 sets (1KB): lines mapping to set 0 are
    // addresses k * 512.
    Cache c(CacheConfig{1024, 2, 64});
    EXPECT_FALSE(c.access(0 * 512));
    EXPECT_FALSE(c.access(1 * 512));
    EXPECT_TRUE(c.access(0 * 512)); // touch line 0: line 1 is LRU
    EXPECT_FALSE(c.access(2 * 512)); // evicts line 1
    EXPECT_TRUE(c.access(0 * 512));
    EXPECT_FALSE(c.access(1 * 512)); // line 1 was evicted
}

TEST(CacheTest, CapacityWorkingSetFits)
{
    Cache c(CacheConfig{32 * 1024, 4, 64});
    // Touch 32 KB worth of lines twice; second pass all hits.
    for (std::uint64_t a = 0; a < 32 * 1024; a += 64)
        c.access(a);
    const auto misses_first = c.misses();
    for (std::uint64_t a = 0; a < 32 * 1024; a += 64)
        EXPECT_TRUE(c.access(a));
    EXPECT_EQ(c.misses(), misses_first);
}

TEST(CacheTest, FlushDropsContents)
{
    Cache c(CacheConfig{1024, 2, 64});
    c.access(0);
    c.flush();
    EXPECT_FALSE(c.access(0));
}

TEST(CacheTest, BadGeometryThrows)
{
    EXPECT_THROW(Cache(CacheConfig{1000, 3, 64}),
                 std::invalid_argument);
    EXPECT_THROW(Cache(CacheConfig{1024, 2, 60}),
                 std::invalid_argument);
    EXPECT_THROW(Cache(CacheConfig{1024, 0, 64}),
                 std::invalid_argument);
}

TEST(CacheHierarchyTest, LevelsFillInOrder)
{
    CacheHierarchy h(CacheConfig{1024, 2, 64},
                     CacheConfig{4096, 4, 64});
    EXPECT_EQ(h.access(0), MemLevel::Dram); // cold
    EXPECT_EQ(h.access(0), MemLevel::L1);
    // Evict from L1 by touching 17 lines in the same L1 set but
    // keep them resident in the larger L2.
    for (int i = 1; i <= 4; ++i)
        h.access(std::uint64_t(i) * 512);
    // Address 0 may be gone from L1 but should hit L2.
    const MemLevel lvl = h.access(0);
    EXPECT_TRUE(lvl == MemLevel::L1 || lvl == MemLevel::L2);
    EXPECT_NE(lvl, MemLevel::Dram);
}

} // namespace
