file(REMOVE_RECURSE
  "CMakeFiles/eddie_analyze.dir/eddie_analyze.cpp.o"
  "CMakeFiles/eddie_analyze.dir/eddie_analyze.cpp.o.d"
  "eddie_analyze"
  "eddie_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
