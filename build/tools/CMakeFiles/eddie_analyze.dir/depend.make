# Empty dependencies file for eddie_analyze.
# This may be replaced when dependencies are built.
