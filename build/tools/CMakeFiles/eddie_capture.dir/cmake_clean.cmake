file(REMOVE_RECURSE
  "CMakeFiles/eddie_capture.dir/eddie_capture.cpp.o"
  "CMakeFiles/eddie_capture.dir/eddie_capture.cpp.o.d"
  "eddie_capture"
  "eddie_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
