# Empty compiler generated dependencies file for eddie_capture.
# This may be replaced when dependencies are built.
