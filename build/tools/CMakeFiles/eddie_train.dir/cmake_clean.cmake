file(REMOVE_RECURSE
  "CMakeFiles/eddie_train.dir/eddie_train.cpp.o"
  "CMakeFiles/eddie_train.dir/eddie_train.cpp.o.d"
  "eddie_train"
  "eddie_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
