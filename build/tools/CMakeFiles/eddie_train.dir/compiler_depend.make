# Empty compiler generated dependencies file for eddie_train.
# This may be replaced when dependencies are built.
