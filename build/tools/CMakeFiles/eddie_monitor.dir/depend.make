# Empty dependencies file for eddie_monitor.
# This may be replaced when dependencies are built.
