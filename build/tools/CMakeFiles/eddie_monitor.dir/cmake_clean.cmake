file(REMOVE_RECURSE
  "CMakeFiles/eddie_monitor.dir/eddie_monitor.cpp.o"
  "CMakeFiles/eddie_monitor.dir/eddie_monitor.cpp.o.d"
  "eddie_monitor"
  "eddie_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
