# Empty dependencies file for eddie_inspect.
# This may be replaced when dependencies are built.
