file(REMOVE_RECURSE
  "CMakeFiles/eddie_inspect.dir/eddie_inspect.cpp.o"
  "CMakeFiles/eddie_inspect.dir/eddie_inspect.cpp.o.d"
  "eddie_inspect"
  "eddie_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
