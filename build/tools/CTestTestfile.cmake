# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_roundtrip "bash" "-c" "set -e; d=\$(mktemp -d); trap 'rm -rf \$d' EXIT; /root/repo/build/tools/eddie_train bitcount \$d/m --scale 0.15 --runs 3 && /root/repo/build/tools/eddie_inspect \$d/m --histogram 0 > /dev/null && /root/repo/build/tools/eddie_capture bitcount \$d/c --scale 0.15 && /root/repo/build/tools/eddie_analyze \$d/m \$d/c bitcount --scale 0.15 && /root/repo/build/tools/eddie_capture bitcount \$d/ci --scale 0.15 --inject loop && ! /root/repo/build/tools/eddie_analyze \$d/m \$d/ci bitcount --scale 0.15 > /dev/null")
set_tests_properties(tools_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
