# Empty dependencies file for stealth_probe.
# This may be replaced when dependencies are built.
