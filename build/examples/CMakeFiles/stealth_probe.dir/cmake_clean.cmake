file(REMOVE_RECURSE
  "CMakeFiles/stealth_probe.dir/stealth_probe.cpp.o"
  "CMakeFiles/stealth_probe.dir/stealth_probe.cpp.o.d"
  "stealth_probe"
  "stealth_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stealth_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
