# Empty compiler generated dependencies file for spectral_profiler.
# This may be replaced when dependencies are built.
