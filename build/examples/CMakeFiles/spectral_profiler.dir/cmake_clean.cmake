file(REMOVE_RECURSE
  "CMakeFiles/spectral_profiler.dir/spectral_profiler.cpp.o"
  "CMakeFiles/spectral_profiler.dir/spectral_profiler.cpp.o.d"
  "spectral_profiler"
  "spectral_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
