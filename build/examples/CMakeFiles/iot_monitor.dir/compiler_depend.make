# Empty compiler generated dependencies file for iot_monitor.
# This may be replaced when dependencies are built.
