file(REMOVE_RECURSE
  "CMakeFiles/iot_monitor.dir/iot_monitor.cpp.o"
  "CMakeFiles/iot_monitor.dir/iot_monitor.cpp.o.d"
  "iot_monitor"
  "iot_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
