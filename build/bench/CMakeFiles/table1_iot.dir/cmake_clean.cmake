file(REMOVE_RECURSE
  "CMakeFiles/table1_iot.dir/table1_iot.cpp.o"
  "CMakeFiles/table1_iot.dir/table1_iot.cpp.o.d"
  "table1_iot"
  "table1_iot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_iot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
