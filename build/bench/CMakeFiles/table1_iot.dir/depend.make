# Empty dependencies file for table1_iot.
# This may be replaced when dependencies are built.
