# Empty dependencies file for fig01_spectrum.
# This may be replaced when dependencies are built.
