file(REMOVE_RECURSE
  "CMakeFiles/fig01_spectrum.dir/fig01_spectrum.cpp.o"
  "CMakeFiles/fig01_spectrum.dir/fig01_spectrum.cpp.o.d"
  "fig01_spectrum"
  "fig01_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
