file(REMOVE_RECURSE
  "CMakeFiles/anova_arch.dir/anova_arch.cpp.o"
  "CMakeFiles/anova_arch.dir/anova_arch.cpp.o.d"
  "anova_arch"
  "anova_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anova_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
