# Empty dependencies file for anova_arch.
# This may be replaced when dependencies are built.
