file(REMOVE_RECURSE
  "libeddie_bench_util.a"
)
