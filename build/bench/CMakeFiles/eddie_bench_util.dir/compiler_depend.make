# Empty compiler generated dependencies file for eddie_bench_util.
# This may be replaced when dependencies are built.
