file(REMOVE_RECURSE
  "CMakeFiles/eddie_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/eddie_bench_util.dir/bench_util.cpp.o.d"
  "libeddie_bench_util.a"
  "libeddie_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
