# Empty dependencies file for fig06_inject_size_loop.
# This may be replaced when dependencies are built.
