file(REMOVE_RECURSE
  "CMakeFiles/fig06_inject_size_loop.dir/fig06_inject_size_loop.cpp.o"
  "CMakeFiles/fig06_inject_size_loop.dir/fig06_inject_size_loop.cpp.o.d"
  "fig06_inject_size_loop"
  "fig06_inject_size_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_inject_size_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
