file(REMOVE_RECURSE
  "CMakeFiles/fig03_buffer_size.dir/fig03_buffer_size.cpp.o"
  "CMakeFiles/fig03_buffer_size.dir/fig03_buffer_size.cpp.o.d"
  "fig03_buffer_size"
  "fig03_buffer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_buffer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
