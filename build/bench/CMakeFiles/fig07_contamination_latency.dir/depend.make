# Empty dependencies file for fig07_contamination_latency.
# This may be replaced when dependencies are built.
