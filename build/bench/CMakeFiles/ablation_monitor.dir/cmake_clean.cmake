file(REMOVE_RECURSE
  "CMakeFiles/ablation_monitor.dir/ablation_monitor.cpp.o"
  "CMakeFiles/ablation_monitor.dir/ablation_monitor.cpp.o.d"
  "ablation_monitor"
  "ablation_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
