file(REMOVE_RECURSE
  "CMakeFiles/fig10_instr_type.dir/fig10_instr_type.cpp.o"
  "CMakeFiles/fig10_instr_type.dir/fig10_instr_type.cpp.o.d"
  "fig10_instr_type"
  "fig10_instr_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_instr_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
