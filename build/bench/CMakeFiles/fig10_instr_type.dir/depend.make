# Empty dependencies file for fig10_instr_type.
# This may be replaced when dependencies are built.
