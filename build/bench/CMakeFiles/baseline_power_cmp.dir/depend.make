# Empty dependencies file for baseline_power_cmp.
# This may be replaced when dependencies are built.
