file(REMOVE_RECURSE
  "CMakeFiles/baseline_power_cmp.dir/baseline_power_cmp.cpp.o"
  "CMakeFiles/baseline_power_cmp.dir/baseline_power_cmp.cpp.o.d"
  "baseline_power_cmp"
  "baseline_power_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_power_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
