file(REMOVE_RECURSE
  "CMakeFiles/table2_sim.dir/table2_sim.cpp.o"
  "CMakeFiles/table2_sim.dir/table2_sim.cpp.o.d"
  "table2_sim"
  "table2_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
