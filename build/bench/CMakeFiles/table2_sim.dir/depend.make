# Empty dependencies file for table2_sim.
# This may be replaced when dependencies are built.
