# Empty compiler generated dependencies file for fig04_arch.
# This may be replaced when dependencies are built.
