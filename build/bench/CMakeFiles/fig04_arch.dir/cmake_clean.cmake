file(REMOVE_RECURSE
  "CMakeFiles/fig04_arch.dir/fig04_arch.cpp.o"
  "CMakeFiles/fig04_arch.dir/fig04_arch.cpp.o.d"
  "fig04_arch"
  "fig04_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
