file(REMOVE_RECURSE
  "CMakeFiles/fig02_parametric.dir/fig02_parametric.cpp.o"
  "CMakeFiles/fig02_parametric.dir/fig02_parametric.cpp.o.d"
  "fig02_parametric"
  "fig02_parametric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_parametric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
