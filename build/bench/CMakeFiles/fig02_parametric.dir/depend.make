# Empty dependencies file for fig02_parametric.
# This may be replaced when dependencies are built.
