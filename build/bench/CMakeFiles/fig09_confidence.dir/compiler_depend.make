# Empty compiler generated dependencies file for fig09_confidence.
# This may be replaced when dependencies are built.
