file(REMOVE_RECURSE
  "CMakeFiles/fig09_confidence.dir/fig09_confidence.cpp.o"
  "CMakeFiles/fig09_confidence.dir/fig09_confidence.cpp.o.d"
  "fig09_confidence"
  "fig09_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
