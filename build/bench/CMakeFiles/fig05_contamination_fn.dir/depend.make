# Empty dependencies file for fig05_contamination_fn.
# This may be replaced when dependencies are built.
