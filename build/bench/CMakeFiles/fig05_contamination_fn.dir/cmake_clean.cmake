file(REMOVE_RECURSE
  "CMakeFiles/fig05_contamination_fn.dir/fig05_contamination_fn.cpp.o"
  "CMakeFiles/fig05_contamination_fn.dir/fig05_contamination_fn.cpp.o.d"
  "fig05_contamination_fn"
  "fig05_contamination_fn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_contamination_fn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
