file(REMOVE_RECURSE
  "libeddie_core.a"
)
