# Empty compiler generated dependencies file for eddie_core.
# This may be replaced when dependencies are built.
