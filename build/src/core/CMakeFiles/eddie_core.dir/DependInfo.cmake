
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_parametric.cpp" "src/core/CMakeFiles/eddie_core.dir/baseline_parametric.cpp.o" "gcc" "src/core/CMakeFiles/eddie_core.dir/baseline_parametric.cpp.o.d"
  "/root/repo/src/core/baseline_power.cpp" "src/core/CMakeFiles/eddie_core.dir/baseline_power.cpp.o" "gcc" "src/core/CMakeFiles/eddie_core.dir/baseline_power.cpp.o.d"
  "/root/repo/src/core/capture_io.cpp" "src/core/CMakeFiles/eddie_core.dir/capture_io.cpp.o" "gcc" "src/core/CMakeFiles/eddie_core.dir/capture_io.cpp.o.d"
  "/root/repo/src/core/fast_ks.cpp" "src/core/CMakeFiles/eddie_core.dir/fast_ks.cpp.o" "gcc" "src/core/CMakeFiles/eddie_core.dir/fast_ks.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/eddie_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/eddie_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/eddie_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/eddie_core.dir/model.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/eddie_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/eddie_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/eddie_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/eddie_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/sts.cpp" "src/core/CMakeFiles/eddie_core.dir/sts.cpp.o" "gcc" "src/core/CMakeFiles/eddie_core.dir/sts.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/eddie_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/eddie_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sig/CMakeFiles/eddie_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/eddie_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/eddie_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/eddie_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/eddie_em.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/eddie_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eddie_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
