file(REMOVE_RECURSE
  "CMakeFiles/eddie_core.dir/baseline_parametric.cpp.o"
  "CMakeFiles/eddie_core.dir/baseline_parametric.cpp.o.d"
  "CMakeFiles/eddie_core.dir/baseline_power.cpp.o"
  "CMakeFiles/eddie_core.dir/baseline_power.cpp.o.d"
  "CMakeFiles/eddie_core.dir/capture_io.cpp.o"
  "CMakeFiles/eddie_core.dir/capture_io.cpp.o.d"
  "CMakeFiles/eddie_core.dir/fast_ks.cpp.o"
  "CMakeFiles/eddie_core.dir/fast_ks.cpp.o.d"
  "CMakeFiles/eddie_core.dir/metrics.cpp.o"
  "CMakeFiles/eddie_core.dir/metrics.cpp.o.d"
  "CMakeFiles/eddie_core.dir/model.cpp.o"
  "CMakeFiles/eddie_core.dir/model.cpp.o.d"
  "CMakeFiles/eddie_core.dir/monitor.cpp.o"
  "CMakeFiles/eddie_core.dir/monitor.cpp.o.d"
  "CMakeFiles/eddie_core.dir/pipeline.cpp.o"
  "CMakeFiles/eddie_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/eddie_core.dir/sts.cpp.o"
  "CMakeFiles/eddie_core.dir/sts.cpp.o.d"
  "CMakeFiles/eddie_core.dir/trainer.cpp.o"
  "CMakeFiles/eddie_core.dir/trainer.cpp.o.d"
  "libeddie_core.a"
  "libeddie_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
