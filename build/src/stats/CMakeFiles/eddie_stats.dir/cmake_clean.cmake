file(REMOVE_RECURSE
  "CMakeFiles/eddie_stats.dir/anova.cpp.o"
  "CMakeFiles/eddie_stats.dir/anova.cpp.o.d"
  "CMakeFiles/eddie_stats.dir/descriptive.cpp.o"
  "CMakeFiles/eddie_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/eddie_stats.dir/edf.cpp.o"
  "CMakeFiles/eddie_stats.dir/edf.cpp.o.d"
  "CMakeFiles/eddie_stats.dir/gmm.cpp.o"
  "CMakeFiles/eddie_stats.dir/gmm.cpp.o.d"
  "CMakeFiles/eddie_stats.dir/ks.cpp.o"
  "CMakeFiles/eddie_stats.dir/ks.cpp.o.d"
  "CMakeFiles/eddie_stats.dir/mwu.cpp.o"
  "CMakeFiles/eddie_stats.dir/mwu.cpp.o.d"
  "CMakeFiles/eddie_stats.dir/special.cpp.o"
  "CMakeFiles/eddie_stats.dir/special.cpp.o.d"
  "libeddie_stats.a"
  "libeddie_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
