# Empty dependencies file for eddie_stats.
# This may be replaced when dependencies are built.
