file(REMOVE_RECURSE
  "libeddie_stats.a"
)
