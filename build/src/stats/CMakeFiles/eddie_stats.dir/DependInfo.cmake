
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/anova.cpp" "src/stats/CMakeFiles/eddie_stats.dir/anova.cpp.o" "gcc" "src/stats/CMakeFiles/eddie_stats.dir/anova.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/eddie_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/eddie_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/edf.cpp" "src/stats/CMakeFiles/eddie_stats.dir/edf.cpp.o" "gcc" "src/stats/CMakeFiles/eddie_stats.dir/edf.cpp.o.d"
  "/root/repo/src/stats/gmm.cpp" "src/stats/CMakeFiles/eddie_stats.dir/gmm.cpp.o" "gcc" "src/stats/CMakeFiles/eddie_stats.dir/gmm.cpp.o.d"
  "/root/repo/src/stats/ks.cpp" "src/stats/CMakeFiles/eddie_stats.dir/ks.cpp.o" "gcc" "src/stats/CMakeFiles/eddie_stats.dir/ks.cpp.o.d"
  "/root/repo/src/stats/mwu.cpp" "src/stats/CMakeFiles/eddie_stats.dir/mwu.cpp.o" "gcc" "src/stats/CMakeFiles/eddie_stats.dir/mwu.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/eddie_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/eddie_stats.dir/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
