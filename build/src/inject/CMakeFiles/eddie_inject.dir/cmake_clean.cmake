file(REMOVE_RECURSE
  "CMakeFiles/eddie_inject.dir/scenarios.cpp.o"
  "CMakeFiles/eddie_inject.dir/scenarios.cpp.o.d"
  "libeddie_inject.a"
  "libeddie_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
