# Empty dependencies file for eddie_inject.
# This may be replaced when dependencies are built.
