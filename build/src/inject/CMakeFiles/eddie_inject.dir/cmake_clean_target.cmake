file(REMOVE_RECURSE
  "libeddie_inject.a"
)
