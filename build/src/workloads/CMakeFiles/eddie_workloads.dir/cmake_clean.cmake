file(REMOVE_RECURSE
  "CMakeFiles/eddie_workloads.dir/basicmath.cpp.o"
  "CMakeFiles/eddie_workloads.dir/basicmath.cpp.o.d"
  "CMakeFiles/eddie_workloads.dir/bitcount.cpp.o"
  "CMakeFiles/eddie_workloads.dir/bitcount.cpp.o.d"
  "CMakeFiles/eddie_workloads.dir/dijkstra.cpp.o"
  "CMakeFiles/eddie_workloads.dir/dijkstra.cpp.o.d"
  "CMakeFiles/eddie_workloads.dir/fft.cpp.o"
  "CMakeFiles/eddie_workloads.dir/fft.cpp.o.d"
  "CMakeFiles/eddie_workloads.dir/gsm.cpp.o"
  "CMakeFiles/eddie_workloads.dir/gsm.cpp.o.d"
  "CMakeFiles/eddie_workloads.dir/patricia.cpp.o"
  "CMakeFiles/eddie_workloads.dir/patricia.cpp.o.d"
  "CMakeFiles/eddie_workloads.dir/rijndael.cpp.o"
  "CMakeFiles/eddie_workloads.dir/rijndael.cpp.o.d"
  "CMakeFiles/eddie_workloads.dir/sha.cpp.o"
  "CMakeFiles/eddie_workloads.dir/sha.cpp.o.d"
  "CMakeFiles/eddie_workloads.dir/stringsearch.cpp.o"
  "CMakeFiles/eddie_workloads.dir/stringsearch.cpp.o.d"
  "CMakeFiles/eddie_workloads.dir/susan.cpp.o"
  "CMakeFiles/eddie_workloads.dir/susan.cpp.o.d"
  "CMakeFiles/eddie_workloads.dir/workload.cpp.o"
  "CMakeFiles/eddie_workloads.dir/workload.cpp.o.d"
  "CMakeFiles/eddie_workloads.dir/workload_util.cpp.o"
  "CMakeFiles/eddie_workloads.dir/workload_util.cpp.o.d"
  "libeddie_workloads.a"
  "libeddie_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
