file(REMOVE_RECURSE
  "libeddie_workloads.a"
)
