# Empty compiler generated dependencies file for eddie_workloads.
# This may be replaced when dependencies are built.
