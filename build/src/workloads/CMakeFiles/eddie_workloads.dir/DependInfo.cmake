
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/basicmath.cpp" "src/workloads/CMakeFiles/eddie_workloads.dir/basicmath.cpp.o" "gcc" "src/workloads/CMakeFiles/eddie_workloads.dir/basicmath.cpp.o.d"
  "/root/repo/src/workloads/bitcount.cpp" "src/workloads/CMakeFiles/eddie_workloads.dir/bitcount.cpp.o" "gcc" "src/workloads/CMakeFiles/eddie_workloads.dir/bitcount.cpp.o.d"
  "/root/repo/src/workloads/dijkstra.cpp" "src/workloads/CMakeFiles/eddie_workloads.dir/dijkstra.cpp.o" "gcc" "src/workloads/CMakeFiles/eddie_workloads.dir/dijkstra.cpp.o.d"
  "/root/repo/src/workloads/fft.cpp" "src/workloads/CMakeFiles/eddie_workloads.dir/fft.cpp.o" "gcc" "src/workloads/CMakeFiles/eddie_workloads.dir/fft.cpp.o.d"
  "/root/repo/src/workloads/gsm.cpp" "src/workloads/CMakeFiles/eddie_workloads.dir/gsm.cpp.o" "gcc" "src/workloads/CMakeFiles/eddie_workloads.dir/gsm.cpp.o.d"
  "/root/repo/src/workloads/patricia.cpp" "src/workloads/CMakeFiles/eddie_workloads.dir/patricia.cpp.o" "gcc" "src/workloads/CMakeFiles/eddie_workloads.dir/patricia.cpp.o.d"
  "/root/repo/src/workloads/rijndael.cpp" "src/workloads/CMakeFiles/eddie_workloads.dir/rijndael.cpp.o" "gcc" "src/workloads/CMakeFiles/eddie_workloads.dir/rijndael.cpp.o.d"
  "/root/repo/src/workloads/sha.cpp" "src/workloads/CMakeFiles/eddie_workloads.dir/sha.cpp.o" "gcc" "src/workloads/CMakeFiles/eddie_workloads.dir/sha.cpp.o.d"
  "/root/repo/src/workloads/stringsearch.cpp" "src/workloads/CMakeFiles/eddie_workloads.dir/stringsearch.cpp.o" "gcc" "src/workloads/CMakeFiles/eddie_workloads.dir/stringsearch.cpp.o.d"
  "/root/repo/src/workloads/susan.cpp" "src/workloads/CMakeFiles/eddie_workloads.dir/susan.cpp.o" "gcc" "src/workloads/CMakeFiles/eddie_workloads.dir/susan.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/eddie_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/eddie_workloads.dir/workload.cpp.o.d"
  "/root/repo/src/workloads/workload_util.cpp" "src/workloads/CMakeFiles/eddie_workloads.dir/workload_util.cpp.o" "gcc" "src/workloads/CMakeFiles/eddie_workloads.dir/workload_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prog/CMakeFiles/eddie_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/eddie_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eddie_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
