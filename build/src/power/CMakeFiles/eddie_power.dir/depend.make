# Empty dependencies file for eddie_power.
# This may be replaced when dependencies are built.
