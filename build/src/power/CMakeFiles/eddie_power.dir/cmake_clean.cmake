file(REMOVE_RECURSE
  "CMakeFiles/eddie_power.dir/energy_model.cpp.o"
  "CMakeFiles/eddie_power.dir/energy_model.cpp.o.d"
  "CMakeFiles/eddie_power.dir/power_trace.cpp.o"
  "CMakeFiles/eddie_power.dir/power_trace.cpp.o.d"
  "libeddie_power.a"
  "libeddie_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
