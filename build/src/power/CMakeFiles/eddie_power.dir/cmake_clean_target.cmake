file(REMOVE_RECURSE
  "libeddie_power.a"
)
