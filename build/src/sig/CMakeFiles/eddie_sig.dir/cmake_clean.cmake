file(REMOVE_RECURSE
  "CMakeFiles/eddie_sig.dir/fft.cpp.o"
  "CMakeFiles/eddie_sig.dir/fft.cpp.o.d"
  "CMakeFiles/eddie_sig.dir/filter.cpp.o"
  "CMakeFiles/eddie_sig.dir/filter.cpp.o.d"
  "CMakeFiles/eddie_sig.dir/modulation.cpp.o"
  "CMakeFiles/eddie_sig.dir/modulation.cpp.o.d"
  "CMakeFiles/eddie_sig.dir/noise.cpp.o"
  "CMakeFiles/eddie_sig.dir/noise.cpp.o.d"
  "CMakeFiles/eddie_sig.dir/peaks.cpp.o"
  "CMakeFiles/eddie_sig.dir/peaks.cpp.o.d"
  "CMakeFiles/eddie_sig.dir/spectrum.cpp.o"
  "CMakeFiles/eddie_sig.dir/spectrum.cpp.o.d"
  "CMakeFiles/eddie_sig.dir/stft.cpp.o"
  "CMakeFiles/eddie_sig.dir/stft.cpp.o.d"
  "CMakeFiles/eddie_sig.dir/window.cpp.o"
  "CMakeFiles/eddie_sig.dir/window.cpp.o.d"
  "libeddie_sig.a"
  "libeddie_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
