file(REMOVE_RECURSE
  "libeddie_sig.a"
)
