
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sig/fft.cpp" "src/sig/CMakeFiles/eddie_sig.dir/fft.cpp.o" "gcc" "src/sig/CMakeFiles/eddie_sig.dir/fft.cpp.o.d"
  "/root/repo/src/sig/filter.cpp" "src/sig/CMakeFiles/eddie_sig.dir/filter.cpp.o" "gcc" "src/sig/CMakeFiles/eddie_sig.dir/filter.cpp.o.d"
  "/root/repo/src/sig/modulation.cpp" "src/sig/CMakeFiles/eddie_sig.dir/modulation.cpp.o" "gcc" "src/sig/CMakeFiles/eddie_sig.dir/modulation.cpp.o.d"
  "/root/repo/src/sig/noise.cpp" "src/sig/CMakeFiles/eddie_sig.dir/noise.cpp.o" "gcc" "src/sig/CMakeFiles/eddie_sig.dir/noise.cpp.o.d"
  "/root/repo/src/sig/peaks.cpp" "src/sig/CMakeFiles/eddie_sig.dir/peaks.cpp.o" "gcc" "src/sig/CMakeFiles/eddie_sig.dir/peaks.cpp.o.d"
  "/root/repo/src/sig/spectrum.cpp" "src/sig/CMakeFiles/eddie_sig.dir/spectrum.cpp.o" "gcc" "src/sig/CMakeFiles/eddie_sig.dir/spectrum.cpp.o.d"
  "/root/repo/src/sig/stft.cpp" "src/sig/CMakeFiles/eddie_sig.dir/stft.cpp.o" "gcc" "src/sig/CMakeFiles/eddie_sig.dir/stft.cpp.o.d"
  "/root/repo/src/sig/window.cpp" "src/sig/CMakeFiles/eddie_sig.dir/window.cpp.o" "gcc" "src/sig/CMakeFiles/eddie_sig.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
