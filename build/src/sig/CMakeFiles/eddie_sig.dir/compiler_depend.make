# Empty compiler generated dependencies file for eddie_sig.
# This may be replaced when dependencies are built.
