file(REMOVE_RECURSE
  "libeddie_prog.a"
)
