# Empty compiler generated dependencies file for eddie_prog.
# This may be replaced when dependencies are built.
