
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prog/builder.cpp" "src/prog/CMakeFiles/eddie_prog.dir/builder.cpp.o" "gcc" "src/prog/CMakeFiles/eddie_prog.dir/builder.cpp.o.d"
  "/root/repo/src/prog/cfg.cpp" "src/prog/CMakeFiles/eddie_prog.dir/cfg.cpp.o" "gcc" "src/prog/CMakeFiles/eddie_prog.dir/cfg.cpp.o.d"
  "/root/repo/src/prog/loops.cpp" "src/prog/CMakeFiles/eddie_prog.dir/loops.cpp.o" "gcc" "src/prog/CMakeFiles/eddie_prog.dir/loops.cpp.o.d"
  "/root/repo/src/prog/program.cpp" "src/prog/CMakeFiles/eddie_prog.dir/program.cpp.o" "gcc" "src/prog/CMakeFiles/eddie_prog.dir/program.cpp.o.d"
  "/root/repo/src/prog/regions.cpp" "src/prog/CMakeFiles/eddie_prog.dir/regions.cpp.o" "gcc" "src/prog/CMakeFiles/eddie_prog.dir/regions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
