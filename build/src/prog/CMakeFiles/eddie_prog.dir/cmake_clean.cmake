file(REMOVE_RECURSE
  "CMakeFiles/eddie_prog.dir/builder.cpp.o"
  "CMakeFiles/eddie_prog.dir/builder.cpp.o.d"
  "CMakeFiles/eddie_prog.dir/cfg.cpp.o"
  "CMakeFiles/eddie_prog.dir/cfg.cpp.o.d"
  "CMakeFiles/eddie_prog.dir/loops.cpp.o"
  "CMakeFiles/eddie_prog.dir/loops.cpp.o.d"
  "CMakeFiles/eddie_prog.dir/program.cpp.o"
  "CMakeFiles/eddie_prog.dir/program.cpp.o.d"
  "CMakeFiles/eddie_prog.dir/regions.cpp.o"
  "CMakeFiles/eddie_prog.dir/regions.cpp.o.d"
  "libeddie_prog.a"
  "libeddie_prog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_prog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
