file(REMOVE_RECURSE
  "CMakeFiles/eddie_cpu.dir/branch_pred.cpp.o"
  "CMakeFiles/eddie_cpu.dir/branch_pred.cpp.o.d"
  "CMakeFiles/eddie_cpu.dir/cache.cpp.o"
  "CMakeFiles/eddie_cpu.dir/cache.cpp.o.d"
  "CMakeFiles/eddie_cpu.dir/config.cpp.o"
  "CMakeFiles/eddie_cpu.dir/config.cpp.o.d"
  "CMakeFiles/eddie_cpu.dir/core.cpp.o"
  "CMakeFiles/eddie_cpu.dir/core.cpp.o.d"
  "CMakeFiles/eddie_cpu.dir/injection.cpp.o"
  "CMakeFiles/eddie_cpu.dir/injection.cpp.o.d"
  "libeddie_cpu.a"
  "libeddie_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
