file(REMOVE_RECURSE
  "libeddie_cpu.a"
)
