
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/branch_pred.cpp" "src/cpu/CMakeFiles/eddie_cpu.dir/branch_pred.cpp.o" "gcc" "src/cpu/CMakeFiles/eddie_cpu.dir/branch_pred.cpp.o.d"
  "/root/repo/src/cpu/cache.cpp" "src/cpu/CMakeFiles/eddie_cpu.dir/cache.cpp.o" "gcc" "src/cpu/CMakeFiles/eddie_cpu.dir/cache.cpp.o.d"
  "/root/repo/src/cpu/config.cpp" "src/cpu/CMakeFiles/eddie_cpu.dir/config.cpp.o" "gcc" "src/cpu/CMakeFiles/eddie_cpu.dir/config.cpp.o.d"
  "/root/repo/src/cpu/core.cpp" "src/cpu/CMakeFiles/eddie_cpu.dir/core.cpp.o" "gcc" "src/cpu/CMakeFiles/eddie_cpu.dir/core.cpp.o.d"
  "/root/repo/src/cpu/injection.cpp" "src/cpu/CMakeFiles/eddie_cpu.dir/injection.cpp.o" "gcc" "src/cpu/CMakeFiles/eddie_cpu.dir/injection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prog/CMakeFiles/eddie_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eddie_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
