# Empty dependencies file for eddie_cpu.
# This may be replaced when dependencies are built.
