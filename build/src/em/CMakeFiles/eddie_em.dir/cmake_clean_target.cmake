file(REMOVE_RECURSE
  "libeddie_em.a"
)
