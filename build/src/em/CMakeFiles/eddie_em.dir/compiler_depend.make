# Empty compiler generated dependencies file for eddie_em.
# This may be replaced when dependencies are built.
