file(REMOVE_RECURSE
  "CMakeFiles/eddie_em.dir/emanation.cpp.o"
  "CMakeFiles/eddie_em.dir/emanation.cpp.o.d"
  "libeddie_em.a"
  "libeddie_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddie_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
