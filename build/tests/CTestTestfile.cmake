# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sig_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/prog_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/power_em_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/inject_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
