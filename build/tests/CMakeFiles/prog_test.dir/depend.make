# Empty dependencies file for prog_test.
# This may be replaced when dependencies are built.
