file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/baselines_test.cpp.o"
  "CMakeFiles/core_test.dir/core/baselines_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/capture_io_test.cpp.o"
  "CMakeFiles/core_test.dir/core/capture_io_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/fast_ks_test.cpp.o"
  "CMakeFiles/core_test.dir/core/fast_ks_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/group_size_selection_test.cpp.o"
  "CMakeFiles/core_test.dir/core/group_size_selection_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/model_test.cpp.o"
  "CMakeFiles/core_test.dir/core/model_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/core_test.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/sts_test.cpp.o"
  "CMakeFiles/core_test.dir/core/sts_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/trainer_monitor_test.cpp.o"
  "CMakeFiles/core_test.dir/core/trainer_monitor_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
