file(REMOVE_RECURSE
  "CMakeFiles/stats_test.dir/stats/anova_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/anova_test.cpp.o.d"
  "CMakeFiles/stats_test.dir/stats/descriptive_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/descriptive_test.cpp.o.d"
  "CMakeFiles/stats_test.dir/stats/gmm_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/gmm_test.cpp.o.d"
  "CMakeFiles/stats_test.dir/stats/ks_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/ks_test.cpp.o.d"
  "CMakeFiles/stats_test.dir/stats/mwu_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/mwu_test.cpp.o.d"
  "CMakeFiles/stats_test.dir/stats/special_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/special_test.cpp.o.d"
  "CMakeFiles/stats_test.dir/stats/stat_properties_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/stat_properties_test.cpp.o.d"
  "stats_test"
  "stats_test.pdb"
  "stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
