
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads/workloads_test.cpp" "tests/CMakeFiles/workloads_test.dir/workloads/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eddie_core.dir/DependInfo.cmake"
  "/root/repo/build/src/inject/CMakeFiles/eddie_inject.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/eddie_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/eddie_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/eddie_em.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/eddie_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eddie_power.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/eddie_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/eddie_sig.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
