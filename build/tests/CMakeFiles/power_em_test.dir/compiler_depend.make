# Empty compiler generated dependencies file for power_em_test.
# This may be replaced when dependencies are built.
