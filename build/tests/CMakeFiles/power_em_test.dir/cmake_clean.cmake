file(REMOVE_RECURSE
  "CMakeFiles/power_em_test.dir/em/emanation_test.cpp.o"
  "CMakeFiles/power_em_test.dir/em/emanation_test.cpp.o.d"
  "CMakeFiles/power_em_test.dir/power/power_test.cpp.o"
  "CMakeFiles/power_em_test.dir/power/power_test.cpp.o.d"
  "power_em_test"
  "power_em_test.pdb"
  "power_em_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_em_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
