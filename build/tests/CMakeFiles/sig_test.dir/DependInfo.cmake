
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sig/fft_test.cpp" "tests/CMakeFiles/sig_test.dir/sig/fft_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig/fft_test.cpp.o.d"
  "/root/repo/tests/sig/filter_test.cpp" "tests/CMakeFiles/sig_test.dir/sig/filter_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig/filter_test.cpp.o.d"
  "/root/repo/tests/sig/modulation_test.cpp" "tests/CMakeFiles/sig_test.dir/sig/modulation_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig/modulation_test.cpp.o.d"
  "/root/repo/tests/sig/noise_test.cpp" "tests/CMakeFiles/sig_test.dir/sig/noise_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig/noise_test.cpp.o.d"
  "/root/repo/tests/sig/peaks_test.cpp" "tests/CMakeFiles/sig_test.dir/sig/peaks_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig/peaks_test.cpp.o.d"
  "/root/repo/tests/sig/spectrum_test.cpp" "tests/CMakeFiles/sig_test.dir/sig/spectrum_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig/spectrum_test.cpp.o.d"
  "/root/repo/tests/sig/stft_test.cpp" "tests/CMakeFiles/sig_test.dir/sig/stft_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig/stft_test.cpp.o.d"
  "/root/repo/tests/sig/window_test.cpp" "tests/CMakeFiles/sig_test.dir/sig/window_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig/window_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eddie_core.dir/DependInfo.cmake"
  "/root/repo/build/src/inject/CMakeFiles/eddie_inject.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/eddie_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/eddie_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/eddie_em.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/eddie_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eddie_power.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/eddie_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/eddie_sig.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
