file(REMOVE_RECURSE
  "CMakeFiles/sig_test.dir/sig/fft_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig/fft_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig/filter_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig/filter_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig/modulation_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig/modulation_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig/noise_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig/noise_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig/peaks_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig/peaks_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig/spectrum_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig/spectrum_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig/stft_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig/stft_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig/window_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig/window_test.cpp.o.d"
  "sig_test"
  "sig_test.pdb"
  "sig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
