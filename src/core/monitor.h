/**
 * @file
 * EDDIE's online monitoring algorithm (paper Sec. 4.4, Algorithm 1).
 *
 * For each incoming STS, the monitor K-S-tests the most recent n_c
 * observed values of every peak rank against the current region's
 * reference distributions. When enough ranks reject, it checks
 * whether the window instead matches a successor region (region
 * transition); when no successor fits and even the freshest STSs no
 * longer match the current region, consecutive rejections beyond
 * reportThreshold produce an anomaly report. See DESIGN.md §6 for
 * the robustness mechanisms layered over the paper's Algorithm 1.
 */

#ifndef EDDIE_CORE_MONITOR_H
#define EDDIE_CORE_MONITOR_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "model.h"
#include "quality.h"
#include "ring_buffer.h"
#include "sts.h"

namespace eddie::core
{

/** Which two-sample test drives the monitor's decisions. */
enum class TestKind
{
    /** Kolmogorov-Smirnov — sensitive to any distribution
     *  difference; the paper's choice. */
    KolmogorovSmirnov,
    /** Wilcoxon-Mann-Whitney — median-sensitive only; the paper
     *  evaluated and rejected it (Sec. 4.2). Kept for the
     *  comparison ablation. */
    MannWhitney,
};

/** Monitor options. */
struct MonitorConfig
{
    /** Statistical test for the group comparisons. */
    TestKind test = TestKind::KolmogorovSmirnov;
    /** Consecutive rejected STSs tolerated before reporting (paper
     *  uses 3: a report needs a 4-long rejection streak). */
    std::size_t report_threshold = 3;
    /** A candidate region needs num_peaks / this accepted ranks to
     *  become the new current region. */
    std::size_t change_peak_divisor = 2;
    /** A group rejects when num_peaks / this ranks reject (1/3:
     *  an injection often moves only the sharper subset of a
     *  region's peaks). */
    std::size_t reject_peak_divisor = 3;
    /**
     * Better-fit handoff (extension over the paper's Algorithm 1):
     * regions with broad reference distributions can keep accepting
     * windows long after execution moved to the next region; when
     * enabled, the monitor also hands off to a successor whose mean
     * K-S distance is decisively smaller than the current region's,
     * even before the current region's test rejects. Disable to get
     * the literal Algorithm 1 behaviour (ablated in the benches).
     */
    bool enable_handoff = true;
    /** Successor must fit this much better (ratio of mean K-S D). */
    double handoff_ratio = 0.6;
    /**
     * Group size used when testing successor candidates and the
     * fresh-window drift tolerance. Right after a region change only
     * the newest few STSs belong to the new region, so candidates are
     * judged on a short window (the paper's transition regions play
     * the same role via their small n). Too small, though, and the
     * K-S critical value becomes so lenient that broad-distribution
     * regions absorb anomalous windows; 8 keeps the critical value
     * near 0.58 against large references.
     */
    std::size_t transition_window = 8;
    /**
     * Signal-quality gate (DESIGN.md §6): windows the gate flags are
     * quarantined — excluded from the K-S history and from anomaly
     * streaks — and an outage of quality.resync_outage consecutive
     * quarantined windows makes the monitor drop its stale history
     * and re-lock to the best-fitting trained region once good signal
     * returns. A no-op on clean channels at the default thresholds.
     */
    QualityConfig quality;
    /**
     * Ablation knob: when false, every group comparison routes
     * through the legacy copy-and-sort stats::ksStatistic /
     * stats::mwuTest formulation instead of the presorted
     * allocation-free kernels. Verdicts are identical (regression-
     * tested); only the cost differs. perf_pipeline flips this to
     * report the before/after monitor-loop speedup on the same
     * machine and streams.
     */
    bool use_presorted = true;
};

/** What the monitor concluded for one STS. */
struct StepRecord
{
    /** Current region before processing this STS. */
    std::size_t region = 0;
    /** A group test was actually performed (the window was full and
     *  the region trained); warmup steps make no decision. */
    bool tested = false;
    /** The group test rejected the current region. */
    bool rejected = false;
    /** This STS is part of a reported anomaly streak. */
    bool reported = false;
    /** The monitor switched region while processing this STS. */
    bool transitioned = false;
    /** The quality gate quarantined this STS (no test performed;
     *  excluded from history and from anomaly accounting). */
    bool degraded = false;
};

/** A reported anomaly. */
struct AnomalyReport
{
    /** Index of the STS that triggered the report. */
    std::size_t step = 0;
    /** End time of that STS's window, seconds. */
    double time = 0.0;
    /** Region the monitor believed it was in. */
    std::size_t region = 0;
};

/**
 * Complete snapshot of a Monitor mid-stream: region state-machine
 * position, PeakHistory ring contents, consecutive-rejection and
 * degraded counters, quality-gate baseline, and the verdict log.
 * Restoring this into a fresh Monitor over the same model and config
 * continues the stream with bit-identical verdicts — the property the
 * serving runtime's crash-consistent checkpointing relies on
 * (serve/checkpoint.h serializes it; DESIGN.md §7).
 */
struct MonitorState
{
    /** Region state-machine position. */
    std::size_t current = 0;
    std::size_t steps_since_change = 0;
    /** Consecutive-rejection streak in progress. */
    std::size_t anomaly_count = 0;
    std::size_t step_index = 0;
    std::size_t test_calls = 0;
    /** Quarantine episode in progress / pending re-lock. */
    std::size_t outage_len = 0;
    bool resync_pending = false;
    /** PeakHistory rows, oldest first, each padded to the history
     *  width of the exporting monitor. */
    std::vector<std::vector<double>> history;
    DegradedStats degraded;
    /** Quality-gate energy baseline window, oldest first. */
    std::vector<double> gate_energies;
    /** Verdict log so far: a resumed monitor can retro-mark a
     *  rejection streak that straddles the checkpoint. */
    std::vector<AnomalyReport> reports;
    std::vector<StepRecord> records;
};

/**
 * Incremental snapshot: everything a monitor changed since the
 * previous cut, chained by step index. Small scalars (region
 * position, streak counters, degraded stats, the bounded gate-energy
 * window) are carried absolutely — they are O(1) and re-deriving
 * them from per-step mutations would be fragile. The unbounded parts
 * are carried as true deltas:
 *
 *  - history_tail: the PeakHistory rows pushed since the base cut
 *    that are still resident in the ring (oldest first). When the
 *    interval pushed at least a ring-full (or a resync cleared the
 *    ring), the tail IS the whole resident ring
 *    (history_tail.size() == history_count) and apply replaces
 *    instead of appending.
 *  - records/reports: appended entries, plus records_from — the
 *    rewrite low-water mark, because an anomaly report retro-marks
 *    up to report_threshold records that may precede the base cut.
 *
 * applyDelta() folds one delta into the MonitorState of the previous
 * cut; a chain of deltas applied onto a full snapshot reproduces
 * exportState() at the final cut exactly (property-tested). The
 * serving runtime serializes these into the group-committed delta
 * log (serve/checkpoint.h, DESIGN.md §7).
 */
struct MonitorStateDelta
{
    /** step_index at the previous cut — the chain link. */
    std::uint64_t base_step = 0;
    /** step_index at this cut. */
    std::uint64_t step = 0;

    /** Absolute scalar state at this cut. */
    std::size_t current = 0;
    std::size_t steps_since_change = 0;
    std::size_t anomaly_count = 0;
    std::size_t test_calls = 0;
    std::size_t outage_len = 0;
    bool resync_pending = false;
    DegradedStats degraded;
    std::vector<double> gate_energies;

    /** Total ring pushes and resident rows at this cut. */
    std::uint64_t history_pushes = 0;
    std::uint64_t history_count = 0;
    /** Rows pushed since the base cut still resident, oldest first. */
    std::vector<std::vector<double>> history_tail;

    /** Records are rewritten from this index (retro-marked streaks
     *  can reach back before the base cut, never further than
     *  report_threshold entries). */
    std::uint64_t records_from = 0;
    std::vector<StepRecord> records;
    /** Reports are append-only. */
    std::uint64_t reports_from = 0;
    std::vector<AnomalyReport> reports;
};

/**
 * Folds @p delta into @p state (the state at delta.base_step),
 * advancing it to delta.step. Throws FormatError when the chain does
 * not link up (base_step mismatch, impossible history arithmetic, or
 * an out-of-range rewrite index) — the delta-log replay in
 * serve/checkpoint.cpp turns that into a fall-back to the last full
 * snapshot.
 */
void applyDelta(MonitorState &state, const MonitorStateDelta &delta);

/** Online monitor; feed STSs in arrival order via step(). */
class Monitor
{
  public:
    Monitor(const TrainedModel &model, const MonitorConfig &cfg);

    /** Processes one STS; returns the per-step conclusions. */
    StepRecord step(const Sts &sts);

    /** Snapshots the full mutable state (see MonitorState). */
    MonitorState exportState() const;

    /**
     * Restores a snapshot taken by exportState() on a monitor over
     * the same model and config; subsequent step() calls produce
     * bit-identical verdicts to the uninterrupted run. Rows wider or
     * narrower than this monitor's history (a snapshot from a
     * different model after a hot reload) are truncated or padded.
     */
    void restoreState(const MonitorState &state);

    /**
     * Exports the changes since the previous cut (construction,
     * restoreState(), reset(), or the last exportDelta() call) and
     * advances the cut baseline to now. Applying the returned delta
     * onto the MonitorState of the previous cut reproduces
     * exportState() exactly. Non-const: it moves the baseline.
     */
    MonitorStateDelta exportDelta();

    /** Moves the delta baseline to the current position without
     *  exporting — the serving runtime calls this after it persists
     *  a full snapshot, so the next delta chains off that cut. */
    void resetDeltaBaseline();

    /**
     * Returns the monitor to its just-constructed state (stream
     * position zero, empty history/verdicts, fresh gate) without
     * reallocating the history ring, scratch arena, presorted views,
     * or candidate graph. Stepping a reset monitor over a stream is
     * bit-identical to stepping a freshly constructed one — the
     * property Pipeline::monitorBatch relies on to reuse one monitor
     * per shard instead of constructing one per run.
     */
    void reset();

    /** All reports so far. */
    const std::vector<AnomalyReport> &reports() const { return reports_; }

    /** Per-step records (index == arrival order). */
    const std::vector<StepRecord> &records() const { return records_; }

    std::size_t currentRegion() const { return current_; }

    /** Degraded-mode counters (quarantines, outages, resyncs). */
    const DegradedStats &degradedStats() const { return degraded_; }

    /** Two-sample tests performed so far (K-S or MWU, including
     *  guard-rank checks) — the throughput denominator reported by
     *  perf_pipeline. */
    std::size_t testCalls() const { return test_calls_; }

  private:
    /** Outcome of testing the current window against one region. */
    struct Fit
    {
        bool testable = false;
        bool rejects = false;
        bool accepts = false;
        std::size_t rejected_ranks = 0;
        std::size_t accepted_ranks = 0;
        double mean_d = 1.0;
    };

    /** Tests the window against one region's model; @p window
     *  overrides the region's group size when nonzero. Non-const
     *  only because it reuses the scratch arena. */
    Fit regionFit(std::size_t region, std::size_t window = 0);
    /** Gathers the newest @p n rank-@p rank observations into the
     *  scratch arena (no allocation once warmed). */
    void gatherGroup(std::size_t n, std::size_t rank);
    /** One two-sample test of the gathered group against a region's
     *  rank reference; fills @p d with the distance proxy. */
    bool testRank(std::span<const double> ref, double &d);
    /** Handles a quarantined window; fills @p rec and does the
     *  outage bookkeeping. */
    void quarantine(WindowQuality q, StepRecord &rec);
    /** After an outage, re-locks onto the trained region the
     *  refilled history fits best. Returns true on a region change. */
    bool resync();

    const TrainedModel &model_;
    MonitorConfig cfg_;
    /** STSs observed since the last region change; candidate
     *  transitions are withheld during the first transition_window
     *  steps (dwell) while the history refills. */
    std::size_t steps_since_change_ = 0;
    /** Per region: successor candidates including two-hop successors,
     *  since an inter-loop transition can be shorter than one STS
     *  window. */
    std::vector<std::vector<std::size_t>> candidates_;
    std::size_t current_;
    std::size_t anomaly_count_ = 0;
    std::size_t step_index_ = 0;

    /** History of observed peak vectors (most recent last), a
     *  fixed-capacity ring sized to the largest group the model can
     *  request. */
    PeakHistory history_;
    std::size_t max_history_;

    /** Per-region presorted reference views: the model's own (when
     *  finalized) or a Monitor-built copy for hand-assembled models
     *  that skipped TrainedModel::finalize(). */
    std::vector<const SortedReference *> sorted_;
    std::vector<SortedReference> own_sorted_;

    /** Reusable group scratch; sorted in place on the presorted
     *  path. Sized once, so steady-state steps never allocate. */
    std::vector<double> scratch_;
    std::size_t test_calls_ = 0;

    std::vector<AnomalyReport> reports_;
    std::vector<StepRecord> records_;

    QualityGate gate_;
    DegradedStats degraded_;
    /** Length of the quarantine episode in progress (0 = none). */
    std::size_t outage_len_ = 0;
    /** Set when an outage invalidated the history; cleared by the
     *  re-lock scan once enough good windows arrive. */
    bool resync_pending_ = false;

    /** Delta-cut baseline: stream position at the last exportDelta()
     *  (or restore/reset). */
    std::uint64_t delta_base_step_ = 0;
    std::size_t delta_base_records_ = 0;
    std::size_t delta_base_reports_ = 0;
    std::uint64_t delta_base_pushes_ = 0;
    /** Lowest record index retro-marked by a report since the last
     *  cut (SIZE_MAX = none) — the rewrite window exportDelta() must
     *  re-send even though those records predate the baseline. */
    std::size_t retro_low_water_ = std::size_t(-1);
};

} // namespace eddie::core

#endif // EDDIE_CORE_MONITOR_H
