#include "pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "capture_cache.h"
#include "common/thread_pool.h"
#include "faults/fault_injector.h"
#include "sig/stft.h"

namespace eddie::core
{

namespace
{

/**
 * Endianness-stable byte serializer for cache keys. Every field is
 * appended explicitly — struct padding never reaches the key, so the
 * same capture always produces the same bytes.
 */
class KeyBuilder
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(char(v)); }

    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(char((v >> (8 * i)) & 0xff));
    }

    void i64(std::int64_t v) { u64(std::uint64_t(v)); }

    void f64(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void str(const std::string &s)
    {
        u64(s.size());
        buf_.append(s);
    }

    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

std::uint64_t
fnv1aWords(const std::vector<std::int64_t> &words, std::uint64_t h)
{
    for (std::int64_t w : words) {
        std::uint64_t v = std::uint64_t(w);
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

void
keyProgram(KeyBuilder &kb, const prog::Program &program)
{
    kb.str(program.name);
    kb.u64(program.code.size());
    for (const auto &instr : program.code) {
        kb.u8(std::uint8_t(instr.op));
        kb.u8(instr.rd);
        kb.u8(instr.rs1);
        kb.u8(instr.rs2);
        kb.i64(instr.imm);
    }
}

void
keyRegions(KeyBuilder &kb, const prog::RegionGraph &regions)
{
    kb.u64(regions.num_loops);
    kb.u64(regions.regions.size());
    for (const auto &r : regions.regions) {
        kb.u8(std::uint8_t(r.kind));
        kb.u64(r.loop);
        kb.u64(r.from_loop);
        kb.u64(r.to_loop);
        kb.u64(r.header_instr);
        kb.u64(r.hot_header_instr);
        kb.u64(r.succs.size());
        for (std::size_t s : r.succs)
            kb.u64(s);
    }
}

void
keyInput(KeyBuilder &kb, const cpu::MemoryImage &image)
{
    // The image can be megabytes; fold it to a hash instead of
    // embedding it. Everything else in the key is exact bytes.
    std::uint64_t h = 1469598103934665603ULL;
    std::uint64_t words = 0;
    kb.u64(image.size());
    for (const auto &[addr, data] : image) {
        kb.u64(addr);
        h = fnv1aWords(data, h);
        words += data.size();
    }
    kb.u64(words);
    kb.u64(h);
}

void
keyCoreConfig(KeyBuilder &kb, const cpu::CoreConfig &c)
{
    kb.u8(c.out_of_order ? 1 : 0);
    kb.u64(c.issue_width);
    kb.u64(c.pipeline_depth);
    kb.u64(c.rob_size);
    kb.f64(c.clock_hz);
    for (const auto *cache : {&c.l1, &c.l2}) {
        kb.u64(cache->size_bytes);
        kb.u64(cache->assoc);
        kb.u64(cache->line_bytes);
    }
    kb.u64(c.l1_latency);
    kb.u64(c.l2_latency);
    kb.u64(c.dram_latency);
    kb.u64(c.mul_latency);
    kb.u64(c.div_latency);
    kb.u64(c.memory_words);
    kb.u64(c.cycles_per_sample);
    kb.f64(c.schedule_jitter);
    kb.u64(c.jitter_epoch_instrs);
    kb.f64(c.os_irq_rate_hz);
    kb.u64(c.os_irq_ops);
    kb.u64(c.max_instructions);
    kb.u64(c.snapshot_words);
}

void
keyEnergy(KeyBuilder &kb, const power::EnergyParams &e)
{
    kb.f64(e.issue_base);
    kb.f64(e.alu);
    kb.f64(e.mul);
    kb.f64(e.div);
    kb.f64(e.branch);
    kb.f64(e.l1_ref);
    kb.f64(e.l2_ref);
    kb.f64(e.dram);
    kb.f64(e.flush_per_stage);
    kb.f64(e.baseline_per_cycle);
}

void
keySignalChain(KeyBuilder &kb, const PipelineConfig &config)
{
    kb.u64(config.stft_window);
    kb.u64(config.stft_hop);
    kb.u8(std::uint8_t(config.stft_window_fn));

    const auto &p = config.features.peaks;
    kb.f64(p.min_energy_frac);
    kb.u64(p.max_peaks);
    kb.u8(p.skip_dc ? 1 : 0);
    kb.u64(p.dc_guard_bins);
    kb.u64(p.neighborhood);
    kb.u64(config.features.max_peaks);
    kb.u8(config.features.positive_only ? 1 : 0);

    kb.u8(std::uint8_t(config.path));
    kb.f64(config.channel.depth);
    kb.f64(config.channel.snr_db);
    kb.u64(config.channel.interferers.size());
    for (const auto &tone : config.channel.interferers) {
        kb.f64(tone.offset_hz);
        kb.f64(tone.amplitude);
    }

    // Fault injection changes the captured stream, so every knob is
    // part of the capture identity.
    const auto &f = config.channel.faults;
    kb.u8(f.enabled ? 1 : 0);
    kb.u64(f.seed);
    for (const auto *ep :
         {&f.dropout, &f.snr_collapse, &f.interference}) {
        kb.f64(ep->rate_hz);
        kb.f64(ep->mean_duration_s);
    }
    kb.f64(f.snr_collapse_db);
    kb.f64(f.interference_amplitude);
    kb.f64(f.interference_density);
    kb.f64(f.drift_max_hz);
    kb.f64(f.drift_period_s);
    kb.f64(f.frame_truncate_prob);
    kb.f64(f.frame_corrupt_prob);
}

void
keyPlan(KeyBuilder &kb, const cpu::InjectionPlan &plan)
{
    kb.u64(plan.seed);
    kb.u64(plan.loops.size());
    for (const auto &loop : plan.loops) {
        kb.u64(loop.loop_region);
        kb.f64(loop.contamination);
        kb.u64(loop.ops.size());
        for (auto op : loop.ops)
            kb.u8(std::uint8_t(op));
    }
    kb.u64(plan.bursts.size());
    for (const auto &burst : plan.bursts) {
        kb.u64(burst.trigger_region);
        kb.u64(burst.occurrence);
        kb.u64(burst.total_ops);
        kb.u64(burst.body.size());
        for (auto op : burst.body)
            kb.u8(std::uint8_t(op));
    }
}

/**
 * Seed/plan-independent half of the cache key: program, regions, and
 * the full capture configuration. The v3 layout puts these first so a
 * Pipeline can serialize them once and prepend the cached bytes on
 * every lookup instead of re-walking the program per capture.
 */
std::string
captureKeyPrefix(const workloads::Workload &workload,
                 const PipelineConfig &config)
{
    KeyBuilder kb;
    kb.str("EDDIE-CKEY-v3");
    keyProgram(kb, workload.program);
    keyRegions(kb, workload.regions);
    keyCoreConfig(kb, config.core);
    keyEnergy(kb, config.energy);
    keySignalChain(kb, config);
    return kb.take();
}

/** Per-invocation half: input image, seed, and injection plan. */
std::string
captureKeySuffix(const workloads::Workload &workload,
                 std::uint64_t seed, const cpu::InjectionPlan &plan)
{
    KeyBuilder kb;
    keyInput(kb, workload.make_input(seed));
    kb.u64(seed);
    keyPlan(kb, plan);
    return kb.take();
}

} // namespace

std::string
captureCacheKey(const workloads::Workload &workload,
                const PipelineConfig &config, std::uint64_t seed,
                const cpu::InjectionPlan &plan)
{
    return captureKeyPrefix(workload, config) +
           captureKeySuffix(workload, seed, plan);
}

Pipeline::Pipeline(workloads::Workload workload, PipelineConfig config)
    : workload_(std::move(workload)), config_(std::move(config)),
      key_prefix_(captureKeyPrefix(workload_, config_))
{
}

cpu::RunResult
Pipeline::simulate(std::uint64_t seed, const cpu::InjectionPlan &plan) const
{
    cpu::Core core(config_.core, config_.energy);
    return core.run(workload_.program, workload_.regions,
                    workload_.make_input(seed), plan, seed);
}

std::vector<Sts>
Pipeline::toSts(const cpu::RunResult &rr) const
{
    sig::StftConfig sc;
    sc.window_size = config_.stft_window;
    sc.hop = config_.stft_hop;
    sc.window = config_.stft_window_fn;
    sc.sample_rate = rr.sample_rate;
    const sig::Stft stft(sc);

    // Seed the channel (noise and fault episodes) from the trace so
    // repeated captures of the same run see different realizations.
    const std::uint64_t chan_seed =
        0x9e3779b97f4a7c15ULL ^ rr.stats.cycles;
    std::vector<faults::FaultEpisode> episodes;

    sig::Spectrogram sg;
    if (config_.path == SignalPath::Power) {
        if (config_.channel.faults.enabled) {
            auto power = rr.power;
            episodes = faults::applySignalFaults(
                power, rr.sample_rate, config_.channel.faults,
                chan_seed);
            sg = stft.analyze(power);
        } else {
            sg = stft.analyze(rr.power);
        }
    } else {
        const auto iq =
            em::emanateBaseband(rr.power, rr.sample_rate,
                                config_.channel, chan_seed, nullptr,
                                &episodes);
        sg = stft.analyze(iq);
    }
    auto stream = extractStsStream(sg, &rr,
                                   workload_.regions.regions.size(),
                                   config_.features);

    if (config_.channel.faults.enabled) {
        // Frame-level faults (truncation/corruption) model losses in
        // the capture frontend after spectral analysis.
        std::vector<std::vector<double> *> frames;
        frames.reserve(stream.size());
        for (auto &sts : stream)
            frames.push_back(&sts.peak_freqs);
        const auto mangled = faults::applyFrameFaults(
            frames, missingPeakSentinel(sg.sample_rate),
            config_.channel.faults, chan_seed);
        // Ground-truth fault labels: a window is degraded when an
        // episode overlaps it in time or its frame was mangled.
        for (std::size_t i = 0; i < stream.size(); ++i) {
            auto &sts = stream[i];
            sts.faulted = i < mangled.size() && mangled[i] != 0;
            for (const auto &ep : episodes) {
                if (ep.t_start < sts.t_end && ep.t_end > sts.t_start) {
                    sts.faulted = true;
                    break;
                }
            }
        }
    }
    return stream;
}

std::vector<Sts>
Pipeline::captureRun(std::uint64_t seed,
                     const cpu::InjectionPlan &plan) const
{
    return *captureRunShared(seed, plan);
}

std::shared_ptr<const std::vector<Sts>>
Pipeline::captureRunShared(std::uint64_t seed,
                           const cpu::InjectionPlan &plan) const
{
    if (config_.capture_cache == nullptr) {
        return std::make_shared<const std::vector<Sts>>(
            toSts(simulate(seed, plan)));
    }
    return config_.capture_cache->getOrComputeShared(
        key_prefix_ + captureKeySuffix(workload_, seed, plan),
        [&] { return toSts(simulate(seed, plan)); });
}

TrainedModel
Pipeline::trainModel(TrainingDiagnostics *diag) const
{
    common::ThreadPool pool(
        common::ThreadPool::resolveThreads(config_.threads));
    // Each seed's simulate→emanate→STFT→STS chain is an independent
    // task; parallelMap orders the streams by seed index, so the
    // trained model is bit-identical regardless of thread count.
    const auto runs = pool.parallelMap(
        config_.train_runs, [&](std::size_t i) {
            return captureRun(config_.train_seed_base + i);
        });
    const double sentinel =
        missingPeakSentinel(config_.core.clock_hz /
                            double(config_.core.cycles_per_sample));
    return train(runs, workload_.regions, sentinel, config_.trainer,
                 diag, &pool);
}

RunEvaluation
Pipeline::monitorRun(const TrainedModel &model, std::uint64_t seed,
                     const cpu::InjectionPlan &plan) const
{
    const auto stream = captureRunShared(seed, plan);
    Monitor monitor(model, config_.monitor);
    for (const auto &sts : *stream)
        monitor.step(sts);

    RunEvaluation ev;
    ev.reports = monitor.reports();
    ev.records = monitor.records();
    ev.metrics = scoreRun(*stream, ev.records, ev.reports, model);
    ev.degraded = monitor.degradedStats();
    return ev;
}

std::vector<RunEvaluation>
Pipeline::monitorBatch(const TrainedModel &model,
                       const std::vector<std::uint64_t> &seeds,
                       const std::vector<cpu::InjectionPlan> &plans,
                       BatchStageTimings *timings) const
{
    if (!plans.empty() && plans.size() != seeds.size())
        throw std::invalid_argument(
            "monitorBatch: plans must be empty or match seeds");
    const std::size_t total = seeds.size();
    const std::size_t resolved =
        common::ThreadPool::resolveThreads(config_.threads);
    const std::size_t workers =
        std::max<std::size_t>(std::min(resolved, total), 1);
    if (timings != nullptr) {
        *timings = BatchStageTimings{};
        timings->requested_threads =
            config_.threads == 0 ? resolved : config_.threads;
        timings->resolved_threads = workers;
    }
    if (total == 0)
        return {};

    struct ShardOut
    {
        std::vector<RunEvaluation> evals;
        BatchStageTimings t;
    };
    common::ThreadPool pool(workers);
    // One contiguous chunk of seeds per worker; each chunk reuses one
    // shard-local Monitor (reset between runs) so the steady-state
    // loop does no per-run history/gate reallocation. Concatenating
    // chunks in shard order restores the seeds[i] <-> result[i]
    // mapping, and a reset monitor steps bit-identically to a fresh
    // one, so output is independent of the worker count.
    auto shards = pool.parallelMap(workers, [&](std::size_t s) {
        using clock = std::chrono::steady_clock;
        const auto ms = [](clock::time_point a, clock::time_point b) {
            return std::chrono::duration<double, std::milli>(b - a)
                .count();
        };
        ShardOut out;
        const std::size_t lo = s * total / workers;
        const std::size_t hi = (s + 1) * total / workers;
        out.evals.reserve(hi - lo);

        auto t0 = clock::now();
        Monitor monitor(model, config_.monitor);
        auto t1 = clock::now();
        out.t.setup_ms += ms(t0, t1);
        for (std::size_t i = lo; i < hi; ++i) {
            t0 = clock::now();
            const auto stream = captureRunShared(
                seeds[i],
                plans.empty() ? cpu::InjectionPlan() : plans[i]);
            t1 = clock::now();
            out.t.capture_ms += ms(t0, t1);

            monitor.reset();
            t0 = clock::now();
            out.t.setup_ms += ms(t1, t0);
            for (const auto &sts : *stream)
                monitor.step(sts);
            t1 = clock::now();
            out.t.kernel_ms += ms(t0, t1);

            RunEvaluation ev;
            ev.reports = monitor.reports();
            ev.records = monitor.records();
            ev.metrics =
                scoreRun(*stream, ev.records, ev.reports, model);
            ev.degraded = monitor.degradedStats();
            out.t.score_ms += ms(t1, clock::now());
            out.evals.push_back(std::move(ev));
        }
        return out;
    });

    std::vector<RunEvaluation> result;
    result.reserve(total);
    for (auto &sh : shards) {
        if (timings != nullptr) {
            timings->capture_ms += sh.t.capture_ms;
            timings->setup_ms += sh.t.setup_ms;
            timings->kernel_ms += sh.t.kernel_ms;
            timings->score_ms += sh.t.score_ms;
        }
        for (auto &ev : sh.evals)
            result.push_back(std::move(ev));
    }
    return result;
}

} // namespace eddie::core
