#include "pipeline.h"

#include <stdexcept>

#include "common/thread_pool.h"
#include "sig/stft.h"

namespace eddie::core
{

Pipeline::Pipeline(workloads::Workload workload, PipelineConfig config)
    : workload_(std::move(workload)), config_(std::move(config))
{
}

cpu::RunResult
Pipeline::simulate(std::uint64_t seed, const cpu::InjectionPlan &plan) const
{
    cpu::Core core(config_.core, config_.energy);
    return core.run(workload_.program, workload_.regions,
                    workload_.make_input(seed), plan, seed);
}

std::vector<Sts>
Pipeline::toSts(const cpu::RunResult &rr) const
{
    sig::StftConfig sc;
    sc.window_size = config_.stft_window;
    sc.hop = config_.stft_hop;
    sc.window = config_.stft_window_fn;
    sc.sample_rate = rr.sample_rate;
    const sig::Stft stft(sc);

    sig::Spectrogram sg;
    if (config_.path == SignalPath::Power) {
        sg = stft.analyze(rr.power);
    } else {
        // Seed the channel from the trace so repeated captures of
        // the same run see different noise.
        const auto iq = em::emanateBaseband(
            rr.power, rr.sample_rate, config_.channel,
            0x9e3779b97f4a7c15ULL ^ rr.stats.cycles);
        sg = stft.analyze(iq);
    }
    return extractStsStream(sg, &rr, workload_.regions.regions.size(),
                            config_.features);
}

std::vector<Sts>
Pipeline::captureRun(std::uint64_t seed,
                     const cpu::InjectionPlan &plan) const
{
    return toSts(simulate(seed, plan));
}

TrainedModel
Pipeline::trainModel(TrainingDiagnostics *diag) const
{
    common::ThreadPool pool(
        common::ThreadPool::resolveThreads(config_.threads));
    // Each seed's simulate→emanate→STFT→STS chain is an independent
    // task; parallelMap orders the streams by seed index, so the
    // trained model is bit-identical regardless of thread count.
    const auto runs = pool.parallelMap(
        config_.train_runs, [&](std::size_t i) {
            return captureRun(config_.train_seed_base + i);
        });
    const double sentinel =
        missingPeakSentinel(config_.core.clock_hz /
                            double(config_.core.cycles_per_sample));
    return train(runs, workload_.regions, sentinel, config_.trainer,
                 diag, &pool);
}

RunEvaluation
Pipeline::monitorRun(const TrainedModel &model, std::uint64_t seed,
                     const cpu::InjectionPlan &plan) const
{
    const auto stream = captureRun(seed, plan);
    Monitor monitor(model, config_.monitor);
    for (const auto &sts : stream)
        monitor.step(sts);

    RunEvaluation ev;
    ev.reports = monitor.reports();
    ev.records = monitor.records();
    ev.metrics = scoreRun(stream, ev.records, ev.reports, model);
    return ev;
}

std::vector<RunEvaluation>
Pipeline::monitorBatch(const TrainedModel &model,
                       const std::vector<std::uint64_t> &seeds,
                       const std::vector<cpu::InjectionPlan> &plans) const
{
    if (!plans.empty() && plans.size() != seeds.size())
        throw std::invalid_argument(
            "monitorBatch: plans must be empty or match seeds");
    common::ThreadPool pool(
        common::ThreadPool::resolveThreads(config_.threads));
    return pool.parallelMap(seeds.size(), [&](std::size_t i) {
        return monitorRun(model, seeds[i],
                          plans.empty() ? cpu::InjectionPlan()
                                        : plans[i]);
    });
}

} // namespace eddie::core
