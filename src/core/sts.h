/**
 * @file
 * Short-Term Spectra (STSs): the feature representation EDDIE trains
 * and monitors on (paper Sec. 3). Each STS is the ranked list of peak
 * frequencies of one STFT frame, optionally annotated with the
 * ground-truth region and injection flags of the window it covers.
 */

#ifndef EDDIE_CORE_STS_H
#define EDDIE_CORE_STS_H

#include <cstddef>
#include <vector>

#include "cpu/run_result.h"
#include "sig/peaks.h"
#include "sig/stft.h"

namespace eddie::core
{

/** One Short-Term Spectrum reduced to its peak features. */
struct Sts
{
    /** Start/end time of the analysis window, seconds. */
    double t_start = 0.0;
    double t_end = 0.0;
    /** Peak frequencies ordered by descending peak power. */
    std::vector<double> peak_freqs;
    /** Ground-truth region id (prog::kNoRegion when unknown). */
    std::size_t true_region = std::size_t(-1);
    /** True when the window contains injected execution. */
    bool injected = false;
    /**
     * Signal-quality features for the monitor's per-window gate
     * (core/quality.h): total spectral power of the window and the
     * fraction of it concentrated in the detected peaks (a sharpness
     * proxy — near zero when the noise floor swamps the comb).
     * window_energy is 0 in streams from pre-quality capture files;
     * the gate treats that as "unknown" and skips its energy checks.
     */
    double window_energy = 0.0;
    double peak_energy_frac = 0.0;
    /** Ground truth: a channel fault episode overlapped this window
     *  or mangled its frame (faults/fault_injector.h). */
    bool faulted = false;
};

/** Feature-extraction options. */
struct FeatureConfig
{
    /** Peak rule options; the paper's threshold is 1 % of window
     *  energy. */
    sig::PeakOptions peaks{};
    /** Cap on ranked peaks kept per STS (paper observes up to ~15). */
    std::size_t max_peaks = 15;
    /** Only consider non-negative frequencies; our captured spectra
     *  are symmetric, so mirrored peaks carry no extra information. */
    bool positive_only = true;
};

/**
 * Value used for missing peak ranks so that "has no k-th peak" is
 * itself a comparable feature (it sits far above any real frequency).
 */
double missingPeakSentinel(double sample_rate);

/**
 * Converts a spectrogram into the STS stream.
 *
 * @param sg spectrogram of the captured signal
 * @param annot per-sample ground-truth annotations aligned in time
 *        with the signal (nullptr when unavailable, e.g. passband
 *        demos); each STS takes the majority region over its window
 * @param num_regions number of regions in the region graph (for
 *        majority counting)
 */
std::vector<Sts> extractStsStream(const sig::Spectrogram &sg,
                                  const cpu::RunResult *annot,
                                  std::size_t num_regions,
                                  const FeatureConfig &cfg);

} // namespace eddie::core

#endif // EDDIE_CORE_STS_H
