#include "baseline_parametric.h"

#include <algorithm>

namespace eddie::core
{

ParametricRegion
fitParametricRegion(const RegionModel &region, std::size_t components)
{
    ParametricRegion out;
    out.group_n = region.group_n;
    out.per_rank.reserve(region.ref.size());
    for (const auto &ref : region.ref)
        out.per_rank.push_back(
            stats::GaussianMixture::fit(ref, components));
    return out;
}

bool
parametricGroupRejects(const ParametricRegion &model,
                       const std::vector<std::vector<double>> &groups,
                       double alpha)
{
    const std::size_t ranks = std::min(model.per_rank.size(),
                                       groups.size());
    if (ranks == 0)
        return false;
    const std::size_t threshold = std::max<std::size_t>(1, ranks / 2);
    std::size_t rejecting = 0;
    for (std::size_t p = 0; p < ranks; ++p) {
        const auto res = stats::parametricTest(model.per_rank[p],
                                               groups[p], alpha);
        if (res.reject)
            ++rejecting;
        if (rejecting >= threshold)
            return true;
    }
    return false;
}

} // namespace eddie::core
