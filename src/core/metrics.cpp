#include "metrics.h"

#include <algorithm>
#include <cstdio>

#include "prog/regions.h"

namespace eddie::core
{

RunMetrics
scoreRun(const std::vector<Sts> &stream,
         const std::vector<StepRecord> &records,
         const std::vector<AnomalyReport> &reports,
         const TrainedModel &model)
{
    RunMetrics m;
    m.region_groups.assign(model.numRegions(), 0);
    m.region_correct.assign(model.numRegions(), 0);

    const std::size_t steps = std::min(stream.size(), records.size());

    // Injection start time (if any).
    double inj_start = -1.0;
    for (const auto &sts : stream) {
        if (sts.injected) {
            inj_start = sts.t_start;
            break;
        }
    }

    for (std::size_t t = 0; t < steps; ++t) {
        const StepRecord &rec = records[t];
        // Quarantined windows carry no usable signal; charging them
        // as false negatives would punish the monitor for refusing
        // to guess. They are tallied separately.
        if (rec.degraded) {
            ++m.degraded_groups;
            continue;
        }
        // Warmup steps of a *trained* region make no test decision;
        // counting them as groups would charge the latency/accuracy
        // trade-off twice. Steps in untrained (blind) regions do
        // count — missing an injection there is a real miss.
        const bool trained = rec.region < model.regions.size() &&
            model.regions[rec.region].trained;
        if (trained && !rec.tested)
            continue;
        // A group is charged to its newest STS: windows trailing a
        // finished injection would otherwise stay "injected" for n
        // more steps after the monitor correctly moved on.
        const bool injected = stream[t].injected;

        ++m.groups;
        if (injected)
            ++m.injected_groups;
        const bool correct = rec.reported == injected;
        if (injected && rec.reported)
            ++m.true_positives;
        if (injected && !rec.reported)
            ++m.false_negatives;
        if (!injected && rec.reported)
            ++m.false_positives;

        const std::size_t truth = stream[t].true_region;
        if (truth < model.numRegions()) {
            ++m.region_groups[truth];
            if (correct)
                ++m.region_correct[truth];
            ++m.labeled_steps;
            if (rec.region == truth)
                ++m.covered_steps;
        }
    }

    if (inj_start >= 0.0) {
        for (const auto &rep : reports) {
            if (rep.time >= inj_start) {
                m.detection_latency = rep.time - inj_start;
                break;
            }
        }
    }
    return m;
}

AggregateMetrics
aggregate(const std::vector<RunMetrics> &runs)
{
    AggregateMetrics agg;
    std::size_t groups = 0, fp = 0, inj = 0, tp = 0, fn = 0;
    std::size_t degraded = 0;
    double latency_sum = 0.0;
    std::size_t latency_count = 0;
    std::size_t covered = 0, labeled = 0;

    std::vector<std::size_t> region_groups;
    std::vector<std::size_t> region_correct;

    for (const auto &r : runs) {
        groups += r.groups;
        degraded += r.degraded_groups;
        fp += r.false_positives;
        inj += r.injected_groups;
        tp += r.true_positives;
        fn += r.false_negatives;
        // Coverage measures attribution quality of *valid*
        // executions; while an injection is active there is no
        // correct region to attribute to.
        if (r.injected_groups == 0) {
            covered += r.covered_steps;
            labeled += r.labeled_steps;
        }
        if (r.injected_groups > 0) {
            ++agg.runs_with_injection;
            if (r.detection_latency >= 0.0) {
                ++agg.runs_detected;
                latency_sum += r.detection_latency;
                ++latency_count;
            }
        }
        if (region_groups.size() < r.region_groups.size()) {
            region_groups.resize(r.region_groups.size(), 0);
            region_correct.resize(r.region_groups.size(), 0);
        }
        for (std::size_t i = 0; i < r.region_groups.size(); ++i) {
            region_groups[i] += r.region_groups[i];
            region_correct[i] += r.region_correct[i];
        }
    }

    if (groups > 0)
        agg.false_positive_pct = 100.0 * double(fp) / double(groups);
    if (groups + degraded > 0) {
        agg.degraded_pct =
            100.0 * double(degraded) / double(groups + degraded);
    }
    if (inj > 0) {
        agg.false_negative_pct = 100.0 * double(fn) / double(inj);
        agg.true_positive_pct = 100.0 * double(tp) / double(inj);
    }
    if (latency_count > 0) {
        agg.detection_latency_ms =
            1000.0 * latency_sum / double(latency_count);
    }
    if (labeled > 0)
        agg.coverage_pct = 100.0 * double(covered) / double(labeled);

    // Per-region accuracy averaged over regions that saw groups.
    double acc_sum = 0.0;
    std::size_t acc_regions = 0;
    for (std::size_t i = 0; i < region_groups.size(); ++i) {
        if (region_groups[i] == 0)
            continue;
        acc_sum += double(region_correct[i]) / double(region_groups[i]);
        ++acc_regions;
    }
    if (acc_regions > 0)
        agg.accuracy_pct = 100.0 * acc_sum / double(acc_regions);
    return agg;
}

std::string
describe(const CaptureCacheStats &stats)
{
    char buf[224];
    std::snprintf(buf, sizeof buf,
                  "capture cache: %llu hits, %llu disk hits, "
                  "%llu misses (%.1f%% hit rate), %zu entries, "
                  "%llu evictions (%llu spilled), "
                  "%llu corrupt / %llu short spill reads",
                  static_cast<unsigned long long>(stats.hits),
                  static_cast<unsigned long long>(stats.disk_hits),
                  static_cast<unsigned long long>(stats.misses),
                  100.0 * stats.hitRate(), stats.entries,
                  static_cast<unsigned long long>(stats.evictions),
                  static_cast<unsigned long long>(stats.spills),
                  static_cast<unsigned long long>(stats.spill_corrupt),
                  static_cast<unsigned long long>(
                      stats.spill_short_read));
    std::string out(buf);
    if (stats.spill_write_failed > 0) {
        std::snprintf(buf, sizeof buf, ", %llu failed spill writes",
                      static_cast<unsigned long long>(
                          stats.spill_write_failed));
        out += buf;
    }
    return out;
}

std::string
describe(const ServeStats &stats)
{
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "serve: %llu delivered, %llu processed, %llu dropped, "
        "%llu blocked pushes, %llu retries (%llu stalls, %llu errors, "
        "%llu give-ups), %llu restarts (%llu crashes, %llu hangs, "
        "%llu escalations), %llu checkpoints, %llu restores, "
        "%llu model reloads, %llu group commits (%llu full, "
        "%llu delta bytes, %llu fallbacks), fleet: %llu tenants, "
        "%llu sessions (%llu rejected), %llu breaker trips, "
        "%llu shed, %llu throttled, %llu snapshot decode failures",
        static_cast<unsigned long long>(stats.delivered),
        static_cast<unsigned long long>(stats.processed),
        static_cast<unsigned long long>(stats.dropped_oldest),
        static_cast<unsigned long long>(stats.blocked_pushes),
        static_cast<unsigned long long>(stats.source_retries),
        static_cast<unsigned long long>(stats.source_stalls),
        static_cast<unsigned long long>(stats.source_errors),
        static_cast<unsigned long long>(stats.source_give_ups),
        static_cast<unsigned long long>(stats.worker_restarts),
        static_cast<unsigned long long>(stats.worker_crashes),
        static_cast<unsigned long long>(stats.worker_hangs),
        static_cast<unsigned long long>(stats.escalations),
        static_cast<unsigned long long>(stats.checkpoints_written),
        static_cast<unsigned long long>(stats.checkpoint_restores),
        static_cast<unsigned long long>(stats.model_reloads),
        static_cast<unsigned long long>(stats.group_commits),
        static_cast<unsigned long long>(stats.full_snapshots),
        static_cast<unsigned long long>(stats.delta_bytes),
        static_cast<unsigned long long>(stats.delta_fallbacks),
        static_cast<unsigned long long>(stats.tenants),
        static_cast<unsigned long long>(stats.sessions),
        static_cast<unsigned long long>(stats.sessions_rejected),
        static_cast<unsigned long long>(stats.breaker_trips),
        static_cast<unsigned long long>(stats.windows_shed),
        static_cast<unsigned long long>(stats.windows_throttled),
        static_cast<unsigned long long>(
            stats.snapshot_decode_failures));
    return std::string(buf);
}

std::string
describe(const DegradedStats &stats)
{
    char buf[224];
    std::snprintf(
        buf, sizeof buf,
        "degraded mode: %zu quarantined (%zu dropout, %zu saturated, "
        "%zu noise-floor, %zu malformed), %zu outages, %zu resyncs, "
        "longest outage %zu",
        stats.quarantined,
        stats.by_kind[std::size_t(WindowQuality::Dropout)],
        stats.by_kind[std::size_t(WindowQuality::Saturated)],
        stats.by_kind[std::size_t(WindowQuality::NoiseFloor)],
        stats.by_kind[std::size_t(WindowQuality::Malformed)],
        stats.outages, stats.resyncs, stats.longest_outage);
    return std::string(buf);
}

} // namespace eddie::core
