/**
 * @file
 * Fixed-capacity ring buffer of fixed-width double rows — the
 * monitor's history of observed peak vectors. Replaces the
 * deque-of-vectors formulation: one contiguous allocation sized at
 * construction, zero allocation per step, and rank-major reads that
 * stay in cache while the K-S loop gathers groups.
 */

#ifndef EDDIE_CORE_RING_BUFFER_H
#define EDDIE_CORE_RING_BUFFER_H

#include <algorithm>
#include <cstddef>
#include <vector>

namespace eddie::core
{

/**
 * Ring of up to `capacity` rows of `width` doubles, oldest evicted
 * first. Rows shorter than `width` are padded with the fill value
 * (the missing-peak sentinel), mirroring how the monitor treats
 * absent peak ranks; longer rows are truncated — the monitor never
 * reads ranks beyond the widest trained reference.
 */
class PeakHistory
{
  public:
    /** Re-shapes the ring and drops all rows. */
    void reset(std::size_t capacity, std::size_t width, double fill)
    {
        cap_ = std::max<std::size_t>(capacity, 1);
        width_ = std::max<std::size_t>(width, 1);
        fill_ = fill;
        data_.assign(cap_ * width_, fill_);
        head_ = 0;
        count_ = 0;
    }

    /** Appends one row (newest), evicting the oldest when full. */
    void push(const std::vector<double> &row)
    {
        double *dst = data_.data() + head_ * width_;
        const std::size_t n = std::min(width_, row.size());
        std::copy_n(row.data(), n, dst);
        std::fill(dst + n, dst + width_, fill_);
        head_ = (head_ + 1) % cap_;
        count_ = std::min(count_ + 1, cap_);
    }

    /** Rows currently held (<= capacity). */
    std::size_t size() const { return count_; }

    /** Value at rank @p p of the @p i-th oldest held row. */
    double at(std::size_t i, std::size_t p) const
    {
        const std::size_t row = (head_ + cap_ - count_ + i) % cap_;
        return data_[row * width_ + p];
    }

    /** Drops all rows; capacity and width are kept. */
    void clear() { count_ = 0; }

  private:
    std::vector<double> data_;
    std::size_t cap_ = 0;
    std::size_t width_ = 0;
    std::size_t head_ = 0; ///< slot the next push writes
    std::size_t count_ = 0;
    double fill_ = 0.0;
};

} // namespace eddie::core

#endif // EDDIE_CORE_RING_BUFFER_H
