/**
 * @file
 * Fixed-capacity ring buffers: PeakHistory, the monitor's history of
 * observed peak vectors (fixed-width double rows, one contiguous
 * allocation, zero allocation per step, rank-major reads that stay in
 * cache while the K-S loop gathers groups), and the generic
 * RingQueue<T> backing the serving runtime's bounded STS queue
 * (src/serve/sts_queue.h).
 */

#ifndef EDDIE_CORE_RING_BUFFER_H
#define EDDIE_CORE_RING_BUFFER_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace eddie::core
{

/**
 * Fixed-capacity FIFO ring of T. Capacity is set at construction and
 * never reallocated afterwards; the caller enforces the full/empty
 * preconditions (the serving queue wraps this with its own locking
 * and backpressure policy).
 */
template <typename T>
class RingQueue
{
  public:
    explicit RingQueue(std::size_t capacity)
        : slots_(std::max<std::size_t>(capacity, 1))
    {
    }

    std::size_t capacity() const { return slots_.size(); }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == slots_.size(); }

    /** Appends one element; precondition: !full(). */
    void pushBack(T value)
    {
        slots_[(head_ + count_) % slots_.size()] = std::move(value);
        ++count_;
    }

    /** Removes and returns the oldest element; precondition:
     *  !empty(). */
    T popFront()
    {
        T value = std::move(slots_[head_]);
        head_ = (head_ + 1) % slots_.size();
        --count_;
        return value;
    }

    void clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    std::vector<T> slots_;
    std::size_t head_ = 0;  ///< slot of the oldest element
    std::size_t count_ = 0;
};

/**
 * Ring of up to `capacity` rows of `width` doubles, oldest evicted
 * first. Rows shorter than `width` are padded with the fill value
 * (the missing-peak sentinel), mirroring how the monitor treats
 * absent peak ranks; longer rows are truncated — the monitor never
 * reads ranks beyond the widest trained reference.
 */
class PeakHistory
{
  public:
    /** Re-shapes the ring and drops all rows. */
    void reset(std::size_t capacity, std::size_t width, double fill)
    {
        cap_ = std::max<std::size_t>(capacity, 1);
        width_ = std::max<std::size_t>(width, 1);
        fill_ = fill;
        data_.assign(cap_ * width_, fill_);
        head_ = 0;
        count_ = 0;
        pushes_ = 0;
    }

    /** Appends one row (newest), evicting the oldest when full. */
    void push(const std::vector<double> &row)
    {
        double *dst = data_.data() + head_ * width_;
        const std::size_t n = std::min(width_, row.size());
        std::copy_n(row.data(), n, dst);
        std::fill(dst + n, dst + width_, fill_);
        head_ = (head_ + 1) % cap_;
        count_ = std::min(count_ + 1, cap_);
        ++pushes_;
    }

    /** Rows currently held (<= capacity). */
    std::size_t size() const { return count_; }

    /**
     * Total rows pushed since reset() — a monotonic sequence number
     * that keeps counting across clear() (a resync drops the rows but
     * not the stream position). Two snapshots of this counter bound
     * exactly which rows were appended between them, which is what
     * the delta-checkpoint exporter (monitor.h) iterates over.
     */
    std::uint64_t pushes() const { return pushes_; }

    /** Values per row (the padded rank count). */
    std::size_t width() const { return width_; }

    /** Value at rank @p p of the @p i-th oldest held row. */
    double at(std::size_t i, std::size_t p) const
    {
        const std::size_t row = (head_ + cap_ - count_ + i) % cap_;
        return data_[row * width_ + p];
    }

    /** Drops all rows; capacity and width are kept. */
    void clear() { count_ = 0; }

  private:
    std::vector<double> data_;
    std::size_t cap_ = 0;
    std::size_t width_ = 0;
    std::size_t head_ = 0; ///< slot the next push writes
    std::size_t count_ = 0;
    std::uint64_t pushes_ = 0;
    double fill_ = 0.0;
};

} // namespace eddie::core

#endif // EDDIE_CORE_RING_BUFFER_H
