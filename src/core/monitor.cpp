#include "monitor.h"

#include <algorithm>
#include <string>

#include "errors.h"
#include "stats/ks.h"
#include "stats/mwu.h"

namespace eddie::core
{

Monitor::Monitor(const TrainedModel &model, const MonitorConfig &cfg)
    : model_(model), cfg_(cfg), current_(model.entry_region),
      gate_(model, cfg.quality)
{
    max_history_ = 8;
    std::size_t width = 1;
    for (const auto &r : model_.regions) {
        max_history_ = std::max(max_history_, r.group_n);
        width = std::max(width, r.ref.size());
    }
    history_.reset(max_history_, width, model_.sentinel);
    scratch_.reserve(max_history_);
    if (current_ >= model_.regions.size())
        current_ = 0;

    // Presorted reference views: share the model's finalized layout;
    // build a private copy only for regions a hand-assembled model
    // left unfinalized. In the trained/loaded path every Monitor in a
    // batch reads the same immutable buffers (no per-run model copy).
    sorted_.resize(model_.regions.size());
    own_sorted_.resize(model_.regions.size());
    for (std::size_t r = 0; r < model_.regions.size(); ++r) {
        const RegionModel &rm = model_.regions[r];
        if (rm.sorted.numRanks() == rm.ref.size()) {
            sorted_[r] = &rm.sorted;
        } else {
            own_sorted_[r].build(rm.ref);
            sorted_[r] = &own_sorted_[r];
        }
    }

    candidates_.resize(model_.regions.size());
    for (std::size_t r = 0; r < model_.regions.size(); ++r) {
        auto &cand = candidates_[r];
        for (std::size_t s : model_.regions[r].succs) {
            if (s != r &&
                std::find(cand.begin(), cand.end(), s) == cand.end()) {
                cand.push_back(s);
            }
            for (std::size_t s2 : model_.regions[s].succs) {
                if (s2 != r && std::find(cand.begin(), cand.end(),
                                         s2) == cand.end()) {
                    cand.push_back(s2);
                }
            }
        }
    }
}

MonitorState
Monitor::exportState() const
{
    MonitorState s;
    s.current = current_;
    s.steps_since_change = steps_since_change_;
    s.anomaly_count = anomaly_count_;
    s.step_index = step_index_;
    s.test_calls = test_calls_;
    s.outage_len = outage_len_;
    s.resync_pending = resync_pending_;
    s.history.resize(history_.size());
    for (std::size_t i = 0; i < history_.size(); ++i) {
        s.history[i].resize(history_.width());
        for (std::size_t p = 0; p < history_.width(); ++p)
            s.history[i][p] = history_.at(i, p);
    }
    s.degraded = degraded_;
    s.gate_energies = gate_.exportEnergies();
    s.reports = reports_;
    s.records = records_;
    return s;
}

void
Monitor::restoreState(const MonitorState &state)
{
    current_ = state.current < model_.regions.size() ? state.current
                                                     : 0;
    steps_since_change_ = state.steps_since_change;
    anomaly_count_ = state.anomaly_count;
    step_index_ = state.step_index;
    test_calls_ = state.test_calls;
    outage_len_ = state.outage_len;
    resync_pending_ = state.resync_pending;
    history_.clear();
    for (const auto &row : state.history)
        history_.push(row);
    degraded_ = state.degraded;
    gate_.restoreEnergies(state.gate_energies);
    reports_ = state.reports;
    records_ = state.records;
    resetDeltaBaseline();
}

void
Monitor::resetDeltaBaseline()
{
    delta_base_step_ = step_index_;
    delta_base_records_ = records_.size();
    delta_base_reports_ = reports_.size();
    delta_base_pushes_ = history_.pushes();
    retro_low_water_ = std::size_t(-1);
}

MonitorStateDelta
Monitor::exportDelta()
{
    MonitorStateDelta d;
    d.base_step = delta_base_step_;
    d.step = step_index_;
    d.current = current_;
    d.steps_since_change = steps_since_change_;
    d.anomaly_count = anomaly_count_;
    d.test_calls = test_calls_;
    d.outage_len = outage_len_;
    d.resync_pending = resync_pending_;
    d.degraded = degraded_;
    d.gate_energies = gate_.exportEnergies();

    d.history_pushes = history_.pushes();
    d.history_count = history_.size();
    // Rows appended since the base cut that are still resident: when
    // the interval pushed a ring-full or more (or clear() emptied the
    // ring mid-interval), every resident row is new and the tail is a
    // full replacement; otherwise it is a pure append and apply
    // evicts from the front down to history_count.
    const std::uint64_t appended = history_.pushes() - delta_base_pushes_;
    const std::size_t tail_n = std::size_t(
        std::min<std::uint64_t>(appended, history_.size()));
    d.history_tail.resize(tail_n);
    for (std::size_t i = 0; i < tail_n; ++i) {
        auto &row = d.history_tail[i];
        row.resize(history_.width());
        const std::size_t src = history_.size() - tail_n + i;
        for (std::size_t p = 0; p < history_.width(); ++p)
            row[p] = history_.at(src, p);
    }

    d.records_from = std::min(delta_base_records_, retro_low_water_);
    d.records.assign(records_.begin() + std::ptrdiff_t(d.records_from),
                     records_.end());
    d.reports_from = delta_base_reports_;
    d.reports.assign(reports_.begin() + std::ptrdiff_t(d.reports_from),
                     reports_.end());

    resetDeltaBaseline();
    return d;
}

void
Monitor::reset()
{
    current_ = model_.entry_region < model_.regions.size()
                   ? model_.entry_region
                   : 0;
    steps_since_change_ = 0;
    anomaly_count_ = 0;
    step_index_ = 0;
    test_calls_ = 0;
    outage_len_ = 0;
    resync_pending_ = false;
    history_.clear();
    reports_.clear();
    records_.clear();
    degraded_ = DegradedStats{};
    gate_.reset();
    resetDeltaBaseline();
}

void
applyDelta(MonitorState &state, const MonitorStateDelta &delta)
{
    if (delta.base_step != state.step_index)
        throw FormatError("monitor delta: chain gap (base " +
                          std::to_string(delta.base_step) +
                          ", state at " +
                          std::to_string(state.step_index) + ")");
    state.current = delta.current;
    state.steps_since_change = delta.steps_since_change;
    state.anomaly_count = delta.anomaly_count;
    state.step_index = delta.step;
    state.test_calls = delta.test_calls;
    state.outage_len = delta.outage_len;
    state.resync_pending = delta.resync_pending;
    state.degraded = delta.degraded;
    state.gate_energies = delta.gate_energies;

    if (delta.history_tail.size() > delta.history_count)
        throw FormatError("monitor delta: tail exceeds ring count");
    if (delta.history_tail.size() == delta.history_count) {
        // Full replacement: the interval refilled (or cleared) the
        // whole ring.
        state.history = delta.history_tail;
    } else {
        for (const auto &row : delta.history_tail)
            state.history.push_back(row);
        if (state.history.size() < delta.history_count)
            throw FormatError("monitor delta: ring underflow");
        state.history.erase(
            state.history.begin(),
            state.history.end() - std::ptrdiff_t(delta.history_count));
    }

    if (delta.records_from > state.records.size())
        throw FormatError("monitor delta: record rewrite past end");
    state.records.resize(std::size_t(delta.records_from));
    state.records.insert(state.records.end(), delta.records.begin(),
                         delta.records.end());
    // One record per step, always — a cheap structural check that
    // catches mismatched chains the scalars alone would miss.
    if (state.records.size() != delta.step)
        throw FormatError("monitor delta: record count != step index");

    if (delta.reports_from > state.reports.size())
        throw FormatError("monitor delta: report rewrite past end");
    state.reports.resize(std::size_t(delta.reports_from));
    state.reports.insert(state.reports.end(), delta.reports.begin(),
                         delta.reports.end());
}

void
Monitor::gatherGroup(std::size_t n, std::size_t rank)
{
    const std::size_t have = history_.size();
    scratch_.resize(n);
    for (std::size_t k = 0; k < n; ++k)
        scratch_[k] = history_.at(have - n + k, rank);
}

bool
Monitor::testRank(std::span<const double> ref, double &d)
{
    ++test_calls_;
    if (cfg_.test == TestKind::KolmogorovSmirnov) {
        if (cfg_.use_presorted) {
            std::sort(scratch_.begin(), scratch_.end());
            d = stats::ksStatisticSorted(ref, scratch_);
        } else {
            // Legacy formulation: copies and sorts both samples on
            // every call (kept for the perf_pipeline ablation).
            d = stats::ksStatistic(ref, scratch_);
        }
        return d > stats::ksCritical(ref.size(), scratch_.size(),
                                     model_.alpha);
    }
    const auto res =
        cfg_.use_presorted
            ? (std::sort(scratch_.begin(), scratch_.end()),
               stats::mwuTestSorted(ref, scratch_, model_.alpha))
            : stats::mwuTest(ref, scratch_, model_.alpha);
    d = 1.0 - res.p_value; // "distance" proxy for handoff
    return res.reject;
}

Monitor::Fit
Monitor::regionFit(std::size_t region, std::size_t window)
{
    Fit fit;
    const RegionModel &rm = model_.regions[region];
    if (!rm.trained || rm.num_peaks == 0)
        return fit; // unverifiable: neither rejects nor accepts
    const std::size_t n =
        window > 0 ? std::min(window, rm.group_n) : rm.group_n;
    if (history_.size() < n)
        return fit;
    fit.testable = true;

    const SortedReference &sorted = *sorted_[region];
    double d_sum = 0.0;
    for (std::size_t p = 0; p < rm.num_peaks; ++p) {
        gatherGroup(n, p);
        double d;
        if (testRank(sorted.rank(p), d))
            ++fit.rejected_ranks;
        else
            ++fit.accepted_ranks;
        d_sum += d;
    }
    fit.mean_d = d_sum / double(rm.num_peaks);
    fit.rejects = fit.rejected_ranks >= std::max<std::size_t>(
        1, rm.num_peaks / cfg_.reject_peak_divisor);
    fit.accepts = fit.accepted_ranks >= std::max<std::size_t>(
        1, rm.num_peaks / cfg_.change_peak_divisor);

    // Guard ranks beyond num_peaks (where this region's training
    // mostly saw no peak): a window carrying structure there does
    // not belong to this region, however broad the tested ranks'
    // distributions are. Prevents peak-poor regions from absorbing
    // anomalous windows.
    if (fit.accepts) {
        for (std::size_t p = rm.num_peaks; p < sorted.numRanks();
             ++p) {
            gatherGroup(n, p);
            double d;
            if (testRank(sorted.rank(p), d)) {
                fit.accepts = false;
                break;
            }
        }
    }
    return fit;
}

void
Monitor::quarantine(WindowQuality q, StepRecord &rec)
{
    rec.degraded = true;
    ++degraded_.quarantined;
    ++degraded_.by_kind[std::size_t(q)];
    // A quarantined window breaks any anomaly streak: the channel,
    // not the program, explains the rejections around it.
    anomaly_count_ = 0;
    ++outage_len_;
    degraded_.longest_outage =
        std::max(degraded_.longest_outage, outage_len_);
    if (outage_len_ == cfg_.quality.resync_outage) {
        // The history now predates the outage and would misjudge
        // whatever region execution is in when signal returns.
        ++degraded_.outages;
        history_.clear();
        resync_pending_ = true;
    }
}

bool
Monitor::resync()
{
    ++degraded_.resyncs;
    resync_pending_ = false;
    // Execution moved on during the outage, so the successor map is
    // stale: scan every trained region and re-lock to the best
    // accepting fit over the fresh window.
    std::size_t best = model_.regions.size();
    double best_d = 1.0;
    for (std::size_t r = 0; r < model_.regions.size(); ++r) {
        const Fit f = regionFit(r, cfg_.transition_window);
        if (f.testable && f.accepts && f.mean_d < best_d) {
            best = r;
            best_d = f.mean_d;
        }
    }
    if (best >= model_.regions.size() || best == current_)
        return false; // none fits better; stay and resume normally
    current_ = best;
    steps_since_change_ = 0;
    return true;
}

StepRecord
Monitor::step(const Sts &sts)
{
    StepRecord rec;
    rec.region = current_;

    const WindowQuality q = gate_.assess(sts, current_);
    if (q != WindowQuality::Good) {
        quarantine(q, rec);
        records_.push_back(rec);
        ++step_index_;
        return rec;
    }
    outage_len_ = 0;

    history_.push(sts.peak_freqs);
    ++steps_since_change_;

    if (resync_pending_ &&
        history_.size() >= cfg_.transition_window) {
        rec.transitioned = resync();
        rec.region = current_;
        records_.push_back(rec);
        ++step_index_;
        return rec;
    }

    const Fit cur = regionFit(current_);
    rec.tested = cur.testable;
    rec.rejected = cur.testable && cur.rejects;

    if (!rec.rejected) {
        anomaly_count_ = 0;
        // Better-fit handoff (extension over Algorithm 1, see
        // monitor.h): diffuse regions with broad reference
        // distributions may keep "accepting" after execution has
        // moved on — and untrained regions cannot reject at all.
        // Hand off when a successor fits decisively better (or at
        // all, when the current region is unverifiable).
        // While a *trained* region's window is still warming up
        // (history < n), withhold judgement; only hand off from
        // regions that can never be tested (untrained) or that
        // accepted outright.
        const bool may_handoff = cur.testable ||
            !model_.regions[current_].trained;
        if (cfg_.enable_handoff && may_handoff &&
            steps_since_change_ >= cfg_.transition_window) {
            const double cur_d = cur.testable ? cur.mean_d : 1.0;
            const std::size_t cur_peaks = cur.testable ?
                model_.regions[current_].num_peaks : 0;
            std::size_t best = model_.regions.size();
            double best_d = cur_d;
            for (std::size_t j : candidates_[current_]) {
                // A peak-poor neighbor trivially achieves a small
                // mean distance; only hand off to regions with
                // comparable spectral richness. (The reject path
                // below has no such restriction.)
                if (model_.regions[j].num_peaks * 2 < cur_peaks)
                    continue;
                const Fit f = regionFit(j, cfg_.transition_window);
                if (f.testable && f.accepts &&
                    f.mean_d < cfg_.handoff_ratio * cur_d &&
                    f.mean_d < best_d) {
                    best = j;
                    best_d = f.mean_d;
                }
            }
            if (best < model_.regions.size()) {
                current_ = best;
                steps_since_change_ = 0;
                rec.transitioned = true;
            }
        }
    } else {
        // Does a successor explain the window instead? (Not during
        // the dwell right after a change — the window is still
        // refilling and a chance acceptance would wedge the monitor
        // in the wrong state.)
        std::size_t best_region = model_.regions.size();
        std::size_t best_accepted = 0;
        double best_cand_d = 1.0;
        if (steps_since_change_ >= cfg_.transition_window) {
            for (std::size_t j : candidates_[current_]) {
                const Fit f = regionFit(j, cfg_.transition_window);
                if (f.testable && f.accepts &&
                    f.accepted_ranks > best_accepted) {
                    best_accepted = f.accepted_ranks;
                    best_region = j;
                    best_cand_d = f.mean_d;
                }
            }
        }
        // Fresh-window check of the current region: a full-window
        // rejection whose newest STSs still fit is a border effect
        // or slow drift, not an anomaly and not a region change.
        // (Bin-quantized injected peaks fail even the fresh test.)
        const Fit fresh = regionFit(current_, cfg_.transition_window);
        const bool fresh_ok = fresh.testable && !fresh.rejects;
        // A region change must be decisive: the candidate's fresh
        // fit has to clearly beat the current region's, or a
        // marginal spectral overlap between neighbors would cause
        // spurious hops.
        const bool decisive = !fresh.testable ||
            best_cand_d < cfg_.handoff_ratio * std::max(fresh.mean_d,
                                                        1e-9);
        if (best_region < model_.regions.size() && decisive) {
            if (fresh_ok) {
                anomaly_count_ = 0; // stay: drift, not a change
            } else {
                current_ = best_region;
                anomaly_count_ = 0;
                steps_since_change_ = 0;
                rec.transitioned = true;
            }
        } else if (fresh_ok) {
            anomaly_count_ = 0; // border/drift tolerance
        } else {
            ++anomaly_count_;
            if (anomaly_count_ > cfg_.report_threshold) {
                AnomalyReport rep;
                rep.step = step_index_;
                rep.time = sts.t_end;
                rep.region = current_;
                reports_.push_back(rep);
                // Mark the whole streak as reported.
                rec.reported = true;
                const std::size_t streak = anomaly_count_ - 1;
                for (std::size_t k = 0;
                     k < streak && k < records_.size(); ++k) {
                    records_[records_.size() - 1 - k].reported = true;
                }
                // The streak may reach back before the last delta
                // cut; remember the lowest rewritten index so
                // exportDelta() re-sends those records.
                const std::size_t low =
                    records_.size() - std::min(streak, records_.size());
                retro_low_water_ = std::min(retro_low_water_, low);
                anomaly_count_ = 0;
            }
        }
    }

    records_.push_back(rec);
    ++step_index_;
    return rec;
}

} // namespace eddie::core
