/**
 * @file
 * Capture memoization: a thread-safe, content-keyed LRU cache over
 * Pipeline::captureRun results.
 *
 * A capture is a pure function of (program, core config, energy
 * params, channel and feature config, injection plan, seed) — the
 * cycle simulator, EM synthesis, and STFT are all deterministic given
 * those inputs. Training loops and the bench sweeps replay identical
 * baseline captures at every sweep point; memoizing the extracted STS
 * stream turns those ~50 ms re-simulations into a map lookup plus a
 * vector copy, without changing a single output bit (the determinism
 * regression in tests/core/capture_cache_test.cpp holds trained
 * models byte-identical with the cache on or off at any thread
 * count).
 *
 * Keys are the full serialized capture identity (see
 * captureCacheKey() in pipeline.h), so two captures collide only if
 * every input is identical — there is no hash-collision exposure in
 * the memory tier. Evicted entries can optionally spill to disk in
 * the capture_io STS format; spill files carry the key and are
 * verified on load.
 */

#ifndef EDDIE_CORE_CAPTURE_CACHE_H
#define EDDIE_CORE_CAPTURE_CACHE_H

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "metrics.h"
#include "store/archive.h"
#include "sts.h"

namespace eddie::core
{

/** Capacity and spill policy of a CaptureCache. */
struct CaptureCacheConfig
{
    /** Maximum in-memory entries; at default pipeline scale one
     *  entry is a few hundred STSs (tens of KB). */
    std::size_t capacity = 256;
    /**
     * Directory for the on-disk spill tier; empty disables it. When
     * set, LRU evictions are written there and misses consult the
     * directory before falling back to the simulator. The directory
     * must exist. (Legacy layout: one hash-named file per key.)
     */
    std::string spill_dir;
    /**
     * EDDIEARC container for the spill tier; empty disables it. One
     * archive file replaces the file-per-key spill_dir layout:
     * evictions become group-committed puts, lookups become keyed
     * gets against the mmap (a corrupt segment is a counted miss,
     * like a corrupt spill file). Takes precedence over spill_dir
     * for writes; a populated legacy spill_dir is still consulted
     * on an archive miss, so existing spills stay readable through
     * the migration. The archive is created on first use; an
     * unopenable path throws IoError from the constructor.
     */
    std::string spill_archive;
};

/**
 * Thread-safe content-keyed LRU cache of extracted STS streams.
 *
 * Lookups and insertions take a mutex; the compute callback of
 * getOrCompute() runs outside it, so concurrent captures of
 * *different* keys proceed in parallel, and concurrent captures of
 * the *same* key each compute once and agree (last insert is a
 * no-op because the values are identical).
 */
class CaptureCache
{
  public:
    explicit CaptureCache(CaptureCacheConfig config = {});

    /**
     * Returns the stream cached under @p key, computing and caching
     * it via @p compute on a miss. The returned value is a copy; the
     * cached entry is immutable. Thin wrapper over
     * getOrComputeShared() kept for callers that mutate the stream.
     */
    std::vector<Sts>
    getOrCompute(const std::string &key,
                 const std::function<std::vector<Sts>()> &compute);

    /**
     * Like getOrCompute() but returns the cached entry itself (no
     * copy, never null). A hit costs a map lookup plus a refcount
     * bump — the mutex is released before any Sts data is touched —
     * so sharded monitor workers hitting the same warm key no longer
     * serialize on copying streams under the lock.
     */
    std::shared_ptr<const std::vector<Sts>>
    getOrComputeShared(const std::string &key,
                       const std::function<std::vector<Sts>()> &compute);

    /** Snapshot of the hit/miss counters (see core/metrics.h). */
    CaptureCacheStats stats() const;

    /** Drops all in-memory entries (spill files are kept). */
    void clear();

  private:
    using Entry =
        std::pair<std::string, std::shared_ptr<const std::vector<Sts>>>;

    /** Inserts under the lock; evicts (and maybe spills) LRU tails. */
    void insertLocked(const std::string &key,
                      std::shared_ptr<const std::vector<Sts>> value);

    /** Spill-file path of @p key (hash-named; key verified on load). */
    std::string spillPath(const std::string &key) const;

    CaptureCacheConfig config_;
    /** Spill container when config_.spill_archive is set. The archive
     *  has its own internal lock; it is never called under mu_ except
     *  for staging/committing evictions in insertLocked (the archive
     *  never calls back into the cache, so the order is acyclic). */
    std::unique_ptr<store::Archive> archive_;

    mutable std::mutex mu_;
    /** MRU-first recency list; map values point into it. */
    std::list<Entry> lru_;
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    CaptureCacheStats stats_;
};

} // namespace eddie::core

#endif // EDDIE_CORE_CAPTURE_CACHE_H
