#include "model.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/crc32.h"
#include "errors.h"

namespace eddie::core
{

namespace
{

/**
 * Whitespace tokenizer over the model text that tracks the current
 * line, so a malformed file is rejected with a message naming the
 * offending line instead of a bare stream failure. Every numeric
 * token is validated in full — trailing garbage inside a token is an
 * error, not silently ignored.
 */
class ModelParser
{
  public:
    explicit ModelParser(std::string text) : text_(std::move(text)) {}

    [[noreturn]] void fail(const std::string &what) const
    {
        throw FormatError("model: line " + std::to_string(line_) +
                          ": " + what);
    }

    bool atEnd()
    {
        skipWs();
        return pos_ >= text_.size();
    }

    std::string token(const char *what)
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               !std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == start)
            fail(std::string("missing ") + what);
        return text_.substr(start, pos_ - start);
    }

    std::size_t u64(const char *what, std::size_t max)
    {
        const std::string tok = token(what);
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(tok.c_str(), &end, 10);
        if (end != tok.c_str() + tok.size() || tok[0] == '-')
            fail(std::string("bad ") + what + " '" + tok + "'");
        if (v > max) {
            fail(std::string(what) + " " + tok +
                 " out of range (max " + std::to_string(max) + ")");
        }
        return std::size_t(v);
    }

    double f64(const char *what)
    {
        const std::string tok = token(what);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail(std::string("bad ") + what + " '" + tok + "'");
        if (!std::isfinite(v))
            fail(std::string(what) + " is not finite");
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            if (text_[pos_] == '\n')
                ++line_;
            ++pos_;
        }
    }

    std::string text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
};

constexpr const char *kCrcPrefix = "#crc32 ";

/** Caps: beyond these the counts describe no model this pipeline can
 *  produce, so the file is corrupt however plausible each token. */
constexpr std::size_t kMaxRegions = std::size_t(1) << 20;
constexpr std::size_t kMaxRanks = std::size_t(1) << 12;
constexpr std::size_t kMaxRankValues = std::size_t(1) << 24;

/**
 * Splits the model text into body and optional integrity trailer and
 * verifies the latter. The trailer is a final "#crc32 <hex> <len>"
 * line over the body bytes; files written before it existed (or by
 * external tools) load without it, and parsers that stop after the
 * last region never see it — the body bytes are unchanged.
 */
std::string
verifiedBody(const std::string &text)
{
    const std::size_t at = text.rfind(kCrcPrefix);
    if (at == std::string::npos)
        return text; // legacy file: no trailer to check
    if (at != 0 && text[at - 1] != '\n')
        return text; // "#crc32" inside a token, not a trailer line

    // Strict shape: "#crc32 <hex> <len>\n" ending the file exactly.
    // The CRC covers the body; the rigid format covers the trailer
    // itself, so no byte of the file can flip undetected.
    const char *s = text.c_str() + at + std::strlen(kCrcPrefix);
    char *end = nullptr;
    const unsigned long long crc = std::strtoull(s, &end, 16);
    bool ok = end != s && *end == ' ';
    unsigned long long len = 0;
    if (ok) {
        s = end + 1;
        len = std::strtoull(s, &end, 10);
        ok = end != s && end[0] == '\n' && end[1] == '\0';
    }
    if (!ok || len != at) {
        throw FormatError(
            "model: malformed #crc32 trailer (wrong length or "
            "unparseable)");
    }
    if (common::crc32(text.data(), std::size_t(len)) != crc)
        throw FormatError("model: checksum mismatch");
    return text.substr(0, at);
}

} // namespace

void
SortedReference::build(const std::vector<std::vector<double>> &ranks)
{
    offsets_.assign(1, 0);
    offsets_.reserve(ranks.size() + 1);
    std::size_t total = 0;
    for (const auto &r : ranks)
        total += r.size();
    values_.clear();
    values_.reserve(total);
    for (const auto &r : ranks) {
        values_.insert(values_.end(), r.begin(), r.end());
        offsets_.push_back(values_.size());
    }
}

void
TrainedModel::finalize()
{
    for (auto &r : regions)
        r.sorted.build(r.ref);
}

TrainedModel
withGroupSize(const TrainedModel &model, std::size_t n)
{
    TrainedModel out = model;
    for (auto &r : out.regions)
        if (r.trained)
            r.group_n = n;
    return out;
}

TrainedModel
withAlpha(const TrainedModel &model, double alpha)
{
    TrainedModel out = model;
    out.alpha = alpha;
    return out;
}

void
saveModel(const TrainedModel &model, std::ostream &os)
{
    std::ostringstream body;
    body << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    body << "eddie-model 1\n";
    body << model.alpha << ' ' << model.sentinel << ' '
         << model.entry_region << ' ' << model.num_loops << ' '
         << model.regions.size() << '\n';
    for (const auto &r : model.regions) {
        body << r.name << ' ' << int(r.trained) << ' ' << r.num_peaks
             << ' ' << r.group_n << ' ' << r.succs.size();
        for (auto s : r.succs)
            body << ' ' << s;
        body << '\n';
        body << r.ref.size() << '\n';
        for (const auto &rank : r.ref) {
            body << rank.size();
            for (double v : rank)
                body << ' ' << v;
            body << '\n';
        }
    }
    const std::string text = body.str();
    os << text;
    char trailer[48];
    std::snprintf(trailer, sizeof trailer, "%s%08x %zu\n", kCrcPrefix,
                  common::crc32(text), text.size());
    os << trailer;
}

TrainedModel
loadModel(std::istream &is)
{
    std::ostringstream slurp;
    slurp << is.rdbuf();
    ModelParser p(verifiedBody(slurp.str()));

    if (p.token("magic") != "eddie-model")
        throw FormatError("loadModel: bad header");
    if (p.u64("version", 1000) != 1)
        throw FormatError("loadModel: bad header");

    TrainedModel m;
    m.alpha = p.f64("alpha");
    if (!(m.alpha > 0.0 && m.alpha < 1.0))
        p.fail("alpha outside (0, 1)");
    m.sentinel = p.f64("sentinel");
    if (!(m.sentinel > 0.0))
        p.fail("sentinel must be positive");
    m.entry_region = p.u64("entry region", kMaxRegions);
    m.num_loops = p.u64("loop count", kMaxRegions);
    const std::size_t num_regions = p.u64("region count", kMaxRegions);
    if (num_regions > 0 && m.entry_region >= num_regions)
        p.fail("entry region out of range");
    if (m.num_loops > num_regions)
        p.fail("loop count exceeds region count");

    m.regions.resize(num_regions);
    for (auto &r : m.regions) {
        r.name = p.token("region name");
        const std::size_t trained = p.u64("trained flag", 1);
        r.trained = trained != 0;
        r.num_peaks = p.u64("peak count", kMaxRanks);
        r.group_n = p.u64("group size", kMaxRankValues);
        if (r.trained && r.group_n == 0)
            p.fail("trained region with zero group size");
        const std::size_t num_succs =
            p.u64("successor count", kMaxRegions);
        r.succs.resize(num_succs);
        for (auto &s : r.succs) {
            s = p.u64("successor id", kMaxRegions);
            if (s >= num_regions)
                p.fail("successor id out of range");
        }
        const std::size_t num_ranks = p.u64("rank count", kMaxRanks);
        if (r.num_peaks > num_ranks)
            p.fail("peak count exceeds rank count");
        r.ref.resize(num_ranks);
        for (std::size_t rank_idx = 0; rank_idx < num_ranks;
             ++rank_idx) {
            auto &rank = r.ref[rank_idx];
            rank.resize(p.u64("rank size", kMaxRankValues));
            double prev = -std::numeric_limits<double>::infinity();
            for (auto &v : rank) {
                v = p.f64("reference value");
                // The K-S fast path requires ascending references.
                if (v < prev)
                    p.fail("reference values not sorted");
                prev = v;
            }
            if (r.trained && rank_idx < r.num_peaks && rank.empty())
                p.fail("trained region with empty peak rank");
        }
    }
    if (!p.atEnd())
        p.fail("trailing data after last region");
    m.finalize();
    return m;
}

} // namespace eddie::core
