#include "model.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/crc32.h"
#include "errors.h"
#include "store/archive.h"

namespace eddie::core
{

namespace
{

/**
 * Whitespace tokenizer over the model text that tracks the current
 * line, so a malformed file is rejected with a message naming the
 * offending line instead of a bare stream failure. Every numeric
 * token is validated in full — trailing garbage inside a token is an
 * error, not silently ignored.
 */
class ModelParser
{
  public:
    explicit ModelParser(std::string text) : text_(std::move(text)) {}

    [[noreturn]] void fail(const std::string &what) const
    {
        throw FormatError("model: line " + std::to_string(line_) +
                          ": " + what);
    }

    bool atEnd()
    {
        skipWs();
        return pos_ >= text_.size();
    }

    std::string token(const char *what)
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               !std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == start)
            fail(std::string("missing ") + what);
        return text_.substr(start, pos_ - start);
    }

    std::size_t u64(const char *what, std::size_t max)
    {
        const std::string tok = token(what);
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(tok.c_str(), &end, 10);
        if (end != tok.c_str() + tok.size() || tok[0] == '-')
            fail(std::string("bad ") + what + " '" + tok + "'");
        if (v > max) {
            fail(std::string(what) + " " + tok +
                 " out of range (max " + std::to_string(max) + ")");
        }
        return std::size_t(v);
    }

    double f64(const char *what)
    {
        const std::string tok = token(what);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail(std::string("bad ") + what + " '" + tok + "'");
        if (!std::isfinite(v))
            fail(std::string(what) + " is not finite");
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            if (text_[pos_] == '\n')
                ++line_;
            ++pos_;
        }
    }

    std::string text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
};

constexpr const char *kCrcPrefix = "#crc32 ";

/** Caps: beyond these the counts describe no model this pipeline can
 *  produce, so the file is corrupt however plausible each token. */
constexpr std::size_t kMaxRegions = std::size_t(1) << 20;
constexpr std::size_t kMaxRanks = std::size_t(1) << 12;
constexpr std::size_t kMaxRankValues = std::size_t(1) << 24;
constexpr std::size_t kMaxNameLen = std::size_t(1) << 16;

/** Binary payload layout version (independent of the text format's
 *  "eddie-model 1" header and of the archive container version). */
constexpr std::uint32_t kBinaryVersion = 1;
/** Archive key the model artifact lives under. */
constexpr const char *kModelKey = "model";

/**
 * Splits the model text into body and optional integrity trailer and
 * verifies the latter. The trailer is a final "#crc32 <hex> <len>"
 * line over the body bytes; files written before it existed (or by
 * external tools) load without it, and parsers that stop after the
 * last region never see it — the body bytes are unchanged.
 */
std::string
verifiedBody(const std::string &text)
{
    const std::size_t at = text.rfind(kCrcPrefix);
    if (at == std::string::npos)
        return text; // legacy file: no trailer to check
    if (at != 0 && text[at - 1] != '\n')
        return text; // "#crc32" inside a token, not a trailer line

    // Strict shape: "#crc32 <hex> <len>\n" ending the file exactly.
    // The CRC covers the body; the rigid format covers the trailer
    // itself, so no byte of the file can flip undetected.
    const char *s = text.c_str() + at + std::strlen(kCrcPrefix);
    char *end = nullptr;
    const unsigned long long crc = std::strtoull(s, &end, 16);
    bool ok = end != s && *end == ' ';
    unsigned long long len = 0;
    if (ok) {
        s = end + 1;
        len = std::strtoull(s, &end, 10);
        ok = end != s && end[0] == '\n' && end[1] == '\0';
    }
    if (!ok || len != at) {
        throw FormatError(
            "model: malformed #crc32 trailer (wrong length or "
            "unparseable)");
    }
    if (common::crc32(text.data(), std::size_t(len)) != crc)
        throw FormatError("model: checksum mismatch");
    return text.substr(0, at);
}

template <typename T>
void
putRaw(std::string &out, T value)
{
    out.append(reinterpret_cast<const char *>(&value), sizeof value);
}

/** Bounds-checked reader over the binary model payload. Underruns
 *  are format errors: the container's CRC already passed, so a lying
 *  length field is corruption the checksum cannot see. */
class BinCursor
{
  public:
    BinCursor(const char *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    template <typename T>
    T get(const char *what)
    {
        T value;
        if (size_ - off_ < sizeof value)
            throw FormatError(std::string("model: truncated ") +
                              what);
        std::memcpy(&value, data_ + off_, sizeof value);
        off_ += sizeof value;
        return value;
    }

    std::size_t count(const char *what, std::size_t max)
    {
        const auto n = get<std::uint64_t>(what);
        if (n > max)
            throw FormatError(std::string("model: ") + what +
                              " out of range");
        return std::size_t(n);
    }

    double f64(const char *what)
    {
        const double v = get<double>(what);
        if (!std::isfinite(v))
            throw FormatError(std::string("model: ") + what +
                              " is not finite");
        return v;
    }

    std::string bytes(const char *what, std::size_t n)
    {
        if (size_ - off_ < n)
            throw FormatError(std::string("model: truncated ") +
                              what);
        std::string out(data_ + off_, n);
        off_ += n;
        return out;
    }

    bool exhausted() const { return off_ == size_; }

  private:
    const char *data_;
    std::size_t size_;
    std::size_t off_ = 0;
};

} // namespace

void
SortedReference::build(const std::vector<std::vector<double>> &ranks)
{
    offsets_.assign(1, 0);
    offsets_.reserve(ranks.size() + 1);
    std::size_t total = 0;
    for (const auto &r : ranks)
        total += r.size();
    values_.clear();
    values_.reserve(total);
    for (const auto &r : ranks) {
        values_.insert(values_.end(), r.begin(), r.end());
        offsets_.push_back(values_.size());
    }
}

void
TrainedModel::finalize()
{
    for (auto &r : regions)
        r.sorted.build(r.ref);
}

TrainedModel
withGroupSize(const TrainedModel &model, std::size_t n)
{
    TrainedModel out = model;
    for (auto &r : out.regions)
        if (r.trained)
            r.group_n = n;
    return out;
}

TrainedModel
withAlpha(const TrainedModel &model, double alpha)
{
    TrainedModel out = model;
    out.alpha = alpha;
    return out;
}

void
saveModel(const TrainedModel &model, std::ostream &os)
{
    std::ostringstream body;
    body << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    body << "eddie-model 1\n";
    body << model.alpha << ' ' << model.sentinel << ' '
         << model.entry_region << ' ' << model.num_loops << ' '
         << model.regions.size() << '\n';
    for (const auto &r : model.regions) {
        body << r.name << ' ' << int(r.trained) << ' ' << r.num_peaks
             << ' ' << r.group_n << ' ' << r.succs.size();
        for (auto s : r.succs)
            body << ' ' << s;
        body << '\n';
        body << r.ref.size() << '\n';
        for (const auto &rank : r.ref) {
            body << rank.size();
            for (double v : rank)
                body << ' ' << v;
            body << '\n';
        }
    }
    const std::string text = body.str();
    os << text;
    char trailer[48];
    std::snprintf(trailer, sizeof trailer, "%s%08x %zu\n", kCrcPrefix,
                  common::crc32(text), text.size());
    os << trailer;
}

TrainedModel
loadModel(std::istream &is)
{
    std::ostringstream slurp;
    slurp << is.rdbuf();
    ModelParser p(verifiedBody(slurp.str()));

    if (p.token("magic") != "eddie-model")
        throw FormatError("loadModel: bad header");
    if (p.u64("version", 1000) != 1)
        throw FormatError("loadModel: bad header");

    TrainedModel m;
    m.alpha = p.f64("alpha");
    if (!(m.alpha > 0.0 && m.alpha < 1.0))
        p.fail("alpha outside (0, 1)");
    m.sentinel = p.f64("sentinel");
    if (!(m.sentinel > 0.0))
        p.fail("sentinel must be positive");
    m.entry_region = p.u64("entry region", kMaxRegions);
    m.num_loops = p.u64("loop count", kMaxRegions);
    const std::size_t num_regions = p.u64("region count", kMaxRegions);
    if (num_regions > 0 && m.entry_region >= num_regions)
        p.fail("entry region out of range");
    if (m.num_loops > num_regions)
        p.fail("loop count exceeds region count");

    m.regions.resize(num_regions);
    for (auto &r : m.regions) {
        r.name = p.token("region name");
        const std::size_t trained = p.u64("trained flag", 1);
        r.trained = trained != 0;
        r.num_peaks = p.u64("peak count", kMaxRanks);
        r.group_n = p.u64("group size", kMaxRankValues);
        if (r.trained && r.group_n == 0)
            p.fail("trained region with zero group size");
        const std::size_t num_succs =
            p.u64("successor count", kMaxRegions);
        r.succs.resize(num_succs);
        for (auto &s : r.succs) {
            s = p.u64("successor id", kMaxRegions);
            if (s >= num_regions)
                p.fail("successor id out of range");
        }
        const std::size_t num_ranks = p.u64("rank count", kMaxRanks);
        if (r.num_peaks > num_ranks)
            p.fail("peak count exceeds rank count");
        r.ref.resize(num_ranks);
        for (std::size_t rank_idx = 0; rank_idx < num_ranks;
             ++rank_idx) {
            auto &rank = r.ref[rank_idx];
            rank.resize(p.u64("rank size", kMaxRankValues));
            double prev = -std::numeric_limits<double>::infinity();
            for (auto &v : rank) {
                v = p.f64("reference value");
                // The K-S fast path requires ascending references.
                if (v < prev)
                    p.fail("reference values not sorted");
                prev = v;
            }
            if (r.trained && rank_idx < r.num_peaks && rank.empty())
                p.fail("trained region with empty peak rank");
        }
    }
    if (!p.atEnd())
        p.fail("trailing data after last region");
    m.finalize();
    return m;
}

std::string
encodeModelBinary(const TrainedModel &model)
{
    std::string out;
    // Rough reserve: counts dominate small models, doubles big ones.
    std::size_t doubles = 0;
    for (const auto &r : model.regions)
        for (const auto &rank : r.ref)
            doubles += rank.size();
    out.reserve(64 + model.regions.size() * 96 + doubles * 8);

    putRaw<std::uint32_t>(out, kBinaryVersion);
    putRaw<double>(out, model.alpha);
    putRaw<double>(out, model.sentinel);
    putRaw<std::uint64_t>(out, model.entry_region);
    putRaw<std::uint64_t>(out, model.num_loops);
    putRaw<std::uint64_t>(out, model.regions.size());
    for (const auto &r : model.regions) {
        putRaw<std::uint64_t>(out, r.name.size());
        out.append(r.name);
        putRaw<std::uint8_t>(out, r.trained ? 1 : 0);
        putRaw<std::uint64_t>(out, r.num_peaks);
        putRaw<std::uint64_t>(out, r.group_n);
        putRaw<std::uint64_t>(out, r.succs.size());
        for (auto s : r.succs)
            putRaw<std::uint64_t>(out, s);
        putRaw<std::uint64_t>(out, r.ref.size());
        for (const auto &rank : r.ref) {
            putRaw<std::uint64_t>(out, rank.size());
            out.append(
                reinterpret_cast<const char *>(rank.data()),
                rank.size() * sizeof(double));
        }
    }
    return out;
}

TrainedModel
decodeModelBinary(const char *data, std::size_t size)
{
    BinCursor c(data, size);
    if (c.get<std::uint32_t>("format version") != kBinaryVersion)
        throw FormatError("model: unsupported binary version");

    // Same validation rules as the text loader — the binary decoder
    // must reject exactly what the parser rejects, so a corrupt
    // archive value can never admit a model the text path wouldn't.
    TrainedModel m;
    m.alpha = c.f64("alpha");
    if (!(m.alpha > 0.0 && m.alpha < 1.0))
        throw FormatError("model: alpha outside (0, 1)");
    m.sentinel = c.f64("sentinel");
    if (!(m.sentinel > 0.0))
        throw FormatError("model: sentinel must be positive");
    m.entry_region = c.count("entry region", kMaxRegions);
    m.num_loops = c.count("loop count", kMaxRegions);
    const std::size_t num_regions =
        c.count("region count", kMaxRegions);
    if (num_regions > 0 && m.entry_region >= num_regions)
        throw FormatError("model: entry region out of range");
    if (m.num_loops > num_regions)
        throw FormatError("model: loop count exceeds region count");

    m.regions.resize(num_regions);
    for (auto &r : m.regions) {
        const std::size_t name_len =
            c.count("region name length", kMaxNameLen);
        if (name_len == 0)
            throw FormatError("model: empty region name");
        r.name = c.bytes("region name", name_len);
        r.trained = c.get<std::uint8_t>("trained flag") != 0;
        r.num_peaks = c.count("peak count", kMaxRanks);
        r.group_n = c.count("group size", kMaxRankValues);
        if (r.trained && r.group_n == 0)
            throw FormatError(
                "model: trained region with zero group size");
        const std::size_t num_succs =
            c.count("successor count", kMaxRegions);
        r.succs.resize(num_succs);
        for (auto &s : r.succs) {
            s = c.count("successor id", kMaxRegions);
            if (s >= num_regions)
                throw FormatError(
                    "model: successor id out of range");
        }
        const std::size_t num_ranks =
            c.count("rank count", kMaxRanks);
        if (r.num_peaks > num_ranks)
            throw FormatError(
                "model: peak count exceeds rank count");
        r.ref.resize(num_ranks);
        for (std::size_t rank_idx = 0; rank_idx < num_ranks;
             ++rank_idx) {
            auto &rank = r.ref[rank_idx];
            rank.resize(c.count("rank size", kMaxRankValues));
            double prev = -std::numeric_limits<double>::infinity();
            for (auto &v : rank) {
                v = c.f64("reference value");
                if (v < prev)
                    throw FormatError(
                        "model: reference values not sorted");
                prev = v;
            }
            if (r.trained && rank_idx < r.num_peaks && rank.empty())
                throw FormatError(
                    "model: trained region with empty peak rank");
        }
    }
    if (!c.exhausted())
        throw FormatError("model: trailing payload bytes");
    m.finalize();
    return m;
}

void
saveModelFile(const TrainedModel &model, const std::string &path,
              ModelFormat format)
{
    const std::string tmp = path + ".tmp";
    std::remove(tmp.c_str());
    if (format == ModelFormat::Archive) {
        store::ArchiveConfig cfg;
        cfg.path = tmp;
        store::Archive arc(cfg);
        if (!arc.put(kModelKey, encodeModelBinary(model)))
            throw IoError("model: archive write failed for " + tmp);
    } else {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw IoError("model: cannot open " + tmp);
        saveModel(model, os);
        os.flush();
        if (!os)
            throw IoError("model: short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw IoError("model: cannot rename " + tmp + " to " + path);
    }
}

TrainedModel
loadModelFile(const std::string &path)
{
    if (store::Archive::sniff(path)) {
        store::ArchiveConfig cfg;
        cfg.path = path;
        store::Archive arc(cfg);
        std::span<const char> span;
        switch (arc.get(kModelKey, span)) {
        case store::GetStatus::Ok:
            return decodeModelBinary(span.data(), span.size());
        case store::GetStatus::Missing:
            throw FormatError("model: archive " + path +
                              " has no model artifact");
        case store::GetStatus::Corrupt:
        default:
            throw FormatError("model: archive " + path +
                              " failed sector checksum");
        }
    }
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw IoError("model: cannot open " + path);
    return loadModel(is);
}

} // namespace eddie::core
