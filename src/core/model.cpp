#include "model.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace eddie::core
{

TrainedModel
withGroupSize(const TrainedModel &model, std::size_t n)
{
    TrainedModel out = model;
    for (auto &r : out.regions)
        if (r.trained)
            r.group_n = n;
    return out;
}

TrainedModel
withAlpha(const TrainedModel &model, double alpha)
{
    TrainedModel out = model;
    out.alpha = alpha;
    return out;
}

void
saveModel(const TrainedModel &model, std::ostream &os)
{
    os << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    os << "eddie-model 1\n";
    os << model.alpha << ' ' << model.sentinel << ' '
       << model.entry_region << ' ' << model.num_loops << ' '
       << model.regions.size() << '\n';
    for (const auto &r : model.regions) {
        os << r.name << ' ' << int(r.trained) << ' ' << r.num_peaks
           << ' ' << r.group_n << ' ' << r.succs.size();
        for (auto s : r.succs)
            os << ' ' << s;
        os << '\n';
        os << r.ref.size() << '\n';
        for (const auto &rank : r.ref) {
            os << rank.size();
            for (double v : rank)
                os << ' ' << v;
            os << '\n';
        }
    }
}

TrainedModel
loadModel(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    if (magic != "eddie-model" || version != 1)
        throw std::runtime_error("loadModel: bad header");

    TrainedModel m;
    std::size_t num_regions = 0;
    is >> m.alpha >> m.sentinel >> m.entry_region >> m.num_loops >>
        num_regions;
    if (!is)
        throw std::runtime_error("loadModel: bad model header line");
    m.regions.resize(num_regions);
    for (auto &r : m.regions) {
        int trained = 0;
        std::size_t num_succs = 0;
        is >> r.name >> trained >> r.num_peaks >> r.group_n >> num_succs;
        r.trained = trained != 0;
        r.succs.resize(num_succs);
        for (auto &s : r.succs)
            is >> s;
        std::size_t num_ranks = 0;
        is >> num_ranks;
        r.ref.resize(num_ranks);
        for (auto &rank : r.ref) {
            std::size_t k = 0;
            is >> k;
            rank.resize(k);
            for (auto &v : rank)
                is >> v;
        }
        if (!is)
            throw std::runtime_error("loadModel: truncated region");
    }
    return m;
}

} // namespace eddie::core
