#include "capture_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace eddie::core
{

namespace
{

constexpr char kMagic[8] = {'E', 'D', 'D', 'I', 'E', 'C', 'A', 'P'};
constexpr std::uint32_t kVersion = 1;

constexpr char kStsMagic[8] = {'E', 'D', 'D', 'I', 'E', 'S', 'T', 'S'};
constexpr std::uint32_t kStsVersion = 1;

template <typename T>
void
writeRaw(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof value);
}

template <typename T>
T
readRaw(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof value);
    if (!is)
        throw std::runtime_error("capture: truncated input");
    return value;
}

} // namespace

void
saveCapture(const cpu::RunResult &run, std::ostream &os)
{
    os.write(kMagic, sizeof kMagic);
    writeRaw(os, kVersion);
    writeRaw(os, run.sample_rate);
    const std::uint64_t n = run.power.size();
    writeRaw(os, n);
    os.write(reinterpret_cast<const char *>(run.power.data()),
             std::streamsize(n * sizeof(double)));

    // Region ids (kNoRegion encodes as ~0).
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t r =
            i < run.region.size() ? run.region[i] : ~std::uint64_t(0);
        writeRaw(os, r);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint8_t f =
            i < run.injected.size() ? run.injected[i] : 0;
        writeRaw(os, f);
    }
}

cpu::RunResult
loadCapture(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof magic);
    if (!is || std::memcmp(magic, kMagic, sizeof magic) != 0)
        throw std::runtime_error("capture: bad magic");
    const auto version = readRaw<std::uint32_t>(is);
    if (version != kVersion)
        throw std::runtime_error("capture: unsupported version");

    cpu::RunResult run;
    run.sample_rate = readRaw<double>(is);
    if (!(run.sample_rate > 0.0))
        throw std::runtime_error("capture: bad sample rate");
    const auto n = readRaw<std::uint64_t>(is);
    // Sanity cap: a capture is bounded by hours of samples.
    if (n > (std::uint64_t(1) << 34))
        throw std::runtime_error("capture: implausible size");

    run.power.resize(n);
    is.read(reinterpret_cast<char *>(run.power.data()),
            std::streamsize(n * sizeof(double)));
    if (!is)
        throw std::runtime_error("capture: truncated samples");

    run.region.resize(n);
    for (std::uint64_t i = 0; i < n; ++i)
        run.region[i] = readRaw<std::uint64_t>(is);
    run.injected.resize(n);
    for (std::uint64_t i = 0; i < n; ++i)
        run.injected[i] = readRaw<std::uint8_t>(is);
    return run;
}

void
saveStsStream(const std::vector<Sts> &stream, std::ostream &os)
{
    os.write(kStsMagic, sizeof kStsMagic);
    writeRaw(os, kStsVersion);
    writeRaw(os, std::uint64_t(stream.size()));
    for (const auto &sts : stream) {
        writeRaw(os, sts.t_start);
        writeRaw(os, sts.t_end);
        writeRaw(os, std::uint64_t(sts.true_region));
        writeRaw(os, std::uint8_t(sts.injected ? 1 : 0));
        writeRaw(os, std::uint64_t(sts.peak_freqs.size()));
        os.write(reinterpret_cast<const char *>(sts.peak_freqs.data()),
                 std::streamsize(sts.peak_freqs.size() *
                                 sizeof(double)));
    }
}

std::vector<Sts>
loadStsStream(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof magic);
    if (!is || std::memcmp(magic, kStsMagic, sizeof magic) != 0)
        throw std::runtime_error("sts stream: bad magic");
    const auto version = readRaw<std::uint32_t>(is);
    if (version != kStsVersion)
        throw std::runtime_error("sts stream: unsupported version");

    const auto count = readRaw<std::uint64_t>(is);
    // Sanity cap: days of STSs at the pipeline's hop rate.
    if (count > (std::uint64_t(1) << 32))
        throw std::runtime_error("sts stream: implausible size");

    std::vector<Sts> stream(count);
    for (auto &sts : stream) {
        sts.t_start = readRaw<double>(is);
        sts.t_end = readRaw<double>(is);
        sts.true_region = std::size_t(readRaw<std::uint64_t>(is));
        sts.injected = readRaw<std::uint8_t>(is) != 0;
        const auto peaks = readRaw<std::uint64_t>(is);
        if (peaks > (std::uint64_t(1) << 20))
            throw std::runtime_error("sts stream: implausible peaks");
        sts.peak_freqs.resize(peaks);
        is.read(reinterpret_cast<char *>(sts.peak_freqs.data()),
                std::streamsize(peaks * sizeof(double)));
        if (!is)
            throw std::runtime_error("sts stream: truncated input");
    }
    return stream;
}

void
saveCaptureFile(const cpu::RunResult &run, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("capture: cannot open " + path);
    saveCapture(run, os);
    if (!os)
        throw std::runtime_error("capture: write failed: " + path);
}

cpu::RunResult
loadCaptureFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("capture: cannot open " + path);
    return loadCapture(is);
}

} // namespace eddie::core
