#include "capture_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/crc32.h"
#include "errors.h"

namespace eddie::core
{

namespace
{

constexpr char kMagic[8] = {'E', 'D', 'D', 'I', 'E', 'C', 'A', 'P'};
constexpr char kStsMagic[8] = {'E', 'D', 'D', 'I', 'E', 'S', 'T', 'S'};

/**
 * Version 2 (both formats) adds integrity framing after the magic and
 * version: u64 payload length, the payload bytes, then a CRC-32 of
 * the payload. A flipped bit fails the checksum and a short file
 * fails the length, so a corrupt artifact is a typed error instead of
 * silently-wrong samples. Version-1 files (no framing, and without
 * the STS quality fields) still load.
 */
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kStsVersion = 2;

/** Payloads are capped before allocation; a capture is bounded by
 *  hours of f64 samples. */
constexpr std::uint64_t kMaxPayloadBytes = std::uint64_t(1) << 37;

template <typename T>
void
writeRaw(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof value);
}

template <typename T>
T
readRaw(std::istream &is, const char *what)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof value);
    if (!is)
        throw IoError(std::string(what) + ": truncated input");
    return value;
}

void
writeCapturePayload(const cpu::RunResult &run, std::ostream &os)
{
    writeRaw(os, run.sample_rate);
    const std::uint64_t n = run.power.size();
    writeRaw(os, n);
    os.write(reinterpret_cast<const char *>(run.power.data()),
             std::streamsize(n * sizeof(double)));

    // Region ids (kNoRegion encodes as ~0).
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t r =
            i < run.region.size() ? run.region[i] : ~std::uint64_t(0);
        writeRaw(os, r);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint8_t f =
            i < run.injected.size() ? run.injected[i] : 0;
        writeRaw(os, f);
    }
}

cpu::RunResult
readCapturePayload(std::istream &is)
{
    cpu::RunResult run;
    run.sample_rate = readRaw<double>(is, "capture");
    if (!(run.sample_rate > 0.0))
        throw FormatError("capture: bad sample rate");
    const auto n = readRaw<std::uint64_t>(is, "capture");
    // Sanity cap: a capture is bounded by hours of samples.
    if (n > (std::uint64_t(1) << 34))
        throw FormatError("capture: implausible size");

    run.power.resize(n);
    is.read(reinterpret_cast<char *>(run.power.data()),
            std::streamsize(n * sizeof(double)));
    if (!is)
        throw IoError("capture: truncated samples");

    run.region.resize(n);
    for (std::uint64_t i = 0; i < n; ++i)
        run.region[i] = readRaw<std::uint64_t>(is, "capture");
    run.injected.resize(n);
    for (std::uint64_t i = 0; i < n; ++i)
        run.injected[i] = readRaw<std::uint8_t>(is, "capture");
    return run;
}

/** Stream reader kept for version-1 files (unframed, no quality
 *  fields); version-2 payloads go through decodeStsPayload(). */
std::vector<Sts>
readStsPayload(std::istream &is, std::uint32_t version)
{
    const auto count = readRaw<std::uint64_t>(is, "sts stream");
    // Sanity cap: days of STSs at the pipeline's hop rate.
    if (count > (std::uint64_t(1) << 32))
        throw FormatError("sts stream: implausible size");

    std::vector<Sts> stream(count);
    for (auto &sts : stream) {
        sts.t_start = readRaw<double>(is, "sts stream");
        sts.t_end = readRaw<double>(is, "sts stream");
        sts.true_region =
            std::size_t(readRaw<std::uint64_t>(is, "sts stream"));
        sts.injected = readRaw<std::uint8_t>(is, "sts stream") != 0;
        if (version >= 2) {
            sts.window_energy = readRaw<double>(is, "sts stream");
            sts.peak_energy_frac = readRaw<double>(is, "sts stream");
            sts.faulted = readRaw<std::uint8_t>(is, "sts stream") != 0;
        }
        const auto peaks = readRaw<std::uint64_t>(is, "sts stream");
        if (peaks > (std::uint64_t(1) << 20))
            throw FormatError("sts stream: implausible peaks");
        sts.peak_freqs.resize(peaks);
        is.read(reinterpret_cast<char *>(sts.peak_freqs.data()),
                std::streamsize(peaks * sizeof(double)));
        if (!is)
            throw IoError("sts stream: truncated input");
    }
    return stream;
}

} // namespace

void
writeFramed(std::ostream &os, const char (&magic)[8],
            std::uint32_t version, const std::string &payload)
{
    os.write(magic, sizeof magic);
    writeRaw(os, version);
    writeRaw(os, std::uint64_t(payload.size()));
    os.write(payload.data(), std::streamsize(payload.size()));
    writeRaw(os, common::crc32(payload));
}

std::uint32_t
readFramed(std::istream &is, const char (&magic)[8],
           std::uint32_t current_version,
           std::uint32_t min_framed_version, const char *what,
           std::string &payload)
{
    char stored[8];
    is.read(stored, sizeof stored);
    if (!is)
        throw IoError(std::string(what) + ": truncated input");
    if (std::memcmp(stored, magic, sizeof stored) != 0)
        throw FormatError(std::string(what) + ": bad magic");
    const auto version = readRaw<std::uint32_t>(is, what);
    if (version < min_framed_version)
        return version; // legacy: unframed payload follows
    if (version != current_version)
        throw FormatError(std::string(what) + ": unsupported version");

    const auto size = readRaw<std::uint64_t>(is, what);
    if (size > kMaxPayloadBytes)
        throw FormatError(std::string(what) + ": implausible size");
    payload.resize(std::size_t(size));
    is.read(payload.data(), std::streamsize(payload.size()));
    if (!is)
        throw IoError(std::string(what) + ": truncated payload");
    const auto stored_crc = readRaw<std::uint32_t>(is, what);
    if (stored_crc != common::crc32(payload))
        throw FormatError(std::string(what) + ": checksum mismatch");
    return version;
}

void
saveCapture(const cpu::RunResult &run, std::ostream &os)
{
    std::ostringstream payload(std::ios::binary);
    writeCapturePayload(run, payload);
    writeFramed(os, kMagic, kVersion, payload.str());
}

cpu::RunResult
loadCapture(std::istream &is)
{
    std::string payload;
    const auto version =
        readFramed(is, kMagic, kVersion, 2, "capture", payload);
    if (version == 1)
        return readCapturePayload(is);
    std::istringstream ps(payload, std::ios::binary);
    return readCapturePayload(ps);
}

void
saveStsStream(const std::vector<Sts> &stream, std::ostream &os)
{
    // Same bytes writeStsPayload would produce, via the buffer
    // encoder the wire hot path uses (one shared v2 serializer).
    writeFramed(os, kStsMagic, kStsVersion,
                encodeStsPayload(stream));
}

std::vector<Sts>
loadStsStream(std::istream &is)
{
    std::string payload;
    const auto version = readFramed(is, kStsMagic, kStsVersion, 2,
                                    "sts stream", payload);
    if (version == 1)
        return readStsPayload(is, version);
    return decodeStsPayload(payload.data(), payload.size());
}

namespace
{

template <typename T>
void
appendRaw(std::string &out, const T &value)
{
    out.append(reinterpret_cast<const char *>(&value), sizeof value);
}

template <typename T>
T
takeRaw(const char *&p, const char *end)
{
    if (std::size_t(end - p) < sizeof(T))
        throw IoError("sts stream: truncated input");
    T value;
    std::memcpy(&value, p, sizeof value);
    p += sizeof value;
    return value;
}

} // namespace

// The buffer codecs below produce/consume exactly the version-2 STS
// payload byte stream, without per-field ostream/istream dispatch:
// they sit on the wire ingestion hot path (one encode + one decode
// per streamed batch), where the stream codec's ~0.5 us/window was
// the single largest per-window cost.

std::string
encodeStsPayload(const std::vector<Sts> &stream)
{
    std::size_t bytes = sizeof(std::uint64_t);
    for (const auto &sts : stream)
        bytes += 4 * sizeof(double) + 2 * sizeof(std::uint64_t) + 2 +
                 sts.peak_freqs.size() * sizeof(double);
    std::string out;
    out.reserve(bytes);
    appendRaw(out, std::uint64_t(stream.size()));
    for (const auto &sts : stream) {
        appendRaw(out, sts.t_start);
        appendRaw(out, sts.t_end);
        appendRaw(out, std::uint64_t(sts.true_region));
        appendRaw(out, std::uint8_t(sts.injected ? 1 : 0));
        appendRaw(out, sts.window_energy);
        appendRaw(out, sts.peak_energy_frac);
        appendRaw(out, std::uint8_t(sts.faulted ? 1 : 0));
        appendRaw(out, std::uint64_t(sts.peak_freqs.size()));
        out.append(reinterpret_cast<const char *>(
                       sts.peak_freqs.data()),
                   sts.peak_freqs.size() * sizeof(double));
    }
    return out;
}

std::vector<Sts>
decodeStsPayload(const char *data, std::size_t size)
{
    const char *p = data;
    const char *const end = data + size;
    const auto count = takeRaw<std::uint64_t>(p, end);
    if (count > (std::uint64_t(1) << 32))
        throw FormatError("sts stream: implausible size");

    std::vector<Sts> stream{};
    stream.resize(std::size_t(count));
    for (auto &sts : stream) {
        sts.t_start = takeRaw<double>(p, end);
        sts.t_end = takeRaw<double>(p, end);
        sts.true_region =
            std::size_t(takeRaw<std::uint64_t>(p, end));
        sts.injected = takeRaw<std::uint8_t>(p, end) != 0;
        sts.window_energy = takeRaw<double>(p, end);
        sts.peak_energy_frac = takeRaw<double>(p, end);
        sts.faulted = takeRaw<std::uint8_t>(p, end) != 0;
        const auto peaks = takeRaw<std::uint64_t>(p, end);
        if (peaks > (std::uint64_t(1) << 20))
            throw FormatError("sts stream: implausible peaks");
        const std::size_t peak_bytes =
            std::size_t(peaks) * sizeof(double);
        if (std::size_t(end - p) < peak_bytes)
            throw IoError("sts stream: truncated input");
        sts.peak_freqs.resize(std::size_t(peaks));
        std::memcpy(sts.peak_freqs.data(), p, peak_bytes);
        p += peak_bytes;
    }
    if (p != end)
        throw FormatError("sts stream: trailing payload bytes");
    return stream;
}

void
saveCaptureFile(const cpu::RunResult &run, const std::string &path)
{
    errno = 0;
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw ioErrorErrno("capture: open for write", path);
    saveCapture(run, os);
    os.flush();
    if (!os)
        throw ioErrorErrno("capture: write", path);
}

cpu::RunResult
loadCaptureFile(const std::string &path)
{
    errno = 0;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw ioErrorErrno("capture: open", path);
    return loadCapture(is);
}

} // namespace eddie::core
