#include "fast_ks.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/special.h"

namespace eddie::core
{

double
ksStatisticSortedRef(const std::vector<double> &sorted_ref,
                     std::span<const double> monitored)
{
    const std::size_t m = sorted_ref.size();
    const std::size_t n = monitored.size();
    if (m == 0 || n == 0)
        return 0.0;

    std::vector<double> mon(monitored.begin(), monitored.end());
    std::sort(mon.begin(), mon.end());

    const double inv_m = 1.0 / double(m);
    const double inv_n = 1.0 / double(n);
    double d = 0.0;

    // Before the first monitored point M = 0; R can rise up to
    // R(mon[0]^-).
    {
        const auto lb = std::lower_bound(sorted_ref.begin(),
                                         sorted_ref.end(), mon[0]);
        d = std::max(d, double(lb - sorted_ref.begin()) * inv_m);
    }
    // Walk distinct monitored values; M only plateaus after the last
    // occurrence of a tie group.
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && mon[j + 1] == mon[i])
            ++j;
        const double level = double(j + 1) * inv_n; // M on [mon[i], next)
        const auto ub = std::upper_bound(sorted_ref.begin(),
                                         sorted_ref.end(), mon[i]);
        const double r_at = double(ub - sorted_ref.begin()) * inv_m;
        d = std::max(d, std::abs(r_at - level));
        const double next =
            (j + 1 < n) ? mon[j + 1] :
            std::numeric_limits<double>::infinity();
        const auto lb = std::lower_bound(sorted_ref.begin(),
                                         sorted_ref.end(), next);
        const double r_before_next =
            double(lb - sorted_ref.begin()) * inv_m;
        d = std::max(d, std::abs(r_before_next - level));
        i = j + 1;
    }
    return d;
}

double
ksCriticalValue(std::size_t m, std::size_t n, double alpha)
{
    if (m == 0 || n == 0)
        return 1.0;
    const double dm = double(m), dn = double(n);
    return stats::kolmogorovCritical(alpha) *
        std::sqrt((dm + dn) / (dm * dn));
}

bool
ksRejectSortedRef(const std::vector<double> &sorted_ref,
                  std::span<const double> monitored, double alpha)
{
    if (sorted_ref.empty() || monitored.empty())
        return false;
    const double d = ksStatisticSortedRef(sorted_ref, monitored);
    return d > ksCriticalValue(sorted_ref.size(), monitored.size(), alpha);
}

} // namespace eddie::core
