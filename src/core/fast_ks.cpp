#include "fast_ks.h"

#include <algorithm>

#include "stats/ks.h"

namespace eddie::core
{

double
ksStatisticSortedRef(const std::vector<double> &sorted_ref,
                     std::span<const double> monitored)
{
    if (sorted_ref.empty() || monitored.empty())
        return 0.0;
    std::vector<double> mon(monitored.begin(), monitored.end());
    std::sort(mon.begin(), mon.end());
    return stats::ksStatisticSorted(sorted_ref, mon);
}

double
ksCriticalValue(std::size_t m, std::size_t n, double alpha)
{
    return stats::ksCritical(m, n, alpha);
}

bool
ksRejectSortedRef(const std::vector<double> &sorted_ref,
                  std::span<const double> monitored, double alpha)
{
    if (sorted_ref.empty() || monitored.empty())
        return false;
    const double d = ksStatisticSortedRef(sorted_ref, monitored);
    return d > ksCriticalValue(sorted_ref.size(), monitored.size(), alpha);
}

} // namespace eddie::core
