/**
 * @file
 * Per-STS signal-quality gate (DESIGN.md §6). Real receivers lose
 * samples, clip, and pick up wideband interference; windows captured
 * during such episodes carry no information about program execution,
 * and K-S-testing them produces rejection streaks the monitor would
 * report as anomalies. The gate scores each window against a running
 * baseline of recent good windows plus the trained model's
 * expectations and tells the monitor which windows to quarantine
 * instead of feeding into its history.
 */

#ifndef EDDIE_CORE_QUALITY_H
#define EDDIE_CORE_QUALITY_H

#include <array>
#include <cstddef>
#include <deque>

#include "model.h"
#include "sts.h"

namespace eddie::core
{

/** Why a window was (or was not) quarantined. */
enum class WindowQuality
{
    Good = 0,
    /** Window energy collapsed far below the running baseline:
     *  sample dropout or receiver squelch. */
    Dropout,
    /** Window energy far above baseline: clipping or a strong
     *  transient parked on the antenna. */
    Saturated,
    /** Energy elevated but spectrally flat where the model expects a
     *  peak comb: wideband interference burying the signal. */
    NoiseFloor,
    /** Structurally invalid features: non-finite or out-of-band peak
     *  frequencies, or a truncated peak list. */
    Malformed,
};

constexpr std::size_t kNumWindowQualities = 5;

/** Quality-gate thresholds. Defaults are deliberately generous: on a
 *  clean channel the gate must be a no-op (verified by test), so each
 *  gate only fires on order-of-magnitude departures. */
struct QualityConfig
{
    bool enabled = true;
    /** Number of recent good-window energies kept for the running
     *  median baseline. */
    std::size_t energy_window = 33;
    /** Good windows required before the energy gates arm; until then
     *  the baseline is too noisy to trust. */
    std::size_t energy_warmup = 8;
    /** Dropout: energy below baseline / this. */
    double energy_drop_ratio = 32.0;
    /** Saturated: energy above baseline * this. */
    double energy_surge_ratio = 32.0;
    /** NoiseFloor: energy above baseline * this while the peak
     *  structure is gone. */
    double noise_energy_ratio = 2.5;
    /** NoiseFloor only applies when the current region's model
     *  expects at least this many peaks. */
    std::size_t min_expected_peaks = 2;
    /** Peak structure counts as "gone" when no real peaks survived
     *  or they hold less than this fraction of window energy. */
    double min_peak_energy_frac = 0.05;
    /** Consecutive quarantined windows that count as an outage; the
     *  monitor drops its history and re-locks once signal returns. */
    std::size_t resync_outage = 4;
};

/** Degraded-mode counters kept by the monitor (surfaced through
 *  metrics::describe). */
struct DegradedStats
{
    /** Windows excluded from the K-S history. */
    std::size_t quarantined = 0;
    /** Quarantine episodes long enough to trigger a resync. */
    std::size_t outages = 0;
    /** Re-lock scans performed after an outage ended. */
    std::size_t resyncs = 0;
    /** Longest quarantine episode, in windows. */
    std::size_t longest_outage = 0;
    /** Quarantined windows by WindowQuality (index = enum value;
     *  the Good slot stays zero). */
    std::array<std::size_t, kNumWindowQualities> by_kind{};
};

/**
 * Scores windows one at a time. The energy baseline is the median of
 * the last energy_window *good* windows — quarantined windows never
 * contaminate it, so a long outage cannot drag the baseline down to
 * meet the degraded signal.
 *
 * Streams written before the quality fields existed carry
 * window_energy == 0; the gate treats that as "unknown" and skips the
 * energy checks (structural checks still apply), so legacy captures
 * monitor exactly as before.
 */
class QualityGate
{
  public:
    QualityGate(const TrainedModel &model, const QualityConfig &cfg);

    /** Scores one window against @p region (the monitor's current
     *  region) and, when Good, folds it into the baseline. */
    WindowQuality assess(const Sts &sts, std::size_t region);

    /** Current median baseline energy (0 before warmup). */
    double baseline() const;

    /** Energy baseline window, oldest first — part of the monitor's
     *  checkpointable state (serve/checkpoint.h). */
    std::vector<double> exportEnergies() const;

    /** Restores a window captured by exportEnergies(); only the
     *  newest energy_window values are kept. */
    void restoreEnergies(const std::vector<double> &energies);

    /** Drops the baseline window, returning the gate to its
     *  just-constructed state (Monitor::reset()). */
    void reset() { energies_.clear(); }

  private:
    const TrainedModel &model_;
    QualityConfig cfg_;
    std::deque<double> energies_;
};

} // namespace eddie::core

#endif // EDDIE_CORE_QUALITY_H
