/**
 * @file
 * Capture files: persist a monitored run's sampled signal and
 * annotations so captures can be analyzed offline, shared, and
 * re-scored against different models — the workflow of a real
 * SDR-based deployment (capture once, analyze many times).
 */

#ifndef EDDIE_CORE_CAPTURE_IO_H
#define EDDIE_CORE_CAPTURE_IO_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cpu/run_result.h"
#include "sts.h"

namespace eddie::core
{

/**
 * Writes a run (power trace + ground-truth annotations) in the
 * binary capture format.
 *
 * Layout: magic "EDDIECAP", u32 version, f64 sample rate, u64 sample
 * count, then the power samples (f64), region ids (u64) and
 * injection flags (u8).
 */
void saveCapture(const cpu::RunResult &run, std::ostream &os);

/** Reads a capture written by saveCapture(). Throws on malformed
 *  input. Only signal-related fields of RunResult are populated. */
cpu::RunResult loadCapture(std::istream &is);

/** Convenience file wrappers; throw std::runtime_error on I/O
 *  failure. */
void saveCaptureFile(const cpu::RunResult &run, const std::string &path);
cpu::RunResult loadCaptureFile(const std::string &path);

/**
 * Writes an extracted STS stream in the binary capture format
 * (magic "EDDIESTS"); the capture cache's disk spill and offline STS
 * analysis use this.
 *
 * Layout: magic, u32 version, u64 STS count, then per STS: t_start,
 * t_end (f64), u64 true_region, u8 injected, u64 peak count and the
 * peak frequencies (f64).
 */
void saveStsStream(const std::vector<Sts> &stream, std::ostream &os);

/** Reads an STS stream written by saveStsStream(). Throws on
 *  malformed input. */
std::vector<Sts> loadStsStream(std::istream &is);

/**
 * Encodes an STS stream as the raw (unframed) v2 payload — the value
 * format of archive-resident streams, e.g. the capture cache's spill
 * segments; integrity comes from the container's per-sector CRCs
 * instead of the stream framing.
 */
std::string encodeStsPayload(const std::vector<Sts> &stream);

/** Decodes encodeStsPayload() output straight from a span (zero-copy
 *  from an archive mapping). Throws IoError/FormatError. */
std::vector<Sts> decodeStsPayload(const char *data, std::size_t size);

/**
 * Shared v2 integrity framing (capture, STS stream, checkpoint
 * files): magic, u32 version, u64 payload length, payload bytes,
 * CRC-32 of the payload. A flipped bit fails the checksum and a short
 * file fails the length, so a corrupt artifact is a typed error
 * instead of silently-wrong state.
 */
void writeFramed(std::ostream &os, const char (&magic)[8],
                 std::uint32_t version, const std::string &payload);

/**
 * Reads and verifies one framed artifact. Returns the stored version;
 * versions below @p min_framed_version are returned with @p payload
 * left empty (legacy layout — the caller parses straight from
 * @p is). Throws IoError on truncation, FormatError on bad
 * magic/version/CRC. @p what names the artifact in error messages.
 */
std::uint32_t readFramed(std::istream &is, const char (&magic)[8],
                         std::uint32_t current_version,
                         std::uint32_t min_framed_version,
                         const char *what, std::string &payload);

} // namespace eddie::core

#endif // EDDIE_CORE_CAPTURE_IO_H
