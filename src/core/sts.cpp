#include "sts.h"

#include <algorithm>

#include "prog/regions.h"

namespace eddie::core
{

double
missingPeakSentinel(double sample_rate)
{
    return sample_rate; // beyond any representable frequency
}

std::vector<Sts>
extractStsStream(const sig::Spectrogram &sg, const cpu::RunResult *annot,
                 std::size_t num_regions, const FeatureConfig &cfg)
{
    std::vector<Sts> out;
    out.reserve(sg.numFrames());
    const double sentinel = missingPeakSentinel(sg.sample_rate);

    // Majority vote scratch: region id -> count. Region ids are dense
    // (< num_regions); kNoRegion votes land in the extra slot.
    std::vector<std::size_t> votes(num_regions + 1, 0);

    for (std::size_t f = 0; f < sg.numFrames(); ++f) {
        Sts sts;
        sts.t_start = sg.frame_time[f];
        sts.t_end = sts.t_start + sg.window_seconds;

        auto peaks = sig::findPeaks(sg.power[f], sg.sample_rate,
                                    cfg.peaks);
        if (cfg.positive_only) {
            std::erase_if(peaks, [](const sig::Peak &p) {
                return p.freq < 0.0;
            });
        }
        if (cfg.max_peaks > 0 && peaks.size() > cfg.max_peaks)
            peaks.resize(cfg.max_peaks);
        sts.peak_freqs.reserve(cfg.max_peaks);
        for (const auto &p : peaks) {
            sts.peak_freqs.push_back(p.freq);
            sts.peak_energy_frac += p.energy_frac;
        }
        while (sts.peak_freqs.size() < cfg.max_peaks)
            sts.peak_freqs.push_back(sentinel);
        for (double v : sg.power[f])
            sts.window_energy += v;

        if (annot != nullptr && !annot->region.empty()) {
            const auto lo = std::size_t(sts.t_start * annot->sample_rate);
            auto hi = std::size_t(sts.t_end * annot->sample_rate);
            hi = std::min(hi, annot->region.size());
            std::fill(votes.begin(), votes.end(), 0);
            bool injected = false;
            for (std::size_t i = lo; i < hi; ++i) {
                const std::size_t r = annot->region[i];
                if (r < num_regions)
                    ++votes[r];
                else
                    ++votes[num_regions];
                if (i < annot->injected.size() && annot->injected[i])
                    injected = true;
            }
            const auto best = std::max_element(votes.begin(), votes.end());
            const auto idx = std::size_t(best - votes.begin());
            sts.true_region = (idx == num_regions || *best == 0) ?
                prog::kNoRegion : idx;
            sts.injected = injected;
        }
        out.push_back(std::move(sts));
    }
    return out;
}

} // namespace eddie::core
