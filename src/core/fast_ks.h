/**
 * @file
 * K-S testing against a pre-sorted reference sample in
 * O(n log n + n log m) for a monitored group of n values — the hot
 * path of both training (group-size sweeps) and monitoring.
 *
 * Produces exactly the same statistic as stats::ksStatistic (verified
 * by unit tests).
 */

#ifndef EDDIE_CORE_FAST_KS_H
#define EDDIE_CORE_FAST_KS_H

#include <span>
#include <vector>

namespace eddie::core
{

/** D statistic between a sorted reference and a small monitored
 *  group. @p sorted_ref must be ascending. */
double ksStatisticSortedRef(const std::vector<double> &sorted_ref,
                            std::span<const double> monitored);

/** Critical value c(alpha) * sqrt((m+n)/(m n)). */
double ksCriticalValue(std::size_t m, std::size_t n, double alpha);

/** Full test: reject when D exceeds the critical value. */
bool ksRejectSortedRef(const std::vector<double> &sorted_ref,
                       std::span<const double> monitored, double alpha);

} // namespace eddie::core

#endif // EDDIE_CORE_FAST_KS_H
