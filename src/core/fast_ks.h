/**
 * @file
 * Compatibility wrappers around the presorted K-S kernels that now
 * live in stats/ks.h (ksStatisticSorted / ksTestSorted /
 * ksCritical). Earlier PRs grew these entry points in core/ before
 * the stats layer had presorted overloads; benches and tests still
 * call them, so they stay as thin forwarding shims. New code should
 * call the stats kernels directly with presorted spans (the Monitor
 * and trainer hot paths do, allocation-free).
 *
 * Produces exactly the same statistic as stats::ksStatistic (verified
 * by unit tests).
 */

#ifndef EDDIE_CORE_FAST_KS_H
#define EDDIE_CORE_FAST_KS_H

#include <span>
#include <vector>

namespace eddie::core
{

/** D statistic between a sorted reference and a small monitored
 *  group. @p sorted_ref must be ascending; @p monitored may be in
 *  any order (it is copied and sorted here — use
 *  stats::ksStatisticSorted with caller scratch on hot paths). */
double ksStatisticSortedRef(const std::vector<double> &sorted_ref,
                            std::span<const double> monitored);

/** Critical value c(alpha) * sqrt((m+n)/(m n)). */
double ksCriticalValue(std::size_t m, std::size_t n, double alpha);

/** Full test: reject when D exceeds the critical value. */
bool ksRejectSortedRef(const std::vector<double> &sorted_ref,
                       std::span<const double> monitored, double alpha);

} // namespace eddie::core

#endif // EDDIE_CORE_FAST_KS_H
