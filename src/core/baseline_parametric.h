/**
 * @file
 * Parametric baseline detector (paper Sec. 4.2, Fig. 2): fit a
 * normal / bi-normal mixture to each peak rank's reference
 * distribution and test monitored groups against the fitted model.
 * The paper rejects this approach because peak-frequency
 * distributions are poor fits for parametric families.
 */

#ifndef EDDIE_CORE_BASELINE_PARAMETRIC_H
#define EDDIE_CORE_BASELINE_PARAMETRIC_H

#include <cstddef>
#include <span>
#include <vector>

#include "model.h"
#include "stats/gmm.h"

namespace eddie::core
{

/** Parametric model of one region: one mixture per peak rank. */
struct ParametricRegion
{
    std::vector<stats::GaussianMixture> per_rank;
    std::size_t group_n = 8;
};

/**
 * Fits @p components Gaussian components to every peak rank of a
 * trained region model.
 */
ParametricRegion fitParametricRegion(const RegionModel &region,
                                     std::size_t components);

/**
 * Group test: as the K-S group test, but each rank uses the
 * one-sample parametric goodness-of-fit test; the group rejects when
 * at least half the ranks reject.
 *
 * @param groups per-rank monitored values (groups[rank] has the n
 *        most recent observations of that rank)
 */
bool parametricGroupRejects(const ParametricRegion &model,
                            const std::vector<std::vector<double>> &groups,
                            double alpha);

} // namespace eddie::core

#endif // EDDIE_CORE_BASELINE_PARAMETRIC_H
