/**
 * @file
 * EDDIE training (paper Sec. 4.1 and 4.3): builds per-region
 * reference peak distributions from labeled STS streams and selects
 * the per-region K-S group size n that minimizes the false-rejection
 * rate at the smallest latency.
 */

#ifndef EDDIE_CORE_TRAINER_H
#define EDDIE_CORE_TRAINER_H

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "model.h"
#include "prog/regions.h"
#include "sts.h"

namespace eddie::core
{

/** Training options. */
struct TrainerConfig
{
    /** K-S significance (paper default: 99 % confidence). */
    double alpha = 0.01;
    /** Candidate group sizes for the n-selection sweep (Fig. 3).
     *  The floor of 8 keeps the K-S critical value below the
     *  separation of concentrated peak distributions, so diffuse
     *  regions still reject clearly-different windows. */
    std::vector<std::size_t> n_grid = {8, 12, 16, 24, 32, 48, 64};
    /** Regions with fewer training STSs than this are marked
     *  untrained. Untrained regions are blind spots (the paper's
     *  coverage losses), so the floor sits just above the smallest
     *  usable K-S group. */
    std::size_t min_sts_per_region = 16;
    /** A larger n is only accepted when it improves the false
     *  rejection rate by more than this. */
    double frr_tolerance = 0.002;
    /**
     * When scanning for the settling point of the FRR-vs-n curve,
     * points this close to the minimum still count as settled; the
     * non-monotone humps this guards against are tens of percent,
     * while sampling noise on a "zero" estimate is well below this.
     */
    double settle_tolerance = 0.02;
    /** Cap on reference-set size per peak rank. */
    std::size_t max_ref = 4000;
    /**
     * A peak rank is only tested when fewer than this fraction of
     * the region's training STSs lack that peak; ranks that are
     * mostly "missing" would otherwise dilute the majority vote.
     * One rank is always kept so that peak-less regions (the paper's
     * GSM case) remain representable.
     */
    double max_missing_frac = 0.5;
    /** A group rejects when at least num_peaks / this ranks reject
     *  (majority by default). */
    std::size_t reject_peak_divisor = 3;
    /**
     * The paper observes that "for most regions the false rejection
     * does reach zero at some value of n". A region whose best
     * achievable false-rejection rate stays above this threshold is
     * not monitorable as trained (e.g. an unbounded timing drift);
     * it is marked untrained — a coverage loss — instead of being
     * allowed to alarm constantly.
     */
    double max_usable_frr = 0.25;
};

/** Per-region outcome of the n-selection sweep (for Fig. 3). */
struct GroupSizeSweepPoint
{
    std::size_t n = 0;
    double false_rejection_rate = 0.0;
};

/** Diagnostics captured while training. */
struct TrainingDiagnostics
{
    /** Per region: the sweep of false rejection rate vs n. */
    std::vector<std::vector<GroupSizeSweepPoint>> sweeps;
    /** Per region: number of training STSs observed. */
    std::vector<std::size_t> sts_count;
};

/**
 * Trains a model from labeled STS streams (one per training run).
 *
 * The per-region work (reference building plus the group-size/FRR
 * sweep, by far the dominant cost) is distributed over @p pool when
 * one is given. Every region writes only its own model and
 * diagnostics slot, so the result is bit-identical for any thread
 * count — see the ThreadPool determinism contract.
 *
 * @param runs STS streams with ground-truth region labels
 * @param regions the program's region state machine
 * @param sentinel missing-peak sentinel used when extracting STSs
 * @param cfg trainer options
 * @param diag optional diagnostics sink
 * @param pool optional thread pool (nullptr = serial)
 */
TrainedModel train(const std::vector<std::vector<Sts>> &runs,
                   const prog::RegionGraph &regions, double sentinel,
                   const TrainerConfig &cfg = TrainerConfig(),
                   TrainingDiagnostics *diag = nullptr,
                   common::ThreadPool *pool = nullptr);

/**
 * False-rejection rate of the K-S group test for one region at group
 * size @p n, evaluated over the training streams themselves (all
 * training runs are injection-free). Exposed for the Fig. 3 bench.
 */
double falseRejectionRate(const RegionModel &region,
                          const std::vector<std::vector<Sts>> &runs,
                          std::size_t region_id, std::size_t n,
                          double alpha, std::size_t reject_peak_divisor);

} // namespace eddie::core

#endif // EDDIE_CORE_TRAINER_H
