#include "trainer.h"

#include <algorithm>
#include <map>
#include <span>

#include "stats/ks.h"

namespace eddie::core
{

namespace
{

/** Consecutive same-region segments of a run's STS stream. */
struct Segment
{
    std::size_t region;
    std::size_t begin; // index into the run's STS vector
    std::size_t end;
};

std::vector<Segment>
segmentRun(const std::vector<Sts> &run)
{
    std::vector<Segment> segs;
    std::size_t i = 0;
    while (i < run.size()) {
        std::size_t j = i;
        while (j < run.size() &&
               run[j].true_region == run[i].true_region) {
            ++j;
        }
        segs.push_back({run[i].true_region, i, j});
        i = j;
    }
    return segs;
}

} // namespace

double
falseRejectionRate(const RegionModel &region,
                   const std::vector<std::vector<Sts>> &runs,
                   std::size_t region_id, std::size_t n, double alpha,
                   std::size_t reject_peak_divisor)
{
    if (region.num_peaks == 0 || n == 0)
        return 0.0;
    const std::size_t reject_threshold = std::max<std::size_t>(
        1, region.num_peaks / reject_peak_divisor);

    // The group-size sweep replays this inner loop for every
    // (start, rank) pair — the dominant training cost. Use the
    // presorted allocation-free kernel against the (already sorted)
    // reference ranks, and hoist the per-rank critical values: they
    // depend only on (m, n), not on the group.
    const bool synced =
        region.sorted.numRanks() == region.ref.size();
    const auto refOf = [&](std::size_t p) {
        return synced ? region.sorted.rank(p)
                      : std::span<const double>(region.ref[p]);
    };
    std::vector<double> crit(region.num_peaks);
    for (std::size_t p = 0; p < region.num_peaks; ++p)
        crit[p] = stats::ksCritical(refOf(p).size(), n, alpha);

    std::size_t groups = 0;
    std::size_t rejected = 0;
    std::vector<double> mon(n);
    for (const auto &run : runs) {
        for (const auto &seg : segmentRun(run)) {
            if (seg.region != region_id || seg.end - seg.begin < n)
                continue;
            for (std::size_t start = seg.begin; start + n <= seg.end;
                 ++start) {
                std::size_t rejecting = 0;
                for (std::size_t p = 0; p < region.num_peaks; ++p) {
                    for (std::size_t k = 0; k < n; ++k)
                        mon[k] = run[start + k].peak_freqs[p];
                    std::sort(mon.begin(), mon.end());
                    const auto ref = refOf(p);
                    if (!ref.empty() && !mon.empty() &&
                        stats::ksStatisticSorted(ref, mon) > crit[p])
                        ++rejecting;
                }
                ++groups;
                if (rejecting >= reject_threshold)
                    ++rejected;
            }
        }
    }
    if (groups == 0)
        return 0.0;
    return double(rejected) / double(groups);
}

TrainedModel
train(const std::vector<std::vector<Sts>> &runs,
      const prog::RegionGraph &regions, double sentinel,
      const TrainerConfig &cfg, TrainingDiagnostics *diag,
      common::ThreadPool *pool)
{
    TrainedModel model;
    model.alpha = cfg.alpha;
    model.sentinel = sentinel;
    model.num_loops = regions.num_loops;
    model.regions.resize(regions.regions.size());

    // Gather per-region STSs.
    std::vector<std::vector<const Sts *>> by_region(
        regions.regions.size());
    for (const auto &run : runs) {
        for (const auto &sts : run) {
            if (sts.true_region < by_region.size())
                by_region[sts.true_region].push_back(&sts);
        }
    }

    // Entry region: most common region of the first STS across runs.
    {
        std::map<std::size_t, std::size_t> firsts;
        for (const auto &run : runs)
            if (!run.empty() &&
                run.front().true_region < model.regions.size()) {
                ++firsts[run.front().true_region];
            }
        std::size_t best = 0, best_count = 0;
        for (const auto &[r, c] : firsts) {
            if (c > best_count) {
                best = r;
                best_count = c;
            }
        }
        model.entry_region = best;
    }

    if (diag != nullptr) {
        diag->sweeps.assign(model.regions.size(), {});
        diag->sts_count.assign(model.regions.size(), 0);
    }

    // Maximum consecutive run length per region bounds usable n.
    std::vector<std::size_t> max_run(model.regions.size(), 0);
    for (const auto &run : runs) {
        for (const auto &seg : segmentRun(run)) {
            if (seg.region < max_run.size()) {
                max_run[seg.region] = std::max(max_run[seg.region],
                                               seg.end - seg.begin);
            }
        }
    }

    // Per-region training is independent: region r writes only
    // model.regions[r] and diag->...[r], and reads only the shared
    // immutable inputs gathered above, so the parallel loop is
    // deterministic regardless of thread count.
    common::forEachIndex(pool, model.regions.size(), [&](std::size_t r) {
        RegionModel &rm = model.regions[r];
        rm.name = regions.regions[r].name;
        rm.succs = regions.regions[r].succs;
        const auto &samples = by_region[r];
        if (diag != nullptr)
            diag->sts_count[r] = samples.size();
        if (samples.size() < cfg.min_sts_per_region)
            return; // stays untrained

        // Number of peak ranks: count ranks where a real (non-
        // sentinel) peak usually exists; mostly-missing ranks would
        // dilute the majority vote (the paper observes per-region
        // peak counts like 15 vs 7). Keep at least one rank so that
        // peak-less regions remain representable.
        const std::size_t stored = samples.front()->peak_freqs.size();
        rm.num_peaks = 0;
        for (std::size_t p = 0; p < stored; ++p) {
            std::size_t missing = 0;
            for (const Sts *s : samples)
                if (s->peak_freqs[p] >= sentinel)
                    ++missing;
            const double frac = double(missing) /
                double(samples.size());
            if (frac < cfg.max_missing_frac)
                rm.num_peaks = p + 1;
        }
        rm.num_peaks = std::max<std::size_t>(rm.num_peaks, 1);

        // Store a few ranks beyond num_peaks: their (mostly
        // "missing peak") distributions let the monitor refuse to
        // accept windows that carry structure where this region has
        // none — see Monitor::regionFit.
        const std::size_t stored_ranks =
            std::min(std::max<std::size_t>(rm.num_peaks, 4), stored);

        rm.ref.assign(stored_ranks, {});
        for (std::size_t p = 0; p < stored_ranks; ++p) {
            auto &ref = rm.ref[p];
            ref.reserve(samples.size());
            for (const Sts *s : samples)
                ref.push_back(s->peak_freqs[p]);
            // Cap the reference set deterministically.
            if (ref.size() > cfg.max_ref) {
                std::vector<double> capped;
                capped.reserve(cfg.max_ref);
                const double step = double(ref.size()) /
                    double(cfg.max_ref);
                for (std::size_t k = 0; k < cfg.max_ref; ++k)
                    capped.push_back(ref[std::size_t(double(k) * step)]);
                ref = std::move(capped);
            }
            std::sort(ref.begin(), ref.end());
        }
        // Pack the sorted ranks into the contiguous presorted layout
        // now, so the group-size sweep below (and every monitor that
        // later shares this model) runs the allocation-free kernels.
        rm.sorted.build(rm.ref);
        rm.trained = true;

        // n selection (paper Sec. 4.3): smallest n whose false
        // rejection rate is within tolerance of the sweep minimum.
        std::vector<GroupSizeSweepPoint> sweep;
        double best_frr = 1.0;
        for (std::size_t n : cfg.n_grid) {
            if (n > max_run[r])
                break;
            const double frr = falseRejectionRate(
                rm, runs, r, n, cfg.alpha, cfg.reject_peak_divisor);
            sweep.push_back({n, frr});
            best_frr = std::min(best_frr, frr);
        }
        if (sweep.empty()) {
            rm.group_n = std::max<std::size_t>(
                2, std::min<std::size_t>(max_run[r],
                                         cfg.n_grid.front()));
        } else if (best_frr > cfg.max_usable_frr) {
            // No group size makes this region's windows consistent
            // with its own training data: unverifiable (see
            // TrainerConfig::max_usable_frr).
            rm.trained = false;
        } else {
            // Settling point: the smallest n from which the false
            // rejection rate *stays* near the sweep minimum. A tiny
            // n can show FRR = 0 purely because the K-S test has no
            // power there (its critical value is unreachable), with
            // a hump at intermediate n — picking before the hump
            // would be a trap.
            rm.group_n = sweep.back().n;
            for (std::size_t i = sweep.size(); i-- > 0;) {
                if (sweep[i].false_rejection_rate >
                    best_frr + cfg.settle_tolerance) {
                    break;
                }
                rm.group_n = sweep[i].n;
            }
        }
        if (diag != nullptr)
            diag->sweeps[r] = std::move(sweep);
    });
    return model;
}

} // namespace eddie::core
