/**
 * @file
 * Typed error taxonomy of the persistence and channel layers.
 *
 * Every failure path that used to throw a bare std::runtime_error now
 * throws one of these, so callers can tell "the file could not be
 * read" (IoError: open failure, short read, write failure) apart from
 * "the bytes are not a valid artifact" (FormatError: bad magic,
 * checksum mismatch, out-of-range value) and from "the channel/fault
 * configuration is invalid" (ChannelFault). All derive from
 * std::runtime_error, so existing catch sites keep working; the
 * CaptureCache uses the IoError/FormatError split to count
 * spill_short_read vs spill_corrupt misses separately.
 *
 * Header-only (no link dependency), so lower layers such as
 * src/faults/ can throw eddie::core::ChannelFault without depending
 * on the core library.
 */

#ifndef EDDIE_CORE_ERRORS_H
#define EDDIE_CORE_ERRORS_H

#include <cerrno>
#include <stdexcept>
#include <string>
#include <system_error>

namespace eddie::core
{

/** Base of all EDDIE-typed errors. */
class Error : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Stream/file-level failure: cannot open, short read, failed
 *  write. The artifact may be fine; the I/O was not completed. */
class IoError : public Error
{
  public:
    using Error::Error;
};

/**
 * Builds an IoError carrying the failed operation, the path, an
 * optional byte offset, and the calling thread's current errno
 * (decoded plus numeric). Call it in the throw expression directly
 * after the failing syscall so errno is still the syscall's:
 *
 *     throw ioErrorErrno("archive: open", path);
 *     throw ioErrorErrno("checkpoint: write", tmp, off);
 *
 * errno == 0 (e.g. a short read that set no error) omits the errno
 * clause rather than inventing one.
 */
inline IoError
ioErrorErrno(const std::string &operation, const std::string &path,
             long long offset = -1)
{
    const int err = errno;
    std::string msg = operation + " failed for " + path;
    if (offset >= 0)
        msg += " at offset " + std::to_string(offset);
    if (err != 0)
        msg += ": " +
               std::error_code(err, std::generic_category()).message() +
               " (errno " + std::to_string(err) + ")";
    return IoError(msg);
}

/** The bytes were read but are not a valid artifact: bad magic or
 *  version, checksum mismatch, non-finite or out-of-range value,
 *  inconsistent counts. */
class FormatError : public Error
{
  public:
    using Error::Error;
};

/** Invalid channel fault-injection configuration (negative rates,
 *  non-finite parameters) — the fault model itself is broken, as
 *  opposed to the channel being degraded. */
class ChannelFault : public Error
{
  public:
    using Error::Error;
};

} // namespace eddie::core

#endif // EDDIE_CORE_ERRORS_H
