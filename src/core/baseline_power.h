/**
 * @file
 * WattsUpDoc-style baseline: system-wide power monitoring without any
 * region model (paper Sec. 6 compares EDDIE against such detectors).
 * Training records the distribution of window-mean power; monitoring
 * flags windows whose mean falls outside the trained percentile band.
 */

#ifndef EDDIE_CORE_BASELINE_POWER_H
#define EDDIE_CORE_BASELINE_POWER_H

#include <cstddef>
#include <vector>

namespace eddie::core
{

/** Window-mean power over sliding windows. */
std::vector<double> windowMeans(const std::vector<double> &power,
                                std::size_t window, std::size_t hop);

/** Trained thresholds of the power baseline. */
struct PowerDetectorModel
{
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Trains the detector: thresholds at the given tail percentile of
 * the pooled training window means.
 *
 * @param tail_pct e.g. 0.5 keeps the central 99 % band
 */
PowerDetectorModel trainPowerDetector(
    const std::vector<std::vector<double>> &training_means,
    double tail_pct = 0.5);

/** Per-window anomaly flags for a monitored run. */
std::vector<bool> powerDetectorFlags(const PowerDetectorModel &model,
                                     const std::vector<double> &means);

} // namespace eddie::core

#endif // EDDIE_CORE_BASELINE_POWER_H
