#include "baseline_power.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace eddie::core
{

std::vector<double>
windowMeans(const std::vector<double> &power, std::size_t window,
            std::size_t hop)
{
    std::vector<double> means;
    if (window == 0 || hop == 0 || power.size() < window)
        return means;
    // Sliding sum for O(1) per step.
    double sum = 0.0;
    for (std::size_t i = 0; i < window; ++i)
        sum += power[i];
    std::size_t start = 0;
    while (start + window <= power.size()) {
        means.push_back(sum / double(window));
        if (start + window + hop > power.size())
            break;
        for (std::size_t i = 0; i < hop; ++i) {
            sum -= power[start + i];
            sum += power[start + window + i];
        }
        start += hop;
    }
    return means;
}

PowerDetectorModel
trainPowerDetector(const std::vector<std::vector<double>> &training_means,
                   double tail_pct)
{
    std::vector<double> all;
    for (const auto &run : training_means)
        all.insert(all.end(), run.begin(), run.end());
    PowerDetectorModel m;
    if (all.empty())
        return m;
    m.lo = stats::percentile(all, tail_pct);
    m.hi = stats::percentile(all, 100.0 - tail_pct);
    return m;
}

std::vector<bool>
powerDetectorFlags(const PowerDetectorModel &model,
                   const std::vector<double> &means)
{
    std::vector<bool> flags(means.size(), false);
    for (std::size_t i = 0; i < means.size(); ++i)
        flags[i] = means[i] < model.lo || means[i] > model.hi;
    return flags;
}

} // namespace eddie::core
