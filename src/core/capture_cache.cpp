#include "capture_cache.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "capture_io.h"
#include "errors.h"

namespace eddie::core
{

namespace
{

constexpr char kSpillMagic[8] = {'E', 'D', 'D', 'I', 'E', 'S', 'P', 'L'};
/** Version 2 embeds the framed (CRC-checked) STS stream format. */
constexpr std::uint32_t kSpillVersion = 2;

std::uint64_t
fnv1a64(const std::string &bytes,
        std::uint64_t h = 1469598103934665603ULL)
{
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * Loads and verifies one spill file. Throws IoError on truncation
 * and FormatError on corruption (the caller counts them apart).
 * Returns nullopt when the stored key differs from @p key — a hash
 * collision with another capture's spill, which is a plain miss,
 * not damage.
 */
std::optional<std::vector<Sts>>
loadSpill(std::istream &is, const std::string &key)
{
    char magic[8];
    is.read(magic, sizeof magic);
    std::uint32_t version = 0;
    is.read(reinterpret_cast<char *>(&version), sizeof version);
    std::uint64_t key_size = 0;
    is.read(reinterpret_cast<char *>(&key_size), sizeof key_size);
    if (!is)
        throw IoError("spill: truncated header");
    if (std::memcmp(magic, kSpillMagic, sizeof magic) != 0)
        throw FormatError("spill: bad magic");
    if (version != kSpillVersion)
        throw FormatError("spill: unsupported version");
    if (key_size > (std::uint64_t(1) << 20))
        throw FormatError("spill: implausible key size");
    std::string stored(std::size_t(key_size), '\0');
    is.read(stored.data(), std::streamsize(stored.size()));
    if (!is)
        throw IoError("spill: truncated key");
    if (stored != key)
        return std::nullopt;
    return loadStsStream(is);
}

} // namespace

namespace
{
/** Namespacing prefix for spill artifacts inside a shared archive
 *  (models and checkpoints use other prefixes). The archive key is
 *  the FULL capture key, so — unlike the hash-named spill_dir files
 *  — a lookup can never collide and needs no key verification. */
constexpr const char *kSpillPrefix = "spill/";
} // namespace

CaptureCache::CaptureCache(CaptureCacheConfig config)
    : config_(std::move(config))
{
    if (!config_.spill_archive.empty()) {
        store::ArchiveConfig arc;
        arc.path = config_.spill_archive;
        archive_ = std::make_unique<store::Archive>(arc);
    }
}

std::string
CaptureCache::spillPath(const std::string &key) const
{
    // Hash-named; collisions are harmless because the file carries
    // the full key, which is verified on load.
    const std::uint64_t a = fnv1a64(key);
    const std::uint64_t b = fnv1a64(key, a ^ 0x9e3779b97f4a7c15ULL);
    char name[48];
    std::snprintf(name, sizeof name, "cap-%016llx%016llx.sts",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    return config_.spill_dir + "/" + name;
}

std::vector<Sts>
CaptureCache::getOrCompute(
    const std::string &key,
    const std::function<std::vector<Sts>()> &compute)
{
    return *getOrComputeShared(key, compute);
}

std::shared_ptr<const std::vector<Sts>>
CaptureCache::getOrComputeShared(
    const std::string &key,
    const std::function<std::vector<Sts>()> &compute)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++stats_.hits;
            return it->second->second;
        }
    }

    // Archive tier: keyed get against the container mmap. Integrity
    // comes from the archive's per-sector CRCs plus the payload
    // decoder's own bounds checks; any damage is a counted soft miss
    // (corrupt vs short read), never a poisoned entry.
    if (archive_) {
        std::span<const char> span;
        switch (archive_->get(kSpillPrefix + key, span)) {
        case store::GetStatus::Ok: {
            bool short_read = false;
            try {
                auto value = std::make_shared<const std::vector<Sts>>(
                    decodeStsPayload(span.data(), span.size()));
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.disk_hits;
                if (index_.find(key) == index_.end())
                    insertLocked(key, value);
                return value;
            } catch (const IoError &) {
                short_read = true;
            } catch (const std::exception &) {
            }
            std::lock_guard<std::mutex> lock(mu_);
            if (short_read)
                ++stats_.spill_short_read;
            else
                ++stats_.spill_corrupt;
            break;
        }
        case store::GetStatus::Corrupt: {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.spill_corrupt;
            break;
        }
        case store::GetStatus::Missing:
            break; // fall through to the legacy spill directory
        }
    }

    // Legacy disk tier: a spill file is trusted only if its stored
    // key matches byte for byte and the embedded stream passes its
    // CRC. A damaged file can cost a recompute but never poison the
    // cache: it is counted (corrupt vs short read) and the lookup
    // proceeds as a miss.
    if (!config_.spill_dir.empty()) {
        std::ifstream is(spillPath(key), std::ios::binary);
        if (is) {
            bool short_read = false;
            bool corrupt = false;
            try {
                auto stream = loadSpill(is, key);
                if (stream.has_value()) {
                    auto value =
                        std::make_shared<const std::vector<Sts>>(
                            std::move(*stream));
                    std::lock_guard<std::mutex> lock(mu_);
                    ++stats_.disk_hits;
                    if (index_.find(key) == index_.end())
                        insertLocked(key, value);
                    return value;
                }
            } catch (const IoError &) {
                short_read = true;
            } catch (const std::exception &) {
                corrupt = true;
            }
            if (short_read || corrupt) {
                std::lock_guard<std::mutex> lock(mu_);
                if (short_read)
                    ++stats_.spill_short_read;
                else
                    ++stats_.spill_corrupt;
            }
        }
    }

    auto value =
        std::make_shared<const std::vector<Sts>>(compute());
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.misses;
        // A racing thread may have inserted the same key while we
        // computed; the values are identical, so keep the first.
        if (index_.find(key) == index_.end())
            insertLocked(key, value);
    }
    return value;
}

void
CaptureCache::insertLocked(
    const std::string &key,
    std::shared_ptr<const std::vector<Sts>> value)
{
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    std::size_t staged = 0;
    while (lru_.size() > config_.capacity) {
        const Entry &victim = lru_.back();
        if (archive_) {
            // Archive tier: stage the victim now, commit the whole
            // eviction wave in one group commit below. Like the
            // legacy path, a failure is a counted soft loss — the
            // entry is still evicted, a later lookup recomputes.
            try {
                archive_->stagePut(kSpillPrefix + victim.first,
                                   encodeStsPayload(*victim.second));
                ++staged;
            } catch (const std::exception &) {
                ++stats_.spill_write_failed;
            }
        } else if (!config_.spill_dir.empty()) {
            // A failed spill (ENOSPC, short write, open failure) is a
            // counted soft failure: the entry is evicted without its
            // spill and the partial file removed so a later lookup
            // recomputes instead of tripping over a truncated
            // artifact. The caller never sees an IoError from here —
            // spilling is an optimization, not a durability promise.
            const std::string path = spillPath(victim.first);
            std::ofstream os(path, std::ios::binary);
            bool ok = bool(os);
            if (ok) {
                os.write(kSpillMagic, sizeof kSpillMagic);
                os.write(reinterpret_cast<const char *>(
                             &kSpillVersion),
                         sizeof kSpillVersion);
                const std::uint64_t key_size = victim.first.size();
                os.write(reinterpret_cast<const char *>(&key_size),
                         sizeof key_size);
                os.write(victim.first.data(),
                         std::streamsize(victim.first.size()));
                try {
                    saveStsStream(*victim.second, os);
                } catch (const std::exception &) {
                    ok = false;
                }
                os.flush();
                ok = ok && bool(os);
                os.close();
            }
            if (ok) {
                ++stats_.spills;
            } else {
                ++stats_.spill_write_failed;
                std::remove(path.c_str());
            }
        }
        ++stats_.evictions;
        index_.erase(victim.first);
        lru_.pop_back();
    }
    if (staged > 0) {
        if (archive_->commit())
            stats_.spills += staged;
        else
            stats_.spill_write_failed += staged;
    }
    stats_.entries = lru_.size();
}

CaptureCacheStats
CaptureCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
CaptureCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
    stats_.entries = 0;
}

} // namespace eddie::core
