/**
 * @file
 * End-to-end experiment pipeline: simulate a workload run, turn the
 * power trace into a captured signal (direct power, as in the paper's
 * Table 2 setup, or through the EM channel, as in Table 1), extract
 * the STS stream, and train/monitor on it.
 */

#ifndef EDDIE_CORE_PIPELINE_H
#define EDDIE_CORE_PIPELINE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "em/emanation.h"
#include "metrics.h"
#include "model.h"
#include "monitor.h"
#include "sts.h"
#include "trainer.h"
#include "workloads/workload.h"

namespace eddie::core
{

class CaptureCache;

/** Which signal the STSs are computed on. */
enum class SignalPath
{
    /** Simulator power trace directly (paper Sec. 5.3, Table 2). */
    Power,
    /** Complex-baseband EM capture with channel noise (paper
     *  Sec. 5.2, Table 1). */
    EmBaseband,
};

/** Everything that parameterizes an experiment. */
struct PipelineConfig
{
    cpu::CoreConfig core;
    power::EnergyParams energy;

    /** STFT window (0.1 ms at the default 20 MS/s power sampling,
     *  matching the paper's window length) and 50 % overlap. */
    std::size_t stft_window = 2048;
    std::size_t stft_hop = 1024;
    sig::WindowType stft_window_fn = sig::WindowType::Hann;

    FeatureConfig features;
    TrainerConfig trainer;
    MonitorConfig monitor;

    SignalPath path = SignalPath::Power;
    em::ChannelConfig channel;

    /** Training runs (paper: 25 on hardware, 10 in simulation). */
    std::size_t train_runs = 10;
    std::uint64_t train_seed_base = 1000;
    std::uint64_t monitor_seed_base = 9000;

    /**
     * Worker threads for training captures, the trainer's group-size
     * sweep, and batch monitoring; 0 = hardware concurrency. Results
     * are bit-identical for any value (see common/thread_pool.h).
     */
    std::size_t threads = 0;

    /**
     * Optional capture memoization cache (see capture_cache.h);
     * null disables memoization. May be shared across Pipeline
     * instances and threads. Because captures are deterministic in
     * their cache key, results are bit-identical with the cache on
     * or off.
     */
    std::shared_ptr<CaptureCache> capture_cache;
};

/** Outcome of monitoring one run. */
struct RunEvaluation
{
    RunMetrics metrics;
    std::vector<AnomalyReport> reports;
    std::vector<StepRecord> records;
    /** Quality-gate counters from the monitor (quality.h). */
    DegradedStats degraded;
};

/**
 * Per-stage wall-clock breakdown of one monitorBatch() call, summed
 * across shard workers. Each stage answers one question about a flat
 * scaling curve: was the time spent obtaining streams (capture),
 * preparing per-run state (setup), stepping the monitor (kernel), or
 * scoring verdicts (score) — and did the pool actually run the
 * requested thread count, or did the hardware clamp it
 * (resolved_threads < requested when hardware concurrency is the
 * binding constraint)?
 */
struct BatchStageTimings
{
    std::size_t requested_threads = 0;
    std::size_t resolved_threads = 0;
    double capture_ms = 0.0;
    double setup_ms = 0.0;
    double kernel_ms = 0.0;
    double score_ms = 0.0;
};

/** Binds a workload to a configuration and runs the experiment
 *  stages. */
class Pipeline
{
  public:
    Pipeline(workloads::Workload workload, PipelineConfig config);

    /** Simulates one run and returns the raw result. */
    cpu::RunResult simulate(std::uint64_t seed,
                            const cpu::InjectionPlan &plan =
                                cpu::InjectionPlan()) const;

    /** Simulates one run and extracts its labeled STS stream. */
    std::vector<Sts> captureRun(std::uint64_t seed,
                                const cpu::InjectionPlan &plan =
                                    cpu::InjectionPlan()) const;

    /**
     * Like captureRun() but returns a shared immutable stream (never
     * null): on a warm cache the monitor hot path reads the cached
     * entry directly instead of copying hundreds of STSs per run.
     * Without a cache this wraps a fresh capture.
     */
    std::shared_ptr<const std::vector<Sts>>
    captureRunShared(std::uint64_t seed,
                     const cpu::InjectionPlan &plan =
                         cpu::InjectionPlan()) const;

    /** STS stream from an already-simulated run. */
    std::vector<Sts> toSts(const cpu::RunResult &rr) const;

    /** Runs train_runs training captures and trains the model. */
    TrainedModel trainModel(TrainingDiagnostics *diag = nullptr) const;

    /** Monitors one (clean or injected) run against a model. */
    RunEvaluation monitorRun(const TrainedModel &model,
                             std::uint64_t seed,
                             const cpu::InjectionPlan &plan =
                                 cpu::InjectionPlan()) const;

    /**
     * Monitors many independent runs, distributing the
     * simulate→capture→monitor chains over config().threads workers.
     * Element i of the result corresponds to seeds[i] (and plans[i]
     * when @p plans is non-empty; plans.size() must then equal
     * seeds.size()), so the output order — and every value in it —
     * is independent of the thread count. This is the Monte-Carlo
     * engine behind the bench/ figures.
     *
     * Seeds are split into one contiguous chunk per resolved worker;
     * each chunk reuses a single shard-local Monitor (reset between
     * runs) as its scratch arena, so the steady-state hot path
     * allocates nothing per run. Stepping a reset monitor is
     * bit-identical to a fresh one, so results are still independent
     * of the thread count. @p timings, when non-null, receives the
     * per-stage breakdown.
     */
    std::vector<RunEvaluation>
    monitorBatch(const TrainedModel &model,
                 const std::vector<std::uint64_t> &seeds,
                 const std::vector<cpu::InjectionPlan> &plans = {},
                 BatchStageTimings *timings = nullptr) const;

    const workloads::Workload &workload() const { return workload_; }
    const PipelineConfig &config() const { return config_; }

  private:
    workloads::Workload workload_;
    PipelineConfig config_;
    /** Seed- and plan-independent prefix of the capture cache key
     *  (program, regions, core, energy, signal chain), serialized
     *  once at construction instead of once per lookup. */
    std::string key_prefix_;
};

/**
 * Stable serialized identity of one captureRun invocation: program
 * code and region graph, initial memory image (folded to a hash),
 * core/energy/STFT/feature/channel configuration, signal path,
 * injection plan, and seed. Two invocations with equal keys produce
 * bit-identical STS streams; anything that can change the stream is
 * part of the key. This is the CaptureCache key used by Pipeline.
 */
std::string captureCacheKey(const workloads::Workload &workload,
                            const PipelineConfig &config,
                            std::uint64_t seed,
                            const cpu::InjectionPlan &plan);

} // namespace eddie::core

#endif // EDDIE_CORE_PIPELINE_H
