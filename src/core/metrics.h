/**
 * @file
 * Evaluation metrics matching the paper's definitions (Sec. 5.2):
 * detection latency, false positives, accuracy, and coverage.
 */

#ifndef EDDIE_CORE_METRICS_H
#define EDDIE_CORE_METRICS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "model.h"
#include "monitor.h"
#include "sts.h"

namespace eddie::core
{

/** Metrics of one monitored run. */
struct RunMetrics
{
    std::size_t groups = 0;
    std::size_t injected_groups = 0;
    std::size_t true_positives = 0;  ///< injected groups reported
    std::size_t false_positives = 0; ///< clean groups reported
    std::size_t false_negatives = 0; ///< injected groups not reported
    /** First report at/after injection start minus injection start,
     *  seconds; negative when nothing was detected. */
    double detection_latency = -1.0;
    /** Steps where the monitor's region matched ground truth. */
    std::size_t covered_steps = 0;
    std::size_t labeled_steps = 0;
    /** Per-region (group count, correct count) for the paper's
     *  per-region-averaged accuracy. */
    std::vector<std::size_t> region_groups;
    std::vector<std::size_t> region_correct;
    /** Steps the quality gate quarantined (no detection decision;
     *  excluded from the counts above). */
    std::size_t degraded_groups = 0;
};

/**
 * Scores one monitored run.
 *
 * A "group" is the sliding K-S window ending at each step; a group
 * is injected when any STS inside the window (n_c most recent) is
 * injected.
 *
 * @param stream the monitored STS stream (with ground-truth labels)
 * @param records the monitor's per-step records
 * @param reports the monitor's anomaly reports
 * @param model for per-region group sizes
 */
RunMetrics scoreRun(const std::vector<Sts> &stream,
                    const std::vector<StepRecord> &records,
                    const std::vector<AnomalyReport> &reports,
                    const TrainedModel &model);

/** Aggregate of many runs, in the units the paper reports. */
struct AggregateMetrics
{
    double detection_latency_ms = -1.0;
    double false_positive_pct = 0.0;
    double accuracy_pct = 0.0;
    double coverage_pct = 0.0;
    double false_negative_pct = 0.0;
    double true_positive_pct = 0.0;
    std::size_t runs_detected = 0;
    std::size_t runs_with_injection = 0;
    /** Share of steps quarantined by the quality gate. */
    double degraded_pct = 0.0;
};

/** Combines per-run metrics (paper-style averages). */
AggregateMetrics aggregate(const std::vector<RunMetrics> &runs);

/**
 * Counters of the capture memoization cache (see capture_cache.h),
 * snapshotted by CaptureCache::stats(). A lookup increments exactly
 * one of hits, disk_hits, or misses.
 */
struct CaptureCacheStats
{
    std::uint64_t hits = 0;      ///< served from memory
    std::uint64_t disk_hits = 0; ///< served from the disk spill
    std::uint64_t misses = 0;    ///< recomputed from the simulator
    std::uint64_t evictions = 0; ///< LRU entries dropped from memory
    std::uint64_t spills = 0;    ///< evictions persisted to disk
    /** Spill files rejected as corrupt (bad magic/CRC/contents);
     *  each such lookup is counted as a miss and recomputed. */
    std::uint64_t spill_corrupt = 0;
    /** Spill files rejected as truncated (short read). */
    std::uint64_t spill_short_read = 0;
    /** Spill writes that failed (ENOSPC, short write, open failure);
     *  a counted soft failure — the entry is evicted without a spill
     *  and the partial file removed, never an error to the caller. */
    std::uint64_t spill_write_failed = 0;
    std::size_t entries = 0;     ///< current in-memory entries

    std::uint64_t lookups() const { return hits + disk_hits + misses; }
    /** Fraction of lookups that skipped the simulator. */
    double hitRate() const
    {
        const std::uint64_t n = lookups();
        return n == 0 ? 0.0 : double(hits + disk_hits) / double(n);
    }
};

/**
 * Counters of the supervised streaming runtime (src/serve/): queue
 * backpressure, source retry/backoff, worker supervision, and
 * checkpointing. Defined here with the other metric structs so
 * describe() overloads live in one place; core has no dependency on
 * the serve layer.
 */
struct ServeStats
{
    std::uint64_t delivered = 0;  ///< STSs pushed into the queue
    std::uint64_t processed = 0;  ///< monitor steps completed
    /** Backpressure: windows evicted by the drop-oldest policy. */
    std::uint64_t dropped_oldest = 0;
    /** Backpressure: pushes that had to wait under the block policy. */
    std::uint64_t blocked_pushes = 0;
    /** Queue condvar wakeups whose predicate was still false (batched
     *  push/pop wakeups exist to keep this near zero). */
    std::uint64_t queue_spurious_wakeups = 0;
    std::uint64_t source_stalls = 0;  ///< pull attempts that stalled
    std::uint64_t source_errors = 0;  ///< transient source errors
    std::uint64_t source_retries = 0; ///< backed-off retry attempts
    /** Retry budgets exhausted; surfaced to the supervisor as a
     *  source failure (restart/escalation path). */
    std::uint64_t source_give_ups = 0;
    std::uint64_t worker_crashes = 0; ///< worker exceptions caught
    std::uint64_t worker_hangs = 0;   ///< watchdog deadline misses
    std::uint64_t worker_restarts = 0;
    /** Shards abandoned after the restarts-per-window budget. */
    std::uint64_t escalations = 0;
    std::uint64_t checkpoints_written = 0;
    std::uint64_t checkpoint_restores = 0;
    std::uint64_t model_reloads = 0;
    /** Total failure-detection-to-restart latency, ms. */
    double restart_latency_ms = 0.0;
    /** Delta-checkpoint pipeline (DESIGN.md §7, format v2): group
     *  commits flushed to the delta log (one buffered write + flush
     *  each, covering every shard's pending deltas). */
    std::uint64_t group_commits = 0;
    /** Full group snapshots rewritten (chain re-anchors). */
    std::uint64_t full_snapshots = 0;
    /** Bytes appended to the delta log. */
    std::uint64_t delta_bytes = 0;
    /** Recovery replays that hit a corrupt/truncated/broken-chain
     *  delta segment and fell back to the state reconstructed so
     *  far (at worst the last full snapshot). */
    std::uint64_t delta_fallbacks = 0;
    /** Delta-log segments discarded by those fallbacks. */
    std::uint64_t delta_segments_dropped = 0;
    /** Per-stage worker time, summed across shards: blocking in
     *  StsQueue::popBatch vs. stepping the monitor vs. cutting
     *  deltas — the breakdown that makes a flat sharding curve
     *  attributable instead of mysterious. */
    double queue_wait_ms = 0.0;
    double step_ms = 0.0;
    double checkpoint_ms = 0.0;
    /** Fleet runtime (serve/tenant.h): tenants and sessions the last
     *  runFleet multiplexed. Zero in single-tenant mode. */
    std::uint64_t tenants = 0;
    std::uint64_t sessions = 0;
    /** Per-tenant circuit breakers tripped (each isolates one tenant
     *  into degraded mode; neighbors keep running). */
    std::uint64_t breaker_trips = 0;
    /** Session opens refused by admission (all ShedReasons). */
    std::uint64_t sessions_rejected = 0;
    /** Windows dropped / feeder naps taken by per-tenant STS/s rate
     *  quotas. */
    std::uint64_t windows_shed = 0;
    std::uint64_t windows_throttled = 0;
    /** Tenant snapshots that existed but failed to decode during
     *  resume (FaultClass::CheckpointDecode trips). */
    std::uint64_t snapshot_decode_failures = 0;
};

/** One-line human-readable summary of the cache counters. */
std::string describe(const CaptureCacheStats &stats);

/** One-line human-readable summary of the serving-runtime
 *  counters. */
std::string describe(const ServeStats &stats);

/** One-line human-readable summary of the monitor's degraded-mode
 *  counters (quality.h). */
std::string describe(const DegradedStats &stats);

} // namespace eddie::core

#endif // EDDIE_CORE_METRICS_H
