/**
 * @file
 * EDDIE's trained model: per region, the reference peak-frequency
 * distributions (one per peak rank) and the region-specific K-S group
 * size n, plus the region state machine (paper Sec. 4.1).
 */

#ifndef EDDIE_CORE_MODEL_H
#define EDDIE_CORE_MODEL_H

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace eddie::core
{

/**
 * Cache-friendly presorted reference layout: every rank's ascending
 * reference values packed into one contiguous buffer, addressed by a
 * rank offset table. Built once at training/model-load time so the
 * monitoring hot path K-S-tests against immutable spans with zero
 * per-call allocation or sorting (stats::ksStatisticSorted).
 */
class SortedReference
{
  public:
    /** Packs @p ranks (each already ascending-sorted) contiguously. */
    void build(const std::vector<std::vector<double>> &ranks);

    /** Number of packed ranks (0 when never built). */
    std::size_t numRanks() const
    {
        return offsets_.empty() ? 0 : offsets_.size() - 1;
    }

    /** Ascending values of rank @p p. */
    std::span<const double> rank(std::size_t p) const
    {
        return {values_.data() + offsets_[p],
                offsets_[p + 1] - offsets_[p]};
    }

  private:
    std::vector<double> values_;
    /** numRanks() + 1 offsets into values_. */
    std::vector<std::size_t> offsets_;
};

/** Model of one region. */
struct RegionModel
{
    /** Region name from the region graph (e.g. "L2"). */
    std::string name;
    /** False when the region never gathered enough training STSs. */
    bool trained = false;
    /** Number of peak ranks tested for this region. */
    std::size_t num_peaks = 0;
    /** K-S group size n selected for this region (paper Sec. 4.3). */
    std::size_t group_n = 8;
    /** Reference peak frequencies per rank, each ascending-sorted. */
    std::vector<std::vector<double>> ref;
    /** Presorted contiguous view of ref — derived, not serialized;
     *  rebuilt by TrainedModel::finalize() (train() and loadModel()
     *  call it; hand-assembled models should too, and the Monitor
     *  builds a private copy when a region was left unfinalized). */
    SortedReference sorted;
    /** Successor region ids in the state machine. */
    std::vector<std::size_t> succs;
};

/** The complete trained model. */
struct TrainedModel
{
    std::vector<RegionModel> regions;
    /** Significance level used in the K-S tests. */
    double alpha = 0.01;
    /** Sentinel used for missing peak ranks (see sts.h). */
    double sentinel = 0.0;
    /** Region the monitor assumes at start-up. */
    std::size_t entry_region = 0;
    /** Number of loop regions (ids [0, num_loops)). */
    std::size_t num_loops = 0;

    std::size_t numRegions() const { return regions.size(); }

    /** Rebuilds every region's SortedReference from its ref ranks.
     *  Call after mutating any region's ref. */
    void finalize();
};

/**
 * Returns a copy of @p model with every trained region's group size
 * forced to @p n — used by the latency/accuracy trade-off sweeps
 * (paper Figures 6, 8, 9, 10, where the x axis is the detection
 * latency implied by n).
 */
TrainedModel withGroupSize(const TrainedModel &model, std::size_t n);

/** Returns a copy with the K-S significance level set to @p alpha
 *  (confidence-level sweep of Fig. 9). */
TrainedModel withAlpha(const TrainedModel &model, double alpha);

/** Serializes the model in a plain text format. */
void saveModel(const TrainedModel &model, std::ostream &os);

/** Parses a model written by saveModel(). Throws on malformed
 *  input. */
TrainedModel loadModel(std::istream &is);

/**
 * Binary model codec — the payload stored under the "model" key of
 * an EDDIEARC archive (store/archive.h). Fixed-width little-endian
 * fields, so loading is bounds-checked memcpy instead of strtod
 * parsing; integrity comes from the archive's per-sector CRCs.
 */
std::string encodeModelBinary(const TrainedModel &model);

/** Decodes encodeModelBinary() output, applying the same validation
 *  rules as the text loader (caps, sorted ranks, finite values) and
 *  finalizing the presorted references. Throws FormatError. */
TrainedModel decodeModelBinary(const char *data, std::size_t size);

/** On-disk model flavors saveModelFile() can produce. */
enum class ModelFormat
{
    Text,    ///< legacy "eddie-model 1" text + #crc32 trailer
    Archive, ///< EDDIEARC container with a binary "model" artifact
};

/**
 * Writes @p path atomically (tmp + rename) in the requested format.
 * Both flavors load back through loadModelFile(); the text flavor
 * stays readable by every pre-archive tool. Throws IoError.
 */
void saveModelFile(const TrainedModel &model, const std::string &path,
                   ModelFormat format = ModelFormat::Text);

/**
 * Format-version switch: sniffs @p path and loads it as an EDDIEARC
 * archive (mmap + CRC-verify + binary decode) or as a legacy text
 * model (parse). This is the loader every tool and the serving
 * runtime's hot reload go through.
 */
TrainedModel loadModelFile(const std::string &path);

} // namespace eddie::core

#endif // EDDIE_CORE_MODEL_H
