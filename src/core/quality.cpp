#include "quality.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace eddie::core
{

QualityGate::QualityGate(const TrainedModel &model,
                         const QualityConfig &cfg)
    : model_(model), cfg_(cfg)
{
}

double
QualityGate::baseline() const
{
    if (energies_.size() < cfg_.energy_warmup)
        return 0.0;
    std::vector<double> sorted(energies_.begin(), energies_.end());
    std::nth_element(sorted.begin(),
                     sorted.begin() + std::ptrdiff_t(sorted.size() / 2),
                     sorted.end());
    return sorted[sorted.size() / 2];
}

std::vector<double>
QualityGate::exportEnergies() const
{
    return {energies_.begin(), energies_.end()};
}

void
QualityGate::restoreEnergies(const std::vector<double> &energies)
{
    energies_.assign(energies.begin(), energies.end());
    while (energies_.size() > cfg_.energy_window)
        energies_.pop_front();
}

WindowQuality
QualityGate::assess(const Sts &sts, std::size_t region)
{
    if (!cfg_.enabled)
        return WindowQuality::Good;

    const RegionModel *rm = region < model_.regions.size() ?
        &model_.regions[region] : nullptr;

    // Structural checks first: these need no baseline and catch
    // frame corruption regardless of channel state.
    std::size_t real_peaks = 0;
    for (double v : sts.peak_freqs) {
        if (!std::isfinite(v) || v < 0.0 || v > model_.sentinel)
            return WindowQuality::Malformed;
        if (v < model_.sentinel)
            ++real_peaks;
    }
    if (rm != nullptr && rm->trained &&
        sts.peak_freqs.size() < rm->ref.size()) {
        // Every in-process STS is padded to max_peaks; a shorter list
        // than the model's rank count means a truncated frame.
        return WindowQuality::Malformed;
    }

    // Energy gates; window_energy == 0 marks a legacy stream without
    // the quality fields, which the gate must not judge.
    if (sts.window_energy > 0.0) {
        const double base = baseline();
        if (base > 0.0) {
            if (sts.window_energy * cfg_.energy_drop_ratio < base)
                return WindowQuality::Dropout;
            if (sts.window_energy > base * cfg_.energy_surge_ratio)
                return WindowQuality::Saturated;
            const bool comb_gone = real_peaks == 0 ||
                sts.peak_energy_frac < cfg_.min_peak_energy_frac;
            if (sts.window_energy > base * cfg_.noise_energy_ratio &&
                comb_gone && rm != nullptr && rm->trained &&
                rm->num_peaks >= cfg_.min_expected_peaks) {
                return WindowQuality::NoiseFloor;
            }
        }
        energies_.push_back(sts.window_energy);
        if (energies_.size() > cfg_.energy_window)
            energies_.pop_front();
    }
    return WindowQuality::Good;
}

} // namespace eddie::core
