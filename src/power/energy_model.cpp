#include "energy_model.h"

#include <cmath>

namespace eddie::power
{

EnergyModel::EnergyModel(const EnergyParams &params, std::size_t l1_bytes,
                         std::size_t l2_bytes, std::size_t pipeline_depth)
    : params_(params)
{
    // First-order CACTI behaviour: access energy ~ sqrt(capacity).
    l1_energy_ = params.l1_ref *
        std::sqrt(double(l1_bytes) / double(32 * 1024));
    l2_energy_ = params.l2_ref *
        std::sqrt(double(l2_bytes) / double(256 * 1024));
    flush_energy_ = params.flush_per_stage * double(pipeline_depth);
}

double
EnergyModel::eventEnergy(Event e) const
{
    switch (e) {
      case Event::IssueBase: return params_.issue_base;
      case Event::AluOp: return params_.alu;
      case Event::MulOp: return params_.mul;
      case Event::DivOp: return params_.div;
      case Event::BranchOp: return params_.branch;
      case Event::L1Access: return l1_energy_;
      case Event::L2Access: return l2_energy_;
      case Event::DramAccess: return params_.dram;
      case Event::PipelineFlush: return flush_energy_;
    }
    return 0.0;
}

} // namespace eddie::power
