/**
 * @file
 * Per-cycle energy accumulation sampled into a power trace, mirroring
 * the paper's setup of sampling the simulator-generated power signal
 * every fixed number of cycles.
 */

#ifndef EDDIE_POWER_POWER_TRACE_H
#define EDDIE_POWER_POWER_TRACE_H

#include <cstdint>
#include <vector>

namespace eddie::power
{

/**
 * Accumulates energy deposited at arbitrary cycles into fixed-width
 * sample buckets (power = energy per bucket).
 */
class PowerTrace
{
  public:
    /**
     * @param cycles_per_sample bucket width (paper: 20 cycles)
     * @param clock_hz simulated core clock, for the sample rate
     */
    PowerTrace(std::uint64_t cycles_per_sample, double clock_hz);

    /** Deposits @p energy at absolute @p cycle. */
    void deposit(std::uint64_t cycle, double energy);

    /**
     * Finalizes the trace up to @p end_cycle, adding
     * @p baseline_per_cycle to every cycle.
     */
    void finalize(std::uint64_t end_cycle, double baseline_per_cycle);

    /** Sample rate of the trace in Hz. */
    double sampleRate() const;

    std::uint64_t cyclesPerSample() const { return cycles_per_sample_; }

    const std::vector<double> &samples() const { return samples_; }
    std::vector<double> takeSamples() { return std::move(samples_); }

    /** Bucket index of a cycle. */
    std::uint64_t sampleOf(std::uint64_t cycle) const
    {
        return cycle / cycles_per_sample_;
    }

  private:
    void ensure(std::uint64_t bucket);

    std::uint64_t cycles_per_sample_;
    double clock_hz_;
    std::vector<double> samples_;
};

} // namespace eddie::power

#endif // EDDIE_POWER_POWER_TRACE_H
