#include "power_trace.h"

#include <stdexcept>

namespace eddie::power
{

PowerTrace::PowerTrace(std::uint64_t cycles_per_sample, double clock_hz)
    : cycles_per_sample_(cycles_per_sample), clock_hz_(clock_hz)
{
    if (cycles_per_sample_ == 0)
        throw std::invalid_argument("PowerTrace: zero bucket width");
    if (clock_hz_ <= 0.0)
        throw std::invalid_argument("PowerTrace: bad clock");
}

void
PowerTrace::ensure(std::uint64_t bucket)
{
    if (bucket >= samples_.size())
        samples_.resize(bucket + 1, 0.0);
}

void
PowerTrace::deposit(std::uint64_t cycle, double energy)
{
    const std::uint64_t b = sampleOf(cycle);
    ensure(b);
    samples_[b] += energy;
}

void
PowerTrace::finalize(std::uint64_t end_cycle, double baseline_per_cycle)
{
    const std::uint64_t last = sampleOf(end_cycle);
    ensure(last);
    for (auto &s : samples_)
        s += baseline_per_cycle * double(cycles_per_sample_);
}

double
PowerTrace::sampleRate() const
{
    return clock_hz_ / double(cycles_per_sample_);
}

} // namespace eddie::power
