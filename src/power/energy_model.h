/**
 * @file
 * Activity-event energy model (WATTCH/CACTI-style role).
 *
 * Converts microarchitectural events into energy. Only the *time
 * structure* of the resulting power trace matters to EDDIE; absolute
 * values are in arbitrary nanojoule-like units. Cache access energy
 * grows with the square root of capacity, the usual CACTI first-order
 * behaviour.
 */

#ifndef EDDIE_POWER_ENERGY_MODEL_H
#define EDDIE_POWER_ENERGY_MODEL_H

#include <cstddef>

namespace eddie::power
{

/** Event kinds that consume dynamic energy. */
enum class Event
{
    IssueBase,   ///< fetch/decode/issue overhead of any instruction
    AluOp,       ///< simple integer ALU operation
    MulOp,       ///< integer multiply
    DivOp,       ///< integer divide
    BranchOp,    ///< branch resolution + predictor access
    L1Access,    ///< L1 data cache access (hit or start of miss)
    L2Access,    ///< L2 access on an L1 miss
    DramAccess,  ///< DRAM access on an L2 miss
    PipelineFlush, ///< branch misprediction recovery
};

/** Energy model parameters. */
struct EnergyParams
{
    double issue_base = 0.10;
    double alu = 0.08;
    double mul = 0.30;
    double div = 0.80;
    double branch = 0.06;
    /** L1 access energy at the reference 32 KB capacity. */
    double l1_ref = 0.20;
    /** L2 access energy at the reference 256 KB capacity. */
    double l2_ref = 0.90;
    double dram = 6.0;
    double flush_per_stage = 0.15;
    /** Static + clock-tree energy per cycle. */
    double baseline_per_cycle = 0.35;
};

/** Computes per-event energies for a concrete configuration. */
class EnergyModel
{
  public:
    /**
     * @param params base energies
     * @param l1_bytes L1 capacity (scales L1Access energy)
     * @param l2_bytes L2 capacity (scales L2Access energy)
     * @param pipeline_depth scales PipelineFlush energy
     */
    EnergyModel(const EnergyParams &params, std::size_t l1_bytes,
                std::size_t l2_bytes, std::size_t pipeline_depth);

    /** Dynamic energy of one event occurrence. */
    double eventEnergy(Event e) const;

    /** Static energy consumed every cycle regardless of activity. */
    double baselinePerCycle() const { return params_.baseline_per_cycle; }

  private:
    EnergyParams params_;
    double l1_energy_;
    double l2_energy_;
    double flush_energy_;
};

} // namespace eddie::power

#endif // EDDIE_POWER_ENERGY_MODEL_H
