#include "program.h"

#include <sstream>

namespace eddie::prog
{

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
        return true;
      default:
        return false;
    }
}

bool
isConditionalBranch(Opcode op)
{
    return isControl(op) && op != Opcode::Jmp;
}

bool
isMemory(Opcode op)
{
    return op == Opcode::Ld || op == Opcode::St;
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Addi: return "addi";
      case Opcode::Li: return "li";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jmp: return "jmp";
      case Opcode::Halt: return "halt";
    }
    return "???";
}

std::string
disassemble(const Instr &instr)
{
    std::ostringstream os;
    os << opcodeName(instr.op);
    switch (instr.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      case Opcode::Li:
        os << " r" << int(instr.rd) << ", " << instr.imm;
        break;
      case Opcode::Addi:
        os << " r" << int(instr.rd) << ", r" << int(instr.rs1) << ", "
           << instr.imm;
        break;
      case Opcode::Ld:
        os << " r" << int(instr.rd) << ", [r" << int(instr.rs1) << "+"
           << instr.imm << "]";
        break;
      case Opcode::St:
        os << " [r" << int(instr.rs1) << "+" << instr.imm << "], r"
           << int(instr.rs2);
        break;
      case Opcode::Jmp:
        os << " " << instr.imm;
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        os << " r" << int(instr.rs1) << ", r" << int(instr.rs2) << ", "
           << instr.imm;
        break;
      default:
        os << " r" << int(instr.rd) << ", r" << int(instr.rs1) << ", r"
           << int(instr.rs2);
        break;
    }
    return os.str();
}

} // namespace eddie::prog
