#include "regions.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace eddie::prog
{

std::size_t
RegionGraph::transitionId(std::size_t from_loop, std::size_t to_loop) const
{
    for (std::size_t i = num_loops; i < regions.size(); ++i) {
        if (regions[i].from_loop == from_loop &&
            regions[i].to_loop == to_loop) {
            return i;
        }
    }
    return kNoRegion;
}

RegionGraph
buildRegionGraph(const Program &program, const Cfg &cfg,
                 const std::vector<Loop> &loops)
{
    RegionGraph rg;

    // Outermost loop nests become loop regions.
    std::vector<std::size_t> outer; // indices into `loops`
    for (std::size_t i = 0; i < loops.size(); ++i)
        if (loops[i].parent == Loop::npos)
            outer.push_back(i);
    rg.num_loops = outer.size();

    // Map each block to its outer loop nest (or kNoRegion). Inner
    // loops map to the enclosing outermost nest.
    std::vector<std::size_t> nest_of_block(cfg.numBlocks(), kNoRegion);
    for (std::size_t oi = 0; oi < outer.size(); ++oi)
        for (std::size_t b : loops[outer[oi]].blocks)
            nest_of_block[b] = oi;

    rg.loop_region_of_instr.assign(program.code.size(), kNoRegion);
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        const std::size_t b = cfg.block_of_instr[i];
        rg.loop_region_of_instr[i] = nest_of_block[b];
    }

    for (std::size_t oi = 0; oi < outer.size(); ++oi) {
        Region r;
        r.kind = Region::Kind::Loop;
        r.loop = oi;
        std::ostringstream name;
        name << "L" << oi;
        r.name = name.str();
        r.header_instr = cfg.blocks[loops[outer[oi]].header].first;
        // "Hot" loop of the nest: the deepest loop with a
        // substantial body. Tiny innermost loops (a handful of
        // instructions, e.g. an early-exit compare) often execute
        // rarely, so an iteration-triggered injection there would
        // be a no-op; require a minimum body size before preferring
        // depth.
        constexpr std::size_t min_body_instrs = 12;
        std::size_t best_depth = 0;
        bool best_substantial = false;
        r.hot_header_instr = r.header_instr;
        for (const auto &l : loops) {
            const std::size_t hb = l.header;
            if (nest_of_block[hb] != oi)
                continue;
            std::size_t body = 0;
            for (std::size_t blk : l.blocks)
                body += cfg.blocks[blk].size();
            const bool substantial = body >= min_body_instrs;
            const bool better =
                (substantial && !best_substantial) ||
                (substantial == best_substantial &&
                 l.depth >= best_depth);
            if (better) {
                best_depth = l.depth;
                best_substantial = substantial;
                r.hot_header_instr = cfg.blocks[hb].first;
            }
        }
        rg.regions.push_back(std::move(r));
    }

    // Discover transitions by walking non-loop blocks from each loop
    // exit (and from the program entry) until the next loop nest.
    std::set<std::pair<std::size_t, std::size_t>> transitions;

    auto walk = [&](std::size_t from_nest,
                    const std::vector<std::size_t> &starts) {
        std::set<std::size_t> seen;
        std::vector<std::size_t> work(starts);
        bool reaches_exit = false;
        std::set<std::size_t> reached;
        while (!work.empty()) {
            const std::size_t b = work.back();
            work.pop_back();
            if (!seen.insert(b).second)
                continue;
            if (nest_of_block[b] != kNoRegion) {
                reached.insert(nest_of_block[b]);
                continue; // stop at a loop region
            }
            if (cfg.blocks[b].succs.empty())
                reaches_exit = true;
            for (std::size_t s : cfg.blocks[b].succs)
                work.push_back(s);
        }
        for (std::size_t to : reached)
            transitions.emplace(from_nest, to);
        if (reaches_exit)
            transitions.emplace(from_nest, kBoundary);
    };

    // From program entry.
    if (!cfg.blocks.empty()) {
        if (nest_of_block[0] != kNoRegion)
            transitions.emplace(kBoundary, nest_of_block[0]);
        else
            walk(kBoundary, {0});
    }

    // From each loop nest's exit edges.
    for (std::size_t oi = 0; oi < outer.size(); ++oi) {
        std::vector<std::size_t> starts;
        bool direct_exit = false;
        std::set<std::size_t> direct_loops;
        for (std::size_t b : loops[outer[oi]].blocks) {
            for (std::size_t s : cfg.blocks[b].succs) {
                if (nest_of_block[s] == oi)
                    continue; // stays inside the nest
                if (nest_of_block[s] != kNoRegion) {
                    direct_loops.insert(nest_of_block[s]);
                } else {
                    starts.push_back(s);
                }
            }
            // A Halt inside the loop body exits the program.
            const auto &blk = cfg.blocks[b];
            if (program.code[blk.last - 1].op == Opcode::Halt)
                direct_exit = true;
        }
        for (std::size_t to : direct_loops)
            transitions.emplace(oi, to);
        if (direct_exit)
            transitions.emplace(oi, kBoundary);
        if (!starts.empty())
            walk(oi, starts);
    }

    for (const auto &[from, to] : transitions) {
        Region r;
        r.kind = Region::Kind::Transition;
        r.from_loop = from;
        r.to_loop = to;
        std::ostringstream name;
        name << "T(";
        if (from == kBoundary)
            name << "entry";
        else
            name << "L" << from;
        name << "->";
        if (to == kBoundary)
            name << "exit";
        else
            name << "L" << to;
        name << ")";
        r.name = name.str();
        rg.regions.push_back(std::move(r));
    }

    // Successor edges: loop region -> its outgoing transitions;
    // transition -> its target loop region.
    for (std::size_t i = rg.num_loops; i < rg.regions.size(); ++i) {
        const Region &t = rg.regions[i];
        if (t.from_loop != kBoundary)
            rg.regions[t.from_loop].succs.push_back(i);
        if (t.to_loop != kBoundary)
            rg.regions[i].succs.push_back(t.to_loop);
    }
    return rg;
}

RegionGraph
analyzeProgram(const Program &program)
{
    const Cfg cfg = buildCfg(program);
    const auto loops = findLoops(cfg);
    return buildRegionGraph(program, cfg, loops);
}

} // namespace eddie::prog
