/**
 * @file
 * A small assembler-style DSL for constructing Programs with labels
 * and forward references. All workloads are written against this.
 */

#ifndef EDDIE_PROG_BUILDER_H
#define EDDIE_PROG_BUILDER_H

#include <cstdint>
#include <string>
#include <vector>

#include "program.h"

namespace eddie::prog
{

/** Opaque label handle returned by ProgramBuilder::newLabel(). */
struct Label
{
    std::size_t id = 0;
};

/**
 * Builds a Program instruction by instruction.
 *
 * Labels may be referenced before being bound; take() patches all
 * forward references and verifies that every referenced label was
 * bound.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name = "");

    /** Creates a fresh unbound label. */
    Label newLabel();
    /** Binds @p label to the next emitted instruction. */
    void bind(Label label);

    // Register-register ALU.
    void add(int rd, int rs1, int rs2) { emit3(Opcode::Add, rd, rs1, rs2); }
    void sub(int rd, int rs1, int rs2) { emit3(Opcode::Sub, rd, rs1, rs2); }
    void mul(int rd, int rs1, int rs2) { emit3(Opcode::Mul, rd, rs1, rs2); }
    void div(int rd, int rs1, int rs2) { emit3(Opcode::Div, rd, rs1, rs2); }
    void and_(int rd, int rs1, int rs2) { emit3(Opcode::And, rd, rs1, rs2); }
    void or_(int rd, int rs1, int rs2) { emit3(Opcode::Or, rd, rs1, rs2); }
    void xor_(int rd, int rs1, int rs2) { emit3(Opcode::Xor, rd, rs1, rs2); }
    void shl(int rd, int rs1, int rs2) { emit3(Opcode::Shl, rd, rs1, rs2); }
    void shr(int rd, int rs1, int rs2) { emit3(Opcode::Shr, rd, rs1, rs2); }

    // Immediates and memory.
    void addi(int rd, int rs1, std::int64_t imm);
    void li(int rd, std::int64_t imm);
    void ld(int rd, int rs1, std::int64_t offset = 0);
    void st(int rs1_addr, int rs2_value, std::int64_t offset = 0);
    void nop();

    // Control flow.
    void beq(int rs1, int rs2, Label target);
    void bne(int rs1, int rs2, Label target);
    void blt(int rs1, int rs2, Label target);
    void bge(int rs1, int rs2, Label target);
    void jmp(Label target);
    void halt();

    /** Index the next instruction will occupy. */
    std::size_t here() const { return code_.size(); }

    /** Finalizes and returns the program; the builder is left empty. */
    Program take();

  private:
    void emit3(Opcode op, int rd, int rs1, int rs2);
    void emitBranch(Opcode op, int rs1, int rs2, Label target);

    std::string name_;
    std::vector<Instr> code_;
    /** label id -> bound instruction index (or npos). */
    std::vector<std::size_t> label_pos_;
    /** (instruction index, label id) pairs awaiting patching. */
    std::vector<std::pair<std::size_t, std::size_t>> fixups_;

    static constexpr std::size_t npos = std::size_t(-1);
};

} // namespace eddie::prog

#endif // EDDIE_PROG_BUILDER_H
