/**
 * @file
 * Dominator analysis and natural-loop detection.
 */

#ifndef EDDIE_PROG_LOOPS_H
#define EDDIE_PROG_LOOPS_H

#include <cstddef>
#include <vector>

#include "cfg.h"

namespace eddie::prog
{

/**
 * Immediate dominators of every reachable block (Cooper-Harvey-
 * Kennedy iterative algorithm). idom[entry] == entry; unreachable
 * blocks get npos.
 */
std::vector<std::size_t> immediateDominators(const Cfg &cfg);

/** True when @p a dominates @p b under the given idom tree. */
bool dominates(const std::vector<std::size_t> &idom, std::size_t a,
               std::size_t b);

/** One natural loop. */
struct Loop
{
    /** Header block id. */
    std::size_t header = 0;
    /** All block ids in the loop body (header included). */
    std::vector<std::size_t> blocks;
    /** Index of the enclosing loop in the forest, or npos. */
    std::size_t parent = std::size_t(-1);
    /** Nesting depth; 0 for outermost loops. */
    std::size_t depth = 0;

    static constexpr std::size_t npos = std::size_t(-1);
};

/**
 * All natural loops of the CFG. Loops sharing a header are merged
 * (standard practice). Result is sorted so that parents precede
 * children; parent/depth fields describe the nesting forest.
 */
std::vector<Loop> findLoops(const Cfg &cfg);

} // namespace eddie::prog

#endif // EDDIE_PROG_LOOPS_H
