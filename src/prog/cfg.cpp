#include "cfg.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace eddie::prog
{

Cfg
buildCfg(const Program &program)
{
    Cfg cfg;
    const auto &code = program.code;
    if (code.empty())
        return cfg;

    // Leaders: entry, branch targets, and fall-throughs after control
    // transfers (and after Halt).
    std::set<std::size_t> leaders;
    leaders.insert(0);
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instr &in = code[i];
        if (isControl(in.op)) {
            const auto target = std::size_t(in.imm);
            if (target >= code.size())
                throw std::out_of_range("buildCfg: branch target OOB");
            leaders.insert(target);
            if (i + 1 < code.size())
                leaders.insert(i + 1);
        } else if (in.op == Opcode::Halt && i + 1 < code.size()) {
            leaders.insert(i + 1);
        }
    }

    // Carve blocks between consecutive leaders.
    std::vector<std::size_t> starts(leaders.begin(), leaders.end());
    cfg.block_of_instr.assign(code.size(), 0);
    for (std::size_t b = 0; b < starts.size(); ++b) {
        BasicBlock blk;
        blk.first = starts[b];
        blk.last = (b + 1 < starts.size()) ? starts[b + 1] : code.size();
        for (std::size_t i = blk.first; i < blk.last; ++i)
            cfg.block_of_instr[i] = b;
        cfg.blocks.push_back(blk);
    }

    // Edges.
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        BasicBlock &blk = cfg.blocks[b];
        const Instr &term = code[blk.last - 1];
        auto link = [&](std::size_t to) {
            auto &s = cfg.blocks[b].succs;
            if (std::find(s.begin(), s.end(), to) == s.end()) {
                s.push_back(to);
                cfg.blocks[to].preds.push_back(b);
            }
        };
        if (term.op == Opcode::Halt)
            continue;
        if (isControl(term.op)) {
            link(cfg.block_of_instr[std::size_t(term.imm)]);
            if (isConditionalBranch(term.op) && blk.last < code.size())
                link(cfg.block_of_instr[blk.last]);
        } else if (blk.last < code.size()) {
            link(cfg.block_of_instr[blk.last]);
        }
    }
    return cfg;
}

} // namespace eddie::prog
