/**
 * @file
 * The small RISC ISA executed by the simulated cores, and the program
 * container.
 *
 * The ISA is deliberately minimal: 32 64-bit integer registers,
 * word-addressed memory, register-register ALU operations, loads and
 * stores with immediate offsets, and direct conditional branches. It
 * is rich enough to express the MiBench-like workloads' loop nests
 * while keeping CFG analysis and timing simulation simple.
 */

#ifndef EDDIE_PROG_PROGRAM_H
#define EDDIE_PROG_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace eddie::prog
{

/** Number of architectural integer registers. */
constexpr std::size_t kNumRegs = 32;

/** Operation codes of the simulated ISA. */
enum class Opcode : std::uint8_t
{
    Nop,
    Add,  ///< rd = rs1 + rs2
    Sub,  ///< rd = rs1 - rs2
    Mul,  ///< rd = rs1 * rs2
    Div,  ///< rd = rs1 / rs2 (0 when rs2 == 0)
    And,  ///< rd = rs1 & rs2
    Or,   ///< rd = rs1 | rs2
    Xor,  ///< rd = rs1 ^ rs2
    Shl,  ///< rd = rs1 << (rs2 & 63)
    Shr,  ///< rd = uint64(rs1) >> (rs2 & 63)
    Addi, ///< rd = rs1 + imm
    Li,   ///< rd = imm
    Ld,   ///< rd = mem[rs1 + imm]
    St,   ///< mem[rs1 + imm] = rs2
    Beq,  ///< if (rs1 == rs2) pc = imm
    Bne,  ///< if (rs1 != rs2) pc = imm
    Blt,  ///< if (rs1 <  rs2) pc = imm
    Bge,  ///< if (rs1 >= rs2) pc = imm
    Jmp,  ///< pc = imm
    Halt, ///< stop execution
};

/** One instruction. Branch/jump targets are absolute indices in imm. */
struct Instr
{
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int64_t imm = 0;
};

/** True for Beq/Bne/Blt/Bge/Jmp. */
bool isControl(Opcode op);

/** True for conditional branches (not Jmp). */
bool isConditionalBranch(Opcode op);

/** True for Ld/St. */
bool isMemory(Opcode op);

/** Mnemonic for disassembly and error messages. */
std::string opcodeName(Opcode op);

/** A complete program: straight code array, entry at index 0. */
struct Program
{
    std::vector<Instr> code;
    /** Optional human-readable name. */
    std::string name;

    std::size_t size() const { return code.size(); }
};

/** One-line disassembly of an instruction. */
std::string disassemble(const Instr &instr);

} // namespace eddie::prog

#endif // EDDIE_PROG_PROGRAM_H
