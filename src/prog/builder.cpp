#include "builder.h"

#include <stdexcept>

namespace eddie::prog
{

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name))
{
}

Label
ProgramBuilder::newLabel()
{
    label_pos_.push_back(npos);
    return Label{label_pos_.size() - 1};
}

void
ProgramBuilder::bind(Label label)
{
    if (label.id >= label_pos_.size())
        throw std::out_of_range("ProgramBuilder::bind: unknown label");
    if (label_pos_[label.id] != npos)
        throw std::logic_error("ProgramBuilder::bind: label bound twice");
    label_pos_[label.id] = code_.size();
}

void
ProgramBuilder::emit3(Opcode op, int rd, int rs1, int rs2)
{
    Instr i;
    i.op = op;
    i.rd = std::uint8_t(rd);
    i.rs1 = std::uint8_t(rs1);
    i.rs2 = std::uint8_t(rs2);
    code_.push_back(i);
}

void
ProgramBuilder::addi(int rd, int rs1, std::int64_t imm)
{
    Instr i;
    i.op = Opcode::Addi;
    i.rd = std::uint8_t(rd);
    i.rs1 = std::uint8_t(rs1);
    i.imm = imm;
    code_.push_back(i);
}

void
ProgramBuilder::li(int rd, std::int64_t imm)
{
    Instr i;
    i.op = Opcode::Li;
    i.rd = std::uint8_t(rd);
    i.imm = imm;
    code_.push_back(i);
}

void
ProgramBuilder::ld(int rd, int rs1, std::int64_t offset)
{
    Instr i;
    i.op = Opcode::Ld;
    i.rd = std::uint8_t(rd);
    i.rs1 = std::uint8_t(rs1);
    i.imm = offset;
    code_.push_back(i);
}

void
ProgramBuilder::st(int rs1_addr, int rs2_value, std::int64_t offset)
{
    Instr i;
    i.op = Opcode::St;
    i.rs1 = std::uint8_t(rs1_addr);
    i.rs2 = std::uint8_t(rs2_value);
    i.imm = offset;
    code_.push_back(i);
}

void
ProgramBuilder::nop()
{
    code_.push_back(Instr{});
}

void
ProgramBuilder::emitBranch(Opcode op, int rs1, int rs2, Label target)
{
    if (target.id >= label_pos_.size())
        throw std::out_of_range("ProgramBuilder: unknown branch label");
    Instr i;
    i.op = op;
    i.rs1 = std::uint8_t(rs1);
    i.rs2 = std::uint8_t(rs2);
    fixups_.emplace_back(code_.size(), target.id);
    code_.push_back(i);
}

void
ProgramBuilder::beq(int rs1, int rs2, Label target)
{
    emitBranch(Opcode::Beq, rs1, rs2, target);
}

void
ProgramBuilder::bne(int rs1, int rs2, Label target)
{
    emitBranch(Opcode::Bne, rs1, rs2, target);
}

void
ProgramBuilder::blt(int rs1, int rs2, Label target)
{
    emitBranch(Opcode::Blt, rs1, rs2, target);
}

void
ProgramBuilder::bge(int rs1, int rs2, Label target)
{
    emitBranch(Opcode::Bge, rs1, rs2, target);
}

void
ProgramBuilder::jmp(Label target)
{
    emitBranch(Opcode::Jmp, 0, 0, target);
}

void
ProgramBuilder::halt()
{
    Instr i;
    i.op = Opcode::Halt;
    code_.push_back(i);
}

Program
ProgramBuilder::take()
{
    for (const auto &[pos, label] : fixups_) {
        if (label_pos_[label] == npos)
            throw std::logic_error("ProgramBuilder::take: unbound label");
        code_[pos].imm = std::int64_t(label_pos_[label]);
    }
    Program p;
    p.name = std::move(name_);
    p.code = std::move(code_);
    code_.clear();
    label_pos_.clear();
    fixups_.clear();
    return p;
}

} // namespace eddie::prog
