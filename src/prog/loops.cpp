#include "loops.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace eddie::prog
{

namespace
{

constexpr std::size_t npos = std::size_t(-1);

/** Reverse postorder over the CFG from the entry block. */
std::vector<std::size_t>
reversePostorder(const Cfg &cfg)
{
    std::vector<std::size_t> order;
    std::vector<int> state(cfg.numBlocks(), 0); // 0 new, 1 open, 2 done
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        if (next < cfg.blocks[b].succs.size()) {
            const std::size_t s = cfg.blocks[b].succs[next++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            state[b] = 2;
            order.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

} // namespace

std::vector<std::size_t>
immediateDominators(const Cfg &cfg)
{
    const std::size_t n = cfg.numBlocks();
    std::vector<std::size_t> idom(n, npos);
    if (n == 0)
        return idom;

    const auto rpo = reversePostorder(cfg);
    std::vector<std::size_t> rpo_index(n, npos);
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpo_index[rpo[i]] = i;

    auto intersect = [&](std::size_t a, std::size_t b) {
        while (a != b) {
            while (rpo_index[a] > rpo_index[b])
                a = idom[a];
            while (rpo_index[b] > rpo_index[a])
                b = idom[b];
        }
        return a;
    };

    idom[0] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 1; i < rpo.size(); ++i) {
            const std::size_t b = rpo[i];
            std::size_t new_idom = npos;
            for (std::size_t p : cfg.blocks[b].preds) {
                if (rpo_index[p] == npos || idom[p] == npos)
                    continue; // unreachable or unprocessed
                new_idom = (new_idom == npos) ? p : intersect(p, new_idom);
            }
            if (new_idom != npos && idom[b] != new_idom) {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

bool
dominates(const std::vector<std::size_t> &idom, std::size_t a, std::size_t b)
{
    if (b >= idom.size() || idom[b] == npos)
        return false;
    std::size_t cur = b;
    while (true) {
        if (cur == a)
            return true;
        if (cur == idom[cur])
            return false; // reached entry
        cur = idom[cur];
    }
}

std::vector<Loop>
findLoops(const Cfg &cfg)
{
    std::vector<Loop> loops;
    if (cfg.numBlocks() == 0)
        return loops;
    const auto idom = immediateDominators(cfg);

    // Natural loop per back edge; merge loops sharing a header.
    std::map<std::size_t, std::set<std::size_t>> body_of_header;
    for (std::size_t b = 0; b < cfg.numBlocks(); ++b) {
        for (std::size_t s : cfg.blocks[b].succs) {
            if (!dominates(idom, s, b))
                continue; // not a back edge
            auto &body = body_of_header[s];
            body.insert(s);
            // Reverse flood fill from the latch, stopping at header.
            std::vector<std::size_t> work{b};
            while (!work.empty()) {
                const std::size_t cur = work.back();
                work.pop_back();
                if (!body.insert(cur).second)
                    continue;
                for (std::size_t p : cfg.blocks[cur].preds)
                    if (!body.count(p))
                        work.push_back(p);
            }
        }
    }

    for (const auto &[header, body] : body_of_header) {
        Loop l;
        l.header = header;
        l.blocks.assign(body.begin(), body.end());
        loops.push_back(std::move(l));
    }

    // Nesting: loop A is the parent of B when A != B, A contains B's
    // header, and A is the smallest such loop.
    for (std::size_t i = 0; i < loops.size(); ++i) {
        std::size_t best = Loop::npos;
        std::size_t best_size = npos;
        for (std::size_t j = 0; j < loops.size(); ++j) {
            if (i == j)
                continue;
            const auto &cand = loops[j].blocks;
            if (!std::binary_search(cand.begin(), cand.end(),
                                    loops[i].header)) {
                continue;
            }
            if (loops[j].header == loops[i].header)
                continue; // merged headers cannot happen here
            if (cand.size() < best_size) {
                best = j;
                best_size = cand.size();
            }
        }
        loops[i].parent = best;
    }
    for (std::size_t i = 0; i < loops.size(); ++i) {
        std::size_t d = 0;
        std::size_t p = loops[i].parent;
        while (p != Loop::npos) {
            ++d;
            p = loops[p].parent;
        }
        loops[i].depth = d;
    }

    // Parents before children.
    std::vector<std::size_t> order(loops.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return loops[a].depth < loops[b].depth;
                     });
    std::vector<std::size_t> new_index(loops.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        new_index[order[i]] = i;
    std::vector<Loop> sorted;
    sorted.reserve(loops.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        Loop l = std::move(loops[order[i]]);
        if (l.parent != Loop::npos)
            l.parent = new_index[l.parent];
        sorted.push_back(std::move(l));
    }
    return sorted;
}

} // namespace eddie::prog
