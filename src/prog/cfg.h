/**
 * @file
 * Control-flow graph construction over a Program.
 *
 * The CFG is the input to the loop analysis that builds EDDIE's
 * region-level state machine (paper Sec. 4.1).
 */

#ifndef EDDIE_PROG_CFG_H
#define EDDIE_PROG_CFG_H

#include <cstddef>
#include <vector>

#include "program.h"

namespace eddie::prog
{

/** A maximal straight-line sequence of instructions. */
struct BasicBlock
{
    /** Index of the first instruction. */
    std::size_t first = 0;
    /** Index one past the last instruction. */
    std::size_t last = 0;
    /** Successor block ids. */
    std::vector<std::size_t> succs;
    /** Predecessor block ids. */
    std::vector<std::size_t> preds;

    std::size_t size() const { return last - first; }
};

/** Control-flow graph: blocks in program order, block 0 is entry. */
struct Cfg
{
    std::vector<BasicBlock> blocks;
    /** Maps each instruction index to its block id. */
    std::vector<std::size_t> block_of_instr;

    std::size_t numBlocks() const { return blocks.size(); }
};

/** Builds the CFG of @p program. */
Cfg buildCfg(const Program &program);

} // namespace eddie::prog

#endif // EDDIE_PROG_CFG_H
