/**
 * @file
 * The region-level state machine of EDDIE (paper Sec. 4.1).
 *
 * Each node of the CFG that belongs to an outermost loop nest is
 * merged into a single *loop region*; the remaining basic blocks are
 * contracted away, leaving edges between loop regions. Each such edge
 * is an *inter-loop (transition) region*. The result constrains which
 * region sequences a valid execution may produce, and is what the
 * monitor walks at run time.
 */

#ifndef EDDIE_PROG_REGIONS_H
#define EDDIE_PROG_REGIONS_H

#include <cstddef>
#include <string>
#include <vector>

#include "cfg.h"
#include "loops.h"
#include "program.h"

namespace eddie::prog
{

/** Sentinel loop index meaning "program entry/exit boundary". */
constexpr std::size_t kBoundary = std::size_t(-2);
/** Sentinel for "no region". */
constexpr std::size_t kNoRegion = std::size_t(-1);

/** One region of the state machine. */
struct Region
{
    enum class Kind
    {
        Loop,       ///< an outermost loop nest
        Transition, ///< inter-loop code between two loop nests
    };

    Kind kind = Kind::Loop;
    /** For Loop regions: dense index of the outer loop nest. */
    std::size_t loop = kNoRegion;
    /** For Transition regions: source loop nest (kBoundary = entry). */
    std::size_t from_loop = kNoRegion;
    /** For Transition regions: target loop nest (kBoundary = exit). */
    std::size_t to_loop = kNoRegion;
    /** Human-readable name, e.g. "L2" or "T(L0->L1)". */
    std::string name;
    /** Region ids reachable next in a valid execution. */
    std::vector<std::size_t> succs;
    /** For Loop regions: first instruction of the outermost header. */
    std::size_t header_instr = kNoRegion;
    /** For Loop regions: first instruction of the deepest (hottest)
     *  loop header in the nest — the iteration boundary used by the
     *  loop-body injector. */
    std::size_t hot_header_instr = kNoRegion;
};

/** The complete region-level state machine. */
struct RegionGraph
{
    std::vector<Region> regions;
    /** Number of loop regions (they occupy ids [0, numLoops)). */
    std::size_t num_loops = 0;
    /** instr index -> loop region id, or kNoRegion for non-loop code. */
    std::vector<std::size_t> loop_region_of_instr;

    /**
     * Region id of the transition from @p from_loop to @p to_loop
     * (use kBoundary for program entry/exit), or kNoRegion.
     */
    std::size_t transitionId(std::size_t from_loop,
                             std::size_t to_loop) const;

    /** Loop region id of an instruction (kNoRegion when not in a
     *  loop). */
    std::size_t loopRegionOf(std::size_t instr) const
    {
        return instr < loop_region_of_instr.size() ?
            loop_region_of_instr[instr] : kNoRegion;
    }
};

/**
 * Builds the state machine: merge outermost loop nests, contract
 * non-loop blocks, merge parallel edges.
 */
RegionGraph buildRegionGraph(const Program &program, const Cfg &cfg,
                             const std::vector<Loop> &loops);

/** Convenience: CFG + loops + regions in one call. */
RegionGraph analyzeProgram(const Program &program);

} // namespace eddie::prog

#endif // EDDIE_PROG_REGIONS_H
