/**
 * @file
 * N-way analysis of variance (main effects).
 *
 * The paper uses N-way ANOVA to decide which architectural parameters
 * (issue width, pipeline depth, ROB size) have a statistically
 * significant impact on EDDIE's detection results (Sec. 5.3).
 */

#ifndef EDDIE_STATS_ANOVA_H
#define EDDIE_STATS_ANOVA_H

#include <cstddef>
#include <string>
#include <vector>

namespace eddie::stats
{

/** Per-factor result of an N-way main-effects ANOVA. */
struct AnovaEffect
{
    std::string name;
    double sum_squares = 0.0;
    double dof = 0.0;
    double mean_square = 0.0;
    double f = 0.0;
    double p_value = 1.0;
    /** True when p < alpha. */
    bool significant = false;
};

/** Full ANOVA table. */
struct AnovaResult
{
    std::vector<AnovaEffect> effects;
    double error_sum_squares = 0.0;
    double error_dof = 0.0;
    double total_sum_squares = 0.0;
};

/**
 * One observation: a response value plus the level index of each
 * factor (levels are dense 0-based indices per factor).
 */
struct AnovaObservation
{
    std::vector<std::size_t> levels;
    double response = 0.0;
};

/**
 * N-way main-effects ANOVA on a (preferably balanced) design.
 *
 * @param factor_names one name per factor; every observation must
 *        carry the same number of levels
 * @param data observations
 * @param alpha significance level for the per-factor decision
 */
AnovaResult anova(const std::vector<std::string> &factor_names,
                  const std::vector<AnovaObservation> &data,
                  double alpha = 0.05);

} // namespace eddie::stats

#endif // EDDIE_STATS_ANOVA_H
