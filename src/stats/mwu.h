/**
 * @file
 * Wilcoxon-Mann-Whitney U test.
 *
 * The paper evaluated both the U-test and the K-S test and chose the
 * K-S test (Sec. 4.2); we keep the U-test as the comparison baseline.
 */

#ifndef EDDIE_STATS_MWU_H
#define EDDIE_STATS_MWU_H

#include <span>

namespace eddie::stats
{

/** Result of a two-sample Mann-Whitney U test. */
struct MwuResult
{
    /** The U statistic of the first sample. */
    double u = 0.0;
    /** Standardized z score (tie-corrected normal approximation). */
    double z = 0.0;
    /** Two-sided p-value. */
    double p_value = 1.0;
    /** True when the null hypothesis is rejected at alpha. */
    bool reject = false;
};

/**
 * Two-sided Mann-Whitney U test with tie correction (normal
 * approximation; adequate for the sample sizes EDDIE uses). Copies
 * and sorts both samples; a thin wrapper over mwuTestSorted.
 */
MwuResult mwuTest(std::span<const double> a, std::span<const double> b,
                  double alpha = 0.01);

/**
 * Same test when both samples are already ascending-sorted:
 * allocation-free two-pointer rank walk, bit-identical to mwuTest on
 * the same values. This is the monitor's hot-path entry (presorted
 * reference + scratch-sorted group).
 */
MwuResult mwuTestSorted(std::span<const double> sorted_a,
                        std::span<const double> sorted_b,
                        double alpha = 0.01);

} // namespace eddie::stats

#endif // EDDIE_STATS_MWU_H
