#include "ks.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "special.h"

namespace eddie::stats
{

namespace
{

/** EDF sup-distance by simultaneous merge-walk of two sorted
 *  samples, O(m + n). */
double
ksSortedMergeWalk(std::span<const double> r, std::span<const double> m)
{
    double d = 0.0;
    std::size_t i = 0, j = 0;
    const double inv_r = 1.0 / double(r.size());
    const double inv_m = 1.0 / double(m.size());
    while (i < r.size() && j < m.size()) {
        const double x = std::min(r[i], m[j]);
        while (i < r.size() && r[i] <= x)
            ++i;
        while (j < m.size() && m[j] <= x)
            ++j;
        d = std::max(d, std::abs(double(i) * inv_r - double(j) * inv_m));
    }
    // Remaining tail cannot increase the gap beyond 1 - min EDFs, but
    // check the step where one sample is exhausted.
    d = std::max(d, std::abs(1.0 - double(j) * inv_m));
    d = std::max(d, std::abs(double(i) * inv_r - 1.0));
    return d;
}

/**
 * EDF sup-distance evaluated only at the monitored sample's jump
 * points, locating the reference EDF by binary search: O(n log m).
 * The candidate maxima of |R - M| are the steps of either EDF; at a
 * reference-only step between two monitored values, M is constant
 * and R is largest just before the next monitored value, which the
 * r_before_next probe covers — so walking monitored tie groups
 * suffices.
 */
double
ksSortedSearchWalk(std::span<const double> ref,
                   std::span<const double> mon)
{
    const std::size_t m = ref.size();
    const std::size_t n = mon.size();
    const double inv_m = 1.0 / double(m);
    const double inv_n = 1.0 / double(n);
    double d = 0.0;

    // Before the first monitored point M = 0; R can rise up to
    // R(mon[0]^-).
    {
        const auto lb =
            std::lower_bound(ref.begin(), ref.end(), mon[0]);
        d = std::max(d, double(lb - ref.begin()) * inv_m);
    }
    // Walk distinct monitored values; M only plateaus after the last
    // occurrence of a tie group.
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && mon[j + 1] == mon[i])
            ++j;
        const double level = double(j + 1) * inv_n; // M on [mon[i], next)
        const auto ub =
            std::upper_bound(ref.begin(), ref.end(), mon[i]);
        const double r_at = double(ub - ref.begin()) * inv_m;
        d = std::max(d, std::abs(r_at - level));
        const double next = (j + 1 < n)
                                ? mon[j + 1]
                                : std::numeric_limits<double>::infinity();
        const auto lb = std::lower_bound(ref.begin(), ref.end(), next);
        const double r_before_next =
            double(lb - ref.begin()) * inv_m;
        d = std::max(d, std::abs(r_before_next - level));
        i = j + 1;
    }
    return d;
}

} // namespace

double
ksStatisticSorted(std::span<const double> sorted_reference,
                  std::span<const double> sorted_monitored)
{
    const std::size_t m = sorted_reference.size();
    const std::size_t n = sorted_monitored.size();
    if (m == 0 || n == 0)
        return 0.0;
    // The monitor compares small groups (n ~ 8..64) against large
    // references (m up to thousands): there the log-search walk does
    // ~2 n log2 m probes against the merge walk's m + n steps.
    // Lopsidedness the other way is symmetric.
    if (n * 32 < m)
        return ksSortedSearchWalk(sorted_reference, sorted_monitored);
    if (m * 32 < n)
        return ksSortedSearchWalk(sorted_monitored, sorted_reference);
    return ksSortedMergeWalk(sorted_reference, sorted_monitored);
}

double
ksStatistic(std::span<const double> reference,
            std::span<const double> monitored)
{
    if (reference.empty() || monitored.empty())
        return 0.0;

    std::vector<double> r(reference.begin(), reference.end());
    std::vector<double> m(monitored.begin(), monitored.end());
    std::sort(r.begin(), r.end());
    std::sort(m.begin(), m.end());
    return ksStatisticSorted(r, m);
}

double
ksCritical(std::size_t m, std::size_t n, double alpha)
{
    if (m == 0 || n == 0)
        return 1.0;
    const double dm = double(m), dn = double(n);
    return kolmogorovCritical(alpha) * std::sqrt((dm + dn) / (dm * dn));
}

namespace
{

KsResult
ksResultFromStatistic(double statistic, std::size_t m_count,
                      std::size_t n_count, double alpha)
{
    KsResult res;
    const double m = double(m_count);
    const double n = double(n_count);
    res.statistic = statistic;
    res.critical = kolmogorovCritical(alpha) * std::sqrt((m + n) / (m * n));
    const double en = std::sqrt(m * n / (m + n));
    // Stephens' small-sample correction improves the asymptotic
    // p-value for the modest n used in online monitoring.
    const double lambda = (en + 0.12 + 0.11 / en) * res.statistic;
    res.p_value = kolmogorovQ(lambda);
    res.reject = res.statistic > res.critical;
    return res;
}

} // namespace

KsResult
ksTest(std::span<const double> reference, std::span<const double> monitored,
       double alpha)
{
    if (reference.empty() || monitored.empty())
        return KsResult();
    return ksResultFromStatistic(ksStatistic(reference, monitored),
                                 reference.size(), monitored.size(),
                                 alpha);
}

KsResult
ksTestSorted(std::span<const double> sorted_reference,
             std::span<const double> sorted_monitored, double alpha)
{
    if (sorted_reference.empty() || sorted_monitored.empty())
        return KsResult();
    return ksResultFromStatistic(
        ksStatisticSorted(sorted_reference, sorted_monitored),
        sorted_reference.size(), sorted_monitored.size(), alpha);
}

double
ksStatisticOneSample(std::span<const double> sample,
                     double (*cdf)(double, const void *), const void *ctx)
{
    if (sample.empty())
        return 0.0;
    std::vector<double> s(sample.begin(), sample.end());
    std::sort(s.begin(), s.end());
    const double n = double(s.size());
    double d = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const double f = cdf(s[i], ctx);
        d = std::max(d, std::abs(double(i + 1) / n - f));
        d = std::max(d, std::abs(f - double(i) / n));
    }
    return d;
}

} // namespace eddie::stats
