#include "ks.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "special.h"

namespace eddie::stats
{

double
ksStatistic(std::span<const double> reference,
            std::span<const double> monitored)
{
    if (reference.empty() || monitored.empty())
        return 0.0;

    std::vector<double> r(reference.begin(), reference.end());
    std::vector<double> m(monitored.begin(), monitored.end());
    std::sort(r.begin(), r.end());
    std::sort(m.begin(), m.end());

    // Merge-walk both sorted samples tracking the EDF gap.
    double d = 0.0;
    std::size_t i = 0, j = 0;
    const double inv_r = 1.0 / double(r.size());
    const double inv_m = 1.0 / double(m.size());
    while (i < r.size() && j < m.size()) {
        const double x = std::min(r[i], m[j]);
        while (i < r.size() && r[i] <= x)
            ++i;
        while (j < m.size() && m[j] <= x)
            ++j;
        d = std::max(d, std::abs(double(i) * inv_r - double(j) * inv_m));
    }
    // Remaining tail cannot increase the gap beyond 1 - min EDFs, but
    // check the step where one sample is exhausted.
    d = std::max(d, std::abs(1.0 - double(j) * inv_m));
    d = std::max(d, std::abs(double(i) * inv_r - 1.0));
    return d;
}

KsResult
ksTest(std::span<const double> reference, std::span<const double> monitored,
       double alpha)
{
    KsResult res;
    if (reference.empty() || monitored.empty())
        return res;

    const double m = double(reference.size());
    const double n = double(monitored.size());
    res.statistic = ksStatistic(reference, monitored);
    res.critical = kolmogorovCritical(alpha) * std::sqrt((m + n) / (m * n));
    const double en = std::sqrt(m * n / (m + n));
    // Stephens' small-sample correction improves the asymptotic
    // p-value for the modest n used in online monitoring.
    const double lambda = (en + 0.12 + 0.11 / en) * res.statistic;
    res.p_value = kolmogorovQ(lambda);
    res.reject = res.statistic > res.critical;
    return res;
}

double
ksStatisticOneSample(std::span<const double> sample,
                     double (*cdf)(double, const void *), const void *ctx)
{
    if (sample.empty())
        return 0.0;
    std::vector<double> s(sample.begin(), sample.end());
    std::sort(s.begin(), s.end());
    const double n = double(s.size());
    double d = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const double f = cdf(s[i], ctx);
        d = std::max(d, std::abs(double(i + 1) / n - f));
        d = std::max(d, std::abs(f - double(i) / n));
    }
    return d;
}

} // namespace eddie::stats
