#include "anova.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "special.h"

namespace eddie::stats
{

AnovaResult
anova(const std::vector<std::string> &factor_names,
      const std::vector<AnovaObservation> &data, double alpha)
{
    AnovaResult res;
    const std::size_t nf = factor_names.size();
    if (data.empty())
        throw std::invalid_argument("anova: no observations");
    for (const auto &obs : data) {
        if (obs.levels.size() != nf)
            throw std::invalid_argument("anova: level count mismatch");
    }

    const double n = double(data.size());
    double grand = 0.0;
    for (const auto &obs : data)
        grand += obs.response;
    grand /= n;

    for (const auto &obs : data) {
        const double d = obs.response - grand;
        res.total_sum_squares += d * d;
    }

    double model_ss = 0.0;
    double model_dof = 0.0;
    for (std::size_t f = 0; f < nf; ++f) {
        // Count levels and per-level sums.
        std::size_t num_levels = 0;
        for (const auto &obs : data)
            num_levels = std::max(num_levels, obs.levels[f] + 1);
        std::vector<double> sum(num_levels, 0.0);
        std::vector<double> cnt(num_levels, 0.0);
        for (const auto &obs : data) {
            sum[obs.levels[f]] += obs.response;
            cnt[obs.levels[f]] += 1.0;
        }

        AnovaEffect eff;
        eff.name = factor_names[f];
        std::size_t used_levels = 0;
        for (std::size_t l = 0; l < num_levels; ++l) {
            if (cnt[l] == 0.0)
                continue;
            ++used_levels;
            const double mean = sum[l] / cnt[l];
            eff.sum_squares += cnt[l] * (mean - grand) * (mean - grand);
        }
        eff.dof = double(used_levels > 0 ? used_levels - 1 : 0);
        res.effects.push_back(eff);
        model_ss += eff.sum_squares;
        model_dof += eff.dof;
    }

    res.error_sum_squares =
        std::max(res.total_sum_squares - model_ss, 0.0);
    res.error_dof = std::max(n - 1.0 - model_dof, 1.0);
    const double mse = res.error_sum_squares / res.error_dof;

    for (auto &eff : res.effects) {
        if (eff.dof <= 0.0) {
            eff.p_value = 1.0;
            continue;
        }
        eff.mean_square = eff.sum_squares / eff.dof;
        if (mse <= 0.0) {
            // Zero residual variance: any nonzero effect is exact.
            eff.f = eff.sum_squares > 0.0 ?
                std::numeric_limits<double>::infinity() : 0.0;
            eff.p_value = eff.sum_squares > 0.0 ? 0.0 : 1.0;
        } else {
            eff.f = eff.mean_square / mse;
            eff.p_value = 1.0 - fCdf(eff.f, eff.dof, res.error_dof);
        }
        eff.significant = eff.p_value < alpha;
    }
    return res;
}

} // namespace eddie::stats
