/**
 * @file
 * Empirical distribution function.
 */

#ifndef EDDIE_STATS_EDF_H
#define EDDIE_STATS_EDF_H

#include <cstddef>
#include <span>
#include <vector>

namespace eddie::stats
{

/**
 * The empirical CDF of a sample: F(x) = (#elements <= x) / n.
 *
 * Construction sorts a copy of the data; evaluation is O(log n).
 */
class Edf
{
  public:
    explicit Edf(std::span<const double> data);

    /** F(x); 0 for x below the sample, 1 above it. */
    double operator()(double x) const;

    std::size_t size() const { return sorted_.size(); }
    const std::vector<double> &sorted() const { return sorted_; }

  private:
    std::vector<double> sorted_;
};

} // namespace eddie::stats

#endif // EDDIE_STATS_EDF_H
