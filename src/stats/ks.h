/**
 * @file
 * Two-sample Kolmogorov-Smirnov test — the core statistical decision
 * procedure of EDDIE (paper Sec. 4.2).
 *
 * D_{m,n} = max_x | R(x) - M(x) | over the two empirical CDFs; the
 * null hypothesis (both samples drawn from the same population) is
 * rejected at significance alpha when
 * D_{m,n} > c(alpha) * sqrt((m+n)/(m n)).
 *
 * Two entry points per operation: the historical convenience API
 * that accepts unsorted samples (and pays a copy + sort per call),
 * and the presorted overloads that take already-ascending spans and
 * run allocation-free — the monitoring hot path calls the latter
 * thousands of times per second against immutable reference samples
 * that were sorted once at training time.
 */

#ifndef EDDIE_STATS_KS_H
#define EDDIE_STATS_KS_H

#include <span>

namespace eddie::stats
{

/** Result of a two-sample K-S test. */
struct KsResult
{
    /** The D statistic: max |R(x) - M(x)|. */
    double statistic = 0.0;
    /** Critical value c(alpha) * sqrt((m+n)/(m n)). */
    double critical = 0.0;
    /** Asymptotic p-value. */
    double p_value = 1.0;
    /** True when the null hypothesis is rejected at alpha. */
    bool reject = false;
};

/**
 * Two-sample K-S test.
 *
 * @param reference training-time sample (m elements)
 * @param monitored monitoring-time sample (n elements)
 * @param alpha significance level (paper default 0.01, i.e. 99 %
 *              confidence)
 */
KsResult ksTest(std::span<const double> reference,
                std::span<const double> monitored, double alpha = 0.01);

/** Just the D statistic, without the decision machinery. Copies and
 *  sorts both samples; a thin wrapper over ksStatisticSorted. */
double ksStatistic(std::span<const double> reference,
                   std::span<const double> monitored);

/**
 * D statistic when both samples are already ascending-sorted.
 * Allocation-free. Picks between a merge-walk (O(m+n)) and a
 * binary-search walk over the reference (O(n log m)) depending on
 * how lopsided the sizes are; both produce the same statistic
 * (verified by the brute-force property tests).
 */
double ksStatisticSorted(std::span<const double> sorted_reference,
                         std::span<const double> sorted_monitored);

/** Full test on presorted samples; allocation-free. */
KsResult ksTestSorted(std::span<const double> sorted_reference,
                      std::span<const double> sorted_monitored,
                      double alpha = 0.01);

/** Critical value c(alpha) * sqrt((m+n)/(m n)) for sample sizes
 *  @p m and @p n. */
double ksCritical(std::size_t m, std::size_t n, double alpha);

/**
 * One-sample K-S distance between a sample's EDF and a model CDF
 * evaluated through @p cdf. Used by the parametric baseline.
 */
double ksStatisticOneSample(std::span<const double> sample,
                            double (*cdf)(double, const void *),
                            const void *ctx);

} // namespace eddie::stats

#endif // EDDIE_STATS_KS_H
