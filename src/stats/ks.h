/**
 * @file
 * Two-sample Kolmogorov-Smirnov test — the core statistical decision
 * procedure of EDDIE (paper Sec. 4.2).
 *
 * D_{m,n} = max_x | R(x) - M(x) | over the two empirical CDFs; the
 * null hypothesis (both samples drawn from the same population) is
 * rejected at significance alpha when
 * D_{m,n} > c(alpha) * sqrt((m+n)/(m n)).
 */

#ifndef EDDIE_STATS_KS_H
#define EDDIE_STATS_KS_H

#include <span>

namespace eddie::stats
{

/** Result of a two-sample K-S test. */
struct KsResult
{
    /** The D statistic: max |R(x) - M(x)|. */
    double statistic = 0.0;
    /** Critical value c(alpha) * sqrt((m+n)/(m n)). */
    double critical = 0.0;
    /** Asymptotic p-value. */
    double p_value = 1.0;
    /** True when the null hypothesis is rejected at alpha. */
    bool reject = false;
};

/**
 * Two-sample K-S test.
 *
 * @param reference training-time sample (m elements)
 * @param monitored monitoring-time sample (n elements)
 * @param alpha significance level (paper default 0.01, i.e. 99 %
 *              confidence)
 */
KsResult ksTest(std::span<const double> reference,
                std::span<const double> monitored, double alpha = 0.01);

/** Just the D statistic, without the decision machinery. */
double ksStatistic(std::span<const double> reference,
                   std::span<const double> monitored);

/**
 * One-sample K-S distance between a sample's EDF and a model CDF
 * evaluated through @p cdf. Used by the parametric baseline.
 */
double ksStatisticOneSample(std::span<const double> sample,
                            double (*cdf)(double, const void *),
                            const void *ctx);

} // namespace eddie::stats

#endif // EDDIE_STATS_KS_H
