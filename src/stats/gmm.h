/**
 * @file
 * One-dimensional Gaussian mixture model fit via expectation
 * maximization.
 *
 * Backs the *parametric* baseline test of the paper (Fig. 2): fit a
 * normal or bi-normal distribution to the training data and flag
 * monitored samples that do not fit it. EDDIE itself rejects this
 * approach in favor of the nonparametric K-S test.
 */

#ifndef EDDIE_STATS_GMM_H
#define EDDIE_STATS_GMM_H

#include <cstddef>
#include <span>
#include <vector>

namespace eddie::stats
{

/** One mixture component. */
struct GaussianComponent
{
    double weight = 1.0;
    double mean = 0.0;
    double stddev = 1.0;
};

/** A fitted 1-D Gaussian mixture. */
class GaussianMixture
{
  public:
    GaussianMixture() = default;
    explicit GaussianMixture(std::vector<GaussianComponent> comps);

    /**
     * Fits @p k components to @p data with EM.
     *
     * Components are initialized by splitting the sorted sample into
     * k equal chunks, which is deterministic and adequate for the
     * well-separated modes seen in peak-frequency distributions.
     *
     * @param max_iter EM iteration cap
     */
    static GaussianMixture fit(std::span<const double> data, std::size_t k,
                               std::size_t max_iter = 200);

    double pdf(double x) const;
    double cdf(double x) const;

    /** Average per-sample log likelihood of @p data. */
    double logLikelihood(std::span<const double> data) const;

    const std::vector<GaussianComponent> &components() const
    {
        return comps_;
    }

  private:
    std::vector<GaussianComponent> comps_;
};

/** Result of the parametric goodness-of-fit test. */
struct ParametricResult
{
    /** One-sample K-S distance between sample EDF and model CDF. */
    double statistic = 0.0;
    /** Critical value at alpha for the sample size. */
    double critical = 0.0;
    bool reject = false;
};

/**
 * Parametric baseline: does @p monitored fit the mixture fitted to
 * the training data? Uses the one-sample K-S distance against the
 * model CDF with the asymptotic critical value.
 */
ParametricResult parametricTest(const GaussianMixture &model,
                                std::span<const double> monitored,
                                double alpha = 0.01);

} // namespace eddie::stats

#endif // EDDIE_STATS_GMM_H
