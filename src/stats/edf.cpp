#include "edf.h"

#include <algorithm>

namespace eddie::stats
{

Edf::Edf(std::span<const double> data)
    : sorted_(data.begin(), data.end())
{
    std::sort(sorted_.begin(), sorted_.end());
}

double
Edf::operator()(double x) const
{
    if (sorted_.empty())
        return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return double(it - sorted_.begin()) / double(sorted_.size());
}

} // namespace eddie::stats
