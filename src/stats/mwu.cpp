#include "mwu.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "special.h"

namespace eddie::stats
{

MwuResult
mwuTestSorted(std::span<const double> sorted_a,
              std::span<const double> sorted_b, double alpha)
{
    MwuResult res;
    const std::size_t na = sorted_a.size();
    const std::size_t nb = sorted_b.size();
    if (na == 0 || nb == 0)
        return res;

    // Two-pointer walk over the (virtual) merged order: each tie
    // group spans positions [pos+1, pos+t] and every member gets the
    // group's midrank. Accumulating with one addition per a-element
    // keeps the floating-point sum bit-identical to the historical
    // merged-array formulation.
    const std::size_t n = na + nb;
    double rank_sum_a = 0.0;
    double tie_term = 0.0;
    std::size_t i = 0, j = 0, pos = 0;
    while (i < na || j < nb) {
        const double v =
            (j >= nb || (i < na && sorted_a[i] <= sorted_b[j]))
                ? sorted_a[i]
                : sorted_b[j];
        std::size_t ca = 0, cb = 0;
        while (i < na && sorted_a[i] == v) {
            ++i;
            ++ca;
        }
        while (j < nb && sorted_b[j] == v) {
            ++j;
            ++cb;
        }
        const std::size_t t = ca + cb;
        const double rank =
            0.5 * (double(pos + 1) + double(pos + t));
        if (t > 1)
            tie_term += double(t) * double(t) * double(t) - double(t);
        for (std::size_t k = 0; k < ca; ++k)
            rank_sum_a += rank;
        pos += t;
    }

    const double m = double(na), nn = double(nb), big_n = double(n);
    res.u = rank_sum_a - m * (m + 1.0) / 2.0;

    const double mu = m * nn / 2.0;
    const double var = m * nn / 12.0 *
        (big_n + 1.0 - tie_term / (big_n * (big_n - 1.0)));
    if (var <= 0.0) {
        // All values tied: no evidence against H0.
        res.z = 0.0;
        res.p_value = 1.0;
        res.reject = false;
        return res;
    }
    // Continuity correction.
    const double diff = res.u - mu;
    const double cc = diff > 0.0 ? -0.5 : (diff < 0.0 ? 0.5 : 0.0);
    res.z = (diff + cc) / std::sqrt(var);
    res.p_value = 2.0 * (1.0 - normalCdf(std::abs(res.z)));
    res.p_value = std::clamp(res.p_value, 0.0, 1.0);
    res.reject = res.p_value < alpha;
    return res;
}

MwuResult
mwuTest(std::span<const double> a, std::span<const double> b, double alpha)
{
    if (a.empty() || b.empty())
        return MwuResult();
    std::vector<double> sa(a.begin(), a.end());
    std::vector<double> sb(b.begin(), b.end());
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    return mwuTestSorted(sa, sb, alpha);
}

} // namespace eddie::stats
