#include "mwu.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "special.h"

namespace eddie::stats
{

MwuResult
mwuTest(std::span<const double> a, std::span<const double> b, double alpha)
{
    MwuResult res;
    const std::size_t na = a.size();
    const std::size_t nb = b.size();
    if (na == 0 || nb == 0)
        return res;

    struct Tagged
    {
        double value;
        bool from_a;
    };
    std::vector<Tagged> all;
    all.reserve(na + nb);
    for (double v : a)
        all.push_back({v, true});
    for (double v : b)
        all.push_back({v, false});
    std::sort(all.begin(), all.end(),
              [](const Tagged &x, const Tagged &y) {
                  return x.value < y.value;
              });

    // Midranks with tie groups; accumulate tie correction term.
    const std::size_t n = all.size();
    double rank_sum_a = 0.0;
    double tie_term = 0.0;
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && all[j + 1].value == all[i].value)
            ++j;
        const double rank = 0.5 * (double(i + 1) + double(j + 1));
        const double t = double(j - i + 1);
        if (t > 1.0)
            tie_term += t * t * t - t;
        for (std::size_t k = i; k <= j; ++k) {
            if (all[k].from_a)
                rank_sum_a += rank;
        }
        i = j + 1;
    }

    const double m = double(na), nn = double(nb), big_n = double(n);
    res.u = rank_sum_a - m * (m + 1.0) / 2.0;

    const double mu = m * nn / 2.0;
    const double var = m * nn / 12.0 *
        (big_n + 1.0 - tie_term / (big_n * (big_n - 1.0)));
    if (var <= 0.0) {
        // All values tied: no evidence against H0.
        res.z = 0.0;
        res.p_value = 1.0;
        res.reject = false;
        return res;
    }
    // Continuity correction.
    const double diff = res.u - mu;
    const double cc = diff > 0.0 ? -0.5 : (diff < 0.0 ? 0.5 : 0.0);
    res.z = (diff + cc) / std::sqrt(var);
    res.p_value = 2.0 * (1.0 - normalCdf(std::abs(res.z)));
    res.p_value = std::clamp(res.p_value, 0.0, 1.0);
    res.reject = res.p_value < alpha;
    return res;
}

} // namespace eddie::stats
