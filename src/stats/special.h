/**
 * @file
 * Special functions backing the statistical tests: normal CDF,
 * regularized incomplete beta/gamma, F and chi-squared CDFs, and the
 * Kolmogorov distribution used by the K-S test.
 */

#ifndef EDDIE_STATS_SPECIAL_H
#define EDDIE_STATS_SPECIAL_H

namespace eddie::stats
{

/** Standard normal CDF. */
double normalCdf(double x);

/** Inverse standard normal CDF (Acklam's rational approximation). */
double normalQuantile(double p);

/** Regularized incomplete beta function I_x(a, b). */
double incompleteBeta(double a, double b, double x);

/** Regularized lower incomplete gamma P(a, x). */
double incompleteGammaP(double a, double x);

/** CDF of the F distribution with (d1, d2) degrees of freedom. */
double fCdf(double x, double d1, double d2);

/** CDF of the chi-squared distribution with k degrees of freedom. */
double chi2Cdf(double x, double k);

/**
 * Kolmogorov distribution complementary CDF:
 * Q(x) = 2 * sum_{k>=1} (-1)^{k-1} e^{-2 k^2 x^2}.
 *
 * This is the asymptotic p-value of the K-S statistic
 * sqrt(m n / (m+n)) * D.
 */
double kolmogorovQ(double x);

/**
 * Inverse of kolmogorovQ: the c(alpha) factor of the K-S critical
 * value D_crit = c(alpha) * sqrt((m+n)/(m n)).
 * E.g. c(0.05) ~= 1.358, c(0.01) ~= 1.628.
 */
double kolmogorovCritical(double alpha);

} // namespace eddie::stats

#endif // EDDIE_STATS_SPECIAL_H
