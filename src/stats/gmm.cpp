#include "gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "ks.h"
#include "special.h"

namespace eddie::stats
{

namespace
{

double
gaussPdf(double x, double mean, double sd)
{
    const double z = (x - mean) / sd;
    return std::exp(-0.5 * z * z) /
        (sd * std::sqrt(2.0 * std::numbers::pi));
}

constexpr double kMinSd = 1e-9;

} // namespace

GaussianMixture::GaussianMixture(std::vector<GaussianComponent> comps)
    : comps_(std::move(comps))
{
}

GaussianMixture
GaussianMixture::fit(std::span<const double> data, std::size_t k,
                     std::size_t max_iter)
{
    if (data.empty() || k == 0)
        throw std::invalid_argument("GaussianMixture::fit: empty input");

    std::vector<double> x(data.begin(), data.end());
    std::sort(x.begin(), x.end());
    const std::size_t n = x.size();
    k = std::min(k, n);

    // Deterministic init: chunk the sorted sample.
    std::vector<GaussianComponent> comps(k);
    for (std::size_t c = 0; c < k; ++c) {
        const std::size_t lo = c * n / k;
        const std::size_t hi = std::max(lo + 1, (c + 1) * n / k);
        double mean = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            mean += x[i];
        mean /= double(hi - lo);
        double var = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            var += (x[i] - mean) * (x[i] - mean);
        var /= double(hi - lo);
        comps[c].weight = double(hi - lo) / double(n);
        comps[c].mean = mean;
        comps[c].stddev = std::max(std::sqrt(var), kMinSd);
    }
    if (k == 1) {
        return GaussianMixture(std::move(comps));
    }

    std::vector<std::vector<double>> resp(k, std::vector<double>(n));
    double prev_ll = -std::numeric_limits<double>::infinity();
    for (std::size_t iter = 0; iter < max_iter; ++iter) {
        // E step.
        double ll = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double total = 0.0;
            for (std::size_t c = 0; c < k; ++c) {
                resp[c][i] = comps[c].weight *
                    gaussPdf(x[i], comps[c].mean, comps[c].stddev);
                total += resp[c][i];
            }
            if (total <= 0.0)
                total = 1e-300;
            for (std::size_t c = 0; c < k; ++c)
                resp[c][i] /= total;
            ll += std::log(total);
        }
        // M step.
        for (std::size_t c = 0; c < k; ++c) {
            double w = 0.0, mean = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                w += resp[c][i];
                mean += resp[c][i] * x[i];
            }
            if (w <= 0.0) {
                comps[c].weight = 0.0;
                continue;
            }
            mean /= w;
            double var = 0.0;
            for (std::size_t i = 0; i < n; ++i)
                var += resp[c][i] * (x[i] - mean) * (x[i] - mean);
            var /= w;
            comps[c].weight = w / double(n);
            comps[c].mean = mean;
            comps[c].stddev = std::max(std::sqrt(var), kMinSd);
        }
        if (std::abs(ll - prev_ll) < 1e-10 * std::abs(ll))
            break;
        prev_ll = ll;
    }
    return GaussianMixture(std::move(comps));
}

double
GaussianMixture::pdf(double x) const
{
    double p = 0.0;
    for (const auto &c : comps_)
        p += c.weight * gaussPdf(x, c.mean, c.stddev);
    return p;
}

double
GaussianMixture::cdf(double x) const
{
    double p = 0.0;
    for (const auto &c : comps_)
        p += c.weight * normalCdf((x - c.mean) / c.stddev);
    return p;
}

double
GaussianMixture::logLikelihood(std::span<const double> data) const
{
    if (data.empty())
        return 0.0;
    double ll = 0.0;
    for (double v : data)
        ll += std::log(std::max(pdf(v), 1e-300));
    return ll / double(data.size());
}

ParametricResult
parametricTest(const GaussianMixture &model,
               std::span<const double> monitored, double alpha)
{
    ParametricResult res;
    if (monitored.empty())
        return res;
    res.statistic = ksStatisticOneSample(
        monitored,
        [](double x, const void *ctx) {
            return static_cast<const GaussianMixture *>(ctx)->cdf(x);
        },
        &model);
    const double n = double(monitored.size());
    res.critical = kolmogorovCritical(alpha) / std::sqrt(n);
    res.reject = res.statistic > res.critical;
    return res;
}

} // namespace eddie::stats
