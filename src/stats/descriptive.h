/**
 * @file
 * Descriptive statistics helpers used across the code base.
 */

#ifndef EDDIE_STATS_DESCRIPTIVE_H
#define EDDIE_STATS_DESCRIPTIVE_H

#include <span>

namespace eddie::stats
{

/** Arithmetic mean; 0 for an empty sample. */
double mean(std::span<const double> x);

/** Unbiased sample variance; 0 for samples of size < 2. */
double variance(std::span<const double> x);

/** Sample standard deviation. */
double stddev(std::span<const double> x);

/** Median (average of middle two for even sizes). */
double median(std::span<const double> x);

/**
 * Linear-interpolated percentile.
 * @param p percentile in [0, 100]
 */
double percentile(std::span<const double> x, double p);

} // namespace eddie::stats

#endif // EDDIE_STATS_DESCRIPTIVE_H
