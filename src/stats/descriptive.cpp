#include "descriptive.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace eddie::stats
{

double
mean(std::span<const double> x)
{
    if (x.empty())
        return 0.0;
    double s = 0.0;
    for (double v : x)
        s += v;
    return s / double(x.size());
}

double
variance(std::span<const double> x)
{
    if (x.size() < 2)
        return 0.0;
    const double m = mean(x);
    double s = 0.0;
    for (double v : x)
        s += (v - m) * (v - m);
    return s / double(x.size() - 1);
}

double
stddev(std::span<const double> x)
{
    return std::sqrt(variance(x));
}

double
median(std::span<const double> x)
{
    return percentile(x, 50.0);
}

double
percentile(std::span<const double> x, double p)
{
    if (x.empty())
        return 0.0;
    std::vector<double> s(x.begin(), x.end());
    std::sort(s.begin(), s.end());
    if (s.size() == 1)
        return s.front();
    const double pos = std::clamp(p, 0.0, 100.0) / 100.0 *
        double(s.size() - 1);
    const std::size_t lo = std::size_t(pos);
    const std::size_t hi = std::min(lo + 1, s.size() - 1);
    const double frac = pos - double(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
}

} // namespace eddie::stats
