#include "special.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace eddie::stats
{

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    if (p <= 0.0 || p >= 1.0)
        throw std::invalid_argument("normalQuantile: p outside (0,1)");

    // Acklam's approximation; relative error < 1.15e-9.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    const double phigh = 1.0 - plow;

    double q, r;
    if (p < plow) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0]*q + c[1])*q + c[2])*q + c[3])*q + c[4])*q + c[5]) /
            ((((d[0]*q + d[1])*q + d[2])*q + d[3])*q + 1.0);
    }
    if (p <= phigh) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0]*r + a[1])*r + a[2])*r + a[3])*r + a[4])*r + a[5])*q /
            (((((b[0]*r + b[1])*r + b[2])*r + b[3])*r + b[4])*r + 1.0);
    }
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0]*q + c[1])*q + c[2])*q + c[3])*q + c[4])*q + c[5]) /
        ((((d[0]*q + d[1])*q + d[2])*q + d[3])*q + 1.0);
}

namespace
{

/** Continued fraction for the incomplete beta (Numerical-Recipes
 *  betacf style, modified Lentz's method). */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int max_iter = 300;
    constexpr double eps = 3.0e-14;
    constexpr double fpmin = 1.0e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::abs(d) < fpmin)
        d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iter; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::abs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::abs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < eps)
            break;
    }
    return h;
}

} // namespace

double
incompleteBeta(double a, double b, double x)
{
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    const double ln_bt = std::lgamma(a + b) - std::lgamma(a) -
        std::lgamma(b) + a * std::log(x) + b * std::log(1.0 - x);
    const double bt = std::exp(ln_bt);
    if (x < (a + 1.0) / (a + b + 2.0))
        return bt * betaContinuedFraction(a, b, x) / a;
    return 1.0 - bt * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
incompleteGammaP(double a, double x)
{
    if (x < 0.0 || a <= 0.0)
        throw std::invalid_argument("incompleteGammaP: bad arguments");
    if (x == 0.0)
        return 0.0;

    if (x < a + 1.0) {
        // Series representation.
        double ap = a;
        double sum = 1.0 / a;
        double del = sum;
        for (int n = 0; n < 500; ++n) {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if (std::abs(del) < std::abs(sum) * 3.0e-14)
                break;
        }
        return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
    }

    // Continued fraction for Q(a, x); P = 1 - Q.
    constexpr double fpmin = 1.0e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / fpmin;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= 500; ++i) {
        const double an = -double(i) * (double(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < fpmin)
            d = fpmin;
        c = b + an / c;
        if (std::abs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < 3.0e-14)
            break;
    }
    const double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
    return 1.0 - q;
}

double
fCdf(double x, double d1, double d2)
{
    if (x <= 0.0)
        return 0.0;
    const double u = d1 * x / (d1 * x + d2);
    return incompleteBeta(d1 / 2.0, d2 / 2.0, u);
}

double
chi2Cdf(double x, double k)
{
    if (x <= 0.0)
        return 0.0;
    return incompleteGammaP(k / 2.0, x / 2.0);
}

double
kolmogorovQ(double x)
{
    if (x <= 0.0)
        return 1.0;
    double q = 0.0;
    for (int k = 1; k <= 100; ++k) {
        const double term = std::exp(-2.0 * double(k) * double(k) * x * x);
        q += (k % 2 == 1 ? term : -term);
        if (term < 1e-16)
            break;
    }
    return std::clamp(2.0 * q, 0.0, 1.0);
}

double
kolmogorovCritical(double alpha)
{
    if (alpha <= 0.0 || alpha >= 1.0)
        throw std::invalid_argument("kolmogorovCritical: bad alpha");
    // One-slot memo: every K-S decision needs c(alpha), the monitor
    // uses a single alpha for a whole run, and the bisection below
    // costs ~200 evaluations of an exp series — it used to dominate
    // the per-test cost of the monitoring hot loop. thread_local
    // keeps it race-free without a lock; the cached value is the
    // exact double the bisection produces, so results are
    // bit-identical with or without the memo.
    static thread_local double memo_alpha = -1.0;
    static thread_local double memo_c = 0.0;
    if (alpha == memo_alpha)
        return memo_c;
    double lo = 0.01, hi = 4.0;
    // kolmogorovQ is strictly decreasing; bisect for Q(c) = alpha.
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (kolmogorovQ(mid) > alpha)
            lo = mid;
        else
            hi = mid;
    }
    memo_alpha = alpha;
    memo_c = 0.5 * (lo + hi);
    return memo_c;
}

} // namespace eddie::stats
