/**
 * @file
 * Dijkstra workload: repeated single-source shortest-path passes over
 * a dense random adjacency matrix, as in MiBench dijkstra (which runs
 * one pass per input pair over a 100x100 matrix). Two nests: the
 * pass loop (init + min-scan + relax inner loops — a multi-peak
 * spectrum whose phases repeat every pass, keeping window statistics
 * stationary) and a checksum loop.
 */

#include "workload.h"

#include "prog/builder.h"
#include "workload_util.h"

namespace eddie::workloads
{

namespace
{

constexpr std::int64_t kAdj = 1 << 17; // V*V words
constexpr std::int64_t kDist = 8192;
constexpr std::int64_t kVis = 16384;
constexpr std::int64_t kInf = 1 << 30;
constexpr std::int64_t kV = 144;

} // namespace

Workload
makeDijkstra(double scale)
{
    const auto passes = std::int64_t(scaled(6, scale, 1));
    const std::int64_t checksum_reps = 96;

    prog::ProgramBuilder b("dijkstra");
    const int rV = 1, rJ = 3, rA = 4, rT = 5, rU = 6, rBest = 7,
              rBestI = 8, rD = 9, rVv = 10, rWt = 11, rCand = 12,
              rRow = 13, rAdj = 14, rDist = 15, rVis = 16, rInf = 17,
              rOne = 18, rIt = 19, rRep = 20, rSum = 21, rMask = 22,
              rA2 = 23, rPass = 24, rNP = 25, rSrc = 26;

    b.li(rZ, 0);
    b.li(rV, kV);
    b.li(rAdj, kAdj);
    b.li(rDist, kDist);
    b.li(rVis, kVis);
    b.li(rInf, kInf);
    b.li(rOne, 1);
    b.li(rMask, 15);
    b.li(rNP, passes);

    // ---- L0: weight preprocessing (clamp to 4 bits) ----
    b.li(rJ, 0);
    b.mul(rT, rV, rV);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.add(rA, rAdj, rJ);
    b.ld(rWt, rA);
    b.and_(rWt, rWt, rMask);
    b.st(rA, rWt);
    b.xor_(rU, rWt, rJ);
    b.or_(rU, rU, rOne);
    b.addi(rJ, rJ, 1);
    b.blt(rJ, rT, l0);

    // ---- L1: repeated SSSP passes (init + scan + relax phases) ----
    b.li(rPass, 0);
    auto l1pass = b.newLabel();
    b.bind(l1pass);
    // Re-initialize dist/vis, with a per-pass source node.
    b.li(rJ, 0);
    auto l1init = b.newLabel();
    b.bind(l1init);
    b.add(rA, rDist, rJ);
    b.st(rA, rInf);
    b.add(rA, rVis, rJ);
    b.st(rA, rZ);
    b.xor_(rU, rJ, rPass);
    b.addi(rJ, rJ, 1);
    b.blt(rJ, rV, l1init);
    // src = pass % V; dist[src] = 0.
    b.div(rT, rPass, rV);
    b.mul(rT, rT, rV);
    b.sub(rSrc, rPass, rT);
    b.add(rA, rDist, rSrc);
    b.st(rA, rZ);
    // V iterations of min-scan + relax.
    b.li(rIt, 0);
    auto l1iter = b.newLabel();
    b.bind(l1iter);
    b.li(rJ, 0);
    b.li(rBest, kInf + kInf);
    b.li(rBestI, 0);
    auto l1scan = b.newLabel();
    auto l1noupd = b.newLabel();
    b.bind(l1scan);
    b.add(rA, rDist, rJ);
    b.ld(rD, rA);
    b.add(rA, rVis, rJ);
    b.ld(rVv, rA);
    b.mul(rT, rVv, rInf);
    b.add(rD, rD, rT); // push visited nodes above any real distance
    b.bge(rD, rBest, l1noupd);
    b.add(rBest, rD, rZ);
    b.add(rBestI, rJ, rZ);
    b.bind(l1noupd);
    b.addi(rJ, rJ, 1);
    b.blt(rJ, rV, l1scan);
    // Mark visited.
    b.add(rA, rVis, rBestI);
    b.st(rA, rOne);
    // Relax every neighbor of bestI.
    b.mul(rRow, rBestI, rV);
    b.li(rJ, 0);
    auto l1relax = b.newLabel();
    auto l1skip = b.newLabel();
    b.bind(l1relax);
    b.add(rA, rAdj, rRow);
    b.add(rA, rA, rJ);
    b.ld(rWt, rA);
    b.beq(rWt, rZ, l1skip); // no edge
    b.add(rCand, rBest, rWt);
    b.add(rA2, rDist, rJ);
    b.ld(rD, rA2);
    b.bge(rCand, rD, l1skip);
    b.st(rA2, rCand);
    b.bind(l1skip);
    b.addi(rJ, rJ, 1);
    b.blt(rJ, rV, l1relax);
    b.addi(rIt, rIt, 1);
    b.blt(rIt, rV, l1iter);
    b.addi(rPass, rPass, 1);
    b.blt(rPass, rNP, l1pass);

    // ---- L2: checksum passes over the distance array ----
    b.li(rRep, 0);
    b.li(rSum, 0);
    b.li(rT, checksum_reps);
    auto l2rep = b.newLabel();
    b.bind(l2rep);
    b.li(rJ, 0);
    auto l2 = b.newLabel();
    b.bind(l2);
    b.add(rA, rDist, rJ);
    b.ld(rD, rA);
    b.add(rSum, rSum, rD);
    b.xor_(rU, rSum, rD);
    b.or_(rU, rU, rOne);
    b.add(rU, rU, rSum);
    b.addi(rJ, rJ, 1);
    b.blt(rJ, rV, l2);
    b.addi(rRep, rRep, 1);
    b.blt(rRep, rT, l2rep);

    b.halt();

    Workload w;
    w.name = "dijkstra";
    w.program = b.take();
    w.regions = prog::analyzeProgram(w.program);
    w.make_input = [](std::uint64_t seed) {
        InputRng rng(seed);
        cpu::MemoryImage img;
        // ~35 % of edges absent (weight 0 after masking).
        auto adj = rng.array(std::size_t(kV * kV), 0, 24);
        for (auto &x : adj)
            if (x > 15)
                x = 0;
        img.emplace_back(kAdj, std::move(adj));
        return img;
    };
    return w;
}

} // namespace eddie::workloads
