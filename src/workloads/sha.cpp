/**
 * @file
 * SHA workload: SHA-1-shaped block processing — message prep, a block
 * loop containing schedule expansion and the 80-round compression
 * loop (very regular per-round work: a strong, sharp spectral peak,
 * matching the paper's short detection latency for Sha), and an
 * output mixing pass.
 */

#include "workload.h"

#include "prog/builder.h"
#include "workload_util.h"

namespace eddie::workloads
{

namespace
{

constexpr std::int64_t kMsg = 1 << 15;
constexpr std::int64_t kSched = 4096;  // 80 words
constexpr std::int64_t kHash = 5120;   // 5 words
constexpr std::int64_t kOut = 1 << 17;

} // namespace

Workload
makeSha(double scale)
{
    // Multiple of 16 words (one block = 16 words).
    const auto n = std::int64_t(scaled(600, scale, 4)) * 16;

    prog::ProgramBuilder b("sha");
    const int rBlk = 1, rNb = 2, rBase = 3, rT4 = 4, rA = 5, rB = 6,
              rC = 7, rD = 8, rE = 9, rF = 10, rT2 = 11, rT3 = 12,
              rWt = 13, rK = 14, rM32 = 15, rC5 = 16, rC27 = 17,
              rC30 = 18, rC2 = 19, rC16 = 20, rC80 = 21, rAd = 22,
              rTmp = 23, rI = 24, rN = 25, rOne = 26, rU = 27;

    b.li(rZ, 0);
    b.li(rN, n);
    b.li(rM32, 0xffffffffLL);
    b.li(rC5, 5);
    b.li(rC27, 27);
    b.li(rC30, 30);
    b.li(rC2, 2);
    b.li(rC16, 16);
    b.li(rC80, 80);
    b.li(rK, 0x5a827999LL);
    b.li(rOne, 1);

    // ---- L0: message prep, 4 words per iteration ----
    b.li(rI, 0);
    b.li(rTmp, 0x36363636LL);
    auto l0 = b.newLabel();
    b.bind(l0);
    for (int u = 0; u < 4; ++u) {
        b.add(rAd, rI, rZ);
        b.ld(rWt, rAd, kMsg + u);
        b.xor_(rWt, rWt, rTmp);
        b.and_(rWt, rWt, rM32);
        b.st(rAd, rWt, kMsg + u);
    }
    b.addi(rI, rI, 4);
    b.blt(rI, rN, l0);

    // ---- L1: block loop (copy + expand + 80 rounds) ----
    b.li(rBlk, 0);
    b.li(rNb, n / 16);
    auto l1blk = b.newLabel();
    b.bind(l1blk);
    b.li(rT4, 16);
    b.mul(rBase, rBlk, rT4);
    // Copy 16 message words into the schedule.
    b.li(rT4, 0);
    b.li(rT2, 16);
    auto l1copy = b.newLabel();
    b.bind(l1copy);
    b.add(rAd, rBase, rT4);
    b.ld(rWt, rAd, kMsg);
    b.st(rT4, rWt, kSched);
    b.addi(rT4, rT4, 1);
    b.blt(rT4, rT2, l1copy);
    // Expand W[16..79], two steps per iteration.
    b.li(rT4, 16);
    auto l1exp = b.newLabel();
    b.bind(l1exp);
    for (int u = 0; u < 2; ++u) {
        b.ld(rWt, rT4, kSched - 3 + u);
        b.ld(rT2, rT4, kSched - 8 + u);
        b.xor_(rWt, rWt, rT2);
        b.ld(rT2, rT4, kSched - 14 + u);
        b.xor_(rWt, rWt, rT2);
        b.ld(rT2, rT4, kSched - 16 + u);
        b.xor_(rWt, rWt, rT2);
        // rol1 within 32 bits.
        b.shl(rT2, rWt, rOne);
        b.shr(rT3, rWt, rC30);
        b.shr(rT3, rT3, rOne); // >> 31
        b.or_(rWt, rT2, rT3);
        b.and_(rWt, rWt, rM32);
        b.st(rT4, rWt, kSched + u);
    }
    b.addi(rT4, rT4, 2);
    b.blt(rT4, rC80, l1exp);
    // Load the running hash.
    b.ld(rA, rZ, kHash + 0);
    b.ld(rB, rZ, kHash + 1);
    b.ld(rC, rZ, kHash + 2);
    b.ld(rD, rZ, kHash + 3);
    b.ld(rE, rZ, kHash + 4);
    // 80 rounds.
    b.li(rT4, 0);
    auto l1rnd = b.newLabel();
    b.bind(l1rnd);
    // f = (b & c) | (~b & d)
    b.and_(rF, rB, rC);
    b.xor_(rT2, rB, rM32);
    b.and_(rT2, rT2, rD);
    b.or_(rF, rF, rT2);
    // tmp = rol5(a) + f + e + W[t] + K
    b.shl(rT2, rA, rC5);
    b.shr(rT3, rA, rC27);
    b.or_(rT2, rT2, rT3);
    b.and_(rT2, rT2, rM32);
    b.add(rTmp, rT2, rF);
    b.add(rTmp, rTmp, rE);
    b.ld(rWt, rT4, kSched);
    b.add(rTmp, rTmp, rWt);
    b.add(rTmp, rTmp, rK);
    b.and_(rTmp, rTmp, rM32);
    // Rotate the working registers.
    b.add(rE, rD, rZ);
    b.add(rD, rC, rZ);
    b.shl(rT2, rB, rC30);
    b.shr(rT3, rB, rC2);
    b.or_(rT2, rT2, rT3);
    b.and_(rC, rT2, rM32);
    b.add(rB, rA, rZ);
    b.add(rA, rTmp, rZ);
    b.addi(rT4, rT4, 1);
    b.blt(rT4, rC80, l1rnd);
    // Fold back into the hash.
    b.ld(rT2, rZ, kHash + 0);
    b.add(rT2, rT2, rA);
    b.and_(rT2, rT2, rM32);
    b.st(rZ, rT2, kHash + 0);
    b.ld(rT2, rZ, kHash + 1);
    b.add(rT2, rT2, rB);
    b.and_(rT2, rT2, rM32);
    b.st(rZ, rT2, kHash + 1);
    b.ld(rT2, rZ, kHash + 2);
    b.add(rT2, rT2, rC);
    b.and_(rT2, rT2, rM32);
    b.st(rZ, rT2, kHash + 2);
    b.ld(rT2, rZ, kHash + 3);
    b.add(rT2, rT2, rD);
    b.and_(rT2, rT2, rM32);
    b.st(rZ, rT2, kHash + 3);
    b.ld(rT2, rZ, kHash + 4);
    b.add(rT2, rT2, rE);
    b.and_(rT2, rT2, rM32);
    b.st(rZ, rT2, kHash + 4);
    b.addi(rBlk, rBlk, 1);
    b.blt(rBlk, rNb, l1blk);

    // ---- L2: output mixing pass ----
    b.li(rI, 0);
    b.ld(rTmp, rZ, kHash);
    auto l2 = b.newLabel();
    b.bind(l2);
    b.add(rAd, rI, rZ);
    b.ld(rWt, rAd, kMsg);
    b.xor_(rWt, rWt, rTmp);
    b.add(rU, rWt, rI);
    b.and_(rU, rU, rM32);
    b.or_(rU, rU, rOne);
    b.st(rAd, rU, kOut);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l2);

    b.halt();

    Workload w;
    w.name = "sha";
    w.program = b.take();
    w.regions = prog::analyzeProgram(w.program);
    const std::size_t nn = std::size_t(n);
    w.make_input = [nn](std::uint64_t seed) {
        InputRng rng(seed);
        cpu::MemoryImage img;
        img.emplace_back(kMsg,
                         rng.array(nn, 0, (std::int64_t(1) << 32) - 1));
        img.emplace_back(kHash,
                         std::vector<std::int64_t>{0x67452301LL,
                                                   0xefcdab89LL,
                                                   0x98badcfeLL,
                                                   0x10325476LL,
                                                   0xc3d2e1f0LL});
        return img;
    };
    return w;
}

} // namespace eddie::workloads
