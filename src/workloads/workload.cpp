#include "workload.h"

#include <stdexcept>

namespace eddie::workloads
{

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "bitcount", "basicmath", "susan",    "dijkstra",     "patricia",
        "gsm",      "fft",       "sha",      "rijndael",     "stringsearch",
    };
    return names;
}

Workload
makeWorkload(std::string_view name, double scale)
{
    if (name == "bitcount")
        return makeBitcount(scale);
    if (name == "basicmath")
        return makeBasicmath(scale);
    if (name == "susan")
        return makeSusan(scale);
    if (name == "dijkstra")
        return makeDijkstra(scale);
    if (name == "patricia")
        return makePatricia(scale);
    if (name == "gsm")
        return makeGsm(scale);
    if (name == "fft")
        return makeFft(scale);
    if (name == "sha")
        return makeSha(scale);
    if (name == "rijndael")
        return makeRijndael(scale);
    if (name == "stringsearch")
        return makeStringsearch(scale);
    throw std::invalid_argument("unknown workload: " + std::string(name));
}

} // namespace eddie::workloads
