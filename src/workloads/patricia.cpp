/**
 * @file
 * Patricia workload: insertions and lookups in an array-backed binary
 * trie, echoing MiBench patricia's pointer-chasing behaviour. Walk
 * depths are data-dependent, so both nests show spread spectral
 * peaks — the paper reports reduced accuracy for this benchmark.
 */

#include "workload.h"

#include "prog/builder.h"
#include "workload_util.h"

namespace eddie::workloads
{

namespace
{

constexpr std::int64_t kKeys = 8192;
constexpr std::int64_t kNodes = 1 << 17; // 2 words per node
constexpr std::int64_t kMaxDepth = 20;

} // namespace

Workload
makePatricia(double scale)
{
    const auto n = std::int64_t(scaled(16000, scale));
    const std::int64_t search_passes = 3;

    prog::ProgramBuilder b("patricia");
    const int rI = 1, rN = 2, rKey = 3, rNode = 4, rDepth = 5, rBit = 6,
              rA = 7, rChild = 8, rFree = 9, rKeysB = 10, rNodesB = 11,
              rOne = 12, rTwo = 13, rMaxD = 14, rT = 15, rU = 16,
              rSum = 17, rPass = 18, rPN = 19, rGen = 20, rGN = 21,
              rGEnd = 22, rClr = 23;

    // Keys per trie generation: each generation builds a fresh trie,
    // so walk depths cycle shallow->deep every generation and the
    // region's window statistics stay stationary (MiBench patricia
    // similarly processes bounded batches).
    const std::int64_t keys_per_gen = 2048;
    const std::int64_t generations =
        (n + keys_per_gen - 1) / keys_per_gen;

    b.li(rZ, 0);
    b.li(rKeysB, kKeys);
    b.li(rNodesB, kNodes);
    b.li(rN, n);
    b.li(rOne, 1);
    b.li(rTwo, 2);
    b.li(rMaxD, kMaxDepth);

    // ---- L0: build one trie per generation ----
    b.li(rGen, 0);
    b.li(rGN, generations);
    auto l0gen = b.newLabel();
    b.bind(l0gen);
    // Clear the node area used by one generation and reset the
    // allocator (node 0 is the root).
    b.li(rClr, 0);
    b.li(rT, 2 * (keys_per_gen + 2));
    auto l0clr = b.newLabel();
    b.bind(l0clr);
    b.add(rA, rNodesB, rClr);
    b.st(rA, rZ);
    b.addi(rClr, rClr, 1);
    b.blt(rClr, rT, l0clr);
    b.li(rFree, 1);
    // Insert this generation's keys.
    b.mul(rI, rGen, rTwo);
    b.li(rT, keys_per_gen / 2);
    b.mul(rI, rI, rT); // i = gen * keys_per_gen
    b.add(rGEnd, rI, rZ);
    b.li(rT, keys_per_gen);
    b.add(rGEnd, rGEnd, rT);
    // Clamp to n.
    auto no_clamp = b.newLabel();
    b.blt(rGEnd, rN, no_clamp);
    b.add(rGEnd, rN, rZ);
    b.bind(no_clamp);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.add(rA, rKeysB, rI);
    b.ld(rKey, rA);
    b.li(rNode, 0);
    b.li(rDepth, 0);
    auto walk = b.newLabel();
    auto alloc = b.newLabel();
    auto done = b.newLabel();
    b.bind(walk);
    b.bge(rDepth, rMaxD, done);
    b.shr(rBit, rKey, rDepth);
    b.and_(rBit, rBit, rOne);
    b.mul(rA, rNode, rTwo);
    b.add(rA, rA, rBit);
    b.add(rA, rA, rNodesB);
    b.ld(rChild, rA);
    b.beq(rChild, rZ, alloc);
    b.add(rNode, rChild, rZ);
    b.addi(rDepth, rDepth, 1);
    b.jmp(walk);
    b.bind(alloc);
    b.st(rA, rFree);
    b.add(rNode, rFree, rZ);
    b.addi(rFree, rFree, 1);
    b.bind(done);
    // Insertion bookkeeping (node payload hash + stats), as a real
    // trie insert performs: multiply-heavy fixed work that separates
    // the insert loop's period and harmonic content from the
    // read-only lookup loop below.
    b.mul(rT, rKey, rTwo);
    b.xor_(rT, rT, rNode);
    b.mul(rT, rT, rKey);
    b.shr(rU, rT, rOne);
    b.mul(rU, rU, rTwo);
    b.add(rT, rT, rU);
    b.mul(rT, rT, rTwo);
    b.add(rA, rKeysB, rI);
    b.st(rA, rT, 1 << 15);
    b.mul(rU, rT, rKey);
    b.xor_(rU, rU, rFree);
    b.mul(rU, rU, rTwo);
    b.or_(rU, rU, rOne);
    b.add(rU, rU, rT);
    b.addi(rI, rI, 1);
    b.blt(rI, rGEnd, l0);
    b.addi(rGen, rGen, 1);
    b.blt(rGen, rGN, l0gen);

    // ---- L1: repeated lookups accumulating walk depth ----
    b.li(rPass, 0);
    b.li(rPN, search_passes);
    b.li(rSum, 0);
    auto l1pass = b.newLabel();
    b.bind(l1pass);
    b.li(rI, 0);
    auto l1 = b.newLabel();
    b.bind(l1);
    b.add(rA, rKeysB, rI);
    b.ld(rKey, rA);
    b.xor_(rKey, rKey, rPass); // vary queries per pass
    b.li(rNode, 0);
    b.li(rDepth, 0);
    auto swalk = b.newLabel();
    auto sdone = b.newLabel();
    b.bind(swalk);
    b.bge(rDepth, rMaxD, sdone);
    b.shr(rBit, rKey, rDepth);
    b.and_(rBit, rBit, rOne);
    b.mul(rA, rNode, rTwo);
    b.add(rA, rA, rBit);
    b.add(rA, rA, rNodesB);
    b.ld(rChild, rA);
    b.beq(rChild, rZ, sdone);
    b.add(rNode, rChild, rZ);
    b.addi(rDepth, rDepth, 1);
    b.jmp(swalk);
    b.bind(sdone);
    // PATRICIA lookup ends with a full key comparison at the leaf:
    // a second data-dependent phase that also distinguishes the
    // lookup loop's spectrum from the insert loop's.
    {
        b.li(rT, 0);
        auto cmp = b.newLabel();
        auto cmp_done = b.newLabel();
        b.bind(cmp);
        b.bge(rT, rDepth, cmp_done);
        b.shr(rU, rKey, rT);
        b.and_(rU, rU, rOne);
        b.add(rSum, rSum, rU);
        b.xor_(rU, rU, rT);
        b.addi(rT, rT, 1);
        b.jmp(cmp);
        b.bind(cmp_done);
    }
    b.add(rSum, rSum, rDepth);
    b.mul(rT, rSum, rTwo);
    b.xor_(rT, rT, rNode);
    b.shr(rU, rT, rOne);
    b.add(rT, rT, rU);
    b.or_(rU, rT, rOne);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l1);
    b.addi(rPass, rPass, 1);
    b.blt(rPass, rPN, l1pass);

    b.halt();

    Workload w;
    w.name = "patricia";
    w.program = b.take();
    w.regions = prog::analyzeProgram(w.program);
    const std::size_t nn = std::size_t(n);
    w.make_input = [nn](std::uint64_t seed) {
        InputRng rng(seed);
        cpu::MemoryImage img;
        img.emplace_back(kKeys,
                         rng.array(nn, 0, (std::int64_t(1) << 20) - 1));
        // Trie node area starts zeroed (memory is zero-initialized).
        return img;
    };
    return w;
}

} // namespace eddie::workloads
