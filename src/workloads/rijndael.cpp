/**
 * @file
 * Rijndael workload: AES-shaped encryption — input whitening, a block
 * loop of 10 table-lookup rounds over four 32-bit columns (constant
 * per-round work: sharp peaks at the round and block frequencies),
 * and a ciphertext checksum pass.
 */

#include "workload.h"

#include "prog/builder.h"
#include "workload_util.h"

namespace eddie::workloads
{

namespace
{

constexpr std::int64_t kData = 1 << 15;
constexpr std::int64_t kT0 = 2048;
constexpr std::int64_t kT1 = 2048 + 256;
constexpr std::int64_t kT2 = 2048 + 512;
constexpr std::int64_t kT3 = 2048 + 768;
constexpr std::int64_t kRk = 4096; // 44 round-key words
constexpr std::int64_t kOut = 1 << 17;
constexpr std::int64_t kRounds = 10;

} // namespace

Workload
makeRijndael(double scale)
{
    // Multiple of 4 words (one block = 4 columns).
    const auto n = std::int64_t(scaled(2000, scale, 4)) * 4;

    prog::ProgramBuilder b("rijndael");
    const int rBlk = 1, rNb = 2, rBase = 3, rR = 4, rS0 = 5, rS1 = 6,
              rS2 = 7, rS3 = 8, rN0 = 9, rN1 = 10, rN2 = 11, rN3 = 12,
              rT = 13, rU = 14, rAd = 15, rM8 = 16, rC24 = 17, rC16 = 18,
              rC8 = 19, rRkI = 20, rI = 21, rN = 22, rFour = 23,
              rTen = 24, rSum = 25, rOne = 26;

    b.li(rZ, 0);
    b.li(rN, n);
    b.li(rM8, 255);
    b.li(rC24, 24);
    b.li(rC16, 16);
    b.li(rC8, 8);
    b.li(rFour, 4);
    b.li(rTen, kRounds);
    b.li(rOne, 1);

    // ---- L0: input whitening with the first round key ----
    b.li(rI, 0);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.and_(rT, rI, rM8);
    b.and_(rT, rT, rFour); // crude i%4-ish selector (0 or 4)
    b.ld(rU, rT, kRk);
    b.add(rAd, rI, rZ);
    b.ld(rT, rAd, kData);
    b.xor_(rT, rT, rU);
    b.st(rAd, rT, kData);
    b.xor_(rU, rT, rI);
    b.or_(rU, rU, rOne);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l0);

    // ---- L1: block loop, 10 rounds of 4 table-lookup columns ----
    b.li(rBlk, 0);
    b.li(rNb, n / 4);
    auto l1blk = b.newLabel();
    b.bind(l1blk);
    b.mul(rBase, rBlk, rFour);
    b.add(rAd, rBase, rZ);
    b.ld(rS0, rAd, kData + 0);
    b.ld(rS1, rAd, kData + 1);
    b.ld(rS2, rAd, kData + 2);
    b.ld(rS3, rAd, kData + 3);
    b.li(rR, 0);
    auto l1rnd = b.newLabel();
    b.bind(l1rnd);
    b.mul(rRkI, rR, rFour);
    // One column: n = T0[(a>>24)&255]^T1[(b>>16)&255]^
    //                 T2[(c>>8)&255]^T3[d&255]^rk
    auto column = [&](int dst, int a, int c2, int c3, int c4, int rk_off) {
        b.shr(rT, a, rC24);
        b.and_(rT, rT, rM8);
        b.ld(dst, rT, kT0);
        b.shr(rT, c2, rC16);
        b.and_(rT, rT, rM8);
        b.ld(rU, rT, kT1);
        b.xor_(dst, dst, rU);
        b.shr(rT, c3, rC8);
        b.and_(rT, rT, rM8);
        b.ld(rU, rT, kT2);
        b.xor_(dst, dst, rU);
        b.and_(rT, c4, rM8);
        b.ld(rU, rT, kT3);
        b.xor_(dst, dst, rU);
        b.ld(rU, rRkI, kRk + rk_off);
        b.xor_(dst, dst, rU);
    };
    column(rN0, rS0, rS1, rS2, rS3, 0);
    column(rN1, rS1, rS2, rS3, rS0, 1);
    column(rN2, rS2, rS3, rS0, rS1, 2);
    column(rN3, rS3, rS0, rS1, rS2, 3);
    b.add(rS0, rN0, rZ);
    b.add(rS1, rN1, rZ);
    b.add(rS2, rN2, rZ);
    b.add(rS3, rN3, rZ);
    b.addi(rR, rR, 1);
    b.blt(rR, rTen, l1rnd);
    b.add(rAd, rBase, rZ);
    b.st(rAd, rS0, kOut + 0);
    b.st(rAd, rS1, kOut + 1);
    b.st(rAd, rS2, kOut + 2);
    b.st(rAd, rS3, kOut + 3);
    b.addi(rBlk, rBlk, 1);
    b.blt(rBlk, rNb, l1blk);

    // ---- L2: ciphertext checksum ----
    b.li(rI, 0);
    b.li(rSum, 0);
    auto l2 = b.newLabel();
    b.bind(l2);
    b.add(rAd, rI, rZ);
    b.ld(rT, rAd, kOut);
    b.add(rSum, rSum, rT);
    b.xor_(rU, rSum, rI);
    b.or_(rU, rU, rOne);
    b.add(rU, rU, rT);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l2);

    b.halt();

    Workload w;
    w.name = "rijndael";
    w.program = b.take();
    w.regions = prog::analyzeProgram(w.program);
    const std::size_t nn = std::size_t(n);
    w.make_input = [nn](std::uint64_t seed) {
        InputRng rng(seed);
        cpu::MemoryImage img;
        const std::int64_t max32 = (std::int64_t(1) << 32) - 1;
        img.emplace_back(kData, rng.array(nn, 0, max32));
        img.emplace_back(kT0, rng.array(256, 0, max32));
        img.emplace_back(kT1, rng.array(256, 0, max32));
        img.emplace_back(kT2, rng.array(256, 0, max32));
        img.emplace_back(kT3, rng.array(256, 0, max32));
        img.emplace_back(kRk, rng.array(44, 0, max32));
        return img;
    };
    return w;
}

} // namespace eddie::workloads
