/**
 * @file
 * FFT workload: repeated fixed-point butterfly sweeps over a 1K
 * complex array with table twiddles, matching MiBench fft's loop and
 * memory structure (stage loop over strided butterflies). Several
 * related peaks plus harmonics, like a real transform kernel.
 */

#include "workload.h"

#include <cmath>

#include "prog/builder.h"
#include "workload_util.h"

namespace eddie::workloads
{

namespace
{

constexpr std::int64_t kM = 1024; // transform size
constexpr std::int64_t kLogM = 10;
constexpr std::int64_t kRe = 8192;
constexpr std::int64_t kIm = 16384;
constexpr std::int64_t kTwCos = 24576; // kM/2 entries
constexpr std::int64_t kTwSin = 28672;

} // namespace

Workload
makeFft(double scale)
{
    const auto reps = std::int64_t(scaled(20, scale, 1)) / 5 + 1;
    const auto mag_passes = std::int64_t(scaled(24, scale, 2));

    prog::ProgramBuilder c("fft");
    const int qRep = 1, qR = 2, qS = 3, qHalf = 4, qI = 5, qJ = 6,
              qAr = 7, qAi = 8, qBr = 9, qBi = 10, qWr = 11, qWi = 12,
              qTr = 13, qTi = 14, qA = 15, qA2 = 16, qT = 17, qMask = 18,
              qTStep = 19, qTIdx = 20, qTMask = 21, qSh = 22, qM = 23,
              qHalfM = 24, qLogM = 25, qSum = 26, qU = 27;

    c.li(rZ, 0);
    c.li(qR, reps);
    c.li(qMask, kM - 1);
    c.li(qSh, 10); // fixed-point scale shift
    c.li(qM, kM);
    c.li(qHalfM, kM / 2);
    c.li(qTMask, kM / 2 - 1);
    c.li(qLogM, kLogM);

    // ---- L0: rep/stage/butterfly sweeps ----
    c.li(qRep, 0);
    auto m0rep = c.newLabel();
    c.bind(m0rep);
    c.li(qS, 0);
    auto m0stage = c.newLabel();
    c.bind(m0stage);
    c.li(qHalf, 1);
    c.shl(qHalf, qHalf, qS);   // half = 1 << s
    c.shr(qTStep, qHalfM, qS); // twiddle stride = (M/2) >> s
    c.li(qI, 0);
    auto m0i = c.newLabel();
    c.bind(m0i);
    c.add(qJ, qI, qHalf);
    c.and_(qJ, qJ, qMask);
    // Load a = x[i], b = x[j].
    c.add(qA, qI, rZ);
    c.ld(qAr, qA, kRe);
    c.ld(qAi, qA, kIm);
    c.add(qA2, qJ, rZ);
    c.ld(qBr, qA2, kRe);
    c.ld(qBi, qA2, kIm);
    // Twiddle factor.
    c.mul(qTIdx, qI, qTStep);
    c.and_(qTIdx, qTIdx, qTMask);
    c.ld(qWr, qTIdx, kTwCos);
    c.ld(qWi, qTIdx, kTwSin);
    // t = b * w (fixed point).
    c.mul(qTr, qBr, qWr);
    c.mul(qT, qBi, qWi);
    c.sub(qTr, qTr, qT);
    c.shr(qTr, qTr, qSh);
    c.mul(qTi, qBr, qWi);
    c.mul(qT, qBi, qWr);
    c.add(qTi, qTi, qT);
    c.shr(qTi, qTi, qSh);
    // x[i] = a + t; x[j] = a - t.
    c.add(qT, qAr, qTr);
    c.st(qA, qT, kRe);
    c.add(qT, qAi, qTi);
    c.st(qA, qT, kIm);
    c.sub(qT, qAr, qTr);
    c.st(qA2, qT, kRe);
    c.sub(qT, qAi, qTi);
    c.st(qA2, qT, kIm);
    c.addi(qI, qI, 1);
    c.blt(qI, qM, m0i);
    c.addi(qS, qS, 1);
    c.blt(qS, qLogM, m0stage);
    c.addi(qRep, qRep, 1);
    c.blt(qRep, qR, m0rep);

    // ---- L1: magnitude accumulation passes ----
    c.li(qRep, 0);
    c.li(qT, mag_passes);
    c.li(qSum, 0);
    auto m1rep = c.newLabel();
    c.bind(m1rep);
    c.li(qI, 0);
    auto m1 = c.newLabel();
    c.bind(m1);
    c.add(qA, qI, rZ);
    c.ld(qAr, qA, kRe);
    c.ld(qAi, qA, kIm);
    c.mul(qBr, qAr, qAr);
    c.mul(qBi, qAi, qAi);
    c.add(qBr, qBr, qBi);
    c.shr(qBr, qBr, qSh);
    c.add(qSum, qSum, qBr);
    c.xor_(qU, qSum, qI);
    c.addi(qI, qI, 1);
    c.blt(qI, qM, m1);
    c.addi(qRep, qRep, 1);
    c.blt(qRep, qT, m1rep);

    c.halt();

    Workload w;
    w.name = "fft";
    w.program = c.take();
    w.regions = prog::analyzeProgram(w.program);
    w.make_input = [](std::uint64_t seed) {
        InputRng rng(seed);
        cpu::MemoryImage img;
        img.emplace_back(kRe, rng.array(std::size_t(kM), -2048, 2047));
        img.emplace_back(kIm, rng.array(std::size_t(kM), -2048, 2047));
        // Integer twiddles: cosine/sine scaled by 1024.
        std::vector<std::int64_t> tw_cos(std::size_t(kM / 2));
        std::vector<std::int64_t> tw_sin(std::size_t(kM / 2));
        for (std::size_t k = 0; k < tw_cos.size(); ++k) {
            const double ang = 2.0 * 3.14159265358979 * double(k) /
                double(kM);
            tw_cos[k] = std::int64_t(1024.0 * std::cos(ang));
            tw_sin[k] = std::int64_t(1024.0 * std::sin(ang));
        }
        img.emplace_back(kTwCos, std::move(tw_cos));
        img.emplace_back(kTwSin, std::move(tw_sin));
        return img;
    };
    return w;
}

} // namespace eddie::workloads
