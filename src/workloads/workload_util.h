/**
 * @file
 * Shared helpers for workload construction: register conventions and
 * seeded input generation.
 *
 * Register conventions used by all workloads:
 *  - r0 is initialized to 0 at program start and never written again.
 *  - r1..r29 are workload scratch registers.
 */

#ifndef EDDIE_WORKLOADS_WORKLOAD_UTIL_H
#define EDDIE_WORKLOADS_WORKLOAD_UTIL_H

#include <cstdint>
#include <random>
#include <vector>

#include "cpu/core.h"

namespace eddie::workloads
{

/** The always-zero register (by convention; see file comment). */
constexpr int rZ = 0;

/** Seeded uniform integer generator for input images. */
class InputRng
{
  public:
    explicit InputRng(std::uint64_t seed) : gen_(seed) {}

    /** Uniform integer in [lo, hi]. */
    std::int64_t
    uniform(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> d(lo, hi);
        return d(gen_);
    }

    /** @p n uniform integers in [lo, hi]. */
    std::vector<std::int64_t>
    array(std::size_t n, std::int64_t lo, std::int64_t hi)
    {
        std::vector<std::int64_t> v(n);
        for (auto &x : v)
            x = uniform(lo, hi);
        return v;
    }

    std::mt19937_64 &raw() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

/** Applies @p scale to a base count with a floor of @p min_value. */
std::size_t scaled(std::size_t base, double scale,
                   std::size_t min_value = 16);

} // namespace eddie::workloads

#endif // EDDIE_WORKLOADS_WORKLOAD_UTIL_H
