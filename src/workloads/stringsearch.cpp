/**
 * @file
 * Stringsearch workload: Boyer-Moore-Horspool scans of many patterns
 * over a shared text, as in MiBench stringsearch. The scan loop's
 * advance is data-dependent (the skip table), producing a moderately
 * spread spectral peak.
 */

#include "workload.h"

#include "prog/builder.h"
#include "workload_util.h"

namespace eddie::workloads
{

namespace
{

constexpr std::int64_t kText = 1 << 15;
constexpr std::int64_t kPats = 4096;  // P patterns x 8 chars
constexpr std::int64_t kSkip = 2048;  // 64-entry skip table
constexpr std::int64_t kHist = 2112;  // 64-entry histogram
constexpr std::int64_t kM = 8;        // pattern length
constexpr std::int64_t kAlpha = 64;   // alphabet size

} // namespace

Workload
makeStringsearch(double scale)
{
    const auto text_len = std::int64_t(scaled(24000, scale));
    const auto num_pats = std::int64_t(scaled(56, scale, 4));

    prog::ProgramBuilder b("stringsearch");
    const int rI = 1, rT = 2, rC = 3, rAd = 4, rU = 5, rPat = 6,
              rNp = 7, rPBase = 8, rJ = 9, rPos = 10, rLast = 11,
              rSk = 12, rCnt = 13, rTl = 14, rMask = 15, rEight = 16,
              rOne = 17, rK = 18, rV = 19, rA2 = 20;

    b.li(rZ, 0);
    b.li(rTl, text_len);
    b.li(rNp, num_pats);
    b.li(rMask, kAlpha - 1);
    b.li(rEight, kM);
    b.li(rOne, 1);
    b.li(rCnt, 0);

    // ---- L0: text normalization + histogram ----
    b.li(rI, 0);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.add(rAd, rI, rZ);
    b.ld(rC, rAd, kText);
    b.and_(rC, rC, rMask);
    b.st(rAd, rC, kText);
    b.ld(rU, rC, kHist);
    b.addi(rU, rU, 1);
    b.st(rC, rU, kHist);
    b.xor_(rV, rU, rI);
    b.addi(rI, rI, 1);
    b.blt(rI, rTl, l0);

    // ---- L1: per-pattern skip-table build + BMH scan ----
    b.li(rPat, 0);
    auto l1pat = b.newLabel();
    b.bind(l1pat);
    b.mul(rPBase, rPat, rEight);
    // skip[c] = 8 for all c.
    b.li(rJ, 0);
    b.li(rT, kAlpha);
    auto l1fill = b.newLabel();
    b.bind(l1fill);
    b.st(rJ, rEight, kSkip);
    b.addi(rJ, rJ, 1);
    b.blt(rJ, rT, l1fill);
    // skip[pat[j]] = 7 - j for j in 0..6.
    b.li(rJ, 0);
    b.li(rT, kM - 1);
    auto l1pre = b.newLabel();
    b.bind(l1pre);
    b.add(rAd, rPBase, rJ);
    b.ld(rC, rAd, kPats);
    b.and_(rC, rC, rMask);
    b.sub(rU, rT, rJ);
    b.st(rC, rU, kSkip);
    b.addi(rJ, rJ, 1);
    b.blt(rJ, rT, l1pre);
    // Last pattern char.
    b.add(rAd, rPBase, rT);
    b.ld(rLast, rAd, kPats);
    b.and_(rLast, rLast, rMask);
    // Scan.
    b.li(rPos, kM - 1);
    auto l1scan = b.newLabel();
    auto l1nocmp = b.newLabel();
    auto l1done = b.newLabel();
    b.bind(l1scan);
    b.bge(rPos, rTl, l1done);
    b.add(rAd, rPos, rZ);
    b.ld(rC, rAd, kText);
    b.bne(rC, rLast, l1nocmp);
    // Candidate: compare pat[0..6] against text[pos-7 .. pos-1].
    {
        b.li(rJ, 0);
        b.li(rK, kM - 1);
        auto cmp = b.newLabel();
        auto mismatch = b.newLabel();
        auto matched = b.newLabel();
        b.bind(cmp);
        b.bge(rJ, rK, matched);
        b.add(rAd, rPBase, rJ);
        b.ld(rU, rAd, kPats);
        b.and_(rU, rU, rMask);
        b.sub(rA2, rPos, rK);
        b.add(rA2, rA2, rJ);
        b.ld(rV, rA2, kText);
        b.bne(rU, rV, mismatch);
        b.addi(rJ, rJ, 1);
        b.jmp(cmp);
        b.bind(matched);
        b.addi(rCnt, rCnt, 1);
        b.bind(mismatch);
    }
    b.bind(l1nocmp);
    b.ld(rSk, rC, kSkip);
    b.add(rPos, rPos, rSk);
    b.jmp(l1scan);
    b.bind(l1done);
    b.addi(rPat, rPat, 1);
    b.blt(rPat, rNp, l1pat);

    // ---- L2: histogram mixing pass ----
    b.li(rI, 0);
    b.li(rT, kAlpha);
    b.li(rJ, 48); // passes
    b.li(rK, 0);
    auto l2rep = b.newLabel();
    b.bind(l2rep);
    b.li(rI, 0);
    auto l2 = b.newLabel();
    b.bind(l2);
    b.ld(rU, rI, kHist);
    b.add(rCnt, rCnt, rU);
    b.xor_(rV, rCnt, rI);
    b.or_(rV, rV, rOne);
    b.add(rV, rV, rU);
    b.addi(rI, rI, 1);
    b.blt(rI, rT, l2);
    b.addi(rK, rK, 1);
    b.blt(rK, rJ, l2rep);

    b.halt();

    Workload w;
    w.name = "stringsearch";
    w.program = b.take();
    w.regions = prog::analyzeProgram(w.program);
    const std::size_t tl = std::size_t(text_len);
    const std::size_t np = std::size_t(num_pats);
    w.make_input = [tl, np](std::uint64_t seed) {
        InputRng rng(seed);
        cpu::MemoryImage img;
        img.emplace_back(kText, rng.array(tl, 0, kAlpha - 1));
        img.emplace_back(kPats, rng.array(np * kM, 0, kAlpha - 1));
        return img;
    };
    return w;
}

} // namespace eddie::workloads
