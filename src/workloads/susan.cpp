/**
 * @file
 * Susan workload: image smoothing, edge detection, and corner
 * detection nests over a random image, mirroring MiBench susan.
 * Smoothing has constant per-pixel work (sharp spectral peak); edge
 * and corner detection take data-dependent paths (peak spreading),
 * matching the accuracy profile the paper reports for Susan.
 */

#include "workload.h"

#include "prog/builder.h"
#include "workload_util.h"

namespace eddie::workloads
{

namespace
{

constexpr std::int64_t kImg = 8192;
constexpr std::int64_t kOut = 1 << 17;
constexpr std::int64_t kW = 128;

} // namespace

Workload
makeSusan(double scale)
{
    // Scaling stretches the image height so any scale changes the
    // amount of work; pass counts stay fixed.
    const auto kH = std::int64_t(scaled(64, scale, 12));
    const std::int64_t reps0 = 3;
    const std::int64_t reps1 = 4;
    const std::int64_t reps2 = 4;

    prog::ProgramBuilder b("susan");
    const int rP = 1, rEnd = 2, rImg = 3, rA = 4, rS = 5, rT = 6, rU = 7,
              rOut = 8, rRep = 9, rR = 10, rC57 = 11, rC9 = 12, rCnt = 13,
              rG = 14, rDx = 15, rDy = 16, rTh = 17, rM = 18, rOne = 19,
              rC63 = 20;

    b.li(rZ, 0);
    b.li(rImg, kImg);
    b.li(rOut, kOut);
    b.li(rC57, 57);
    b.li(rC9, 9);
    b.li(rOne, 1);
    b.li(rC63, 63);
    b.li(rCnt, 0);

    // Branch-free |a-b| into rT; clobbers rU, rM.
    auto emitAbsDiff = [&](int ra, int rb) {
        b.sub(rT, ra, rb);
        b.shr(rU, rT, rC63);
        b.sub(rM, rZ, rU);  // mask = 0 or -1
        b.xor_(rT, rT, rM);
        b.sub(rT, rT, rM);
    };

    // ---- L0: 3x3 box smoothing, constant per-pixel work ----
    b.li(rRep, 0);
    b.li(rR, reps0);
    auto l0rep = b.newLabel();
    b.bind(l0rep);
    b.li(rP, kW + 1);
    b.li(rEnd, kW * (kH - 1) - 1);
    auto l0px = b.newLabel();
    b.bind(l0px);
    b.add(rA, rImg, rP);
    b.ld(rS, rA, -kW - 1);
    b.ld(rT, rA, -kW);
    b.add(rS, rS, rT);
    b.ld(rT, rA, -kW + 1);
    b.add(rS, rS, rT);
    b.ld(rT, rA, -1);
    b.add(rS, rS, rT);
    b.ld(rT, rA, 0);
    b.add(rS, rS, rT);
    b.ld(rT, rA, 1);
    b.add(rS, rS, rT);
    b.ld(rT, rA, kW - 1);
    b.add(rS, rS, rT);
    b.ld(rT, rA, kW);
    b.add(rS, rS, rT);
    b.ld(rT, rA, kW + 1);
    b.add(rS, rS, rT);
    b.mul(rS, rS, rC57);
    b.shr(rS, rS, rC9); // sum * 57 >> 9 ~ sum / 9
    b.add(rA, rOut, rP);
    b.st(rA, rS);
    b.addi(rP, rP, 1);
    b.blt(rP, rEnd, l0px);
    b.addi(rRep, rRep, 1);
    b.blt(rRep, rR, l0rep);

    // ---- L1: edge detection with a data-dependent heavy path ----
    b.li(rRep, 0);
    b.li(rR, reps1);
    b.li(rTh, 96);
    auto l1rep = b.newLabel();
    b.bind(l1rep);
    b.li(rP, kW + 1);
    b.li(rEnd, kW * (kH - 1) - 1);
    auto l1px = b.newLabel();
    auto l1skip = b.newLabel();
    b.bind(l1px);
    b.add(rA, rImg, rP);
    b.ld(rDx, rA, 1);
    b.ld(rG, rA, -1);
    emitAbsDiff(rDx, rG);
    b.add(rDx, rT, rZ);
    b.ld(rDy, rA, kW);
    b.ld(rG, rA, -kW);
    emitAbsDiff(rDy, rG);
    b.add(rDy, rT, rZ);
    b.add(rG, rDx, rDy);
    b.blt(rG, rTh, l1skip);
    // Heavy path: record the edge and mix the counter.
    b.add(rA, rOut, rP);
    b.st(rA, rG);
    b.addi(rCnt, rCnt, 1);
    b.xor_(rU, rCnt, rG);
    b.or_(rU, rU, rOne);
    b.add(rU, rU, rG);
    b.xor_(rU, rU, rCnt);
    b.bind(l1skip);
    b.addi(rP, rP, 1);
    b.blt(rP, rEnd, l1px);
    b.addi(rRep, rRep, 1);
    b.blt(rRep, rR, l1rep);

    // ---- L2: corner detection, rare heavy path ----
    b.li(rRep, 0);
    b.li(rR, reps2);
    b.li(rTh, 180);
    auto l2rep = b.newLabel();
    b.bind(l2rep);
    b.li(rP, kW + 1);
    b.li(rEnd, kW * (kH - 1) - 1);
    auto l2px = b.newLabel();
    auto l2skip = b.newLabel();
    b.bind(l2px);
    b.add(rA, rImg, rP);
    b.ld(rDx, rA, kW + 1);
    b.ld(rG, rA, -kW - 1);
    emitAbsDiff(rDx, rG);
    b.add(rDx, rT, rZ);
    b.ld(rDy, rA, kW - 1);
    b.ld(rG, rA, -kW + 1);
    emitAbsDiff(rDy, rG);
    b.add(rG, rDx, rT);
    b.blt(rG, rTh, l2skip);
    // Rare heavy path: centroid-style mixing.
    b.mul(rU, rG, rC57);
    b.shr(rU, rU, rC9);
    b.add(rA, rOut, rP);
    b.st(rA, rU);
    b.addi(rCnt, rCnt, 1);
    b.xor_(rU, rU, rCnt);
    b.add(rU, rU, rG);
    b.or_(rU, rU, rOne);
    b.xor_(rU, rU, rG);
    b.add(rU, rU, rCnt);
    b.bind(l2skip);
    // Corner detection samples every other pixel (coarser grid), so
    // its per-iteration period differs clearly from edge detection.
    b.addi(rP, rP, 2);
    b.blt(rP, rEnd, l2px);
    b.addi(rRep, rRep, 1);
    b.blt(rRep, rR, l2rep);

    b.halt();

    Workload w;
    w.name = "susan";
    w.program = b.take();
    w.regions = prog::analyzeProgram(w.program);
    w.make_input = [kH](std::uint64_t seed) {
        InputRng rng(seed);
        cpu::MemoryImage img;
        img.emplace_back(kImg, rng.array(std::size_t(kW * kH), 0, 255));
        return img;
    };
    return w;
}

} // namespace eddie::workloads
