#include "workload_util.h"

#include <algorithm>
#include <cmath>

namespace eddie::workloads
{

std::size_t
scaled(std::size_t base, double scale, std::size_t min_value)
{
    const double v = double(base) * scale;
    return std::max<std::size_t>(min_value, std::size_t(std::llround(v)));
}

} // namespace eddie::workloads
