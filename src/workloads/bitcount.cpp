/**
 * @file
 * Bitcount workload: five sequential loop nests, each counting bits
 * of the same input array with a different method, mirroring
 * MiBench's bitcnts driver. The nests have deliberately different
 * spectra: bit-serial (sharp), Kernighan (data-dependent, diffuse),
 * nibble table (sharp, memory-bound), byte table, and SWAR.
 */

#include "workload.h"

#include "prog/builder.h"
#include "workload_util.h"

namespace eddie::workloads
{

namespace
{

constexpr std::int64_t kNibTable = 1024;
constexpr std::int64_t kByteTable = 2048;
constexpr std::int64_t kData = 4096;

} // namespace

Workload
makeBitcount(double scale)
{
    const std::size_t n = scaled(24000, scale);

    prog::ProgramBuilder b("bitcount");
    const int rI = 1, rN = 2, rB = 3, rA = 4, rV = 5, rAcc = 6, rT = 7,
              rU = 8, rTot = 9, rOne = 10, rSh = 11;
    const int rM1 = 12, rM2 = 13, rM4 = 14, rMul = 15, rC24 = 16,
              rTwo = 17, rFour = 18, rMask = 19;

    b.li(rZ, 0);
    b.li(rTot, 0);
    b.li(rB, kData);
    b.li(rN, std::int64_t(n));
    b.li(rOne, 1);

    // ---- L0: bit-serial counting, 32 unrolled shift/mask steps ----
    b.li(rI, 0);
    b.li(rSh, 1);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.add(rA, rB, rI);
    b.ld(rV, rA);
    b.li(rAcc, 0);
    for (int k = 0; k < 32; ++k) {
        b.and_(rT, rV, rOne);
        b.add(rAcc, rAcc, rT);
        b.shr(rV, rV, rSh);
    }
    b.add(rTot, rTot, rAcc);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l0);

    // ---- L1: Kernighan's method (data-dependent inner loop) ----
    b.li(rI, 0);
    auto l1 = b.newLabel();
    b.bind(l1);
    b.add(rA, rB, rI);
    b.ld(rV, rA);
    b.li(rAcc, 0);
    auto l1i = b.newLabel();
    auto l1d = b.newLabel();
    b.bind(l1i);
    b.beq(rV, rZ, l1d);
    b.addi(rT, rV, -1);
    b.and_(rV, rV, rT);
    b.addi(rAcc, rAcc, 1);
    b.xor_(rU, rAcc, rV);
    b.jmp(l1i);
    b.bind(l1d);
    b.add(rTot, rTot, rAcc);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l1);

    // ---- L2: nibble-table lookups (8 per word) ----
    b.li(rI, 0);
    b.li(rSh, 4);
    b.li(rMask, 15);
    auto l2 = b.newLabel();
    b.bind(l2);
    b.add(rA, rB, rI);
    b.ld(rV, rA);
    b.li(rAcc, 0);
    for (int k = 0; k < 8; ++k) {
        b.and_(rU, rV, rMask);
        b.ld(rU, rU, kNibTable);
        b.add(rAcc, rAcc, rU);
        b.shr(rV, rV, rSh);
    }
    b.add(rTot, rTot, rAcc);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l2);

    // ---- L3: byte-table lookups (4 per word) plus mixing pad ----
    b.li(rI, 0);
    b.li(rSh, 8);
    b.li(rMask, 255);
    auto l3 = b.newLabel();
    b.bind(l3);
    b.add(rA, rB, rI);
    b.ld(rV, rA);
    b.li(rAcc, 0);
    for (int k = 0; k < 4; ++k) {
        b.and_(rU, rV, rMask);
        b.ld(rU, rU, kByteTable);
        b.add(rAcc, rAcc, rU);
        b.shr(rV, rV, rSh);
    }
    b.xor_(rU, rAcc, rV);
    b.or_(rU, rU, rMask);
    b.add(rU, rU, rAcc);
    b.xor_(rU, rU, rV);
    b.add(rTot, rTot, rAcc);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l3);

    // ---- L4: SWAR popcount ----
    b.li(rI, 0);
    b.li(rM1, 0x55555555LL);
    b.li(rM2, 0x33333333LL);
    b.li(rM4, 0x0f0f0f0fLL);
    b.li(rMul, 0x01010101LL);
    b.li(rC24, 24);
    b.li(rTwo, 2);
    b.li(rFour, 4);
    b.li(rMask, 0xffffffffLL);
    auto l4 = b.newLabel();
    b.bind(l4);
    b.add(rA, rB, rI);
    b.ld(rV, rA);
    b.shr(rT, rV, rOne);
    b.and_(rT, rT, rM1);
    b.sub(rV, rV, rT);
    b.and_(rT, rV, rM2);
    b.shr(rU, rV, rTwo);
    b.and_(rU, rU, rM2);
    b.add(rV, rT, rU);
    b.shr(rT, rV, rFour);
    b.add(rV, rV, rT);
    b.and_(rV, rV, rM4);
    b.mul(rV, rV, rMul);
    b.and_(rV, rV, rMask);
    b.shr(rV, rV, rC24);
    b.xor_(rT, rV, rTot);
    b.or_(rT, rT, rOne);
    b.add(rU, rT, rV);
    b.xor_(rU, rU, rT);
    b.add(rTot, rTot, rV);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l4);

    b.halt();

    Workload w;
    w.name = "bitcount";
    w.program = b.take();
    w.regions = prog::analyzeProgram(w.program);
    w.make_input = [n](std::uint64_t seed) {
        InputRng rng(seed);
        cpu::MemoryImage img;
        std::vector<std::int64_t> nib(16), byt(256);
        for (int i = 0; i < 16; ++i)
            nib[i] = __builtin_popcount(unsigned(i));
        for (int i = 0; i < 256; ++i)
            byt[i] = __builtin_popcount(unsigned(i));
        img.emplace_back(kNibTable, std::move(nib));
        img.emplace_back(kByteTable, std::move(byt));
        img.emplace_back(kData,
                         rng.array(n, 0, (std::int64_t(1) << 32) - 1));
        return img;
    };
    return w;
}

} // namespace eddie::workloads
