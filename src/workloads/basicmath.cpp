/**
 * @file
 * Basicmath workload: three loop nests echoing MiBench basicmath's
 * phases — integer cube roots (fixed Newton iterations, divide-heavy),
 * integer square roots (fully unrolled branch-free bit method), and
 * angle conversion (multiply/divide per element).
 */

#include "workload.h"

#include "prog/builder.h"
#include "workload_util.h"

namespace eddie::workloads
{

namespace
{

constexpr std::int64_t kData = 4096;
constexpr std::int64_t kOut = 1 << 17;

} // namespace

Workload
makeBasicmath(double scale)
{
    const std::size_t n = scaled(14000, scale);

    prog::ProgramBuilder b("basicmath");
    const int rI = 1, rN = 2, rB = 3, rA = 4, rV = 5, rX = 6, rT = 7,
              rU = 8, rOut = 9, rThree = 10, rTwo = 11, rOne = 12,
              rRes = 13, rBit = 14, rSh = 15, rC = 16;

    b.li(rZ, 0);
    b.li(rB, kData);
    b.li(rOut, kOut);
    b.li(rN, std::int64_t(n));
    b.li(rThree, 3);
    b.li(rTwo, 2);
    b.li(rOne, 1);

    // ---- L0: cube root by 6 Newton steps: x = (2x + v/x^2) / 3 ----
    b.li(rI, 0);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.add(rA, rB, rI);
    b.ld(rV, rA);
    b.li(rX, 64); // initial guess
    for (int k = 0; k < 6; ++k) {
        b.mul(rT, rX, rX);
        b.div(rT, rV, rT);
        b.mul(rU, rX, rTwo);
        b.add(rT, rT, rU);
        b.div(rX, rT, rThree);
        b.or_(rX, rX, rOne); // keep the guess nonzero
    }
    b.add(rA, rOut, rI);
    b.st(rA, rX);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l0);

    // ---- L1: integer sqrt, 16 unrolled branch-free bit steps ----
    b.li(rI, 0);
    b.li(rSh, 1);
    b.li(rC, 63);
    auto l1 = b.newLabel();
    b.bind(l1);
    b.add(rA, rB, rI);
    b.ld(rV, rA);
    b.li(rRes, 0);
    b.li(rBit, std::int64_t(1) << 30);
    for (int k = 0; k < 16; ++k) {
        // mask = all-ones when v >= res + bit, else 0.
        b.add(rT, rRes, rBit);
        b.sub(rU, rV, rT);
        b.shr(rX, rU, rC);   // sign bit: 1 when v < t
        b.addi(rX, rX, -1);  // 0xffff... when v >= t, else 0
        // v -= (res + bit) & mask
        b.and_(rU, rT, rX);
        b.sub(rV, rV, rU);
        // res = (res >> 1) + (bit & mask)
        b.shr(rRes, rRes, rSh);
        b.and_(rT, rBit, rX);
        b.add(rRes, rRes, rT);
        // bit >>= 2
        b.shr(rBit, rBit, rTwo);
    }
    b.add(rA, rOut, rI);
    b.st(rA, rRes);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l1);

    // ---- L2: angle conversion: out = v * 31416 / 1800000 ----
    b.li(rI, 0);
    b.li(rT, 31416);
    b.li(rU, 1800000);
    auto l2 = b.newLabel();
    b.bind(l2);
    b.add(rA, rB, rI);
    b.ld(rV, rA);
    b.mul(rX, rV, rT);
    b.div(rX, rX, rU);
    b.add(rC, rX, rV);
    b.xor_(rC, rC, rT);
    b.or_(rC, rC, rOne);
    b.add(rA, rOut, rI);
    b.st(rA, rX);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l2);

    b.halt();

    Workload w;
    w.name = "basicmath";
    w.program = b.take();
    w.regions = prog::analyzeProgram(w.program);
    w.make_input = [n](std::uint64_t seed) {
        InputRng rng(seed);
        cpu::MemoryImage img;
        img.emplace_back(kData,
                         rng.array(n, 1, (std::int64_t(1) << 31) - 1));
        return img;
    };
    return w;
}

} // namespace eddie::workloads
