/**
 * @file
 * MiBench-like workload programs for the simulated core.
 *
 * EDDIE never inspects program semantics — only loop periodicity and
 * region topology — so each workload reproduces the loop-nest
 * structure, per-iteration work, and control-flow variation of its
 * MiBench namesake (see DESIGN.md). Input generators give run-to-run
 * variation, as the paper's multiple training inputs do.
 */

#ifndef EDDIE_WORKLOADS_WORKLOAD_H
#define EDDIE_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cpu/core.h"
#include "prog/program.h"
#include "prog/regions.h"

namespace eddie::workloads
{

/** A ready-to-run workload. */
struct Workload
{
    std::string name;
    prog::Program program;
    /** Region-level state machine of `program`. */
    prog::RegionGraph regions;
    /** Builds the initial memory image for a run; different seeds
     *  model the paper's "different inputs" across runs. */
    std::function<cpu::MemoryImage(std::uint64_t seed)> make_input;
};

/** Names of all available workloads (the paper's 10 benchmarks). */
const std::vector<std::string> &workloadNames();

/**
 * Builds a workload by name.
 *
 * @param scale multiplies data sizes / iteration counts (1.0 gives
 *        runs of roughly 20-60 simulated milliseconds)
 * @throws std::invalid_argument for unknown names
 */
Workload makeWorkload(std::string_view name, double scale = 1.0);

// Individual builders (used by tests; makeWorkload dispatches here).
Workload makeBitcount(double scale = 1.0);
Workload makeBasicmath(double scale = 1.0);
Workload makeSusan(double scale = 1.0);
Workload makeDijkstra(double scale = 1.0);
Workload makePatricia(double scale = 1.0);
Workload makeGsm(double scale = 1.0);
Workload makeFft(double scale = 1.0);
Workload makeSha(double scale = 1.0);
Workload makeRijndael(double scale = 1.0);
Workload makeStringsearch(double scale = 1.0);

} // namespace eddie::workloads

#endif // EDDIE_WORKLOADS_WORKLOAD_H
