/**
 * @file
 * GSM workload: LPC-style autocorrelation (regular, strong peaks)
 * followed by a quantization phase whose per-sample work is heavily
 * data-dependent — that nest produces no usable spectral peaks and
 * accounts for a large share of the runtime, reproducing the paper's
 * observation that GSM's coverage is poor (~57 %) because one
 * peak-less loop dominates ~40 % of execution time.
 */

#include "workload.h"

#include "prog/builder.h"
#include "workload_util.h"

namespace eddie::workloads
{

namespace
{

constexpr std::int64_t kSamples = 1 << 15;
constexpr std::int64_t kAcf = 4096;
constexpr std::int64_t kOut = 1 << 17;
constexpr std::int64_t kLags = 9;

} // namespace

Workload
makeGsm(double scale)
{
    const auto n = std::int64_t(scaled(10000, scale));

    prog::ProgramBuilder b("gsm");
    const int rI = 1, rN = 2, rK = 3, rA = 4, rS1 = 5, rS2 = 6, rAcc = 7,
              rT = 8, rU = 9, rSampB = 10, rAcfB = 11, rOutB = 12,
              rLagN = 13, rW = 14, rCnt = 15, rMask = 16, rOne = 17,
              rSh = 18, rEnd = 19, rA2 = 20;

    b.li(rZ, 0);
    b.li(rSampB, kSamples);
    b.li(rAcfB, kAcf);
    b.li(rOutB, kOut);
    b.li(rN, n);
    b.li(rLagN, kLags);
    b.li(rOne, 1);
    b.li(rSh, 1);

    // ---- L0: autocorrelation, lags 0..8, inner unrolled x4 ----
    b.li(rK, 0);
    auto l0lag = b.newLabel();
    b.bind(l0lag);
    b.li(rAcc, 0);
    b.add(rI, rK, rZ); // i = k
    b.sub(rEnd, rN, rZ);
    b.addi(rEnd, rEnd, -4);
    auto l0i = b.newLabel();
    b.bind(l0i);
    b.add(rA, rSampB, rI);
    b.sub(rA2, rA, rK);
    for (int u = 0; u < 4; ++u) {
        b.ld(rS1, rA, u);
        b.ld(rS2, rA2, u);
        b.mul(rT, rS1, rS2);
        b.add(rAcc, rAcc, rT);
    }
    b.addi(rI, rI, 4);
    b.blt(rI, rEnd, l0i);
    b.add(rA, rAcfB, rK);
    b.st(rA, rAcc);
    b.addi(rK, rK, 1);
    b.blt(rK, rLagN, l0lag);

    // ---- L1: quantization with data-dependent iteration counts ----
    // Per sample, a short loop runs (sample & 127) times: the period
    // is essentially random, so this nest has no spectral peaks.
    b.li(rI, 0);
    b.li(rMask, 127);
    auto l1 = b.newLabel();
    b.bind(l1);
    b.add(rA, rSampB, rI);
    b.ld(rW, rA);
    b.and_(rCnt, rW, rMask);
    b.li(rT, 0);
    auto l1inner = b.newLabel();
    auto l1done = b.newLabel();
    b.bind(l1inner);
    b.bge(rT, rCnt, l1done);
    b.add(rU, rU, rW);
    b.xor_(rU, rU, rT);
    b.addi(rT, rT, 1);
    b.jmp(l1inner);
    b.bind(l1done);
    b.add(rA2, rOutB, rI);
    b.st(rA2, rU);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l1);

    // ---- L2: decode pass with fixed per-sample work ----
    b.li(rI, 0);
    auto l2 = b.newLabel();
    b.bind(l2);
    b.add(rA, rOutB, rI);
    b.ld(rW, rA);
    b.mul(rT, rW, rOne);
    b.shr(rT, rT, rSh);
    b.add(rU, rT, rW);
    b.xor_(rU, rU, rI);
    b.or_(rU, rU, rOne);
    b.add(rU, rU, rT);
    b.xor_(rU, rU, rW);
    b.st(rA, rU);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, l2);

    b.halt();

    Workload w;
    w.name = "gsm";
    w.program = b.take();
    w.regions = prog::analyzeProgram(w.program);
    const std::size_t nn = std::size_t(n);
    w.make_input = [nn](std::uint64_t seed) {
        InputRng rng(seed);
        cpu::MemoryImage img;
        img.emplace_back(kSamples, rng.array(nn, 0, 4095));
        return img;
    };
    return w;
}

} // namespace eddie::workloads
