#include "archive.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "common/crc32.h"
#include "core/errors.h"

namespace eddie::store
{

namespace
{

constexpr char kMagic[8] = {'E', 'D', 'D', 'I', 'E', 'A', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kKindPut = 1;
constexpr std::uint32_t kKindRemove = 2;

/** seq(8) kind(4) reserved(4) key_len(8) value_len(8). */
constexpr std::size_t kFixedHeader = 32;
/** Superblock content before its CRC: magic + version + sector +
 *  reserved. */
constexpr std::size_t kSuperBytes = 8 + 4 + 4 + 8;

constexpr std::uint64_t kMaxKeyLen = std::uint64_t(1) << 20;
/** Matches core::capture_io's framed-payload cap. */
constexpr std::uint64_t kMaxValueLen = std::uint64_t(1) << 37;

template <typename T>
void
putRaw(std::string &out, T value)
{
    out.append(reinterpret_cast<const char *>(&value), sizeof value);
}

template <typename T>
T
loadRaw(const char *p)
{
    T value;
    std::memcpy(&value, p, sizeof value);
    return value;
}

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

bool
validSectorSize(std::uint32_t s)
{
    return s >= 64 && s <= (1u << 20) && (s & (s - 1)) == 0;
}

} // namespace

Archive::Archive(ArchiveConfig cfg) : cfg_(std::move(cfg))
{
    if (!validSectorSize(cfg_.sector_size))
        throw core::FormatError(
            "archive: sector size must be a power of two in "
            "[64, 1 MiB]");
    sector_ = cfg_.sector_size;
    std::lock_guard<std::mutex> lock(mu_);
    openLocked(true);
}

Archive::~Archive()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
Archive::sniff(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    char magic[8];
    is.read(magic, sizeof magic);
    return bool(is) &&
           std::memcmp(magic, kMagic, sizeof magic) == 0;
}

void
Archive::writeSuperblockLocked()
{
    std::string block;
    block.append(kMagic, sizeof kMagic);
    putRaw<std::uint32_t>(block, kVersion);
    putRaw<std::uint32_t>(block, sector_);
    putRaw<std::uint64_t>(block, 0);
    putRaw<std::uint32_t>(block,
                          common::crc32(block.data(), block.size()));
    block.resize(sector_, '\0');

    errno = 0; // stream failures report the underlying errno
    std::ofstream os(cfg_.path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw core::ioErrorErrno("archive: create", cfg_.path);
    os.write(block.data(), std::streamsize(block.size()));
    os.flush();
    if (!os)
        throw core::ioErrorErrno("archive: superblock write",
                                 cfg_.path);
}

void
Archive::openLocked(bool creating_ok)
{
    namespace fs = std::filesystem;
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    active_.reset();

    std::error_code ec;
    std::uint64_t fsize = fs::file_size(cfg_.path, ec);
    if (ec)
        fsize = 0;
    if (fsize == 0) {
        if (!creating_ok)
            throw core::IoError(
                "archive: missing " + cfg_.path +
                (ec ? ": " + ec.message() : std::string()));
        writeSuperblockLocked();
        fsize = sector_;
    }
    if (fsize < kSuperBytes + 4)
        throw core::FormatError("archive: truncated superblock in " +
                                cfg_.path);

    // One scan mapping over the whole file; the active mapping is
    // rebuilt lazily (and only up to the verified logical end).
    MappedFile scan;
    scan.open(cfg_.path, std::size_t(fsize));
    const char *base = scan.data();
    if (std::memcmp(base, kMagic, sizeof kMagic) != 0)
        throw core::FormatError("archive: bad magic in " + cfg_.path);
    if (loadRaw<std::uint32_t>(base + 8) != kVersion)
        throw core::FormatError("archive: unsupported version in " +
                                cfg_.path);
    const std::uint32_t file_sector =
        loadRaw<std::uint32_t>(base + 12);
    if (loadRaw<std::uint32_t>(base + kSuperBytes) !=
        common::crc32(base, kSuperBytes))
        throw core::FormatError(
            "archive: superblock checksum mismatch in " + cfg_.path);
    if (!validSectorSize(file_sector))
        throw core::FormatError("archive: bad sector size in " +
                                cfg_.path);
    sector_ = file_sector; // an existing file's geometry wins
    if (fsize < sector_)
        throw core::FormatError("archive: truncated superblock in " +
                                cfg_.path);

    scanLocked(base, std::size_t(fsize));
    scan.reset();

    // Drop any torn tail now so the append descriptor (O_APPEND)
    // lands the next commit right after the last good segment.
    if (end_ < fsize) {
        fs::resize_file(cfg_.path, end_, ec);
        if (ec)
            throw core::IoError(
                "archive: cannot truncate torn tail of " + cfg_.path +
                " to offset " + std::to_string(end_) + ": " +
                ec.message());
    }

    fd_ = ::open(cfg_.path.c_str(),
                 O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd_ < 0)
        throw core::ioErrorErrno("archive: open for append",
                                 cfg_.path);
    staged_seq_ = next_seq_;
    broken_ = false;
}

void
Archive::scanLocked(const char *base, std::size_t file_size)
{
    dir_.clear();
    next_seq_ = 1;
    stats_.segments_scanned = 0;
    stats_.payload_sectors_total = 0;
    stats_.payload_sectors_verified = 0;
    std::uint64_t dead = 0;

    std::uint64_t off = sector_;
    while (off < file_size) {
        if (off + kFixedHeader > file_size) {
            ++stats_.torn_tail_dropped;
            break;
        }
        const std::uint64_t seq = loadRaw<std::uint64_t>(base + off);
        const std::uint32_t kind =
            loadRaw<std::uint32_t>(base + off + 8);
        const std::uint64_t key_len =
            loadRaw<std::uint64_t>(base + off + 16);
        const std::uint64_t value_len =
            loadRaw<std::uint64_t>(base + off + 24);
        if (seq != next_seq_ ||
            (kind != kKindPut && kind != kKindRemove) ||
            key_len == 0 || key_len > kMaxKeyLen ||
            value_len > kMaxValueLen ||
            (kind == kKindRemove && value_len != 0)) {
            ++stats_.torn_tail_dropped;
            break;
        }
        const std::uint64_t n_psec = ceilDiv(value_len, sector_);
        const std::uint64_t header_bytes =
            kFixedHeader + key_len + 4 * n_psec + 4;
        const std::uint64_t header_secs =
            ceilDiv(header_bytes, sector_);
        const std::uint64_t seg_bytes =
            (header_secs + n_psec) * sector_;
        if (seg_bytes > file_size - off) {
            ++stats_.torn_tail_dropped;
            break;
        }
        if (loadRaw<std::uint32_t>(base + off + header_bytes - 4) !=
            common::crc32(base + off,
                          std::size_t(header_bytes - 4))) {
            ++stats_.torn_tail_dropped;
            break;
        }

        std::string key(base + off + kFixedHeader,
                        std::size_t(key_len));
        if (kind == kKindPut) {
            Slot slot;
            slot.offset = off;
            slot.table_off = off + kFixedHeader + key_len;
            slot.payload_off = off + header_secs * sector_;
            slot.value_len = value_len;
            slot.n_sectors = std::uint32_t(n_psec);
            const auto it = dir_.find(key);
            if (it != dir_.end()) {
                ++dead; // superseded put
                it->second = slot;
            } else {
                dir_.emplace(std::move(key), slot);
            }
        } else {
            ++dead; // the remove segment itself is dead space
            if (dir_.erase(key) > 0)
                ++dead; // ... and so is the put it tombstoned
        }
        stats_.payload_sectors_total += n_psec;
        ++stats_.segments_scanned;
        off += seg_bytes;
        ++next_seq_;
    }
    end_ = off;
    stats_.dead_segments = dead;
    stats_.live_artifacts = dir_.size();
}

void
Archive::encodeSegment(std::string &out, std::uint64_t seq,
                       std::uint32_t kind, std::string_view key,
                       std::string_view value) const
{
    const std::uint64_t n_psec = ceilDiv(value.size(), sector_);
    const std::uint64_t header_secs = ceilDiv(
        kFixedHeader + key.size() + 4 * n_psec + 4, sector_);
    const std::size_t start = out.size();

    putRaw<std::uint64_t>(out, seq);
    putRaw<std::uint32_t>(out, kind);
    putRaw<std::uint32_t>(out, 0);
    putRaw<std::uint64_t>(out, key.size());
    putRaw<std::uint64_t>(out, value.size());
    out.append(key);
    // Per-sector CRC table; each entry covers one full payload
    // sector, zero padding included, so torn last sectors cannot
    // hide behind their padding.
    for (std::uint64_t i = 0; i < n_psec; ++i) {
        const std::size_t at = std::size_t(i) * sector_;
        const std::size_t len =
            std::min<std::size_t>(sector_, value.size() - at);
        std::uint32_t c = common::crc32(value.data() + at, len);
        if (len < sector_) {
            const std::string zeros(sector_ - len, '\0');
            c = common::crc32(zeros.data(), zeros.size(), c);
        }
        putRaw<std::uint32_t>(out, c);
    }
    putRaw<std::uint32_t>(
        out, common::crc32(out.data() + start, out.size() - start));
    out.resize(start + std::size_t(header_secs) * sector_, '\0');
    out.append(value);
    out.resize(start + std::size_t(header_secs + n_psec) * sector_,
               '\0');
}

void
Archive::stagePut(std::string_view key, std::string_view value)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (key.empty() || key.size() > kMaxKeyLen)
        throw core::FormatError("archive: bad key length");
    if (value.size() > kMaxValueLen)
        throw core::FormatError("archive: oversized value");

    const std::uint64_t off = end_ + staging_.size();
    const std::uint64_t n_psec = ceilDiv(value.size(), sector_);
    const std::uint64_t header_secs = ceilDiv(
        kFixedHeader + key.size() + 4 * n_psec + 4, sector_);

    encodeSegment(staging_, staged_seq_++, kKindPut, key, value);

    PendingOp op;
    op.key = std::string(key);
    op.is_put = true;
    op.slot.offset = off;
    op.slot.table_off = off + kFixedHeader + key.size();
    op.slot.payload_off = off + header_secs * sector_;
    op.slot.value_len = value.size();
    op.slot.n_sectors = std::uint32_t(n_psec);
    pending_.push_back(std::move(op));
    staged_sectors_ += n_psec;
    ++staged_puts_;
}

void
Archive::stageRemove(std::string_view key)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (key.empty() || key.size() > kMaxKeyLen)
        throw core::FormatError("archive: bad key length");
    encodeSegment(staging_, staged_seq_++, kKindRemove, key, {});
    PendingOp op;
    op.key = std::string(key);
    op.is_put = false;
    pending_.push_back(std::move(op));
    ++staged_removes_;
}

bool
Archive::commit()
{
    std::lock_guard<std::mutex> lock(mu_);
    return commitLocked();
}

bool
Archive::commitLocked()
{
    if (staging_.empty())
        return true;
    bool ok = !broken_ && fd_ >= 0;
    // The whole batch goes down in one write call — that write *is*
    // the group commit (the loop only resumes a partial write). No
    // fsync: durability-to-page-cache matches the legacy delta log's
    // flush discipline.
    std::size_t done = 0;
    while (ok && done < staging_.size()) {
        const ssize_t n = ::write(fd_, staging_.data() + done,
                                  staging_.size() - done);
        if (n <= 0)
            ok = false;
        else
            done += std::size_t(n);
    }
    if (!ok) {
        ++stats_.write_failures;
        // Roll the file back to the last good segment so the partial
        // batch can never be scanned as a live prefix later.
        if (fd_ >= 0 && ::ftruncate(fd_, off_t(end_)) != 0)
            broken_ = true;
        staged_seq_ = next_seq_;
    } else {
        end_ += staging_.size();
        next_seq_ = staged_seq_;
        for (auto &op : pending_) {
            if (op.is_put) {
                const auto it = dir_.find(op.key);
                if (it != dir_.end()) {
                    ++stats_.dead_segments;
                    it->second = op.slot;
                } else {
                    dir_.emplace(std::move(op.key), op.slot);
                }
            } else {
                ++stats_.dead_segments;
                if (dir_.erase(op.key) > 0)
                    ++stats_.dead_segments;
            }
        }
        stats_.puts += staged_puts_;
        stats_.removes += staged_removes_;
        stats_.payload_sectors_total += staged_sectors_;
        stats_.commit_bytes += staging_.size();
        ++stats_.group_commits;
        stats_.live_artifacts = dir_.size();
    }
    staging_.clear();
    pending_.clear();
    staged_sectors_ = 0;
    staged_puts_ = 0;
    staged_removes_ = 0;
    return ok;
}

bool
Archive::put(std::string_view key, std::string_view value)
{
    stagePut(key, value);
    return commit();
}

void
Archive::ensureMappedLocked(std::uint64_t need)
{
    need = std::max<std::uint64_t>(need, sector_);
    if (active_.size() >= need)
        return;
    // Map the full logical file; outgrown mappings retire but stay
    // alive so spans handed out earlier keep pointing at real bytes.
    MappedFile next;
    next.open(cfg_.path, std::size_t(end_));
    if (active_.size() > 0)
        retired_.push_back(std::move(active_));
    active_ = std::move(next);
    ++stats_.remaps;
}

bool
Archive::verifySlotLocked(Slot &slot)
{
    if (slot.verified)
        return true;
    const char *base = active_.data();
    for (std::uint32_t i = 0; i < slot.n_sectors; ++i) {
        const std::uint32_t want = loadRaw<std::uint32_t>(
            base + slot.table_off + std::uint64_t(4) * i);
        const std::uint32_t got = common::crc32(
            base + slot.payload_off + std::uint64_t(i) * sector_,
            std::size_t(sector_));
        if (want != got) {
            ++stats_.sector_crc_failures;
            return false;
        }
    }
    slot.verified = true;
    stats_.payload_sectors_verified += slot.n_sectors;
    return true;
}

GetStatus
Archive::get(std::string_view key, std::span<const char> &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = dir_.find(key);
    if (it == dir_.end())
        return GetStatus::Missing;
    Slot &slot = it->second;
    ensureMappedLocked(slot.payload_off +
                       std::uint64_t(slot.n_sectors) * sector_);
    if (!verifySlotLocked(slot))
        return GetStatus::Corrupt;
    out = {active_.data() + slot.payload_off,
           std::size_t(slot.value_len)};
    return GetStatus::Ok;
}

std::optional<std::string>
Archive::getCopy(std::string_view key)
{
    std::span<const char> span;
    if (get(key, span) != GetStatus::Ok)
        return std::nullopt;
    return std::string(span.data(), span.size());
}

bool
Archive::contains(std::string_view key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dir_.find(key) != dir_.end();
}

std::vector<std::string>
Archive::keys() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(dir_.size());
    for (const auto &kv : dir_)
        out.push_back(kv.first);
    return out;
}

std::size_t
Archive::liveCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dir_.size();
}

bool
Archive::compact()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!commitLocked())
        return false;

    // Build the replacement file in memory: superblock + the live
    // set, renumbered from seq 1, every value copied byte-identically
    // (after verifying its sectors — compaction must not launder a
    // corrupt artifact into a freshly-CRC'd one).
    std::string out;
    out.append(kMagic, sizeof kMagic);
    putRaw<std::uint32_t>(out, kVersion);
    putRaw<std::uint32_t>(out, sector_);
    putRaw<std::uint64_t>(out, 0);
    putRaw<std::uint32_t>(out, common::crc32(out.data(), out.size()));
    out.resize(sector_, '\0');

    std::uint64_t seq = 1;
    for (auto &kv : dir_) {
        Slot &slot = kv.second;
        ensureMappedLocked(slot.payload_off +
                           std::uint64_t(slot.n_sectors) * sector_);
        if (!verifySlotLocked(slot))
            return false;
        encodeSegment(out, seq++, kKindPut, kv.first,
                      {active_.data() + slot.payload_off,
                       std::size_t(slot.value_len)});
    }

    const std::string tmp = cfg_.path + ".compact";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            ++stats_.write_failures;
            return false;
        }
        os.write(out.data(), std::streamsize(out.size()));
        os.flush();
        if (!os) {
            os.close();
            std::remove(tmp.c_str());
            ++stats_.write_failures;
            return false;
        }
    }

    // Point of no return for outstanding spans: swap the file in and
    // rescan. (compact() is documented to invalidate spans.)
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    active_.reset();
    retired_.clear();
    if (std::rename(tmp.c_str(), cfg_.path.c_str()) != 0) {
        std::remove(tmp.c_str());
        ++stats_.write_failures;
        openLocked(false); // stay usable on the old file
        return false;
    }
    ++stats_.compactions;
    openLocked(false);
    return true;
}

ArchiveStats
Archive::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    ArchiveStats out = stats_;
    out.live_artifacts = dir_.size();
    out.mmap_active = active_.mapped();
    return out;
}

} // namespace eddie::store
