/**
 * @file
 * EDDIEARC — the segmented, verified artifact container (DESIGN.md
 * §8). One append-only file replaces the zoo of per-kind artifact
 * files: trained models, capture-cache spills, and checkpoint
 * snapshots/delta segments all live in the same archive as keyed
 * segments.
 *
 * Layout (all offsets sector-aligned, sector size fixed at creation):
 *
 *   sector 0        superblock: magic "EDDIEARC", version, sector
 *                   size, CRC32 over the superblock fields
 *   sector 1..      segments, each:
 *                     header  — seq, kind (put/remove), key length,
 *                               value length, the key bytes, a CRC32
 *                               *per payload sector*, and a CRC32
 *                               over the header itself; zero-padded
 *                               to a sector boundary
 *                     payload — the value bytes, zero-padded to a
 *                               sector boundary (puts only)
 *
 * Invariants the format buys:
 *
 *  - Group commit: stagePut()/stageRemove() encode into a staging
 *    buffer; commit() lands the whole batch in ONE write syscall —
 *    the same one-buffered-write discipline as the checkpoint delta
 *    log (PR 6), now shared by every artifact kind. A failed commit
 *    truncates the file back to its pre-commit end, so the archive
 *    never exposes a half-written batch to a later scan.
 *  - Zero-copy reads: the payload is contiguous (the per-sector CRC
 *    table lives in the header, not interleaved), so get() returns a
 *    span straight into the read-only mmap. Spans stay valid across
 *    later commits — grown mappings are added, old ones retired but
 *    kept — and are invalidated only by compact() or destruction.
 *  - Verify-on-demand: opening scans and CRC-checks segment *headers*
 *    only (that is what rebuilds the key directory); payload sectors
 *    are CRC-verified lazily on first get() of their key, then
 *    remembered. Recovery therefore checksums only the artifacts it
 *    actually reads — the live tail — not every dead byte ever
 *    appended (stats report verified vs. total sectors to prove it).
 *  - Torn-tail fallback: a truncated or bit-flipped final batch fails
 *    its header CRC (or runs past EOF) and is dropped with a counted
 *    fallback, exactly like the delta-log replay; everything before
 *    it stays readable.
 *  - Last-write-wins: re-putting a key supersedes the old segment
 *    (counted dead); offline compact() rewrites the live set into a
 *    fresh file and atomically renames it over the old one.
 *
 * Thread-safe: one mutex over directory, staging, and IO.
 */

#ifndef EDDIE_STORE_ARCHIVE_H
#define EDDIE_STORE_ARCHIVE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mapped_file.h"

namespace eddie::store
{

struct ArchiveConfig
{
    /** Archive file; created (with a superblock) when absent. */
    std::string path;
    /** Sector size for a *newly created* archive; an existing file's
     *  superblock wins. Power of two in [64, 1 MiB]. */
    std::uint32_t sector_size = 512;
};

/** Counters; snapshot via Archive::stats(). */
struct ArchiveStats
{
    std::uint64_t segments_scanned = 0; ///< headers walked at open
    std::uint64_t live_artifacts = 0;   ///< current directory size
    std::uint64_t dead_segments = 0;    ///< superseded puts + removes
    /** Torn or corrupt tail batches dropped (open-time fallback). */
    std::uint64_t torn_tail_dropped = 0;
    std::uint64_t group_commits = 0; ///< successful commit() calls
    std::uint64_t commit_bytes = 0;  ///< bytes appended by commits
    std::uint64_t puts = 0;          ///< committed put segments
    std::uint64_t removes = 0;       ///< committed remove segments
    /** Payload-sector CRC mismatches found by get() (→ Corrupt). */
    std::uint64_t sector_crc_failures = 0;
    /** All payload sectors present in the file (live + dead). */
    std::uint64_t payload_sectors_total = 0;
    /** Payload sectors actually CRC-verified so far — the measure of
     *  "recovery checks only the tail it reads". */
    std::uint64_t payload_sectors_verified = 0;
    std::uint64_t write_failures = 0; ///< swallowed commit failures
    std::uint64_t compactions = 0;
    std::uint64_t remaps = 0; ///< growth remappings
    /** True when reads go through a real mmap (false = read-buffer
     *  fallback; see mapped_file.h). */
    bool mmap_active = false;
};

/** Outcome of a point lookup. */
enum class GetStatus
{
    Ok,      ///< span returned, sectors verified
    Missing, ///< key not in the directory (plain miss)
    Corrupt, ///< key present but a payload sector failed its CRC
};

class Archive
{
  public:
    /** Opens (scanning the segment headers) or creates the archive.
     *  Throws core::IoError on IO failure, core::FormatError when the
     *  file exists but is not an EDDIEARC v1 archive. */
    explicit Archive(ArchiveConfig cfg);
    ~Archive();

    Archive(const Archive &) = delete;
    Archive &operator=(const Archive &) = delete;

    /** True when @p path exists and starts with the EDDIEARC magic —
     *  the format-version switch the legacy readers hide behind. */
    static bool sniff(const std::string &path);

    /** Stages one put/remove for the next commit(). Staged ops are
     *  invisible to get() until committed. Throws FormatError on an
     *  oversized key or value. */
    void stagePut(std::string_view key, std::string_view value);
    void stageRemove(std::string_view key);

    /** Lands every staged op in one write syscall. Returns false on a
     *  swallowed IO failure (counted; the file is truncated back to
     *  its pre-commit end and the staged batch is dropped). */
    bool commit();

    /** stagePut + commit in one call. */
    bool put(std::string_view key, std::string_view value);

    /**
     * Point lookup. On Ok, @p out refers directly into the archive
     * mapping (zero-copy) and stays valid until compact() or
     * destruction. First access CRC-verifies the value's payload
     * sectors against the header table (then remembers the verdict).
     */
    GetStatus get(std::string_view key, std::span<const char> &out);

    /** get() into an owned string; nullopt on Missing OR Corrupt
     *  (stats tell them apart). */
    std::optional<std::string> getCopy(std::string_view key);

    bool contains(std::string_view key) const;
    /** Live keys in ascending order. */
    std::vector<std::string> keys() const;
    std::size_t liveCount() const;

    /**
     * Offline compaction: rewrites the live set (verifying every
     * payload sector) into path + ".compact", renames it over the
     * archive, and rescans. Every live artifact's value bytes are
     * preserved byte-identically. Returns false (file untouched) on
     * IO failure or when a live artifact fails verification.
     * Invalidates all previously returned spans.
     */
    bool compact();

    ArchiveStats stats() const;
    const std::string &path() const { return cfg_.path; }
    std::uint32_t sectorSize() const { return sector_; }

  private:
    struct Slot
    {
        std::uint64_t offset = 0;      ///< segment start
        std::uint64_t table_off = 0;   ///< per-sector CRC table
        std::uint64_t payload_off = 0; ///< first value byte
        std::uint64_t value_len = 0;
        std::uint32_t n_sectors = 0; ///< payload sectors
        bool verified = false;       ///< payload CRCs checked
    };

    /** One staged directory mutation, applied iff commit() lands. */
    struct PendingOp
    {
        std::string key;
        bool is_put = false;
        Slot slot;
    };

    void openLocked(bool creating_ok);
    void scanLocked(const char *base, std::size_t file_size);
    void writeSuperblockLocked();
    void encodeSegment(std::string &out, std::uint64_t seq,
                       std::uint32_t kind, std::string_view key,
                       std::string_view value) const;
    bool commitLocked();
    void ensureMappedLocked(std::uint64_t need);
    bool verifySlotLocked(Slot &slot);

    ArchiveConfig cfg_;
    std::uint32_t sector_ = 512;

    mutable std::mutex mu_;
    std::map<std::string, Slot, std::less<>> dir_;
    /** Logical end of the last good segment (append point). */
    std::uint64_t end_ = 0;
    std::uint64_t next_seq_ = 1;     ///< seq of the next segment
    std::string staging_;            ///< encoded staged segments
    std::uint64_t staged_seq_ = 1;   ///< next_seq_ after commit
    std::vector<PendingOp> pending_; ///< staged directory updates
    std::uint64_t staged_sectors_ = 0;
    std::uint64_t staged_puts_ = 0;
    std::uint64_t staged_removes_ = 0;
    int fd_ = -1;      ///< append descriptor
    bool broken_ = false; ///< truncate-after-failed-commit also failed
    MappedFile active_;
    /** Outgrown mappings, kept so returned spans stay valid. */
    std::vector<MappedFile> retired_;
    ArchiveStats stats_;
};

} // namespace eddie::store

#endif // EDDIE_STORE_ARCHIVE_H
