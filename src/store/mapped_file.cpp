#include "mapped_file.h"

#include <cstdio>
#include <string>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/errors.h"

namespace eddie::store
{

void
MappedFile::open(const std::string &path, std::size_t length)
{
    reset();
    if (length == 0)
        return;

    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        throw core::ioErrorErrno("mapped_file: open", path);

    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        // Build the error before close(): close may clobber errno.
        auto err = core::ioErrorErrno("mapped_file: fstat", path);
        ::close(fd);
        throw err;
    }
    if (st.st_size < static_cast<off_t>(length)) {
        ::close(fd);
        throw core::IoError(
            "mapped_file: " + path +
            " shorter than requested mapping (have " +
            std::to_string(static_cast<long long>(st.st_size)) +
            ", need " + std::to_string(length) + " bytes)");
    }

    void *p = ::mmap(nullptr, length, PROT_READ, MAP_SHARED, fd, 0);
    if (p != MAP_FAILED) {
        ::close(fd);
        data_ = static_cast<char *>(p);
        size_ = length;
        mapped_ = true;
        return;
    }

    // Fallback: plain reads into an owned buffer. Correctness is
    // identical; only the zero-copy property is lost.
    char *buf = new (std::nothrow) char[length];
    if (buf == nullptr) {
        ::close(fd);
        throw core::IoError("mapped_file: cannot buffer " + path);
    }
    std::size_t got = 0;
    while (got < length) {
        errno = 0; // a clean EOF (n == 0) must not report stale errno
        const ssize_t n = ::read(fd, buf + got, length - got);
        if (n <= 0) {
            auto err = core::ioErrorErrno(
                "mapped_file: read", path,
                static_cast<long long>(got));
            delete[] buf;
            ::close(fd);
            throw err;
        }
        got += std::size_t(n);
    }
    ::close(fd);
    data_ = buf;
    size_ = length;
    mapped_ = false;
}

void
MappedFile::reset()
{
    if (data_ != nullptr) {
        if (mapped_)
            ::munmap(data_, size_);
        else
            delete[] data_;
    }
    data_ = nullptr;
    size_ = 0;
    mapped_ = false;
}

} // namespace eddie::store
