#include "mapped_file.h"

#include <cstdio>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/errors.h"

namespace eddie::store
{

void
MappedFile::open(const std::string &path, std::size_t length)
{
    reset();
    if (length == 0)
        return;

    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        throw core::IoError("mapped_file: cannot open " + path);

    struct stat st{};
    if (::fstat(fd, &st) != 0 ||
        st.st_size < static_cast<off_t>(length)) {
        ::close(fd);
        throw core::IoError("mapped_file: " + path +
                            " shorter than requested mapping");
    }

    void *p = ::mmap(nullptr, length, PROT_READ, MAP_SHARED, fd, 0);
    if (p != MAP_FAILED) {
        ::close(fd);
        data_ = static_cast<char *>(p);
        size_ = length;
        mapped_ = true;
        return;
    }

    // Fallback: plain reads into an owned buffer. Correctness is
    // identical; only the zero-copy property is lost.
    char *buf = new (std::nothrow) char[length];
    if (buf == nullptr) {
        ::close(fd);
        throw core::IoError("mapped_file: cannot buffer " + path);
    }
    std::size_t got = 0;
    while (got < length) {
        const ssize_t n = ::read(fd, buf + got, length - got);
        if (n <= 0) {
            delete[] buf;
            ::close(fd);
            throw core::IoError("mapped_file: short read from " +
                                path);
        }
        got += std::size_t(n);
    }
    ::close(fd);
    data_ = buf;
    size_ = length;
    mapped_ = false;
}

void
MappedFile::reset()
{
    if (data_ != nullptr) {
        if (mapped_)
            ::munmap(data_, size_);
        else
            delete[] data_;
    }
    data_ = nullptr;
    size_ = 0;
    mapped_ = false;
}

} // namespace eddie::store
