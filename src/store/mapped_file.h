/**
 * @file
 * Read-only memory mapping of a file region (the archive's zero-copy
 * read path). POSIX mmap with MAP_SHARED, so bytes appended to the
 * file through a descriptor after the mapping was created are visible
 * through any mapping that covers them; the Archive still remaps
 * after growth because a mapping's *length* is fixed at creation.
 *
 * On hosts (or filesystems) where mmap fails, the class falls back to
 * reading the region into an owned buffer — same API, no zero-copy.
 * The distinction is observable via mapped() and counted by the
 * archive's stats so benchmarks cannot silently measure the fallback.
 */

#ifndef EDDIE_STORE_MAPPED_FILE_H
#define EDDIE_STORE_MAPPED_FILE_H

#include <cstddef>
#include <string>

namespace eddie::store
{

class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile() { reset(); }

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    MappedFile(MappedFile &&other) noexcept { swap(other); }
    MappedFile &operator=(MappedFile &&other) noexcept
    {
        if (this != &other) {
            reset();
            swap(other);
        }
        return *this;
    }

    /**
     * Maps the first @p length bytes of @p path read-only. Throws
     * core::IoError when the file cannot be opened or is shorter
     * than @p length; a zero-length request yields an empty mapping.
     * mmap failure itself is not an error: the bytes are read into a
     * private buffer instead (mapped() reports which happened).
     */
    void open(const std::string &path, std::size_t length);

    /** Unmaps / frees; safe on an empty object. */
    void reset();

    const char *data() const { return data_; }
    std::size_t size() const { return size_; }
    /** True when data() is a real mmap, false for the read fallback
     *  (or an empty object). */
    bool mapped() const { return mapped_; }

  private:
    void swap(MappedFile &other) noexcept
    {
        std::swap(data_, other.data_);
        std::swap(size_, other.size_);
        std::swap(mapped_, other.mapped_);
    }

    char *data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false;
};

} // namespace eddie::store

#endif // EDDIE_STORE_MAPPED_FILE_H
