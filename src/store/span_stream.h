/**
 * @file
 * A read-only std::istream over an in-memory byte span — the glue
 * that lets the existing stream codecs (capture_io framing, the
 * checkpoint group/delta readers, the text model parser) consume an
 * archive value without copying it out of the mapping first.
 *
 * The span must outlive the stream; the archive guarantees that for
 * values it returned (mappings are retired, not unmapped, until
 * close/compaction — see archive.h).
 */

#ifndef EDDIE_STORE_SPAN_STREAM_H
#define EDDIE_STORE_SPAN_STREAM_H

#include <cstddef>
#include <istream>
#include <streambuf>

namespace eddie::store
{

class SpanBuf : public std::streambuf
{
  public:
    SpanBuf(const char *data, std::size_t size)
    {
        // setg wants mutable pointers; the buffer is never written
        // (no setp, overflow stays at the default eof behaviour).
        char *p = const_cast<char *>(data);
        setg(p, p, p + size);
    }

  protected:
    // Support tellg/seekg so codecs that rewind keep working.
    pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                     std::ios_base::openmode which) override
    {
        if (!(which & std::ios_base::in))
            return pos_type(off_type(-1));
        const off_type size = egptr() - eback();
        off_type target = off;
        if (dir == std::ios_base::cur)
            target += gptr() - eback();
        else if (dir == std::ios_base::end)
            target += size;
        if (target < 0 || target > size)
            return pos_type(off_type(-1));
        setg(eback(), eback() + target, egptr());
        return pos_type(target);
    }

    pos_type seekpos(pos_type pos,
                     std::ios_base::openmode which) override
    {
        return seekoff(off_type(pos), std::ios_base::beg, which);
    }
};

/** istream + its buffer in one object. */
class SpanStream : public std::istream
{
  public:
    SpanStream(const char *data, std::size_t size)
        : std::istream(nullptr), buf_(data, size)
    {
        rdbuf(&buf_);
    }

  private:
    SpanBuf buf_;
};

} // namespace eddie::store

#endif // EDDIE_STORE_SPAN_STREAM_H
