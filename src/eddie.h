/**
 * @file
 * Umbrella header: the whole EDDIE public API with one include.
 *
 * Downstream users typically need only this plus the libraries
 * produced by src/ (link order: eddie_core already pulls in every
 * substrate).
 */

#ifndef EDDIE_EDDIE_H
#define EDDIE_EDDIE_H

// EDDIE core: training, monitoring, metrics, persistence.
#include "core/baseline_parametric.h"
#include "core/baseline_power.h"
#include "core/capture_io.h"
#include "core/fast_ks.h"
#include "core/metrics.h"
#include "core/model.h"
#include "core/monitor.h"
#include "core/pipeline.h"
#include "core/sts.h"
#include "core/trainer.h"

// Threat model.
#include "cpu/injection.h"
#include "inject/scenarios.h"

// Substrates.
#include "cpu/core.h"
#include "em/emanation.h"
#include "power/energy_model.h"
#include "power/power_trace.h"
#include "prog/builder.h"
#include "prog/cfg.h"
#include "prog/loops.h"
#include "prog/program.h"
#include "prog/regions.h"
#include "sig/fft.h"
#include "sig/filter.h"
#include "sig/modulation.h"
#include "sig/noise.h"
#include "sig/peaks.h"
#include "sig/spectrum.h"
#include "sig/stft.h"
#include "sig/window.h"
#include "stats/anova.h"
#include "stats/descriptive.h"
#include "stats/edf.h"
#include "stats/gmm.h"
#include "stats/ks.h"
#include "stats/mwu.h"
#include "stats/special.h"

// Workloads.
#include "workloads/workload.h"

namespace eddie
{

/** Library version. */
constexpr int kVersionMajor = 1;
constexpr int kVersionMinor = 0;

} // namespace eddie

#endif // EDDIE_EDDIE_H
