/**
 * @file
 * EM emanation synthesis and reception.
 *
 * Models the physical side channel (paper Sec. 2): the per-cycle
 * power envelope amplitude-modulates the processor clock; an antenna
 * plus receiver recovers the spectrum around the clock, where loop
 * activity appears as sidebands at +-1/T.
 *
 * Two paths are provided:
 *  - emanateBaseband(): the mathematically equivalent complex-baseband
 *    form (1 + depth * env(t)) plus channel noise/interference. This
 *    is what the Table-1-style experiments use — it exercises the same
 *    spectral mechanism without synthesizing GHz-rate RF.
 *  - passbandCapture(): a true passband simulation at a (scaled)
 *    carrier through the AM modulator and IQ receiver; used by the
 *    Fig. 1 bench to demonstrate the full chain.
 */

#ifndef EDDIE_EM_EMANATION_H
#define EDDIE_EM_EMANATION_H

#include <cstdint>
#include <vector>

#include "faults/fault_injector.h"
#include "sig/fft.h"
#include "sig/modulation.h"

namespace eddie::em
{

/** One narrowband interferer (e.g. a nearby radio carrier). */
struct Interferer
{
    /** Offset from the tuned center, Hz. */
    double offset_hz = 0.0;
    /** Amplitude relative to the unit carrier. */
    double amplitude = 0.0;
};

/** EM channel parameters. */
struct ChannelConfig
{
    /** AM modulation depth of the activity envelope. */
    double depth = 0.5;
    /** Signal-to-noise ratio after the probe, dB. Large values
     *  (>= 200) disable noise entirely. */
    double snr_db = 30.0;
    /** Narrowband interferers folded into the captured band. */
    std::vector<Interferer> interferers;
    /**
     * Channel fault model (see faults/fault_injector.h): dropouts,
     * SNR collapses, impulsive interference, and carrier drift are
     * layered onto the capture after the stationary noise above.
     * Disabled by default — the clean channel is bit-identical to the
     * pre-fault implementation.
     */
    faults::FaultConfig faults;
};

/**
 * Wall-clock breakdown of one synthesis call, filled when a non-null
 * pointer is passed to emanateBaseband()/passbandCapture(). Used by
 * bench/perf_pipeline's per-stage report.
 */
struct SynthesisTimings
{
    /** Envelope normalization + AM modulation (carrier synthesis). */
    double envelope_ms = 0.0;
    /** Interference tone synthesis. */
    double tones_ms = 0.0;
    /** AWGN generation. */
    double awgn_ms = 0.0;
    /** IQ mixing + decimating FIR (passband path only). */
    double filter_ms = 0.0;
};

/**
 * Converts a power trace into the complex-baseband signal an IQ
 * receiver tuned to the clock carrier would deliver.
 *
 * @param power power samples from the simulator
 * @param sample_rate rate of @p power (becomes the IQ rate)
 * @param cfg channel parameters
 * @param seed noise seed (also mixed into the fault episode streams)
 * @param timings optional per-stage wall-clock sink
 * @param fault_log optional sink for the applied fault episodes
 */
std::vector<sig::Complex> emanateBaseband(const std::vector<double> &power,
                                          double sample_rate,
                                          const ChannelConfig &cfg,
                                          std::uint64_t seed = 0x5eed,
                                          SynthesisTimings *timings =
                                              nullptr,
                                          std::vector<faults::FaultEpisode>
                                              *fault_log = nullptr);

/** Parameters for the full passband demonstration. */
struct PassbandConfig
{
    sig::AmConfig am;
    sig::ReceiverConfig rx;
    ChannelConfig channel;
};

/**
 * Full physical chain: AM-modulate the envelope onto a carrier, add
 * channel noise, then downconvert with the IQ receiver.
 *
 * @return IQ samples at am.sample_rate / rx.decimation.
 */
std::vector<sig::Complex> passbandCapture(const std::vector<double> &power,
                                          double power_rate,
                                          const PassbandConfig &cfg,
                                          std::uint64_t seed = 0x5eed,
                                          SynthesisTimings *timings =
                                              nullptr,
                                          std::vector<faults::FaultEpisode>
                                              *fault_log = nullptr);

/** A PassbandConfig with consistent defaults: a 10 MHz carrier at
 *  40 MS/s, receiver tuned to the carrier, 4 MHz bandwidth. */
PassbandConfig defaultPassbandConfig();

} // namespace eddie::em

#endif // EDDIE_EM_EMANATION_H
