#include "emanation.h"

#include "sig/noise.h"

namespace eddie::em
{

std::vector<sig::Complex>
emanateBaseband(const std::vector<double> &power, double sample_rate,
                const ChannelConfig &cfg, std::uint64_t seed)
{
    const auto env = sig::normalizeEnvelope(power);
    std::vector<sig::Complex> iq(env.size());
    for (std::size_t i = 0; i < env.size(); ++i)
        iq[i] = sig::Complex(1.0 + cfg.depth * env[i], 0.0);

    sig::NoiseSource noise(seed);
    for (const auto &tone : cfg.interferers)
        noise.addTone(iq, tone.offset_hz, sample_rate, tone.amplitude);
    if (cfg.snr_db < 200.0)
        noise.addAwgn(iq, cfg.snr_db);
    return iq;
}

std::vector<sig::Complex>
passbandCapture(const std::vector<double> &power, double power_rate,
                const PassbandConfig &cfg, std::uint64_t seed)
{
    auto rf = sig::amModulate(power, power_rate, cfg.am);

    sig::NoiseSource noise(seed);
    for (const auto &tone : cfg.channel.interferers) {
        noise.addTone(rf, cfg.am.carrier_hz + tone.offset_hz,
                      cfg.am.sample_rate, tone.amplitude);
    }
    if (cfg.channel.snr_db < 200.0)
        noise.addAwgn(rf, cfg.channel.snr_db);

    return sig::iqDownconvert(rf, cfg.rx);
}

PassbandConfig
defaultPassbandConfig()
{
    PassbandConfig cfg;
    cfg.am.carrier_hz = 10e6;
    cfg.am.sample_rate = 40e6;
    cfg.am.depth = 0.5;
    cfg.rx.center_hz = cfg.am.carrier_hz;
    cfg.rx.sample_rate = cfg.am.sample_rate;
    cfg.rx.bandwidth_hz = 4e6;
    cfg.rx.decimation = 4;
    return cfg;
}

} // namespace eddie::em
