#include "emanation.h"

#include <chrono>

#include "sig/noise.h"

namespace eddie::em
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Runs @p fn, adding its wall time to *slot when timing is on. */
template <typename Fn>
void
timed(double *slot, Fn &&fn)
{
    if (slot == nullptr) {
        fn();
        return;
    }
    const auto t0 = Clock::now();
    fn();
    *slot += std::chrono::duration<double, std::milli>(Clock::now() -
                                                       t0)
                 .count();
}

} // namespace

std::vector<sig::Complex>
emanateBaseband(const std::vector<double> &power, double sample_rate,
                const ChannelConfig &cfg, std::uint64_t seed,
                SynthesisTimings *timings,
                std::vector<faults::FaultEpisode> *fault_log)
{
    std::vector<sig::Complex> iq;
    timed(timings ? &timings->envelope_ms : nullptr, [&] {
        const auto env = sig::normalizeEnvelope(power);
        iq.resize(env.size());
        for (std::size_t i = 0; i < env.size(); ++i)
            iq[i] = sig::Complex(1.0 + cfg.depth * env[i], 0.0);
    });

    sig::NoiseSource noise(seed);
    timed(timings ? &timings->tones_ms : nullptr, [&] {
        for (const auto &tone : cfg.interferers)
            noise.addTone(iq, tone.offset_hz, sample_rate,
                          tone.amplitude);
    });
    timed(timings ? &timings->awgn_ms : nullptr, [&] {
        if (cfg.snr_db < 200.0)
            noise.addAwgn(iq, cfg.snr_db);
    });
    // Faults degrade the *received* signal, so they layer on last.
    if (cfg.faults.enabled) {
        auto log = faults::applySignalFaults(iq, sample_rate,
                                             cfg.faults, seed);
        if (fault_log != nullptr)
            *fault_log = std::move(log);
    }
    return iq;
}

std::vector<sig::Complex>
passbandCapture(const std::vector<double> &power, double power_rate,
                const PassbandConfig &cfg, std::uint64_t seed,
                SynthesisTimings *timings,
                std::vector<faults::FaultEpisode> *fault_log)
{
    std::vector<double> rf;
    timed(timings ? &timings->envelope_ms : nullptr, [&] {
        rf = sig::amModulate(power, power_rate, cfg.am);
    });

    sig::NoiseSource noise(seed);
    timed(timings ? &timings->tones_ms : nullptr, [&] {
        for (const auto &tone : cfg.channel.interferers) {
            noise.addTone(rf, cfg.am.carrier_hz + tone.offset_hz,
                          cfg.am.sample_rate, tone.amplitude);
        }
    });
    timed(timings ? &timings->awgn_ms : nullptr, [&] {
        if (cfg.channel.snr_db < 200.0)
            noise.addAwgn(rf, cfg.channel.snr_db);
    });

    std::vector<sig::Complex> iq;
    timed(timings ? &timings->filter_ms : nullptr,
          [&] { iq = sig::iqDownconvert(rf, cfg.rx); });
    if (cfg.channel.faults.enabled) {
        const double iq_rate =
            cfg.rx.sample_rate / double(cfg.rx.decimation);
        auto log = faults::applySignalFaults(iq, iq_rate,
                                             cfg.channel.faults, seed);
        if (fault_log != nullptr)
            *fault_log = std::move(log);
    }
    return iq;
}

PassbandConfig
defaultPassbandConfig()
{
    PassbandConfig cfg;
    cfg.am.carrier_hz = 10e6;
    cfg.am.sample_rate = 40e6;
    cfg.am.depth = 0.5;
    cfg.rx.center_hz = cfg.am.carrier_hz;
    cfg.rx.sample_rate = cfg.am.sample_rate;
    cfg.rx.bandwidth_hz = 4e6;
    cfg.rx.decimation = 4;
    return cfg;
}

} // namespace eddie::em
