/**
 * @file
 * EDDIEWIRE frame format (DESIGN.md §11): the versioned,
 * self-delimiting binary framing STS streams ride over sockets and
 * pipes into eddie_serve. Design constraints, in order:
 *
 *  - *Total over arbitrary bytes.* A peer is untrusted; every field a
 *    decoder interprets before trusting it is covered by a checksum
 *    it verifies first. Malformed input maps to a typed WireError
 *    (frame decoding never throws, allocates unboundedly, or reads
 *    past its buffer — see decoder.h).
 *  - *Self-delimiting.* Fixed 44-byte header carrying an explicit
 *    payload length, so a stream cut at any byte is detectably
 *    truncated rather than silently resynchronized.
 *  - *Cheap.* Checksums reuse the store layer's CRC32 kernel
 *    (common/crc32.h, PCLMUL-dispatched with a slice-by-8 table
 *    fallback); header fields are little-endian and
 *    byte-assembled, so the format is identical across hosts.
 *
 * Frame grammar (all integers little-endian):
 *
 *   offset size field
 *        0    4 magic "EDW1"
 *        4    2 version (kWireVersion)
 *        6    1 frame type (FrameType)
 *        7    1 reserved, must be 0
 *        8    8 tenant hash (FNV-1a 64 of the tenant id; the full id
 *               string travels once, in the HELLO payload)
 *       16    8 session key (client-chosen, stable across reconnects)
 *       24    8 sequence number (meaning depends on type, see below)
 *       32    4 payload length (bytes; <= the decoder's cap)
 *       36    4 payload CRC32
 *       40    4 header CRC32 over bytes [0, 40)
 *       44    n payload
 *
 * Sequence semantics per type:
 *   Hello      first window index the client *wants* to send (hint;
 *              the server's Ack overrides it)
 *   Ack        resume point: index of the next window the server
 *              expects (everything below is acknowledged durable-in-
 *              order; the client replays from here after reconnect)
 *   StsBatch   index of the batch's first window
 *   Heartbeat  windows sent so far (liveness + progress telemetry)
 *   Eof        total windows in the stream
 *   Nack       echo of the offending sequence (0 when n/a)
 */

#ifndef EDDIE_WIRE_FRAME_H
#define EDDIE_WIRE_FRAME_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace eddie::wire
{

/** "EDW1" little-endian. */
constexpr std::uint32_t kMagic = 0x31574445u;
constexpr std::uint16_t kWireVersion = 1;
/** Fixed header size, bytes. */
constexpr std::size_t kHeaderSize = 44;
/** Default payload-size cap (decoder buffering bound). */
constexpr std::size_t kDefaultMaxPayload = 4u << 20;
/** HELLO payload: tenant ids longer than this are BadPayload. */
constexpr std::size_t kMaxTenantIdLen = 256;

/** Frame types; anything else is WireError::BadType. */
enum class FrameType : std::uint8_t
{
    Hello = 1,
    Ack = 2,
    StsBatch = 3,
    Heartbeat = 4,
    Eof = 5,
    Nack = 6,
};

/** Typed decode failures; every malformed input lands on exactly one
 *  of these and is counted in WireStats. */
enum class WireError : std::uint8_t
{
    /** First four bytes are not kMagic. */
    BadMagic = 0,
    /** Version field != kWireVersion. */
    BadVersion,
    /** Type byte outside FrameType, or reserved byte != 0. */
    BadType,
    /** payload_len exceeds the decoder's cap. */
    Oversized,
    /** Header CRC mismatch (a field in [0,40) is corrupt). */
    HeaderCrc,
    /** Payload CRC mismatch. */
    PayloadCrc,
    /** Stream ended inside a frame. */
    Truncated,
    /** STS-BATCH sequence opens a gap (ingestion-layer check). */
    SequenceGap,
    /** Payload failed semantic decode (STS codec, HELLO fields). */
    BadPayload,
    /** Frame valid but illegal for the connection state. */
    Protocol,
};

constexpr std::size_t kWireErrorCount = 10;

/** Human-readable error name (logs, NACK text, chaos reports). */
const char *name(WireError err);
const char *name(FrameType type);

/** Per-stream decode counters; every WireError increments exactly one
 *  bucket, so `sum(errors) == malformed inputs seen`. */
struct WireStats
{
    std::uint64_t frames_decoded = 0;
    std::uint64_t bytes_decoded = 0;
    std::uint64_t errors[kWireErrorCount] = {};

    void count(WireError err)
    {
        ++errors[static_cast<std::size_t>(err)];
    }
    std::uint64_t errorCount(WireError err) const
    {
        return errors[static_cast<std::size_t>(err)];
    }
    std::uint64_t totalErrors() const;
    /** Bucket-wise sum (listener aggregates per-connection stats). */
    void merge(const WireStats &other);
};

/** Decoded header fields (host integers; CRCs already verified by the
 *  decoder, so consumers never re-check them). */
struct FrameHeader
{
    FrameType type = FrameType::Heartbeat;
    std::uint64_t tenant = 0;
    std::uint64_t session = 0;
    std::uint64_t sequence = 0;
    std::uint32_t payload_len = 0;
};

/** FNV-1a 64 of the tenant id — the fixed-width form carried in every
 *  header so per-frame validation needs no string compare. */
std::uint64_t tenantHash(const std::string &tenant_id);

/** Encodes header + payload into a self-contained frame (computes
 *  both CRCs). The only frame serializer — tests that need hostile
 *  frames corrupt its output rather than hand-rolling bytes. */
std::string encodeFrame(const FrameHeader &header,
                        const std::string &payload);

/** Encodes ONLY the 44-byte header, trusting header.payload_len and
 *  @p payload_crc as given (no payload bytes follow). This is the
 *  hostile-peer construction kit for the chaos client and the fuzz
 *  tests: a frame whose length field lies must still carry valid
 *  CRCs, so nothing but the decoder's cap check can refuse it. */
std::string encodeHeaderRaw(const FrameHeader &header,
                            std::uint32_t payload_crc);

/** NACK payload reason codes (u32 on the wire). */
enum class NackCode : std::uint32_t
{
    None = 0,
    /** Decoder reported a WireError on this connection. */
    MalformedFrame = 1,
    /** STS-BATCH/EOF sequence opened a gap. */
    SequenceGap = 2,
    UnknownTenant = 3,
    TenantSessionLimit = 4,
    FleetSessionLimit = 5,
    BreakerOpen = 6,
    /** Admission frozen (run already started); reconnects of known
     *  sessions are still served. */
    AdmissionClosed = 7,
    /** Frame legal in form but not in this connection state. */
    ProtocolError = 8,
};

const char *name(NackCode code);

/** HELLO payload: u32 tenant-id length + tenant id bytes. */
std::string encodeHelloPayload(const std::string &tenant_id);
/** Returns false (and counts nothing) on a malformed payload. */
bool decodeHelloPayload(const char *payload, std::size_t size,
                        std::string &tenant_id);

/** NACK payload: u32 code + u32 message length + message bytes. */
std::string encodeNackPayload(NackCode code, const std::string &msg);
bool decodeNackPayload(const char *payload, std::size_t size,
                       NackCode &code, std::string &msg);

} // namespace eddie::wire

#endif // EDDIE_WIRE_FRAME_H
